package score

import "score/internal/slo"

// Public surface of the SLO engine (internal/slo, DESIGN.md §17),
// following the fault-injection pattern: the internal types are
// re-exported as aliases and the Sim owns construction so the engine
// reads the simulation's virtual clock.

// SLOObjective declares one objective: a kind, a goal (good-event
// fraction), a latency threshold for the latency kinds, and one or more
// multi-window burn-rate alerting pairs.
type SLOObjective = slo.Objective

// SLOWindow is one (long, short, rate) burn-rate alerting pair.
type SLOWindow = slo.Window

// SLOKind names what an objective measures.
type SLOKind = slo.Kind

// Objective kinds.
const (
	SLORestoreLatency = slo.KindRestoreLatency
	SLODurableLatency = slo.KindDurableLatency
	SLODrainDeadline  = slo.KindDrainDeadline
	SLOHitRate        = slo.KindHitRate
)

// SLOAlert is one fire/resolve transition; SLOReport the end-of-run
// compliance summary.
type (
	SLOAlert  = slo.Alert
	SLOReport = slo.Report
)

// NewSLOEngine builds an SLO engine on this simulation's virtual clock.
// Attach it to clients with WithSLO; after the run, call Finalize then
// Report on the engine for compliance and alert history.
func (s *Sim) NewSLOEngine(objs ...SLOObjective) (*slo.Engine, error) {
	return slo.NewEngine(s.clock().Now, objs...)
}
