// Simulator-speed benchmarks: how fast the discrete-event engine itself
// runs, independent of the simulated hardware numbers. These are the
// regression gate behind BENCH_simspeed.json (make bench-smoke): raw
// simulator throughput is what bounds the multi-tenant and 100k-rank
// sweeps, so events/sec and allocs/op are tracked trajectories exactly
// like the simulated pipeline figures.
//
// Two throughput metrics are reported. events/sec counts MODEL events —
// the logical occurrences the workload is made of (a compute phase
// ending, a transfer completing), a closed-form count independent of how
// the engine schedules them. That is the PDES-standard committed-events
// rate and the gated headline: counting engine wakeups instead would
// reward an engine for doing redundant ones (the old broadcast-storm
// settle loop retired many wakeups per model event). wakeups/sec counts
// engine wakeups (simclock.EventCount) as a diagnostic of scheduling
// overhead per model event.
//
// Run with:
//
//	go test -bench BenchmarkSimSpeed -benchmem -run '^$' .
package score_test

import (
	"testing"
	"time"

	"score/internal/experiments"
	"score/internal/fabric"
	"score/internal/rtm"
	"score/internal/simclock"
)

// sweepRanks is the scale of the headline rank-sweep benchmark: far past
// paper scale (512 ranks), sized for the ROADMAP's 100k-rank ambition.
const (
	sweepRanks  = 10_000
	sweepLinks  = 128
	sweepRounds = 4
	// sweepModelEvents is the closed-form model-event count of one sweep:
	// each rank-round ends one compute phase and completes one transfer.
	sweepModelEvents = sweepRanks * sweepRounds * 2
)

// reportSimSpeed emits the two throughput metrics for a finished
// benchmark: model events/sec (gated) and engine wakeups/sec (diagnostic).
func reportSimSpeed(b *testing.B, modelEvents, wakeups uint64) {
	secs := b.Elapsed().Seconds()
	if secs <= 0 {
		return
	}
	b.ReportMetric(float64(modelEvents)/secs, "events/sec")
	b.ReportMetric(float64(wakeups)/secs, "wakeups/sec")
}

// runRankSweep drives ranks simulated processes through rounds of
// compute-then-flush against a pool of shared links — the skeleton of
// every scenario in internal/experiments, reduced to the discrete-event
// hot path: timer registration (compute sleeps), link fair-share
// membership churn (transfers), and cond handoff (waitgroup join).
// Compute times are quantized to a handful of values, so ranks form
// bulk-synchronous same-instant cohorts — the dominant pattern when 10k
// ranks checkpoint at iteration boundaries, and the case parallel wake
// (WithParallelWake) exists for.
func runRankSweep(tb testing.TB, ranks, linkCount, rounds int, opts ...simclock.VirtualOption) {
	clk := simclock.NewVirtual(opts...)
	links := make([]*fabric.Link, linkCount)
	for j := range links {
		links[j] = fabric.NewLink(clk, "sweep", 25*fabric.GB, time.Microsecond)
	}
	clk.Run(func() {
		wg := simclock.NewWaitGroup(clk)
		for r := 0; r < ranks; r++ {
			r := r
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				l := links[r%linkCount]
				for k := 0; k < rounds; k++ {
					jitter := ((r*2654435761 + k*40503) % 16) * 50
					clk.Sleep(time.Duration(50+jitter) * time.Microsecond)
					if _, err := l.TryTransfer(8 << 20); err != nil {
						tb.Error(err)
						return
					}
				}
			})
		}
		wg.Wait()
	})
}

// BenchmarkSimSpeed10kRankSweep is the headline simulator-speed number:
// a 10k-rank compute/flush sweep over 128 shared links, serial (default)
// configuration. allocs/op is the allocation bill for one whole sweep.
func BenchmarkSimSpeed10kRankSweep(b *testing.B) {
	b.ReportAllocs()
	startWake := simclock.EventCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runRankSweep(b, sweepRanks, sweepLinks, sweepRounds)
	}
	b.StopTimer()
	reportSimSpeed(b, uint64(b.N)*sweepModelEvents, simclock.EventCount()-startWake)
}

// BenchmarkSimSpeed10kRankSweepParallel is the same sweep under
// WithParallelWake: ranks whose compute phases land on the same instant
// (bulk-synchronous cohorts — the dominant pattern at 10k ranks) wake as
// one batch and burn their wake-side work on all cores.
func BenchmarkSimSpeed10kRankSweepParallel(b *testing.B) {
	b.ReportAllocs()
	startWake := simclock.EventCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runRankSweep(b, sweepRanks, sweepLinks, sweepRounds, simclock.WithParallelWake())
	}
	b.StopTimer()
	reportSimSpeed(b, uint64(b.N)*sweepModelEvents, simclock.EventCount()-startWake)
}

// BenchmarkSimSpeedPipelineShot measures the full runtime stack on the
// BENCH_pipeline configuration (chunked GPUDirect shot): wall time for
// one complete checkpoint/restore shot through core, cachebuf, fabric,
// and metrics. The shot has no closed-form model-event count, so here
// events/sec tracks engine wakeups — comparable across runs of the same
// configuration, which is all the trajectory needs.
func BenchmarkSimSpeedPipelineShot(b *testing.B) {
	b.ReportAllocs()
	startWake := simclock.EventCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := experiments.ShotConfig{
			Uniform: true, WaitForFlush: true, Order: rtm.Reverse,
			Combo:     experiments.Combo{Approach: experiments.Score, Hints: experiments.AllHints},
			GPUDirect: true,
		}
		benchScale().Apply(&cfg)
		cfg.ChunkSize = benchScale().UniformSize / 8
		if _, err := experiments.RunShot(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	wakes := simclock.EventCount() - startWake
	reportSimSpeed(b, wakes, wakes)
}

// BenchmarkSimSpeedContendedLink isolates the fair-share settle path: 256
// transfers contending on one link, the membership-churn worst case the
// incremental settle exists for.
func BenchmarkSimSpeedContendedLink(b *testing.B) {
	b.ReportAllocs()
	startWake := simclock.EventCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk := simclock.NewVirtual()
		l := fabric.NewLink(clk, "contended", 25*fabric.GB, 0)
		clk.Run(func() {
			wg := simclock.NewWaitGroup(clk)
			for t := 0; t < 256; t++ {
				t := t
				wg.Add(1)
				clk.Go(func() {
					defer wg.Done()
					// Staggered starts and distinct sizes: membership
					// changes on nearly every completion.
					clk.Sleep(time.Duration(t) * time.Microsecond)
					if _, err := l.TryTransfer(4<<20 + int64(t)<<12); err != nil {
						b.Error(err)
					}
				})
			}
			wg.Wait()
		})
	}
	b.StopTimer()
	// Model events: each of the 256 transfers is one start (staggered
	// sleep ending) and one completion.
	reportSimSpeed(b, uint64(b.N)*256*2, simclock.EventCount()-startWake)
}
