// Command rtmtrace generates and inspects the synthetic RTM shot traces
// used by the benchmarks (the stand-in for the paper's 1600 production
// shot traces, §5.3.3).
//
// Usage:
//
//	rtmtrace -ranks 8                       # summary per rank
//	rtmtrace -ranks 32 -stats               # Fig. 4-style distribution
//	rtmtrace -rank 0 -dump | head           # per-snapshot sizes, CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"score/internal/report"
	"score/internal/rtm"
)

func main() {
	ranks := flag.Int("ranks", 8, "number of ranks (shots) to generate")
	rank := flag.Int("rank", -1, "dump a single rank's trace instead")
	snapshots := flag.Int("snapshots", 384, "snapshots per shot")
	seed := flag.Int64("seed", 2023, "generation seed")
	stats := flag.Bool("stats", false, "print the Fig. 4 min/avg/max distribution")
	dump := flag.Bool("dump", false, "with -rank: print snapshot,bytes CSV")
	flag.Parse()

	cfg := rtm.DefaultTraceConfig()
	cfg.Snapshots = *snapshots
	cfg.Seed = *seed

	if *rank >= 0 {
		shot, err := rtm.GenerateShot(cfg, *rank)
		if err != nil {
			fatal(err)
		}
		if *dump {
			fmt.Println("snapshot,bytes")
			for i, s := range shot.Sizes {
				fmt.Printf("%d,%d\n", i, s)
			}
			return
		}
		printSummary([]rtm.Shot{shot})
		return
	}

	shots := make([]rtm.Shot, *ranks)
	for r := 0; r < *ranks; r++ {
		s, err := rtm.GenerateShot(cfg, r)
		if err != nil {
			fatal(err)
		}
		shots[r] = s
	}
	if *stats {
		st, err := rtm.Stats(shots)
		if err != nil {
			fatal(err)
		}
		tab := report.NewTable(
			fmt.Sprintf("Snapshot size distribution across %d shots", *ranks),
			"snapshot", "min MiB", "avg MiB", "max MiB")
		step := len(st) / 32
		if step == 0 {
			step = 1
		}
		var avgs []float64
		for i, row := range st {
			avgs = append(avgs, float64(row.Avg))
			if i%step == 0 {
				tab.AddRow(row.Snapshot, mib(row.Min), mib(row.Avg), mib(row.Max))
			}
		}
		if err := tab.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Printf("avg curve: %s\n", report.Sparkline(avgs))
		return
	}
	printSummary(shots)
}

func printSummary(shots []rtm.Shot) {
	tab := report.NewTable("Shot summaries", "rank", "snapshots", "total GiB", "max MiB")
	for _, s := range shots {
		tab.AddRow(s.Rank, len(s.Sizes),
			fmt.Sprintf("%.2f", float64(s.Total())/(1<<30)), mib(s.MaxSize()))
	}
	if err := tab.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func mib(b int64) string { return fmt.Sprintf("%.1f", float64(b)/(1<<20)) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtmtrace:", err)
	os.Exit(1)
}
