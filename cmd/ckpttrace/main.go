// Command ckpttrace runs a small Score adjoint shot with runtime tracing
// enabled and writes the timeline in the Chrome trace-event format. Load
// the output in chrome://tracing or https://ui.perfetto.dev to see the
// application's checkpoint/restore blocking interleaved with the
// asynchronous flusher and prefetcher activity of every GPU.
//
// Usage:
//
//	ckpttrace -o trace.json -gpus 2 -versions 24
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"score"
	"score/internal/trace"
)

func main() {
	out := flag.String("o", "trace.json", "output file (Chrome trace-event JSON)")
	gpus := flag.Int("gpus", 2, "GPUs (processes) on the simulated node")
	versions := flag.Int("versions", 24, "checkpoints per process")
	size := flag.Int64("size", 64<<20, "checkpoint size in bytes")
	interval := flag.Duration("interval", 10*time.Millisecond, "compute time between operations")
	sample := flag.Duration("sample", 100*time.Microsecond, "cache/engine gauge sampling interval for counter tracks (0 disables)")
	ledger := flag.Int64("ledger", -1, "print the lifecycle ledger (flight-recorder events) of this checkpoint version per GPU after the run (-1 disables)")
	flag.Parse()

	opts := []score.Option{
		score.WithTracing(),
		score.WithGPUsPerNode(*gpus),
	}
	if *sample > 0 {
		opts = append(opts, score.WithSampling(*sample))
	}
	sim, err := score.NewSim(opts...)
	if err != nil {
		fatal(err)
	}
	sim.Run(func() {
		wg := sim.NewWaitGroup()
		errs := make([]error, *gpus)
		for g := 0; g < *gpus; g++ {
			g := g
			wg.Add(1)
			sim.Clock().Go(func() {
				defer wg.Done()
				errs[g] = runShot(sim, g, *versions, *size, *interval)
			})
		}
		wg.Wait()
		for g, err := range errs {
			if err != nil {
				fatal(fmt.Errorf("gpu %d: %w", g, err))
			}
		}
	})

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := sim.WriteTrace(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d GPUs × %d checkpoints, %v simulated)\n",
		*out, *gpus, *versions, sim.Clock().Now().Round(time.Millisecond))
	fmt.Println("open it in chrome://tracing or https://ui.perfetto.dev")

	tracer := sim.Tracer()
	if *ledger >= 0 {
		printLedger(tracer.Flight(), *ledger)
	}
	if ev, cnt := tracer.Dropped(); ev > 0 || cnt > 0 {
		fmt.Printf("warning: trace incomplete — %d spans and %d counter samples dropped at the retention cap\n", ev, cnt)
	}
	if fl := tracer.Flight(); fl.TotalDropped() > 0 {
		fmt.Printf("warning: lifecycle ledger incomplete — %d events dropped (per rank:", fl.TotalDropped())
		for _, r := range fl.Ranks() {
			if d := fl.Dropped(r); d > 0 {
				fmt.Printf(" rank%d=%d", r, d)
			}
		}
		fmt.Println(")")
	}
}

// printLedger dumps one checkpoint version's causal lifecycle chain per
// rank: every recorded transition from created to restored/lost, with
// the cluster-wide events (rank -1: group commits, degradations, kills)
// first when present.
func printLedger(fl *trace.FlightRecorder, version int64) {
	for _, rank := range fl.Ranks() {
		events := fl.VersionLedger(rank, version)
		if len(events) == 0 {
			continue
		}
		who := fmt.Sprintf("gpu %d", rank)
		if rank < 0 {
			who = "cluster"
		}
		fmt.Printf("\nlifecycle of version %d (%s):\n", version, who)
		for _, ev := range events {
			line := fmt.Sprintf("  %12v  %s", ev.At.Round(time.Microsecond), ev.Kind)
			if ev.Tier != "" {
				line += " [" + ev.Tier + "]"
			}
			if ev.Detail != "" {
				line += " " + ev.Detail
			}
			fmt.Println(line)
		}
	}
}

// runShot is the Listing 1 pattern for one process.
func runShot(sim *score.Sim, gpu, versions int, size int64, interval time.Duration) error {
	c, err := sim.NewClient(0, gpu,
		score.WithGPUCache(size*4),
		score.WithHostCache(size*16),
	)
	if err != nil {
		return err
	}
	defer c.Close()
	for v := versions - 1; v >= 0; v-- {
		c.PrefetchEnqueue(int64(v))
	}
	for v := 0; v < versions; v++ {
		if err := c.CheckpointVirtual(int64(v), size); err != nil {
			return err
		}
		c.Compute(interval)
	}
	if err := c.WaitFlush(); err != nil {
		return err
	}
	c.PrefetchStart()
	for v := versions - 1; v >= 0; v-- {
		if _, err := c.Restart(int64(v)); err != nil {
			return err
		}
		c.Compute(interval)
	}
	return c.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ckpttrace:", err)
	os.Exit(1)
}
