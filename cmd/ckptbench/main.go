// Command ckptbench regenerates the paper's evaluation: each -exp value
// reruns one table or figure of "GPU-Enabled Asynchronous Multi-level
// Checkpoint Caching and Prefetching" (HPDC '23) on the simulated
// DGX-A100 cluster and prints the corresponding rows.
//
// Usage:
//
//	ckptbench -exp fig5a              # one figure at paper scale
//	ckptbench -exp all -scale small   # everything, 1/16 scale
//	ckptbench -list                   # enumerate experiments
package main

import (
	"flag"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"score"
	"score/internal/experiments"
	"score/internal/metrics"
	"score/internal/report"
	"score/internal/slo"
	"score/internal/trace"
)

var experimentNames = []string{
	"table1", "fig4", "fig5a", "fig5b", "fig6a", "fig6b",
	"fig7", "fig8a", "fig8b", "fig9a", "fig9b", "ablations", "evict",
	"rankfail", "pipeline", "preempt", "migrate", "elastic", "straggler",
}

func main() {
	exp := flag.String("exp", "", "experiment to run: "+strings.Join(experimentNames, ", ")+", or 'all'")
	scaleName := flag.String("scale", "full", "workload scale: full (paper) or small (1/16)")
	list := flag.Bool("list", false, "list experiments and exit")
	metricsOut := flag.String("metrics-out", "", "write the aggregated metrics registry (histograms, counters, sampled series) as JSON to this file")
	promListen := flag.String("prom-listen", "", "serve the metrics registry in Prometheus text format on this address (e.g. :9464); blocks after the experiments finish")
	sample := flag.Duration("sample", 0, "sample tier/link gauges at this simulated interval during every shot (e.g. 100us); series land in -metrics-out")
	chunk := flag.Int64("chunk", 0, "stream multi-hop transfers in chunks of this many bytes, overlapping consecutive hops (0 = monolithic transfers)")
	traceOut := flag.String("trace-out", "", "write each shot's timeline in Chrome trace-event format; the shot label is appended to the name (trace.json -> trace-<label>.json), open in chrome://tracing or ui.perfetto.dev")
	critpathOut := flag.String("critpath-out", "", "write every shot's critical-path attribution records (score-critpath/v1 JSON) to this file")
	failUnattributed := flag.Bool("fail-on-unattributed", false, "exit non-zero if any attribution record carries an unattributed latency gap (instrumentation missed a blocking point)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the experiment run(s) to this file (inspect with go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an allocation profile (after a final GC) to this file when the run(s) finish")
	benchTime := flag.Duration("benchtime", 0, "repeat the selected experiment(s) until this much wall time has elapsed — stabilizes -cpuprofile samples on fast configs (0 = run once)")
	parallelSim := flag.Bool("parallel-sim", false, "wake same-instant rank cohorts in parallel on the real scheduler for wall-clock speed; results may differ slightly from the (byte-deterministic) serial default")
	sloFlag := flag.Bool("slo", false, "evaluate each scenario's checked-in SLO objectives on the virtual clock (burn-rate alerting with critical-path attribution) and print the compliance table")
	sloOut := flag.String("slo-out", "", "write the per-run SLO compliance reports (score-slo/v1 JSON) to this file; implies -slo")
	failSLO := flag.Bool("fail-on-slo", false, "exit non-zero if any objective fired an alert or missed its goal; implies -slo")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), `Usage: ckptbench -exp <name> [flags]

Examples:
  ckptbench -exp fig5a                                        # one figure at paper scale
  ckptbench -exp all -scale small                             # everything, 1/16 scale
  ckptbench -exp pipeline -scale small \
      -trace-out trace.json -critpath-out critpath.json       # mono-vs-chunked transfer comparison with
                                                              # per-component latency attribution; writes
                                                              # trace-pipeline-mono.json, trace-pipeline-chunked.json,
                                                              # and the score-critpath/v1 breakdown JSON
  ckptbench -list                                             # enumerate experiments

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, n := range experimentNames {
			fmt.Println(n)
		}
		return
	}

	// Validate the flag set up front: a bad combination exits with a
	// usage error before any (potentially long) experiment runs.
	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ckptbench: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *exp == "" {
		usageErr("-exp required (use -list to enumerate)")
	}
	if *exp != "all" {
		known := false
		for _, n := range experimentNames {
			if *exp == n {
				known = true
				break
			}
		}
		if !known {
			usageErr("unknown experiment %q (registered: %s, all)", *exp, strings.Join(experimentNames, ", "))
		}
	}
	if *sample < 0 {
		usageErr("-sample must be non-negative (got %v)", *sample)
	}
	if *sample > 0 && *metricsOut == "" && *promListen == "" {
		usageErr("-sample records series only with -metrics-out or -prom-listen; add one or drop -sample")
	}
	if *chunk < 0 {
		usageErr("-chunk must be non-negative (got %d)", *chunk)
	}
	// Output paths are validated before any experiment runs: discovering
	// an unwritable directory after a long sweep would discard its data.
	if *benchTime < 0 {
		usageErr("-benchtime must be non-negative (got %v)", *benchTime)
	}
	for _, out := range []struct{ flag, path string }{
		{"-metrics-out", *metricsOut},
		{"-trace-out", *traceOut},
		{"-critpath-out", *critpathOut},
		{"-cpuprofile", *cpuProfile},
		{"-memprofile", *memProfile},
		{"-slo-out", *sloOut},
	} {
		if out.path == "" {
			continue
		}
		dir := filepath.Dir(out.path)
		if info, err := os.Stat(dir); err != nil || !info.IsDir() {
			usageErr("%s %q: directory %q does not exist", out.flag, out.path, dir)
		}
	}

	var scale experiments.Scale
	switch *scaleName {
	case "full":
		scale = experiments.Full()
	case "small":
		scale = experiments.Small()
	default:
		usageErr("unknown scale %q", *scaleName)
	}

	registry := metrics.NewRegistry()
	var critRuns []report.CritPathRun
	recordMetrics := *metricsOut != "" || *promListen != ""
	collectCritPaths := *critpathOut != "" || *failUnattributed
	if recordMetrics || collectCritPaths {
		experiments.SetShotObserver(func(res experiments.ShotResult) {
			merged := res.MergedSummary()
			if recordMetrics {
				registry.Record(res.Label(), merged)
				if len(res.Series) > 0 {
					registry.RecordSeries(res.Label(), res.Series)
				}
			}
			if collectCritPaths {
				critRuns = append(critRuns, report.CritPathRun{
					Label: res.Label(), Records: merged.CritPaths,
				})
			}
		})
	}
	experiments.SetDefaultSampleInterval(*sample)
	experiments.SetDefaultChunkSize(*chunk)
	experiments.SetDefaultParallelSim(*parallelSim)
	sloOn := *sloFlag || *sloOut != "" || *failSLO
	var sloRuns []report.SLORun
	if sloOn {
		experiments.SetSLO(true)
		experiments.SetSLOObserver(func(label string, rep slo.Report) {
			sloRuns = append(sloRuns, report.SLORun{Label: label, Report: rep})
		})
	}
	if *traceOut != "" {
		experiments.SetDefaultTraceSink(func(label string, tr *trace.Tracer) {
			path := tracePath(*traceOut, label)
			if err := writeTrace(path, tr); err != nil {
				fmt.Fprintf(os.Stderr, "ckptbench: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			if ev, cnt := tr.Dropped(); ev > 0 || cnt > 0 {
				fmt.Fprintf(os.Stderr, "ckptbench: warning: %s is incomplete (%d spans, %d counter samples dropped at the retention cap)\n", path, ev, cnt)
			}
			fmt.Printf("wrote trace %s\n", path)
		})
	}
	if *promListen != "" {
		go servePrometheus(*promListen, registry)
	}

	names := []string{*exp}
	if *exp == "all" {
		names = experimentNames
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckptbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ckptbench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("wrote CPU profile %s\n", *cpuProfile)
		}()
	}
	start := time.Now()
	for {
		for _, name := range names {
			if err := run(name, scale); err != nil {
				fmt.Fprintf(os.Stderr, "ckptbench: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		if *benchTime <= 0 || time.Since(start) >= *benchTime {
			break
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckptbench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // settle live-heap numbers before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ckptbench: writing heap profile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote allocation profile %s\n", *memProfile)
	}

	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, registry); err != nil {
			fmt.Fprintf(os.Stderr, "ckptbench: writing %s: %v\n", *metricsOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics for %d run(s) to %s\n", registry.Len(), *metricsOut)
	}
	if *critpathOut != "" {
		if err := report.WriteCritPathFile(*critpathOut, critRuns); err != nil {
			fmt.Fprintf(os.Stderr, "ckptbench: writing %s: %v\n", *critpathOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote critical-path attribution for %d run(s) to %s\n", len(critRuns), *critpathOut)
	}
	if sloOn {
		if err := report.SLOTable(sloRuns).Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ckptbench: rendering slo table: %v\n", err)
			os.Exit(1)
		}
		for _, run := range sloRuns {
			for _, w := range run.Report.Warnings {
				fmt.Fprintf(os.Stderr, "ckptbench: warning: %s: %s\n", run.Label, w)
			}
		}
		if *sloOut != "" {
			if err := report.WriteSLOFile(*sloOut, sloRuns); err != nil {
				fmt.Fprintf(os.Stderr, "ckptbench: writing %s: %v\n", *sloOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote slo compliance for %d run(s) to %s\n", len(sloRuns), *sloOut)
		}
		if *failSLO {
			var breached []string
			for _, run := range sloRuns {
				if run.Report.Breached() {
					breached = append(breached, run.Label)
				}
			}
			if len(breached) > 0 {
				fmt.Fprintf(os.Stderr, "ckptbench: slo breached in %d run(s): %s\n",
					len(breached), strings.Join(breached, ", "))
				os.Exit(1)
			}
			fmt.Printf("slo compliance: %d run(s), no alerts fired, no goals missed\n", len(sloRuns))
		}
	}
	if *failUnattributed {
		// The per-rank metrics invariants already fail a shot whose
		// attribution leaves a gap; this re-checks the aggregated export
		// so the artifact itself is the proof.
		var gap time.Duration
		var records int
		for _, run := range critRuns {
			records += len(run.Records)
			gap += metrics.Summary{CritPaths: run.Records}.CritPathUnattributed()
		}
		if gap > 0 {
			fmt.Fprintf(os.Stderr, "ckptbench: unattributed latency gap %v across %d attribution records\n", gap, records)
			os.Exit(1)
		}
		fmt.Printf("attribution complete: 0 unattributed across %d records\n", records)
	}
	if *promListen != "" {
		fmt.Printf("serving Prometheus metrics on %s/metrics (interrupt to exit)\n", *promListen)
		waitForInterrupt()
	}
}

// tracePath derives the per-shot trace filename: base "trace.json" and
// label "pipeline/mono" become "trace-pipeline-mono.json".
func tracePath(base, label string) string {
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, label)
	for strings.Contains(slug, "--") {
		slug = strings.ReplaceAll(slug, "--", "-")
	}
	slug = strings.Trim(slug, "-")
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "-" + slug + ext
}

// writeTrace dumps one shot's Chrome trace to path.
func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics dumps the registry's JSON export to path.
func writeMetrics(path string, registry *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := registry.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// servePrometheus exposes the registry in Prometheus text exposition
// format; scrapes during the run see the experiments completed so far.
// The mux also serves the net/http/pprof handlers, so a long sweep can
// be profiled live (go tool pprof http://<addr>/debug/pprof/profile)
// without restarting it under -cpuprofile. The handlers are registered
// explicitly: the package's DefaultServeMux side-effect registration
// does not reach this private mux.
func servePrometheus(addr string, registry *metrics.Registry) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := registry.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintf(os.Stderr, "ckptbench: -prom-listen: %v\n", err)
		os.Exit(1)
	}
}

func waitForInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}

func run(name string, scale experiments.Scale) error {
	start := time.Now()
	defer func() {
		fmt.Printf("(%s completed in %v wall time)\n\n", name, time.Since(start).Round(time.Millisecond))
	}()
	switch name {
	case "table1":
		tab := report.NewTable("Table 1 — Compared approaches", "notation", "prefetch hints")
		for _, c := range experiments.Table1() {
			hints := map[experiments.HintMode]string{
				experiments.NoHints: "0", experiments.SingleHint: "1", experiments.AllHints: "All",
			}[c.Hints]
			tab.AddRow(c.Label(), hints)
		}
		return tab.Render(os.Stdout)
	case "fig4":
		stats, err := experiments.Fig4(scale, 32)
		if err != nil {
			return err
		}
		tab := report.NewTable("Fig. 4 — Size distribution of 32 RTM snapshots",
			"snapshot", "min", "avg", "max")
		step := len(stats) / 24
		if step == 0 {
			step = 1
		}
		var avgs []float64
		for i, st := range stats {
			avgs = append(avgs, float64(st.Avg))
			if i%step == 0 {
				tab.AddRow(st.Snapshot, sizeMB(st.Min), sizeMB(st.Avg), sizeMB(st.Max))
			}
		}
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("avg-size curve: %s\n", report.Sparkline(avgs))
		return nil
	case "fig5a":
		return renderFig(experiments.Fig5(scale, true))
	case "fig5b":
		return renderFig(experiments.Fig5(scale, false))
	case "fig6a":
		return renderFig(experiments.Fig6(scale, true))
	case "fig6b":
		return renderFig(experiments.Fig6(scale, false))
	case "fig7":
		fig, err := experiments.Fig7(scale)
		if err != nil {
			return err
		}
		if err := fig.Render(os.Stdout); err != nil {
			return err
		}
		return renderFig7Series(fig)
	case "fig8a":
		return renderFig(experiments.Fig8a(scale, nil))
	case "fig8b":
		return renderFig(experiments.Fig8b(scale, nil))
	case "fig9a":
		return renderFig(experiments.Fig9(scale, true, nil))
	case "fig9b":
		return renderFig(experiments.Fig9(scale, false, nil))
	case "ablations":
		abl, err := experiments.Ablations(scale)
		if err != nil {
			return err
		}
		return abl.Render(os.Stdout)
	case "evict":
		res, err := experiments.EvictionMatrix(scale)
		if err != nil {
			return err
		}
		return res.Render(os.Stdout)
	case "rankfail":
		return runRankFail()
	case "pipeline":
		res, err := experiments.Pipeline(scale)
		if err != nil {
			return err
		}
		return res.Render(os.Stdout)
	case "preempt":
		return runPreempt(scale)
	case "migrate":
		return runMigrate()
	case "elastic":
		return runElastic()
	case "straggler":
		return runStraggler()
	default:
		return fmt.Errorf("unknown experiment %q (registered: %s)", name, strings.Join(experimentNames, ", "))
	}
}

// runPreempt sweeps the preemption grace window and answers the paper's
// operational question — can the ladder drain the backlog (48 GB at full
// scale) before the reclaim lands? — with the deadline-hit rate and
// drain throughput per window, plus one complete drain manifest.
func runPreempt(scale experiments.Scale) error {
	cfg := experiments.PreemptConfig{}
	if scale.Bandwidth != 1 {
		// 1/16-scale backlog with windows shrunk to match, preserving the
		// full sweep's miss-to-hit gradient.
		cfg.Size = 256 << 20
		cfg.Windows = []time.Duration{
			125 * time.Millisecond, 312 * time.Millisecond, 1 * time.Second, 2 * time.Second,
		}
	}
	res, err := experiments.Preemption(cfg)
	if err != nil {
		return err
	}
	backlog := float64(int64(res.Config.Checkpoints)*res.Config.Size) / 1e9
	tab := report.NewTable(
		fmt.Sprintf("Preemption drain — %.0f GB backlog, oldest-durability-first triage", backlog),
		"grace window", "runs", "deadline hits", "hit rate", "durable", "abandoned", "discarded", "GB/s of grace")
	for _, cell := range res.Cells {
		tab.AddRow(
			cell.Window, cell.Runs,
			fmt.Sprintf("%d/%d", cell.DeadlineHits, cell.Runs),
			fmt.Sprintf("%.0f%%", 100*cell.HitRate()),
			sizeMB(cell.DurableBytes),
			sizeMB(cell.AbandonedBytes),
			sizeMB(cell.DiscardedBytes),
			fmt.Sprintf("%.2f", cell.DrainThroughput()),
		)
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	m := res.SampleManifest
	fmt.Printf("sample drain manifest (window %v): %s\n", m.Grace, m)
	for _, e := range m.Entries {
		detail := e.Tier
		if e.Outcome == score.DrainAbandoned {
			detail = e.Reason
		}
		fmt.Printf("  v%-3d %-10s %-16s %-24s t=%v\n", e.Version, sizeMB(e.Size), e.Outcome, detail, e.At)
	}
	return nil
}

// runStraggler sweeps NVMe slowdown severity with hedged restores off
// and on and prints the restore-tail contrast: the gray-failure
// machinery's value is the gap between the two P99 columns at high
// severity (hedge wins racing the PFS replica, or a health quarantine
// routing around the straggler entirely).
func runStraggler() error {
	res, err := experiments.Straggler(experiments.StragglerConfig{})
	if err != nil {
		return err
	}
	backlog := float64(int64(res.Config.Checkpoints)*res.Config.Size) / 1e9
	tab := report.NewTable(
		fmt.Sprintf("Straggler restores — %.1f GB over a silently degraded NVMe link, SSD→PFS hedge ladder", backlog),
		"severity", "mode", "restores", "p50", "p99", "max", "hedges (wins)", "wasted", "stalls (rerouted)", "quarantines")
	for _, c := range res.Cells {
		mode := "unhedged"
		if c.Hedged {
			mode = "hedged"
		}
		tab.AddRow(
			fmt.Sprintf("%g×", c.Severity), mode, c.Restores,
			c.P50, c.P99, c.Max,
			fmt.Sprintf("%d (%d)", c.HedgesLaunched, c.HedgeWins),
			sizeMB(c.HedgeWastedBytes),
			fmt.Sprintf("%d (%d)", c.StallsDetected, c.StallsRerouted),
			c.HealthQuarantines,
		)
	}
	return tab.Render(os.Stdout)
}

// runMigrate runs the live-migration scenario twice — clean and with an
// injected copy fault — and prints the cutover outcomes side by side.
func runMigrate() error {
	tab := report.NewTable("Live migration — SSD tier to successor node, racing foreground traffic",
		"copy fault", "versions", "live rounds", "final validated", "migrated", "faults fired", "restored", "bit-exact")
	for _, inject := range []bool{false, true} {
		root, err := os.MkdirTemp("", "ckptbench-migrate-*")
		if err != nil {
			return err
		}
		res, err := experiments.Migration(experiments.MigrateConfig{
			StoreRoot:   root,
			InjectFault: inject,
		})
		os.RemoveAll(root)
		if err != nil {
			return err
		}
		tab.AddRow(
			map[bool]string{false: "off", true: "injected"}[inject],
			res.Versions,
			res.Live.Rounds,
			map[bool]string{false: "NO", true: "yes"}[res.Final.Validated],
			sizeMB(res.MigratedBytes),
			res.InjectedFaults,
			fmt.Sprintf("%d/%d", res.RestoredVersions, res.Versions),
			map[bool]string{false: "NO", true: "yes"}[res.Recoverable],
		)
	}
	return tab.Render(os.Stdout)
}

// runElastic re-shards checkpoint state across membership changes in both
// directions and prints the recomputed frontier and restore outcomes.
func runElastic() error {
	tab := report.NewTable("Elastic restart — re-shard N ranks onto M at a new membership epoch",
		"transition", "epoch", "committed", "frontier", "tracker consistent", "shards restored", "recoverable")
	for _, tr := range []struct{ from, to int }{{4, 2}, {2, 3}} {
		root, err := os.MkdirTemp("", "ckptbench-elastic-*")
		if err != nil {
			return err
		}
		res, err := experiments.Elastic(experiments.ElasticConfig{
			StoreRoot: root,
			FromRanks: tr.from,
			ToRanks:   tr.to,
		})
		os.RemoveAll(root)
		if err != nil {
			return err
		}
		tab.AddRow(
			fmt.Sprintf("%d -> %d ranks", res.FromRanks, res.ToRanks),
			res.Epoch,
			res.Committed,
			fmt.Sprintf("v%d", res.Frontier),
			map[bool]string{false: "NO", true: "yes"}[res.TrackerConsistent],
			fmt.Sprintf("%d/%d", res.RestoredShards, res.FromRanks),
			map[bool]string{false: "NO", true: "yes"}[res.Recoverable],
		)
	}
	return tab.Render(os.Stdout)
}

func renderFig(fig experiments.FigureResult, err error) error {
	if err != nil {
		return err
	}
	return fig.Render(os.Stdout)
}

// renderFig7Series prints the per-timestep restore rate and prefetch
// distance curves (downsampled) for each hint budget.
func renderFig7Series(fig experiments.FigureResult) error {
	for _, hints := range []string{"No hints", "Single hint", "All hints"} {
		series := fig.Series[hints]
		if len(series) == 0 {
			continue
		}
		tab := report.NewTable(fmt.Sprintf("Fig. 7 series — %s (Score)", hints),
			"iteration", "restore rate", "next prefetches completed")
		step := len(series) / 16
		if step == 0 {
			step = 1
		}
		var rates, dists []float64
		for i, p := range series {
			rate := float64(p.Bytes) / maxSeconds(p.Blocked)
			rates = append(rates, rate)
			dists = append(dists, float64(p.PrefetchDistance))
			if i%step == 0 {
				tab.AddRow(p.Iteration, metrics.FormatBytesPerSec(rate), p.PrefetchDistance)
			}
		}
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("restore-rate curve:     %s\n", report.Sparkline(rates))
		fmt.Printf("prefetch-distance curve: %s\n\n", report.Sparkline(dists))
	}
	return nil
}

// runRankFail runs the cluster failure scenario twice — with and without
// partner-copy replication — and prints the recovery outcomes side by
// side: a full-node kill mid-flush is survivable only with replication.
func runRankFail() error {
	tab := report.NewTable("Rank failure — node kill mid-flush, restart from LatestConsistent()",
		"partner copy", "ranks killed", "commit lag", "partner bytes", "recoverable", "restored version", "ranks restored")
	for _, partner := range []bool{false, true} {
		root, err := os.MkdirTemp("", "ckptbench-rankfail-*")
		if err != nil {
			return err
		}
		res, err := experiments.RankFailure(experiments.RankFailConfig{
			StoreRoot:   root,
			PartnerCopy: partner,
		})
		os.RemoveAll(root)
		if err != nil {
			return err
		}
		restored := "—"
		if res.Recoverable {
			restored = fmt.Sprintf("v%d", res.LatestConsistent)
		}
		tab.AddRow(
			map[bool]string{false: "off", true: "on"}[partner],
			len(res.Killed), res.CommitLag,
			sizeMB(res.PartnerCopyBytes),
			map[bool]string{false: "NO", true: "yes"}[res.Recoverable],
			restored,
			fmt.Sprintf("%d/%d", res.RestoredRanks, res.Ranks),
		)
	}
	return tab.Render(os.Stdout)
}

func maxSeconds(d time.Duration) float64 {
	s := d.Seconds()
	if s <= 0 {
		return 1e-9
	}
	return s
}

func sizeMB(b int64) string { return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20)) }
