package score_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"score"
)

// TestKillMidFlushSurvivorsUnaffected kills one of two co-located ranks
// while its flush queue is full. The dead rank's in-flight flushes must
// resolve as lost (conservation stays balanced), every later API call
// returns ErrKilled, and the surviving rank — sharing the node's NVMe and
// PFS links — drains cleanly, losing nothing.
func TestKillMidFlushSurvivorsUnaffected(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	const n = 12
	payload := func(rank, v int) []byte {
		return bytes.Repeat([]byte{byte(0x10*rank + v + 1)}, 1<<20)
	}

	sim, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := sim.NewCommitTracker(2)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(func() {
		a, err := sim.NewClient(0, 0,
			score.WithGPUCache(2<<20), score.WithHostCache(4<<20),
			score.WithStore(dirA), score.WithCommitTracker(tracker, 0))
		if err != nil {
			t.Fatal(err)
		}
		b, err := sim.NewClient(0, 1,
			score.WithGPUCache(2<<20), score.WithHostCache(4<<20),
			score.WithStore(dirB), score.WithCommitTracker(tracker, 1))
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()

		wg := sim.NewWaitGroup()
		wg.Add(1)
		sim.Clock().Go(func() {
			defer wg.Done()
			for v := 0; v < n; v++ {
				if err := b.Checkpoint(int64(v), payload(1, v)); err != nil {
					t.Errorf("survivor checkpoint %d: %v", v, err)
					return
				}
				b.Compute(time.Millisecond)
			}
		})

		// Fill rank A's flush queue back-to-back, then kill it with
		// transfers in flight.
		for v := 0; v < n; v++ {
			if err := a.Checkpoint(int64(v), payload(0, v)); err != nil {
				t.Fatalf("checkpoint %d: %v", v, err)
			}
		}
		sim.Clock().Sleep(200 * time.Microsecond)
		a.Kill()
		if !a.Killed() {
			t.Error("Killed() false after Kill")
		}

		// The dead rank answers every call with ErrKilled.
		if err := a.Checkpoint(n, payload(0, n)); !errors.Is(err, score.ErrKilled) {
			t.Errorf("Checkpoint after kill = %v, want ErrKilled", err)
		}
		if _, err := a.Restart(0); !errors.Is(err, score.ErrKilled) {
			t.Errorf("Restart after kill = %v, want ErrKilled", err)
		}
		if err := a.WaitFlush(); !errors.Is(err, score.ErrKilled) {
			t.Errorf("WaitFlush after kill = %v, want ErrKilled", err)
		}

		// Every accepted byte has a decided fate: durable before the kill
		// or lost with it. The quiescent balance must hold exactly.
		if err := a.CheckMetricsInvariants(true); err != nil {
			t.Errorf("killed rank invariants: %v", err)
		}
		st := a.Stats()
		if st.RankDeaths != 1 {
			t.Errorf("killed rank RankDeaths = %d, want 1", st.RankDeaths)
		}
		sum := a.MetricsSummary()
		if sum.LostBytes == 0 {
			t.Error("kill mid-flush lost nothing — the queue was already drained")
		}
		if sum.AcceptedBytes != sum.DurableBytes+sum.DiscardedBytes+sum.LostBytes {
			t.Errorf("conservation broken after kill: accepted %d != durable %d + discarded %d + lost %d",
				sum.AcceptedBytes, sum.DurableBytes, sum.DiscardedBytes, sum.LostBytes)
		}

		// The survivor is unaffected: full drain, nothing lost, and its
		// restores still work over the shared links.
		wg.Wait()
		if err := b.WaitFlush(); err != nil {
			t.Fatalf("survivor WaitFlush: %v", err)
		}
		if sumB := b.MetricsSummary(); sumB.LostBytes != 0 || sumB.FlushAborts != 0 {
			t.Errorf("survivor lost bytes (%d) or aborted flushes (%d)", sumB.LostBytes, sumB.FlushAborts)
		}
		got, err := b.Restart(0)
		if err != nil || !bytes.Equal(got, payload(1, 0)) {
			t.Errorf("survivor restart after co-rank kill: %v", err)
		}
		if st := b.Stats(); st.RankDeaths != 0 {
			t.Errorf("survivor RankDeaths = %d, want 0", st.RankDeaths)
		}

		// Group commit saw the death, and the frontier can only trail the
		// survivor's newest durable version.
		if tracker.RankDeaths() != 1 {
			t.Errorf("tracker RankDeaths = %d, want 1", tracker.RankDeaths())
		}
		if dead := tracker.DeadRanks(); len(dead) != 1 || dead[0] != 0 {
			t.Errorf("DeadRanks = %v, want [0]", dead)
		}
		if lc, ok := tracker.LatestConsistent(); ok && lc >= n-1 {
			t.Errorf("latest consistent %d despite rank 0 dying mid-job", lc)
		}
	})

	// Ground truth on disk: rank A's store holds only fully committed
	// checkpoints — whatever was durable before the kill, never garbage.
	files, err := filepath.Glob(filepath.Join(dirA, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) >= n {
		t.Errorf("killed rank persisted all %d checkpoints — kill landed after the drain", len(files))
	}
}

// TestDegradedTierHealsAfterFaultWindow (regression for the degradation
// ladder's recovery path): an SSD outage degrades the tier and reroutes
// to the PFS, but once the fault window closes and the probe interval
// elapses, the client re-promotes the SSD instead of staying degraded
// forever.
func TestDegradedTierHealsAfterFaultWindow(t *testing.T) {
	ssdDir, pfsDir := t.TempDir(), t.TempDir()
	payload := func(v int) []byte {
		return bytes.Repeat([]byte{byte(0x21 * (v + 1))}, 256*1024)
	}

	sim, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	inj := sim.NewFaultInjector(11,
		score.FailWindow(score.FaultNVMe, 0, 20*time.Millisecond),
		score.FailWindow(score.FaultStoreWrite, 0, 20*time.Millisecond))
	sim.Run(func() {
		c, err := sim.NewClient(0, 0,
			score.WithGPUCache(1<<20), score.WithHostCache(4<<20),
			score.WithStore(ssdDir), score.WithPFSStore(pfsDir),
			score.WithFaultInjector(inj))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()

		// v0 lands during the outage: SSD degrades, the PFS leg saves it.
		if err := c.Checkpoint(0, payload(0)); err != nil {
			t.Fatal(err)
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		if tiers := c.DegradedTiers(); len(tiers) != 1 || tiers[0] != "ssd" {
			t.Fatalf("DegradedTiers after outage = %v, want [ssd]", tiers)
		}

		// Fault window closes and the recovery probe interval elapses;
		// the next flush probes the SSD, succeeds, and heals the tier.
		c.Compute(150 * time.Millisecond)
		if err := c.Checkpoint(1, payload(1)); err != nil {
			t.Fatal(err)
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		if tiers := c.DegradedTiers(); len(tiers) != 0 {
			t.Errorf("DegradedTiers after recovery = %v, want none", tiers)
		}
		if st := c.Stats(); st.TierRecoveries == 0 {
			t.Error("no TierRecoveries recorded after the tier healed")
		}
		if err := c.CheckMetricsInvariants(true); err != nil {
			t.Errorf("metrics invariants: %v", err)
		}
	})

	// The healed tier is really in use again: v1 reached the SSD store.
	files, err := filepath.Glob(filepath.Join(ssdDir, "1.ckpt"))
	if err != nil || len(files) != 1 {
		t.Errorf("v1 not persisted to the healed SSD store (%v, %v)", files, err)
	}
}
