package score_test

import (
	"flag"
	"testing"
	"time"

	"score/internal/experiments"
	"score/internal/report"
)

// stragglerOut, when set, makes the smoke test write its restore-tail
// measurements as a bench-record JSON file (make bench-smoke passes
// BENCH_straggler.json). Distinct from bench.out: both live in this
// package, and duplicate flag names panic at init.
var stragglerOut = flag.String("straggler.out", "", "write straggler restore-tail bench records to this JSON file")

// TestStragglerSmoke is the `make bench-smoke` gray-failure gate: a
// small severity sweep whose acceptance bound — at 20× slowdown on the
// SSD path, hedged P99 restore blocking at most 0.5× the unhedged P99 —
// must hold, and whose healthy control must show hedging is free. The
// bench records track the P99 per cell so regressions in the adaptive
// deadline or the hedge race surface as tail growth across commits.
func TestStragglerSmoke(t *testing.T) {
	cfg := experiments.StragglerConfig{
		Checkpoints: 12,
		Size:        32 << 20,
		Interval:    2 * time.Millisecond,
		Severities:  []float64{1, 5, 20},
	}
	res, err := experiments.Straggler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2*len(cfg.Severities) {
		t.Fatalf("sweep returned %d cells for %d severities", len(res.Cells), len(cfg.Severities))
	}
	for _, c := range res.Cells {
		t.Logf("%-16s p50 %-12v p99 %-12v max %-12v hedges %d wins %d wasted %d MB stalls %d/%d quarantines %d",
			c.Label(), c.P50, c.P99, c.Max, c.HedgesLaunched, c.HedgeWins,
			c.HedgeWastedBytes>>20, c.StallsDetected, c.StallsRerouted, c.HealthQuarantines)
	}

	// Healthy control: hedging enabled but never needed must not move the
	// tail at all — the deadline machinery is pure observation until a
	// transfer actually runs late.
	unHealthy, ok1 := res.Cell(1, false)
	heHealthy, ok2 := res.Cell(1, true)
	if !ok1 || !ok2 {
		t.Fatal("healthy control cells missing")
	}
	if unHealthy.P99 != heHealthy.P99 {
		t.Errorf("healthy control: hedged p99 %v != unhedged p99 %v", heHealthy.P99, unHealthy.P99)
	}

	// The acceptance gate: at 20× slowdown, hedged P99 ≤ 0.5× unhedged.
	un, ok1 := res.Cell(20, false)
	he, ok2 := res.Cell(20, true)
	if !ok1 || !ok2 {
		t.Fatal("severity-20 cells missing")
	}
	if un.P99 <= unHealthy.P99 {
		t.Errorf("severity-20 unhedged p99 %v not above healthy p99 %v — the straggler never engaged",
			un.P99, unHealthy.P99)
	}
	if he.P99 > un.P99/2 {
		t.Errorf("severity-20 hedged p99 %v > 0.5 × unhedged p99 %v — the hedge gate failed", he.P99, un.P99)
	}

	if *stragglerOut != "" {
		var records []report.BenchRecord
		for _, c := range res.Cells {
			records = append(records, report.BenchRecord{
				Name:       "straggler/" + c.Label(),
				NsPerOp:    float64(c.P99.Nanoseconds()),
				BytesMoved: c.RestoredBytes,
				// OverlapRatio carries the hedge win rate: same 0..1 shape,
				// tracked per cell across commits.
				OverlapRatio: winRate(c),
			})
		}
		if err := report.WriteBenchFile(*stragglerOut, records); err != nil {
			t.Fatalf("writing %s: %v", *stragglerOut, err)
		}
		t.Logf("wrote %d bench records to %s", len(records), *stragglerOut)
	}
}

func winRate(c experiments.StragglerCell) float64 {
	if c.HedgesLaunched == 0 {
		return 0
	}
	return float64(c.HedgeWins) / float64(c.HedgesLaunched)
}
