package score

import (
	"score/internal/core"
	"score/internal/faultinject"
)

// This file re-exports the fault-injection vocabulary so applications can
// build schedules against the public API alone. A FaultInjector is
// created per simulation with Sim.NewFaultInjector and attached to
// clients with WithFaultInjector; rules target the sites below. See
// internal/faultinject for the full semantics.

// FaultInjector evaluates a deterministic, seeded fault schedule.
type FaultInjector = faultinject.Injector

// FaultRule describes one fault; build rules with the constructors below.
type FaultRule = faultinject.Rule

// FaultSite identifies an I/O operation class a rule can target.
type FaultSite = faultinject.Site

// The injectable sites of a client's pipeline.
const (
	// FaultPCIe is the GPU↔host copy engine (D2H and H2D transfers).
	FaultPCIe = faultinject.SitePCIe
	// FaultNVMe is the node-local SSD link, both directions (shared by
	// the node's clients).
	FaultNVMe = faultinject.SiteNVMe
	// FaultPFS is the parallel file system link, both directions.
	FaultPFS = faultinject.SitePFS
	// FaultStoreWrite is a durable write to the SSD checkpoint store.
	FaultStoreWrite = faultinject.SiteStoreWrite
	// FaultStoreRead is a durable read from the SSD checkpoint store.
	FaultStoreRead = faultinject.SiteStoreRead
	// FaultPFSStoreWrite is a durable write to the PFS checkpoint store.
	FaultPFSStoreWrite = faultinject.SitePFSStoreWrite
	// FaultPFSStoreRead is a durable read from the PFS checkpoint store.
	FaultPFSStoreRead = faultinject.SitePFSStoreRead
	// FaultHostAlloc is pinned host memory allocation (pressure slows
	// it; it never fails outright).
	FaultHostAlloc = faultinject.SiteHostAlloc
)

// ErrFaultInjected is the root of every injected failure; match with
// errors.Is to tell injected faults from real ones.
var ErrFaultInjected = faultinject.ErrInjected

// Definitive restore outcomes, re-exported so applications can classify
// failures with errors.Is against the public API alone.
var (
	// ErrLost: no tier holds a readable copy of the checkpoint. This is
	// the terminal verdict of the whole degradation ladder — sequential
	// or hedged — and of a drain that failed a version open.
	ErrLost = core.ErrLost
	// ErrTierIO: a tier I/O operation kept failing through every retry.
	// Restore errors that carry it name the deepest leg that failed.
	ErrTierIO = core.ErrTierIO
)

// Rule constructors, mirroring internal/faultinject.
var (
	// FailNth fails the Nth operation at site (1-based).
	FailNth = faultinject.FailNth
	// FailProb fails each operation at site with probability p.
	FailProb = faultinject.FailProb
	// FailAfter is a persistent outage: every operation at site fails
	// from simulated time t on.
	FailAfter = faultinject.FailAfter
	// FailWindow fails every operation at site within [after, until).
	FailWindow = faultinject.FailWindow
	// FailID fails every operation at site touching checkpoint id.
	FailID = faultinject.FailID
	// CorruptNth corrupts the Nth operation at site (1-based).
	CorruptNth = faultinject.CorruptNth
	// CorruptProb corrupts each operation at site with probability p.
	CorruptProb = faultinject.CorruptProb
	// CorruptID corrupts every operation at site touching checkpoint id.
	CorruptID = faultinject.CorruptID
	// SlowLink degrades site to scale× bandwidth within [after, until).
	SlowLink = faultinject.Slow
	// DelayOps adds fixed latency to operations at site within
	// [after, until).
	DelayOps = faultinject.Delay
	// JitterOps adds random latency drawn uniformly from [0, max) to each
	// operation at site within [after, until) — gray-failure tail noise.
	JitterOps = faultinject.Jitter
	// StallWindow pins every operation at site arriving inside
	// [after, until) until the window closes — a bounded gray stall:
	// the operations eventually succeed, they just take until the stall
	// clears.
	StallWindow = faultinject.StallWindow
)
