package score_test

import (
	"flag"
	"runtime"
	"testing"
	"time"

	"score/internal/report"
	"score/internal/simclock"
)

// simspeedOut, when set, makes the smoke test write its measurements as
// a simspeed-record JSON file (make bench-smoke passes
// BENCH_simspeed.json).
var simspeedOut = flag.String("simspeed.out", "", "write simulator-speed records to this JSON file")

// simspeedBaselinePath is the committed regression floor the smoke test
// gates against. Its numbers are deliberately conservative (well below
// the reference container's measurements, see DESIGN.md §14) so the
// gate survives slower CI machines while still catching real
// regressions — the pre-overhaul engine misses the events/sec floor by
// 5× and the allocation ceiling by 20×.
const simspeedBaselinePath = "testdata/simspeed_baseline.json"

// measureSweep runs the 10k-rank sweep iters times and returns the
// model-events rate, the engine-wakeup rate, and the per-sweep
// allocation count.
func measureSweep(t *testing.T, iters int, opts ...simclock.VirtualOption) report.SimSpeedRecord {
	t.Helper()
	var before, after runtime.MemStats
	startWake := simclock.EventCount()
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		runRankSweep(t, sweepRanks, sweepLinks, sweepRounds, opts...)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	wakes := simclock.EventCount() - startWake
	secs := wall.Seconds()
	return report.SimSpeedRecord{
		EventsPerSec:  float64(iters*sweepModelEvents) / secs,
		WakeupsPerSec: float64(wakes) / secs,
		AllocsPerOp:   int64(after.Mallocs-before.Mallocs) / int64(iters),
		WallNsPerOp:   float64(wall.Nanoseconds()) / float64(iters),
	}
}

// TestSimSpeedSmoke is the `make bench-smoke` gate on the simulator
// engine itself: the 10k-rank sweep must stay within 20% of the
// committed events/sec baseline and must not allocate more per sweep
// than the baseline allows. The measurements (serial, parallel-wake,
// and heap-timer reference) are exported as BENCH_simspeed.json when
// -simspeed.out is set.
func TestSimSpeedSmoke(t *testing.T) {
	if raceEnabled {
		t.Skip("simulator-speed gate is meaningless under the race detector (~50× slowdown, shadow allocations)")
	}
	serial := measureSweep(t, 2)
	serial.Name = "sweep/10k-serial"
	parallel := measureSweep(t, 1, simclock.WithParallelWake())
	parallel.Name = "sweep/10k-parallel"
	heap := measureSweep(t, 1, simclock.WithHeapTimers())
	heap.Name = "sweep/10k-heap-reference"

	t.Logf("serial: %.0f events/sec, %.0f wakeups/sec, %d allocs/op",
		serial.EventsPerSec, serial.WakeupsPerSec, serial.AllocsPerOp)
	t.Logf("parallel: %.0f events/sec, %d allocs/op", parallel.EventsPerSec, parallel.AllocsPerOp)
	t.Logf("heap reference: %.0f events/sec, %d allocs/op", heap.EventsPerSec, heap.AllocsPerOp)

	baselines, err := report.LoadSimSpeedFile(simspeedBaselinePath)
	if err != nil {
		t.Fatalf("loading committed baseline: %v", err)
	}
	for _, base := range baselines {
		if base.Name != serial.Name {
			continue
		}
		if floor := base.EventsPerSec * 0.8; serial.EventsPerSec < floor {
			t.Errorf("events/sec regressed: %.0f < %.0f (80%% of committed baseline %.0f)",
				serial.EventsPerSec, floor, base.EventsPerSec)
		}
		if serial.AllocsPerOp > base.AllocsPerOp {
			t.Errorf("allocs/op regressed: %d > committed baseline %d",
				serial.AllocsPerOp, base.AllocsPerOp)
		}
	}

	if *simspeedOut != "" {
		records := []report.SimSpeedRecord{serial, parallel, heap}
		if err := report.WriteSimSpeedFile(*simspeedOut, records); err != nil {
			t.Fatalf("writing %s: %v", *simspeedOut, err)
		}
		t.Logf("wrote %d simspeed records to %s", len(records), *simspeedOut)
	}
}
