package score_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"score"
)

func TestSimTracingProducesChromeTrace(t *testing.T) {
	sim, err := score.NewSim(score.WithTracing(), score.WithGPUsPerNode(2))
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(func() {
		c, err := sim.NewClient(0, 1,
			score.WithGPUCache(16<<20), score.WithHostCache(64<<20))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for v := int64(0); v < 4; v++ {
			if err := c.CheckpointVirtual(v, 4<<20); err != nil {
				t.Fatal(err)
			}
			c.Compute(time.Millisecond)
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		for v := int64(3); v >= 0; v-- {
			if _, err := c.Restart(v); err != nil {
				t.Fatal(err)
			}
		}
	})
	var buf bytes.Buffer
	if err := sim.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var haveCkpt, haveRestore, haveFlush bool
	for _, e := range doc.TraceEvents {
		name, _ := e["name"].(string)
		switch {
		case strings.HasPrefix(name, "checkpoint "):
			haveCkpt = true
		case strings.HasPrefix(name, "restore "):
			haveRestore = true
		case strings.HasPrefix(name, "flush "):
			haveFlush = true
		}
	}
	if !haveCkpt || !haveRestore || !haveFlush {
		t.Errorf("trace missing span kinds: ckpt=%v restore=%v flush=%v",
			haveCkpt, haveRestore, haveFlush)
	}
}

func TestWriteTraceWithoutTracingFails(t *testing.T) {
	sim, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Error("WriteTrace without WithTracing should fail")
	}
}

// TestSimSamplingProducesCounterTracks checks the WithSampling facade:
// gauge timelines surface via SampledSeries and — with tracing on — as
// Chrome counter (ph "C") events in the trace export.
func TestSimSamplingProducesCounterTracks(t *testing.T) {
	sim, err := score.NewSim(score.WithTracing(), score.WithSampling(100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(func() {
		c, err := sim.NewClient(0, 0,
			score.WithGPUCache(16<<20), score.WithHostCache(64<<20))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for v := int64(0); v < 4; v++ {
			if err := c.CheckpointVirtual(v, 4<<20); err != nil {
				t.Fatal(err)
			}
			c.Compute(time.Millisecond)
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatal(err)
		}
	})

	series := sim.SampledSeries()
	used, ok := series["node0.gpu0.cache.gpu.used_bytes"]
	if !ok {
		t.Fatalf("no GPU cache occupancy series; have %d series", len(series))
	}
	if len(used) == 0 {
		t.Fatal("GPU cache occupancy series is empty")
	}
	var peak float64
	for _, p := range used {
		if p.Value > peak {
			peak = p.Value
		}
	}
	if peak == 0 {
		t.Error("GPU cache occupancy never rose above zero across 4 checkpoints")
	}

	var buf bytes.Buffer
	if err := sim.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var counters int
	for _, e := range doc.TraceEvents {
		if e.Ph == "C" && strings.HasPrefix(e.Name, "node0.gpu0.") {
			counters++
		}
	}
	if counters == 0 {
		t.Error("trace export has no counter events for the sampled client")
	}
}
