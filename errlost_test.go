package score_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"score"
)

// TestRestoreErrorClassification pins the error taxonomy of the hedged
// restore ladder: a restore either succeeds (possibly by re-routing
// around failed legs), fails with ErrTierIO when replicas exist but
// every leg's I/O kept failing, or fails with ErrLost when no tier
// holds a readable copy at all. All three verdicts must survive the
// %w-wrapping through retry, hedge race, and flush re-route paths so
// callers can classify them with errors.Is against the public API.
func TestRestoreErrorClassification(t *testing.T) {
	const (
		n       = 6
		payLen  = 128 << 10
		version = 0 // always probe the oldest — guaranteed evicted below host
	)

	cases := []struct {
		name string
		opts []score.ClientOption
		// rules installed before the run starts.
		rules func() []score.FaultRule
		// arm fires after the flush chain drained, before the probe
		// restore — the mid-run gray-to-black transition.
		arm       func(inj *score.FaultInjector, now time.Duration)
		wantIs    []error
		wantNotIs []error
		wantBytes bool
	}{
		{
			name:      "healthy ladder restores",
			opts:      []score.ClientOption{score.WithPersistToPFS()},
			wantBytes: true,
		},
		{
			name: "SSD leg dead, PFS leg re-routes",
			opts: []score.ClientOption{score.WithPersistToPFS()},
			arm: func(inj *score.FaultInjector, now time.Duration) {
				inj.Add(score.FailAfter(score.FaultNVMe, now))
			},
			wantBytes: true,
		},
		{
			name: "every deep leg fails: tier I/O, not loss",
			opts: []score.ClientOption{score.WithPersistToPFS()},
			arm: func(inj *score.FaultInjector, now time.Duration) {
				inj.Add(
					score.FailAfter(score.FaultNVMe, now),
					score.FailAfter(score.FaultPFS, now))
			},
			wantIs:    []error{score.ErrTierIO, score.ErrFaultInjected},
			wantNotIs: []error{score.ErrLost},
		},
		{
			// PCIe dead from t=0: checkpoints never leave the GPU, cache
			// pressure forces sacrificial evictions, and the evicted
			// versions are gone for good. The verdict must be ErrLost
			// alone — the flush-abort cause (a tier I/O failure on an
			// injected fault) appears as detail text, deliberately NOT
			// %w-wrapped: loss is terminal, and a chain that also matched
			// ErrTierIO or ErrFaultInjected would read as retryable.
			name: "no durable route ever existed: loss",
			rules: func() []score.FaultRule {
				return []score.FaultRule{score.FailAfter(score.FaultPCIe, 0)}
			},
			wantIs:    []error{score.ErrLost},
			wantNotIs: []error{score.ErrTierIO, score.ErrFaultInjected},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim, err := score.NewSim()
			if err != nil {
				t.Fatal(err)
			}
			var rules []score.FaultRule
			if tc.rules != nil {
				rules = tc.rules()
			}
			inj := sim.NewFaultInjector(11, rules...)
			payloads := make([][]byte, n)
			for v := range payloads {
				payloads[v] = bytes.Repeat([]byte{byte(0x31 * (v + 1))}, payLen)
			}
			sim.Run(func() {
				opts := append([]score.ClientOption{
					// Caches hold ~2 versions each, so the probe version is
					// long gone below the host tier by restore time.
					score.WithGPUCache(256 << 10), score.WithHostCache(256 << 10),
					score.WithHedgedRestores(),
					score.WithFaultInjector(inj),
				}, tc.opts...)
				c, err := sim.NewClient(0, 0, opts...)
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				for v := 0; v < n; v++ {
					if err := c.Checkpoint(int64(v), payloads[v]); err != nil {
						t.Fatalf("checkpoint %d: %v", v, err)
					}
					c.Compute(time.Millisecond)
				}
				// The loss case's flush chain is allowed (expected) to fail:
				// its only durable route is dead from t=0.
				flushErr := c.WaitFlush()
				if flushErr != nil && len(rules) == 0 {
					t.Fatalf("flush failed without a pre-installed outage: %v", flushErr)
				}
				if tc.arm != nil {
					tc.arm(inj, sim.Clock().Now())
				}
				if tc.wantBytes {
					got, err := c.Restart(version)
					if err != nil {
						t.Fatalf("restart %d: %v, want success", version, err)
					}
					if !bytes.Equal(got, payloads[version]) {
						t.Fatalf("restart %d: not bit-exact", version)
					}
				} else {
					checkFailureClassification(t, c, payloads, tc.wantIs, tc.wantNotIs)
				}
				if err := c.CheckMetricsInvariants(false); err != nil {
					t.Errorf("metrics invariants: %v", err)
				}
			})
		})
	}
}

// checkFailureClassification probes every version: sacrificial eviction
// picks its victims by cache policy, not age, so each one must either
// restore bit-exact or fail with exactly the expected classification;
// at least one must fail.
func checkFailureClassification(t *testing.T, c *score.Client, payloads [][]byte, wantIs, wantNotIs []error) {
	t.Helper()
	failures := 0
	for v := 0; v < len(payloads); v++ {
		got, err := c.Restart(int64(v))
		if err == nil {
			if !bytes.Equal(got, payloads[v]) {
				t.Errorf("restart %d: returned wrong bytes instead of an error", v)
			}
			continue
		}
		failures++
		if got != nil {
			t.Errorf("restart %d returned bytes alongside error %v", v, err)
		}
		for _, want := range wantIs {
			if !errors.Is(err, want) {
				t.Errorf("errors.Is(%v, %v) = false, want true", err, want)
			}
		}
		for _, not := range wantNotIs {
			if errors.Is(err, not) {
				t.Errorf("errors.Is(%v, %v) = true, want false", err, not)
			}
		}
	}
	if failures == 0 {
		t.Error("every restore succeeded, want at least one classified failure")
	}
}
