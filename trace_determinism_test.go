package score_test

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"

	"score"
)

// traceWorkload runs a small fixed two-GPU adjoint shot under tracing
// and returns the Chrome trace export. Everything runs on the virtual
// clock, so two invocations must produce byte-identical output.
func traceWorkload(t *testing.T) []byte {
	t.Helper()
	sim, err := score.NewSim(score.WithTracing(), score.WithGPUsPerNode(2))
	if err != nil {
		t.Fatal(err)
	}
	const versions = 6
	sim.Run(func() {
		wg := sim.NewWaitGroup()
		for g := 0; g < 2; g++ {
			g := g
			wg.Add(1)
			sim.Clock().Go(func() {
				defer wg.Done()
				c, err := sim.NewClient(0, g,
					score.WithGPUCache(16<<20), score.WithHostCache(64<<20))
				if err != nil {
					t.Error(err)
					return
				}
				defer c.Close()
				for v := int64(versions - 1); v >= 0; v-- {
					c.PrefetchEnqueue(v)
				}
				for v := int64(0); v < versions; v++ {
					if err := c.CheckpointVirtual(v, 4<<20); err != nil {
						t.Error(err)
						return
					}
					c.Compute(time.Millisecond)
				}
				if err := c.WaitFlush(); err != nil {
					t.Error(err)
					return
				}
				c.PrefetchStart()
				for v := int64(versions - 1); v >= 0; v-- {
					if _, err := c.Restart(v); err != nil {
						t.Error(err)
						return
					}
					c.Compute(time.Millisecond)
				}
			})
		}
		wg.Wait()
	})
	var buf bytes.Buffer
	if err := sim.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceExportDeterministic asserts the observability tentpole's
// reproducibility contract: the same workload on the virtual clock
// exports a byte-identical trace — span order, flow-arrow chains, and
// lifecycle timestamps included — so traces can be diffed across runs
// and golden-file tested.
func TestTraceExportDeterministic(t *testing.T) {
	first := traceWorkload(t)
	second := traceWorkload(t)
	if !bytes.Equal(first, second) {
		t.Fatalf("trace export not byte-reproducible: %d vs %d bytes", len(first), len(second))
	}
}

// flowEvent is the subset of a Chrome trace flow record the golden file
// pins down.
type flowEvent struct {
	Ph   string  `json:"ph"`
	ID   string  `json:"id"`
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Pid  float64 `json:"pid"`
	Ts   float64 `json:"ts"`
}

// TestFlowArrowsMatchGolden extracts the causal flow chain of one
// checkpoint version from the trace export and compares it against the
// checked-in golden file. Regenerate with UPDATE_GOLDEN=1 go test
// -run TestFlowArrowsMatchGolden . after an intentional change.
func TestFlowArrowsMatchGolden(t *testing.T) {
	raw := traceWorkload(t)
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	// Version 1 on GPU 0: flow ID (gpu+1)<<32 | (version+1).
	wantID := "4294967298"
	var chain []flowEvent
	for _, rawEv := range doc.TraceEvents {
		var ev flowEvent
		if err := json.Unmarshal(rawEv, &ev); err != nil {
			t.Fatal(err)
		}
		if (ev.Ph == "s" || ev.Ph == "t" || ev.Ph == "f") && ev.ID == wantID {
			chain = append(chain, ev)
		}
	}
	if len(chain) < 3 {
		t.Fatalf("flow chain for version 1 has %d events, want at least start+step+finish", len(chain))
	}
	if chain[0].Ph != "s" || chain[len(chain)-1].Ph != "f" {
		t.Fatalf("flow chain must open with ph=s and close with ph=f: %+v", chain)
	}

	got, err := json.MarshalIndent(chain, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	const golden = "testdata/flow_arrows.golden.json"
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d flow events)", golden, len(chain))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("flow-arrow chain drifted from golden file %s\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}
