GO ?= go

.PHONY: verify build test vet vet-deprecated staticcheck race chaos chaos-rank chaos-preempt chaos-straggler bench bench-smoke bench-evict fuzz-smoke trace-smoke slo-smoke results clean

# verify is the pre-merge gate: static checks, a full build, and the
# race-enabled test suite (which includes a short chaos soak).
verify: vet vet-deprecated staticcheck build race

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is available (CI installs it; local
# environments without it skip with a note rather than failing verify).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# vet-deprecated fails if non-test code calls the fault-blind transfer
# shims (Transfer / PipelinedTransfer / CopyD2H / CopyH2D); production
# paths must use the Try* variants so injected faults surface. The shims
# stay for tests and external callers.
vet-deprecated:
	@bad=$$(grep -rnE '\.(Transfer|PipelinedTransfer|CopyD2H|CopyH2D)\(' \
		--include='*.go' --exclude='*_test.go' . || true); \
	if [ -n "$$bad" ]; then \
		echo "deprecated fault-blind transfer calls in non-test code (use Try*):"; \
		echo "$$bad"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos replays a longer campaign of seeded fault schedules against the
# checkpoint pipeline (see chaos_test.go and DESIGN.md §8).
chaos:
	$(GO) test -race -run TestChaosSoak . -args -chaos.schedules=200

# chaos-rank soaks the cluster failure model under -race: seeded
# rank/node kills mid-flush, partner-copy recovery, and the restart
# path's bit-exactness contract (DESIGN.md §11).
chaos-rank:
	$(GO) test -race -count 5 -run 'TestRankFailure|TestKillMidFlush|TestDegradedTierHeals' . ./internal/experiments

# chaos-preempt soaks the scheduling-events layer under -race: seeded
# preemption notices with fault rules aimed at the drain window, plus
# live migrations through migrate-site fault schedules (DESIGN.md §13).
# Every run must end in a complete drain manifest or a definitive error.
chaos-preempt:
	$(GO) test -race -run 'TestPreemptChaosSoak|TestMigrateChaosSoak' . -args -preempt.schedules=100

# chaos-straggler soaks the gray-failure machinery under -race: seeded
# latency-only schedules (slowdowns, jitter, stall windows) against
# hedged clients on real stores. Gray faults lose no data, so every
# restore must come back bit-exact and the flush chain must drain
# cleanly (DESIGN.md §16).
chaos-straggler:
	$(GO) test -race -run 'TestStragglerChaosSoak|TestGrayHedgeWheelVsHeap|TestGrayMachineryOffIsByteIdentical' . -args -straggler.schedules=100

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-smoke runs the chunked-vs-monolithic transfer-pipelining ablation
# once, fails if chunked regresses below the monolithic baseline
# (DESIGN.md §9), and emits the measurements as BENCH_pipeline.json.
# It also gates the simulator engine itself (DESIGN.md §14): the 10k-rank
# sweep must stay within 20% of the committed events/sec baseline
# (testdata/simspeed_baseline.json) with no allocs/op increase, emitting
# BENCH_simspeed.json.
bench-smoke:
	$(GO) test -run TestChunkedPipelineSmoke -v . -args -bench.out=BENCH_pipeline.json
	$(GO) test -run TestPreemptDrainSmoke -v . -args -preempt.out=BENCH_preempt.json
	$(GO) test -run TestSimSpeedSmoke -v . -args -simspeed.out=BENCH_simspeed.json
	$(GO) test -run TestStragglerSmoke -v . -args -straggler.out=BENCH_straggler.json
	$(GO) test -bench BenchmarkAblationChunkedPipeline -benchtime 1x -run '^$$' .
	$(GO) test -bench BenchmarkSimSpeed -benchmem -benchtime 1x -run '^$$' .

# bench-evict runs the eviction policy × workload ablation matrix once,
# gates the hit-rate sanity invariants (score ≥ LRU on the RTM scan; at
# least one DBMS-inspired policy beats LRU on the KV-cache workload —
# DESIGN.md §15), and emits the matrix as BENCH_evict.json.
bench-evict:
	$(GO) test -run TestEvictionMatrixSmoke -v . -args -evict.out=BENCH_evict.json

# trace-smoke exercises the observability layer end to end: the trace
# determinism and flow-arrow golden tests, then the pipeline experiment
# with Chrome-trace and score-critpath/v1 exports. -fail-on-unattributed
# makes the run exit non-zero if any durable or restore attribution
# record carries an unattributed latency gap (DESIGN.md §12); the
# emitted trace-pipeline-*.json and critpath.json are the CI artifacts.
trace-smoke:
	$(GO) test -run 'TestTraceExportDeterministic|TestFlowArrowsMatchGolden' -v .
	$(GO) run ./cmd/ckptbench -exp pipeline -scale small \
		-trace-out trace.json -critpath-out critpath.json -fail-on-unattributed

# slo-smoke exercises the SLO engine end to end (DESIGN.md §17): the
# alert-ledger determinism goldens and the straggler alert story
# (healthy control clean, 20× gray straggler firing with xfer
# attribution), emitting the compliance reports as BENCH_slo.json; then
# the pipeline experiment under -fail-on-slo, which must hold its
# checked-in objectives; then the straggler experiment under
# -fail-on-slo, which must breach — the alert path proven live in the
# CLI, not just in tests.
slo-smoke:
	$(GO) test -run 'TestSLOSmoke|TestSLODeterminism' -v . -args -slo.out=BENCH_slo.json
	$(GO) run ./cmd/ckptbench -exp pipeline -scale small -slo -fail-on-slo
	@if $(GO) run ./cmd/ckptbench -exp straggler -slo -fail-on-slo >/dev/null 2>&1; then \
		echo "straggler run unexpectedly passed -fail-on-slo (the 20x straggler must breach)"; exit 1; \
	else \
		echo "straggler breach correctly detected by -fail-on-slo"; \
	fi

# results regenerates the committed full-scale evaluation transcript.
# Rerun after any change that shifts the simulated numbers, and commit
# the diff — a stale transcript fails honest review.
results:
	$(GO) run ./cmd/ckptbench -exp all -scale full > results_full.txt
	@echo "regenerated results_full.txt"

# fuzz-smoke gives each fuzz target a short budget on top of its checked-in
# seed corpus; go test accepts one -fuzz pattern per invocation.
FUZZTIME ?= 20s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzIDFIFO -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzCacheEviction -fuzztime $(FUZZTIME) ./internal/cachebuf
	$(GO) test -run '^$$' -fuzz FuzzEvictionPolicy -fuzztime $(FUZZTIME) ./internal/cachebuf

clean:
	$(GO) clean ./...
	rm -f BENCH_pipeline.json BENCH_preempt.json BENCH_simspeed.json BENCH_evict.json BENCH_straggler.json BENCH_slo.json critpath.json trace-pipeline-*.json
