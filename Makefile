GO ?= go

.PHONY: verify build test vet race chaos bench bench-smoke clean

# verify is the pre-merge gate: static checks, a full build, and the
# race-enabled test suite (which includes a short chaos soak).
verify: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos replays a longer campaign of seeded fault schedules against the
# checkpoint pipeline (see chaos_test.go and DESIGN.md §8).
chaos:
	$(GO) test -race -run TestChaosSoak . -args -chaos.schedules=200

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-smoke runs the chunked-vs-monolithic transfer-pipelining ablation
# once and fails if chunked regresses below the monolithic baseline
# (DESIGN.md §9).
bench-smoke:
	$(GO) test -run TestChunkedPipelineSmoke -v .
	$(GO) test -bench BenchmarkAblationChunkedPipeline -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
