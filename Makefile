GO ?= go

.PHONY: verify build test vet race chaos bench clean

# verify is the pre-merge gate: static checks, a full build, and the
# race-enabled test suite (which includes a short chaos soak).
verify: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos replays a longer campaign of seeded fault schedules against the
# checkpoint pipeline (see chaos_test.go and DESIGN.md §8).
chaos:
	$(GO) test -race -run TestChaosSoak . -args -chaos.schedules=200

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
