package score

import (
	"errors"
	"fmt"
	"time"

	"score/internal/core"
	"score/internal/fabric"
	"score/internal/faultinject"
)

// Scheduling-events surface: deadline-bounded preemption drain and live
// tier migration. A preemption notice ("this rank is reclaimed in 30s")
// triggers Drain — a triage flush of the not-yet-durable versions
// against the grace window, failing open to explicit loss rather than
// wedging. A planned reclaim with a successor available instead uses
// Sim.MigrateRank to move the rank's durable tier across the fabric
// while the rank keeps running, with a validated cutover.

// PreemptSpec schedules a preemption notice for one rank (or a whole
// node) at a virtual time with a grace window; attach with
// FaultInjector.AddPreempts or build with PreemptRank/PreemptNode. The
// runtime drains at the notice and reclaims (kills) the rank at
// notice+grace regardless of how the drain fared.
type PreemptSpec = faultinject.PreemptSpec

// PreemptRank schedules a preemption notice for the rank on (node, gpu)
// at simulated time at with the given grace window.
var PreemptRank = faultinject.PreemptRank

// PreemptNode schedules a preemption notice for every rank on node.
var PreemptNode = faultinject.PreemptNode

// FaultMigrate is the per-version copy site of a live tier migration.
const FaultMigrate = faultinject.SiteMigrate

// ErrDraining is returned by Checkpoint once a preemption drain has
// begun on the client: the rank is being reclaimed and accepts no new
// checkpoints. Restores keep working.
var ErrDraining = core.ErrDraining

// ErrMigrationIncomplete reports a live migration that could not
// converge to a validated cutover; the successor store must not be
// adopted. Definitive by design: match with errors.Is.
var ErrMigrationIncomplete = core.ErrMigrationIncomplete

// DrainManifest is the complete report of one deadline-bounded drain.
type DrainManifest = core.DrainManifest

// DrainEntry is one version's line in a drain manifest.
type DrainEntry = core.DrainEntry

// DrainOutcome classifies one version's fate in a drain manifest.
type DrainOutcome = core.DrainOutcome

// Drain outcomes, re-exported from the core layer.
const (
	DrainAlreadyDurable = core.DrainAlreadyDurable
	DrainFlushed        = core.DrainFlushed
	DrainDiscarded      = core.DrainDiscarded
	DrainAbandoned      = core.DrainAbandoned
)

// MigrationReport summarizes one live migration.
type MigrationReport = core.MigrationReport

// Drain executes a deadline-bounded preemption drain with the given
// grace window: resident not-yet-durable checkpoints are triage-flushed
// oldest-first against per-link budgets, versions that cannot land in
// time are failed open to explicit loss, and the returned manifest
// reports every live version's outcome. Once called the client rejects
// new checkpoints with ErrDraining for the rest of its life. The
// manifest is also retained for DrainManifest.
func (c *Client) Drain(grace time.Duration) (DrainManifest, error) {
	m, err := c.inner.Drain(grace)
	if err == nil || len(m.Entries) > 0 {
		c.setDrainManifest(m)
	}
	return m, err
}

// Draining reports whether a preemption drain has begun on this client
// (by Drain or by an injector-scheduled preemption notice).
func (c *Client) Draining() bool { return c.inner.Draining() }

// DrainManifest returns the manifest of the client's completed drain,
// whether triggered by Drain or by a scheduled preemption notice
// (faultinject.PreemptRank via WithFaultInjector). ok is false while no
// drain has completed.
func (c *Client) DrainManifest() (m DrainManifest, ok bool) {
	c.drainMu.Lock()
	defer c.drainMu.Unlock()
	return c.drainManifest, c.drainDone
}

func (c *Client) setDrainManifest(m DrainManifest) {
	c.drainMu.Lock()
	defer c.drainMu.Unlock()
	c.drainManifest = m
	c.drainDone = true
}

// MigrateRank live-migrates client c's durable SSD tier to a successor
// store on toNode, over the NIC fabric (local NVMe read → local NIC →
// successor NIC → successor NVMe — the partner-copy route), concurrently
// with c's foreground traffic. destDir is the successor node's store
// directory; a client opened on it afterwards recovers the migrated
// versions. The cutover is validated version-by-version: on success the
// report has Validated=true, otherwise the error is definitive. The
// client's fault injector (if any) gates each per-version copy through
// the migrate fault site.
func (s *Sim) MigrateRank(c *Client, toNode int, destDir string) (MigrationReport, error) {
	if toNode < 0 || toNode >= s.cfg.nodes {
		return MigrationReport{}, fmt.Errorf("score: successor node %d out of range [0,%d)", toNode, s.cfg.nodes)
	}
	if toNode == c.node {
		return MigrationReport{}, errors.New("score: migration successor must be a different node")
	}
	if destDir == "" {
		return MigrationReport{}, errors.New("score: migration needs a successor store directory")
	}
	dst, _, err := openStore(destDir, false)
	if err != nil {
		return MigrationReport{}, err
	}
	from := s.cluster.Nodes[c.node]
	to := s.cluster.Nodes[toNode]
	var hook func(id, size int64) error
	if inj := c.inj; inj != nil {
		hook = func(id, size int64) error {
			return inj.Decide(faultinject.SiteMigrate, id, size).Err
		}
	}
	return c.inner.Migrate(core.MigrationParams{
		Dest:      dst,
		Path:      fabric.Path{from.NVMe, from.NIC, to.NIC, to.NVMe},
		FaultHook: hook,
	})
}
