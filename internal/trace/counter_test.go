package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestCounterEventsSortedAndExported(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now)
	// Out-of-order recording (two samplers interleaving) must still
	// export a chronological counter track.
	tr.Counter(0, "cache.gpu.used_bytes", 2*time.Millisecond, 4096)
	tr.Counter(0, "cache.gpu.used_bytes", time.Millisecond, 1024)
	tr.Counter(1, "link.pcie1.inflight", 3*time.Millisecond, 2)

	cs := tr.Counters()
	if len(cs) != 3 {
		t.Fatalf("Counters() returned %d events, want 3", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i].At < cs[i-1].At {
			t.Errorf("counters out of order: %v after %v", cs[i].At, cs[i-1].At)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Ts   float64                `json:"ts"`
			Pid  int                    `json:"pid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	var counterEvents int
	for _, e := range doc.TraceEvents {
		if e.Ph != "C" {
			continue
		}
		counterEvents++
		if _, ok := e.Args["value"]; !ok {
			t.Errorf("counter event %q has no value arg", e.Name)
		}
		if e.Name == "cache.gpu.used_bytes" && e.Ts == 1000 {
			if v := e.Args["value"].(float64); v != 1024 {
				t.Errorf("counter at 1ms carries value %v, want 1024", v)
			}
		}
	}
	if counterEvents != 3 {
		t.Errorf("exported %d Chrome counter (ph=C) events, want 3", counterEvents)
	}
}

func TestNilTracerCounterIsNoop(t *testing.T) {
	var tr *Tracer
	tr.Counter(0, "x", time.Millisecond, 1) // must not panic
	if got := tr.Counters(); got != nil {
		t.Errorf("nil tracer Counters() = %v, want nil", got)
	}
}
