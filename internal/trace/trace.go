// Package trace records the runtime's activity — checkpoint and restore
// spans, flush and prefetch transfers, evictions — against the simulated
// clock, and exports the timeline in the Chrome trace-event format
// (chrome://tracing, Perfetto). One tracer serves a whole simulation:
// each GPU appears as a process row, each runtime task (application,
// T_D2H, T_H2F, T_PF, stager) as a thread row.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Track identifies the runtime task a span belongs to (rendered as a
// thread row).
type Track int

const (
	// TrackApp is the application thread (checkpoint/restore blocking).
	TrackApp Track = iota
	// TrackD2H is the GPU→host flusher.
	TrackD2H
	// TrackH2F is the host→SSD/PFS flusher.
	TrackH2F
	// TrackPF is the GPU-side prefetcher.
	TrackPF
	// TrackStage is the SSD→host stager.
	TrackStage
)

// String names the track as shown in the trace viewer.
func (t Track) String() string {
	switch t {
	case TrackApp:
		return "application"
	case TrackD2H:
		return "T_D2H flusher"
	case TrackH2F:
		return "T_H2F flusher"
	case TrackPF:
		return "T_PF prefetcher"
	case TrackStage:
		return "T_PF host stager"
	}
	return fmt.Sprintf("Track(%d)", int(t))
}

// Event is one complete span on the timeline. Flow, when non-zero,
// links the span into a causal chain: every span sharing a Flow value
// is connected by flow arrows in the Chrome export, so Perfetto draws
// one checkpoint version's journey across tracks and GPUs. Callers
// must derive Flow deterministically (the core runtime uses a pure
// function of (rank, version)) — never from a shared counter, or
// exports stop being byte-reproducible.
type Event struct {
	Name     string
	Category string
	GPU      int // process row
	Track    Track
	Start    time.Duration
	Duration time.Duration
	Flow     int64
}

// CounterEvent is one sampled counter value (rendered as a stacked area
// track in the trace viewer, alongside the span rows).
type CounterEvent struct {
	Name  string
	GPU   int // process row
	At    time.Duration
	Value float64
}

// Default retention bounds. A long chaos soak emits events forever;
// past the cap the tracer keeps the most recent window (flight-recorder
// style) and counts what it dropped instead of growing without limit.
const (
	DefaultEventCap   = 1 << 20 // spans retained per tracer
	DefaultCounterCap = 1 << 20 // counter samples retained per tracer
)

// Tracer collects events; safe for concurrent use. A nil *Tracer is a
// valid no-op sink, so instrumented code needs no nil checks beyond the
// method receivers. Retention is bounded: once a cap is reached the
// oldest entries are overwritten and Dropped reports how many were lost.
type Tracer struct {
	now func() time.Duration

	mu         sync.Mutex
	eventCap   int
	counterCap int
	events     []Event // ring once len == eventCap; evNext is the oldest slot
	evNext     int
	counters   []CounterEvent
	ctrNext    int
	evDropped  int64
	ctrDropped int64

	flight atomic.Pointer[FlightRecorder] // created on first use; t.mu guards creation only
}

// New creates a tracer reading timestamps from now (typically the
// simulation clock's Now), bounded at the default caps.
func New(now func() time.Duration) *Tracer {
	if now == nil {
		panic("trace: nil clock function")
	}
	return &Tracer{now: now, eventCap: DefaultEventCap, counterCap: DefaultCounterCap}
}

// SetCapacity rebounds retention: at most events spans and counters
// samples are kept (oldest overwritten first). Values < 1 panic — a
// tracer is always bounded. Shrinking below the current backlog drops
// the oldest entries immediately.
func (t *Tracer) SetCapacity(events, counters int) {
	if t == nil {
		return
	}
	if events < 1 || counters < 1 {
		panic("trace: capacities must be >= 1")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events, t.evNext, t.evDropped = rebound(t.events, t.evNext, t.evDropped, events)
	t.eventCap = events
	t.counters, t.ctrNext, t.ctrDropped = rebound(t.counters, t.ctrNext, t.ctrDropped, counters)
	t.counterCap = counters
}

// rebound unrolls a ring into append order and trims the oldest entries
// down to cap, charging them to the drop counter.
func rebound[T any](ring []T, next int, dropped int64, cap int) ([]T, int, int64) {
	ordered := append(append([]T(nil), ring[next:]...), ring[:next]...)
	if excess := len(ordered) - cap; excess > 0 {
		dropped += int64(excess)
		ordered = append([]T(nil), ordered[excess:]...)
	}
	return ordered, 0, dropped
}

// Dropped reports how many spans and counter samples were evicted to
// stay within the retention caps. Nil-safe.
func (t *Tracer) Dropped() (events, counters int64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evDropped, t.ctrDropped
}

func (t *Tracer) appendLocked(e Event) {
	if len(t.events) < t.eventCap {
		t.events = append(t.events, e)
		return
	}
	t.events[t.evNext] = e
	t.evNext = (t.evNext + 1) % t.eventCap
	t.evDropped++
}

// Span opens a span and returns its closer; call the closer when the
// operation completes. Nil-safe.
func (t *Tracer) Span(gpu int, track Track, category, name string) func() {
	return t.SpanFlow(gpu, track, category, name, 0)
}

// SpanFlow is Span with a causal flow ID: the finished span joins the
// flow chain identified by flow (0 means unlinked). Nil-safe.
func (t *Tracer) SpanFlow(gpu int, track Track, category, name string, flow int64) func() {
	if t == nil {
		return func() {}
	}
	start := t.now()
	return func() {
		end := t.now()
		t.mu.Lock()
		t.appendLocked(Event{
			Name: name, Category: category, GPU: gpu, Track: track,
			Start: start, Duration: end - start, Flow: flow,
		})
		t.mu.Unlock()
	}
}

// Record appends an already-completed span. The chunked transfer paths
// use it because a stream's display name (chunk count, hidden time) is
// only known at completion. Nil-safe.
func (t *Tracer) Record(gpu int, track Track, category, name string, start, duration time.Duration) {
	t.RecordFlow(gpu, track, category, name, start, duration, 0)
}

// RecordFlow is Record with a causal flow ID (see SpanFlow). Nil-safe.
func (t *Tracer) RecordFlow(gpu int, track Track, category, name string, start, duration time.Duration, flow int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.appendLocked(Event{
		Name: name, Category: category, GPU: gpu, Track: track,
		Start: start, Duration: duration, Flow: flow,
	})
	t.mu.Unlock()
}

// Counter appends one sampled counter value (tier occupancy, link
// utilization, …) at simulated time at. Nil-safe.
func (t *Tracer) Counter(gpu int, name string, at time.Duration, value float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.counters) < t.counterCap {
		t.counters = append(t.counters, CounterEvent{Name: name, GPU: gpu, At: at, Value: value})
	} else {
		t.counters[t.ctrNext] = CounterEvent{Name: name, GPU: gpu, At: at, Value: value}
		t.ctrNext = (t.ctrNext + 1) % t.counterCap
		t.ctrDropped++
	}
	t.mu.Unlock()
}

// Counters returns a copy of the recorded counter events sorted by time.
// Ties are broken on every remaining field: tasks woken at the same
// simulated instant run in real-scheduler order, so append order is not
// reproducible — the full ordering keeps exports byte-identical anyway.
func (t *Tracer) Counters() []CounterEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]CounterEvent, len(t.counters))
	copy(out, t.counters)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.GPU != b.GPU {
			return a.GPU < b.GPU
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Value < b.Value
	})
	return out
}

// Len returns the number of recorded events. Nil-safe.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events sorted by start time.
// Ties are broken on every remaining field (see Counters) so the export
// does not depend on the real-scheduler interleaving of same-instant
// tasks.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.GPU != b.GPU {
			return a.GPU < b.GPU
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Category != b.Category {
			return a.Category < b.Category
		}
		if a.Duration != b.Duration {
			return a.Duration < b.Duration
		}
		return a.Flow < b.Flow
	})
	return out
}

// chromeEvent is the trace-event JSON schema ("X" complete events, "C"
// counter samples, "s"/"t"/"f" flow arrows, plus "M" metadata rows).
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`            // microseconds
	Dur  float64                `json:"dur,omitempty"` // microseconds
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	ID   string                 `json:"id,omitempty"` // flow chain ID
	BP   string                 `json:"bp,omitempty"` // flow binding point
	Args map[string]interface{} `json:"args,omitempty"`
}

// WriteJSON exports the timeline as a Chrome trace-event array, loadable
// in chrome://tracing or ui.perfetto.dev. Counter events render as area
// tracks above each GPU's span rows.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()
	counters := t.Counters()
	out := make([]chromeEvent, 0, len(events)+len(counters)+16)

	// Metadata: name each GPU (process) and task (thread) row.
	seen := map[[2]int]bool{}
	for _, e := range events {
		key := [2]int{e.GPU, int(e.Track)}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out,
			chromeEvent{Name: "process_name", Ph: "M", Pid: e.GPU, Tid: int(e.Track),
				Args: map[string]interface{}{"name": fmt.Sprintf("GPU %d", e.GPU)}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: e.GPU, Tid: int(e.Track),
				Args: map[string]interface{}{"name": e.Track.String()}},
		)
	}
	for _, e := range events {
		var args map[string]interface{}
		if e.Flow != 0 {
			args = map[string]interface{}{"flow": e.Flow}
		}
		out = append(out, chromeEvent{
			Name: e.Name, Cat: e.Category, Ph: "X",
			Ts:  float64(e.Start) / float64(time.Microsecond),
			Dur: float64(e.Duration) / float64(time.Microsecond),
			Pid: e.GPU, Tid: int(e.Track), Args: args,
		})
	}
	out = append(out, flowEvents(events)...)
	for _, c := range counters {
		out = append(out, chromeEvent{
			Name: c.Name, Ph: "C",
			Ts:   float64(c.At) / float64(time.Microsecond),
			Pid:  c.GPU,
			Args: map[string]interface{}{"value": c.Value},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]interface{}{"traceEvents": out})
}

// flowEvents turns each flow-linked span chain into Chrome flow-arrow
// events: "s" opens the chain at the first span, "t" steps through the
// middle, "f" (binding point "e", the enclosing slice) terminates it.
// Perfetto renders these as arrows joining one checkpoint version's
// spans across tracks and GPUs. Events arrive pre-sorted by Events(),
// and flow IDs are iterated in ascending order, so the emission is as
// byte-deterministic as the span list itself.
func flowEvents(events []Event) []chromeEvent {
	chains := map[int64][]Event{}
	var ids []int64
	for _, e := range events {
		if e.Flow == 0 {
			continue
		}
		if _, ok := chains[e.Flow]; !ok {
			ids = append(ids, e.Flow)
		}
		chains[e.Flow] = append(chains[e.Flow], e)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var out []chromeEvent
	for _, id := range ids {
		chain := chains[id]
		if len(chain) < 2 {
			continue // an arrow needs two endpoints
		}
		// All events in one chain must share name, cat, and id for the
		// viewer to join them; the chain borrows its first span's name.
		name, idStr := chain[0].Name, fmt.Sprintf("%d", id)
		for i, e := range chain {
			ev := chromeEvent{
				Name: name, Cat: "flow", Ts: float64(e.Start) / float64(time.Microsecond),
				Pid: e.GPU, Tid: int(e.Track), ID: idStr,
			}
			switch {
			case i == 0:
				ev.Ph = "s"
			case i == len(chain)-1:
				ev.Ph = "f"
				ev.BP = "e"
			default:
				ev.Ph = "t"
			}
			out = append(out, ev)
		}
	}
	return out
}
