// Package trace records the runtime's activity — checkpoint and restore
// spans, flush and prefetch transfers, evictions — against the simulated
// clock, and exports the timeline in the Chrome trace-event format
// (chrome://tracing, Perfetto). One tracer serves a whole simulation:
// each GPU appears as a process row, each runtime task (application,
// T_D2H, T_H2F, T_PF, stager) as a thread row.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Track identifies the runtime task a span belongs to (rendered as a
// thread row).
type Track int

const (
	// TrackApp is the application thread (checkpoint/restore blocking).
	TrackApp Track = iota
	// TrackD2H is the GPU→host flusher.
	TrackD2H
	// TrackH2F is the host→SSD/PFS flusher.
	TrackH2F
	// TrackPF is the GPU-side prefetcher.
	TrackPF
	// TrackStage is the SSD→host stager.
	TrackStage
)

// String names the track as shown in the trace viewer.
func (t Track) String() string {
	switch t {
	case TrackApp:
		return "application"
	case TrackD2H:
		return "T_D2H flusher"
	case TrackH2F:
		return "T_H2F flusher"
	case TrackPF:
		return "T_PF prefetcher"
	case TrackStage:
		return "T_PF host stager"
	}
	return fmt.Sprintf("Track(%d)", int(t))
}

// Event is one complete span on the timeline.
type Event struct {
	Name     string
	Category string
	GPU      int // process row
	Track    Track
	Start    time.Duration
	Duration time.Duration
}

// CounterEvent is one sampled counter value (rendered as a stacked area
// track in the trace viewer, alongside the span rows).
type CounterEvent struct {
	Name  string
	GPU   int // process row
	At    time.Duration
	Value float64
}

// Tracer collects events; safe for concurrent use. A nil *Tracer is a
// valid no-op sink, so instrumented code needs no nil checks beyond the
// method receivers.
type Tracer struct {
	now func() time.Duration

	mu       sync.Mutex
	events   []Event
	counters []CounterEvent
}

// New creates a tracer reading timestamps from now (typically the
// simulation clock's Now).
func New(now func() time.Duration) *Tracer {
	if now == nil {
		panic("trace: nil clock function")
	}
	return &Tracer{now: now}
}

// Span opens a span and returns its closer; call the closer when the
// operation completes. Nil-safe.
func (t *Tracer) Span(gpu int, track Track, category, name string) func() {
	if t == nil {
		return func() {}
	}
	start := t.now()
	return func() {
		end := t.now()
		t.mu.Lock()
		t.events = append(t.events, Event{
			Name: name, Category: category, GPU: gpu, Track: track,
			Start: start, Duration: end - start,
		})
		t.mu.Unlock()
	}
}

// Record appends an already-completed span. The chunked transfer paths
// use it because a stream's display name (chunk count, hidden time) is
// only known at completion. Nil-safe.
func (t *Tracer) Record(gpu int, track Track, category, name string, start, duration time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Category: category, GPU: gpu, Track: track,
		Start: start, Duration: duration,
	})
	t.mu.Unlock()
}

// Counter appends one sampled counter value (tier occupancy, link
// utilization, …) at simulated time at. Nil-safe.
func (t *Tracer) Counter(gpu int, name string, at time.Duration, value float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters = append(t.counters, CounterEvent{Name: name, GPU: gpu, At: at, Value: value})
	t.mu.Unlock()
}

// Counters returns a copy of the recorded counter events sorted by time.
// Ties are broken on every remaining field: tasks woken at the same
// simulated instant run in real-scheduler order, so append order is not
// reproducible — the full ordering keeps exports byte-identical anyway.
func (t *Tracer) Counters() []CounterEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]CounterEvent, len(t.counters))
	copy(out, t.counters)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.GPU != b.GPU {
			return a.GPU < b.GPU
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Value < b.Value
	})
	return out
}

// Len returns the number of recorded events. Nil-safe.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events sorted by start time.
// Ties are broken on every remaining field (see Counters) so the export
// does not depend on the real-scheduler interleaving of same-instant
// tasks.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.GPU != b.GPU {
			return a.GPU < b.GPU
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Category != b.Category {
			return a.Category < b.Category
		}
		return a.Duration < b.Duration
	})
	return out
}

// chromeEvent is the trace-event JSON schema ("X" complete events, "C"
// counter samples, plus "M" metadata rows for names).
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`            // microseconds
	Dur  float64                `json:"dur,omitempty"` // microseconds
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// WriteJSON exports the timeline as a Chrome trace-event array, loadable
// in chrome://tracing or ui.perfetto.dev. Counter events render as area
// tracks above each GPU's span rows.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()
	counters := t.Counters()
	out := make([]chromeEvent, 0, len(events)+len(counters)+16)

	// Metadata: name each GPU (process) and task (thread) row.
	seen := map[[2]int]bool{}
	for _, e := range events {
		key := [2]int{e.GPU, int(e.Track)}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out,
			chromeEvent{Name: "process_name", Ph: "M", Pid: e.GPU, Tid: int(e.Track),
				Args: map[string]interface{}{"name": fmt.Sprintf("GPU %d", e.GPU)}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: e.GPU, Tid: int(e.Track),
				Args: map[string]interface{}{"name": e.Track.String()}},
		)
	}
	for _, e := range events {
		out = append(out, chromeEvent{
			Name: e.Name, Cat: e.Category, Ph: "X",
			Ts:  float64(e.Start) / float64(time.Microsecond),
			Dur: float64(e.Duration) / float64(time.Microsecond),
			Pid: e.GPU, Tid: int(e.Track),
		})
	}
	for _, c := range counters {
		out = append(out, chromeEvent{
			Name: c.Name, Ph: "C",
			Ts:  float64(c.At) / float64(time.Microsecond),
			Pid: c.GPU,
			Args: map[string]interface{}{"value": c.Value},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]interface{}{"traceEvents": out})
}
