package trace

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// LifecycleKind enumerates the observable milestones in a checkpoint
// version's life, from creation through durability (or loss) to restore.
type LifecycleKind int

const (
	LCreated        LifecycleKind = iota // accepted into the GPU cache
	LCached                              // write complete in the GPU cache
	LFlushEnqueued                       // queued for the async flush chain
	LD2HStart                            // GPU→host copy began
	LD2HEnd                              // GPU→host copy landed
	LHopStart                            // host→deep-tier hop began (Tier names the destination)
	LHopEnd                              // host→deep-tier hop landed
	LPartnerCopy                         // replica mirrored to the partner node's SSD
	LDurable                             // fate decided: durable on a non-volatile tier
	LGroupCommit                         // every rank holds the version durable
	LDegraded                            // a tier was taken out of rotation for this attempt
	LRetried                             // an I/O attempt failed and was retried
	LEvicted                             // a cached replica was evicted to make room
	LStaged                              // staged SSD→host for a future promote
	LPrefetched                          // promoted into the GPU cache ahead of use
	LRestored                            // served back to the application
	LDiscarded                           // fate decided: superseded, never needed durably
	LLost                                // fate decided: lost to faults or death
	LKilled                              // the owning rank died
	LHealed                              // a degraded tier passed its probe and rejoined rotation
	LDrainStart                          // preemption notice: deadline-bounded drain began
	LDrainEnd                            // drain finished (Detail carries the manifest tally)
	LDrainAbandoned                      // drain gave up on this version (fail-open to ErrLost)
	LMigrateStart                        // live migration to a successor node began
	LMigrateEnd                          // migration cutover validated (or failed definitively)
	LMigrated                            // this version's durable replica landed on the successor
	LStalled                             // an I/O leg exceeded its adaptive deadline without failing (gray stall)
	LHedged                              // a hedge leg was launched against the next-deeper replica
	LSLOFired                            // an SLO burn-rate alert fired (Detail carries burn/budget/attribution)
	LSLOResolved                         // a firing SLO alert dropped back below its burn-rate threshold
)

// String names the kind as rendered in ledger dumps.
func (k LifecycleKind) String() string {
	switch k {
	case LCreated:
		return "created"
	case LCached:
		return "cached"
	case LFlushEnqueued:
		return "flush-enqueued"
	case LD2HStart:
		return "d2h-start"
	case LD2HEnd:
		return "d2h-end"
	case LHopStart:
		return "hop-start"
	case LHopEnd:
		return "hop-end"
	case LPartnerCopy:
		return "partner-copy"
	case LDurable:
		return "durable"
	case LGroupCommit:
		return "group-commit"
	case LDegraded:
		return "degraded"
	case LRetried:
		return "retried"
	case LEvicted:
		return "evicted"
	case LStaged:
		return "staged"
	case LPrefetched:
		return "prefetched"
	case LRestored:
		return "restored"
	case LDiscarded:
		return "discarded"
	case LLost:
		return "lost"
	case LKilled:
		return "killed"
	case LHealed:
		return "healed"
	case LDrainStart:
		return "drain-start"
	case LDrainEnd:
		return "drain-end"
	case LDrainAbandoned:
		return "drain-abandoned"
	case LMigrateStart:
		return "migrate-start"
	case LMigrateEnd:
		return "migrate-end"
	case LMigrated:
		return "migrated"
	case LStalled:
		return "stalled"
	case LHedged:
		return "hedged"
	case LSLOFired:
		return "slo-fired"
	case LSLOResolved:
		return "slo-resolved"
	}
	return fmt.Sprintf("LifecycleKind(%d)", int(k))
}

// LifecycleEvent is one ledger entry: something happened to (Rank,
// Version) at simulated time At. Tier carries the tier or hop label
// when relevant; Detail is free-form context (error text, byte counts).
type LifecycleEvent struct {
	Rank    int
	Version int64
	Kind    LifecycleKind
	Tier    string
	Detail  string
	At      time.Duration
}

// DefaultFlightCap bounds each rank's ledger ring. At ~20 events per
// checkpoint version this retains the last few hundred versions.
const DefaultFlightCap = 8192

// FlightRecorder keeps a bounded per-rank ring of lifecycle events — a
// flight recorder for the checkpoint pipeline. When a rank's ring
// fills, the oldest entries are overwritten and counted as dropped.
// Safe for concurrent use; the lock is sharded per rank (the recorder
// mutex covers only map membership), so 10k ranks recording lifecycle
// events do not serialize on one mutex.
type FlightRecorder struct {
	now        func() time.Duration
	capPerRank int

	mu    sync.Mutex // guards ranks map membership only
	ranks map[int]*rankRing
}

type rankRing struct {
	mu      sync.Mutex // guards everything below
	events  []LifecycleEvent
	next    int
	seq     []uint64 // arrival order, parallel to events
	nextSeq uint64
	dropped int64
}

// NewFlightRecorder builds a recorder timestamping from now, retaining
// at most capPerRank events per rank (capPerRank < 1 panics).
func NewFlightRecorder(now func() time.Duration, capPerRank int) *FlightRecorder {
	if now == nil {
		panic("trace: nil clock function")
	}
	if capPerRank < 1 {
		panic("trace: flight recorder capacity must be >= 1")
	}
	return &FlightRecorder{now: now, capPerRank: capPerRank, ranks: map[int]*rankRing{}}
}

// ring returns rank's ring, creating it on first use.
func (f *FlightRecorder) ring(rank int) *rankRing {
	f.mu.Lock()
	r := f.ranks[rank]
	if r == nil {
		r = &rankRing{}
		f.ranks[rank] = r
	}
	f.mu.Unlock()
	return r
}

// Record appends one lifecycle event for (rank, version), stamped at
// the recorder clock's current instant. Nil-safe.
func (f *FlightRecorder) Record(rank int, version int64, kind LifecycleKind, tier, detail string) {
	if f == nil {
		return
	}
	f.RecordAt(rank, version, kind, tier, detail, f.now())
}

// RecordAt appends one lifecycle event with an explicit timestamp —
// for events whose semantic instant predates the recording call, like
// SLO alert transitions evaluated when a later-timestamped observation
// folds the batch. Nil-safe.
func (f *FlightRecorder) RecordAt(rank int, version int64, kind LifecycleKind, tier, detail string, at time.Duration) {
	if f == nil {
		return
	}
	r := f.ring(rank)
	r.mu.Lock()
	ev := LifecycleEvent{Rank: rank, Version: version, Kind: kind, Tier: tier, Detail: detail, At: at}
	if len(r.events) < f.capPerRank {
		r.events = append(r.events, ev)
		r.seq = append(r.seq, r.nextSeq)
	} else {
		r.events[r.next] = ev
		r.seq[r.next] = r.nextSeq
		r.next = (r.next + 1) % f.capPerRank
		r.dropped++
	}
	r.nextSeq++
	r.mu.Unlock()
}

// Ledger returns rank's retained events in a deterministic order:
// primarily by simulated time, then by (version, kind, tier, detail),
// falling back to arrival order only for fully identical entries. The
// tie-breaks matter because same-instant tasks run in real-scheduler
// order under the virtual clock. Nil-safe.
func (f *FlightRecorder) Ledger(rank int) []LifecycleEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	r := f.ranks[rank]
	f.mu.Unlock()
	var out []LifecycleEvent
	var seq []uint64
	if r != nil {
		r.mu.Lock()
		out = append(out, r.events...)
		seq = append(seq, r.seq...)
		r.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Version != b.Version {
			return a.Version < b.Version
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Tier != b.Tier {
			return a.Tier < b.Tier
		}
		if a.Detail != b.Detail {
			return a.Detail < b.Detail
		}
		return seq[i] < seq[j]
	})
	return out
}

// VersionLedger returns rank's retained events for one version, in
// Ledger order. Nil-safe.
func (f *FlightRecorder) VersionLedger(rank int, version int64) []LifecycleEvent {
	var out []LifecycleEvent
	for _, ev := range f.Ledger(rank) {
		if ev.Version == version {
			out = append(out, ev)
		}
	}
	return out
}

// Ranks lists the ranks with at least one retained event, ascending.
// Nil-safe.
func (f *FlightRecorder) Ranks() []int {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]int, 0, len(f.ranks))
	for r := range f.ranks {
		out = append(out, r)
	}
	f.mu.Unlock()
	sort.Ints(out)
	return out
}

// Dropped reports how many of rank's events were evicted by the ring
// bound. Nil-safe.
func (f *FlightRecorder) Dropped(rank int) int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	r := f.ranks[rank]
	f.mu.Unlock()
	if r != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.dropped
	}
	return 0
}

// TotalDropped sums Dropped across ranks. Nil-safe.
func (f *FlightRecorder) TotalDropped() int64 {
	var total int64
	for _, r := range f.Ranks() {
		total += f.Dropped(r)
	}
	return total
}

// Flight returns the tracer's flight recorder, creating it at the
// default capacity on first use. Nil-safe (returns nil on nil tracer,
// and a nil *FlightRecorder is itself a no-op sink). The common path is
// one atomic load: Lifecycle calls this per ledger event.
func (t *Tracer) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	if f := t.flight.Load(); f != nil {
		return f
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if f := t.flight.Load(); f != nil {
		return f
	}
	f := NewFlightRecorder(t.now, DefaultFlightCap)
	t.flight.Store(f)
	return f
}

// EnableFlightRecorder (re)creates the tracer's flight recorder with an
// explicit per-rank capacity, replacing any prior recorder. Nil-safe.
func (t *Tracer) EnableFlightRecorder(capPerRank int) *FlightRecorder {
	if t == nil {
		return nil
	}
	f := NewFlightRecorder(t.now, capPerRank)
	t.flight.Store(f)
	return f
}

// Lifecycle records one ledger entry on the tracer's flight recorder
// (created on demand). Nil-safe.
func (t *Tracer) Lifecycle(rank int, version int64, kind LifecycleKind, tier, detail string) {
	if t == nil {
		return
	}
	t.Flight().Record(rank, version, kind, tier, detail)
}
