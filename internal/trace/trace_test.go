package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

type fakeClock struct{ now time.Duration }

func (f *fakeClock) Now() time.Duration { return f.now }

func TestSpanRecordsStartAndDuration(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now)
	clk.now = 5 * time.Millisecond
	end := tr.Span(2, TrackD2H, "flush", "ckpt 7 d2h")
	clk.now = 9 * time.Millisecond
	end()
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	e := events[0]
	if e.Start != 5*time.Millisecond || e.Duration != 4*time.Millisecond {
		t.Errorf("span = %+v", e)
	}
	if e.GPU != 2 || e.Track != TrackD2H || e.Name != "ckpt 7 d2h" {
		t.Errorf("span metadata = %+v", e)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	end := tr.Span(0, TrackApp, "x", "y") // must not panic
	end()
	if tr.Len() != 0 {
		t.Error("nil tracer recorded events")
	}
	if tr.Events() != nil {
		t.Error("nil tracer returned events")
	}
}

func TestEventsSortedByStart(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now)
	clk.now = 10 * time.Millisecond
	endB := tr.Span(0, TrackApp, "op", "b")
	clk.now = 20 * time.Millisecond
	endB()
	clk.now = 1 * time.Millisecond
	endA := tr.Span(0, TrackApp, "op", "a")
	clk.now = 2 * time.Millisecond
	endA()
	ev := tr.Events()
	if ev[0].Name != "a" || ev[1].Name != "b" {
		t.Errorf("events not sorted: %v, %v", ev[0].Name, ev[1].Name)
	}
}

func TestWriteJSONIsValidChromeTrace(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now)
	for gpu := 0; gpu < 2; gpu++ {
		clk.now = time.Duration(gpu+1) * time.Millisecond
		end := tr.Span(gpu, TrackPF, "prefetch", "promote 3")
		clk.now += 500 * time.Microsecond
		end()
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var complete, meta int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			complete++
			if e["dur"].(float64) != 500 {
				t.Errorf("dur = %v µs, want 500", e["dur"])
			}
		case "M":
			meta++
		}
	}
	if complete != 2 {
		t.Errorf("complete events = %d, want 2", complete)
	}
	if meta != 4 { // process_name + thread_name per (gpu, track)
		t.Errorf("metadata events = %d, want 4", meta)
	}
}

func TestTrackNames(t *testing.T) {
	names := map[Track]string{
		TrackApp: "application", TrackD2H: "T_D2H flusher",
		TrackH2F: "T_H2F flusher", TrackPF: "T_PF prefetcher",
		TrackStage: "T_PF host stager",
	}
	for tr, want := range names {
		if tr.String() != want {
			t.Errorf("%d.String() = %q", int(tr), tr.String())
		}
	}
	if Track(9).String() != "Track(9)" {
		t.Error("out-of-range track")
	}
}

func TestNewRejectsNilClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(nil) did not panic")
		}
	}()
	New(nil)
}
