// Package faultinject is a deterministic, seedable fault-injection layer
// for the checkpoint pipeline. It models the failure taxonomy the
// multi-level checkpointing literature (VELOC lineage, §2 of the paper)
// assumes the runtime survives: transient and persistent I/O failures on
// the SSD and PFS tiers, silent corruption of durable checkpoint files,
// degraded interconnect bandwidth ("drop the PCIe link to 10% for 2s"),
// and host pinned-memory allocation pressure.
//
// An Injector owns a set of Rules and answers one question — Decide: given
// an operation about to happen at a Site, should it fail, be corrupted,
// or be slowed, and by how much? Rules fire by schedule ("the Nth SSD
// write"), by simulated-time window ("PFS reads after T"), by seeded
// probability, or unconditionally; every random draw comes from one
// seeded source, so a schedule replays identically under the virtual
// clock.
//
// The injector never reaches into the runtime. The hook points are narrow
// injectable interfaces owned by the packages being faulted —
// fabric.Link.SetInterceptor for link transfers, device.GPU copy engines
// (which ride the links) and SetAllocInterceptor for allocation pressure,
// and ckptstore.Store.SetFaultHook for durable read/write paths — and the
// Score layer adapts Decide to each of them.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"score/internal/simclock"
)

// Site enumerates the operations a rule can target.
type Site int

const (
	// SitePCIe is the GPU↔host copy engine (D2H and H2D transfers).
	SitePCIe Site = iota
	// SiteNVMe is the node-local SSD link, both directions.
	SiteNVMe
	// SitePFS is the parallel file system link, both directions.
	SitePFS
	// SiteStoreWrite is a durable write (Put) to the SSD checkpoint store.
	SiteStoreWrite
	// SiteStoreRead is a durable read (Get) from the SSD checkpoint store.
	SiteStoreRead
	// SitePFSStoreWrite is a durable write to the PFS checkpoint store.
	SitePFSStoreWrite
	// SitePFSStoreRead is a durable read from the PFS checkpoint store.
	SitePFSStoreRead
	// SiteHostAlloc is pinned host memory allocation/registration
	// (pressure slows it; it never fails outright).
	SiteHostAlloc
	// SitePartner is the inter-node fabric leg of partner-copy
	// replication (transfers crossing the rank's own node NIC).
	SitePartner
	// SitePartnerStoreWrite is a durable write to the partner-copy store.
	SitePartnerStoreWrite
	// SitePartnerStoreRead is a durable read from the partner-copy store.
	SitePartnerStoreRead
	// SiteMigrate is the per-version copy of a live tier migration (the
	// inter-node leg moving a rank's durable tier to its successor).
	SiteMigrate

	numSites
)

// String names the site.
func (s Site) String() string {
	switch s {
	case SitePCIe:
		return "pcie"
	case SiteNVMe:
		return "nvme"
	case SitePFS:
		return "pfs"
	case SiteStoreWrite:
		return "store-write"
	case SiteStoreRead:
		return "store-read"
	case SitePFSStoreWrite:
		return "pfsstore-write"
	case SitePFSStoreRead:
		return "pfsstore-read"
	case SiteHostAlloc:
		return "host-alloc"
	case SitePartner:
		return "partner"
	case SitePartnerStoreWrite:
		return "partnerstore-write"
	case SitePartnerStoreRead:
		return "partnerstore-read"
	case SiteMigrate:
		return "migrate"
	}
	return fmt.Sprintf("Site(%d)", int(s))
}

// Kind is the effect a rule injects.
type Kind int

const (
	// KindFail makes the operation return an error.
	KindFail Kind = iota
	// KindCorrupt flips bytes in the data the operation carries
	// (meaningful for durable store reads; the CRC layer detects it).
	KindCorrupt
	// KindSlow degrades the operation: extra latency and/or a bandwidth
	// scale factor.
	KindSlow
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFail:
		return "fail"
	case KindCorrupt:
		return "corrupt"
	case KindSlow:
		return "slow"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ErrInjected is the root of every injected failure; match with
// errors.Is to distinguish injected faults from real ones in tests.
var ErrInjected = errors.New("faultinject: injected fault")

// Rule describes one fault. Build rules with the constructor helpers
// (FailNth, FailProb, FailAfter, CorruptID, Slow, ...) — they keep the
// trigger fields consistent.
type Rule struct {
	// Site selects the operations this rule watches.
	Site Site
	// Kind is the injected effect.
	Kind Kind

	// Trigger: exactly one of Nth/Prob is normally set. Nth fires on the
	// Nth matching operation (1-based). Prob fires each matching
	// operation with the given probability. If both are zero the rule
	// fires on every matching operation (use with a window or Count).
	Nth  int64
	Prob float64

	// After/Until bound the rule to a simulated-time window. Zero After
	// means "from the start"; zero Until means "forever".
	After, Until time.Duration

	// Count caps the number of firings (0 = unlimited).
	Count int64

	// IDSet restricts the rule to operations on checkpoint ID (durable
	// store ops carry ids; link transfers do not and only match id-less
	// rules).
	IDSet bool
	ID    int64

	// Slow parameters: Scale multiplies the effective bandwidth
	// ((0,1]; 0.1 = 10% of nominal), Delay adds fixed latency.
	Scale float64
	Delay time.Duration

	// Gray-fault shapes (KindSlow refinements). Jitter adds a random
	// extra latency drawn uniformly from [0, Jitter) per firing — the
	// draw comes from the injector's seeded source, so schedules replay
	// identically under the virtual clock. Stall pins every matching
	// operation inside the rule's [After, Until) window until the window
	// closes: the operation's delay is extended to Until-now, modeling a
	// device or link that stops answering for a bounded interval without
	// ever returning an error. Stall requires Until > 0.
	Jitter time.Duration
	Stall  bool
}

// FailNth fails the Nth operation at site (1-based).
func FailNth(site Site, n int64) Rule { return Rule{Site: site, Kind: KindFail, Nth: n} }

// FailProb fails each operation at site with probability p.
func FailProb(site Site, p float64) Rule { return Rule{Site: site, Kind: KindFail, Prob: p} }

// FailAfter is a persistent outage: every operation at site fails from
// simulated time t on.
func FailAfter(site Site, t time.Duration) Rule {
	return Rule{Site: site, Kind: KindFail, After: t}
}

// FailWindow fails every operation at site within [after, until).
func FailWindow(site Site, after, until time.Duration) Rule {
	return Rule{Site: site, Kind: KindFail, After: after, Until: until}
}

// FailID fails every operation at site touching checkpoint id.
func FailID(site Site, id int64) Rule {
	return Rule{Site: site, Kind: KindFail, IDSet: true, ID: id}
}

// CorruptNth corrupts the Nth operation at site (1-based).
func CorruptNth(site Site, n int64) Rule { return Rule{Site: site, Kind: KindCorrupt, Nth: n} }

// CorruptProb corrupts each operation at site with probability p.
func CorruptProb(site Site, p float64) Rule {
	return Rule{Site: site, Kind: KindCorrupt, Prob: p}
}

// CorruptID corrupts every operation at site touching checkpoint id.
func CorruptID(site Site, id int64) Rule {
	return Rule{Site: site, Kind: KindCorrupt, IDSet: true, ID: id}
}

// Slow degrades site to scale× bandwidth within [after, until) — e.g.
// Slow(SitePCIe, 0.1, 2*time.Second, 4*time.Second) drops the PCIe link
// to 10% for two seconds.
func Slow(site Site, scale float64, after, until time.Duration) Rule {
	return Rule{Site: site, Kind: KindSlow, Scale: scale, After: after, Until: until}
}

// Delay adds fixed latency to every operation at site within
// [after, until) — e.g. host allocation pressure.
func Delay(site Site, d time.Duration, after, until time.Duration) Rule {
	return Rule{Site: site, Kind: KindSlow, Delay: d, After: after, Until: until}
}

// Jitter adds a seeded-random extra latency in [0, max) to every
// operation at site within [after, until) — a link that still moves
// bytes at nominal bandwidth but with erratic per-operation latency.
// Never an error: the gray half of the failure taxonomy.
func Jitter(site Site, max time.Duration, after, until time.Duration) Rule {
	return Rule{Site: site, Kind: KindSlow, Jitter: max, After: after, Until: until}
}

// StallWindow freezes site for [after, until): any operation arriving
// inside the window is delayed until the window closes, then proceeds
// normally. This models a bounded gray stall — a copy engine or store
// that stops answering for a while without failing — so an operation
// arriving at t in [after, until) is charged until-t of extra latency.
func StallWindow(site Site, after, until time.Duration) Rule {
	return Rule{Site: site, Kind: KindSlow, Stall: true, After: after, Until: until}
}

// KillSpec schedules the abrupt death of one rank — or a whole node —
// at a virtual time. Unlike Rules, which fault individual operations, a
// kill takes the process down: its GPU and host tiers vanish, in-flight
// flushes resolve as lost, and every later call on the killed client
// fails. A node kill (GPU == -1) additionally means the node's local
// SSD contents do not survive into a restart; the scenario layer models
// that by discarding the node's store directories.
type KillSpec struct {
	// Node is the node index the kill targets.
	Node int
	// GPU selects one rank on the node; -1 kills every rank on it.
	GPU int
	// At is the virtual time the kill fires.
	At time.Duration
}

// KillRank schedules rank (node, gpu) to die at virtual time at.
func KillRank(node, gpu int, at time.Duration) KillSpec {
	return KillSpec{Node: node, GPU: gpu, At: at}
}

// KillNode schedules every rank on node to die at virtual time at — a
// whole-node failure: GPUs, host memory, and the node-local SSD are all
// lost.
func KillNode(node int, at time.Duration) KillSpec {
	return KillSpec{Node: node, GPU: -1, At: at}
}

// PreemptSpec schedules a preemption notice for one rank — or a whole
// node — at a virtual time: the scheduler announces the reclaim and
// grants a grace window. The runtime layer arms two timers off it — a
// deadline-bounded drain at At, and the actual kill at At+Grace — so a
// drain that misses its deadline is followed by the reclaim anyway,
// exactly the contract the drain's fail-open design exists for.
type PreemptSpec struct {
	// Node is the node index the notice targets.
	Node int
	// GPU selects one rank on the node; -1 preempts every rank on it.
	GPU int
	// At is the virtual time the notice arrives.
	At time.Duration
	// Grace is the window between the notice and the reclaim.
	Grace time.Duration
}

// PreemptRank schedules a preemption notice for rank (node, gpu) at
// virtual time at with the given grace window.
func PreemptRank(node, gpu int, at, grace time.Duration) PreemptSpec {
	return PreemptSpec{Node: node, GPU: gpu, At: at, Grace: grace}
}

// PreemptNode schedules a preemption notice for every rank on node.
func PreemptNode(node int, at, grace time.Duration) PreemptSpec {
	return PreemptSpec{Node: node, GPU: -1, At: at, Grace: grace}
}

// Decision is the injector's verdict for one operation. The zero value
// means "proceed untouched".
type Decision struct {
	// Err, when non-nil, fails the operation (wraps ErrInjected).
	Err error
	// Corrupt asks the hook to flip bytes in the operation's data.
	Corrupt bool
	// Scale multiplies effective bandwidth ((0,1]; 0 = unscaled).
	Scale float64
	// Delay is extra latency to charge before the outcome.
	Delay time.Duration
}

// rule wraps a Rule with its firing state.
type rule struct {
	Rule
	seen  int64 // matching operations observed
	fired int64 // times this rule fired
}

// Injector evaluates rules deterministically. Safe for concurrent use;
// determinism additionally requires a deterministic operation order,
// which the virtual clock provides.
type Injector struct {
	clk  simclock.Clock
	seed int64

	mu       sync.Mutex
	rng      *rand.Rand
	rules    []*rule
	kills    []KillSpec
	preempts []PreemptSpec
	ops      [numSites]int64 // operations observed per site
	hits     [numSites]int64 // faults injected per site
}

// New creates an injector on clk whose probabilistic draws derive from
// seed. Install rules with Add.
func New(clk simclock.Clock, seed int64, rules ...Rule) *Injector {
	in := &Injector{
		clk:  clk,
		seed: seed,
		rng:  rand.New(rand.NewSource(seed)),
	}
	in.Add(rules...)
	return in
}

// Seed returns the seed the injector was created with.
func (in *Injector) Seed() int64 { return in.seed }

// Add installs rules.
func (in *Injector) Add(rules ...Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range rules {
		rc := r
		in.rules = append(in.rules, &rule{Rule: rc})
	}
}

// AddKills installs rank/node kill schedules. The runtime layer reads
// them with KillAt when a client attaches the injector and arms a timer
// on the virtual clock.
func (in *Injector) AddKills(kills ...KillSpec) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.kills = append(in.kills, kills...)
}

// Kills returns a copy of the installed kill schedules.
func (in *Injector) Kills() []KillSpec {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]KillSpec, len(in.kills))
	copy(out, in.kills)
	return out
}

// KillAt reports the earliest scheduled death of rank (node, gpu),
// considering both rank kills and whole-node kills.
func (in *Injector) KillAt(node, gpu int) (at time.Duration, ok bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, k := range in.kills {
		if k.Node != node || (k.GPU != gpu && k.GPU != -1) {
			continue
		}
		if !ok || k.At < at {
			at, ok = k.At, true
		}
	}
	return at, ok
}

// AddPreempts installs preemption-notice schedules. The runtime layer
// reads them with PreemptAt when a client attaches the injector and arms
// the drain and reclaim timers on the virtual clock.
func (in *Injector) AddPreempts(preempts ...PreemptSpec) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.preempts = append(in.preempts, preempts...)
}

// Preempts returns a copy of the installed preemption schedules.
func (in *Injector) Preempts() []PreemptSpec {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]PreemptSpec, len(in.preempts))
	copy(out, in.preempts)
	return out
}

// PreemptAt reports the earliest scheduled preemption notice for rank
// (node, gpu), considering both rank and whole-node notices.
func (in *Injector) PreemptAt(node, gpu int) (at, grace time.Duration, ok bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, p := range in.preempts {
		if p.Node != node || (p.GPU != gpu && p.GPU != -1) {
			continue
		}
		if !ok || p.At < at {
			at, grace, ok = p.At, p.Grace, true
		}
	}
	return at, grace, ok
}

// NodeKilled reports whether a whole-node kill is scheduled for node.
func (in *Injector) NodeKilled(node int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, k := range in.kills {
		if k.Node == node && k.GPU == -1 {
			return true
		}
	}
	return false
}

// Decide evaluates one operation at site on checkpoint id (pass a
// negative id for operations that do not carry one) of the given size.
// It advances every matching rule's schedule, so call it exactly once
// per operation.
func (in *Injector) Decide(site Site, id int64, size int64) Decision {
	_ = size
	in.mu.Lock()
	defer in.mu.Unlock()
	now := in.clk.Now()
	in.ops[site]++
	var d Decision
	injected := false
	for _, r := range in.rules {
		if r.Site != site {
			continue
		}
		if r.IDSet && (id < 0 || id != r.ID) {
			continue
		}
		r.seen++
		if now < r.After || (r.Until > 0 && now >= r.Until) {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		switch {
		case r.Nth > 0:
			if r.seen != r.Nth {
				continue
			}
		case r.Prob > 0:
			if in.rng.Float64() >= r.Prob {
				continue
			}
		}
		r.fired++
		injected = true
		switch r.Kind {
		case KindFail:
			if d.Err == nil {
				d.Err = fmt.Errorf("%w: %s %s", ErrInjected, r.Kind, site)
			}
		case KindCorrupt:
			d.Corrupt = true
		case KindSlow:
			if r.Scale > 0 && r.Scale < 1 {
				if d.Scale == 0 {
					d.Scale = r.Scale
				} else {
					d.Scale *= r.Scale
				}
			}
			d.Delay += r.Delay
			if r.Jitter > 0 {
				d.Delay += time.Duration(in.rng.Int63n(int64(r.Jitter)))
			}
			if r.Stall && r.Until > now {
				// Pin the operation until the stall window closes.
				d.Delay += r.Until - now
			}
		}
	}
	if injected {
		in.hits[site]++
	}
	return d
}

// Injected returns the total number of operations that had at least one
// fault injected.
func (in *Injector) Injected() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var t int64
	for _, h := range in.hits {
		t += h
	}
	return t
}

// InjectedAt returns the number of faulted operations at site.
func (in *Injector) InjectedAt(site Site) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// Ops returns the number of operations observed at site.
func (in *Injector) Ops(site Site) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops[site]
}
