package faultinject

import (
	"errors"
	"testing"
	"time"

	"score/internal/simclock"
)

func TestFailNth(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		in := New(clk, 1, FailNth(SiteStoreWrite, 3))
		for i := 1; i <= 5; i++ {
			d := in.Decide(SiteStoreWrite, int64(i), 1024)
			if (i == 3) != (d.Err != nil) {
				t.Errorf("op %d: err=%v", i, d.Err)
			}
			if d.Err != nil && !errors.Is(d.Err, ErrInjected) {
				t.Errorf("op %d: error does not wrap ErrInjected: %v", i, d.Err)
			}
		}
		if got := in.Injected(); got != 1 {
			t.Errorf("Injected() = %d, want 1", got)
		}
		if got := in.InjectedAt(SiteStoreWrite); got != 1 {
			t.Errorf("InjectedAt(store-write) = %d, want 1", got)
		}
		if got := in.Ops(SiteStoreWrite); got != 5 {
			t.Errorf("Ops(store-write) = %d, want 5", got)
		}
	})
}

func TestTimeWindow(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		in := New(clk, 1, FailWindow(SiteNVMe, 10*time.Millisecond, 20*time.Millisecond))
		if d := in.Decide(SiteNVMe, -1, 1); d.Err != nil {
			t.Error("fired before window")
		}
		clk.Sleep(15 * time.Millisecond)
		if d := in.Decide(SiteNVMe, -1, 1); d.Err == nil {
			t.Error("did not fire inside window")
		}
		clk.Sleep(10 * time.Millisecond)
		if d := in.Decide(SiteNVMe, -1, 1); d.Err != nil {
			t.Error("fired after window")
		}
	})
}

func TestFailAfterIsPersistent(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		in := New(clk, 1, FailAfter(SitePFS, 5*time.Millisecond))
		if d := in.Decide(SitePFS, -1, 1); d.Err != nil {
			t.Error("fired before After")
		}
		clk.Sleep(5 * time.Millisecond)
		for i := 0; i < 3; i++ {
			if d := in.Decide(SitePFS, -1, 1); d.Err == nil {
				t.Errorf("op %d after outage start did not fail", i)
			}
			clk.Sleep(time.Millisecond)
		}
	})
}

func TestProbDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		var out []bool
		clk := simclock.NewVirtual()
		clk.Run(func() {
			in := New(clk, seed, FailProb(SiteNVMe, 0.5))
			for i := 0; i < 64; i++ {
				out = append(out, in.Decide(SiteNVMe, -1, 1).Err != nil)
			}
		})
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules (suspicious)")
	}
	fails := 0
	for _, f := range a {
		if f {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("p=0.5 over 64 ops fired %d times", fails)
	}
}

func TestIDMatching(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		in := New(clk, 1, CorruptID(SiteStoreRead, 7))
		if d := in.Decide(SiteStoreRead, 6, 1); d.Corrupt {
			t.Error("corrupted wrong id")
		}
		if d := in.Decide(SiteStoreRead, 7, 1); !d.Corrupt {
			t.Error("did not corrupt target id")
		}
		// Link transfers carry no id; id-scoped rules must not match.
		if d := in.Decide(SiteStoreRead, -1, 1); d.Corrupt {
			t.Error("id-scoped rule matched id-less operation")
		}
	})
}

func TestSlowAndDelayCompose(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		in := New(clk, 1,
			Slow(SitePCIe, 0.1, 0, 0),
			Delay(SiteHostAlloc, 3*time.Millisecond, 0, 0),
		)
		d := in.Decide(SitePCIe, -1, 1<<20)
		if d.Scale != 0.1 {
			t.Errorf("Scale = %v, want 0.1", d.Scale)
		}
		if d.Err != nil || d.Corrupt {
			t.Error("slow rule must not fail or corrupt")
		}
		a := in.Decide(SiteHostAlloc, -1, 1<<20)
		if a.Delay != 3*time.Millisecond {
			t.Errorf("Delay = %v, want 3ms", a.Delay)
		}
	})
}

func TestCountCap(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		r := FailProb(SiteNVMe, 1.0)
		r.Count = 2
		in := New(clk, 1, r)
		fails := 0
		for i := 0; i < 5; i++ {
			if in.Decide(SiteNVMe, -1, 1).Err != nil {
				fails++
			}
		}
		if fails != 2 {
			t.Errorf("Count=2 rule fired %d times", fails)
		}
	})
}

func TestFailWinsOverSlow(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		in := New(clk, 1,
			Slow(SiteNVMe, 0.5, 0, 0),
			FailNth(SiteNVMe, 1),
		)
		d := in.Decide(SiteNVMe, -1, 1)
		if d.Err == nil {
			t.Error("fail rule did not fire")
		}
		if d.Scale != 0.5 {
			t.Error("slow rule result dropped; hooks decide precedence")
		}
	})
}
