package faultinject

import (
	"errors"
	"testing"
	"time"

	"score/internal/simclock"
)

func TestFailNth(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		in := New(clk, 1, FailNth(SiteStoreWrite, 3))
		for i := 1; i <= 5; i++ {
			d := in.Decide(SiteStoreWrite, int64(i), 1024)
			if (i == 3) != (d.Err != nil) {
				t.Errorf("op %d: err=%v", i, d.Err)
			}
			if d.Err != nil && !errors.Is(d.Err, ErrInjected) {
				t.Errorf("op %d: error does not wrap ErrInjected: %v", i, d.Err)
			}
		}
		if got := in.Injected(); got != 1 {
			t.Errorf("Injected() = %d, want 1", got)
		}
		if got := in.InjectedAt(SiteStoreWrite); got != 1 {
			t.Errorf("InjectedAt(store-write) = %d, want 1", got)
		}
		if got := in.Ops(SiteStoreWrite); got != 5 {
			t.Errorf("Ops(store-write) = %d, want 5", got)
		}
	})
}

func TestTimeWindow(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		in := New(clk, 1, FailWindow(SiteNVMe, 10*time.Millisecond, 20*time.Millisecond))
		if d := in.Decide(SiteNVMe, -1, 1); d.Err != nil {
			t.Error("fired before window")
		}
		clk.Sleep(15 * time.Millisecond)
		if d := in.Decide(SiteNVMe, -1, 1); d.Err == nil {
			t.Error("did not fire inside window")
		}
		clk.Sleep(10 * time.Millisecond)
		if d := in.Decide(SiteNVMe, -1, 1); d.Err != nil {
			t.Error("fired after window")
		}
	})
}

func TestFailAfterIsPersistent(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		in := New(clk, 1, FailAfter(SitePFS, 5*time.Millisecond))
		if d := in.Decide(SitePFS, -1, 1); d.Err != nil {
			t.Error("fired before After")
		}
		clk.Sleep(5 * time.Millisecond)
		for i := 0; i < 3; i++ {
			if d := in.Decide(SitePFS, -1, 1); d.Err == nil {
				t.Errorf("op %d after outage start did not fail", i)
			}
			clk.Sleep(time.Millisecond)
		}
	})
}

func TestProbDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		var out []bool
		clk := simclock.NewVirtual()
		clk.Run(func() {
			in := New(clk, seed, FailProb(SiteNVMe, 0.5))
			for i := 0; i < 64; i++ {
				out = append(out, in.Decide(SiteNVMe, -1, 1).Err != nil)
			}
		})
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules (suspicious)")
	}
	fails := 0
	for _, f := range a {
		if f {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("p=0.5 over 64 ops fired %d times", fails)
	}
}

func TestIDMatching(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		in := New(clk, 1, CorruptID(SiteStoreRead, 7))
		if d := in.Decide(SiteStoreRead, 6, 1); d.Corrupt {
			t.Error("corrupted wrong id")
		}
		if d := in.Decide(SiteStoreRead, 7, 1); !d.Corrupt {
			t.Error("did not corrupt target id")
		}
		// Link transfers carry no id; id-scoped rules must not match.
		if d := in.Decide(SiteStoreRead, -1, 1); d.Corrupt {
			t.Error("id-scoped rule matched id-less operation")
		}
	})
}

func TestSlowAndDelayCompose(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		in := New(clk, 1,
			Slow(SitePCIe, 0.1, 0, 0),
			Delay(SiteHostAlloc, 3*time.Millisecond, 0, 0),
		)
		d := in.Decide(SitePCIe, -1, 1<<20)
		if d.Scale != 0.1 {
			t.Errorf("Scale = %v, want 0.1", d.Scale)
		}
		if d.Err != nil || d.Corrupt {
			t.Error("slow rule must not fail or corrupt")
		}
		a := in.Decide(SiteHostAlloc, -1, 1<<20)
		if a.Delay != 3*time.Millisecond {
			t.Errorf("Delay = %v, want 3ms", a.Delay)
		}
	})
}

func TestCountCap(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		r := FailProb(SiteNVMe, 1.0)
		r.Count = 2
		in := New(clk, 1, r)
		fails := 0
		for i := 0; i < 5; i++ {
			if in.Decide(SiteNVMe, -1, 1).Err != nil {
				fails++
			}
		}
		if fails != 2 {
			t.Errorf("Count=2 rule fired %d times", fails)
		}
	})
}

func TestFailWinsOverSlow(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		in := New(clk, 1,
			Slow(SiteNVMe, 0.5, 0, 0),
			FailNth(SiteNVMe, 1),
		)
		d := in.Decide(SiteNVMe, -1, 1)
		if d.Err == nil {
			t.Error("fail rule did not fire")
		}
		if d.Scale != 0.5 {
			t.Error("slow rule result dropped; hooks decide precedence")
		}
	})
}

func TestSiteTargeting(t *testing.T) {
	// One rule per site; every site's operations must only trip its own
	// rule. Guards against a site-enum reorder silently redirecting
	// schedules.
	clk := simclock.NewVirtual()
	clk.Run(func() {
		sites := []Site{
			SitePCIe, SiteNVMe, SitePFS, SiteStoreWrite, SiteStoreRead,
			SitePFSStoreWrite, SitePFSStoreRead, SiteHostAlloc,
			SitePartner, SitePartnerStoreWrite, SitePartnerStoreRead, SiteMigrate,
		}
		var rules []Rule
		for _, s := range sites {
			rules = append(rules, FailNth(s, 1))
		}
		in := New(clk, 1, rules...)
		for _, s := range sites {
			if d := in.Decide(s, -1, 1); d.Err == nil {
				t.Errorf("site %s: rule did not fire", s)
			}
			if got := in.InjectedAt(s); got != 1 {
				t.Errorf("site %s: InjectedAt = %d, want 1", s, got)
			}
			if got := in.Ops(s); got != 1 {
				t.Errorf("site %s: Ops = %d, want 1", s, got)
			}
		}
		if got := in.Injected(); got != int64(len(sites)) {
			t.Errorf("Injected() = %d, want %d", got, len(sites))
		}
	})
}

func TestNthCountsOnlyMatchingOps(t *testing.T) {
	// The Nth schedule advances on matching operations only: other
	// sites and other ids must not consume the trigger.
	clk := simclock.NewVirtual()
	clk.Run(func() {
		r := FailID(SiteStoreRead, 9)
		r.Nth = 2
		in := New(clk, 1, r)
		in.Decide(SiteStoreWrite, 9, 1) // wrong site
		in.Decide(SiteStoreRead, 8, 1)  // wrong id
		if d := in.Decide(SiteStoreRead, 9, 1); d.Err != nil {
			t.Error("fired on the 1st matching op; want the 2nd")
		}
		if d := in.Decide(SiteStoreRead, 9, 1); d.Err == nil {
			t.Error("did not fire on the 2nd matching op")
		}
	})
}

func TestScheduleExpiry(t *testing.T) {
	// A windowed always-fire rule expires exactly at Until, and its seen
	// counter keeps advancing outside the window (the schedule is
	// anchored to operation order, not to window entry).
	clk := simclock.NewVirtual()
	clk.Run(func() {
		in := New(clk, 1, FailWindow(SiteNVMe, 0, 10*time.Millisecond))
		if d := in.Decide(SiteNVMe, -1, 1); d.Err == nil {
			t.Error("window [0,10ms) did not fire at t=0")
		}
		clk.Sleep(10 * time.Millisecond)
		if d := in.Decide(SiteNVMe, -1, 1); d.Err != nil {
			t.Error("fired at t=Until; window is half-open")
		}
		clk.Sleep(time.Hour)
		if d := in.Decide(SiteNVMe, -1, 1); d.Err != nil {
			t.Error("fired long after expiry")
		}
	})
}

func TestJitterSeededAndBounded(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var out []time.Duration
		clk := simclock.NewVirtual()
		clk.Run(func() {
			in := New(clk, seed, Jitter(SiteNVMe, 2*time.Millisecond, 0, 0))
			for i := 0; i < 64; i++ {
				d := in.Decide(SiteNVMe, -1, 1)
				if d.Err != nil || d.Corrupt || d.Scale != 0 {
					t.Error("jitter must only add latency")
				}
				if d.Delay < 0 || d.Delay >= 2*time.Millisecond {
					t.Errorf("jitter %v outside [0, 2ms)", d.Delay)
				}
				out = append(out, d.Delay)
			}
		})
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %v vs %v", i, a[i], b[i])
		}
	}
	varied := false
	for i := 1; i < len(a); i++ {
		if a[i] != a[0] {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("jitter produced a constant delay over 64 draws")
	}
}

func TestStallWindowPinsUntilClose(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		in := New(clk, 1, StallWindow(SiteStoreWrite, 10*time.Millisecond, 30*time.Millisecond))
		if d := in.Decide(SiteStoreWrite, -1, 1); d.Delay != 0 {
			t.Errorf("stalled before window: %v", d.Delay)
		}
		clk.Sleep(15 * time.Millisecond)
		// 15ms into a [10ms,30ms) stall: pinned for the remaining 15ms.
		if d := in.Decide(SiteStoreWrite, -1, 1); d.Delay != 15*time.Millisecond {
			t.Errorf("mid-window delay = %v, want 15ms", d.Delay)
		}
		clk.Sleep(14 * time.Millisecond)
		if d := in.Decide(SiteStoreWrite, -1, 1); d.Delay != time.Millisecond {
			t.Errorf("late-window delay = %v, want 1ms", d.Delay)
		}
		clk.Sleep(time.Millisecond)
		if d := in.Decide(SiteStoreWrite, -1, 1); d.Delay != 0 {
			t.Errorf("stalled after window closed: %v", d.Delay)
		}
	})
}

func TestGrayShapesCompose(t *testing.T) {
	// A scaled link with jitter and a stall window: the merged decision
	// carries the scale and the summed delays, and never an error.
	clk := simclock.NewVirtual()
	clk.Run(func() {
		in := New(clk, 1,
			Slow(SiteNVMe, 0.05, 0, 0),
			Delay(SiteNVMe, time.Millisecond, 0, 0),
			StallWindow(SiteNVMe, 0, 20*time.Millisecond),
		)
		clk.Sleep(5 * time.Millisecond)
		d := in.Decide(SiteNVMe, -1, 1<<20)
		if d.Err != nil || d.Corrupt {
			t.Error("gray shapes must not fail or corrupt")
		}
		if d.Scale != 0.05 {
			t.Errorf("Scale = %v, want 0.05", d.Scale)
		}
		if want := 16 * time.Millisecond; d.Delay != want {
			t.Errorf("Delay = %v, want %v (1ms fixed + 15ms stall)", d.Delay, want)
		}
	})
}

func TestGrayWindowExpiry(t *testing.T) {
	// Jitter and stall rules are windowed like every other rule: outside
	// [After, Until) they contribute nothing.
	clk := simclock.NewVirtual()
	clk.Run(func() {
		in := New(clk, 3,
			Jitter(SiteNVMe, time.Millisecond, 5*time.Millisecond, 10*time.Millisecond),
		)
		if d := in.Decide(SiteNVMe, -1, 1); d.Delay != 0 {
			t.Error("jitter fired before its window")
		}
		clk.Sleep(20 * time.Millisecond)
		if d := in.Decide(SiteNVMe, -1, 1); d.Delay != 0 {
			t.Error("jitter fired after its window")
		}
	})
}
