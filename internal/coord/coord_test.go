package coord

import (
	"sync"
	"testing"
	"time"
)

func TestCommitRequiresEveryRank(t *testing.T) {
	tr, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.LatestConsistent(); ok {
		t.Fatal("empty tracker reports a consistent version")
	}
	tr.MarkDurable(0, 0)
	tr.MarkDurable(1, 0)
	if _, ok := tr.LatestConsistent(); ok {
		t.Fatal("version committed with only 2/3 ranks durable")
	}
	if lag := tr.CommitLag(); lag != 1 {
		t.Fatalf("CommitLag = %d, want 1 (version 0 durable somewhere, none committed)", lag)
	}
	tr.MarkDurable(2, 0)
	v, ok := tr.LatestConsistent()
	if !ok || v != 0 {
		t.Fatalf("LatestConsistent = (%d, %v), want (0, true)", v, ok)
	}
	if lag := tr.CommitLag(); lag != 0 {
		t.Fatalf("CommitLag = %d, want 0", lag)
	}
}

func TestLatestConsistentPicksNewestFullVersion(t *testing.T) {
	tr, _ := New(2)
	for v := int64(0); v < 4; v++ {
		tr.MarkDurable(0, v)
	}
	tr.MarkDurable(1, 0)
	tr.MarkDurable(1, 1)
	tr.MarkDurable(1, 3)
	v, ok := tr.LatestConsistent()
	if !ok || v != 3 {
		t.Fatalf("LatestConsistent = (%d, %v), want (3, true)", v, ok)
	}
	got := tr.CommittedVersions()
	want := []int64{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("CommittedVersions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CommittedVersions = %v, want %v", got, want)
		}
	}
}

func TestMarkLostRetractsClaim(t *testing.T) {
	tr, _ := New(2)
	tr.MarkDurable(0, 5)
	tr.MarkDurable(1, 5)
	if v, ok := tr.LatestConsistent(); !ok || v != 5 {
		t.Fatalf("LatestConsistent = (%d, %v), want (5, true)", v, ok)
	}
	tr.MarkLost(1, 5)
	if _, ok := tr.LatestConsistent(); ok {
		t.Fatal("version still committed after a rank retracted it")
	}
	tr.MarkLost(1, 99) // never claimed: no-op
}

func TestRetractRankDropsAllClaims(t *testing.T) {
	tr, _ := New(2)
	tr.MarkDurable(0, 0)
	tr.MarkDurable(0, 1)
	tr.MarkDurable(1, 0)
	tr.MarkDurable(1, 1)
	tr.RetractRank(1)
	if _, ok := tr.LatestConsistent(); ok {
		t.Fatal("versions survive RetractRank of a required rank")
	}
	// The surviving rank's claims are untouched: re-reporting rank 1
	// re-commits.
	tr.MarkDurable(1, 1)
	if v, ok := tr.LatestConsistent(); !ok || v != 1 {
		t.Fatalf("LatestConsistent = (%d, %v), want (1, true)", v, ok)
	}
}

func TestRankDeathsCountDistinct(t *testing.T) {
	tr, _ := New(4)
	tr.RankDead(2)
	tr.RankDead(2)
	tr.RankDead(0)
	tr.RankDead(99) // out of range: ignored
	if n := tr.RankDeaths(); n != 2 {
		t.Fatalf("RankDeaths = %d, want 2", n)
	}
	dead := tr.DeadRanks()
	if len(dead) != 2 || dead[0] != 0 || dead[1] != 2 {
		t.Fatalf("DeadRanks = %v, want [0 2]", dead)
	}
}

func TestDefensiveInputs(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("New(0) succeeded")
	}
	tr, _ := New(1)
	tr.MarkDurable(0, -1) // negative version ignored
	tr.MarkDurable(5, 0)  // out-of-range rank ignored
	if _, ok := tr.LatestConsistent(); ok {
		t.Fatal("defensive inputs produced a committed version")
	}
	tr.MarkDurable(0, 7)
	if v, ok := tr.LatestConsistent(); !ok || v != 7 {
		t.Fatalf("single-rank job: LatestConsistent = (%d, %v), want (7, true)", v, ok)
	}
}

func TestConcurrentReports(t *testing.T) {
	const ranks, versions = 8, 32
	tr, _ := New(ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for v := int64(0); v < versions; v++ {
				tr.MarkDurable(r, v)
			}
		}(r)
	}
	wg.Wait()
	v, ok := tr.LatestConsistent()
	if !ok || v != versions-1 {
		t.Fatalf("LatestConsistent = (%d, %v), want (%d, true)", v, ok, versions-1)
	}
	if got := len(tr.CommittedVersions()); got != versions {
		t.Fatalf("committed %d versions, want %d", got, versions)
	}
}

func TestCommitWaitAttribution(t *testing.T) {
	tr, _ := New(3)
	var now time.Duration
	tr.SetNow(func() time.Duration { return now })
	var gotVersion int64 = -1
	var gotWait time.Duration
	fired := 0
	tr.SetCommitObserver(func(version int64, wait time.Duration) {
		fired++
		gotVersion, gotWait = version, wait
	})

	now = 10 * time.Millisecond
	tr.MarkDurable(0, 0) // first durable report stamps firstAt
	now = 12 * time.Millisecond
	tr.MarkDurable(1, 0)
	tr.MarkDurable(1, 0) // duplicate report must not re-fire anything
	if fired != 0 {
		t.Fatalf("observer fired before global commit")
	}
	now = 17 * time.Millisecond
	tr.MarkDurable(2, 0) // last rank: commit at 17ms, wait = 7ms
	if fired != 1 || gotVersion != 0 || gotWait != 7*time.Millisecond {
		t.Fatalf("observer: fired=%d version=%d wait=%v, want 1/0/7ms", fired, gotVersion, gotWait)
	}
	tr.MarkDurable(2, 0) // committed version: no second firing
	if fired != 1 {
		t.Fatalf("observer re-fired on duplicate report: %d", fired)
	}

	waits := tr.CommitWaits()
	if len(waits) != 1 || waits[0] != 7*time.Millisecond {
		t.Fatalf("CommitWaits = %v, want {0: 7ms}", waits)
	}
	if got := tr.MeanCommitWait(); got != 7*time.Millisecond {
		t.Fatalf("MeanCommitWait = %v, want 7ms", got)
	}

	// A later rank death retracting claims must not erase the historical wait.
	tr.RetractRank(1)
	if waits := tr.CommitWaits(); len(waits) != 1 {
		t.Fatalf("CommitWaits after retract = %v, want the historical entry kept", waits)
	}
}

func TestCommitWaitWithoutClockIsZero(t *testing.T) {
	tr, _ := New(2)
	tr.MarkDurable(0, 3)
	tr.MarkDurable(1, 3)
	if waits := tr.CommitWaits(); len(waits) != 1 || waits[3] != 0 {
		t.Fatalf("CommitWaits without SetNow = %v, want {3: 0}", waits)
	}
	if tr.MeanCommitWait() != 0 {
		t.Fatalf("MeanCommitWait without SetNow = %v, want 0", tr.MeanCommitWait())
	}
}
