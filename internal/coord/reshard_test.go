package coord

import (
	"flag"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

var (
	reshardSeed   = flag.Int64("reshard.seed", 1, "base seed for the reshard concurrency property trials")
	reshardTrials = flag.Int("reshard.trials", 20, "number of seeded reshard concurrency property trials")
)

func TestReshardValidation(t *testing.T) {
	for _, bad := range []struct{ from, to, epoch int }{
		{0, 2, 1}, {2, 0, 1}, {2, 2, 0}, {-1, 2, 1}, {2, -1, 1}, {2, 2, -1},
	} {
		if _, err := NewReshard(bad.from, bad.to, bad.epoch); err == nil {
			t.Errorf("NewReshard(%d, %d, %d) accepted", bad.from, bad.to, bad.epoch)
		}
	}
	r, err := NewReshard(4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.From() != 4 || r.To() != 2 || r.Epoch() != 3 {
		t.Fatalf("From/To/Epoch = %d/%d/%d", r.From(), r.To(), r.Epoch())
	}
}

func TestReshardCommittedIsIntersection(t *testing.T) {
	r, _ := NewReshard(3, 2, 1)
	// v0 held by all, v1 missing shard 2, v2 held by all.
	for s := 0; s < 3; s++ {
		r.MarkShardDurable(s, 0)
		r.MarkShardDurable(s, 2)
	}
	r.MarkShardDurable(0, 1)
	r.MarkShardDurable(1, 1)
	got := r.Committed()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Committed = %v, want [0 2]", got)
	}
	if v, ok := r.Frontier(); !ok || v != 2 {
		t.Fatalf("Frontier = (%d, %v), want (2, true)", v, ok)
	}
	// Out-of-range and negative reports are ignored, not fatal.
	r.MarkShardDurable(-1, 5)
	r.MarkShardDurable(3, 5)
	r.MarkShardDurable(0, -1)
	if got := r.Committed(); len(got) != 2 {
		t.Fatalf("Committed after junk reports = %v", got)
	}
}

func TestReshardRetractAndRecover(t *testing.T) {
	r, _ := NewReshard(2, 2, 1)
	for v := int64(0); v < 3; v++ {
		r.MarkShardDurable(0, v)
		r.MarkShardDurable(1, v)
	}
	r.RetractShard(1)
	if _, ok := r.Frontier(); ok {
		t.Fatal("frontier survives losing a shard that held every version")
	}
	if got := r.RetractedShards(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("RetractedShards = %v, want [1]", got)
	}
	// Partner-copy recovery re-marks the shard and clears the retraction.
	for v := int64(0); v < 3; v++ {
		r.MarkShardDurable(1, v)
	}
	if got := r.RetractedShards(); len(got) != 0 {
		t.Fatalf("RetractedShards after recovery = %v, want []", got)
	}
	if v, ok := r.Frontier(); !ok || v != 2 {
		t.Fatalf("Frontier after recovery = (%d, %v), want (2, true)", v, ok)
	}
}

func TestReshardOwnerAndShardsOf(t *testing.T) {
	r, _ := NewReshard(5, 2, 1)
	wantOwner := []int{0, 1, 0, 1, 0}
	for s, want := range wantOwner {
		if got := r.Owner(s); got != want {
			t.Errorf("Owner(%d) = %d, want %d", s, got, want)
		}
	}
	if r.Owner(-1) != -1 || r.Owner(5) != -1 {
		t.Error("out-of-range Owner must be -1")
	}
	if got := r.ShardsOf(0); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Errorf("ShardsOf(0) = %v, want [0 2 4]", got)
	}
	if got := r.ShardsOf(1); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("ShardsOf(1) = %v, want [1 3]", got)
	}
	// Every shard is adopted by exactly one rank.
	seen := map[int]int{}
	for rank := 0; rank < r.To(); rank++ {
		for _, s := range r.ShardsOf(rank) {
			seen[s]++
			if r.Owner(s) != rank {
				t.Errorf("shard %d listed under rank %d but Owner says %d", s, rank, r.Owner(s))
			}
		}
	}
	for s := 0; s < r.From(); s++ {
		if seen[s] != 1 {
			t.Errorf("shard %d adopted %d times", s, seen[s])
		}
	}
}

// TestReshardTrackerSeeding covers both directions: shrink (every new
// rank adopts shards) and grow (some ranks draw none but must still be
// frontier-consistent). The seeded tracker's LatestConsistent must equal
// the reshard's Frontier at the new epoch.
func TestReshardTrackerSeeding(t *testing.T) {
	for _, tc := range []struct{ from, to int }{{4, 2}, {2, 5}, {3, 3}} {
		r, _ := NewReshard(tc.from, tc.to, 7)
		for s := 0; s < tc.from; s++ {
			for v := int64(0); v < 4; v++ {
				r.MarkShardDurable(s, v)
			}
		}
		// Shard 0 alone also holds v4: incomplete, must not commit.
		r.MarkShardDurable(0, 4)
		tr, err := r.Tracker()
		if err != nil {
			t.Fatalf("%d->%d: %v", tc.from, tc.to, err)
		}
		if tr.Epoch() != 7 {
			t.Errorf("%d->%d: epoch = %d, want 7", tc.from, tc.to, tr.Epoch())
		}
		want, wantOK := r.Frontier()
		got, ok := tr.LatestConsistent()
		if ok != wantOK || got != want {
			t.Errorf("%d->%d: LatestConsistent = (%d, %v), want (%d, %v)",
				tc.from, tc.to, got, ok, want, wantOK)
		}
		if want != 3 {
			t.Errorf("%d->%d: Frontier = %d, want 3", tc.from, tc.to, want)
		}
	}
}

// TestReshardConcurrentKillProperty is the seeded -race property sweep:
// shards report durability from concurrent scan loops while a victim
// shard is killed mid-recipe and later re-established from its partner
// copy. Two properties hold at every concurrent sample:
//
//  1. The frontier is monotone under marks: with no retraction in
//     flight, a sampled frontier never decreases.
//  2. The committed set never includes a version a surviving shard has
//     not reported: every sampled committed version is covered by every
//     shard's journal of reports (the journal is written before the
//     mark, so the tracker can only lag it, never lead it).
//
// And at the end of every trial the recipe converges: frontier at the
// last version, nothing retracted, the seeded tracker consistent.
func TestReshardConcurrentKillProperty(t *testing.T) {
	for trial := 0; trial < *reshardTrials; trial++ {
		rng := rand.New(rand.NewSource(*reshardSeed + int64(trial)))
		from := 2 + rng.Intn(4) // 2..5 old shards
		to := 1 + rng.Intn(5)   // 1..5 new ranks: shrink, grow, or equal
		versions := int64(8 + rng.Intn(9))
		victim := rng.Intn(from)

		r, err := NewReshard(from, to, 1)
		if err != nil {
			t.Fatal(err)
		}

		// journal[s] is the highest version shard s has reported, written
		// BEFORE the mark reaches the tracker. -1 means none. Marks go in
		// ascending order, so one high-water mark per shard is the journal.
		journal := make([]atomic.Int64, from)
		for s := range journal {
			journal[s].Store(-1)
		}
		mark := func(shard int, v int64) {
			journal[shard].Store(v)
			r.MarkShardDurable(shard, v)
		}

		// Phase A — every shard scans concurrently up to half the versions.
		half := versions / 2
		var wg sync.WaitGroup
		stop := make(chan struct{})
		var sampleErr atomic.Value
		wg.Add(1)
		go func() { // sampler: property 1 and 2
			defer wg.Done()
			last := int64(-1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v, ok := r.Frontier(); ok {
					if v < last {
						sampleErr.Store("frontier moved backward under marks")
						return
					}
					last = v
				}
				for _, v := range r.Committed() {
					for s := 0; s < from; s++ {
						if journal[s].Load() < v {
							sampleErr.Store("committed version not reported by every shard")
							return
						}
					}
				}
				runtime.Gosched()
			}
		}()
		var markers sync.WaitGroup
		for s := 0; s < from; s++ {
			markers.Add(1)
			go func(shard int) {
				defer markers.Done()
				for v := int64(0); v < half; v++ {
					mark(shard, v)
					runtime.Gosched()
				}
			}(s)
		}
		markers.Wait()
		close(stop)
		wg.Wait()
		if msg := sampleErr.Load(); msg != nil {
			t.Fatalf("trial %d (seed %d): %s", trial, *reshardSeed+int64(trial), msg)
		}
		if v, ok := r.Frontier(); !ok || v != half-1 {
			t.Fatalf("trial %d: phase A frontier = (%d, %v), want (%d, true)", trial, v, ok, half-1)
		}

		// Phase B — survivors keep scanning while the victim dies
		// mid-recipe and its partner re-establishes it concurrently.
		var wg2 sync.WaitGroup
		for s := 0; s < from; s++ {
			if s == victim {
				continue
			}
			wg2.Add(1)
			go func(shard int) {
				defer wg2.Done()
				for v := half; v < versions; v++ {
					mark(shard, v)
					runtime.Gosched()
				}
			}(s)
		}
		wg2.Add(1)
		go func() { // the kill and the partner recovery
			defer wg2.Done()
			r.RetractShard(victim)
			runtime.Gosched()
			for v := int64(0); v < versions; v++ {
				mark(victim, v)
				runtime.Gosched()
			}
		}()
		wg2.Add(1)
		go func() { // concurrent reader exercising every query under -race
			defer wg2.Done()
			for i := 0; i < 50; i++ {
				r.Frontier()
				r.Committed()
				r.RetractedShards()
				for rank := 0; rank < to; rank++ {
					r.ShardsOf(rank)
				}
				runtime.Gosched()
			}
		}()
		wg2.Wait()

		// Convergence: recovery re-marked everything, so the recipe ends
		// with the full frontier, no retraction, and a consistent tracker.
		if got := r.RetractedShards(); len(got) != 0 {
			t.Fatalf("trial %d: RetractedShards = %v after recovery", trial, got)
		}
		if v, ok := r.Frontier(); !ok || v != versions-1 {
			t.Fatalf("trial %d: final frontier = (%d, %v), want (%d, true)", trial, v, ok, versions-1)
		}
		if got := r.Committed(); int64(len(got)) != versions {
			t.Fatalf("trial %d: committed %d versions, want %d", trial, len(got), versions)
		}
		tr, err := r.Tracker()
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := tr.LatestConsistent(); !ok || v != versions-1 {
			t.Fatalf("trial %d: seeded tracker LatestConsistent = (%d, %v), want (%d, true)",
				trial, v, ok, versions-1)
		}
		if tr.Epoch() != 1 {
			t.Fatalf("trial %d: tracker epoch = %d, want 1", trial, tr.Epoch())
		}
	}
}
