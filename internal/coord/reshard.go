package coord

import (
	"errors"
	"sort"
	"sync"
)

// Elastic restart: re-sharding checkpoint state from N ranks to M. The
// old job's state exists as N shards — one per old rank, each a slice of
// every checkpoint version that rank wrote. A version is restorable by
// the new membership only if all N of its shards survived; the restart
// recipe scans the surviving stores (ground truth, not the old
// tracker's in-memory view), reports what each shard actually holds, and
// Reshard recomputes the group-commit frontier for the new membership.
//
// The recipe is interruptible by design: a node can die mid-scan
// (RetractShard drops everything it claimed) and a partner-copy recovery
// can re-establish a retracted shard's claims from the replica. The
// frontier only ever reflects versions every shard demonstrably holds —
// it never includes a version a surviving shard lacks.

// Reshard accumulates shard-durability reports during an elastic restart
// and maps the old membership's N shards onto the new membership's M
// ranks. All methods are safe for concurrent use.
type Reshard struct {
	mu        sync.Mutex
	from, to  int
	epoch     int
	holds     map[int64]map[int]struct{} // version -> old shards holding it
	retracted map[int]struct{}           // shards whose storage was lost mid-recipe
}

// NewReshard starts an elastic-restart recipe re-sharding a job from
// `from` old ranks onto `to` new ranks, at the new membership epoch
// (which must be past the old incarnation's).
func NewReshard(from, to, epoch int) (*Reshard, error) {
	if from < 1 || to < 1 {
		return nil, errors.New("coord: reshard needs at least one rank on each side")
	}
	if epoch < 1 {
		return nil, errors.New("coord: a reshard starts a new membership epoch (>= 1)")
	}
	return &Reshard{
		from:      from,
		to:        to,
		epoch:     epoch,
		holds:     map[int64]map[int]struct{}{},
		retracted: map[int]struct{}{},
	}, nil
}

// From returns the old membership's rank count; To the new one's.
func (r *Reshard) From() int { return r.from }

// To returns the new membership's rank count.
func (r *Reshard) To() int { return r.to }

// Epoch returns the new membership epoch the reshard establishes.
func (r *Reshard) Epoch() int { return r.epoch }

// MarkShardDurable records that old shard `shard` holds `version` in a
// surviving durable store. Out-of-range shards and negative versions are
// ignored (reports come from per-store scan loops). Re-marking a
// retracted shard is allowed — that is exactly what a partner-copy
// recovery does — and clears its retraction.
func (r *Reshard) MarkShardDurable(shard int, version int64) {
	if version < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if shard < 0 || shard >= r.from {
		return
	}
	delete(r.retracted, shard)
	set := r.holds[version]
	if set == nil {
		set = map[int]struct{}{}
		r.holds[version] = set
	}
	set[shard] = struct{}{}
}

// RetractShard drops every claim old shard `shard` has made — its
// storage died mid-recipe (node loss during the restart window). The
// frontier recomputes without it; versions only it completed fall out of
// the committed set until a partner-copy recovery re-marks them.
func (r *Reshard) RetractShard(shard int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if shard < 0 || shard >= r.from {
		return
	}
	r.retracted[shard] = struct{}{}
	for v, set := range r.holds {
		delete(set, shard)
		if len(set) == 0 {
			delete(r.holds, v)
		}
	}
}

// RetractedShards lists the shards currently retracted (lost and not yet
// recovered), ascending.
func (r *Reshard) RetractedShards() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.retracted))
	for s := range r.retracted {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Committed lists the versions every old shard holds — the versions the
// new membership can restore completely — in ascending order. A version
// missing any shard (including a retracted one) is not restorable: each
// shard is a distinct slice of the job's state, so there is no quorum
// shortcut.
func (r *Reshard) Committed() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []int64
	for v, set := range r.holds {
		if len(set) == r.from {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Frontier returns the newest completely-held version — what the new
// membership restores from. ok is false when no version is complete.
func (r *Reshard) Frontier() (version int64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	found := false
	var best int64
	for v, set := range r.holds {
		if len(set) != r.from {
			continue
		}
		if !found || v > best {
			best = v
			found = true
		}
	}
	return best, found
}

// Owner maps an old shard to the new rank that adopts it: round-robin
// shard % to, so N→M re-sharding balances within one shard everywhere.
// Out-of-range shards return -1.
func (r *Reshard) Owner(shard int) int {
	if shard < 0 || shard >= r.from {
		return -1
	}
	return shard % r.to
}

// ShardsOf lists the old shards new rank `rank` adopts, ascending. Empty
// when rank is out of range or (M > N) the rank drew no shard.
func (r *Reshard) ShardsOf(rank int) []int {
	if rank < 0 || rank >= r.to {
		return nil
	}
	var out []int
	for s := rank; s < r.from; s += r.to {
		out = append(out, s)
	}
	return out
}

// Tracker builds the new membership's group-commit tracker at the
// reshard's epoch, seeded so the adopted state counts as already
// durable: new rank m holds version v iff every shard it adopted holds v
// (a rank that drew no shard — the M > N case — is seeded with the
// completely-held versions, since it carries no slice whose absence
// could block a restore). By construction the seeded tracker's
// LatestConsistent equals Frontier.
func (r *Reshard) Tracker() (*Tracker, error) {
	t, err := NewAtEpoch(r.to, r.epoch)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	versions := make([]int64, 0, len(r.holds))
	for v := range r.holds {
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	type hold struct {
		rank    int
		version int64
	}
	var seeds []hold
	for _, v := range versions {
		set := r.holds[v]
		complete := len(set) == r.from
		for m := 0; m < r.to; m++ {
			owned := r.shardsOfLocked(m)
			if len(owned) == 0 {
				if complete {
					seeds = append(seeds, hold{m, v})
				}
				continue
			}
			all := true
			for _, s := range owned {
				if _, ok := set[s]; !ok {
					all = false
					break
				}
			}
			if all {
				seeds = append(seeds, hold{m, v})
			}
		}
	}
	r.mu.Unlock()
	// Seed outside r.mu: MarkDurable may fire the tracker's commit
	// observer, which can re-enter arbitrary code.
	for _, s := range seeds {
		t.MarkDurable(s.rank, s.version)
	}
	return t, nil
}

// shardsOfLocked is ShardsOf without locking (callers hold r.mu; the
// shard map is immutable after construction anyway).
func (r *Reshard) shardsOfLocked(rank int) []int {
	var out []int
	for s := rank; s < r.from; s += r.to {
		out = append(out, s)
	}
	return out
}
