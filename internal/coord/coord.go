// Package coord tracks cluster-wide checkpoint consistency across the
// ranks of one job: the VELOC-style group-commit rule under which a
// checkpoint version only becomes restart-safe once *every* rank holds
// it at a durable tier. Each rank reports its per-version durability
// transitions (core's fate accounting drives this through the
// CommitHook interface); the tracker answers the two questions a
// restart path needs — which versions are globally committed, and what
// is the newest one — plus the monitoring view (commit lag, rank
// deaths) the observability layer samples.
//
// The tracker is mechanical on purpose: it records what ranks report
// and computes set intersections. Whether a dead rank's durable copies
// actually survived (process kill: node-local SSD intact; node kill:
// gone unless partner-copied) is the scenario layer's knowledge — on
// restart it rebuilds a fresh tracker from what the stores really
// hold, which is the ground truth the running tracker approximates.
package coord

import (
	"errors"
	"sort"
	"sync"
	"time"

	"score/internal/metrics"
)

// Tracker accumulates per-rank durability reports for one job. All
// methods are safe for concurrent use. Versions must be non-negative
// (the runtime enforces this for checkpoint ids).
type Tracker struct {
	mu     sync.Mutex
	ranks  int
	epoch  int                        // membership epoch (bumped by elastic restart)
	holds  map[int64]map[int]struct{} // version -> ranks holding a durable copy
	high   int64                      // highest version any rank reported durable
	any    bool                       // a durable report has been seen
	dead   map[int]struct{}
	deaths int64

	// Commit-wait attribution (optional; active once SetNow is called):
	// per version, when the first rank reported it durable and when it
	// became globally committed. The gap is the group-commit wait — the
	// time the fastest rank's version spent waiting for the stragglers.
	now         func() time.Duration
	firstAt     map[int64]time.Duration
	committedAt map[int64]time.Duration
	onCommit    func(version int64, wait time.Duration)
}

// New creates a tracker for a job of the given rank count, at membership
// epoch 0 (the job's first incarnation).
func New(ranks int) (*Tracker, error) {
	return NewAtEpoch(ranks, 0)
}

// NewAtEpoch creates a tracker for a job of the given rank count at an
// explicit membership epoch. Elastic restart uses this: each re-shard of
// the job onto a new rank count bumps the epoch, so reports from a stale
// incarnation are distinguishable from the live one's.
func NewAtEpoch(ranks, epoch int) (*Tracker, error) {
	if ranks < 1 {
		return nil, errors.New("coord: need at least one rank")
	}
	if epoch < 0 {
		return nil, errors.New("coord: membership epoch must be non-negative")
	}
	return &Tracker{
		ranks:       ranks,
		epoch:       epoch,
		holds:       map[int64]map[int]struct{}{},
		dead:        map[int]struct{}{},
		firstAt:     map[int64]time.Duration{},
		committedAt: map[int64]time.Duration{},
	}, nil
}

// Epoch returns the tracker's membership epoch.
func (t *Tracker) Epoch() int { return t.epoch }

// SetNow attaches a clock (typically simclock's Now) enabling
// commit-wait attribution: per version, the time from the first rank's
// durable report to global commit. Call before the run starts.
func (t *Tracker) SetNow(now func() time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
}

// SetCommitObserver registers a callback fired once per version, at the
// moment it first becomes globally committed, with the commit wait it
// accumulated (zero unless SetNow was called). The observability layer
// hooks the lifecycle ledger here. Call before the run starts.
func (t *Tracker) SetCommitObserver(fn func(version int64, wait time.Duration)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onCommit = fn
}

// Ranks returns the job's rank count.
func (t *Tracker) Ranks() int { return t.ranks }

// MarkDurable records that rank holds version at a durable tier. Out-of-
// range ranks and negative versions are ignored (defensive: reports come
// from per-rank hooks).
func (t *Tracker) MarkDurable(rank int, version int64) {
	if version < 0 {
		return
	}
	t.mu.Lock()
	if rank < 0 || rank >= t.ranks {
		t.mu.Unlock()
		return
	}
	set := t.holds[version]
	if set == nil {
		set = map[int]struct{}{}
		t.holds[version] = set
	}
	set[rank] = struct{}{}
	if !t.any || version > t.high {
		t.high = version
		t.any = true
	}
	if t.now != nil {
		if _, seen := t.firstAt[version]; !seen {
			t.firstAt[version] = t.now()
		}
	}
	var notify func(int64, time.Duration)
	var wait time.Duration
	if len(set) == t.ranks {
		if _, done := t.committedAt[version]; !done {
			var at time.Duration
			if t.now != nil {
				at = t.now()
			}
			t.committedAt[version] = at
			wait = at - t.firstAt[version]
			notify = t.onCommit
		}
	}
	t.mu.Unlock()
	if notify != nil {
		// Outside the lock: the observer may re-enter the tracker or
		// take other locks (e.g. the trace ledger's).
		notify(version, wait)
	}
}

// MarkLost retracts rank's claim on version — the rank's flush chain for
// it was aborted, or its copy died with the process before reaching a
// durable tier. Retracting a claim that was never made is a no-op.
func (t *Tracker) MarkLost(rank int, version int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if set := t.holds[version]; set != nil {
		delete(set, rank)
		if len(set) == 0 {
			delete(t.holds, version)
		}
	}
}

// RankDead records that rank died. Its existing durable claims stand —
// node-local checkpoint files outlive a process kill — and the restart
// path decides what actually survived; use RetractRank when a whole
// node's storage is known lost.
func (t *Tracker) RankDead(rank int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rank < 0 || rank >= t.ranks {
		return
	}
	if _, dup := t.dead[rank]; !dup {
		t.dead[rank] = struct{}{}
		t.deaths++
	}
}

// RetractRank drops every durable claim rank has made — the node-kill
// case, where the rank's local SSD died with it and no copy survives
// (partner replicas, tracked by the partner rank's restart-side
// reports, are unaffected).
func (t *Tracker) RetractRank(rank int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for v, set := range t.holds {
		delete(set, rank)
		if len(set) == 0 {
			delete(t.holds, v)
		}
	}
}

// RankDeaths returns the number of distinct ranks reported dead.
func (t *Tracker) RankDeaths() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deaths
}

// DeadRanks lists the ranks reported dead, ascending.
func (t *Tracker) DeadRanks() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, 0, len(t.dead))
	for r := range t.dead {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// CommittedVersions lists the globally committed versions — those every
// rank holds durable — in ascending order.
func (t *Tracker) CommittedVersions() []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []int64
	for v, set := range t.holds {
		if len(set) == t.ranks {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LatestConsistent returns the newest globally committed version — the
// version a cluster restart should restore from. ok is false when no
// version has committed on every rank yet.
func (t *Tracker) LatestConsistent() (version int64, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	found := false
	var best int64
	for v, set := range t.holds {
		if len(set) != t.ranks {
			continue
		}
		if !found || v > best {
			best = v
			found = true
		}
	}
	return best, found
}

// CommitLag measures how far the cluster's committed frontier trails the
// fastest rank: the highest version any rank reported durable minus the
// latest consistent version (counting from -1 when nothing has
// committed). 0 means every durable version is globally committed.
func (t *Tracker) CommitLag() int64 {
	latest, ok := t.LatestConsistent()
	if !ok {
		latest = -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.any {
		return 0
	}
	return t.high - latest
}

// CommitWaits returns, per globally committed version, the group-commit
// wait: the interval from the first rank's durable report of that
// version to its global commit. Empty unless SetNow was provided.
// Committed versions stay in the map even if a later rank death retracts
// claims — the wait is a historical measurement, not current state.
func (t *Tracker) CommitWaits() map[int64]time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int64]time.Duration, len(t.committedAt))
	for v, at := range t.committedAt {
		out[v] = at - t.firstAt[v]
	}
	return out
}

// MeanCommitWait averages the group-commit waits over committed
// versions; zero when nothing has committed (or SetNow was never set).
func (t *Tracker) MeanCommitWait() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.committedAt) == 0 {
		return 0
	}
	var sum time.Duration
	for v, at := range t.committedAt {
		sum += at - t.firstAt[v]
	}
	return sum / time.Duration(len(t.committedAt))
}

// RegisterProbes attaches the tracker's gauges to a sampler: the latest
// consistent version (-1 before the first global commit), the commit
// lag, the mean group-commit wait, and the rank-death count. Call
// before Sampler.Start; prefix defaults to "coord".
func (t *Tracker) RegisterProbes(s *metrics.Sampler, prefix string) {
	if prefix == "" {
		prefix = "coord"
	}
	s.Register(prefix+".committed_version", func() float64 {
		v, ok := t.LatestConsistent()
		if !ok {
			return -1
		}
		return float64(v)
	})
	s.Register(prefix+".commit_lag", func() float64 {
		return float64(t.CommitLag())
	})
	s.Register(prefix+".mean_commit_wait_us", func() float64 {
		return float64(t.MeanCommitWait()) / float64(time.Microsecond)
	})
	s.Register(prefix+".rank_deaths", func() float64 {
		return float64(t.RankDeaths())
	})
}
