// Package core implements Score, the paper's asynchronous multi-level
// checkpoint caching and prefetching runtime (§4). One Client serves one
// process (one GPU): it manages a pre-allocated GPU cache and pinned host
// cache (§4.1.4), flushes checkpoints asynchronously down the tier chain
// (GPU → host → node-local SSD → optional PFS) with dedicated background
// tasks (T_D2H, T_H2F, §4.3.1), and prefetches checkpoints back up the
// chain (T_PF) following the application's restore-order hints (§4.1.1).
// Evictions on the cache tiers use the gap-aware score-based policy of
// §4.2 via internal/cachebuf, with evictability governed by the per-
// replica life-cycle FSM of Figure 1 via internal/lifecycle.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"score/internal/cachebuf"
	"score/internal/ckptstore"
	"score/internal/device"
	"score/internal/fabric"
	"score/internal/lifecycle"
	"score/internal/metrics"
	"score/internal/payload"
	"score/internal/simclock"
	"score/internal/trace"
)

// ID identifies a checkpoint version within one client.
type ID int64

// Tier enumerates the storage hierarchy levels.
type Tier int

const (
	// TierGPU is the per-process GPU HBM cache (fastest).
	TierGPU Tier = iota
	// TierHost is the per-process pinned host-memory cache.
	TierHost
	// TierSSD is the node-local NVMe tier, shared by co-located
	// processes.
	TierSSD
	// TierPartner is a replica staged on a partner node's SSD over the
	// inter-node fabric (SCR/VELOC partner-copy). Slower to reach than
	// the local SSD, faster than the PFS, and — unlike the local SSD —
	// it survives the loss of this whole node.
	TierPartner
	// TierPFS is the globally shared parallel file system (slowest).
	TierPFS
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierGPU:
		return "gpu"
	case TierHost:
		return "host"
	case TierSSD:
		return "ssd"
	case TierPartner:
		return "partner"
	case TierPFS:
		return "pfs"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// Errors returned by Client operations.
var (
	// ErrUnknownCheckpoint: restore of a version that was never written.
	ErrUnknownCheckpoint = errors.New("core: unknown checkpoint")
	// ErrClosed: the client has been closed.
	ErrClosed = errors.New("core: client closed")
	// ErrDuplicateCheckpoint: a version was written twice (checkpoints
	// are immutable, §1).
	ErrDuplicateCheckpoint = errors.New("core: checkpoint version already written")
	// ErrKilled: the rank was killed by fault injection; the process is
	// gone and every subsequent call fails.
	ErrKilled = errors.New("core: rank killed")
)

// CommitHook receives a rank's per-version durability transitions, one
// call per (rank, version) fate. internal/coord implements it for
// cluster-wide group commit; core only reports, it never blocks on the
// hook, so implementations must be non-blocking and concurrency-safe.
type CommitHook interface {
	// MarkDurable: the rank holds version at a durable tier.
	MarkDurable(rank int, version int64)
	// MarkLost: the rank's copy of version is gone before ever becoming
	// durable (flush chain aborted, or the process died with it).
	MarkLost(rank int, version int64)
	// RankDead: the rank's process died.
	RankDead(rank int)
}

// SLOSink receives the observations the SLO engine evaluates: finished
// critical-path records (restore blocking, time-to-durable) and
// preemption-drain outcomes. internal/slo implements it; core only
// defines the interface so the dependency points outward. Calls happen
// on the hot paths under the virtual clock, so implementations must be
// non-blocking and concurrency-safe.
type SLOSink interface {
	ObserveCritPath(rec metrics.CritPathRecord)
	ObserveDrain(met bool)
}

// Params configures a Client.
type Params struct {
	// Clock drives all timing; required.
	Clock simclock.Clock
	// GPU is the simulated device this process owns; required.
	GPU *device.GPU
	// NVMe is the node-shared SSD link; required.
	NVMe *fabric.Link
	// PFS is the cluster-shared parallel file system link; required
	// when PersistToPFS is set, optional otherwise.
	PFS *fabric.Link

	// GPUCacheSize is the device cache reservation in bytes (paper
	// default: 4 GiB, 10% of an A100).
	GPUCacheSize int64
	// HostCacheSize is the pinned host cache reservation in bytes
	// (paper default: 32 GiB per process).
	HostCacheSize int64

	// DiscardAfterRestore makes consumed checkpoints discardable:
	// pending flushes are cancelled (§2 condition 5) and any replica
	// becomes evictable. This matches adjoint workloads; reproducibility
	// workloads set it to false.
	DiscardAfterRestore bool
	// PersistToPFS extends the flush chain beyond the node-local SSD.
	PersistToPFS bool
	// AutoStartPrefetch activates the prefetcher as soon as hints are
	// available instead of waiting for PrefetchStart (the paper's
	// VELOC_Prefetch_start is optional).
	AutoStartPrefetch bool
	// AsyncHostInit overlaps the expensive pinned host cache
	// registration (§4.1.4: ~4 GB/s) with the start of the run; the
	// host tier only becomes usable once registration completes. When
	// false, New blocks for the registration time instead.
	AsyncHostInit bool

	// The remaining options disable individual design principles for the
	// ablation benchmarks; production use leaves them all false.

	// SplitCache abandons §4.1.2's shared flush/prefetch cache: the GPU
	// cache is split into two half-size regions, one dedicated to
	// writes and one to prefetches ("a naive strategy could simply
	// manage a separate space on each tier").
	SplitCache bool
	// NoPinning abandons §4.1.3's unified life cycle: prefetched-but-
	// unconsumed replicas become evictable (risking thrashing), as when
	// flushing and prefetching are tracked independently.
	NoPinning bool
	// OnDemandAlloc abandons §4.1.4's pre-allocated pinned buffers:
	// every flush pays the pinned host allocation cost (~4 GB/s) and
	// every checkpoint the device allocation cost for its own region.
	OnDemandAlloc bool
	// GPUEvictionPolicy overrides the GPU cache eviction policy for the
	// ablation benchmarks (default: the paper's scored policy).
	GPUEvictionPolicy cachebuf.Policy
	// NoHostStager disables the SSD→host prefetch stage of T_PF,
	// serializing both promotion hops inside each GPU promotion.
	NoHostStager bool
	// SharedHost, when set, replaces the per-process pinned host cache
	// with a pool shared by every client registered to it (the paper's
	// future-work load balancing for variable-sized checkpoints);
	// HostCacheSize is then ignored.
	SharedHost *SharedHostCache
	// GPUDirectStorage implements the paper's future-work item
	// ("incorporate support for Nvidia GPUDirect storage"): flushes move
	// GPU→SSD and prefetches SSD→GPU directly, without staging through
	// the pinned host cache. The host tier is bypassed entirely; the
	// trade-off is losing its capacity as a middle cache level.
	GPUDirectStorage bool

	// Tracer, when set, records checkpoint/restore/flush/prefetch spans
	// on the simulated timeline for Chrome-trace export. Nil disables
	// tracing with zero overhead.
	Tracer *trace.Tracer

	// SLO, when set, receives every finished critical-path record and
	// drain outcome for online burn-rate evaluation (internal/slo,
	// DESIGN.md §17). Nil disables SLO evaluation with zero overhead —
	// the hot paths pay exactly one nil check.
	SLO SLOSink

	// Store, when set, makes the SSD tier genuinely durable for real
	// (byte-backed) payloads: flushes that reach the SSD persist the
	// bytes, and New recovers the checkpoint table from whatever the
	// store holds — the VELOC-style restart-after-failure capability.
	// Virtual (size-only) payloads are simulated as before.
	Store *ckptstore.Store
	// PFSStore, when set, makes the PFS tier durable the same way:
	// flushes that reach the PFS persist real payload bytes there, New
	// recovers from it, and a failed or corrupt SSD read transparently
	// falls back to it (re-populating the SSD copy on success). Requires
	// the PFS link.
	PFSStore *ckptstore.Store

	// ChunkSize, when positive, streams every multi-hop transfer (flushes
	// down the tier chain and promotions back up) as a pipeline of
	// chunk-sized pieces with consecutive hops overlapped (§4.3): chunk i
	// moves on the second hop while chunk i+1 moves on the first, and the
	// whole stream holds one of the GPU's copy engines. 0 keeps every
	// transfer monolithic — the exact seed timing.
	ChunkSize int64
	// FlushStreams sets the worker count of each flusher stage pool
	// (T_D2H and T_H2F). 0 resolves to one worker per stage when
	// ChunkSize is 0 (the seed behavior) and to the GPU's copy-engine
	// count when chunked streaming is enabled.
	FlushStreams int

	// Retry tunes the exponential-backoff retry applied to transient
	// tier-I/O failures; zero fields take the defaults.
	Retry RetryPolicy
	// Hedge enables gray-failure tolerance: deep restores race a hedge
	// leg against the next-deeper replica once the current leg exceeds
	// its adaptive deadline (the online healthy-cost estimate for its link
	// class),
	// background flush legs that stall past their deadline re-route to an
	// alternate durable tier, and link classes whose EWMA health score
	// breaches the quarantine threshold are taken out of rotation until a
	// probe reinstates them. First success wins and every checkpoint still
	// gets exactly one fate. Off (the default) the runtime is
	// byte-identical to the sequential ladder.
	Hedge bool
	// HedgeDelayFloor bounds the adaptive hedge/stall deadlines from
	// below, guarding against hair-trigger hedging before the latency
	// estimators have samples. 0 takes the default (1ms simulated).
	HedgeDelayFloor time.Duration
	// FaultSeed seeds the retry jitter (and any other client-local
	// randomness) so fault-injection runs replay deterministically.
	FaultSeed int64

	// Rank is this client's rank index in the job, reported through
	// Commit. Meaningful only when Commit is set.
	Rank int
	// Commit, when set, receives per-version durability transitions for
	// cluster-wide group commit (internal/coord).
	Commit CommitHook

	// PartnerStore and PartnerPath enable partner-copy replication: a
	// flush that lands on the local SSD also stages a replica on a
	// partner node's SSD, crossing PartnerPath (local NIC → partner NIC
	// → partner NVMe) on the simulated fabric. Both must be set
	// together. Reads traverse the path in reverse.
	PartnerStore *ckptstore.Store
	PartnerPath  fabric.Path
}

// withDefaults fills unset sizes with the paper's §5.3.4 configuration.
func (p Params) withDefaults() Params {
	if p.GPUCacheSize == 0 {
		p.GPUCacheSize = 4 * fabric.GB
	}
	if p.HostCacheSize == 0 {
		p.HostCacheSize = 32 * fabric.GB
	}
	p.Retry = p.Retry.withDefaults()
	if p.HedgeDelayFloor == 0 {
		p.HedgeDelayFloor = time.Millisecond
	}
	return p
}

func (p Params) validate() error {
	switch {
	case p.Clock == nil:
		return errors.New("core: Params.Clock is required")
	case p.GPU == nil:
		return errors.New("core: Params.GPU is required")
	case p.NVMe == nil:
		return errors.New("core: Params.NVMe is required")
	case p.PersistToPFS && p.PFS == nil:
		return errors.New("core: Params.PFS required when PersistToPFS is set")
	case p.PFSStore != nil && p.PFS == nil:
		return errors.New("core: Params.PFS required when PFSStore is set")
	case p.GPUCacheSize <= 0 || p.HostCacheSize <= 0:
		return errors.New("core: cache sizes must be positive")
	case p.ChunkSize < 0:
		return errors.New("core: Params.ChunkSize must be non-negative")
	case p.FlushStreams < 0:
		return errors.New("core: Params.FlushStreams must be non-negative")
	case p.HedgeDelayFloor < 0:
		return errors.New("core: Params.HedgeDelayFloor must be non-negative")
	case (p.PartnerStore == nil) != (len(p.PartnerPath) == 0):
		return errors.New("core: PartnerStore and PartnerPath must be set together")
	case !p.GPUEvictionPolicy.Known():
		return fmt.Errorf("core: unknown Params.GPUEvictionPolicy %d", int(p.GPUEvictionPolicy))
	}
	return nil
}

// replica is one copy of a checkpoint on one tier, with its own life-cycle
// machine (Fig. 1: "a life cycle for every checkpoint instance on all
// cache tiers").
type replica struct {
	tier Tier
	fsm  *lifecycle.Machine
}

// hasData reports whether the replica currently holds a readable copy.
func (r *replica) hasData() bool {
	switch r.fsm.State() {
	case lifecycle.WriteComplete, lifecycle.Flushed,
		lifecycle.ReadComplete, lifecycle.Consumed:
		return true
	}
	return false
}

// checkpoint is the client-wide record of one version.
type checkpoint struct {
	id       ID
	size     int64
	pay      payload.Payload
	replicas map[Tier]*replica

	consumed    bool // restored at least once
	promoting   bool // a promotion toward the GPU tier is in flight
	stagingHost bool // the host stager is copying SSD → host right now
	stagedHost  bool // counted against the stager's byte budget
	enqueuedD2H,
	enqueuedH2F bool
	writtenAt time.Duration

	// att attributes the version's time-to-durable to critical-path
	// components; nil for checkpoints recovered from a store. Finished
	// exactly once, in accountFate, when the fate is durable.
	att *attrib

	// hostWait: a T_D2H worker owns this version but is parked waiting
	// for pinned host registration to complete. A preemption triage may
	// claim the job out from under the parked worker (drainClaimed) and
	// decide the version itself — the worker checks the flag on wake and
	// walks away. Both guarded by Client.mu.
	hostWait     bool
	drainClaimed bool

	// flushAborted: every durable route failed; the cache replica was
	// released from pinning (fail-open) and the checkpoint may be lost
	// if it is evicted before being restored. Restore then reports
	// ErrLost definitively instead of hanging the cache.
	flushAborted bool
	flushErr     error // the failure that aborted the flush (diagnostics)

	// fateAccounted: the checkpoint's bytes have been credited to exactly
	// one conservation fate (durable, discarded, or lost) in the metrics
	// recorder. Guarded by Client.mu.
	fateAccounted bool
}

// writeInProgress reports whether the writer is still landing the
// initial GPU copy: the replica record exists but holds no data yet —
// Init while blocked on cache admission, WriteInProgress during the D2D
// copy.
func (ck *checkpoint) writeInProgress() bool {
	r := ck.replicas[TierGPU]
	if r == nil {
		return false
	}
	switch r.fsm.State() {
	case lifecycle.Init, lifecycle.WriteInProgress:
		return true
	}
	return false
}

// dataOn reports whether the checkpoint has a readable replica on tier.
func (ck *checkpoint) dataOn(tier Tier) bool {
	r := ck.replicas[tier]
	return r != nil && r.hasData()
}

// durableBelow reports whether a readable copy exists on any tier slower
// than t — the safety condition for evicting the replica on t without
// losing data.
func (ck *checkpoint) durableBelow(t Tier) bool {
	for tier := t + 1; tier <= TierPFS; tier++ {
		if ck.dataOn(tier) {
			return true
		}
	}
	return false
}

// storePayload is a lazily loaded payload backed by the durable stores,
// used for checkpoints recovered after a restart. The load is verified
// (the store's CRC layer) and tier-aware: the local SSD store is
// preferred, and a failed or corrupt read falls back down the ladder —
// partner SSD, then PFS — re-populating the local SSD copy on success.
type storePayload struct {
	ssd     *ckptstore.Store // may be nil
	partner *ckptstore.Store // may be nil (no partner-copy)
	pfs     *ckptstore.Store // may be nil
	rec     *metrics.Recorder
	id      int64
	size    int64

	once sync.Once
	data []byte
	err  error
}

func (p *storePayload) load() {
	p.once.Do(func() {
		// The fallback ladder, fastest first. The first Get error is
		// kept: it names the tier that *should* have served the read.
		missErr := error(ckptstore.ErrNotFound)
		firstErr := false
		for i, st := range []*ckptstore.Store{p.ssd, p.partner, p.pfs} {
			if st == nil || !st.Has(p.id) {
				continue
			}
			data, err := st.Get(p.id)
			if err != nil {
				if !firstErr {
					missErr, firstErr = err, true
				}
				continue
			}
			if i > 0 && p.ssd != nil && p.rec != nil {
				// The faster durable tier failed (or never had the
				// bytes); the read is served from a deeper copy.
				p.rec.FallbackRead()
			}
			p.data = data
			if i > 0 && p.ssd != nil {
				// Repair the faster tier so later reads and future
				// restarts find the checkpoint locally again.
				if rerr := p.ssd.Restage(p.id, data); rerr == nil && p.rec != nil {
					p.rec.Repopulation()
				}
			}
			return
		}
		p.err = missErr
	})
}

// Size implements payload.Payload.
func (p *storePayload) Size() int64 { return p.size }

// Checksum implements payload.Payload.
func (p *storePayload) Checksum() uint64 {
	p.load()
	if p.err != nil {
		return 0
	}
	return payload.NewReal(p.data).Checksum()
}

// Bytes implements payload.Payload; nil if every durable read failed (the
// caller's checksum verification will then fail loudly).
func (p *storePayload) Bytes() []byte {
	p.load()
	if p.err != nil {
		return nil
	}
	return p.data
}

// LoadErr forces the load and returns the durable-read error, if any —
// the definitive signal callers need to distinguish "no bytes" from
// "read failed".
func (p *storePayload) LoadErr() error {
	p.load()
	return p.err
}
