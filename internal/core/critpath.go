package core

import (
	"sync"
	"time"

	"score/internal/metrics"
	"score/internal/trace"
)

// Critical-path attribution (the causal half of the observability
// layer). Each checkpoint's durable chain and each restore is one
// sequential sequence of waits and transfers under the virtual clock:
// code between sleeps takes zero simulated time, so charging the
// interval since the previous mark to a component after every blocking
// step decomposes the end-to-end latency exactly — the components
// telescope to the measured total by construction, and any positive
// residue at finish means an instrumentation gap (surfaced as
// Unattributed, which the metrics invariant requires to be zero).

// attrib accumulates the telescoping decomposition of one interval.
// The durable chain hands it from the application thread to the T_D2H
// and T_H2F workers sequentially; the mutex covers the rare overlap of
// a late best-effort mark with finish.
type attrib struct {
	mu      sync.Mutex
	op      string // metrics.CritDurable or metrics.CritRestore
	version int64
	start   time.Duration
	last    time.Duration // cursor: end of the last attributed segment
	comps   map[string]time.Duration
	done    bool
}

func newAttrib(op string, version int64, start time.Duration) *attrib {
	return &attrib{op: op, version: version, start: start, last: start}
}

// mark charges [a.last, now) to comp and advances the cursor. Nil-safe
// and a no-op after finish, so best-effort legs running past the
// durable point cannot distort the record.
func (a *attrib) mark(now time.Duration, comp string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.done {
		return
	}
	if d := now - a.last; d > 0 {
		if a.comps == nil {
			a.comps = map[string]time.Duration{}
		}
		a.comps[comp] += d
	}
	a.last = now
}

// finish closes the interval at now and returns the attribution record.
// Time between the last mark and now is the unattributed residue — zero
// on a correctly instrumented path.
func (a *attrib) finish(now time.Duration) metrics.CritPathRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.done = true
	comps := make(map[string]time.Duration, len(a.comps))
	for k, v := range a.comps {
		comps[k] = v
	}
	return metrics.CritPathRecord{
		Op:           a.op,
		Version:      a.version,
		Start:        a.start,
		Total:        now - a.start,
		Components:   comps,
		Unattributed: now - a.last,
	}
}

// mark charges the time since att's cursor to comp at the current
// virtual time.
func (c *Client) mark(att *attrib, comp string) {
	att.mark(c.clk.Now(), comp)
}

// flowID derives the deterministic causal-chain ID linking every span
// of one checkpoint version across tracks: a pure function of
// (GPU, version), never a shared counter, so trace exports stay
// byte-reproducible under the virtual clock's real-scheduler
// interleavings.
func (c *Client) flowID(id ID) int64 {
	return (int64(c.p.GPU.ID())+1)<<32 | (int64(id) + 1)
}

// lifecycle appends one entry to the tracer's per-rank flight recorder
// (the checkpoint lifecycle ledger). The GPU ID keys the ring — it is
// the process identity everywhere else in the trace. Nil-safe.
func (c *Client) lifecycle(id ID, kind trace.LifecycleKind, tier, detail string) {
	c.p.Tracer.Lifecycle(c.p.GPU.ID(), int64(id), kind, tier, detail)
}

// hopComp maps a flush destination label to its transfer component.
func hopComp(destLabel string) string {
	if destLabel == "pfs" {
		return metrics.CompXferPFS
	}
	return metrics.CompXferSSD
}
