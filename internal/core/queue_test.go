package core

import (
	"testing"
	"testing/quick"

	"score/internal/cachebuf"
)

func TestQueueFIFOConsumption(t *testing.T) {
	var q restoreQueue
	for i := ID(0); i < 5; i++ {
		q.enqueue(i)
	}
	if q.pending() != 5 {
		t.Fatalf("pending = %d", q.pending())
	}
	head, ok := q.headID()
	if !ok || head != 0 {
		t.Fatalf("head = %d, %v", head, ok)
	}
	if dev := q.consume(0); dev {
		t.Error("in-order consume flagged as deviation")
	}
	if head, _ := q.headID(); head != 1 {
		t.Errorf("head after consume = %d", head)
	}
}

func TestQueueDeviationRemovesMidEntry(t *testing.T) {
	var q restoreQueue
	for i := ID(0); i < 5; i++ {
		q.enqueue(i)
	}
	if dev := q.consume(3); !dev {
		t.Error("out-of-order consume not flagged as deviation")
	}
	// 3 must be gone; 0,1,2,4 remain in order.
	want := []ID{0, 1, 2, 4}
	for _, w := range want {
		if got, ok := q.headID(); !ok || got != w {
			t.Fatalf("head = %d, want %d", got, w)
		}
		q.consume(w)
	}
	if q.pending() != 0 {
		t.Errorf("pending = %d after draining", q.pending())
	}
}

func TestQueueConsumeUnhinted(t *testing.T) {
	var q restoreQueue
	q.enqueue(1)
	if dev := q.consume(99); dev {
		t.Error("consuming an unhinted id should not count as deviation")
	}
	if q.pending() != 1 {
		t.Error("unhinted consume must not change the queue")
	}
}

func TestQueueDistance(t *testing.T) {
	var q restoreQueue
	for i := ID(10); i < 15; i++ {
		q.enqueue(i)
	}
	q.consume(10)
	if d := q.distance(11); d != 0 {
		t.Errorf("distance(head) = %d, want 0", d)
	}
	if d := q.distance(14); d != 3 {
		t.Errorf("distance(14) = %d, want 3", d)
	}
	if d := q.distance(99); d != cachebuf.GapDistance-1 {
		t.Errorf("distance(unhinted) = %d, want GapDistance-1", d)
	}
}

func TestQueuePrefetchCursor(t *testing.T) {
	var q restoreQueue
	for i := ID(0); i < 4; i++ {
		q.enqueue(i)
	}
	id, ok := q.nextPrefetch()
	if !ok || id != 0 {
		t.Fatalf("nextPrefetch = %d, %v", id, ok)
	}
	q.advancePrefetch()
	if id, _ := q.nextPrefetch(); id != 1 {
		t.Errorf("after advance, nextPrefetch = %d", id)
	}
	// Consuming ahead of the cursor keeps it valid.
	q.consume(0)
	q.consume(1) // removes the current prefetch target
	if id, ok := q.nextPrefetch(); !ok || id != 2 {
		t.Errorf("after consuming past cursor, nextPrefetch = %d, %v", id, ok)
	}
	// Deviating consume of a later element adjusts the cursor.
	q.enqueue(9)
	q.consume(9)
	if id, ok := q.nextPrefetch(); !ok || id != 2 {
		t.Errorf("after deviation, nextPrefetch = %d, %v", id, ok)
	}
}

func TestQueueRepeatedHints(t *testing.T) {
	// The same version may be hinted multiple times (revolve schedules
	// re-read stored checkpoints).
	var q restoreQueue
	q.enqueue(7)
	q.enqueue(8)
	q.enqueue(7)
	if dev := q.consume(7); dev {
		t.Error("first 7 is at head")
	}
	if d := q.distance(7); d != 1 {
		t.Errorf("distance(second 7) = %d, want 1", d)
	}
	q.consume(8)
	if got, ok := q.headID(); !ok || got != 7 {
		t.Errorf("head = %d, want second 7", got)
	}
}

func TestQueueAtIndexing(t *testing.T) {
	var q restoreQueue
	for i := ID(0); i < 3; i++ {
		q.enqueue(i)
	}
	q.consume(0)
	if id, ok := q.at(0); !ok || id != 1 {
		t.Errorf("at(0) = %d, %v", id, ok)
	}
	if id, ok := q.at(1); !ok || id != 2 {
		t.Errorf("at(1) = %d, %v", id, ok)
	}
	if _, ok := q.at(2); ok {
		t.Error("at(2) should be out of range")
	}
}

func TestQueueConsumeEverythingProperty(t *testing.T) {
	// Property: consuming all hinted ids in any order drains the queue,
	// and the number of deviations equals the number of out-of-head
	// consumptions.
	f := func(perm []uint8) bool {
		n := len(perm)
		if n == 0 {
			return true
		}
		if n > 32 {
			perm = perm[:32]
			n = 32
		}
		var q restoreQueue
		for i := 0; i < n; i++ {
			q.enqueue(ID(i))
		}
		// Build a consumption order from perm (a permutation-ish
		// shuffle by repeated selection).
		order := make([]ID, 0, n)
		remaining := make([]ID, n)
		for i := range remaining {
			remaining[i] = ID(i)
		}
		for i := 0; i < n; i++ {
			k := int(perm[i%len(perm)]) % len(remaining)
			order = append(order, remaining[k])
			remaining = append(remaining[:k], remaining[k+1:]...)
		}
		for _, id := range order {
			q.consume(id)
		}
		return q.pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
