package core

import (
	"testing"
	"time"

	"score/internal/payload"
	"score/internal/simclock"
)

func TestGPUDirectBypassesHostCache(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, func(p *Params) { p.GPUDirectStorage = true })
		defer r.client.Close()
		const n = 12
		for i := n - 1; i >= 0; i-- {
			r.client.PrefetchEnqueue(ID(i))
		}
		for i := ID(0); i < n; i++ {
			if err := r.client.Checkpoint(i, payload.NewVirtual(1*MB)); err != nil {
				t.Fatal(err)
			}
			r.gpu.Compute(time.Millisecond)
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		// The host cache must be untouched the whole way.
		if _, host := r.client.Resident(); host != 0 {
			t.Errorf("host cache holds %d replicas under GPUDirect", host)
		}
		r.client.mu.Lock()
		for i := ID(0); i < n; i++ {
			ck := r.client.ckpts[i]
			if ck.replicas[TierHost] != nil {
				t.Errorf("checkpoint %d has a host replica under GPUDirect", i)
			}
			if !ck.dataOn(TierSSD) {
				t.Errorf("checkpoint %d not on SSD", i)
			}
		}
		r.client.mu.Unlock()

		r.client.PrefetchStart()
		for i := ID(n - 1); i >= 0; i-- {
			if _, err := r.client.Restore(i); err != nil {
				t.Fatalf("restore %d: %v", i, err)
			}
			r.gpu.Compute(2 * time.Millisecond)
		}
		if _, host := r.client.Resident(); host != 0 {
			t.Errorf("host cache holds %d replicas after GPUDirect restores", host)
		}
		if err := r.client.Err(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestGPUDirectRoundTripRealData(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, func(p *Params) { p.GPUDirectStorage = true })
		defer r.client.Close()
		data := make([]byte, 4096)
		for i := range data {
			data[i] = byte(i)
		}
		in := payload.NewReal(data)
		// Enough checkpoints to force GPU-cache eviction of version 0,
		// so its restore exercises the direct SSD→GPU promotion.
		if err := r.client.Checkpoint(0, in); err != nil {
			t.Fatal(err)
		}
		for i := ID(1); i < 8; i++ {
			if err := r.client.Checkpoint(i, payload.NewVirtual(1*MB)); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		out, err := r.client.Restore(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := payload.Verify(in, out.Bytes()); err != nil {
			t.Error(err)
		}
	})
}
