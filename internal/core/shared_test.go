package core

import (
	"bytes"
	"testing"
	"time"

	"score/internal/device"
	"score/internal/payload"
	"score/internal/simclock"
)

// sharedRig builds two clients on one node sharing a host cache pool.
func sharedRig(t *testing.T, clk *simclock.Virtual, poolSize int64) (*testRig, *Client, *SharedHostCache) {
	t.Helper()
	shared := NewSharedHostCache(clk, "node0-sharedhost", poolSize)
	r := newRig(t, clk, func(p *Params) { p.SharedHost = shared })
	d2d2, pcie2 := r.cluster.Nodes[0].GPULinks(1)
	dev2 := device.NewGPU(clk, 1, 64*MB, d2d2, pcie2, device.AllocCosts{
		DeviceBytesPerSec: 1000 * MB, PinnedHostBytesPerSec: 400 * MB,
	})
	c2, err := New(Params{
		Clock: clk, GPU: dev2, NVMe: r.cluster.Nodes[0].NVMe, PFS: r.cluster.PFS,
		GPUCacheSize: 4 * MB, SharedHost: shared,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, c2, shared
}

func TestSharedHostCacheNamespacesClients(t *testing.T) {
	// Both clients use the SAME version numbers; the shared pool must
	// keep their replicas distinct and restores must return each
	// client's own data.
	run(t, func(clk *simclock.Virtual) {
		r, c2, shared := sharedRig(t, clk, 16*MB)
		defer shared.Close()
		defer c2.Close()
		defer r.client.Close()

		dataA := bytes.Repeat([]byte{0xAA}, 4096)
		dataB := bytes.Repeat([]byte{0xBB}, 4096)
		if err := r.client.Checkpoint(0, payload.NewReal(dataA)); err != nil {
			t.Fatal(err)
		}
		if err := c2.Checkpoint(0, payload.NewReal(dataB)); err != nil {
			t.Fatal(err)
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		if err := c2.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		if shared.Resident() != 2 {
			t.Errorf("shared pool holds %d replicas, want 2 (one per client)", shared.Resident())
		}
		outA, err := r.client.Restore(0)
		if err != nil {
			t.Fatal(err)
		}
		outB, err := c2.Restore(0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(outA.Bytes(), dataA) || !bytes.Equal(outB.Bytes(), dataB) {
			t.Error("shared-cache namespacing mixed up the clients' data")
		}
	})
}

func TestSharedHostCacheLoadBalancesVariableSizes(t *testing.T) {
	// The future-work motivation: a 16MB pool serves a client writing
	// 12MB of large checkpoints next to one writing 2MB of small ones.
	// With private 8MB halves the big client would thrash; shared, both
	// histories stay host-resident simultaneously.
	run(t, func(clk *simclock.Virtual) {
		r, c2, shared := sharedRig(t, clk, 16*MB)
		defer shared.Close()
		defer c2.Close()
		defer r.client.Close()

		for i := ID(0); i < 4; i++ { // 12MB of 3MB checkpoints
			if err := r.client.Checkpoint(i, payload.NewVirtual(3*MB)); err != nil {
				t.Fatal(err)
			}
		}
		for i := ID(0); i < 4; i++ { // 2MB of 512KB checkpoints
			if err := c2.Checkpoint(i, payload.NewVirtual(512<<10)); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		if err := c2.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		// 12 + 2 = 14MB <= 16MB: everything can be host-resident at
		// once, which private 8MB halves could not hold for client A.
		if got := shared.Resident(); got != 8 {
			t.Errorf("shared pool holds %d replicas, want all 8", got)
		}
		for i := ID(3); i >= 0; i-- {
			if _, err := r.client.Restore(i); err != nil {
				t.Fatal(err)
			}
			if _, err := c2.Restore(i); err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestSharedHostCacheEvictionCrossesClients(t *testing.T) {
	// Overcommit the pool: client A's flushed history must be evictable
	// to make room for client B's flushes (cross-namespace eviction).
	run(t, func(clk *simclock.Virtual) {
		r, c2, shared := sharedRig(t, clk, 8*MB)
		defer shared.Close()
		defer c2.Close()
		defer r.client.Close()

		for i := ID(0); i < 8; i++ {
			if err := r.client.Checkpoint(i, payload.NewVirtual(1*MB)); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		for i := ID(0); i < 8; i++ {
			if err := c2.Checkpoint(i, payload.NewVirtual(1*MB)); err != nil {
				t.Fatal(err)
			}
			clk.Sleep(time.Millisecond)
		}
		if err := c2.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		// Every checkpoint of both clients must still be restorable
		// (from SSD where evicted).
		for i := ID(7); i >= 0; i-- {
			if _, err := r.client.Restore(i); err != nil {
				t.Fatalf("client A restore %d: %v", i, err)
			}
			if _, err := c2.Restore(i); err != nil {
				t.Fatalf("client B restore %d: %v", i, err)
			}
		}
		if err := r.client.Err(); err != nil {
			t.Fatal(err)
		}
		if err := c2.Err(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSharedHostCacheCloseOrder(t *testing.T) {
	// Closing one client must not break the other's use of the pool.
	run(t, func(clk *simclock.Virtual) {
		r, c2, shared := sharedRig(t, clk, 16*MB)
		defer shared.Close()
		if err := c2.Checkpoint(0, payload.NewVirtual(1*MB)); err != nil {
			t.Fatal(err)
		}
		if err := c2.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		c2.Close() // first client leaves

		if err := r.client.Checkpoint(0, payload.NewVirtual(1*MB)); err != nil {
			t.Fatal(err)
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.client.Restore(0); err != nil {
			t.Fatal(err)
		}
		r.client.Close()
	})
}
