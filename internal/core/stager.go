package core

import (
	"errors"
	"fmt"

	"score/internal/cachebuf"
	"score/internal/lifecycle"
	"score/internal/trace"
)

// hostStager is the SSD→host half of T_PF. The paper's prefetcher works
// on all tiers concurrently (§4.3.1: "prefetches on all tiers: T_PF");
// running the slow NVMe staging ahead of (and overlapped with) the
// host→GPU promotions keeps the SSD link busy during the compute windows
// instead of serializing both hops inside each promotion.
//
// The stager walks the restore-order queue with its own cursor, staging
// hinted checkpoints whose data is only on the SSD/PFS into the host
// cache. A byte budget of half the host cache bounds how far ahead it
// runs, so it cannot evict the near-future host-resident checkpoints the
// backward pass is about to read.
func (c *Client) hostStager() {
	if c.p.NoHostStager || c.p.GPUDirectStorage {
		return
	}
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return
		}
		if !c.started {
			c.cond.Wait()
			continue
		}
		// Free-space lookup must happen outside c.mu (buffer lock
		// precedes client lock); the value is advisory only.
		c.mu.Unlock()
		free := c.hstC.FreeBytes()
		c.mu.Lock()
		ck := c.nextStageTargetLocked(free)
		if ck == nil {
			c.cond.Wait()
			continue
		}
		ck.stagingHost = true
		seen := c.events
		c.mu.Unlock()

		staged, err := c.stageToHost(ck)

		c.mu.Lock()
		ck.stagingHost = false
		if staged {
			ck.stagedHost = true
			c.stagedBytes += ck.size
			c.bumpLocked()
		} else {
			c.cond.Broadcast() // wake flag-waiters only
		}
		if err != nil && !errors.Is(err, ErrTierIO) && !errors.Is(err, ErrLost) {
			c.mu.Unlock()
			c.fail(err)
			c.mu.Lock()
			continue
		}
		if !staged {
			// Host cache saturated (or a racing flush materialized the
			// data): wait for real progress before retrying.
			for c.events == seen && !c.closed {
				c.cond.Wait()
			}
		}
	}
}

// nextStageTargetLocked scans the pending hints (within the byte budget)
// for the first checkpoint whose only data is below the host tier AND
// whose staging would improve the host cache: either free space exists,
// or some host-resident checkpoint is needed strictly later than the
// candidate (so the eviction the staging forces trades a farther
// checkpoint for a nearer one). Without the second condition, staging in
// reverse-order shots would evict near-future host residents to make room
// for the always-farther SSD tail — a strict loss.
func (c *Client) nextStageTargetLocked(freeHostBytes int64) *checkpoint {
	budget := c.p.HostCacheSize / 2
	if c.stagedBytes >= budget {
		return nil
	}
	maxResidentDist := c.maxHostResidentDistanceLocked()
	var scanned int64
	for i := 0; ; i++ {
		id, ok := c.q.at(i)
		if !ok {
			return nil
		}
		ck := c.ckpts[id]
		if ck == nil {
			return nil // not written yet; later hints cannot help
		}
		scanned += ck.size
		if scanned > budget {
			return nil // deep enough; stay near the queue head
		}
		if ck.consumed || ck.stagingHost || ck.promoting {
			continue
		}
		if ck.dataOn(TierGPU) || ck.dataOn(TierHost) {
			continue
		}
		if rep := ck.replicas[TierHost]; rep != nil {
			continue // a flush or another promotion is materializing it
		}
		if !ck.dataOn(TierSSD) && !ck.dataOn(TierPartner) && !ck.dataOn(TierPFS) {
			continue // still being flushed down; the flusher will land it
		}
		if freeHostBytes < ck.size && i >= maxResidentDist {
			// No free room and every host resident is needed sooner
			// than this candidate: staging would only hurt.
			return nil
		}
		return ck
	}
}

// maxHostResidentDistanceLocked returns the largest prefetch distance of
// any unpinned host-resident checkpoint (consumed checkpoints and
// checkpoints without hints count as farthest).
func (c *Client) maxHostResidentDistanceLocked() int {
	max := -1
	for id, ck := range c.ckpts {
		rep := ck.replicas[TierHost]
		if rep == nil {
			continue
		}
		st := rep.fsm.State()
		switch st {
		case lifecycle.WriteComplete, lifecycle.Flushed, lifecycle.Consumed:
		default:
			continue // no data, or pinned by a read: not a victim
		}
		if ck.consumed {
			// Consumed residents are free wins for staging.
			return cachebuf.GapDistance - 1
		}
		if d := c.q.distance(id); d > max {
			max = d
			if max >= cachebuf.GapDistance-1 {
				return max
			}
		}
	}
	return max
}

// stageToHost copies ck from the SSD into the host cache (non-blocking
// reservation). staged=false means no immediately evictable host window.
func (c *Client) stageToHost(ck *checkpoint) (staged bool, err error) {
	if tr := c.p.Tracer; tr != nil {
		defer tr.SpanFlow(c.p.GPU.ID(), trace.TrackStage, "prefetch",
			fmt.Sprintf("stage %d ssd→host", ck.id), c.flowID(ck.id))()
	}
	c.waitHostReady()
	c.mu.Lock()
	if ck.dataOn(TierHost) || ck.replicas[TierHost] != nil {
		c.mu.Unlock()
		return false, nil
	}
	hostRep := &replica{tier: TierHost, fsm: lifecycle.NewMachine(c.clk)}
	ck.replicas[TierHost] = hostRep
	c.mu.Unlock()

	if _, err := c.hstC.TryReserve(c.hostKey(ck.id), ck.size); err != nil {
		c.mu.Lock()
		if ck.replicas[TierHost] == hostRep {
			delete(ck.replicas, TierHost)
		}
		c.mu.Unlock()
		switch err {
		case cachebuf.ErrWouldBlock, cachebuf.ErrTooLarge, cachebuf.ErrDuplicate:
			return false, nil
		case cachebuf.ErrClosed:
			return false, nil
		default:
			return false, err
		}
	}
	hostRep.fsm.MustTo(lifecycle.ReadInProgress)
	// Background staging is hidden from the application — no attribution.
	if err := c.readDeep(ck, nil); err != nil {
		// Tier I/O trouble: undo the reservation; the on-demand path
		// (with its own fallback) owns this checkpoint from here.
		c.mu.Lock()
		if ck.replicas[TierHost] == hostRep {
			delete(ck.replicas, TierHost)
		}
		c.mu.Unlock()
		c.hstC.Release(c.hostKey(ck.id))
		c.hstC.Notify()
		return false, err
	}
	hostRep.fsm.MustTo(lifecycle.ReadComplete)
	c.hstC.Notify()
	c.lifecycle(ck.id, trace.LStaged, "host", "ssd→host")
	return true, nil
}
