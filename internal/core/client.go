package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"score/internal/cachebuf"
	"score/internal/lifecycle"
	"score/internal/metrics"
	"score/internal/payload"
	"score/internal/simclock"
	"score/internal/trace"
)

// Client is the Score runtime instance for one process (one GPU). It
// exposes the VELOC-style API the paper extends: Checkpoint (blocking only
// for the copy into the GPU cache), Restore, PrefetchEnqueue and
// PrefetchStart (the new primitives of §4.3), plus WaitFlush to drain the
// asynchronous flush chain.
//
// Lock ordering: cachebuf.Buffer's internal lock may be taken before
// Client.mu (the eviction oracle runs under it); therefore no Client
// method may call into a Buffer while holding Client.mu.
type Client struct {
	p    Params
	clk  simclock.Clock
	rec  *metrics.Recorder
	gpuC *cachebuf.Buffer // device cache (write side when SplitCache)
	gpuP *cachebuf.Buffer // prefetch-side device cache (SplitCache only)
	hstC *cachebuf.Buffer // pinned host cache

	mu   sync.Mutex
	cond simclock.Cond

	ckpts   map[ID]*checkpoint
	q       restoreQueue
	started bool // prefetcher activated
	closed  bool
	killed  bool  // the rank died (fault injection); implies closed soon
	err     error // first asynchronous failure

	d2hQ, h2fQ idFIFO      // flush queues
	d2hBusy    int         // D2H workers with a job in flight
	h2fBusy    int         // H2F workers with a job in flight
	inFlight   map[ID]bool // versions currently owned by a flush worker

	writersBusy int  // Checkpoint calls past the admission gate
	draining    bool // a preemption drain began; no new checkpoints (sticky)
	drainActive bool // the drain triage is still running (WaitFlush waits)
	drainFrozen bool // flush workers pop no new jobs (sticky once draining)

	flushStreams int // workers per flusher stage pool

	hostReadyAt time.Duration // pinned host cache registration completes
	hostNS      int64         // namespace in a shared host cache; -1 = private
	restoreIter int
	stagedBytes int64  // host-stager budget accounting
	events      uint64 // progress generation: bumped on real state changes

	degraded   [TierPFS + 1]bool          // tiers marked persistently failed
	degradedAt [TierPFS + 1]time.Duration // when each mark was (last) set

	rndMu sync.Mutex
	rnd   *rand.Rand // retry jitter; seeded for deterministic replays

	daemons *simclock.WaitGroup
	// hedgeWG tracks the gray-failure background legs (hedge reads still
	// in flight after their race was decided, stalled SSD writers that
	// were re-routed around); Close joins it so no leg outlives the
	// client.
	hedgeWG *simclock.WaitGroup
	// health estimates per-link-class latency quantiles and EWMA
	// slowdown scores, driving adaptive hedge/stall deadlines and
	// quarantine-on-breach.
	health *tierHealth
}

// New creates and starts a Client. The caller must Close it to stop the
// background flusher and prefetcher tasks.
func New(p Params) (*Client, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	c := &Client{
		p:        p,
		clk:      p.Clock,
		rec:      metrics.NewRecorder(),
		ckpts:    make(map[ID]*checkpoint),
		inFlight: make(map[ID]bool),
	}
	c.cond = c.clk.NewCond(&c.mu)
	c.daemons = simclock.NewWaitGroup(c.clk)
	c.hedgeWG = simclock.NewWaitGroup(c.clk)
	c.health = newTierHealth()
	c.rnd = rand.New(rand.NewSource(p.FaultSeed*0x9E3779B9 + int64(p.GPU.ID()) + 1))

	// Pre-allocate the contiguous device cache (§4.1.4). The HBM
	// allocation itself is fast (~1 TB/s).
	if err := p.GPU.AllocDevice(p.GPUCacheSize); err != nil {
		return nil, fmt.Errorf("core: allocating GPU cache: %w", err)
	}
	gpuOracle := &tierOracle{c: c, tier: TierGPU}
	if p.SplitCache {
		// Ablation of §4.1.2: separate half-size regions for flushing
		// and prefetching instead of one shared cache.
		half := p.GPUCacheSize / 2
		c.gpuC = cachebuf.New(c.clk, fmt.Sprintf("gpu%d-writecache", p.GPU.ID()), half, gpuOracle)
		c.gpuP = cachebuf.New(c.clk, fmt.Sprintf("gpu%d-readcache", p.GPU.ID()), half, gpuOracle)
	} else {
		c.gpuC = cachebuf.New(c.clk, fmt.Sprintf("gpu%d-cache", p.GPU.ID()),
			p.GPUCacheSize, gpuOracle)
	}
	// validate() already rejected unknown policies, so these cannot fail;
	// checked anyway so a registry regression surfaces at construction.
	if err := c.gpuC.SetPolicy(p.GPUEvictionPolicy); err != nil {
		return nil, err
	}
	if c.gpuP != nil {
		if err := c.gpuP.SetPolicy(p.GPUEvictionPolicy); err != nil {
			return nil, err
		}
	}
	// Per-stall eviction-wait observations feed the latency histogram.
	// Only buffers owned by this client get an observer: a shared host
	// pool serves several clients and cannot attribute its stalls.
	c.gpuC.SetWaitObserver(c.rec.EvictionWait)
	if c.gpuP != nil {
		c.gpuP.SetWaitObserver(c.rec.EvictionWait)
	}
	c.hostNS = -1
	if p.SharedHost != nil {
		c.hstC = p.SharedHost.buf
		c.hostNS = p.SharedHost.register(c)
		p.HostCacheSize = p.SharedHost.Capacity()
		c.p.HostCacheSize = p.HostCacheSize
	} else {
		c.hstC = cachebuf.New(c.clk, fmt.Sprintf("gpu%d-hostcache", p.GPU.ID()),
			p.HostCacheSize, &tierOracle{c: c, tier: TierHost})
		c.hstC.SetWaitObserver(c.rec.EvictionWait)
	}

	// Pinned host cache registration is slow (~4 GB/s, §4.1.4): either
	// pay it upfront, overlap it with the run (the paper observes the
	// latter limits early checkpoint throughput, §5.4.2), or — in the
	// on-demand ablation — skip it and pay per flush instead. A shared
	// pool carries its own (once-only) registration schedule.
	switch {
	case p.SharedHost != nil:
		// Each participating process pins one chunk of the pool in
		// parallel at its own registration rate.
		c.hostReadyAt = p.SharedHost.createdAt +
			pinnedAllocDuration(p.SharedHost.pinChunk, p.GPU.Costs().PinnedHostBytesPerSec)
	case p.OnDemandAlloc:
		c.hostReadyAt = c.clk.Now()
	case p.AsyncHostInit:
		c.hostReadyAt = c.clk.Now() + pinnedAllocDuration(p.HostCacheSize, p.GPU.Costs().PinnedHostBytesPerSec)
	default:
		p.GPU.AllocPinnedHost(p.HostCacheSize)
		c.hostReadyAt = c.clk.Now()
	}

	if p.Store != nil || p.PFSStore != nil || p.PartnerStore != nil {
		c.recoverFromStore()
	}

	c.started = p.AutoStartPrefetch

	// Flusher stage pools (T_D2H and T_H2F). The default is the seed's
	// single worker per stage; with chunked streaming enabled the pools
	// grow to the copy-engine count so concurrent streams actually have
	// engines to run on.
	c.flushStreams = p.FlushStreams
	if c.flushStreams == 0 {
		if p.ChunkSize > 0 {
			c.flushStreams = p.GPU.CopyEngines()
		} else {
			c.flushStreams = 1
		}
	}
	c.daemons.Add(2*c.flushStreams + 2)
	for i := 0; i < c.flushStreams; i++ {
		c.clk.Go(func() { defer c.daemons.Done(); c.flusherD2H() })
		c.clk.Go(func() { defer c.daemons.Done(); c.flusherH2F() })
	}
	c.clk.Go(func() { defer c.daemons.Done(); c.prefetcher() })
	c.clk.Go(func() { defer c.daemons.Done(); c.hostStager() })
	return c, nil
}

// recoverFromStore rebuilds the checkpoint table from the durable
// stores: every valid stored checkpoint reappears as a FLUSHED replica
// on the tier(s) whose store holds it (SSD, partner SSD, PFS, or any
// combination), restorable through the normal promotion path with tier
// fallback.
func (c *Client) recoverFromStore() {
	type durable struct {
		size                    int64
		onSSD, onPartner, onPFS bool
	}
	found := map[int64]*durable{}
	if c.p.Store != nil {
		for _, id := range c.p.Store.IDs() {
			if size, err := c.p.Store.Size(id); err == nil {
				found[id] = &durable{size: size, onSSD: true}
			}
		}
	}
	if c.p.PartnerStore != nil {
		for _, id := range c.p.PartnerStore.IDs() {
			size, err := c.p.PartnerStore.Size(id)
			if err != nil {
				continue
			}
			if d := found[id]; d != nil {
				d.onPartner = true
			} else {
				found[id] = &durable{size: size, onPartner: true}
			}
		}
	}
	if c.p.PFSStore != nil {
		for _, id := range c.p.PFSStore.IDs() {
			size, err := c.p.PFSStore.Size(id)
			if err != nil {
				continue
			}
			if d := found[id]; d != nil {
				d.onPFS = true
			} else {
				found[id] = &durable{size: size, onPFS: true}
			}
		}
	}
	flushed := func() *lifecycle.Machine {
		fsm := lifecycle.NewMachine(c.clk)
		fsm.MustTo(lifecycle.WriteInProgress)
		fsm.MustTo(lifecycle.WriteComplete)
		fsm.MustTo(lifecycle.Flushed)
		return fsm
	}
	for id, d := range found {
		replicas := map[Tier]*replica{}
		if d.onSSD {
			replicas[TierSSD] = &replica{tier: TierSSD, fsm: flushed()}
		}
		if d.onPartner {
			replicas[TierPartner] = &replica{tier: TierPartner, fsm: flushed()}
		}
		if d.onPFS {
			replicas[TierPFS] = &replica{tier: TierPFS, fsm: flushed()}
		}
		ck := &checkpoint{
			id:   ID(id),
			size: d.size,
			pay: &storePayload{
				ssd: c.p.Store, partner: c.p.PartnerStore, pfs: c.p.PFSStore,
				rec: c.rec, id: id, size: d.size,
			},
			replicas: replicas,
		}
		c.ckpts[ck.id] = ck
	}
}

// Recovered returns the versions restored from the durable store at
// construction, in ascending order.
func (c *Client) Recovered() []ID {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []ID
	for id, ck := range c.ckpts {
		if _, ok := ck.pay.(*storePayload); ok {
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// bumpLocked records real progress (a flush completed, a checkpoint was
// consumed, a hint arrived, a promotion landed) and wakes every parked
// task. Retry loops key off the generation counter, so spurious wakeups
// (e.g. a peer clearing its in-flight flag after a failed attempt) do not
// trigger fruitless re-attempts — the discipline that prevents broadcast
// ping-pong livelock under the virtual clock. Caller holds c.mu.
func (c *Client) bumpLocked() {
	c.events++
	c.cond.Broadcast()
}

// releaseStagedLocked returns ck's bytes to the stager budget once its
// staged host copy has served its purpose. Caller holds c.mu.
func (c *Client) releaseStagedLocked(ck *checkpoint) {
	if ck.stagedHost {
		ck.stagedHost = false
		c.stagedBytes -= ck.size
	}
}

func pinnedAllocDuration(size int64, rate float64) time.Duration {
	return time.Duration(float64(size) / rate * 1e9)
}

// waitHostReady blocks until the pinned host cache is registered.
func (c *Client) waitHostReady() {
	if d := c.hostReadyAt - c.clk.Now(); d > 0 {
		c.clk.Sleep(d)
	}
}

// Close stops the background tasks and unblocks all waiters. It is safe
// to call once all application requests have returned.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.gpuC.Close()
	if c.gpuP != nil {
		c.gpuP.Close()
	}
	if c.hostNS < 0 {
		c.hstC.Close()
	} else {
		// Shared pool: stay open for the other clients, but wake this
		// client's parked daemons so they can observe closed.
		c.hstC.Notify()
	}
	c.daemons.Wait()
	// Gray-failure background legs (hedge losers, re-routed stalled
	// writers) finish on their own in bounded virtual time; join them so
	// nothing references the client after Close returns.
	c.hedgeWG.Wait()
}

// notifyGPU wakes reservations on every GPU-side buffer.
func (c *Client) notifyGPU() {
	c.gpuC.Notify()
	if c.gpuP != nil {
		c.gpuP.Notify()
	}
}

// prefetchBuf returns the buffer promotions land in.
func (c *Client) prefetchBuf() *cachebuf.Buffer {
	if c.gpuP != nil {
		return c.gpuP
	}
	return c.gpuC
}

// Err returns the first asynchronous flusher/prefetcher failure, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Metrics returns the recorder collecting this client's measurements.
func (c *Client) Metrics() *metrics.Recorder { return c.rec }

// CacheStats returns eviction statistics for the GPU and host cache tiers.
func (c *Client) CacheStats() (gpu, host cachebuf.Stats) {
	return c.gpuC.Snapshot(), c.hstC.Snapshot()
}

// Checkpoint writes version id with the given payload. Per §2 condition 1
// it blocks until the data is copied into the GPU cache (evicting earlier
// checkpoints if needed under the score-based policy), then returns while
// the flush chain drains asynchronously.
func (c *Client) Checkpoint(id ID, pay payload.Payload) error {
	if id < 0 {
		return fmt.Errorf("core: invalid checkpoint id %d", id)
	}
	start := c.clk.Now()

	c.mu.Lock()
	if c.killed {
		c.mu.Unlock()
		return ErrKilled
	}
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.draining {
		// A preemption drain began: the rank is being reclaimed and
		// accepts no new state (the notice is never revoked).
		c.mu.Unlock()
		return ErrDraining
	}
	if _, dup := c.ckpts[id]; dup {
		c.mu.Unlock()
		return ErrDuplicateCheckpoint
	}
	c.writersBusy++
	defer func() {
		c.mu.Lock()
		c.writersBusy--
		c.bumpLocked()
		c.mu.Unlock()
	}()
	ck := &checkpoint{
		id:        id,
		size:      pay.Size(),
		pay:       pay,
		replicas:  map[Tier]*replica{},
		writtenAt: start,
		att:       newAttrib(metrics.CritDurable, int64(id), start),
	}
	rep := &replica{tier: TierGPU, fsm: lifecycle.NewMachine(c.clk)}
	ck.replicas[TierGPU] = rep
	c.ckpts[id] = ck
	c.mu.Unlock()
	c.rec.CheckpointAccepted(ck.size)
	c.lifecycle(id, trace.LCreated, "", "")

	if tr := c.p.Tracer; tr != nil {
		defer tr.SpanFlow(c.p.GPU.ID(), trace.TrackApp, "checkpoint",
			fmt.Sprintf("checkpoint %d", id), c.flowID(id))()
	}

	// Reserve GPU cache space; Algorithm 1 picks and evicts the best
	// window, blocking until it is evictable ("any delays due to
	// evictions" count toward application-observed blocking, §5.4.1).
	if _, err := c.gpuC.Reserve(cachebuf.ID(id), ck.size); err != nil {
		if err == cachebuf.ErrTooLarge {
			// §2 condition 4: the checkpoint cannot use the GPU cache —
			// fall back to a synchronous flush down the tier chain.
			return c.syncFlush(ck, start)
		}
		c.mu.Lock()
		delete(c.ckpts, id)
		c.mu.Unlock()
		c.rec.CheckpointRejected(ck.size)
		if err == cachebuf.ErrClosed {
			return ErrClosed
		}
		return fmt.Errorf("core: checkpoint %d: GPU cache reservation: %w", id, err)
	}
	c.mark(ck.att, metrics.CompGPUAdmit)

	rep.fsm.MustTo(lifecycle.WriteInProgress)
	if c.p.OnDemandAlloc {
		// §4.1.4 ablation: a fresh device region is allocated for each
		// checkpoint instead of reusing the pre-allocated buffer.
		c.p.GPU.ChargeDeviceAlloc(ck.size)
		c.mark(ck.att, metrics.CompAlloc)
	}
	c.p.GPU.CopyD2D(ck.size) // application buffer → GPU cache
	c.mark(ck.att, metrics.CompCopyD2D)
	rep.fsm.MustTo(lifecycle.WriteComplete)
	c.lifecycle(id, trace.LCached, "gpu", "")

	// Hand off to T_D2H and return control to the application.
	c.mu.Lock()
	ck.enqueuedD2H = true
	c.d2hQ.push(id)
	c.bumpLocked()
	c.mu.Unlock()
	c.notifyGPU()
	c.lifecycle(id, trace.LFlushEnqueued, "", "d2h")

	c.rec.Checkpoint(ck.size, c.clk.Now()-start)
	return nil
}

// syncFlush is the §2 condition-4 fallback taken when a checkpoint
// cannot land in the GPU cache: the write blocks while the data streams
// straight down the tier chain. It prefers the host cache (so the
// normal async H2F chain finishes the job) and otherwise flushes
// GPU→SSD (or GPU→PFS under SSD degradation) synchronously.
func (c *Client) syncFlush(ck *checkpoint, start time.Duration) error {
	c.rec.SyncFlush()
	// The failed GPU reservation above may have blocked on evictions
	// before reporting too-large; absorb that into the admit component.
	c.mark(ck.att, metrics.CompGPUAdmit)
	c.mu.Lock()
	delete(ck.replicas, TierGPU)
	c.mu.Unlock()

	if !c.p.GPUDirectStorage && !c.tierDegraded(TierHost) && ck.size <= c.p.HostCacheSize {
		c.waitHostReady()
		c.mark(ck.att, metrics.CompHostReady)
		hostRep := &replica{tier: TierHost, fsm: lifecycle.NewMachine(c.clk)}
		c.mu.Lock()
		ck.replicas[TierHost] = hostRep
		c.mu.Unlock()
		_, err := c.hstC.Reserve(c.hostKey(ck.id), ck.size)
		switch err {
		case nil:
			c.mark(ck.att, metrics.CompHostAdmit)
			hostRep.fsm.MustTo(lifecycle.WriteInProgress)
			if c.p.OnDemandAlloc {
				c.p.GPU.AllocPinnedHost(ck.size)
				c.mark(ck.att, metrics.CompAlloc)
			}
			cpErr := c.copyD2HHost(ck, ck.att)
			if cpErr == nil {
				c.healTier(TierHost)
				hostRep.fsm.MustTo(lifecycle.WriteComplete)
				c.hstC.Notify()
				c.enqueueH2F(ck)
				c.rec.Checkpoint(ck.size, c.clk.Now()-start)
				return nil
			}
			// PCIe toward the host is dead: release the reservation and
			// try the deeper route (which will fail too if PCIe itself is
			// the problem — surfaced below). A dying client skips the
			// degradation — that is a shutdown, not a tier fault.
			c.dropReplica(ck, TierHost)
			if !isShutdownErr(cpErr) {
				c.degradeTier(TierHost)
			}
		case cachebuf.ErrClosed:
			c.mu.Lock()
			delete(ck.replicas, TierHost)
			delete(c.ckpts, ck.id)
			c.mu.Unlock()
			c.rec.CheckpointRejected(ck.size)
			return ErrClosed
		default:
			// Too large for the host cache too: go deeper.
			c.mu.Lock()
			if ck.replicas[TierHost] == hostRep {
				delete(ck.replicas, TierHost)
			}
			c.mu.Unlock()
		}
	}

	if err := c.directToSSD(ck, true, ck.att); err != nil {
		c.mu.Lock()
		delete(c.ckpts, ck.id)
		c.bumpLocked()
		c.mu.Unlock()
		c.rec.CheckpointRejected(ck.size)
		return fmt.Errorf("core: checkpoint %d: synchronous flush: %w", ck.id, err)
	}
	c.rec.Checkpoint(ck.size, c.clk.Now()-start)
	return nil
}

// RestoreSize returns the size of a previously written checkpoint
// (VELOC_Recover_size).
func (c *Client) RestoreSize(id ID) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ck, ok := c.ckpts[id]
	if !ok {
		return 0, ErrUnknownCheckpoint
	}
	return ck.size, nil
}

// PrefetchEnqueue appends a hint about the next checkpoint the process
// intends to restore (§4.1.1). Hints may be enqueued at any time,
// interleaved with checkpoints and restores, and cannot be revoked.
func (c *Client) PrefetchEnqueue(id ID) {
	c.mu.Lock()
	c.q.enqueue(id)
	c.bumpLocked()
	c.mu.Unlock()
}

// PrefetchStart activates the prefetcher; useful to avoid interference
// with the flushes of a forward pass (Listing 1).
func (c *Client) PrefetchStart() {
	c.mu.Lock()
	c.started = true
	c.bumpLocked()
	c.mu.Unlock()
}

// Hinted returns the number of pending (unconsumed) hints.
func (c *Client) Hinted() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.q.pending()
}

// Restore reads back checkpoint id into the application's device buffer,
// blocking until the data is available on the GPU. The returned payload
// is the one passed to Checkpoint.
func (c *Client) Restore(id ID) (payload.Payload, error) {
	start := c.clk.Now()

	c.mu.Lock()
	if c.killed {
		c.mu.Unlock()
		return nil, ErrKilled
	}
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	ck, ok := c.ckpts[id]
	if !ok {
		c.mu.Unlock()
		return nil, ErrUnknownCheckpoint
	}
	iter := c.restoreIter
	c.restoreIter++
	pfDist := c.prefetchDistanceLocked(id)
	c.mu.Unlock()

	att := newAttrib(metrics.CritRestore, int64(id), start)
	if tr := c.p.Tracer; tr != nil {
		defer tr.SpanFlow(c.p.GPU.ID(), trace.TrackApp, "restore",
			fmt.Sprintf("restore %d", id), c.flowID(id))()
	}

	for {
		served, err := c.tryServeFromGPU(ck, att)
		if err != nil {
			return nil, err
		}
		if served {
			break
		}
		// Not on the GPU: promote (or bypass the caches if they are
		// saturated with pinned prefetches — deviating reads must not
		// deadlock, they just pay a penalty, §4.1.1).
		done, err := c.promoteOrBypass(ck, att)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}

	// Consumption: pop the hint, record deviation, mark consumed.
	c.mu.Lock()
	deviated := c.q.consume(id)
	ck.consumed = true
	c.releaseStagedLocked(ck)
	c.bumpLocked()
	c.mu.Unlock()
	if deviated {
		c.rec.Deviation()
	}
	// Consumed replicas become evictable; wake blocked reservations.
	c.notifyGPU()
	c.hstC.Notify()

	// Restore then CritPath: the record count must never lead the op
	// count, so the running invariant holds at every instant.
	end := c.clk.Now()
	c.rec.Restore(iter, ck.size, end-start, pfDist)
	crit := att.finish(end)
	c.rec.CritPath(crit)
	if c.p.SLO != nil {
		c.p.SLO.ObserveCritPath(crit)
	}
	c.lifecycle(id, trace.LRestored, "", "")
	return ck.pay, nil
}

// tryServeFromGPU claims the GPU replica (pinning it READ_COMPLETE under
// the buffer lock so eviction cannot race), copies it to the application
// buffer, and marks it CONSUMED. Returns served=false if the checkpoint
// has no readable GPU replica.
func (c *Client) tryServeFromGPU(ck *checkpoint, att *attrib) (served bool, err error) {
	c.mu.Lock()
	rep := ck.replicas[TierGPU]
	c.mu.Unlock()
	if rep == nil {
		return false, nil
	}

	switch rep.fsm.State() {
	case lifecycle.Init, lifecycle.WriteInProgress:
		// Another thread's write is landing; wait for it.
		rep.fsm.WaitFor(lifecycle.WriteComplete, lifecycle.Flushed,
			lifecycle.ReadComplete, lifecycle.Consumed)
	case lifecycle.ReadInProgress:
		// A promotion is in flight; wait for the data.
		rep.fsm.WaitFor(lifecycle.ReadComplete, lifecycle.Consumed)
	}
	c.mark(att, metrics.CompGPUWait)

	claim := func() {
		// WRITE_COMPLETE/FLUSHED/CONSUMED → READ_COMPLETE pins the
		// replica for the duration of the copy-out (Fig. 1).
		if rep.fsm.State() != lifecycle.ReadComplete {
			rep.fsm.MustTo(lifecycle.ReadComplete)
		}
	}
	claimed := c.gpuC.IfResident(cachebuf.ID(ck.id), claim)
	if !claimed && c.gpuP != nil {
		claimed = c.gpuP.IfResident(cachebuf.ID(ck.id), claim)
	}
	if claimed {
		c.gpuC.Touch(cachebuf.ID(ck.id)) // recency signal for LRU ablation
	}
	if !claimed {
		return false, nil // evicted underneath us; promote instead
	}
	c.p.GPU.CopyD2D(ck.size) // GPU cache → application buffer
	c.mark(att, metrics.CompCopyD2D)
	rep.fsm.MustTo(lifecycle.Consumed)
	return true, nil
}

// prefetchDistanceLocked implements the §5.4.4 metric: the number of
// successor checkpoints (per the hint queue, beyond the one being
// restored) already readable on the GPU cache at the moment of a read.
func (c *Client) prefetchDistanceLocked(current ID) int {
	dist := 0
	for i := 0; ; i++ {
		id, ok := c.q.at(i)
		if !ok {
			break
		}
		if id == current {
			continue
		}
		ck := c.ckpts[id]
		if ck == nil || !ck.dataOn(TierGPU) {
			break
		}
		dist++
	}
	return dist
}

// WaitFlush blocks until the asynchronous flush chain has fully drained —
// the "restore phase waits for checkpoint phase" scenario of §5.4.2.
func (c *Client) WaitFlush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.d2hQ.len() > 0 || c.h2fQ.len() > 0 || c.d2hBusy > 0 || c.h2fBusy > 0 || c.drainActive {
		if c.killed {
			return ErrKilled
		}
		if c.closed {
			return ErrClosed
		}
		if c.err != nil {
			return c.err
		}
		c.cond.Wait()
	}
	return c.err
}

// Resident reports how many checkpoints are currently cached on each tier
// (diagnostics).
func (c *Client) Resident() (gpu, host int) {
	gpu = c.gpuC.Resident()
	if c.gpuP != nil {
		gpu += c.gpuP.Resident()
	}
	return gpu, c.hstC.Resident()
}
