package core

import "score/internal/trace"

// Rank-kill support: the fault-injection model for a process (or node)
// dying abruptly at a virtual time. A kill differs from Close in three
// ways: it can fire mid-flush (in-flight chains resolve as lost instead
// of completing), it sweeps every undecided checkpoint to the lost fate
// (the GPU and host tiers died with the process), and it reports the
// death to the commit hook and metrics. Durable effects are gated so a
// flush racing the kill never records a durability the process did not
// live to see: retry loops and the flush routes check liveErr/killGate
// before every attempt and before each fate transition.

// Kill simulates the abrupt death of this rank at the current virtual
// time. It blocks until the client's background tasks unwind, so it
// must not be called from one of the client's own daemons or I/O hooks
// — use KillDetached there. Killing an already killed or closed client
// is a no-op.
func (c *Client) Kill() {
	if !c.markKilled() {
		return
	}
	c.finishKill()
}

// KillDetached marks the rank dead immediately and unwinds its tasks on
// a separate clock task; safe to call from daemons and interceptors.
// Returns false if the client was already killed or closed.
func (c *Client) KillDetached() bool {
	if !c.markKilled() {
		return false
	}
	c.clk.Go(c.finishKill)
	return true
}

// Killed reports whether the rank has been killed.
func (c *Client) Killed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed
}

// markKilled flips the killed flag and wakes every parked task so the
// death is observed at the next gate.
func (c *Client) markKilled() bool {
	c.mu.Lock()
	if c.killed || c.closed {
		c.mu.Unlock()
		return false
	}
	c.killed = true
	c.bumpLocked()
	c.mu.Unlock()
	c.notifyGPU()
	c.hstC.Notify()
	c.lifecycle(-1, trace.LKilled, "", "rank killed")
	return true
}

// killGate returns ErrKilled once the rank is dead; flush routes call it
// before committing a durable effect.
func (c *Client) killGate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed {
		return ErrKilled
	}
	return nil
}

// finishKill unwinds the dead rank: stop the daemons (in-flight work
// observes killed at its next gate and aborts as lost), release this
// rank's claims on a shared host pool so co-located survivors do not
// inherit dead reservations, then sweep every checkpoint whose fate was
// still undecided to lost — its only copies were on the GPU and host
// tiers that died with the process.
func (c *Client) finishKill() {
	c.Close()
	c.releaseSharedHost()

	c.mu.Lock()
	var undecided []*checkpoint
	for _, ck := range c.ckpts {
		if ck.fateAccounted {
			continue
		}
		if _, recovered := ck.pay.(*storePayload); recovered {
			continue // recovered checkpoints carry no conservation debt
		}
		undecided = append(undecided, ck)
	}
	c.mu.Unlock()
	// Deterministic sweep order (the map iteration above is not).
	for i := 1; i < len(undecided); i++ {
		for j := i; j > 0 && undecided[j].id < undecided[j-1].id; j-- {
			undecided[j], undecided[j-1] = undecided[j-1], undecided[j]
		}
	}
	for _, ck := range undecided {
		c.mu.Lock()
		ck.flushAborted = true
		if ck.flushErr == nil {
			ck.flushErr = ErrKilled
		}
		c.mu.Unlock()
		c.accountFate(ck, fateLost)
	}
	c.rec.RankDeath()
	if c.p.Commit != nil {
		c.p.Commit.RankDead(c.p.Rank)
	}
}

// releaseSharedHost frees the dead rank's entries in a shared host pool.
// A private host cache needs no sweep — it died with the client.
func (c *Client) releaseSharedHost() {
	if c.hostNS < 0 {
		return
	}
	c.mu.Lock()
	var ids []ID
	for id, ck := range c.ckpts {
		if ck.replicas[TierHost] != nil {
			ids = append(ids, id)
		}
	}
	c.mu.Unlock()
	sortIDs(ids)
	released := false
	for _, id := range ids {
		if c.hstC.Release(c.hostKey(id)) {
			released = true
		}
	}
	if released {
		c.hstC.Notify()
	}
}
