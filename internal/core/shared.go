package core

import (
	"fmt"
	"sync"
	"time"

	"score/internal/cachebuf"
	"score/internal/simclock"
)

// nsShift positions the client namespace above the checkpoint version in
// a shared cache key; versions must stay below 2^40.
const nsShift = 40

// SharedHostCache implements the paper's first future-work item ("share
// the host cache across different processes and nodes to load balance
// variable-sized checkpoints"): one pinned host cache pool serving every
// co-located client. Each client's checkpoints are namespaced inside the
// shared buffer, and the gap-aware eviction policy sees all of them at
// once — a client with large checkpoints can borrow capacity a client
// with small ones does not need.
type SharedHostCache struct {
	buf       *cachebuf.Buffer
	router    *routerOracle
	createdAt time.Duration
	pinChunk  int64 // bytes each participating process pins in parallel
}

// NewSharedHostCache creates a pool of the given capacity on clk. The
// pool's pinned registration is charged once, overlapped with the run:
// the participating processes pin it in parallel chunks (one chunk per
// expected client), so the pool becomes usable when the slowest chunk
// finishes — the same per-process registration time a private cache of
// capacity/clients would cost.
func NewSharedHostCache(clk simclock.Clock, name string, capacity int64) *SharedHostCache {
	return NewSharedHostCachePinnedBy(clk, name, capacity, 8)
}

// NewSharedHostCachePinnedBy is NewSharedHostCache with an explicit
// number of parallel pinning processes.
func NewSharedHostCachePinnedBy(clk simclock.Clock, name string, capacity int64, pinners int) *SharedHostCache {
	if pinners < 1 {
		pinners = 1
	}
	r := &routerOracle{clients: map[int64]*tierOracle{}}
	s := &SharedHostCache{router: r, createdAt: clk.Now()}
	s.buf = cachebuf.New(clk, name, capacity, r)
	s.pinChunk = (capacity + int64(pinners) - 1) / int64(pinners)
	return s
}

// Capacity returns the pool capacity in bytes.
func (s *SharedHostCache) Capacity() int64 { return s.buf.Capacity() }

// Resident returns the number of checkpoints cached across all clients.
func (s *SharedHostCache) Resident() int { return s.buf.Resident() }

// Close unblocks all waiters; call once every participating client is
// closed.
func (s *SharedHostCache) Close() { s.buf.Close() }

// register adds a client and returns its namespace.
func (s *SharedHostCache) register(c *Client) int64 {
	return s.router.register(&tierOracle{c: c, tier: TierHost})
}

// routerOracle demultiplexes shared-buffer oracle queries to the owning
// client's host-tier oracle by namespace.
type routerOracle struct {
	mu      sync.Mutex
	nextNS  int64
	clients map[int64]*tierOracle
}

func (r *routerOracle) register(o *tierOracle) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	ns := r.nextNS
	r.nextNS++
	r.clients[ns] = o
	return ns
}

func (r *routerOracle) route(id cachebuf.ID) (*tierOracle, cachebuf.ID) {
	ns := int64(id) >> nsShift
	local := cachebuf.ID(int64(id) & ((1 << nsShift) - 1))
	r.mu.Lock()
	o := r.clients[ns]
	r.mu.Unlock()
	return o, local
}

// Evictable implements cachebuf.Oracle.
func (r *routerOracle) Evictable(id cachebuf.ID) bool {
	o, local := r.route(id)
	if o == nil {
		return true
	}
	return o.Evictable(local)
}

// TimeToEvictable implements cachebuf.Oracle.
func (r *routerOracle) TimeToEvictable(id cachebuf.ID) (d time.Duration, ok bool) {
	o, local := r.route(id)
	if o == nil {
		return 0, true
	}
	return o.TimeToEvictable(local)
}

// PrefetchDistance implements cachebuf.Oracle.
func (r *routerOracle) PrefetchDistance(id cachebuf.ID) int {
	o, local := r.route(id)
	if o == nil {
		return cachebuf.GapDistance - 1
	}
	return o.PrefetchDistance(local)
}

// Evicted implements cachebuf.Oracle.
func (r *routerOracle) Evicted(id cachebuf.ID) {
	o, local := r.route(id)
	if o == nil {
		return
	}
	o.Evicted(local)
}

// hostKey maps a checkpoint id to its key in the host cache buffer
// (namespaced when the cache is shared).
func (c *Client) hostKey(id ID) cachebuf.ID {
	if c.hostNS >= 0 {
		if int64(id) >= 1<<nsShift {
			panic(fmt.Sprintf("core: checkpoint id %d exceeds shared-cache namespace capacity", id))
		}
		return cachebuf.ID(c.hostNS<<nsShift | int64(id))
	}
	return cachebuf.ID(id)
}
