package core

import (
	"errors"
	"fmt"
	"time"

	"score/internal/fabric"
	"score/internal/metrics"
	"score/internal/trace"
)

// Deadline-bounded preemption drain (the scheduling-events layer). A
// preemption notice gives the rank a grace window; Drain triage-flushes
// the resident, not-yet-durable versions oldest-first against per-link
// deadline budgets, demotes every flush to its fastest durable route
// (best-effort partner/PFS breadth is skipped while draining), and fails
// open — a version whose estimated route cannot land inside the window
// is abandoned to ErrLost immediately instead of wedging the cache. The
// manifest reports every live version's outcome, so the scheduler (and
// the tests) can tell exactly what became durable before the reclaim.

// ErrDraining is returned by Checkpoint once a preemption drain has
// begun: the rank is being reclaimed and accepts no new state.
var ErrDraining = errors.New("core: client is draining (preemption notice)")

// DrainOutcome classifies one version's fate in a drain manifest.
type DrainOutcome int

const (
	// DrainAlreadyDurable: the version was durable before the triage ran
	// (or a still-running flush landed it during the notice window).
	DrainAlreadyDurable DrainOutcome = iota
	// DrainFlushed: the triage made the version durable inside the window.
	DrainFlushed
	// DrainDiscarded: the version was consumed and discardable (§2
	// condition 5); the drain dropped its pending flush.
	DrainDiscarded
	// DrainAbandoned: the version could not land inside the deadline
	// budget (or its only route failed); it was failed open to ErrLost.
	DrainAbandoned
)

// String names the outcome as rendered in manifests.
func (o DrainOutcome) String() string {
	switch o {
	case DrainAlreadyDurable:
		return "already-durable"
	case DrainFlushed:
		return "drained"
	case DrainDiscarded:
		return "discarded"
	case DrainAbandoned:
		return "abandoned"
	}
	return fmt.Sprintf("DrainOutcome(%d)", int(o))
}

// DrainEntry is one version's line in a drain manifest.
type DrainEntry struct {
	// Version is the checkpoint version.
	Version int64
	// Size is the version's payload size in bytes.
	Size int64
	// Outcome is the version's drain fate.
	Outcome DrainOutcome
	// Tier names the durable tier reached ("ssd", "pfs"); empty for
	// discarded and abandoned versions.
	Tier string
	// Reason explains an abandonment (deadline budget, route failure,
	// shutdown); empty otherwise.
	Reason string
	// At is the virtual time the outcome was decided.
	At time.Duration
}

// DrainManifest is the complete report of one deadline-bounded drain:
// what the grace window was, what became durable, and what was
// explicitly abandoned. Every version live in the client at drain time
// has exactly one entry (versions recovered from a store are excluded —
// they are already durable by construction and carried no flush debt).
type DrainManifest struct {
	// Grace is the window the preemption notice granted.
	Grace time.Duration
	// Started and Deadline bound the window on the virtual timeline;
	// Finished is when the triage completed (past Deadline on a miss).
	Started, Deadline, Finished time.Duration
	// Entries lists every live version's outcome, ascending by version.
	Entries []DrainEntry
	// DurableBytes counts bytes durable at drain end (already-durable
	// plus triage-flushed); AbandonedBytes counts bytes failed open to
	// ErrLost; DiscardedBytes counts dropped discardable flushes.
	DurableBytes, AbandonedBytes, DiscardedBytes int64
	// DeadlineMet reports a fully successful drain: the triage finished
	// inside the window AND abandoned nothing. A drain that fails open on
	// time is prompt but not a hit.
	DeadlineMet bool
}

// Count returns how many entries carry the given outcome.
func (m DrainManifest) Count(o DrainOutcome) int {
	n := 0
	for _, e := range m.Entries {
		if e.Outcome == o {
			n++
		}
	}
	return n
}

// Complete reports whether every entry reached a terminal outcome with
// the invariant the acceptance contract demands: abandoned entries carry
// an explicit reason and nothing is left undecided. A manifest built by
// Drain is complete by construction; tests assert it anyway.
func (m DrainManifest) Complete() bool {
	for _, e := range m.Entries {
		if e.Outcome == DrainAbandoned && e.Reason == "" {
			return false
		}
	}
	return true
}

// String renders the manifest tally (the LDrainEnd ledger detail).
func (m DrainManifest) String() string {
	return fmt.Sprintf("drained %d, already-durable %d, discarded %d, abandoned %d (%s in %v window)",
		m.Count(DrainFlushed), m.Count(DrainAlreadyDurable), m.Count(DrainDiscarded),
		m.Count(DrainAbandoned), map[bool]string{true: "met", false: "missed"}[m.DeadlineMet], m.Grace)
}

// Draining reports whether a preemption drain has begun on this client.
func (c *Client) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// drainCandidate is one undecided version the triage planner considers.
type drainCandidate struct {
	ck         *checkpoint
	fromGPU    bool // flush must charge the PCIe hop (no host replica)
	discard    bool // consumed and discardable: drop, don't flush
	unservable bool // no readable replica anywhere: abandon immediately
}

// Drain executes a deadline-bounded preemption drain with the given
// grace window and returns the manifest. It is sticky: once called, the
// client rejects new checkpoints with ErrDraining for the rest of its
// life (a preemption notice is not revoked). Restores remain allowed —
// they serve from whatever tiers survive. Safe to call concurrently
// with foreground traffic; a second call returns ErrDraining.
func (c *Client) Drain(grace time.Duration) (DrainManifest, error) {
	if grace < 0 {
		grace = 0
	}
	c.mu.Lock()
	switch {
	case c.killed:
		c.mu.Unlock()
		return DrainManifest{}, ErrKilled
	case c.closed:
		c.mu.Unlock()
		return DrainManifest{}, ErrClosed
	case c.draining:
		c.mu.Unlock()
		return DrainManifest{}, ErrDraining
	}
	c.draining = true
	c.drainActive = true
	start := c.clk.Now()
	deadline := start + grace
	c.bumpLocked()
	c.mu.Unlock()

	c.rec.DrainStart()
	c.lifecycle(-1, trace.LDrainStart, "", fmt.Sprintf("grace %v", grace))

	m := DrainManifest{Grace: grace, Started: start, Deadline: deadline}
	outcomes := map[ID]DrainEntry{}

	// Deadline waker: the triage's waits must resume at the deadline even
	// if no flush lands near it, so stragglers are failed open on time
	// instead of wedging the drain behind a parked worker.
	c.clk.Go(func() {
		if d := deadline - c.clk.Now(); d > 0 {
			c.clk.Sleep(d)
		}
		c.mu.Lock()
		c.bumpLocked()
		c.mu.Unlock()
	})

	// Freeze the flush queues immediately: workers finish their in-flight
	// job but pop nothing new. The triage owns the backlog from here.
	// There is deliberately no "wait for writers" phase — a writer blocked
	// on cache admission may be waiting on an eviction only the triage's
	// own flushing can unlock (e.g. every flush worker parked behind host
	// registration), so waiting first can burn the whole window. Writers
	// already past the admission gate land mid-drain instead: the round
	// loop's busy flag covers them, and their versions are triaged (and
	// charged against whatever budget remains) once they appear.
	c.mu.Lock()
	c.drainFrozen = true
	c.bumpLocked()
	c.mu.Unlock()

	// Triage rounds. Each round snapshots the undecided versions not
	// owned by an in-flight worker, plans them against the remaining
	// per-link budget, and flushes the admitted ones. Workers finishing
	// mid-round hand their stragglers to the next round; the frozen
	// queues guarantee the undecided set only shrinks.
	for {
		cands, busy := c.drainSnapshot()
		if len(cands) == 0 {
			if !busy {
				break
			}
			// A worker still owns a job (e.g. blocked on host admission
			// that a just-finished triage flush is about to free); wait
			// for it to land and re-snapshot.
			c.mu.Lock()
			if c.writersBusy == 0 && c.d2hBusy == 0 && c.h2fBusy == 0 {
				c.mu.Unlock()
				continue
			}
			c.cond.Wait()
			c.mu.Unlock()
			continue
		}
		c.drainRound(cands, deadline, outcomes)
	}

	// Phase 4 — the queues hold only decided versions now; clear them so
	// WaitFlush observes quiescence. The workers stay parked (frozen is
	// sticky — a preempted rank accepts no further flush work).
	c.mu.Lock()
	for c.d2hQ.len() > 0 {
		c.d2hQ.pop()
	}
	for c.h2fQ.len() > 0 {
		c.h2fQ.pop()
	}
	finish := c.clk.Now()
	c.drainActive = false
	c.bumpLocked()
	c.mu.Unlock()
	c.notifyGPU()
	c.hstC.Notify()

	m.Finished = finish
	c.buildManifest(&m, outcomes)
	m.DeadlineMet = finish <= deadline && m.Count(DrainAbandoned) == 0
	c.rec.DrainDeadline(m.DeadlineMet)
	if c.p.SLO != nil {
		c.p.SLO.ObserveDrain(m.DeadlineMet)
	}
	if m.DeadlineMet {
		c.rec.ObserveDuration(metrics.HistDrainSlack, deadline-finish)
	}
	c.lifecycle(-1, trace.LDrainEnd, "", m.String())
	return m, c.liveErr()
}

// drainSnapshot collects the undecided, worker-unowned versions in
// oldest-durability-first order (ascending writtenAt, then version) and
// reports whether any worker still owns a job.
func (c *Client) drainSnapshot() ([]drainCandidate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var cands []drainCandidate
	for _, ck := range c.ckpts {
		// A worker-owned version is off limits — unless the worker is
		// parked on host registration, in which case the triage claims
		// the job (the park can outlast the whole grace window).
		if ck.fateAccounted || ck.drainClaimed || (c.inFlight[ck.id] && !ck.hostWait) {
			continue
		}
		if _, recovered := ck.pay.(*storePayload); recovered {
			continue
		}
		cand := drainCandidate{ck: ck}
		switch {
		case ck.consumed && c.p.DiscardAfterRestore:
			cand.discard = true
		case ck.dataOn(TierHost):
			cand.fromGPU = false
		case ck.dataOn(TierGPU):
			cand.fromGPU = true
		case ck.writeInProgress():
			// The writer is still landing this version (the busy flag keeps
			// the round loop alive); the next round sees it with data.
			continue
		default:
			cand.unservable = true
		}
		cands = append(cands, cand)
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && drainOlder(cands[j].ck, cands[j-1].ck); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	// Busy counts only workers whose decision still matters: one sleeping
	// on a claimed (or otherwise decided) version holds nothing up.
	busy := c.writersBusy > 0
	if !busy {
		for id := range c.inFlight {
			if ck := c.ckpts[id]; ck != nil && !ck.drainClaimed && !ck.fateAccounted {
				busy = true
				break
			}
		}
	}
	return cands, busy
}

// drainOlder orders the triage oldest-durability-first: the version
// written earliest flushes first (ties break on version number so the
// order is deterministic under same-instant writes).
func drainOlder(a, b *checkpoint) bool {
	if a.writtenAt != b.writtenAt {
		return a.writtenAt < b.writtenAt
	}
	return a.id < b.id
}

// drainRoute returns the links a candidate's demoted (fastest-durable)
// flush route crosses, or an error when no durable route exists.
func (c *Client) drainRoute(cand drainCandidate) ([]*fabric.Link, error) {
	var route []*fabric.Link
	if cand.fromGPU {
		route = append(route, c.p.GPU.PCIeLink())
	}
	if !c.tierDegraded(TierSSD) {
		return append(route, c.p.NVMe), nil
	}
	if c.p.PFS != nil {
		return append(route, c.p.PFS), nil
	}
	return nil, fmt.Errorf("%w: ssd tier degraded and no PFS configured", ErrTierIO)
}

// drainRound plans one snapshot against the remaining per-link budget
// and executes the admitted flushes with the flusher pool's parallelism.
// Versions that do not fit the budget are failed open immediately.
func (c *Client) drainRound(cands []drainCandidate, deadline time.Duration, outcomes map[ID]DrainEntry) {
	remaining := deadline - c.clk.Now()
	budget := map[*fabric.Link]time.Duration{}
	var admitted []drainCandidate
	for _, cand := range cands {
		ck := cand.ck
		// The triage owns this version's fate from here: a worker parked
		// on it walks away when it wakes.
		c.mu.Lock()
		ck.drainClaimed = true
		c.mu.Unlock()
		switch {
		case cand.discard:
			c.accountFate(ck, fateDiscarded)
			outcomes[ck.id] = DrainEntry{Version: int64(ck.id), Size: ck.size,
				Outcome: DrainDiscarded, At: c.clk.Now()}
			continue
		case cand.unservable:
			c.drainAbandon(ck, "no readable replica to flush", outcomes)
			continue
		}
		route, err := c.drainRoute(cand)
		if err != nil {
			c.drainAbandon(ck, err.Error(), outcomes)
			continue
		}
		// Per-link deadline budget: admit the version only if every hop's
		// cumulative planned occupancy still fits the remaining window.
		fits := remaining > 0
		for _, l := range route {
			if budget[l]+l.Estimate(ck.size) > remaining {
				fits = false
				break
			}
		}
		if !fits {
			c.drainAbandon(ck, fmt.Sprintf("deadline budget exhausted (%v left in %v window)",
				max(remaining, 0), deadline), outcomes)
			continue
		}
		for _, l := range route {
			budget[l] += l.Estimate(ck.size)
		}
		admitted = append(admitted, cand)
	}
	if len(admitted) == 0 {
		return
	}

	// Execute with the flusher pool's width. The shared cursor hands out
	// work in plan order, so the oldest versions flush first even when a
	// late flush overshoots its estimate.
	workers := c.flushStreams
	if workers > len(admitted) {
		workers = len(admitted)
	}
	next := 0
	var wmu = &c.mu // reuse the client lock for the tiny cursor section
	done := c.clk.NewCond(wmu)
	running := workers
	for w := 0; w < workers; w++ {
		c.clk.Go(func() {
			for {
				wmu.Lock()
				if next >= len(admitted) {
					running--
					done.Broadcast()
					wmu.Unlock()
					return
				}
				cand := admitted[next]
				next++
				wmu.Unlock()
				c.drainFlush(cand, deadline, outcomes)
			}
		})
	}
	wmu.Lock()
	for running > 0 {
		done.Wait()
	}
	wmu.Unlock()
}

// drainFlush lands one admitted candidate on its fastest durable tier,
// re-checking the deadline at start (fail-open if the window is already
// blown — estimates are optimistic under foreground contention).
func (c *Client) drainFlush(cand drainCandidate, deadline time.Duration, outcomes map[ID]DrainEntry) {
	ck := cand.ck
	if c.clk.Now() >= deadline {
		c.drainAbandon(ck, "deadline passed before flush could start", outcomes)
		return
	}
	// Time parked in the frozen queue (since the version's last attributed
	// segment) is the drain-wait component of its durable critical path.
	c.mark(ck.att, metrics.CompDrainWait)
	start := c.clk.Now()
	err := c.directToSSD(ck, cand.fromGPU, ck.att)
	if err != nil {
		c.drainAbandon(ck, err.Error(), outcomes)
		return
	}
	c.markFlushed(ck, TierGPU)
	c.markFlushed(ck, TierHost)
	elapsed := c.clk.Now() - start
	c.rec.ObserveDuration(metrics.HistDrainFlush, elapsed)
	c.rec.DrainFlushed(ck.size)
	tier := TierSSD.String()
	c.mu.Lock()
	if !ck.dataOn(TierSSD) && ck.dataOn(TierPFS) {
		tier = TierPFS.String()
	}
	c.mu.Unlock()
	outcomes[ck.id] = DrainEntry{Version: int64(ck.id), Size: ck.size,
		Outcome: DrainFlushed, Tier: tier, At: c.clk.Now()}
}

// drainAbandon fails one version open to ErrLost: the manifest carries
// the explicit reason, Restore answers definitively (from a surviving
// cache replica while it lasts, ErrLost after), and the cache never
// wedges on it.
func (c *Client) drainAbandon(ck *checkpoint, reason string, outcomes map[ID]DrainEntry) {
	src := TierGPU
	c.mu.Lock()
	if ck.dataOn(TierHost) {
		src = TierHost
	}
	c.mu.Unlock()
	c.abortFlush(ck, src, fmt.Errorf("%w: drain: %s", ErrLost, reason))
	c.rec.DrainAbandoned(ck.size)
	c.lifecycle(ck.id, trace.LDrainAbandoned, "", reason)
	outcomes[ck.id] = DrainEntry{Version: int64(ck.id), Size: ck.size,
		Outcome: DrainAbandoned, Reason: reason, At: c.clk.Now()}
}

// buildManifest classifies every live version: triage outcomes are taken
// from the round bookkeeping; versions decided outside the triage (flushed
// by a worker during the notice window, durable before the notice, or
// swept by a racing kill) are classified from their replica state.
func (c *Client) buildManifest(m *DrainManifest, outcomes map[ID]DrainEntry) {
	c.mu.Lock()
	var entries []DrainEntry
	for id, ck := range c.ckpts {
		if _, recovered := ck.pay.(*storePayload); recovered {
			continue
		}
		if e, ok := outcomes[id]; ok {
			entries = append(entries, e)
			continue
		}
		e := DrainEntry{Version: int64(id), Size: ck.size, At: m.Finished}
		switch {
		case ck.dataOn(TierSSD):
			e.Outcome, e.Tier = DrainAlreadyDurable, TierSSD.String()
		case ck.dataOn(TierPFS):
			e.Outcome, e.Tier = DrainAlreadyDurable, TierPFS.String()
		case ck.dataOn(TierPartner):
			e.Outcome, e.Tier = DrainAlreadyDurable, TierPartner.String()
		case ck.flushAborted:
			e.Outcome = DrainAbandoned
			e.Reason = "flush aborted"
			if ck.flushErr != nil {
				e.Reason = ck.flushErr.Error()
			}
		default:
			e.Outcome = DrainDiscarded
		}
		entries = append(entries, e)
	}
	c.mu.Unlock()
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].Version < entries[j-1].Version; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	for _, e := range entries {
		switch e.Outcome {
		case DrainAlreadyDurable, DrainFlushed:
			m.DurableBytes += e.Size
		case DrainAbandoned:
			m.AbandonedBytes += e.Size
		case DrainDiscarded:
			m.DiscardedBytes += e.Size
		}
	}
	m.Entries = entries
}

func max(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
