package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"score/internal/fabric"
	"score/internal/lifecycle"
	"score/internal/payload"
	"score/internal/simclock"
)

// deadLink is an interceptor that fails every transfer.
func deadLink(msg string) fabric.TransferInterceptor {
	err := errors.New(msg)
	return func(string, int64) fabric.FaultDecision {
		return fabric.FaultDecision{Err: err}
	}
}

// TestPCIeOutageLeavesNoInflightReplica is the runD2H/runH2F error-path
// regression: a persistent PCIe outage must not leave any replica parked
// in WRITE_IN_PROGRESS/READ_IN_PROGRESS (which would pin cache space
// forever), must release the host reservation it rolled back, and must
// keep the checkpoint readable from the GPU copy that never left.
func TestPCIeOutageLeavesNoInflightReplica(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		_, pcie := r.cluster.Nodes[0].GPULinks(0)
		pcie.SetInterceptor(deadLink("pcie outage"))

		data := make([]byte, 256*1024)
		for i := range data {
			data[i] = byte(i)
		}
		in := payload.NewReal(data)
		if err := r.client.Checkpoint(0, in); err != nil {
			t.Fatal(err)
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatalf("WaitFlush must drain despite the outage: %v", err)
		}

		r.client.mu.Lock()
		ck := r.client.ckpts[0]
		if !ck.flushAborted {
			t.Error("flush not marked aborted after every route failed")
		}
		for tier, rep := range ck.replicas {
			switch st := rep.fsm.State(); st {
			case lifecycle.WriteInProgress, lifecycle.ReadInProgress:
				t.Errorf("tier %v replica stuck in-flight (%v)", tier, st)
			}
		}
		r.client.mu.Unlock()

		if _, host := r.client.Resident(); host != 0 {
			t.Errorf("host cache holds %d residents; the rolled-back reservation leaked", host)
		}

		// The GPU copy never left the device, so the restore still works.
		out, err := r.client.Restore(0)
		if err != nil {
			t.Fatalf("restore from the surviving GPU copy: %v", err)
		}
		if err := payload.Verify(in, out.Bytes()); err != nil {
			t.Errorf("restored payload corrupt: %v", err)
		}

		s := r.client.Metrics().Snapshot()
		if s.FlushAborts < 1 {
			t.Errorf("FlushAborts = %d, want >= 1", s.FlushAborts)
		}
		if s.TotalRetries() == 0 {
			t.Error("outage produced no retries")
		}
		got := r.client.DegradedTiers()
		if len(got) != 2 || got[0] != TierHost || got[1] != TierSSD {
			t.Errorf("DegradedTiers = %v, want [host ssd]", got)
		}
	})
}

// TestTransientNVMeFailureRetriesThrough verifies the jittered-backoff
// retry loop: two transient NVMe failures are absorbed without degrading
// the tier, and the flush lands on the SSD as usual.
func TestTransientNVMeFailureRetriesThrough(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		var calls atomic.Int64
		fail := errors.New("nvme hiccup")
		r.cluster.Nodes[0].NVMe.SetInterceptor(func(string, int64) fabric.FaultDecision {
			if calls.Add(1) <= 2 {
				return fabric.FaultDecision{Err: fail}
			}
			return fabric.FaultDecision{}
		})

		if err := r.client.Checkpoint(0, pay(MB)); err != nil {
			t.Fatal(err)
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		s := r.client.Metrics().Snapshot()
		if s.Retries["ssd"] != 2 {
			t.Errorf("ssd retries = %d, want 2", s.Retries["ssd"])
		}
		if tiers := r.client.DegradedTiers(); len(tiers) != 0 {
			t.Errorf("transient failure degraded tiers %v", tiers)
		}
		r.client.mu.Lock()
		rep := r.client.ckpts[0].replicas[TierSSD]
		r.client.mu.Unlock()
		if rep == nil || rep.fsm.State() != lifecycle.Flushed {
			t.Error("SSD replica not FLUSHED after retried write")
		}
	})
}

// TestSacrificialEvictionReportsErrLost: when no durable route exists and
// cache pressure forces the aborted checkpoint out, a later restore must
// fail definitively with ErrLost — never hang, never return garbage.
func TestSacrificialEvictionReportsErrLost(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		_, pcie := r.cluster.Nodes[0].GPULinks(0)
		pcie.SetInterceptor(deadLink("pcie outage"))

		// 6 x 1MB through a 4MB GPU cache: at least two sacrificial
		// evictions. Every Checkpoint must still complete (fail-open).
		const n = 6
		for v := 0; v < n; v++ {
			if err := r.client.Checkpoint(ID(v), pay(MB)); err != nil {
				t.Fatalf("checkpoint %d wedged: %v", v, err)
			}
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		lost := 0
		for v := 0; v < n; v++ {
			_, err := r.client.Restore(ID(v))
			switch {
			case err == nil:
			case errors.Is(err, ErrLost):
				lost++
			default:
				t.Errorf("restore %d: %v, want nil or ErrLost", v, err)
			}
		}
		if lost == 0 {
			t.Error("no checkpoint reported ErrLost despite forced eviction")
		}
		if s := r.client.Metrics().Snapshot(); s.FlushAborts < n {
			t.Errorf("FlushAborts = %d, want >= %d", s.FlushAborts, n)
		}
	})
}

// TestSSDOutageReroutesFlushToPFS: a dead NVMe link degrades the SSD tier
// and the flush chain lands the checkpoint on the PFS instead, durably.
func TestSSDOutageReroutesFlushToPFS(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		r.cluster.Nodes[0].NVMe.SetInterceptor(deadLink("nvme outage"))

		if err := r.client.Checkpoint(0, pay(MB)); err != nil {
			t.Fatal(err)
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatalf("flush must reroute to PFS: %v", err)
		}
		r.client.mu.Lock()
		ck := r.client.ckpts[0]
		pfsRep := ck.replicas[TierPFS]
		aborted := ck.flushAborted
		r.client.mu.Unlock()
		if aborted {
			t.Error("flush aborted despite a healthy PFS route")
		}
		if pfsRep == nil || pfsRep.fsm.State() != lifecycle.Flushed {
			t.Error("PFS replica not FLUSHED after reroute")
		}
		if tiers := r.client.DegradedTiers(); len(tiers) != 1 || tiers[0] != TierSSD {
			t.Errorf("DegradedTiers = %v, want [ssd]", tiers)
		}
		if s := r.client.Metrics().Snapshot(); s.Degradations["ssd"] != 1 {
			t.Errorf("ssd degradations = %d, want 1", s.Degradations["ssd"])
		}
	})
}

// TestOversizeCheckpointSyncFlushes: a checkpoint larger than the GPU
// cache falls back to a synchronous flush (§2 condition 4) instead of
// failing, and lands on the host tier.
func TestOversizeCheckpointSyncFlushes(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		if err := r.client.Checkpoint(0, pay(6*MB)); err != nil {
			t.Fatalf("oversize checkpoint: %v", err)
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		s := r.client.Metrics().Snapshot()
		if s.SyncFlushes != 1 {
			t.Errorf("SyncFlushes = %d, want 1", s.SyncFlushes)
		}
		if _, err := r.client.Restore(0); err != nil {
			t.Errorf("restore of sync-flushed checkpoint: %v", err)
		}
	})
}
