package core

import (
	"sync"
	"testing"
	"time"

	"score/internal/fabric"
	"score/internal/lifecycle"
	"score/internal/simclock"
)

// TestFlushStreamsResolution: the worker-pool width defaults to the seed's
// single flusher when transfers are monolithic, and to the GPU's copy-
// engine count when chunking is enabled.
func TestFlushStreamsResolution(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		if r.client.flushStreams != 1 {
			t.Errorf("monolithic flushStreams = %d, want 1 (seed behavior)", r.client.flushStreams)
		}
	})
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, func(p *Params) { p.ChunkSize = 256 << 10 })
		defer r.client.Close()
		if want := r.gpu.CopyEngines(); r.client.flushStreams != want {
			t.Errorf("chunked flushStreams = %d, want copy-engine count %d", r.client.flushStreams, want)
		}
	})
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, func(p *Params) { p.FlushStreams = 3 })
		defer r.client.Close()
		if r.client.flushStreams != 3 {
			t.Errorf("explicit flushStreams = %d, want 3", r.client.flushStreams)
		}
	})
}

// TestFlushPoolDrainsAllCheckpoints: with three workers per stage every
// checkpoint still reaches the SSD tier and WaitFlush drains cleanly.
func TestFlushPoolDrainsAllCheckpoints(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, func(p *Params) { p.FlushStreams = 3 })
		defer r.client.Close()
		const n = 6
		for i := 0; i < n; i++ {
			if err := r.client.Checkpoint(ID(i), pay(MB)); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		r.client.mu.Lock()
		defer r.client.mu.Unlock()
		for i := 0; i < n; i++ {
			ck := r.client.ckpts[ID(i)]
			rep := ck.replicas[TierSSD]
			if rep == nil || rep.fsm.State() != lifecycle.Flushed {
				t.Errorf("checkpoint %d not durable on SSD after WaitFlush", i)
			}
		}
	})
}

// TestFlushPoolPerCheckpointOrdering: even with three concurrent workers
// per stage, a checkpoint's D2H copy must start before its own H2F write —
// the pool parallelizes across checkpoints, never within one. Distinct
// sizes identify which checkpoint each link-level transfer belongs to.
func TestFlushPoolPerCheckpointOrdering(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		var mu sync.Mutex
		pcieStart := map[int64]time.Duration{}
		nvmeStart := map[int64]time.Duration{}
		r := newRig(t, clk, func(p *Params) { p.FlushStreams = 3 })
		defer r.client.Close()
		_, pcie := r.cluster.Nodes[0].GPULinks(0)
		pcie.SetInterceptor(func(_ string, size int64) fabric.FaultDecision {
			mu.Lock()
			if _, seen := pcieStart[size]; !seen {
				pcieStart[size] = clk.Now()
			}
			mu.Unlock()
			return fabric.FaultDecision{}
		})
		r.cluster.Nodes[0].NVMe.SetInterceptor(func(_ string, size int64) fabric.FaultDecision {
			mu.Lock()
			if _, seen := nvmeStart[size]; !seen {
				nvmeStart[size] = clk.Now()
			}
			mu.Unlock()
			return fabric.FaultDecision{}
		})
		const n = 5
		for i := 0; i < n; i++ {
			size := int64(i+1) * 128 << 10 // distinct per checkpoint
			if err := r.client.Checkpoint(ID(i), pay(size)); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		defer mu.Unlock()
		for i := 0; i < n; i++ {
			size := int64(i+1) * 128 << 10
			d2h, ok1 := pcieStart[size]
			h2f, ok2 := nvmeStart[size]
			if !ok1 || !ok2 {
				t.Fatalf("checkpoint %d missing a stage (pcie=%v nvme=%v)", i, ok1, ok2)
			}
			if h2f < d2h {
				t.Errorf("checkpoint %d: H2F started at %v before its D2H at %v", i, h2f, d2h)
			}
		}
	})
}

// TestFlushPoolSkipsConsumed: §2 condition 5 with a multi-worker pool —
// a checkpoint consumed (restored) while its flush is still queued must
// not be written to the SSD.
func TestFlushPoolSkipsConsumed(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		var mu sync.Mutex
		nvmeSizes := map[int64]bool{}
		r := newRig(t, clk, func(p *Params) {
			p.FlushStreams = 3
			p.DiscardAfterRestore = true
		})
		defer r.client.Close()
		r.cluster.Nodes[0].NVMe.SetInterceptor(func(_ string, size int64) fabric.FaultDecision {
			mu.Lock()
			nvmeSizes[size] = true
			mu.Unlock()
			return fabric.FaultDecision{}
		})
		const consumedSize = 768 << 10
		if err := r.client.Checkpoint(0, pay(consumedSize)); err != nil {
			t.Fatal(err)
		}
		if err := r.client.Checkpoint(1, pay(MB)); err != nil {
			t.Fatal(err)
		}
		// Consume checkpoint 0 from its GPU replica while the flush
		// pipeline is still busy (PCIe alone needs ~7.5ms; we are at
		// ~1.75ms after the two D2D copies).
		if _, err := r.client.Restore(0); err != nil {
			t.Fatal(err)
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		defer mu.Unlock()
		if nvmeSizes[consumedSize] {
			t.Error("consumed+discardable checkpoint was still written to the SSD")
		}
		if !nvmeSizes[MB] {
			t.Error("unconsumed checkpoint never reached the SSD")
		}
	})
}

// TestFlushPoolAbortWithMultipleWorkers: when every durable route is dead,
// each worker's flush aborts fail-open — no replica wedged in-flight, the
// GPU copies stay restorable, and WaitFlush still drains.
func TestFlushPoolAbortWithMultipleWorkers(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, func(p *Params) { p.FlushStreams = 3 })
		defer r.client.Close()
		r.cluster.Nodes[0].NVMe.SetInterceptor(deadLink("nvme outage"))
		r.cluster.PFS.SetInterceptor(deadLink("pfs outage"))
		const n = 3
		for i := 0; i < n; i++ {
			if err := r.client.Checkpoint(ID(i), pay(MB)); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatalf("WaitFlush must drain despite the outage: %v", err)
		}
		r.client.mu.Lock()
		for i := 0; i < n; i++ {
			ck := r.client.ckpts[ID(i)]
			if !ck.flushAborted {
				t.Errorf("checkpoint %d not marked flush-aborted", i)
			}
			for tier, rep := range ck.replicas {
				switch st := rep.fsm.State(); st {
				case lifecycle.WriteInProgress, lifecycle.ReadInProgress:
					t.Errorf("checkpoint %d tier %v replica stuck in-flight (%v)", i, tier, st)
				}
			}
		}
		r.client.mu.Unlock()
		for i := 0; i < n; i++ {
			if _, err := r.client.Restore(ID(i)); err != nil {
				t.Errorf("restore %d from surviving GPU copy: %v", i, err)
			}
		}
		if s := r.client.Metrics().Snapshot(); s.FlushAborts < n {
			t.Errorf("FlushAborts = %d, want >= %d", s.FlushAborts, n)
		}
	})
}

// TestFlushPoolCloseJoinsWorkers: Close must join every pool worker (a
// leaked worker would block daemons.Wait forever) and stay idempotent.
func TestFlushPoolCloseJoinsWorkers(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, func(p *Params) { p.FlushStreams = 4 })
		for i := 0; i < 3; i++ {
			if err := r.client.Checkpoint(ID(i), pay(MB)); err != nil {
				t.Fatal(err)
			}
		}
		r.client.Close()
		r.client.Close() // idempotent
	})
}

// TestChunkedFlushBeatsMonolithic: end-to-end through the client, chunked
// pipelining must shorten a GPUDirect flush (PCIe + NVMe, both hops
// overlapped) compared to the monolithic seed path.
func TestChunkedFlushBeatsMonolithic(t *testing.T) {
	flushTime := func(chunk int64) time.Duration {
		var d time.Duration
		run(t, func(clk *simclock.Virtual) {
			r := newRig(t, clk, func(p *Params) {
				p.GPUDirectStorage = true
				p.ChunkSize = chunk
			})
			defer r.client.Close()
			start := clk.Now()
			if err := r.client.Checkpoint(0, pay(2*MB)); err != nil {
				t.Fatal(err)
			}
			if err := r.client.WaitFlush(); err != nil {
				t.Fatal(err)
			}
			d = clk.Now() - start
		})
		return d
	}
	mono := flushTime(0)
	chunked := flushTime(256 << 10)
	if chunked >= mono {
		t.Errorf("chunked GPUDirect flush took %v, monolithic %v; want chunked faster", chunked, mono)
	}
}
