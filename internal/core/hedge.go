package core

import (
	"fmt"
	"sync"
	"time"

	"score/internal/fabric"
	"score/internal/metrics"
	"score/internal/simclock"
	"score/internal/trace"
)

// This file implements hedged deep reads, the restore half of the
// gray-failure machinery (Params.Hedge): the sequential fallback ladder
// (SSD → partner SSD → PFS) becomes a race. The fastest replica's leg
// starts alone; if it runs past its adaptive deadline — the health
// estimator's median-with-headroom cost model for its link class —
// without failing, the next-deeper
// replica's leg launches concurrently. First success wins, the race is
// decided exactly once, and losers finish in the background charged as
// wasted bytes. A leg that fails outright falls back immediately, like
// the sequential ladder, degrading its tier so later operations skip it.
//
// Correctness of "never wrong bytes" is structural: deep-read legs only
// charge simulated link time — the checkpoint's payload is immutable and
// replica state is mutated by the caller only after the race returns, so
// a losing leg has nothing it could corrupt.

// hedgeLeg is one replica source in a hedged deep read.
type hedgeLeg struct {
	tier  Tier
	label string // estimator class / retry label
	comp  string // critical-path component the winning leg charges
	run   func() error
}

// deepLegs builds the hedged ladder for a monolithic deep read: one leg
// per below-host tier holding readable data, fastest first, with the
// sequential ladder's degraded-tier gating.
func (c *Client) deepLegs(ck *checkpoint) []hedgeLeg {
	c.mu.Lock()
	onSSD := ck.dataOn(TierSSD)
	onPartner := ck.dataOn(TierPartner)
	onPFS := ck.dataOn(TierPFS)
	c.mu.Unlock()

	var legs []hedgeLeg
	if onSSD && (!c.tierDegraded(TierSSD) || !(onPartner || onPFS)) {
		legs = append(legs, hedgeLeg{tier: TierSSD, label: "ssd", comp: metrics.CompXferSSD,
			run: func() error {
				return c.retryIOAttr(ck, nil, "", "ssd", "NVMe read", func() error {
					return c.deepHop(c.p.NVMe, ck.size)
				})
			}})
	}
	if onPartner && (!c.tierDegraded(TierPartner) || !onPFS) {
		legs = append(legs, hedgeLeg{tier: TierPartner, label: "partner", comp: metrics.CompXferPartner,
			run: func() error {
				return c.retryIOAttr(ck, nil, "", "partner", "partner SSD read", func() error {
					return c.partnerHop(ck.size, false)
				})
			}})
	}
	if onPFS {
		legs = append(legs, hedgeLeg{tier: TierPFS, label: "pfs", comp: metrics.CompXferPFS,
			run: func() error {
				return c.retryIOAttr(ck, nil, "", "pfs", "PFS read", func() error {
					return c.deepHop(c.p.PFS, ck.size)
				})
			}})
	}
	return legs
}

// deepLegsGPU is deepLegs for the chunked deep-read + H2D streams of
// readDeepToGPU: each leg races a whole engine-held stream.
func (c *Client) deepLegsGPU(ck *checkpoint) []hedgeLeg {
	c.mu.Lock()
	onSSD := ck.dataOn(TierSSD)
	onPartner := ck.dataOn(TierPartner)
	onPFS := ck.dataOn(TierPFS)
	c.mu.Unlock()

	mk := func(label, srcName string, inward fabric.Path) func() error {
		return func() error {
			return c.retryIOAttr(ck, nil, "", label, "chunked deep read + H2D", func() error {
				st, err := c.p.GPU.TryStreamH2D(inward, ck.size, c.p.ChunkSize)
				c.observePipeline(trace.TrackPF, "prefetch",
					fmt.Sprintf("promote %d %s→gpu", ck.id, srcName), c.flowID(ck.id), st, err)
				return err
			})
		}
	}
	var legs []hedgeLeg
	if onSSD && (!c.tierDegraded(TierSSD) || !(onPartner || onPFS)) {
		legs = append(legs, hedgeLeg{tier: TierSSD, label: "ssd", comp: metrics.CompXferSSD,
			run: mk("ssd+pcie", "ssd", fabric.Path{c.p.NVMe})})
	}
	if onPartner && (!c.tierDegraded(TierPartner) || !onPFS) {
		rev := make(fabric.Path, len(c.p.PartnerPath))
		for i, l := range c.p.PartnerPath {
			rev[len(rev)-1-i] = l
		}
		legs = append(legs, hedgeLeg{tier: TierPartner, label: "partner", comp: metrics.CompXferPartner,
			run: mk("partner+pcie", "partner", rev)})
	}
	if onPFS {
		legs = append(legs, hedgeLeg{tier: TierPFS, label: "pfs", comp: metrics.CompXferPFS,
			run: mk("pfs+pcie", "pfs", fabric.Path{c.p.PFS})})
	}
	return legs
}

// hedgeRace runs legs (fastest first) as a hedged race and returns the
// first success, or the deepest leg's error once every leg has failed.
// The winner's transfer window is charged to its component on att; the
// winning tier heals; a deeper-than-first winner counts as a fallback
// read exactly once per race (mirroring the sequential ladder's
// accounting). Legs still in flight when the race is decided keep
// running in the background under hedgeWG and count their bytes as
// wasted on completion — they can no longer affect the result.
func (c *Client) hedgeRace(ck *checkpoint, att *attrib, legs []hedgeLeg) error {
	type raceState struct {
		mu      sync.Mutex
		cond    simclock.Cond
		done    []bool
		errs    []error
		decided bool
		winner  int
	}
	hs := &raceState{done: make([]bool, len(legs)), errs: make([]error, len(legs)), winner: -1}
	hs.cond = c.clk.NewCond(&hs.mu)

	start := c.clk.Now()
	legStart := make([]time.Duration, len(legs))
	byHedge := make([]bool, len(legs)) // launched by deadline, not by failure
	handled := make([]bool, len(legs)) // failure side effects applied
	launched := 0
	hedgedAny := false
	fellBack := false

	// launch starts the next leg; the caller holds hs.mu.
	launch := func(hedge bool) {
		i := launched
		launched++
		legStart[i] = c.clk.Now()
		byHedge[i] = hedge
		c.hedgeWG.Add(1)
		c.clk.Go(func() {
			defer c.hedgeWG.Done()
			err := legs[i].run()
			if err == nil {
				c.observeHealth(legs[i].tier, ck.size, c.clk.Now()-legStart[i])
			}
			hs.mu.Lock()
			hs.done[i], hs.errs[i] = true, err
			if hs.decided && err == nil && i != hs.winner {
				// A loser finishing after the decision moved its bytes
				// for nothing.
				c.rec.HedgeWasted(ck.size)
			}
			hs.cond.Broadcast()
			hs.mu.Unlock()
		})
	}

	hs.mu.Lock()
	defer hs.mu.Unlock()
	launch(false)
	for {
		winner, running := -1, 0
		var shutdownErr error
		var degrade []Tier
		for i := 0; i < launched; i++ {
			switch {
			case !hs.done[i]:
				running++
			case hs.errs[i] == nil:
				if winner < 0 {
					winner = i
				}
			case isShutdownErr(hs.errs[i]):
				if shutdownErr == nil {
					shutdownErr = hs.errs[i]
				}
			case !handled[i]:
				handled[i] = true
				if i < len(legs)-1 {
					// A deeper replica exists: take the failed tier out
					// of rotation, as the sequential ladder would.
					degrade = append(degrade, legs[i].tier)
				}
			}
		}
		switch {
		case winner >= 0:
			hs.decided, hs.winner = true, winner
			now := c.clk.Now()
			c.mark(att, legs[winner].comp)
			c.healTier(legs[winner].tier)
			if winner > 0 && !fellBack {
				// Served from a deeper tier while a shallower replica
				// existed — the hedged form of a fallback read.
				c.rec.FallbackRead()
			}
			if byHedge[winner] {
				c.rec.HedgeWin()
			}
			if hedgedAny {
				c.rec.ObserveDuration(metrics.HistHedgeWait, now-start)
			}
			return nil
		case shutdownErr != nil:
			hs.decided = true
			return shutdownErr
		case len(degrade) > 0:
			// Apply side effects outside hs.mu, then rescan: legs may
			// have completed while we were unlocked.
			hs.mu.Unlock()
			for _, t := range degrade {
				c.degradeTier(t)
			}
			hs.mu.Lock()
		case running == 0 && launched == len(legs):
			// Every leg failed; the deepest error is the definitive one
			// (it already wraps ErrTierIO through retryIOAttr).
			hs.decided = true
			return hs.errs[launched-1]
		case running == 0:
			// The whole launched frontier failed before any deadline:
			// fall back to the next leg immediately.
			if !fellBack {
				fellBack = true
				c.rec.FallbackRead()
			}
			launch(false)
		case launched < len(legs):
			// A leg is still running and a deeper replica remains: wait
			// out the deepest launched leg's adaptive deadline, then
			// hedge.
			deep := launched - 1
			d := c.health.deadline(legs[deep].label, ck.size, c.p.HedgeDelayFloor)
			if d == 0 {
				// No calibration for this link class yet — no deadline to
				// arm. Wait for the leg to resolve; a failure still falls
				// back immediately through the frontier-failed case.
				hs.cond.Wait()
				break
			}
			dl := legStart[deep] + d
			if wait := dl - c.clk.Now(); wait > 0 {
				hs.cond.WaitTimeout(wait)
				break
			}
			next := legs[launched]
			hedgedAny = true
			c.rec.HedgeLaunched()
			c.lifecycle(ck.id, trace.LHedged, next.label,
				fmt.Sprintf("%s leg past its %v deadline", legs[deep].label, dl-legStart[deep]))
			launch(true)
		default:
			// Deepest leg is racing stragglers; nothing left to launch.
			hs.cond.Wait()
		}
	}
}
