package core

import (
	"fmt"

	"score/internal/fabric"
	"score/internal/metrics"
	"score/internal/trace"
)

// This file holds the chunked-streaming variants of the runtime's
// transfer charges (§4.3). Every helper degenerates to the exact seed
// sequence — identical retry labels, identical virtual-clock timing —
// when Params.ChunkSize is 0, so the monolithic configuration reproduces
// seed behavior bit for bit.
//
// Retry semantics differ between the two modes by design: the monolithic
// paths retry each hop independently (labels "pcie", "ssd", "pfs"),
// while a chunked stream is retried whole under a combined label
// ("pcie+ssd", "ssd+pcie", ...) because a pipeline's hops fail as one
// stream. Fault-injection campaigns that assert per-hop retry counts run
// with ChunkSize=0.

// observePipeline records a completed chunked stream in the metrics and,
// when tracing, as a post-hoc span (the chunk count and hidden time are
// only known at completion) linked into the checkpoint's causal flow.
// Monolithic transfers (Chunks <= 1) record nothing — their spans and
// counters are unchanged from the seed. Streams that finished without
// error feed the per-hop byte-conservation invariant; aborted streams
// carry partial hops and are excluded.
func (c *Client) observePipeline(track trace.Track, category, name string, flow int64, st fabric.PipelineStats, streamErr error) {
	if st.Chunks <= 1 {
		return
	}
	c.rec.Pipelined(st.Bytes, st.Duration, st.HopBusySum(), st.HopBytes, streamErr == nil)
	if c.p.Tracer != nil {
		end := c.clk.Now()
		c.p.Tracer.RecordFlow(c.p.GPU.ID(), track, category,
			fmt.Sprintf("%s [%d chunks, %v overlapped]", name, st.Chunks, st.Overlap()),
			end-st.Duration, st.Duration, flow)
	}
}

// copyD2HHost charges the GPU→host PCIe copy of a flush. With ChunkSize
// set it runs as an engine-held stream, so concurrent flush workers
// contend for the modeled copy engines; a single hop has no pipeline
// overlap, so the timing matches the monolithic copy.
func (c *Client) copyD2HHost(ck *checkpoint, att *attrib) error {
	c.lifecycle(ck.id, trace.LD2HStart, "host", "")
	var err error
	if cs := c.p.ChunkSize; cs > 0 {
		err = c.retryIOAttr(ck, att, metrics.CompXferPCIe, "pcie", "D2H copy", func() error {
			st, serr := c.p.GPU.TryStreamD2H(nil, ck.size, cs)
			c.observePipeline(trace.TrackD2H, "flush",
				fmt.Sprintf("flush %d gpu→host", ck.id), c.flowID(ck.id), st, serr)
			return serr
		})
	} else {
		err = c.retryIOAttr(ck, att, metrics.CompXferPCIe, "pcie", "D2H copy", func() error {
			_, cerr := c.p.GPU.TryCopyD2H(ck.size)
			return cerr
		})
	}
	if err == nil {
		c.lifecycle(ck.id, trace.LD2HEnd, "host", "")
	}
	return err
}

// transferDown charges the movement of ck's bytes onto the durable link
// dest ("ssd" or "pfs"); fromGPU prepends the PCIe hop. With ChunkSize
// set and a GPU source, both hops run as one chunked engine-held stream
// — the NVMe/PFS write of chunk i overlaps the PCIe copy of chunk i+1 —
// retried whole under the combined label. Otherwise the hops run
// store-and-forward with the seed's independent per-hop retries.
// Attribution: a combined stream is charged whole to the destination's
// transfer component; store-and-forward charges each hop separately.
func (c *Client) transferDown(ck *checkpoint, fromGPU bool, dest *fabric.Link, destLabel, destWhat string, att *attrib) error {
	cs := c.p.ChunkSize
	if fromGPU && cs > 0 {
		return c.retryIOAttr(ck, att, hopComp(destLabel), "pcie+"+destLabel, "chunked "+destWhat, func() error {
			st, err := c.p.GPU.TryStreamD2H(fabric.Path{dest}, ck.size, cs)
			c.observePipeline(trace.TrackD2H, "flush",
				fmt.Sprintf("flush %d gpu→%s", ck.id, destLabel), c.flowID(ck.id), st, err)
			return err
		})
	}
	if fromGPU {
		if err := c.retryIOAttr(ck, att, metrics.CompXferPCIe, "pcie", "D2H copy", func() error {
			_, err := c.p.GPU.TryCopyD2H(ck.size)
			return err
		}); err != nil {
			return err
		}
	}
	return c.retryIOAttr(ck, att, hopComp(destLabel), destLabel, destWhat, func() error {
		if cs > 0 {
			// Single hop: the pipelined form degenerates to the same
			// monolithic timing; routed through it for uniformity.
			_, err := fabric.Path{dest}.TryPipelinedTransfer(ck.size, cs)
			return err
		}
		_, err := dest.TryTransfer(ck.size)
		return err
	})
}

// readDeepToGPU charges a deep read (SSD preferred, PFS fallback —
// readDeep's degradation ladder) fused with the PCIe hop toward the GPU.
// With ChunkSize set the two hops run as one chunked engine-held stream,
// overlapping the NVMe/PFS read of chunk i+1 with the H2D copy of chunk
// i; otherwise it is the seed's sequential readDeep + copyH2D.
func (c *Client) readDeepToGPU(ck *checkpoint, att *attrib) error {
	cs := c.p.ChunkSize
	if cs <= 0 {
		if err := c.readDeep(ck, att); err != nil {
			return err
		}
		return c.copyH2D(ck, att)
	}
	if c.p.Hedge {
		// Hedged form: race whole chunked streams (each leg holds its
		// own copy engine). One candidate falls through to the ladder.
		if legs := c.deepLegsGPU(ck); len(legs) >= 2 {
			return c.hedgeRace(ck, att, legs)
		}
	}

	c.mu.Lock()
	onSSD := ck.dataOn(TierSSD)
	onPartner := ck.dataOn(TierPartner)
	onPFS := ck.dataOn(TierPFS)
	c.mu.Unlock()

	stream := func(label, srcName, comp string, inward fabric.Path) error {
		return c.retryIOAttr(ck, att, comp, label, "chunked deep read + H2D", func() error {
			st, err := c.p.GPU.TryStreamH2D(inward, ck.size, cs)
			c.observePipeline(trace.TrackPF, "prefetch",
				fmt.Sprintf("promote %d %s→gpu", ck.id, srcName), c.flowID(ck.id), st, err)
			return err
		})
	}
	if onSSD && (!c.tierDegraded(TierSSD) || !(onPartner || onPFS)) {
		legStart := c.clk.Now()
		err := stream("ssd+pcie", "ssd", metrics.CompXferSSD, fabric.Path{c.p.NVMe})
		if err == nil {
			c.observeHealth(TierSSD, ck.size, c.clk.Now()-legStart)
			c.healTier(TierSSD)
			return nil
		}
		if isShutdownErr(err) || !(onPartner || onPFS) {
			return err
		}
		c.degradeTier(TierSSD)
	}
	if onPartner && (!c.tierDegraded(TierPartner) || !onPFS) {
		if onSSD {
			c.rec.FallbackRead()
		}
		// Read direction reverses the replication path: partner NVMe →
		// partner NIC → local NIC, then the PCIe hop onto the GPU.
		rev := make(fabric.Path, len(c.p.PartnerPath))
		for i, l := range c.p.PartnerPath {
			rev[len(rev)-1-i] = l
		}
		legStart := c.clk.Now()
		err := stream("partner+pcie", "partner", metrics.CompXferPartner, rev)
		if err == nil {
			c.observeHealth(TierPartner, ck.size, c.clk.Now()-legStart)
			c.healTier(TierPartner)
			return nil
		}
		if isShutdownErr(err) || !onPFS {
			return err
		}
		c.degradeTier(TierPartner)
	}
	if onPFS {
		if onSSD || onPartner {
			c.rec.FallbackRead()
		}
		legStart := c.clk.Now()
		err := stream("pfs+pcie", "pfs", metrics.CompXferPFS, fabric.Path{c.p.PFS})
		if err == nil {
			c.observeHealth(TierPFS, ck.size, c.clk.Now()-legStart)
		}
		return err
	}
	return fmt.Errorf("%w: checkpoint %d has no readable replica below the host tier", ErrLost, ck.id)
}
