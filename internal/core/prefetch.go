package core

import (
	"errors"
	"fmt"

	"score/internal/cachebuf"
	"score/internal/lifecycle"
	"score/internal/metrics"
	"score/internal/trace"
)

// prefetcher is T_PF (§4.3.1): it walks the restore-order queue in hint
// order and promotes each checkpoint up the tier chain ahead of its
// restore. It never blocks inside a cache reservation — it uses
// TryReserve and parks on the client condition variable instead — so a
// cache saturated with pinned (prefetched-but-unconsumed) checkpoints
// throttles prefetching exactly as §2 condition 4 requires, without ever
// deadlocking deviating readers.
func (c *Client) prefetcher() {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return
		}
		if !c.started {
			c.cond.Wait()
			continue
		}
		id, ok := c.q.nextPrefetch()
		if !ok {
			c.cond.Wait()
			continue
		}
		ck := c.ckpts[id]
		if ck == nil {
			// Hinted but not written yet (hints may precede the
			// forward pass entirely, Listing 1): wait for the write.
			c.cond.Wait()
			continue
		}
		if ck.dataOn(TierGPU) || ck.consumed {
			c.q.advancePrefetch()
			continue
		}
		if rep := ck.replicas[TierGPU]; rep != nil {
			// The write (or another promotion) is landing on the GPU
			// right now; wait for it to settle.
			c.cond.Wait()
			continue
		}
		if ck.promoting {
			// A restore is already promoting it on demand.
			c.cond.Wait()
			continue
		}
		ck.promoting = true
		seen := c.events
		c.mu.Unlock()

		// The prefetcher's own time is hidden from the application by
		// design — no attribution target.
		promoted, err := c.promoteToGPU(ck, false, nil)

		c.mu.Lock()
		ck.promoting = false
		c.cond.Broadcast() // wake flag-waiters (restores of this ckpt)
		if err != nil {
			if errors.Is(err, ErrTierIO) || errors.Is(err, ErrLost) {
				// Tier trouble is not fatal to the run: skip this hint.
				// The on-demand restore retries with tier fallback and
				// surfaces a definitive error if the data is truly gone.
				c.q.advancePrefetch()
				c.bumpLocked()
				continue
			}
			c.mu.Unlock()
			c.fail(fmt.Errorf("core: prefetch of %d: %w", id, err))
			c.mu.Lock()
			continue
		}
		if promoted {
			c.q.advancePrefetch()
			c.bumpLocked()
			continue
		}
		// The GPU (or host) cache had no immediately evictable window:
		// wait for real progress (a consumption or flush completion),
		// then retry the same hint — prefetching must stay in restore
		// order to respect the pinning discipline. Waiting on the
		// generation counter (not just any broadcast) prevents
		// broadcast ping-pong with the host stager.
		for c.events == seen && !c.closed {
			c.cond.Wait()
		}
	}
}

// promoteOrBypass is the on-demand path taken by Restore when the
// checkpoint is not on the GPU. It first waits out any in-flight
// promotion of the same checkpoint; then attempts a promotion itself; if
// the caches are saturated with pinned fragments it serves the read by
// streaming straight to the application buffer (the deviation penalty
// path). Returns done=true when the read was fully served by the bypass.
func (c *Client) promoteOrBypass(ck *checkpoint, att *attrib) (done bool, err error) {
	c.mu.Lock()
	for ck.promoting || ck.stagingHost {
		// An in-flight promotion or SSD→host stage of this checkpoint
		// will land its data shortly; duplicating the transfer (or
		// bypassing to a direct NVMe read) would waste the bandwidth
		// it is already consuming.
		if c.closed {
			c.mu.Unlock()
			return false, ErrClosed
		}
		c.cond.Wait()
	}
	c.mu.Unlock()
	c.mark(att, metrics.CompPromoteWait)
	c.mu.Lock()
	if ck.dataOn(TierGPU) {
		c.mu.Unlock()
		return false, nil // promoted meanwhile; serve from GPU
	}
	ck.promoting = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		ck.promoting = false
		c.cond.Broadcast()
		c.mu.Unlock()
	}()

	promoted, err := c.promoteToGPU(ck, true, att)
	if err != nil {
		return false, err
	}
	if promoted {
		return false, nil // now on GPU; caller serves from there
	}

	// Bypass: no cacheable window available. Stream from the fastest
	// tier that has the data directly into the application buffer.
	c.mu.Lock()
	onHost := ck.dataOn(TierHost)
	onDeep := ck.dataOn(TierSSD) || ck.dataOn(TierPartner) || ck.dataOn(TierPFS)
	c.mu.Unlock()
	switch {
	case onHost:
		if err := c.copyH2D(ck, att); err != nil {
			return false, err
		}
	case onDeep:
		// Two hops (deep read + PCIe): fused into one chunked stream
		// when ChunkSize is set.
		if err := c.readDeepToGPU(ck, att); err != nil {
			return false, err
		}
	default:
		return false, fmt.Errorf("%w: checkpoint %d has no readable replica on any tier%s",
			ErrLost, ck.id, c.lostDetail(ck))
	}
	return true, nil
}

// copyH2D charges the PCIe hop toward the GPU with retries. With
// ChunkSize set the copy holds a copy engine (timing of the single hop
// is unchanged — only engine contention is added).
func (c *Client) copyH2D(ck *checkpoint, att *attrib) error {
	if cs := c.p.ChunkSize; cs > 0 {
		return c.retryIOAttr(ck, att, metrics.CompXferPCIe, "pcie", "H2D copy", func() error {
			st, err := c.p.GPU.TryStreamH2D(nil, ck.size, cs)
			c.observePipeline(trace.TrackPF, "prefetch",
				fmt.Sprintf("promote %d host→gpu", ck.id), c.flowID(ck.id), st, err)
			return err
		})
	}
	return c.retryIOAttr(ck, att, metrics.CompXferPCIe, "pcie", "H2D copy", func() error {
		_, err := c.p.GPU.TryCopyH2D(ck.size)
		return err
	})
}

// lostDetail annotates an ErrLost with the aborted-flush cause, if any.
func (c *Client) lostDetail(ck *checkpoint) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ck.flushAborted && ck.flushErr != nil {
		return fmt.Sprintf(" (flush aborted: %v)", ck.flushErr)
	}
	return ""
}

// promoteToGPU moves ck's data to the GPU cache, staging through the host
// cache when the source is the SSD/PFS. When block is false it only uses
// immediately evictable windows (TryReserve); when block is true it still
// uses TryReserve (blocking here could deadlock a deviating read behind
// pinned prefetches) but reports wouldBlock via promoted=false.
func (c *Client) promoteToGPU(ck *checkpoint, block bool, att *attrib) (promoted bool, err error) {
	_ = block // both paths use TryReserve; see doc comment
	start := c.clk.Now()
	defer func() {
		// Only completed promotions that actually moved data feed the
		// latency histogram; instant already-resident hits would skew it.
		if promoted && err == nil {
			if d := c.clk.Now() - start; d > 0 {
				c.rec.ObserveDuration(metrics.HistPrefetch, d)
			}
			c.lifecycle(ck.id, trace.LPrefetched, "gpu", "")
		}
	}()
	if tr := c.p.Tracer; tr != nil {
		defer tr.SpanFlow(c.p.GPU.ID(), trace.TrackPF, "prefetch",
			fmt.Sprintf("promote %d →gpu", ck.id), c.flowID(ck.id))()
	}
	// Stage 1: ensure the data is on the host tier.
	c.mu.Lock()
	onHost := ck.dataOn(TierHost)
	onLower := ck.dataOn(TierSSD) || ck.dataOn(TierPartner) || ck.dataOn(TierPFS)
	c.mu.Unlock()

	if !onHost && c.p.GPUDirectStorage && onLower {
		// Future-work mode: promote SSD → GPU directly. The NVMe read
		// and the PCIe hop are both charged; no host copy appears.
		return c.promoteDirect(ck, att)
	}
	if !onHost {
		if !onLower {
			// Data only on the GPU (or nowhere): if a GPU replica
			// exists it is either readable or a write is landing —
			// either way there is nothing to promote from below.
			c.mu.Lock()
			gpuRep := ck.replicas[TierGPU]
			onGPU := ck.dataOn(TierGPU)
			c.mu.Unlock()
			if onGPU {
				return true, nil
			}
			if gpuRep != nil {
				return false, nil // write in flight; retry after it lands
			}
			return false, fmt.Errorf("%w: checkpoint %d: no replica holds data%s",
				ErrLost, ck.id, c.lostDetail(ck))
		}
		ok, err := c.promoteSSDToHost(ck, att)
		if err != nil || !ok {
			return false, err
		}
	}

	// Stage 2: host → GPU.
	c.waitHostReady()
	c.mark(att, metrics.CompHostReady)
	c.mu.Lock()
	gpuRep := ck.replicas[TierGPU]
	if gpuRep != nil && gpuRep.hasData() {
		c.mu.Unlock()
		return true, nil
	}
	fresh := gpuRep == nil
	if fresh {
		gpuRep = &replica{tier: TierGPU, fsm: lifecycle.NewMachine(c.clk)}
		ck.replicas[TierGPU] = gpuRep
	}
	c.mu.Unlock()

	if _, err := c.prefetchBuf().TryReserve(cachebuf.ID(ck.id), ck.size); err != nil {
		c.mu.Lock()
		if fresh {
			delete(ck.replicas, TierGPU)
		}
		c.mu.Unlock()
		switch err {
		case cachebuf.ErrWouldBlock, cachebuf.ErrTooLarge, cachebuf.ErrDuplicate:
			return false, nil
		case cachebuf.ErrClosed:
			return false, ErrClosed
		default:
			return false, err
		}
	}

	// Pin the host source replica (READ_COMPLETE) while copying up, then
	// consume it ("the checkpoint is copied to the reserved space on the
	// faster tier and marked Read Completed, while the original is
	// marked Read Consumed", §4.3.2).
	hostRep := c.claimSource(ck, TierHost)

	gpuRep.fsm.MustTo(lifecycle.ReadInProgress)
	cpErr := c.copyH2D(ck, att)
	if cpErr != nil {
		// The upward copy kept failing: release the GPU reservation.
		// The pinned host source keeps the data (Consumed is readable
		// and, being durable below, evictable), so nothing is lost.
		c.dropReplica(ck, TierGPU)
	} else {
		gpuRep.fsm.MustTo(lifecycle.ReadComplete)
		c.notifyGPU()
	}

	if hostRep != nil {
		if err := hostRep.fsm.To(lifecycle.Consumed); err == nil {
			c.hstC.Notify()
		}
	}
	c.mu.Lock()
	c.cond.Broadcast()
	c.mu.Unlock()
	if cpErr != nil {
		return false, cpErr
	}
	return true, nil
}

// promoteDirect is the GPUDirect promotion path: SSD → GPU without a
// host replica. ok=false means the GPU cache had no immediately
// evictable window.
func (c *Client) promoteDirect(ck *checkpoint, att *attrib) (promoted bool, err error) {
	c.mu.Lock()
	gpuRep := ck.replicas[TierGPU]
	if gpuRep != nil && gpuRep.hasData() {
		c.mu.Unlock()
		return true, nil
	}
	fresh := gpuRep == nil
	if fresh {
		gpuRep = &replica{tier: TierGPU, fsm: lifecycle.NewMachine(c.clk)}
		ck.replicas[TierGPU] = gpuRep
	}
	c.mu.Unlock()

	if _, err := c.prefetchBuf().TryReserve(cachebuf.ID(ck.id), ck.size); err != nil {
		c.mu.Lock()
		if fresh {
			delete(ck.replicas, TierGPU)
		}
		c.mu.Unlock()
		switch err {
		case cachebuf.ErrWouldBlock, cachebuf.ErrTooLarge, cachebuf.ErrDuplicate:
			return false, nil
		case cachebuf.ErrClosed:
			return false, ErrClosed
		default:
			return false, err
		}
	}
	gpuRep.fsm.MustTo(lifecycle.ReadInProgress)
	// Deep read + PCIe hop of the direct path; one chunked stream when
	// ChunkSize is set.
	err = c.readDeepToGPU(ck, att)
	if err != nil {
		c.dropReplica(ck, TierGPU)
		c.mu.Lock()
		c.bumpLocked()
		c.mu.Unlock()
		return false, err
	}
	gpuRep.fsm.MustTo(lifecycle.ReadComplete)
	c.notifyGPU()
	c.mu.Lock()
	c.bumpLocked()
	c.mu.Unlock()
	return true, nil
}

// promoteSSDToHost stages a checkpoint from the SSD/PFS into the host
// cache. ok=false means the host cache had no immediately evictable
// window.
func (c *Client) promoteSSDToHost(ck *checkpoint, att *attrib) (ok bool, err error) {
	c.waitHostReady()
	c.mark(att, metrics.CompHostReady)
	c.mu.Lock()
	hostRep := ck.replicas[TierHost]
	if hostRep != nil && hostRep.hasData() {
		c.mu.Unlock()
		return true, nil
	}
	fresh := hostRep == nil
	if fresh {
		hostRep = &replica{tier: TierHost, fsm: lifecycle.NewMachine(c.clk)}
		ck.replicas[TierHost] = hostRep
	}
	c.mu.Unlock()

	if _, err := c.hstC.TryReserve(c.hostKey(ck.id), ck.size); err != nil {
		c.mu.Lock()
		if fresh {
			delete(ck.replicas, TierHost)
		}
		c.mu.Unlock()
		switch err {
		case cachebuf.ErrWouldBlock, cachebuf.ErrTooLarge, cachebuf.ErrDuplicate:
			return false, nil
		case cachebuf.ErrClosed:
			return false, ErrClosed
		default:
			return false, err
		}
	}
	hostRep.fsm.MustTo(lifecycle.ReadInProgress) // legal from Init and Consumed
	if err := c.readDeep(ck, att); err != nil {  // SSD → host staging read (PFS fallback)
		c.mu.Lock()
		if ck.replicas[TierHost] == hostRep {
			delete(ck.replicas, TierHost)
		}
		c.mu.Unlock()
		c.hstC.Release(c.hostKey(ck.id))
		c.hstC.Notify()
		return false, err
	}
	hostRep.fsm.MustTo(lifecycle.ReadComplete)
	c.hstC.Notify()
	c.mu.Lock()
	c.cond.Broadcast()
	c.mu.Unlock()
	return true, nil
}

// claimSource pins tier's replica in READ_COMPLETE under the buffer lock
// so eviction cannot take it while we copy from it. Returns nil when the
// replica is not resident (e.g. the data also lives on the SSD and the
// host copy was evicted mid-flight — the copy then proceeds from DRAM
// semantics-wise; timing is unaffected since the transfer was already
// charged).
func (c *Client) claimSource(ck *checkpoint, tier Tier) *replica {
	type target struct {
		buf *cachebuf.Buffer
		key cachebuf.ID
	}
	targets := []target{{c.hstC, c.hostKey(ck.id)}}
	if tier == TierGPU {
		targets = []target{{c.gpuC, cachebuf.ID(ck.id)}}
		if c.gpuP != nil {
			targets = append(targets, target{c.gpuP, cachebuf.ID(ck.id)})
		}
	}
	c.mu.Lock()
	rep := ck.replicas[tier]
	c.mu.Unlock()
	if rep == nil {
		return nil
	}
	claim := func() {
		if rep.fsm.State() != lifecycle.ReadComplete {
			if err := rep.fsm.To(lifecycle.ReadComplete); err != nil {
				rep = nil // not claimable (mid-write); treat as absent
			}
		}
	}
	for _, tg := range targets {
		if tg.buf.IfResident(tg.key, claim) {
			return rep
		}
	}
	return nil
}
