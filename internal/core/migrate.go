package core

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"score/internal/ckptstore"
	"score/internal/fabric"
	"score/internal/metrics"
	"score/internal/trace"
)

// Live tier migration (the scheduling-events layer). Migrate copies the
// rank's durable SSD tier to a successor node's store over the NIC
// fabric — the same inter-node path partner-copy replication crosses —
// while foreground traffic keeps running. The copy is catch-up-round
// based (versions landing mid-round are picked up next round) and ends
// with a cutover validation that re-reads every source version and
// byte-compares it against the successor's copy: the successor either
// restores bit-exactly or the caller gets a definitive error, never a
// silently divergent store.

// ErrMigrationIncomplete: the migration could not converge (foreground
// flushes kept outrunning the catch-up rounds, or a version could not be
// copied or validated within the round budget). Definitive — the
// successor store must not be cut over to.
var ErrMigrationIncomplete = errors.New("core: migration did not converge to a validated cutover")

// MigrationParams configures one live migration.
type MigrationParams struct {
	// Dest is the successor node's store; required.
	Dest *ckptstore.Store
	// Path is the fabric route the copies cross (local NVMe read → local
	// NIC → successor NIC → successor NVMe); required.
	Path fabric.Path
	// FaultHook, when set, is consulted before each per-version copy —
	// the migration fault site. A non-nil return fails that copy attempt
	// (retried under the client's retry policy).
	FaultHook func(id, size int64) error
	// MaxRounds bounds the catch-up rounds (and validation re-checks);
	// 0 takes the default of 8.
	MaxRounds int
}

// MigrationReport summarizes one migration attempt.
type MigrationReport struct {
	// Versions and Bytes count what this migration copied (versions the
	// successor already held are skipped and not counted).
	Versions int
	Bytes    int64
	// Rounds is how many catch-up rounds ran (validation included).
	Rounds int
	// Validated reports whether the cutover validation passed: every
	// source version byte-identical on the successor.
	Validated bool
	// Started and Finished bound the migration on the virtual timeline.
	Started, Finished time.Duration
}

// Migrate copies this rank's durable store to a successor over the NIC
// fabric, concurrently with foreground traffic, and validates the
// cutover. On success the returned report has Validated=true; on
// failure the error is definitive (ErrMigrationIncomplete, a shutdown
// error, or the underlying I/O failure after retries exhausted).
func (c *Client) Migrate(p MigrationParams) (MigrationReport, error) {
	rep := MigrationReport{Started: c.clk.Now()}
	if c.p.Store == nil {
		return rep, errors.New("core: migration requires a durable SSD store")
	}
	if p.Dest == nil {
		return rep, errors.New("core: migration requires a destination store")
	}
	if len(p.Path) == 0 {
		return rep, errors.New("core: migration requires a fabric path")
	}
	maxRounds := p.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 8
	}
	c.rec.MigrationStart()
	c.lifecycle(-1, trace.LMigrateStart, "", fmt.Sprintf("%d versions resident", len(c.p.Store.IDs())))

	finish := func(err error) (MigrationReport, error) {
		rep.Finished = c.clk.Now()
		detail := "validated"
		if err != nil {
			detail = err.Error()
		}
		c.lifecycle(-1, trace.LMigrateEnd, "",
			fmt.Sprintf("%d versions, %d bytes, %d rounds: %s", rep.Versions, rep.Bytes, rep.Rounds, detail))
		return rep, err
	}

	// Catch-up rounds: copy every source version the successor lacks.
	// Foreground flushes landing mid-round appear in the next round's
	// listing; convergence is a round that copies nothing.
	for {
		if rep.Rounds >= maxRounds {
			return finish(fmt.Errorf("%w: %d catch-up rounds did not converge", ErrMigrationIncomplete, rep.Rounds))
		}
		rep.Rounds++
		copied, err := c.migrateRound(p)
		if err != nil {
			return finish(err)
		}
		if copied.versions == 0 {
			break
		}
		rep.Versions += copied.versions
		rep.Bytes += copied.bytes
	}

	// Cutover validation: re-read every source version and byte-compare
	// against the successor. New versions appearing mid-validation send
	// the migration back to catch-up (bounded by maxRounds).
	for {
		clean, err := c.migrateValidate(p)
		if err != nil {
			return finish(err)
		}
		if clean {
			rep.Validated = true
			return finish(nil)
		}
		if rep.Rounds >= maxRounds {
			return finish(fmt.Errorf("%w: validation kept finding uncopied versions after %d rounds",
				ErrMigrationIncomplete, rep.Rounds))
		}
		rep.Rounds++
		copied, err := c.migrateRound(p)
		if err != nil {
			return finish(err)
		}
		rep.Versions += copied.versions
		rep.Bytes += copied.bytes
	}
}

// migrateTally counts one catch-up round's work.
type migrateTally struct {
	versions int
	bytes    int64
}

// migrateRound copies every source version the destination lacks, in
// ascending version order. Returns the tally; an error aborts the round
// (shutdown, or a copy that failed through every retry).
func (c *Client) migrateRound(p MigrationParams) (migrateTally, error) {
	var tally migrateTally
	for _, id := range c.p.Store.IDs() {
		if err := c.liveErr(); err != nil {
			return tally, err
		}
		if p.Dest.Has(id) {
			continue
		}
		size, err := c.p.Store.Size(id)
		if err != nil {
			continue // scrubbed or deleted underneath us; next round re-lists
		}
		if err := c.migrateCopy(p, id, size); err != nil {
			if isShutdownErr(err) {
				return tally, err
			}
			c.rec.MigrationFailure()
			return tally, fmt.Errorf("core: migrating version %d: %w", id, err)
		}
		tally.versions++
		tally.bytes += size
	}
	return tally, nil
}

// migrateCopy moves one version: charge the fabric path (chunk-pipelined
// when the client streams chunked), then a verified read from the source
// store and a durable put on the successor — all under the client's
// retry policy, with the injection hook consulted per attempt.
func (c *Client) migrateCopy(p MigrationParams, id, size int64) error {
	start := c.clk.Now()
	err := c.retryIO("migrate", fmt.Sprintf("version %d copy", id), func() error {
		if p.FaultHook != nil {
			if err := p.FaultHook(id, size); err != nil {
				return err
			}
		}
		if cs := c.p.ChunkSize; cs > 0 {
			if _, err := p.Path.TryPipelinedTransfer(size, cs); err != nil {
				return err
			}
		} else if _, err := p.Path.TryTransfer(size); err != nil {
			return err
		}
		data, err := c.p.Store.Get(id)
		if err != nil {
			return err
		}
		if err := p.Dest.Put(id, data); err != nil && err != ckptstore.ErrExists {
			return err
		}
		return nil
	})
	if err != nil {
		return err
	}
	c.rec.MigrationCopy(size)
	c.rec.ObserveDuration(metrics.HistMigrateCopy, c.clk.Now()-start)
	c.lifecycle(ID(id), trace.LMigrated, "", "")
	return nil
}

// migrateValidate byte-compares every source version against the
// successor's copy. Returns clean=false when an uncopied version
// appeared (another catch-up round is needed); a read failure or a
// mismatch is a definitive error — the stores' CRC layer makes a Get
// either correct bytes or an explicit failure, so a mismatch here means
// the two stores genuinely diverged.
func (c *Client) migrateValidate(p MigrationParams) (clean bool, err error) {
	for _, id := range c.p.Store.IDs() {
		if err := c.liveErr(); err != nil {
			return false, err
		}
		if !p.Dest.Has(id) {
			return false, nil
		}
		src, err := c.p.Store.Get(id)
		if err != nil {
			return false, fmt.Errorf("core: validating migration of version %d: source read: %w", id, err)
		}
		dst, err := p.Dest.Get(id)
		if err != nil {
			return false, fmt.Errorf("core: validating migration of version %d: successor read: %w", id, err)
		}
		if !bytes.Equal(src, dst) {
			return false, fmt.Errorf("%w: version %d differs on the successor", ErrMigrationIncomplete, id)
		}
	}
	return true, nil
}
