package core

import (
	"time"

	"score/internal/cachebuf"
	"score/internal/lifecycle"
	"score/internal/trace"
)

// tierOracle adapts the client's replica state to the cachebuf eviction
// policy for one tier. It is invoked under the buffer's lock and may take
// Client.mu (never the reverse — see the lock-ordering note on Client).
type tierOracle struct {
	c    *Client
	tier Tier
}

// Evictable implements cachebuf.Oracle: a replica may be evicted when its
// life cycle allows it (FLUSHED or CONSUMED, Fig. 1) and no data would be
// lost — a readable copy exists on a slower tier, or the checkpoint was
// consumed and is discardable (§2 condition 5).
func (o *tierOracle) Evictable(id cachebuf.ID) bool {
	o.c.mu.Lock()
	defer o.c.mu.Unlock()
	ck := o.c.ckpts[ID(id)]
	if ck == nil {
		return true // no record: stale fragment, free to reclaim
	}
	rep := ck.replicas[o.tier]
	if rep == nil {
		return true
	}
	st := rep.fsm.State()
	// flushAborted is the fail-open escape hatch: when every durable
	// route failed, the replica is sacrificial — evicting it loses the
	// checkpoint (Restore reports ErrLost) but keeps the cache live.
	safe := ck.durableBelow(o.tier) || (ck.consumed && o.c.p.DiscardAfterRestore) ||
		ck.flushAborted
	if o.c.p.NoPinning && st == lifecycle.ReadComplete && safe {
		// §4.1.3 ablation: without the unified life cycle, a
		// prefetched-but-unconsumed replica may be thrashed out.
		return true
	}
	return st.Evictable() && safe
}

// TimeToEvictable implements the paper's state_ts estimate: 0 when already
// evictable; the predicted flush completion time when a flush is pending
// ("we prefer the checkpoint whose estimated flush completion time is the
// smallest based on its size and the bandwidth between the cache tiers");
// pinned (ok=false) when a read or prefetch holds the replica.
func (o *tierOracle) TimeToEvictable(id cachebuf.ID) (time.Duration, bool) {
	o.c.mu.Lock()
	ck := o.c.ckpts[ID(id)]
	if ck == nil {
		o.c.mu.Unlock()
		return 0, true
	}
	rep := ck.replicas[o.tier]
	if rep == nil {
		o.c.mu.Unlock()
		return 0, true
	}
	discardable := (ck.consumed && o.c.p.DiscardAfterRestore) || ck.flushAborted
	durable := ck.durableBelow(o.tier)
	size := ck.size
	o.c.mu.Unlock()

	switch rep.fsm.State() {
	case lifecycle.Flushed, lifecycle.Consumed:
		if durable || discardable {
			return 0, true
		}
		// Evictable by life cycle but the slower copy is not ready
		// yet: estimate the remaining flush time.
		return o.flushEstimate(size), true
	case lifecycle.WriteComplete:
		if discardable {
			return 0, true
		}
		return o.flushEstimate(size), true
	case lifecycle.ReadComplete:
		if o.c.p.NoPinning && (durable || discardable) {
			return 0, true // §4.1.3 ablation: thrashing allowed
		}
		return 0, false // pinned until consumed (§2 condition 4)
	default:
		// INIT, WRITE_IN_PROGRESS, READ_IN_PROGRESS: pinned — a
		// transfer is in flight.
		return 0, false
	}
}

// flushEstimate predicts how long moving size bytes to the next tier will
// take under current link load.
func (o *tierOracle) flushEstimate(size int64) time.Duration {
	switch o.tier {
	case TierGPU:
		return o.c.p.GPU.PCIeLink().Estimate(size)
	case TierHost:
		return o.c.p.NVMe.Estimate(size)
	default:
		return 0
	}
}

// PrefetchDistance implements the s_score input: distance of id's hint
// from the head of the restore-order queue.
func (o *tierOracle) PrefetchDistance(id cachebuf.ID) int {
	o.c.mu.Lock()
	defer o.c.mu.Unlock()
	return o.c.q.distance(ID(id))
}

// Evicted removes the replica record when the buffer discards it.
func (o *tierOracle) Evicted(id cachebuf.ID) {
	o.c.mu.Lock()
	defer o.c.mu.Unlock()
	if ck := o.c.ckpts[ID(id)]; ck != nil {
		delete(ck.replicas, o.tier)
		if o.tier == TierHost {
			o.c.releaseStagedLocked(ck)
		}
		o.c.lifecycle(ck.id, trace.LEvicted, o.tier.String(), "")
	}
}
