package core

import (
	"sort"
	"sync"
	"time"
)

// This file implements the per-link-class health estimator behind the
// gray-failure machinery: online latency quantiles drive the adaptive
// hedge/stall deadlines, and an EWMA slowdown score drives
// quarantine-on-breach (generalizing the error-triggered degradation of
// retry.go to faults that never return an error, only time).

const (
	// healthRing bounds the per-class window of recent slowdown ratios
	// the quantile estimate is computed over.
	healthRing = 64
	// healthAlpha is the EWMA smoothing factor for the slowdown score.
	healthAlpha = 0.3
	// healthBreach is the EWMA slowdown ratio beyond which a link class
	// is considered gray-failed and its tier quarantined. A healthy link
	// scores ~1.0 (observed latency equals the best ever observed).
	healthBreach = 8.0
	// healthMinSamples gates breach decisions: a class is never
	// quarantined off fewer observations than this.
	healthMinSamples = 4
	// hedgeHeadroom multiplies the quantile estimate when deriving a
	// deadline, so ordinary tail noise does not trigger hedges.
	hedgeHeadroom = 2.0
)

// classHealth tracks one link class ("ssd", "partner", "pfs").
type classHealth struct {
	floor   float64 // best observed ns-per-byte — the nominal link speed
	ring    [healthRing]float64
	n, next int
	ewma    float64 // EWMA of the slowdown ratio; 1.0 = nominal
}

// tierHealth is the client-wide estimator, one classHealth per link
// class. Observations are pure state updates (no clock interaction), so
// feeding it on every successful transfer cannot perturb scheduling —
// the hedging-off configuration stays byte-identical to the seed.
type tierHealth struct {
	mu      sync.Mutex
	classes map[string]*classHealth
}

func newTierHealth() *tierHealth {
	return &tierHealth{classes: map[string]*classHealth{}}
}

// observe folds one successful transfer of size bytes taking d into the
// class estimate.
func (h *tierHealth) observe(class string, size int64, d time.Duration) {
	if size <= 0 || d <= 0 {
		return
	}
	perByte := float64(d) / float64(size)
	h.mu.Lock()
	defer h.mu.Unlock()
	ch := h.classes[class]
	if ch == nil {
		ch = &classHealth{floor: perByte, ewma: 1}
		h.classes[class] = ch
	}
	if perByte < ch.floor {
		ch.floor = perByte
	}
	ratio := perByte / ch.floor
	ch.ring[ch.next] = ratio
	ch.next = (ch.next + 1) % healthRing
	if ch.n < healthRing {
		ch.n++
	}
	ch.ewma = (1-healthAlpha)*ch.ewma + healthAlpha*ratio
}

// deadline returns the adaptive transfer deadline for moving size bytes
// over class: the windowed median slowdown ratio times the nominal
// per-byte latency times the size, with headroom, clamped from below by
// floor (Params.HedgeDelayFloor). With no samples yet it returns 0 —
// "no deadline": the estimator has to earn the right to call a transfer
// slow, so uncalibrated operations are never hedged or flagged as
// stalled on a guess.
//
// The quantile is deliberately the median, not a tail one: the deadline
// models what a healthy transfer typically costs, and the tail of the
// recent window is exactly what a gray fault pollutes first (hedge
// losers completing mid-run observe their own 20× reads — a single such
// sample IS the window's P99, and a tail-based deadline would learn the
// straggler's latency as the new normal and stop firing). The median
// stays honest until more than half the window is sick, by which point
// the EWMA has long since breached and quarantined the tier. The cap at
// healthBreach bounds the damage even then.
func (h *tierHealth) deadline(class string, size int64, floor time.Duration) time.Duration {
	h.mu.Lock()
	var d time.Duration
	if ch := h.classes[class]; ch != nil && ch.n > 0 {
		ratios := make([]float64, ch.n)
		copy(ratios, ch.ring[:ch.n])
		sort.Float64s(ratios)
		q := ratios[len(ratios)/2]
		if q > healthBreach {
			q = healthBreach
		}
		d = time.Duration(q * ch.floor * float64(size) * hedgeHeadroom)
	}
	h.mu.Unlock()
	if d == 0 {
		return 0
	}
	if d < floor {
		d = floor
	}
	return d
}

// score returns the class's EWMA slowdown ratio (1.0 = nominal); 0 when
// the class has no observations yet.
func (h *tierHealth) score(class string) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch := h.classes[class]
	if ch == nil {
		return 0
	}
	return ch.ewma
}

// breached reports whether the class's EWMA slowdown has crossed the
// quarantine threshold (with enough samples to trust it).
func (h *tierHealth) breached(class string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch := h.classes[class]
	return ch != nil && ch.n >= healthMinSamples && ch.ewma >= healthBreach
}

// healthClass maps a deep tier to its estimator class; "" for tiers the
// estimator does not track (GPU/host transfers are not hedged).
func healthClass(t Tier) string {
	switch t {
	case TierSSD, TierPartner, TierPFS:
		return t.String()
	}
	return ""
}

// observeHealth feeds a successful transfer into the estimator and, when
// gray-failure handling is enabled, quarantines the tier if its health
// score breached: the operation succeeded, but so slowly that the class
// is effectively failed. The quarantine rides the existing degradation
// machinery, so probe-based reinstatement (tierDegraded probation +
// healTier) applies unchanged. Pure observation when hedging is off.
func (c *Client) observeHealth(t Tier, size int64, d time.Duration) {
	class := healthClass(t)
	if class == "" {
		return
	}
	c.health.observe(class, size, d)
	if !c.p.Hedge || !c.health.breached(class) {
		return
	}
	if c.degradeTier(t) {
		// degradeTier already ledgered the transition; the counter marks
		// it as health-triggered rather than error-triggered.
		c.rec.HealthQuarantine()
	}
}
