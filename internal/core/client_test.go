package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"score/internal/device"
	"score/internal/fabric"
	"score/internal/payload"
	"score/internal/simclock"
)

const MB = 1 << 20

// testRig wires one client onto a one-node cluster with configurable
// cache sizes. Bandwidths mirror the DGX-A100 shape but stay exact for
// assertions: D2D 1000 MB/ms is replaced by round numbers.
type testRig struct {
	clk     *simclock.Virtual
	cluster *fabric.Cluster
	gpu     *device.GPU
	client  *Client
}

func newRig(t *testing.T, clk *simclock.Virtual, mutate func(*Params)) *testRig {
	t.Helper()
	cfg := fabric.NodeConfig{
		GPUs:          2,
		D2DBandwidth:  1000 * MB, // 1000 MB/s → 1ms per MB... scaled small
		PCIeBandwidth: 100 * MB,
		GPUsPerPCIe:   2,
		NVMeDrives:    1,
		NVMePerDrive:  25 * MB,
		PFSBandwidth:  10 * MB,
		LinkLatency:   0,
	}
	cluster, err := fabric.NewCluster(clk, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2d, pcie := cluster.Nodes[0].GPULinks(0)
	gpu := device.NewGPU(clk, 0, 64*MB, d2d, pcie, device.AllocCosts{
		DeviceBytesPerSec:     1000 * MB,
		PinnedHostBytesPerSec: 400 * MB,
	})
	p := Params{
		Clock:               clk,
		GPU:                 gpu,
		NVMe:                cluster.Nodes[0].NVMe,
		PFS:                 cluster.PFS,
		GPUCacheSize:        4 * MB,
		HostCacheSize:       16 * MB,
		DiscardAfterRestore: false,
		AutoStartPrefetch:   false,
		AsyncHostInit:       false, // charge init upfront: deterministic tests
	}
	if mutate != nil {
		mutate(&p)
	}
	client, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{clk: clk, cluster: cluster, gpu: gpu, client: client}
}

func run(t *testing.T, fn func(clk *simclock.Virtual)) {
	t.Helper()
	clk := simclock.NewVirtual()
	clk.Run(func() { fn(clk) })
}

func pay(size int64) payload.Payload { return payload.NewVirtual(size) }

func TestCheckpointRestoreRoundTripRealData(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		data := make([]byte, 256)
		for i := range data {
			data[i] = byte(i * 7)
		}
		in := payload.NewReal(data)
		if err := r.client.Checkpoint(0, in); err != nil {
			t.Fatal(err)
		}
		out, err := r.client.Restore(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := payload.Verify(in, out.Bytes()); err != nil {
			t.Errorf("restored payload corrupt: %v", err)
		}
	})
}

func TestCheckpointBlocksOnlyForGPUCopy(t *testing.T) {
	// §2 condition 1: the application blocks only for the copy into the
	// GPU cache (D2D at 1000 MB/s), not the PCIe flush (100 MB/s).
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		start := clk.Now()
		if err := r.client.Checkpoint(0, pay(2*MB)); err != nil {
			t.Fatal(err)
		}
		blocked := clk.Now() - start
		d2dTime := 2 * time.Millisecond   // 2MB at 1000MB/s
		pcieTime := 20 * time.Millisecond // 2MB at 100MB/s
		if blocked > d2dTime*3/2 {
			t.Errorf("checkpoint blocked %v; want ~%v (D2D only, flush is async)", blocked, d2dTime)
		}
		if blocked >= pcieTime {
			t.Errorf("checkpoint blocked %v >= PCIe flush time %v: flush not asynchronous", blocked, pcieTime)
		}
	})
}

func TestReadAfterWriteWhileFlushPending(t *testing.T) {
	// §2 condition 2: a process may read back a checkpoint even if its
	// asynchronous flushes are still pending.
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		if err := r.client.Checkpoint(0, pay(2*MB)); err != nil {
			t.Fatal(err)
		}
		// Immediately restore: the flush (20ms PCIe + 80ms NVMe) cannot
		// have finished.
		start := clk.Now()
		if _, err := r.client.Restore(0); err != nil {
			t.Fatal(err)
		}
		blocked := clk.Now() - start
		if blocked > 5*time.Millisecond {
			t.Errorf("read-after-write blocked %v; want ~2ms (served from GPU cache)", blocked)
		}
	})
}

func TestWaitFlushDrainsChainToSSD(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		for i := ID(0); i < 4; i++ {
			if err := r.client.Checkpoint(i, pay(1*MB)); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		r.client.mu.Lock()
		defer r.client.mu.Unlock()
		for i := ID(0); i < 4; i++ {
			ck := r.client.ckpts[i]
			if !ck.dataOn(TierSSD) {
				t.Errorf("checkpoint %d not on SSD after WaitFlush", i)
			}
		}
	})
}

func TestEvictionCascadeBeyondGPUCache(t *testing.T) {
	// 12 checkpoints of 1MB through a 4MB GPU cache and 16MB host
	// cache: all writes must succeed, and every checkpoint must remain
	// restorable from some tier.
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		for i := ID(0); i < 12; i++ {
			if err := r.client.Checkpoint(i, pay(1*MB)); err != nil {
				t.Fatalf("checkpoint %d: %v", i, err)
			}
			r.gpu.Compute(time.Millisecond)
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		gpuRes, _ := r.client.Resident()
		if gpuRes > 4 {
			t.Errorf("GPU cache holds %d checkpoints, capacity is 4", gpuRes)
		}
		for i := ID(11); i >= 0; i-- {
			if _, err := r.client.Restore(i); err != nil {
				t.Fatalf("restore %d: %v", i, err)
			}
		}
		if err := r.client.Err(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPrefetchingImprovesReverseRestore(t *testing.T) {
	// The Listing 1 pattern: hints for reverse order, forward pass,
	// PrefetchStart, backward pass. Compare restore blocking with and
	// without hints: hints must strictly reduce total blocked time.
	const n = 12
	runShot := func(hints bool) time.Duration {
		var blocked time.Duration
		clk := simclock.NewVirtual()
		clk.Run(func() {
			r := newRig(t, clk, nil)
			defer r.client.Close()
			if hints {
				for i := n - 1; i >= 0; i-- {
					r.client.PrefetchEnqueue(ID(i))
				}
			}
			for i := ID(0); i < n; i++ {
				if err := r.client.Checkpoint(i, pay(1*MB)); err != nil {
					t.Fatal(err)
				}
				r.gpu.Compute(time.Millisecond)
			}
			if err := r.client.WaitFlush(); err != nil {
				t.Fatal(err)
			}
			r.client.PrefetchStart()
			for i := ID(n - 1); i >= 0; i-- {
				start := clk.Now()
				if _, err := r.client.Restore(i); err != nil {
					t.Fatal(err)
				}
				blocked += clk.Now() - start
				r.gpu.Compute(5 * time.Millisecond) // compute window for prefetch
			}
			if err := r.client.Err(); err != nil {
				t.Fatal(err)
			}
		})
		return blocked
	}
	withHints := runShot(true)
	withoutHints := runShot(false)
	if withHints >= withoutHints {
		t.Errorf("hinted restore blocked %v, unhinted %v: prefetching should help", withHints, withoutHints)
	}
}

func TestPrefetchGatedUntilStart(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		for i := ID(0); i < 8; i++ {
			r.client.PrefetchEnqueue(i)
		}
		for i := ID(0); i < 8; i++ {
			if err := r.client.Checkpoint(i, pay(1*MB)); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		// Checkpoints 0..3 were evicted from the GPU (4MB cache);
		// without PrefetchStart they must stay off the GPU.
		clk.Sleep(time.Second)
		r.client.mu.Lock()
		early := r.client.ckpts[0].dataOn(TierGPU)
		r.client.mu.Unlock()
		if early {
			t.Error("checkpoint 0 promoted to GPU before PrefetchStart")
		}
		r.client.PrefetchStart()
		clk.Sleep(time.Second)
		r.client.mu.Lock()
		after := r.client.ckpts[0].dataOn(TierGPU)
		r.client.mu.Unlock()
		if !after {
			t.Error("checkpoint 0 not prefetched after PrefetchStart")
		}
	})
}

func TestPrefetchedPinnedUntilConsumed(t *testing.T) {
	// §2 condition 4: once prefetched to the GPU cache, a checkpoint is
	// only evictable after consumption. Fill the cache with prefetched
	// checkpoints, then write a new one: the write must wait for (or
	// avoid) the pinned entries.
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		for i := ID(0); i < 8; i++ {
			r.client.PrefetchEnqueue(i)
		}
		for i := ID(0); i < 8; i++ {
			if err := r.client.Checkpoint(i, pay(1*MB)); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		r.client.PrefetchStart()
		clk.Sleep(2 * time.Second) // prefetcher fills the 4MB GPU cache
		r.client.mu.Lock()
		pinned := 0
		for i := ID(0); i < 8; i++ {
			if r.client.ckpts[i].dataOn(TierGPU) && !r.client.ckpts[i].consumed {
				pinned++
			}
		}
		r.client.mu.Unlock()
		if pinned == 0 {
			t.Fatal("no prefetched checkpoints on the GPU; test premise broken")
		}
		// Consume them in hint order; prefetcher should keep the cache
		// warm and every restore should be near-instant from the GPU.
		for i := ID(0); i < 8; i++ {
			if _, err := r.client.Restore(i); err != nil {
				t.Fatal(err)
			}
			r.gpu.Compute(5 * time.Millisecond)
		}
		sum := r.client.Metrics().Snapshot()
		if got := sum.RestoreOps; got != 8 {
			t.Fatalf("restore ops = %d, want 8", got)
		}
	})
}

func TestDeviatingReadServedAndCounted(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		for i := ID(0); i < 6; i++ {
			r.client.PrefetchEnqueue(i)
		}
		for i := ID(0); i < 6; i++ {
			if err := r.client.Checkpoint(i, pay(1*MB)); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		r.client.PrefetchStart()
		clk.Sleep(time.Second)
		// Deviate: read 5 first even though the hints say 0 is next.
		if _, err := r.client.Restore(5); err != nil {
			t.Fatalf("deviating restore: %v", err)
		}
		sum := r.client.Metrics().Snapshot()
		if sum.DeviationReads != 1 {
			t.Errorf("deviation reads = %d, want 1", sum.DeviationReads)
		}
		// The rest still restore fine in hint order.
		for i := ID(0); i < 5; i++ {
			if _, err := r.client.Restore(i); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.client.Err(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDiscardCancelsPendingFlushes(t *testing.T) {
	// §2 condition 5: consumed+discardable checkpoints need not finish
	// their flushes. Restore immediately after writing (flush still in
	// the queue) and verify no SSD replica is ever materialized.
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, func(p *Params) { p.DiscardAfterRestore = true })
		defer r.client.Close()
		if err := r.client.Checkpoint(0, pay(1*MB)); err != nil {
			t.Fatal(err)
		}
		if _, err := r.client.Restore(0); err != nil {
			t.Fatal(err)
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		r.client.mu.Lock()
		onSSD := r.client.ckpts[0].dataOn(TierSSD)
		r.client.mu.Unlock()
		if onSSD {
			t.Error("discarded checkpoint was flushed to SSD anyway")
		}
	})
}

func TestAPIErrors(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		if err := r.client.Checkpoint(0, pay(MB)); err != nil {
			t.Fatal(err)
		}
		if err := r.client.Checkpoint(0, pay(MB)); !errors.Is(err, ErrDuplicateCheckpoint) {
			t.Errorf("duplicate checkpoint: err = %v, want ErrDuplicateCheckpoint", err)
		}
		if err := r.client.Checkpoint(-1, pay(MB)); err == nil {
			t.Error("negative id accepted")
		}
		if _, err := r.client.Restore(42); !errors.Is(err, ErrUnknownCheckpoint) {
			t.Errorf("unknown restore: err = %v, want ErrUnknownCheckpoint", err)
		}
		if size, err := r.client.RestoreSize(0); err != nil || size != MB {
			t.Errorf("RestoreSize = %d, %v; want %d, nil", size, err, MB)
		}
		if _, err := r.client.RestoreSize(42); !errors.Is(err, ErrUnknownCheckpoint) {
			t.Errorf("unknown RestoreSize: err = %v", err)
		}
		r.client.Close()
		if err := r.client.Checkpoint(1, pay(MB)); !errors.Is(err, ErrClosed) {
			t.Errorf("checkpoint after close: err = %v, want ErrClosed", err)
		}
		if _, err := r.client.Restore(0); !errors.Is(err, ErrClosed) {
			t.Errorf("restore after close: err = %v, want ErrClosed", err)
		}
		r.client.Close() // idempotent
	})
}

func TestParamsValidation(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		if _, err := New(Params{}); err == nil {
			t.Error("empty params accepted")
		}
		cfg := fabric.DGXA100()
		cluster, err := fabric.NewCluster(clk, 1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d2d, pcie := cluster.Nodes[0].GPULinks(0)
		gpu := device.NewGPU(clk, 0, 40*fabric.GB, d2d, pcie, device.DefaultAllocCosts())
		if _, err := New(Params{Clock: clk, GPU: gpu}); err == nil {
			t.Error("missing NVMe accepted")
		}
		if _, err := New(Params{Clock: clk, GPU: gpu, NVMe: cluster.Nodes[0].NVMe,
			PersistToPFS: true}); err == nil {
			t.Error("PersistToPFS without PFS link accepted")
		}
		if _, err := New(Params{Clock: clk, GPU: gpu, NVMe: cluster.Nodes[0].NVMe,
			GPUCacheSize: -1}); err == nil {
			t.Error("negative cache size accepted")
		}
	})
}

func TestPersistToPFSCreatesPFSReplica(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, func(p *Params) { p.PersistToPFS = true })
		defer r.client.Close()
		if err := r.client.Checkpoint(0, pay(1*MB)); err != nil {
			t.Fatal(err)
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		r.client.mu.Lock()
		onPFS := r.client.ckpts[0].dataOn(TierPFS)
		r.client.mu.Unlock()
		if !onPFS {
			t.Error("checkpoint not persisted to PFS")
		}
	})
}

func TestAsyncHostInitDelaysFlushes(t *testing.T) {
	// With async init, the 16MB host cache registers at 400 MB/s →
	// ready at t=40ms; the first flush cannot complete before that.
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, func(p *Params) { p.AsyncHostInit = true })
		defer r.client.Close()
		if err := r.client.Checkpoint(0, pay(1*MB)); err != nil {
			t.Fatal(err)
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		if now := clk.Now(); now < 40*time.Millisecond {
			t.Errorf("flush chain drained at %v, before host cache ready (40ms)", now)
		}
	})
}

func TestPrefetchDistanceGrowsWithAllHints(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		const n = 8
		for i := n - 1; i >= 0; i-- {
			r.client.PrefetchEnqueue(ID(i))
		}
		for i := ID(0); i < n; i++ {
			if err := r.client.Checkpoint(i, pay(512*1024)); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		r.client.PrefetchStart()
		clk.Sleep(2 * time.Second)
		for i := ID(n - 1); i >= 0; i-- {
			if _, err := r.client.Restore(i); err != nil {
				t.Fatal(err)
			}
			r.gpu.Compute(10 * time.Millisecond)
		}
		sum := r.client.Metrics().Snapshot()
		if mean := sum.MeanPrefetchDistance(); mean < 1 {
			t.Errorf("mean prefetch distance = %.2f, want >= 1 with full hints and 8-slot cache", mean)
		}
	})
}

func TestRandomRestoreOrderProperty(t *testing.T) {
	// Property: for any predetermined irregular restore order (full
	// hints), every restore returns the exact payload written, and no
	// asynchronous error occurs.
	for trial := 0; trial < 5; trial++ {
		seed := int64(trial*2654435761 + 12345)
		rng := rand.New(rand.NewSource(seed))
		const n = 16
		order := rng.Perm(n)
		clk := simclock.NewVirtual()
		clk.Run(func() {
			r := newRig(t, clk, nil)
			defer r.client.Close()
			payloads := make([]payload.Payload, n)
			for _, idx := range order {
				r.client.PrefetchEnqueue(ID(idx))
			}
			for i := 0; i < n; i++ {
				data := make([]byte, 64+rng.Intn(1024))
				rng.Read(data)
				payloads[i] = payload.NewReal(data)
				// Pad the simulated size so evictions happen.
				if err := r.client.Checkpoint(ID(i), payloads[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := r.client.WaitFlush(); err != nil {
				t.Fatal(err)
			}
			r.client.PrefetchStart()
			for _, idx := range order {
				got, err := r.client.Restore(ID(idx))
				if err != nil {
					t.Fatalf("seed %d: restore %d: %v", seed, idx, err)
				}
				if got.Checksum() != payloads[idx].Checksum() {
					t.Fatalf("seed %d: restore %d returned wrong payload", seed, idx)
				}
				r.gpu.Compute(time.Millisecond)
			}
			if err := r.client.Err(); err != nil {
				t.Fatalf("seed %d: async error: %v", seed, err)
			}
		})
	}
}

func TestMetricsThroughputAccounting(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		if err := r.client.Checkpoint(0, pay(2*MB)); err != nil {
			t.Fatal(err)
		}
		if _, err := r.client.Restore(0); err != nil {
			t.Fatal(err)
		}
		sum := r.client.Metrics().Snapshot()
		if sum.CheckpointBytes != 2*MB || sum.RestoreBytes != 2*MB {
			t.Errorf("bytes = %d/%d, want 2MB/2MB", sum.CheckpointBytes, sum.RestoreBytes)
		}
		// 2MB at 1000MB/s D2D = 2ms blocking each way → ~1000MB/s
		// application-observed throughput.
		ckptTp := sum.CheckpointThroughput()
		if ckptTp < 500*MB || ckptTp > 1500*MB {
			t.Errorf("checkpoint throughput = %s, want ~1000 MB/s",
				fmt.Sprintf("%.0f MB/s", ckptTp/MB))
		}
	})
}
