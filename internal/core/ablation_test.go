package core

import (
	"testing"
	"time"

	"score/internal/cachebuf"
	"score/internal/simclock"
)

// runAdjointShot executes a small forward+backward adjoint shot and
// returns total restore blocking time. Used to compare ablated
// configurations against the full design.
func runAdjointShot(t *testing.T, mutate func(*Params)) (restoreBlocked, ckptBlocked time.Duration) {
	t.Helper()
	clk := simclock.NewVirtual()
	clk.Run(func() {
		r := newRig(t, clk, mutate)
		defer r.client.Close()
		const n = 16
		for i := n - 1; i >= 0; i-- {
			r.client.PrefetchEnqueue(ID(i))
		}
		for i := ID(0); i < n; i++ {
			start := clk.Now()
			if err := r.client.Checkpoint(i, pay(1*MB)); err != nil {
				t.Fatal(err)
			}
			ckptBlocked += clk.Now() - start
			r.gpu.Compute(2 * time.Millisecond)
		}
		if err := r.client.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		r.client.PrefetchStart()
		for i := ID(n - 1); i >= 0; i-- {
			start := clk.Now()
			if _, err := r.client.Restore(i); err != nil {
				t.Fatal(err)
			}
			restoreBlocked += clk.Now() - start
			r.gpu.Compute(5 * time.Millisecond)
		}
		if err := r.client.Err(); err != nil {
			t.Fatal(err)
		}
	})
	return restoreBlocked, ckptBlocked
}

func TestAblationSplitCacheStillCorrect(t *testing.T) {
	// The split cache must remain functionally correct; with half the
	// space per role it cannot beat the shared design.
	shared, _ := runAdjointShot(t, nil)
	split, _ := runAdjointShot(t, func(p *Params) { p.SplitCache = true })
	if split < shared {
		t.Logf("note: split %v < shared %v (allowed on tiny shots, but unexpected)", split, shared)
	}
}

func TestAblationNoPinningStillCorrect(t *testing.T) {
	runAdjointShot(t, func(p *Params) { p.NoPinning = true })
}

func TestAblationOnDemandAllocSlowsWrites(t *testing.T) {
	_, pre := runAdjointShot(t, nil)
	_, onDemand := runAdjointShot(t, func(p *Params) { p.OnDemandAlloc = true })
	if onDemand <= pre {
		t.Errorf("on-demand allocation blocked writes for %v, pre-allocated %v: expected slower",
			onDemand, pre)
	}
}

func TestAblationEvictionPoliciesCorrect(t *testing.T) {
	for _, pol := range []cachebuf.Policy{cachebuf.PolicyLRU, cachebuf.PolicyFIFO} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			runAdjointShot(t, func(p *Params) { p.GPUEvictionPolicy = pol })
		})
	}
}
