package core

import "score/internal/cachebuf"

// restoreQueue is the per-process restore-order queue of §4.1.1: the
// application (or higher-level middleware) enqueues hints about future
// restores; hints cannot be revoked; reads may deviate from the hints at a
// performance penalty.
//
// All methods require external synchronization (the Client's mutex).
type restoreQueue struct {
	hints []ID
	head  int // hints[:head] have been consumed or removed
	pf    int // next index the prefetcher should work on (>= head)

	// pos caches each id's first pending absolute index (-1 = known
	// absent); nil means invalid (rebuilt lazily). The eviction oracle
	// calls distance for every fragment of every window scan, so the
	// naive O(pending) scan per call is a real hot spot.
	pos map[ID]int
}

// enqueue appends a hint.
func (q *restoreQueue) enqueue(id ID) {
	if q.pos != nil {
		if p, ok := q.pos[id]; !ok || p == -1 {
			q.pos[id] = len(q.hints)
		}
	}
	q.hints = append(q.hints, id)
}

// pending returns the number of unconsumed hints.
func (q *restoreQueue) pending() int { return len(q.hints) - q.head }

// headID returns the next hinted restore, if any.
func (q *restoreQueue) headID() (ID, bool) {
	if q.head < len(q.hints) {
		return q.hints[q.head], true
	}
	return 0, false
}

// at returns the hint at queue position i (0 = head).
func (q *restoreQueue) at(i int) (ID, bool) {
	idx := q.head + i
	if idx < len(q.hints) {
		return q.hints[idx], true
	}
	return 0, false
}

// consume removes id's first pending occurrence. It reports whether the
// restore deviated from the hint order (id was hinted but not at the
// head). Unhinted ids leave the queue untouched and do not count as
// deviations of the queue itself.
func (q *restoreQueue) consume(id ID) (deviated bool) {
	if q.head < len(q.hints) && q.hints[q.head] == id {
		q.head++
		if q.pf < q.head {
			q.pf = q.head
		}
		// A later duplicate hint (re-reads) may exist: drop the cache
		// entry so the next distance() rescans for it.
		delete(q.pos, id)
		return false
	}
	for i := q.head; i < len(q.hints); i++ {
		if q.hints[i] == id {
			copy(q.hints[i:], q.hints[i+1:])
			q.hints = q.hints[:len(q.hints)-1]
			if q.pf > i {
				q.pf--
			}
			q.pos = nil // mid-queue removal shifts every index
			return true
		}
	}
	return false
}

// distance returns the number of queue positions between the head and id's
// first pending hint; ids without a pending hint return
// cachebuf.GapDistance-1 ("no prefetching hint available" scores as
// farthest, §4.1.6).
func (q *restoreQueue) distance(id ID) int {
	if q.pos == nil {
		q.rebuildPos()
	}
	if p, ok := q.pos[id]; ok {
		if p == -1 {
			return cachebuf.GapDistance - 1
		}
		if p >= q.head && p < len(q.hints) && q.hints[p] == id {
			return p - q.head
		}
	}
	// Miss or stale entry: rescan once and cache the answer.
	for i := q.head; i < len(q.hints); i++ {
		if q.hints[i] == id {
			q.pos[id] = i
			return i - q.head
		}
	}
	q.pos[id] = -1
	return cachebuf.GapDistance - 1
}

// rebuildPos re-derives the position cache. Iterating backward leaves the
// FIRST pending occurrence of each id in the map.
func (q *restoreQueue) rebuildPos() {
	q.pos = make(map[ID]int, len(q.hints)-q.head)
	for i := len(q.hints) - 1; i >= q.head; i-- {
		q.pos[q.hints[i]] = i
	}
}

// nextPrefetch returns the hint the prefetcher should promote next.
func (q *restoreQueue) nextPrefetch() (ID, bool) {
	if q.pf < q.head {
		q.pf = q.head
	}
	if q.pf < len(q.hints) {
		return q.hints[q.pf], true
	}
	return 0, false
}

// advancePrefetch moves past the current prefetch target.
func (q *restoreQueue) advancePrefetch() { q.pf++ }

// idFIFO is the flush queues' FIFO. Popping advances a head cursor and
// periodically compacts the backing array — the naive `q = q[1:]`
// re-slice never lets the garbage collector reclaim popped slots, so on
// long runs the queue's footprint grows with the historical total
// instead of the pending count.
//
// All methods require external synchronization (the Client's mutex).
type idFIFO struct {
	ids  []ID
	head int
}

// push appends id to the tail.
func (f *idFIFO) push(id ID) { f.ids = append(f.ids, id) }

// pop removes and returns the head; ok=false when empty.
func (f *idFIFO) pop() (id ID, ok bool) {
	if f.head >= len(f.ids) {
		return 0, false
	}
	id = f.ids[f.head]
	f.head++
	if f.head > 32 && f.head*2 >= len(f.ids) {
		// The dead prefix dominates: slide the pending tail down so the
		// old backing array (and the IDs it pins) can be collected.
		n := copy(f.ids, f.ids[f.head:])
		f.ids = f.ids[:n]
		f.head = 0
	}
	return id, true
}

// len returns the number of pending ids.
func (f *idFIFO) len() int { return len(f.ids) - f.head }
