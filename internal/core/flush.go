package core

import (
	"fmt"

	"score/internal/cachebuf"
	"score/internal/ckptstore"
	"score/internal/lifecycle"
	"score/internal/trace"
)

// flusherD2H is T_D2H (§4.3.1): it drains the GPU→host flush queue in
// FIFO order, reserving host cache space (evicting under the score
// policy), copying over PCIe, and promoting the GPU replica to FLUSHED so
// it becomes evictable.
func (c *Client) flusherD2H() {
	for {
		id, ok := c.popFlushJob(&c.d2hQ, &c.d2hBusy)
		if !ok {
			return // closed
		}
		c.runD2H(id)
		c.finishFlushJob(&c.d2hBusy)
	}
}

// flusherH2F is T_H2F: host → node-local SSD (→ PFS when persistence is
// requested).
func (c *Client) flusherH2F() {
	for {
		id, ok := c.popFlushJob(&c.h2fQ, &c.h2fBusy)
		if !ok {
			return
		}
		c.runH2F(id)
		c.finishFlushJob(&c.h2fBusy)
	}
}

// popFlushJob blocks for the next queued id; ok=false on close.
func (c *Client) popFlushJob(q *[]ID, busy *bool) (ID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(*q) == 0 {
		if c.closed {
			return 0, false
		}
		c.cond.Wait()
	}
	id := (*q)[0]
	*q = (*q)[1:]
	*busy = true
	return id, true
}

func (c *Client) finishFlushJob(busy *bool) {
	c.mu.Lock()
	*busy = false
	c.bumpLocked()
	c.mu.Unlock()
	// Flush completions change evictability estimates on both tiers.
	c.notifyGPU()
	c.hstC.Notify()
}

// skipFlush implements §2 condition 5: "if a checkpoint was consumed and
// can be discarded, any of its pending flushes ... are not required to
// complete".
func (c *Client) skipFlush(ck *checkpoint) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ck.consumed && c.p.DiscardAfterRestore
}

func (c *Client) runD2H(id ID) {
	c.mu.Lock()
	ck := c.ckpts[id]
	c.mu.Unlock()
	if ck == nil || c.skipFlush(ck) {
		return
	}
	defer c.p.Tracer.Span(c.p.GPU.ID(), trace.TrackD2H, "flush",
		fmt.Sprintf("flush %d gpu→host", id))()
	if c.p.GPUDirectStorage {
		// Future-work mode: flush GPU → SSD directly (PCIe + NVMe),
		// bypassing the host cache.
		c.directToSSD(ck, true)
		c.markFlushed(ck, TierGPU)
		return
	}
	// The host tier only becomes usable once pinned registration
	// completes (§4.1.4).
	c.waitHostReady()

	c.mu.Lock()
	if ck.dataOn(TierHost) || ck.dataOn(TierSSD) {
		// Already flushed (e.g. by an earlier bypass); just promote
		// the GPU replica.
		c.mu.Unlock()
		c.markFlushed(ck, TierGPU)
		c.enqueueH2F(ck)
		return
	}
	hostRep := &replica{tier: TierHost, fsm: lifecycle.NewMachine(c.clk)}
	ck.replicas[TierHost] = hostRep
	c.mu.Unlock()

	if _, err := c.hstC.Reserve(c.hostKey(id), ck.size); err != nil {
		c.mu.Lock()
		delete(ck.replicas, TierHost)
		c.mu.Unlock()
		switch err {
		case cachebuf.ErrClosed:
			return
		case cachebuf.ErrTooLarge:
			// Checkpoint larger than the host cache: flush GPU → SSD
			// directly (still via PCIe + NVMe).
			c.directToSSD(ck, true)
			c.markFlushed(ck, TierGPU)
			return
		default:
			c.fail(fmt.Errorf("core: D2H flush of %d: %w", id, err))
			return
		}
	}

	hostRep.fsm.MustTo(lifecycle.WriteInProgress)
	if c.p.OnDemandAlloc {
		// §4.1.4 ablation: allocate+register pinned host memory for this
		// checkpoint at ~4 GB/s instead of reusing the pre-pinned cache.
		c.p.GPU.AllocPinnedHost(ck.size)
	}
	c.p.GPU.CopyD2H(ck.size)
	hostRep.fsm.MustTo(lifecycle.WriteComplete)
	c.hstC.Notify()

	// Host copy landed: the GPU replica is now redundant → FLUSHED.
	c.markFlushed(ck, TierGPU)
	c.enqueueH2F(ck)
}

func (c *Client) enqueueH2F(ck *checkpoint) {
	c.mu.Lock()
	if !ck.enqueuedH2F {
		ck.enqueuedH2F = true
		c.h2fQ = append(c.h2fQ, ck.id)
		c.bumpLocked()
	}
	c.mu.Unlock()
}

func (c *Client) runH2F(id ID) {
	c.mu.Lock()
	ck := c.ckpts[id]
	c.mu.Unlock()
	if ck == nil || c.skipFlush(ck) {
		return
	}
	defer c.p.Tracer.Span(c.p.GPU.ID(), trace.TrackH2F, "flush",
		fmt.Sprintf("flush %d host→ssd", id))()
	c.mu.Lock()
	hostRep := ck.replicas[TierHost]
	alreadyOnSSD := ck.dataOn(TierSSD)
	c.mu.Unlock()
	if alreadyOnSSD {
		if hostRep != nil {
			c.markFlushed(ck, TierHost)
		}
		return
	}
	if hostRep == nil || !hostRep.hasData() {
		// The host replica vanished (evicted after consumption); the
		// data is either consumed+discardable or still on the GPU.
		// Nothing to flush from here.
		return
	}
	c.directToSSD(ck, false)
	c.markFlushed(ck, TierHost)
}

// directToSSD writes the checkpoint to the node-local SSD tier (and PFS if
// persistence is enabled). fromGPU additionally charges the PCIe hop.
func (c *Client) directToSSD(ck *checkpoint, fromGPU bool) {
	c.mu.Lock()
	ssdRep := ck.replicas[TierSSD]
	if ssdRep == nil {
		ssdRep = &replica{tier: TierSSD, fsm: lifecycle.NewMachine(c.clk)}
		ck.replicas[TierSSD] = ssdRep
	}
	c.mu.Unlock()
	if ssdRep.hasData() {
		return
	}
	ssdRep.fsm.MustTo(lifecycle.WriteInProgress)
	if fromGPU {
		c.p.GPU.CopyD2H(ck.size)
	}
	c.p.NVMe.Transfer(ck.size)
	if c.p.Store != nil {
		if data := ck.pay.Bytes(); data != nil {
			if err := c.p.Store.Put(int64(ck.id), data); err != nil && err != ckptstore.ErrExists {
				c.fail(fmt.Errorf("core: persisting checkpoint %d: %w", ck.id, err))
			}
		}
	}
	ssdRep.fsm.MustTo(lifecycle.WriteComplete)

	if c.p.PersistToPFS {
		pfsRep := &replica{tier: TierPFS, fsm: lifecycle.NewMachine(c.clk)}
		c.mu.Lock()
		ck.replicas[TierPFS] = pfsRep
		c.mu.Unlock()
		pfsRep.fsm.MustTo(lifecycle.WriteInProgress)
		c.p.PFS.Transfer(ck.size)
		pfsRep.fsm.MustTo(lifecycle.WriteComplete)
		pfsRep.fsm.MustTo(lifecycle.Flushed) // terminal durable tier
	}
	// The SSD tier is durable for this scenario (it holds a full
	// node's checkpoints, §2): its replica is immediately FLUSHED.
	ssdRep.fsm.MustTo(lifecycle.Flushed)
	c.notifyGPU()
	c.hstC.Notify()
}

// markFlushed moves a tier's replica WRITE_COMPLETE → FLUSHED if it is
// still in WRITE_COMPLETE (a restore may have claimed it to READ_COMPLETE
// in the meantime, which is fine — the shortcut edge of Fig. 1).
func (c *Client) markFlushed(ck *checkpoint, tier Tier) {
	c.mu.Lock()
	rep := ck.replicas[tier]
	c.mu.Unlock()
	if rep == nil {
		return
	}
	if err := rep.fsm.To(lifecycle.Flushed); err == nil {
		switch tier {
		case TierGPU:
			c.notifyGPU()
		case TierHost:
			c.hstC.Notify()
		}
	}
}
