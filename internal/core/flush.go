package core

import (
	"fmt"
	"sync"

	"score/internal/cachebuf"
	"score/internal/ckptstore"
	"score/internal/lifecycle"
	"score/internal/metrics"
	"score/internal/simclock"
	"score/internal/trace"
)

// flusherD2H is one T_D2H worker (§4.3.1): it drains the GPU→host flush
// queue in FIFO order, reserving host cache space (evicting under the
// score policy), copying over PCIe, and promoting the GPU replica to
// FLUSHED so it becomes evictable. Params.FlushStreams workers run this
// loop concurrently; jobs are claimed in FIFO order, and each
// checkpoint's D2H stage still strictly precedes its own H2F handoff.
func (c *Client) flusherD2H() {
	for {
		id, ok := c.popFlushJob(&c.d2hQ, &c.d2hBusy)
		if !ok {
			return // closed
		}
		c.runD2H(id)
		c.finishFlushJob(id, &c.d2hBusy)
	}
}

// flusherH2F is one T_H2F worker: host → node-local SSD (→ PFS when
// persistence is requested).
func (c *Client) flusherH2F() {
	for {
		id, ok := c.popFlushJob(&c.h2fQ, &c.h2fBusy)
		if !ok {
			return
		}
		c.runH2F(id)
		c.finishFlushJob(id, &c.h2fBusy)
	}
}

// popFlushJob blocks for the next queued id; ok=false on close. busy
// counts the pool's in-flight jobs so WaitFlush can tell an empty queue
// from a drained one.
func (c *Client) popFlushJob(q *idFIFO, busy *int) (ID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for q.len() == 0 || c.drainFrozen {
		// A preemption drain freezes the queues: the triage owns the
		// backlog, so workers park here (and exit at close/kill).
		if c.closed || c.killed {
			return 0, false
		}
		c.cond.Wait()
	}
	if c.killed {
		// The rank died with jobs still queued; finishKill sweeps their
		// fates. Don't start work for a dead process.
		return 0, false
	}
	id, _ := q.pop()
	*busy++
	c.inFlight[id] = true
	return id, true
}

func (c *Client) finishFlushJob(id ID, busy *int) {
	c.mu.Lock()
	*busy--
	delete(c.inFlight, id)
	c.bumpLocked()
	c.mu.Unlock()
	// Flush completions change evictability estimates on both tiers.
	c.notifyGPU()
	c.hstC.Notify()
}

// skipFlush implements §2 condition 5: "if a checkpoint was consumed and
// can be discarded, any of its pending flushes ... are not required to
// complete".
func (c *Client) skipFlush(ck *checkpoint) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ck.consumed && c.p.DiscardAfterRestore
}

func (c *Client) runD2H(id ID) {
	c.mu.Lock()
	ck := c.ckpts[id]
	c.mu.Unlock()
	if ck == nil {
		return
	}
	if c.skipFlush(ck) {
		c.accountFate(ck, fateDiscarded)
		return
	}
	att := ck.att
	// The interval since the last mark is the wait for a T_D2H worker.
	c.mark(att, metrics.CompQueueD2H)
	start := c.clk.Now()
	defer func() {
		c.rec.ObserveDuration(metrics.HistFlushPrefix+TierGPU.String(), c.clk.Now()-start)
	}()
	if tr := c.p.Tracer; tr != nil {
		defer tr.SpanFlow(c.p.GPU.ID(), trace.TrackD2H, "flush",
			fmt.Sprintf("flush %d gpu→host", id), c.flowID(id))()
	}
	if c.p.GPUDirectStorage || c.tierDegraded(TierHost) {
		// GPUDirect mode — or a dead host tier: flush GPU → SSD directly
		// (PCIe + NVMe), bypassing the host cache.
		if err := c.directToSSD(ck, true, att); err != nil {
			c.abortFlush(ck, TierGPU, err)
			return
		}
		c.markFlushed(ck, TierGPU)
		return
	}
	// The host tier only becomes usable once pinned registration
	// completes (§4.1.4). Publish the park: a preemption triage with a
	// deadline shorter than the registration claims the job instead of
	// waiting it out.
	c.mu.Lock()
	ck.hostWait = true
	c.bumpLocked()
	c.mu.Unlock()
	c.waitHostReady()
	c.mu.Lock()
	ck.hostWait = false
	claimed := ck.drainClaimed
	c.mu.Unlock()
	if claimed {
		// The drain triage flushed or failed this version open while the
		// worker slept; the decision is made.
		return
	}
	c.mark(att, metrics.CompHostReady)

	c.mu.Lock()
	if ck.dataOn(TierHost) || ck.dataOn(TierSSD) {
		// Already flushed (e.g. by an earlier bypass); just promote
		// the GPU replica.
		c.mu.Unlock()
		c.markFlushed(ck, TierGPU)
		c.enqueueH2F(ck)
		return
	}
	hostRep := &replica{tier: TierHost, fsm: lifecycle.NewMachine(c.clk)}
	ck.replicas[TierHost] = hostRep
	c.mu.Unlock()

	if _, err := c.hstC.Reserve(c.hostKey(id), ck.size); err != nil {
		c.mu.Lock()
		delete(ck.replicas, TierHost)
		c.mu.Unlock()
		switch err {
		case cachebuf.ErrClosed:
			return
		case cachebuf.ErrTooLarge:
			// Checkpoint larger than the host cache: flush GPU → SSD
			// directly (still via PCIe + NVMe).
			if err := c.directToSSD(ck, true, att); err != nil {
				c.abortFlush(ck, TierGPU, err)
				return
			}
			c.markFlushed(ck, TierGPU)
			return
		default:
			c.fail(fmt.Errorf("core: D2H flush of %d: %w", id, err))
			return
		}
	}
	c.mark(att, metrics.CompHostAdmit)

	hostRep.fsm.MustTo(lifecycle.WriteInProgress)
	if c.p.OnDemandAlloc {
		// §4.1.4 ablation: allocate+register pinned host memory for this
		// checkpoint at ~4 GB/s instead of reusing the pre-pinned cache.
		c.p.GPU.AllocPinnedHost(ck.size)
		c.mark(att, metrics.CompAlloc)
	}
	if err := c.copyD2HHost(ck, att); err != nil {
		c.dropReplica(ck, TierHost)
		if isShutdownErr(err) {
			// The rank died (or closed) mid-copy: the chain resolves as
			// lost, not as a tier fault.
			c.abortFlush(ck, TierGPU, err)
			return
		}
		// The PCIe hop toward the host cache kept failing: release the
		// reservation, mark the host tier degraded, and try the direct
		// route (which surfaces its own failure if PCIe itself is dead).
		c.degradeTier(TierHost)
		if err := c.directToSSD(ck, true, att); err != nil {
			c.abortFlush(ck, TierGPU, err)
			return
		}
		c.markFlushed(ck, TierGPU)
		return
	}
	c.healTier(TierHost)
	hostRep.fsm.MustTo(lifecycle.WriteComplete)
	c.hstC.Notify()

	// Host copy landed: the GPU replica is now redundant → FLUSHED.
	c.markFlushed(ck, TierGPU)
	c.enqueueH2F(ck)
}

func (c *Client) enqueueH2F(ck *checkpoint) {
	c.mu.Lock()
	// A frozen queue belongs to the drain triage; a late D2H landing must
	// not park work the sweep has already passed over.
	enq := !ck.enqueuedH2F && !c.drainFrozen
	if enq {
		ck.enqueuedH2F = true
		c.h2fQ.push(ck.id)
		c.bumpLocked()
	}
	c.mu.Unlock()
	if enq {
		c.lifecycle(ck.id, trace.LFlushEnqueued, "", "h2f")
	}
}

func (c *Client) runH2F(id ID) {
	c.mu.Lock()
	ck := c.ckpts[id]
	c.mu.Unlock()
	if ck == nil {
		return
	}
	if c.skipFlush(ck) {
		c.accountFate(ck, fateDiscarded)
		return
	}
	if tr := c.p.Tracer; tr != nil {
		defer tr.SpanFlow(c.p.GPU.ID(), trace.TrackH2F, "flush",
			fmt.Sprintf("flush %d host→ssd", id), c.flowID(id))()
	}
	c.mu.Lock()
	hostRep := ck.replicas[TierHost]
	alreadyOnSSD := ck.dataOn(TierSSD)
	c.mu.Unlock()
	if alreadyOnSSD {
		if hostRep != nil {
			c.markFlushed(ck, TierHost)
		}
		return
	}
	if hostRep == nil || !hostRep.hasData() {
		// The host replica vanished (evicted after consumption, or
		// sacrificed after an aborted flush); if the checkpoint has no
		// fate yet the eviction oracle guaranteed it was discardable.
		// Nothing to flush from here.
		c.accountFate(ck, fateDiscarded)
		return
	}
	att := ck.att
	// Time since the host copy landed is the wait for a T_H2F worker.
	c.mark(att, metrics.CompQueueH2F)
	start := c.clk.Now()
	defer func() {
		c.rec.ObserveDuration(metrics.HistFlushPrefix+TierHost.String(), c.clk.Now()-start)
	}()
	if err := c.directToSSD(ck, false, att); err != nil {
		c.abortFlush(ck, TierHost, err)
		return
	}
	c.markFlushed(ck, TierHost)
}

// directToSSD writes the checkpoint to the node-local SSD tier (and PFS
// if persistence is enabled). fromGPU additionally charges the PCIe hop.
// On persistent SSD failure the tier is degraded and the flush reroutes
// to the PFS; the returned error is non-nil only when no durable route
// succeeded.
func (c *Client) directToSSD(ck *checkpoint, fromGPU bool, att *attrib) error {
	if c.tierDegraded(TierSSD) {
		return c.routeToPFS(ck, fromGPU, att)
	}
	c.mu.Lock()
	ssdRep := ck.replicas[TierSSD]
	if ssdRep == nil {
		ssdRep = &replica{tier: TierSSD, fsm: lifecycle.NewMachine(c.clk)}
		ck.replicas[TierSSD] = ssdRep
	}
	c.mu.Unlock()
	if !ssdRep.hasData() {
		ssdRep.fsm.MustTo(lifecycle.WriteInProgress)
		c.lifecycle(ck.id, trace.LHopStart, "ssd", "")
		err, rerouted := c.writeSSDGuarded(ck, fromGPU, att, ssdRep)
		if rerouted {
			// The write stalled past its adaptive deadline and the flush
			// went durable on the PFS instead; the SSD leg finalizes
			// itself in the background when (if) it completes.
			return nil
		}
		if err == nil {
			// The write landed, but only a live process gets credit for a
			// durable transition — a kill racing the flush must resolve
			// the chain as lost, not durable.
			err = c.killGate()
		}
		if err != nil {
			c.mu.Lock()
			if ck.replicas[TierSSD] == ssdRep {
				delete(ck.replicas, TierSSD)
			}
			c.mu.Unlock()
			if isShutdownErr(err) {
				return err
			}
			// The SSD route is dead for this checkpoint: drop the
			// half-written replica, mark the tier degraded so later
			// flushes skip it, and reroute to the PFS.
			c.degradeTier(TierSSD)
			return c.routeToPFS(ck, fromGPU, att)
		}
		c.healTier(TierSSD)
		ssdRep.fsm.MustTo(lifecycle.WriteComplete)
		c.lifecycle(ck.id, trace.LHopEnd, "ssd", "")
		c.accountFate(ck, fateDurable)
	}

	if draining := c.Draining(); !draining {
		// Best-effort breadth legs run only outside a drain: a preemption
		// deadline buys one durable copy per version, not replication (the
		// demotion half of the drain's cancel-or-demote contract).
		if c.p.PartnerStore != nil && !ck.dataOn(TierPartner) {
			// Partner-copy replication (SCR/VELOC): stage a replica on the
			// partner node's SSD so a whole-node loss keeps the version
			// restorable. Best effort — the local SSD already holds the data.
			c.routeToPartner(ck)
		}
		if c.p.PersistToPFS && !ck.dataOn(TierPFS) {
			// Best effort: the SSD already holds the data, so a PFS failure
			// here loses persistence breadth, not the checkpoint. The durable
			// attribution is already finished; pass no attrib.
			_ = c.routeToPFS(ck, false, nil)
		}
	}
	// The SSD tier is durable for this scenario (it holds a full
	// node's checkpoints, §2): its replica is immediately FLUSHED.
	ssdRep.fsm.MustTo(lifecycle.Flushed)
	c.notifyGPU()
	c.hstC.Notify()
	return nil
}

// writeSSDGuarded runs writeSSD under a stall watchdog when gray-failure
// handling is enabled (Params.Hedge with a PFS configured): the write
// runs in a background task and the caller waits with an adaptive
// deadline (the health estimator's median-with-headroom estimate for
// the SSD class). A write that
// runs past the deadline without failing — a gray stall — is detected
// and the flush re-routes to the PFS; on reroute success the SSD leg is
// abandoned to finish on its own (first durable copy decides the fate —
// accountFate keeps it single) and rerouted=true tells the caller to
// skip the normal SSD completion path. Without hedging this reduces to
// a plain writeSSD call, byte-identical to the seed.
func (c *Client) writeSSDGuarded(ck *checkpoint, fromGPU bool, att *attrib, ssdRep *replica) (err error, rerouted bool) {
	if !c.p.Hedge || c.p.PFS == nil {
		start := c.clk.Now()
		err := c.writeSSD(ck, fromGPU, att)
		if err == nil {
			c.observeHealth(TierSSD, ck.size, c.clk.Now()-start)
		}
		return err, false
	}

	type waitState struct {
		mu        sync.Mutex
		cond      simclock.Cond
		done      bool
		err       error
		abandoned bool
	}
	ws := &waitState{}
	ws.cond = c.clk.NewCond(&ws.mu)
	start := c.clk.Now()
	c.hedgeWG.Add(1)
	c.clk.Go(func() {
		defer c.hedgeWG.Done()
		werr := c.writeSSD(ck, fromGPU, nil)
		ws.mu.Lock()
		ws.done, ws.err = true, werr
		abandoned := ws.abandoned
		ws.cond.Broadcast()
		ws.mu.Unlock()
		if !abandoned {
			return // the waiter owns the completion path
		}
		// The waiter re-routed and moved on; finalize the SSD leg here
		// with the same rules the foreground path would have applied.
		if werr == nil {
			werr = c.killGate()
		}
		if werr != nil {
			c.mu.Lock()
			if ck.replicas[TierSSD] == ssdRep {
				delete(ck.replicas, TierSSD)
			}
			c.mu.Unlock()
			if !isShutdownErr(werr) {
				c.degradeTier(TierSSD)
			}
		} else {
			c.observeHealth(TierSSD, ck.size, c.clk.Now()-start)
			c.healTier(TierSSD)
			ssdRep.fsm.MustTo(lifecycle.WriteComplete)
			ssdRep.fsm.MustTo(lifecycle.Flushed)
			c.lifecycle(ck.id, trace.LHopEnd, "ssd", "late completion after stall reroute")
			// No-op: the reroute already decided the fate as durable.
			c.accountFate(ck, fateDurable)
		}
		c.notifyGPU()
		c.hstC.Notify()
	})

	deadline := c.health.deadline("ssd", ck.size, c.p.HedgeDelayFloor)
	ws.mu.Lock()
	for deadline == 0 && !ws.done {
		// The SSD class has no observations yet, so there is nothing to
		// judge a stall against — the estimator has to earn the right to
		// call a write slow. Wait it out undeadlined (cold-start writes
		// would otherwise misfire the guard on the configured floor).
		ws.cond.Wait()
	}
	for !ws.done {
		if wait := start + deadline - c.clk.Now(); wait > 0 {
			ws.cond.WaitTimeout(wait)
			continue
		}
		// Gray stall: the write is past its deadline and still running.
		ws.mu.Unlock()
		c.rec.StallDetected()
		c.lifecycle(ck.id, trace.LStalled, "ssd", fmt.Sprintf("write past its %v deadline", deadline))
		rrStart := c.clk.Now()
		rerr := c.routeToPFS(ck, fromGPU, att)
		ws.mu.Lock()
		if rerr == nil && !ws.done {
			ws.abandoned = true
			c.rec.StallRerouted()
			c.rec.ObserveDuration(metrics.HistStallReroute, c.clk.Now()-rrStart)
			ws.mu.Unlock()
			return nil, true
		}
		if rerr == nil {
			// The write finished while we were re-routing: take the
			// normal completion path after all (the reroute already
			// decided the fate; the foreground accounting is a no-op).
			c.rec.StallRerouted()
			c.rec.ObserveDuration(metrics.HistStallReroute, c.clk.Now()-rrStart)
			break
		}
		// The alternate route failed too: nothing left but to wait the
		// SSD write out and let the normal path decide.
		for !ws.done {
			ws.cond.Wait()
		}
		break
	}
	err = ws.err
	ws.mu.Unlock()
	if err == nil {
		c.observeHealth(TierSSD, ck.size, c.clk.Now()-start)
		// The background writer carries no attribution; charge the whole
		// guarded window to the SSD transfer component.
		c.mark(att, metrics.CompXferSSD)
	}
	return err, false
}

// writeSSD charges the transfers and durable write of the SSD flush,
// with per-hop retries (or a whole-stream retry when chunked). fromGPU
// adds the PCIe hop.
func (c *Client) writeSSD(ck *checkpoint, fromGPU bool, att *attrib) error {
	if err := c.transferDown(ck, fromGPU, c.p.NVMe, "ssd", "NVMe write", att); err != nil {
		return err
	}
	if c.p.Store != nil {
		if data := ck.pay.Bytes(); data != nil {
			if err := c.retryIOAttr(ck, att, metrics.CompStorePut, "ssd", "store put", func() error {
				if err := c.p.Store.Put(int64(ck.id), data); err != nil && err != ckptstore.ErrExists {
					return err
				}
				return nil
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// routeToPFS flushes ck straight to the PFS tier, bypassing a degraded
// (or bypassed) SSD. fromGPU additionally charges the PCIe hop.
func (c *Client) routeToPFS(ck *checkpoint, fromGPU bool, att *attrib) error {
	if c.p.PFS == nil {
		return fmt.Errorf("%w: ssd tier unavailable and no PFS configured", ErrTierIO)
	}
	c.mu.Lock()
	pfsRep := ck.replicas[TierPFS]
	if pfsRep == nil {
		pfsRep = &replica{tier: TierPFS, fsm: lifecycle.NewMachine(c.clk)}
		ck.replicas[TierPFS] = pfsRep
	}
	hasData := pfsRep.hasData()
	c.mu.Unlock()
	if hasData {
		return nil
	}
	pfsRep.fsm.MustTo(lifecycle.WriteInProgress)
	c.lifecycle(ck.id, trace.LHopStart, "pfs", "")
	xferStart := c.clk.Now()
	err := func() error {
		if err := c.transferDown(ck, fromGPU, c.p.PFS, "pfs", "PFS write", att); err != nil {
			return err
		}
		if c.p.PFSStore != nil {
			if data := ck.pay.Bytes(); data != nil {
				if err := c.retryIOAttr(ck, att, metrics.CompStorePut, "pfs", "store put", func() error {
					if err := c.p.PFSStore.Put(int64(ck.id), data); err != nil && err != ckptstore.ErrExists {
						return err
					}
					return nil
				}); err != nil {
					return err
				}
			}
		}
		return nil
	}()
	if err == nil {
		// Same rule as the SSD route: no durable credit for a process
		// that died mid-flush.
		err = c.killGate()
	}
	if err != nil {
		c.mu.Lock()
		if ck.replicas[TierPFS] == pfsRep {
			delete(ck.replicas, TierPFS)
		}
		c.mu.Unlock()
		return err
	}
	c.observeHealth(TierPFS, ck.size, c.clk.Now()-xferStart)
	pfsRep.fsm.MustTo(lifecycle.WriteComplete)
	pfsRep.fsm.MustTo(lifecycle.Flushed) // terminal durable tier
	c.lifecycle(ck.id, trace.LHopEnd, "pfs", "")
	c.accountFate(ck, fateDurable)
	c.notifyGPU()
	c.hstC.Notify()
	return nil
}

// routeToPartner stages a replica of ck on the partner node's SSD over
// the inter-node fabric: local NIC → partner NIC → partner NVMe, then a
// durable put to the partner store. Best effort, like the PFS leg of a
// flush — the local SSD already holds the data, so a partner failure
// costs redundancy (and the ability to survive a node loss), not the
// checkpoint. Persistent failures degrade the partner tier; a later
// probe heals it.
func (c *Client) routeToPartner(ck *checkpoint) {
	if c.p.PartnerStore == nil || c.tierDegraded(TierPartner) || c.killGate() != nil {
		return
	}
	c.mu.Lock()
	rep := ck.replicas[TierPartner]
	if rep == nil {
		rep = &replica{tier: TierPartner, fsm: lifecycle.NewMachine(c.clk)}
		ck.replicas[TierPartner] = rep
	}
	hasData := rep.hasData()
	c.mu.Unlock()
	if hasData {
		return
	}
	if tr := c.p.Tracer; tr != nil {
		defer tr.SpanFlow(c.p.GPU.ID(), trace.TrackH2F, "partner-copy",
			fmt.Sprintf("replicate %d → partner ssd", ck.id), c.flowID(ck.id))()
	}
	rep.fsm.MustTo(lifecycle.WriteInProgress)
	xferStart := c.clk.Now()
	err := func() error {
		if err := c.retryIOAttr(ck, nil, "", "partner", "partner copy", func() error {
			return c.partnerHop(ck.size, true)
		}); err != nil {
			return err
		}
		if data := ck.pay.Bytes(); data != nil {
			return c.retryIOAttr(ck, nil, "", "partner", "store put", func() error {
				if err := c.p.PartnerStore.Put(int64(ck.id), data); err != nil && err != ckptstore.ErrExists {
					return err
				}
				return nil
			})
		}
		return nil
	}()
	if err == nil {
		err = c.killGate()
	}
	if err != nil {
		c.mu.Lock()
		if ck.replicas[TierPartner] == rep {
			delete(ck.replicas, TierPartner)
		}
		c.mu.Unlock()
		c.rec.PartnerCopyFailure()
		if !isShutdownErr(err) {
			c.degradeTier(TierPartner)
		}
		return
	}
	c.observeHealth(TierPartner, ck.size, c.clk.Now()-xferStart)
	rep.fsm.MustTo(lifecycle.WriteComplete)
	rep.fsm.MustTo(lifecycle.Flushed) // durable the moment the put lands
	c.healTier(TierPartner)
	c.rec.PartnerCopy(ck.size)
	c.lifecycle(ck.id, trace.LPartnerCopy, "partner", "")
	c.notifyGPU()
	c.hstC.Notify()
}

// abortFlush gives up on making ck durable: every route below srcTier
// failed persistently. The source replica still moves to FLUSHED — a
// deliberate fail-open transition that keeps the cache from wedging
// (Reserve waits for evictable space; a permanently pinned
// WRITE_COMPLETE replica would deadlock every later checkpoint). The
// replica becomes sacrificial: if it is evicted before the failed tiers
// recover, the checkpoint is lost and Restore reports ErrLost
// definitively instead of hanging.
func (c *Client) abortFlush(ck *checkpoint, srcTier Tier, err error) {
	c.mu.Lock()
	ck.flushAborted = true
	if ck.flushErr == nil {
		ck.flushErr = err
	}
	c.bumpLocked()
	c.mu.Unlock()
	c.rec.FlushAbort()
	c.accountFate(ck, fateLost)
	c.markFlushed(ck, srcTier)
	c.notifyGPU()
	c.hstC.Notify()
}

// dropReplica deletes ck's replica record on tier and releases its cache
// reservation (if any), waking blocked reservations.
func (c *Client) dropReplica(ck *checkpoint, tier Tier) {
	c.mu.Lock()
	delete(ck.replicas, tier)
	if tier == TierHost {
		c.releaseStagedLocked(ck)
	}
	c.bumpLocked()
	c.mu.Unlock()
	switch tier {
	case TierHost:
		c.hstC.Release(c.hostKey(ck.id))
		c.hstC.Notify()
	case TierGPU:
		if !c.gpuC.Release(cachebuf.ID(ck.id)) && c.gpuP != nil {
			c.gpuP.Release(cachebuf.ID(ck.id))
		}
		c.notifyGPU()
	}
}

// markFlushed moves a tier's replica WRITE_COMPLETE → FLUSHED if it is
// still in WRITE_COMPLETE (a restore may have claimed it to READ_COMPLETE
// in the meantime, which is fine — the shortcut edge of Fig. 1).
func (c *Client) markFlushed(ck *checkpoint, tier Tier) {
	c.mu.Lock()
	rep := ck.replicas[tier]
	c.mu.Unlock()
	if rep == nil {
		return
	}
	if err := rep.fsm.To(lifecycle.Flushed); err == nil {
		switch tier {
		case TierGPU:
			c.notifyGPU()
		case TierHost:
			c.hstC.Notify()
		}
	}
}
