package core

import (
	"errors"
	"fmt"
	"time"

	"score/internal/fabric"
	"score/internal/metrics"
)

// RetryPolicy bounds the jittered exponential backoff applied to
// transient tier-I/O failures (injected or real). Backoff sleeps run on
// the client's clock, so virtual-time tests stay deterministic.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; it doubles each
	// retry (with ±50% jitter) up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry sleep.
	MaxBackoff time.Duration
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.MaxAttempts <= 0 {
		rp.MaxAttempts = 4
	}
	if rp.BaseBackoff <= 0 {
		rp.BaseBackoff = 500 * time.Microsecond
	}
	if rp.MaxBackoff <= 0 {
		rp.MaxBackoff = 8 * time.Millisecond
	}
	return rp
}

// Robustness errors.
var (
	// ErrTierIO: a tier I/O operation kept failing through every retry.
	// The pipeline degrades around it; only operations with no deeper
	// tier to fall back to surface it to the application.
	ErrTierIO = errors.New("core: tier I/O failed")
	// ErrLost: no tier holds a readable copy of the checkpoint (its
	// flush chain was aborted and the cache copy evicted, or every
	// durable replica failed). Definitive — retrying cannot help.
	ErrLost = errors.New("core: checkpoint lost")
)

// retryIO runs op under the client's retry policy: on failure it records
// a retry against label ("pcie", "ssd", "pfs", ...), sleeps a jittered
// exponential backoff on the simulated clock, and tries again, up to
// MaxAttempts. The final error wraps both ErrTierIO and op's error.
func (c *Client) retryIO(label, what string, op func() error) error {
	policy := c.p.Retry
	backoff := policy.BaseBackoff
	var err error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.rec.Retry(label)
			sleep := c.jitter(backoff)
			c.rec.ObserveDuration(metrics.HistRetryBackoff, sleep)
			c.clk.Sleep(sleep)
			backoff *= 2
			if backoff > policy.MaxBackoff {
				backoff = policy.MaxBackoff
			}
		}
		if c.isClosed() {
			if attempt > 0 {
				c.rec.RetryBout(false)
			}
			return ErrClosed
		}
		if err = op(); err == nil {
			if attempt > 0 {
				c.rec.RetryBout(true)
			}
			return nil
		}
	}
	c.rec.RetryBout(false)
	return fmt.Errorf("%w: %s %s (%d attempts): %w", ErrTierIO, label, what, policy.MaxAttempts, err)
}

// jitter spreads d over [0.5d, 1.5d) so concurrent retry loops decorrelate.
func (c *Client) jitter(d time.Duration) time.Duration {
	c.rndMu.Lock()
	f := 0.5 + c.rnd.Float64()
	c.rndMu.Unlock()
	return time.Duration(float64(d) * f)
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// degradeTier marks t persistently failed. Flush routing and the read
// path consult this to skip the tier: a degraded SSD makes flushes route
// host→PFS directly and reads prefer the PFS replica; a degraded host
// makes D2H flushes stream GPU→SSD.
func (c *Client) degradeTier(t Tier) {
	c.mu.Lock()
	already := c.degraded[t]
	if !already {
		c.degraded[t] = true
		c.bumpLocked()
	}
	c.mu.Unlock()
	if already {
		return
	}
	c.rec.Degradation(t.String())
	c.notifyGPU()
	c.hstC.Notify()
}

// tierDegraded reports whether t has been marked degraded.
func (c *Client) tierDegraded(t Tier) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded[t]
}

// DegradedTiers is the client's health view: the tiers marked
// persistently failed, in fast-to-slow order. Empty means healthy.
func (c *Client) DegradedTiers() []Tier {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Tier
	for t := TierGPU; t <= TierPFS; t++ {
		if c.degraded[t] {
			out = append(out, t)
		}
	}
	return out
}

// readDeep charges a verified read of ck's bytes from the fastest
// below-host tier holding data. A persistently failing SSD read falls
// back to the PFS replica (degrading the SSD tier); a checkpoint with no
// readable deep replica is definitively lost.
func (c *Client) readDeep(ck *checkpoint) error {
	c.mu.Lock()
	onSSD := ck.dataOn(TierSSD)
	onPFS := ck.dataOn(TierPFS)
	c.mu.Unlock()

	if onSSD && (!c.tierDegraded(TierSSD) || !onPFS) {
		err := c.retryIO("ssd", "NVMe read", func() error {
			return c.deepHop(c.p.NVMe, ck.size)
		})
		if err == nil {
			return nil
		}
		if !onPFS {
			return err
		}
		c.degradeTier(TierSSD)
	}
	if onPFS {
		if onSSD {
			c.rec.FallbackRead()
		}
		return c.retryIO("pfs", "PFS read", func() error {
			return c.deepHop(c.p.PFS, ck.size)
		})
	}
	return fmt.Errorf("%w: checkpoint %d has no readable replica below the host tier", ErrLost, ck.id)
}

// deepHop charges one deep-tier link crossing. Chunked configurations
// route through the pipelined form for uniformity; a single hop
// degenerates to monolithic timing either way, so staging reads
// (stageToHost, promoteSSDToHost) cost the same in both modes.
func (c *Client) deepHop(l *fabric.Link, size int64) error {
	if cs := c.p.ChunkSize; cs > 0 {
		_, err := fabric.Path{l}.TryPipelinedTransfer(size, cs)
		return err
	}
	_, err := l.TryTransfer(size)
	return err
}
