package core

import (
	"errors"
	"fmt"
	"time"

	"score/internal/fabric"
	"score/internal/metrics"
	"score/internal/trace"
)

// RetryPolicy bounds the jittered exponential backoff applied to
// transient tier-I/O failures (injected or real). Backoff sleeps run on
// the client's clock, so virtual-time tests stay deterministic.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; it doubles each
	// retry (with ±50% jitter) up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry sleep.
	MaxBackoff time.Duration
	// ProbeInterval is how long a degraded tier stays quarantined before
	// the next operation is allowed to probe it again; a successful
	// probe re-promotes the tier (TierRecovery), a failed one re-arms
	// the quarantine. 0 takes the default (100ms simulated); negative
	// disables probing, keeping degradations sticky for the client's
	// lifetime (the pre-recovery behavior).
	ProbeInterval time.Duration
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.MaxAttempts <= 0 {
		rp.MaxAttempts = 4
	}
	if rp.BaseBackoff <= 0 {
		rp.BaseBackoff = 500 * time.Microsecond
	}
	if rp.MaxBackoff <= 0 {
		rp.MaxBackoff = 8 * time.Millisecond
	}
	if rp.ProbeInterval == 0 {
		rp.ProbeInterval = 100 * time.Millisecond
	}
	return rp
}

// Robustness errors.
var (
	// ErrTierIO: a tier I/O operation kept failing through every retry.
	// The pipeline degrades around it; only operations with no deeper
	// tier to fall back to surface it to the application.
	ErrTierIO = errors.New("core: tier I/O failed")
	// ErrLost: no tier holds a readable copy of the checkpoint (its
	// flush chain was aborted and the cache copy evicted, or every
	// durable replica failed). Definitive — retrying cannot help.
	ErrLost = errors.New("core: checkpoint lost")
)

// retryIO runs op under the client's retry policy: on failure it records
// a retry against label ("pcie", "ssd", "pfs", ...), sleeps a jittered
// exponential backoff on the simulated clock, and tries again, up to
// MaxAttempts. The final error wraps both ErrTierIO and op's error.
func (c *Client) retryIO(label, what string, op func() error) error {
	return c.retryIOAttr(nil, nil, "", label, what, op)
}

// retryIOAttr is retryIO with critical-path attribution and lifecycle
// ledgering: backoff sleeps are charged to CompRetryBackoff and each
// attempt's elapsed time (including failed attempts — faulted transfers
// consume real time before erroring) to comp when att is non-nil, and
// each retry is ledgered against ck's version when ck is non-nil.
func (c *Client) retryIOAttr(ck *checkpoint, att *attrib, comp string, label, what string, op func() error) error {
	policy := c.p.Retry
	backoff := policy.BaseBackoff
	var err error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.rec.Retry(label)
			if ck != nil {
				c.lifecycle(ck.id, trace.LRetried, label, what)
			}
			sleep := c.jitter(backoff)
			c.rec.ObserveDuration(metrics.HistRetryBackoff, sleep)
			c.clk.Sleep(sleep)
			c.mark(att, metrics.CompRetryBackoff)
			backoff *= 2
			if backoff > policy.MaxBackoff {
				backoff = policy.MaxBackoff
			}
		}
		if lerr := c.liveErr(); lerr != nil {
			if attempt > 0 {
				c.rec.RetryBout(false)
			}
			return lerr
		}
		err = op()
		if comp != "" {
			c.mark(att, comp)
		}
		if err == nil {
			if attempt > 0 {
				c.rec.RetryBout(true)
			}
			return nil
		}
	}
	c.rec.RetryBout(false)
	return fmt.Errorf("%w: %s %s (%d attempts): %w", ErrTierIO, label, what, policy.MaxAttempts, err)
}

// jitter spreads d over [0.5d, 1.5d) so concurrent retry loops decorrelate.
func (c *Client) jitter(d time.Duration) time.Duration {
	c.rndMu.Lock()
	f := 0.5 + c.rnd.Float64()
	c.rndMu.Unlock()
	return time.Duration(float64(d) * f)
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// liveErr reports why the client can no longer perform I/O: ErrKilled
// after a rank kill, ErrClosed after an orderly Close, nil while alive.
func (c *Client) liveErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed {
		return ErrKilled
	}
	if c.closed {
		return ErrClosed
	}
	return nil
}

// isShutdownErr distinguishes "the client is going away" from a tier
// fault: degradation and fallback routing must not trigger on it.
func isShutdownErr(err error) bool {
	return errors.Is(err, ErrClosed) || errors.Is(err, ErrKilled)
}

// degradeTier marks t persistently failed. Flush routing and the read
// path consult this to skip the tier: a degraded SSD makes flushes route
// host→PFS directly and reads prefer the PFS replica; a degraded host
// makes D2H flushes stream GPU→SSD. Only the first transition counts as
// a Degradation; a failed recovery probe merely refreshes the quarantine
// timestamp. Returns whether this call made the transition (false when
// the tier was already degraded), so health-triggered quarantines can
// account themselves exactly once.
func (c *Client) degradeTier(t Tier) bool {
	c.mu.Lock()
	already := c.degraded[t]
	c.degraded[t] = true
	c.degradedAt[t] = c.clk.Now()
	if !already {
		c.bumpLocked()
	}
	c.mu.Unlock()
	if already {
		return false
	}
	c.rec.Degradation(t.String())
	c.lifecycle(-1, trace.LDegraded, t.String(), "")
	c.notifyGPU()
	c.hstC.Notify()
	return true
}

// tierDegraded reports whether t should currently be skipped. A degraded
// tier re-enters probation once Retry.ProbeInterval has elapsed since it
// was (last) marked: the caller's next operation probes it, healTier
// clears the mark on success, and a failure re-arms the quarantine.
func (c *Client) tierDegraded(t Tier) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.degraded[t] {
		return false
	}
	if pi := c.p.Retry.ProbeInterval; pi > 0 && c.clk.Now() >= c.degradedAt[t]+pi {
		return false // probation: let the caller try the tier again
	}
	return true
}

// healTier clears a degradation after an operation on t succeeded — the
// recovery half of the degradation ladder. A no-op on healthy tiers, so
// success paths call it unconditionally. Under gray-failure handling a
// success is not enough: a probe that completes slowly keeps the tier's
// health score breached, and the quarantine stands until the EWMA
// recovers — succeeding is necessary but not sufficient to rejoin.
func (c *Client) healTier(t Tier) {
	if c.p.Hedge {
		if class := healthClass(t); class != "" && c.health.breached(class) {
			return
		}
	}
	c.mu.Lock()
	healed := c.degraded[t]
	if healed {
		c.degraded[t] = false
		c.bumpLocked()
	}
	c.mu.Unlock()
	if !healed {
		return
	}
	c.rec.TierRecovery(t.String())
	// Mirror degradeTier's ledger entry so the heal is visible in Chrome
	// traces and version ledgers, not just the TierRecoveries counter.
	c.lifecycle(-1, trace.LHealed, t.String(), "probe succeeded")
	c.notifyGPU()
	c.hstC.Notify()
}

// DegradedTiers is the client's health view: the tiers marked
// persistently failed, in fast-to-slow order. Empty means healthy.
func (c *Client) DegradedTiers() []Tier {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Tier
	for t := TierGPU; t <= TierPFS; t++ {
		if c.degraded[t] {
			out = append(out, t)
		}
	}
	return out
}

// readDeep charges a verified read of ck's bytes from the fastest
// below-host tier holding data, falling down the ladder — local SSD,
// partner SSD, PFS — when a tier keeps failing (degrading it as it
// goes). A checkpoint with no readable deep replica is definitively
// lost.
func (c *Client) readDeep(ck *checkpoint, att *attrib) error {
	if c.p.Hedge {
		// Hedged form: race the ladder's legs instead of walking them.
		// A single candidate degenerates to the sequential walk below.
		if legs := c.deepLegs(ck); len(legs) >= 2 {
			return c.hedgeRace(ck, att, legs)
		}
	}

	c.mu.Lock()
	onSSD := ck.dataOn(TierSSD)
	onPartner := ck.dataOn(TierPartner)
	onPFS := ck.dataOn(TierPFS)
	c.mu.Unlock()

	if onSSD && (!c.tierDegraded(TierSSD) || !(onPartner || onPFS)) {
		legStart := c.clk.Now()
		err := c.retryIOAttr(ck, att, metrics.CompXferSSD, "ssd", "NVMe read", func() error {
			return c.deepHop(c.p.NVMe, ck.size)
		})
		if err == nil {
			c.observeHealth(TierSSD, ck.size, c.clk.Now()-legStart)
			c.healTier(TierSSD)
			return nil
		}
		if isShutdownErr(err) || !(onPartner || onPFS) {
			return err
		}
		c.degradeTier(TierSSD)
	}
	if onPartner && (!c.tierDegraded(TierPartner) || !onPFS) {
		if onSSD {
			c.rec.FallbackRead()
		}
		legStart := c.clk.Now()
		err := c.retryIOAttr(ck, att, metrics.CompXferPartner, "partner", "partner SSD read", func() error {
			return c.partnerHop(ck.size, false)
		})
		if err == nil {
			c.observeHealth(TierPartner, ck.size, c.clk.Now()-legStart)
			c.healTier(TierPartner)
			return nil
		}
		if isShutdownErr(err) || !onPFS {
			return err
		}
		c.degradeTier(TierPartner)
	}
	if onPFS {
		if onSSD || onPartner {
			c.rec.FallbackRead()
		}
		legStart := c.clk.Now()
		err := c.retryIOAttr(ck, att, metrics.CompXferPFS, "pfs", "PFS read", func() error {
			return c.deepHop(c.p.PFS, ck.size)
		})
		if err == nil {
			c.observeHealth(TierPFS, ck.size, c.clk.Now()-legStart)
		}
		return err
	}
	return fmt.Errorf("%w: checkpoint %d has no readable replica below the host tier", ErrLost, ck.id)
}

// deepHop charges one deep-tier link crossing. Chunked configurations
// route through the pipelined form for uniformity; a single hop
// degenerates to monolithic timing either way, so staging reads
// (stageToHost, promoteSSDToHost) cost the same in both modes.
func (c *Client) deepHop(l *fabric.Link, size int64) error {
	if cs := c.p.ChunkSize; cs > 0 {
		_, err := fabric.Path{l}.TryPipelinedTransfer(size, cs)
		return err
	}
	_, err := l.TryTransfer(size)
	return err
}

// partnerHop charges a crossing of the inter-node partner path: the
// write direction (local NIC → partner NIC → partner NVMe) for
// replication, the reverse for reads. Chunked configurations pipeline
// the hops.
func (c *Client) partnerHop(size int64, write bool) error {
	path := c.p.PartnerPath
	if !write {
		rev := make(fabric.Path, len(path))
		for i, l := range path {
			rev[len(path)-1-i] = l
		}
		path = rev
	}
	if cs := c.p.ChunkSize; cs > 0 {
		_, err := path.TryPipelinedTransfer(size, cs)
		return err
	}
	_, err := path.TryTransfer(size)
	return err
}
