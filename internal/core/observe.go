package core

import (
	"fmt"

	"score/internal/metrics"
	"score/internal/trace"
)

// This file is the client's observability surface: byte-conservation
// fate accounting (every accepted checkpoint ends up durable, discarded,
// or lost — exactly once), sampler probe registration, and the invariant
// check entry points used by tests and the chaos soak.

// ckptFate is the terminal conservation outcome of one checkpoint.
type ckptFate int

const (
	// fateDurable: the bytes landed on a durable tier (SSD or PFS).
	fateDurable ckptFate = iota
	// fateDiscarded: the pending flush was cancelled because the
	// checkpoint was consumed and is discardable (§2 condition 5), or
	// its cache replica vanished after consumption.
	fateDiscarded
	// fateLost: every durable route failed (abortFlush's fail-open).
	fateLost
)

// accountFate credits ck's bytes to one conservation fate, exactly once
// per checkpoint. Later calls (e.g. a discard check on a checkpoint that
// already flushed) are no-ops. Checkpoints recovered from a durable
// store were never accepted into this client's pipeline and are
// excluded, keeping accepted == durable + discarded + lost at
// quiescence.
func (c *Client) accountFate(ck *checkpoint, fate ckptFate) {
	c.mu.Lock()
	if ck.fateAccounted {
		c.mu.Unlock()
		return
	}
	if _, recovered := ck.pay.(*storePayload); recovered {
		c.mu.Unlock()
		return
	}
	ck.fateAccounted = true
	c.mu.Unlock()
	switch fate {
	case fateDurable:
		// ConserveDurable before CritPath: the running invariant bounds
		// attribution records by durable checkpoints at every instant.
		c.rec.ConserveDurable(ck.size)
		if ck.att != nil {
			crit := ck.att.finish(c.clk.Now())
			c.rec.CritPath(crit)
			if c.p.SLO != nil {
				c.p.SLO.ObserveCritPath(crit)
			}
		}
		c.lifecycle(ck.id, trace.LDurable, "", "")
	case fateDiscarded:
		c.rec.ConserveDiscarded(ck.size)
		c.lifecycle(ck.id, trace.LDiscarded, "", "")
	case fateLost:
		c.rec.ConserveLost(ck.size)
		c.lifecycle(ck.id, trace.LLost, "", "")
	}
	// Group commit (§cluster failure model): report durable/lost
	// transitions so the job-wide tracker can compute the globally
	// committed frontier. Discards are deliberately not reported — a
	// consumed-and-discardable version is not restart state.
	if c.p.Commit != nil {
		switch fate {
		case fateDurable:
			c.p.Commit.MarkDurable(c.p.Rank, int64(ck.id))
		case fateLost:
			c.p.Commit.MarkLost(c.p.Rank, int64(ck.id))
		}
	}
}

// RegisterProbes attaches this client's gauge probes to a sampler: cache
// occupancy and score means per tier, flush queue depths, and the GPU's
// copy-engine occupancy. Call before Sampler.Start. prefix
// disambiguates clients sharing a sampler (GPU IDs repeat across
// nodes); empty defaults to "gpu<id>". The host-cache probes are
// registered even for a shared pool (the values are then pool-wide,
// not per-client).
func (c *Client) RegisterProbes(s *metrics.Sampler, prefix string) {
	if prefix == "" {
		prefix = fmt.Sprintf("gpu%d", c.p.GPU.ID())
	}
	name := func(what string) string {
		return prefix + "." + what
	}
	s.Register(name("cache.gpu.used_bytes"), func() float64 {
		used := c.gpuC.UsedBytes()
		if c.gpuP != nil {
			used += c.gpuP.UsedBytes()
		}
		return float64(used)
	})
	s.Register(name("cache.gpu.resident"), func() float64 {
		n := c.gpuC.Resident()
		if c.gpuP != nil {
			n += c.gpuP.Resident()
		}
		return float64(n)
	})
	s.Register(name("cache.gpu.score_p_mean"), func() float64 {
		p, _ := c.gpuC.ScoreSummary()
		return p
	})
	s.Register(name("cache.gpu.score_s_mean"), func() float64 {
		_, sc := c.gpuC.ScoreSummary()
		return sc
	})
	s.Register(name("cache.host.used_bytes"), func() float64 {
		return float64(c.hstC.UsedBytes())
	})
	s.Register(name("cache.host.resident"), func() float64 {
		return float64(c.hstC.Resident())
	})
	s.Register(name("engines.busy"), func() float64 {
		return float64(c.p.GPU.EnginesBusy())
	})
	s.Register(name("queue.d2h"), func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.d2hQ.len() + c.d2hBusy)
	})
	s.Register(name("queue.h2f"), func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.h2fQ.len() + c.h2fBusy)
	})
	// Tier health: how many tiers are currently out of rotation, and how
	// many degradations a probe has healed — sampled so dashboards see
	// the recovery itself, not only the terminal counters.
	s.Register(name("tiers.degraded"), func() float64 {
		return float64(len(c.DegradedTiers()))
	})
	s.Register(name("tiers.recoveries"), func() float64 {
		return float64(c.rec.TierRecoveryCount())
	})
	// Per-link-class gray-failure health: the EWMA slowdown ratio of each
	// deep link class (1.0 = nominal, 0 = no samples yet). Sampled so
	// dashboards see the degradation building before a quarantine trips.
	for _, class := range []string{"ssd", "partner", "pfs"} {
		class := class
		s.Register(name("health."+class), func() float64 {
			return c.health.score(class)
		})
	}
	s.Register(name("drain.active"), func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.drainActive {
			return 1
		}
		return 0
	})
}

// CheckInvariants verifies the recorder's structural invariants (byte
// conservation bounds, retry-bout bounds, histogram consistency) against
// the client's current metrics snapshot.
func (c *Client) CheckInvariants() error {
	return metrics.CheckInvariants(c.rec.Snapshot())
}

// CheckInvariantsQuiescent additionally asserts the flush pipeline is
// fully drained (no pending bytes). Valid only after WaitFlush and
// before Close.
func (c *Client) CheckInvariantsQuiescent() error {
	return metrics.CheckInvariantsQuiescent(c.rec.Snapshot())
}
