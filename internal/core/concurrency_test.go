package core

import (
	"sync/atomic"
	"testing"
	"time"

	"score/internal/device"
	"score/internal/fabric"
	"score/internal/payload"
	"score/internal/simclock"
)

// TestConcurrentProducerConsumer exercises the full interleaving the
// unified life cycle exists for (§4.1.3): one task streams checkpoints
// while another concurrently consumes them with hints, so flushes and
// prefetches overlap on the same cache tiers throughout.
func TestConcurrentProducerConsumer(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, func(p *Params) { p.AutoStartPrefetch = true })
		defer r.client.Close()
		const n = 24

		// The consumer announces its (sequential) order up front.
		for i := ID(0); i < n; i++ {
			r.client.PrefetchEnqueue(i)
		}

		written := make([]atomic.Bool, n)
		wg := simclock.NewWaitGroup(clk)
		wg.Add(2)
		var prodErr, consErr error
		clk.Go(func() {
			defer wg.Done()
			for i := ID(0); i < n; i++ {
				if err := r.client.Checkpoint(i, payload.NewVirtual(1*MB)); err != nil {
					prodErr = err
					return
				}
				written[i].Store(true)
				clk.Sleep(3 * time.Millisecond)
			}
		})
		clk.Go(func() {
			defer wg.Done()
			for i := ID(0); i < n; i++ {
				for !written[i].Load() {
					clk.Sleep(time.Millisecond)
				}
				if _, err := r.client.Restore(i); err != nil {
					consErr = err
					return
				}
				clk.Sleep(4 * time.Millisecond)
			}
		})
		wg.Wait()
		if prodErr != nil {
			t.Fatalf("producer: %v", prodErr)
		}
		if consErr != nil {
			t.Fatalf("consumer: %v", consErr)
		}
		if err := r.client.Err(); err != nil {
			t.Fatal(err)
		}
		sum := r.client.Metrics().Snapshot()
		if sum.CheckpointOps != n || sum.RestoreOps != n {
			t.Errorf("ops = %d/%d, want %d/%d", sum.CheckpointOps, sum.RestoreOps, n, n)
		}
	})
}

// TestTwoClientsShareNodeLinks runs two clients whose flush chains
// contend on the same PCIe pair and NVMe link.
func TestTwoClientsShareNodeLinks(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		d2d2, pcie2 := r.cluster.Nodes[0].GPULinks(1)
		dev2 := newSecondGPU(clk, d2d2, pcie2)
		c2, err := New(Params{
			Clock: clk, GPU: dev2, NVMe: r.cluster.Nodes[0].NVMe, PFS: r.cluster.PFS,
			GPUCacheSize: 4 * MB, HostCacheSize: 16 * MB,
			AsyncHostInit: false,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c2.Close()

		wg := simclock.NewWaitGroup(clk)
		errs := make([]error, 2)
		for idx, cl := range []*Client{r.client, c2} {
			idx, cl := idx, cl
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				for i := ID(0); i < 8; i++ {
					if err := cl.Checkpoint(i, payload.NewVirtual(1*MB)); err != nil {
						errs[idx] = err
						return
					}
				}
				errs[idx] = cl.WaitFlush()
			})
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}
		// Both clients' data must be fully flushed despite contention.
		for _, cl := range []*Client{r.client, c2} {
			cl.mu.Lock()
			for id, ck := range cl.ckpts {
				if !ck.dataOn(TierSSD) {
					t.Errorf("checkpoint %d not on SSD", id)
				}
			}
			cl.mu.Unlock()
		}
	})
}

// TestRestoreDuringActiveFlushBacklog reads the oldest checkpoint while
// the flush queue is still deep — the promotion path must coexist with
// in-flight flushes of other checkpoints.
func TestRestoreDuringActiveFlushBacklog(t *testing.T) {
	run(t, func(clk *simclock.Virtual) {
		r := newRig(t, clk, nil)
		defer r.client.Close()
		for i := ID(0); i < 10; i++ {
			if err := r.client.Checkpoint(i, payload.NewVirtual(1*MB)); err != nil {
				t.Fatal(err)
			}
		}
		// No WaitFlush: the D2H/H2F queues are still draining.
		for i := ID(0); i < 10; i++ {
			if _, err := r.client.Restore(i); err != nil {
				t.Fatalf("restore %d mid-backlog: %v", i, err)
			}
		}
		if err := r.client.Err(); err != nil {
			t.Fatal(err)
		}
	})
}

// newSecondGPU builds a GPU on the given links for multi-client tests.
func newSecondGPU(clk simclock.Clock, d2d, pcie *fabric.Link) *device.GPU {
	return device.NewGPU(clk, 1, 64*MB, d2d, pcie, device.AllocCosts{
		DeviceBytesPerSec:     1000 * MB,
		PinnedHostBytesPerSec: 400 * MB,
	})
}
