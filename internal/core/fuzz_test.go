package core

import (
	"testing"
)

// FuzzIDFIFO drives the compacting FIFO with an arbitrary push/pop
// sequence and checks every observable against a naive reference queue
// (a plain slice that re-slices on pop). The two must agree exactly: the
// compaction step is an allocation optimization, never a semantic one.
func FuzzIDFIFO(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0x00, 0xFF})
	f.Add(func() []byte {
		// Push/pop churn long enough to cross the head>32 compaction
		// threshold several times.
		var seed []byte
		for i := 0; i < 300; i++ {
			seed = append(seed, byte(i%2)*0x80|byte(i))
		}
		return seed
	}())

	f.Fuzz(func(t *testing.T, data []byte) {
		var fifo idFIFO
		var ref []ID // naive model: append to push, re-slice to pop
		next := ID(0)

		for _, op := range data {
			if op&0x80 == 0 {
				// Push. Derive the id from a counter plus low op bits so
				// duplicate ids also occur.
				id := next + ID(op&0x0F)
				next++
				fifo.push(id)
				ref = append(ref, id)
			} else {
				id, ok := fifo.pop()
				wantOK := len(ref) > 0
				if ok != wantOK {
					t.Fatalf("pop ok=%v, reference says %v", ok, wantOK)
				}
				if ok {
					if want := ref[0]; id != want {
						t.Fatalf("pop = %d, reference head = %d", id, want)
					}
					ref = ref[1:]
				}
			}
			if got, want := fifo.len(), len(ref); got != want {
				t.Fatalf("len = %d, reference len = %d", got, want)
			}
		}

		// Drain: the remaining ids must come out in reference order.
		for len(ref) > 0 {
			id, ok := fifo.pop()
			if !ok {
				t.Fatalf("fifo empty with %d ids still in the reference", len(ref))
			}
			if id != ref[0] {
				t.Fatalf("drain pop = %d, reference head = %d", id, ref[0])
			}
			ref = ref[1:]
		}
		if id, ok := fifo.pop(); ok {
			t.Fatalf("pop after drain returned %d", id)
		}
	})
}
