package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file holds the lock-free hot path of the Recorder: atomic
// histograms and the copy-on-write histogram registry. The paper-scale
// ambition (100k ranks, many worker tasks per rank) makes one registry
// mutex per rank a serialization point — every flush worker, prefetcher,
// and the application task all observe latencies on the same Recorder.
// Scalar counters became plain atomics (see metrics.go); histograms get
// atomic buckets here. Everything merges on read: Snapshot sums the
// atomic cells, so writers never coordinate with each other.
//
// Determinism: all updates are commutative integer adds, so totals are
// independent of the real-scheduler interleaving of same-instant tasks —
// the same property the mutex-based version had.

// AtomicHistogram is a fixed-boundary latency histogram with lock-free
// Observe: one atomic add on the bucket, the count, and the sum. The
// boundaries are the shared defaultBounds, so snapshots stay mergeable
// bucket by bucket with everything else in the codebase.
type AtomicHistogram struct {
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sumNS  atomic.Int64
}

// NewAtomicHistogram returns an empty lock-free histogram over the
// shared default bounds.
func NewAtomicHistogram() *AtomicHistogram {
	return &AtomicHistogram{bounds: defaultBounds, counts: make([]atomic.Int64, len(defaultBounds)+1)}
}

// Observe adds one duration (negative values clamp to zero). Safe for
// concurrent use without external locking.
func (h *AtomicHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[histBucket(h.bounds, d)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// histBucket finds the bucket for d by binary search over the shared
// boundary ladder.
func histBucket(bounds []time.Duration, d time.Duration) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if d <= bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Snapshot merges the atomic cells into an immutable snapshot. Taken
// while writers are active it is a per-cell-consistent view (cells are
// read independently); at quiescence it is exact.
func (h *AtomicHistogram) Snapshot() HistogramSnapshot {
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return HistogramSnapshot{
		Bounds: h.bounds,
		Counts: counts,
		Count:  h.count.Load(),
		Sum:    time.Duration(h.sumNS.Load()),
	}
}

// histRegistry maps histogram names to atomic histograms with a
// copy-on-write map: the read path (every Observe) is one atomic load
// plus a map lookup, and only the first observation of a new name takes
// the mutex to publish a grown copy. Histogram names are a small fixed
// set (the Hist* constants plus per-tier flush names), so copies are
// rare and tiny.
type histRegistry struct {
	m  atomic.Pointer[map[string]*AtomicHistogram]
	mu sync.Mutex // guards copy-on-write inserts only
}

// get returns the named histogram, creating and publishing it on first
// use.
func (g *histRegistry) get(name string) *AtomicHistogram {
	if m := g.m.Load(); m != nil {
		if h := (*m)[name]; h != nil {
			return h
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	old := g.m.Load()
	if old != nil {
		if h := (*old)[name]; h != nil {
			return h
		}
	}
	grown := make(map[string]*AtomicHistogram, 8)
	if old != nil {
		for k, v := range *old {
			grown[k] = v
		}
	}
	h := NewAtomicHistogram()
	grown[name] = h
	g.m.Store(&grown)
	return h
}

// snapshot returns merged snapshots of every registered histogram, or
// nil when none exist.
func (g *histRegistry) snapshot() map[string]HistogramSnapshot {
	m := g.m.Load()
	if m == nil || len(*m) == 0 {
		return nil
	}
	out := make(map[string]HistogramSnapshot, len(*m))
	for name, h := range *m {
		out[name] = h.Snapshot()
	}
	return out
}
