package metrics

import (
	"fmt"
	"time"
)

// Histogram names recorded by the runtime. Keeping them as constants means
// exporters, tests and dashboards agree on the spelling.
const (
	HistCheckpoint   = "checkpoint_blocked"
	HistRestore      = "restore_blocked"
	HistFlushPrefix  = "flush_" // + source tier name, e.g. flush_gpu
	HistPrefetch     = "prefetch"
	HistEvictionWait = "eviction_wait"
	HistRetryBackoff = "retry_backoff"
	HistDrainFlush   = "drain_flush"  // per-version triage flush latency during a drain
	HistDrainSlack   = "drain_slack"  // grace window left when a drain finished (deadline-hit margin)
	HistMigrateCopy  = "migrate_copy" // per-version copy latency during a live migration
	HistHedgeWait    = "hedge_wait"   // hedged deep read: time from first leg start to winning completion
	HistStallReroute = "stall_reroute" // alternate-tier write latency after a stalled flush leg
)

// defaultBounds are the fixed histogram boundaries shared by every latency
// histogram: a 1-2-5 decade ladder from 1µs to 100s. Fixed boundaries make
// histograms from different ranks (and different runs) mergeable bucket by
// bucket, which Merge and the registry rely on.
var defaultBounds = buildDefaultBounds()

func buildDefaultBounds() []time.Duration {
	var out []time.Duration
	for base := time.Microsecond; base <= 10*time.Second; base *= 1000 {
		for _, mul := range []time.Duration{1, 2, 5, 10, 20, 50, 100, 200, 500} {
			if b := base * mul; b <= 100*time.Second {
				out = append(out, b)
			}
		}
	}
	return out
}

// Histogram is a fixed-boundary latency histogram. Bucket i counts
// observations d <= bounds[i]; the final bucket is the +Inf overflow.
// It is not safe for concurrent use on its own — the Recorder guards it.
type Histogram struct {
	bounds []time.Duration
	counts []int64 // len(bounds)+1, last is +Inf
	count  int64
	sum    time.Duration
}

// NewHistogram returns an empty histogram over the shared default bounds.
func NewHistogram() *Histogram {
	return &Histogram{bounds: defaultBounds, counts: make([]int64, len(defaultBounds)+1)}
}

// Observe adds one duration (negative values clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[h.bucket(d)]++
	h.count++
	h.sum += d
}

func (h *Histogram) bucket(d time.Duration) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if d <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Snapshot returns an immutable copy.
func (h *Histogram) Snapshot() HistogramSnapshot {
	counts := make([]int64, len(h.counts))
	copy(counts, h.counts)
	return HistogramSnapshot{Bounds: h.bounds, Counts: counts, Count: h.count, Sum: h.sum}
}

// HistogramSnapshot is the exported, JSON-serialisable form of a Histogram.
type HistogramSnapshot struct {
	Bounds []time.Duration `json:"bounds"`
	Counts []int64         `json:"counts"` // len(Bounds)+1, last is +Inf
	Count  int64           `json:"count"`
	Sum    time.Duration   `json:"sum"`
}

// Quantile returns an upper-bound estimate for the q-th quantile
// (0 < q <= 1): the boundary of the bucket containing that rank. Returns 0
// for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			// Overflow bucket: no finite upper bound; report the mean of
			// everything as the best available estimate.
			return s.Mean()
		}
	}
	return s.Mean()
}

// P50, P95 and P99 are the quantiles the paper's evaluation quotes;
// P999 serves the SLO engine's tighter tail objectives on the same
// 1-2-5 ladder.
func (s HistogramSnapshot) P50() time.Duration  { return s.Quantile(0.50) }
func (s HistogramSnapshot) P95() time.Duration  { return s.Quantile(0.95) }
func (s HistogramSnapshot) P99() time.Duration  { return s.Quantile(0.99) }
func (s HistogramSnapshot) P999() time.Duration { return s.Quantile(0.999) }

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// merge adds other into s bucket by bucket. Both histograms must share the
// same fixed boundaries (they always do — see defaultBounds).
func (s HistogramSnapshot) merge(other HistogramSnapshot) (HistogramSnapshot, error) {
	if len(s.Counts) == 0 {
		return other, nil
	}
	if len(other.Counts) == 0 {
		return s, nil
	}
	if len(s.Counts) != len(other.Counts) {
		return s, fmt.Errorf("histogram bucket count mismatch: %d vs %d", len(s.Counts), len(other.Counts))
	}
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count + other.Count,
		Sum:    s.Sum + other.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + other.Counts[i]
	}
	return out, nil
}
