package metrics

import (
	"strings"
	"testing"
	"time"
)

// healthySummary builds a summary that satisfies every invariant, for the
// violation tests to perturb one field at a time.
func healthySummary() Summary {
	r := NewRecorder()
	r.Checkpoint(1000, time.Millisecond)
	r.CheckpointAccepted(1000)
	r.ConserveDurable(600)
	r.ConserveDiscarded(400)
	r.Retry("ssd")
	r.RetryBout(true)
	r.CritPath(CritPathRecord{
		Op: CritDurable, Version: 1, Total: 3 * time.Millisecond,
		Components: map[string]time.Duration{
			CompCopyD2D:  time.Millisecond,
			CompXferPCIe: time.Millisecond,
			CompXferSSD:  time.Millisecond,
		},
	})
	return r.Snapshot()
}

func TestCheckInvariantsHealthy(t *testing.T) {
	s := healthySummary()
	if err := CheckInvariants(s); err != nil {
		t.Errorf("healthy summary failed running invariants: %v", err)
	}
	if err := CheckInvariantsQuiescent(s); err != nil {
		t.Errorf("healthy drained summary failed quiescent invariants: %v", err)
	}
}

func TestCheckInvariantsViolations(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Summary)
		wantSub string
	}{
		{
			"fates over-credited",
			func(s *Summary) { s.DurableBytes += 500 },
			"over-credited",
		},
		{
			"negative accepted",
			func(s *Summary) { s.AcceptedBytes = -1 },
			"negative",
		},
		{
			"recovered bouts exceed retries",
			func(s *Summary) { s.RetryBoutsRecovered = 99 },
			"recovered bouts",
		},
		{
			"degradations exceed exhausted bouts",
			func(s *Summary) { s.Degradations = map[string]int64{"ssd": 1} },
			"exhausted bouts",
		},
		{
			"repopulations without fallback reads",
			func(s *Summary) { s.Repopulations = 3 },
			"fallback reads",
		},
		{
			"pipelined hop bytes diverge",
			func(s *Summary) { s.PipelinedHopBytes += 7 },
			"per-hop bytes",
		},
		{
			"histogram sum mismatch",
			func(s *Summary) {
				h := s.Histograms[HistCheckpoint]
				h.Count += 5
				s.Histograms[HistCheckpoint] = h
			},
			"bucket counts sum",
		},
		{
			"restore series length mismatch",
			func(s *Summary) { s.RestoreOps = 4 },
			"restore series",
		},
		{
			"critpath unattributed gap",
			func(s *Summary) {
				s.CritPaths[0].Unattributed = time.Millisecond
				s.CritPaths[0].Total += time.Millisecond
			},
			"unattributed latency gap",
		},
		{
			"critpath components diverge from total",
			func(s *Summary) { s.CritPaths[0].Total += time.Millisecond },
			"!= total",
		},
		{
			"critpath records outnumber durable checkpoints",
			func(s *Summary) { s.DurableOps = 0 },
			"durable records",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := healthySummary()
			tc.mutate(&s)
			err := CheckInvariants(s)
			if err == nil {
				t.Fatal("mutated summary passed invariants")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestCheckInvariantsQuiescentCatchesMissingCritPath(t *testing.T) {
	s := healthySummary()
	s.CritPaths = nil // a durable version with no attribution ledger
	if err := CheckInvariants(s); err != nil {
		t.Errorf("missing records must be legal while running: %v", err)
	}
	err := CheckInvariantsQuiescent(s)
	if err == nil {
		t.Fatal("quiescent check passed with a durable version missing its critpath record")
	}
	if !strings.Contains(err.Error(), "durable records") {
		t.Errorf("error %q does not mention durable records", err)
	}
}

func TestCheckInvariantsQuiescentCatchesPending(t *testing.T) {
	s := healthySummary()
	s.DiscardedBytes -= 100 // 100 bytes left with undecided fate
	if err := CheckInvariants(s); err != nil {
		t.Errorf("pending bytes must be legal while running: %v", err)
	}
	err := CheckInvariantsQuiescent(s)
	if err == nil {
		t.Fatal("quiescent check passed with pending bytes")
	}
	if !strings.Contains(err.Error(), "pending") {
		t.Errorf("error %q does not mention pending bytes", err)
	}
}

func TestCheckInvariantsQuiescentCatchesAcceptGap(t *testing.T) {
	s := healthySummary()
	// A checkpoint the application saw but the pipeline never accepted.
	s.CheckpointBytes += 512
	err := CheckInvariantsQuiescent(s)
	if err == nil {
		t.Fatal("quiescent check passed with accepted != checkpointed")
	}
	if !strings.Contains(err.Error(), "checkpointed") {
		t.Errorf("error %q does not mention the checkpoint gap", err)
	}
}

func TestCheckInvariantsQuiescentSkipsUntrackedRuns(t *testing.T) {
	// A summary from a run that predates fate tracking (all conservation
	// counters zero) must not fail the quiescent balance.
	var s Summary
	s.CheckpointBytes = 1000
	if err := CheckInvariantsQuiescent(s); err != nil {
		t.Errorf("untracked summary failed quiescent invariants: %v", err)
	}
}
