package metrics

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"score/internal/simclock"
)

func TestSamplerTicksOnVirtualClock(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		s := NewSampler(clk, time.Millisecond, 0)
		var gauge atomic.Int64 // probe runs on the sampler task
		s.Register("g", func() float64 { return float64(gauge.Load()) })
		s.Start()
		for i := 1; i <= 5; i++ {
			gauge.Store(int64(i))
			clk.Sleep(time.Millisecond)
		}
		s.Stop()

		pts := s.Series()["g"]
		// Five interval ticks plus the final Stop-time sample.
		if len(pts) < 5 || len(pts) > 6 {
			t.Fatalf("got %d samples, want 5 or 6", len(pts))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].At < pts[i-1].At {
				t.Errorf("samples out of order: %v after %v", pts[i].At, pts[i-1].At)
			}
		}
		if last := pts[len(pts)-1]; last.Value != 5 {
			t.Errorf("final sample value = %v, want 5", last.Value)
		}
	})
}

func TestSamplerStopTakesFinalSample(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		s := NewSampler(clk, time.Hour, 0) // interval never elapses
		s.Register("g", func() float64 { return 42 })
		s.Start()
		clk.Sleep(time.Millisecond)
		s.Stop()
		pts := s.Series()["g"]
		if len(pts) != 1 {
			t.Fatalf("got %d samples, want exactly the Stop-time one", len(pts))
		}
		if pts[0].Value != 42 || pts[0].At != time.Millisecond {
			t.Errorf("final sample = %+v, want value 42 at 1ms", pts[0])
		}
		s.Stop() // idempotent
		if got := len(s.Series()["g"]); got != 1 {
			t.Errorf("second Stop added samples: %d", got)
		}
	})
}

func TestSamplerRingCapacity(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		s := NewSampler(clk, time.Millisecond, 4)
		var tick atomic.Int64 // probe runs on the sampler task
		s.Register("g", func() float64 { return float64(tick.Add(1)) })
		s.Start()
		clk.Sleep(10 * time.Millisecond)
		s.Stop()
		pts := s.Series()["g"]
		if len(pts) != 4 {
			t.Fatalf("ring kept %d samples, want capacity 4", len(pts))
		}
		// The ring is recent-biased: the newest sample survives.
		if last := pts[len(pts)-1]; last.Value != float64(tick.Load()) {
			t.Errorf("newest sample value = %v, want %v", last.Value, float64(tick.Load()))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Value != pts[i-1].Value+1 {
				t.Errorf("retained window not contiguous: %v after %v", pts[i].Value, pts[i-1].Value)
			}
		}
	})
}

func TestSamplerCounterSink(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		s := NewSampler(clk, time.Millisecond, 0)
		s.Register("g", func() float64 { return 7 })
		type event struct {
			name string
			at   time.Duration
			v    float64
		}
		var mu sync.Mutex // sink runs on the sampler task
		var events []event
		s.SetCounterSink(func(name string, at time.Duration, v float64) {
			mu.Lock()
			events = append(events, event{name, at, v})
			mu.Unlock()
		})
		s.Start()
		clk.Sleep(3 * time.Millisecond)
		s.Stop()
		mu.Lock()
		defer mu.Unlock()
		if len(events) == 0 {
			t.Fatal("counter sink saw no events")
		}
		for _, e := range events {
			if e.name != "g" || e.v != 7 {
				t.Errorf("sink event = %+v, want name g value 7", e)
			}
		}
	})
}

func TestSamplerSeriesNames(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		s := NewSampler(clk, time.Millisecond, 0)
		s.Register("z", func() float64 { return 0 })
		s.Register("a", func() float64 { return 0 })
		got := s.SeriesNames()
		if len(got) != 2 || got[0] != "a" || got[1] != "z" {
			t.Errorf("SeriesNames = %v, want [a z]", got)
		}
	})
}
