package metrics

import (
	"testing"
	"time"
)

func TestHistogramBoundsLadder(t *testing.T) {
	b := defaultBounds
	if len(b) == 0 {
		t.Fatal("no default bounds")
	}
	if b[0] != time.Microsecond {
		t.Errorf("first bound = %v, want 1µs", b[0])
	}
	if last := b[len(b)-1]; last != 100*time.Second {
		t.Errorf("last bound = %v, want 100s", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Errorf("bounds not strictly increasing at %d: %v then %v", i, b[i-1], b[i])
		}
	}
}

func TestHistogramObserveAndBuckets(t *testing.T) {
	h := NewHistogram()
	h.Observe(500 * time.Nanosecond) // below first bound → bucket 0
	h.Observe(time.Microsecond)      // exactly on a bound → that bucket
	h.Observe(3 * time.Millisecond)  // between 2ms and 5ms
	h.Observe(-time.Second)          // clamps to zero → bucket 0
	h.Observe(time.Hour)             // beyond the ladder → +Inf bucket

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Errorf("bucket counts sum to %d, total says %d", sum, s.Count)
	}
	if got := s.Counts[0]; got != 3 {
		t.Errorf("first bucket has %d observations, want 3 (sub-µs, exact bound, clamped negative)", got)
	}
	if got := s.Counts[len(s.Counts)-1]; got != 1 {
		t.Errorf("+Inf bucket has %d observations, want 1", got)
	}
	wantSum := time.Microsecond + 500*time.Nanosecond + 3*time.Millisecond + time.Hour
	if s.Sum != wantSum {
		t.Errorf("Sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if q := h.Snapshot().P99(); q != 0 {
		t.Errorf("empty histogram P99 = %v, want 0", q)
	}
	// 90 fast observations and 10 slow ones: p50 resolves to the fast
	// bucket's bound, p99 to the slow one's.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Second)
	}
	s := h.Snapshot()
	if got := s.P50(); got != time.Microsecond {
		t.Errorf("P50 = %v, want 1µs", got)
	}
	if got := s.P95(); got != time.Second {
		t.Errorf("P95 = %v, want 1s", got)
	}
	if got := s.P99(); got != time.Second {
		t.Errorf("P99 = %v, want 1s", got)
	}
	if got := s.Quantile(0); got != time.Microsecond {
		t.Errorf("Quantile(0) = %v, want the lowest occupied bound", got)
	}
}

func TestHistogramQuantileOverflowReportsMean(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Hour)
	h.Observe(3 * time.Hour)
	s := h.Snapshot()
	if got, want := s.P99(), 2*time.Hour; got != want {
		t.Errorf("P99 of all-overflow histogram = %v, want mean %v", got, want)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 7; i++ {
		a.Observe(time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		b.Observe(time.Second)
	}
	merged, err := a.Snapshot().merge(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if merged.Count != 10 {
		t.Errorf("merged Count = %d, want 10", merged.Count)
	}
	if want := 7*time.Millisecond + 3*time.Second; merged.Sum != want {
		t.Errorf("merged Sum = %v, want %v", merged.Sum, want)
	}
	var sum int64
	for _, c := range merged.Counts {
		sum += c
	}
	if sum != merged.Count {
		t.Errorf("merged bucket counts sum to %d, total says %d", sum, merged.Count)
	}

	// Merging with an empty snapshot is the identity in both directions.
	empty := HistogramSnapshot{}
	if got, err := a.Snapshot().merge(empty); err != nil || got.Count != 7 {
		t.Errorf("merge with empty: count %d err %v, want 7 nil", got.Count, err)
	}
	if got, err := empty.merge(a.Snapshot()); err != nil || got.Count != 7 {
		t.Errorf("empty merge: count %d err %v, want 7 nil", got.Count, err)
	}

	// Mismatched bucket layouts must refuse to merge.
	bad := HistogramSnapshot{Counts: []int64{1, 2}}
	if _, err := a.Snapshot().merge(bad); err == nil {
		t.Error("merging mismatched bucket counts did not error")
	}
}

func TestRecorderHistogramsInSnapshot(t *testing.T) {
	r := NewRecorder()
	r.Checkpoint(1024, 2*time.Millisecond)
	r.Restore(0, 1024, 5*time.Millisecond, 1)
	r.EvictionWait(time.Millisecond)
	r.ObserveDuration(HistFlushPrefix+"gpu", 100*time.Microsecond)
	r.ObserveDuration(HistPrefetch, 200*time.Microsecond)
	r.ObserveDuration(HistRetryBackoff, 50*time.Millisecond)

	s := r.Snapshot()
	for _, name := range []string{
		HistCheckpoint, HistRestore, HistEvictionWait,
		HistFlushPrefix + "gpu", HistPrefetch, HistRetryBackoff,
	} {
		h, ok := s.Histograms[name]
		if !ok {
			t.Errorf("snapshot missing histogram %q", name)
			continue
		}
		if h.Count != 1 {
			t.Errorf("histogram %q Count = %d, want 1", name, h.Count)
		}
	}
	if err := CheckInvariants(s); err != nil {
		t.Errorf("invariants after recording: %v", err)
	}
}

func TestMergeCombinesHistograms(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	a.Checkpoint(100, time.Millisecond)
	b.Checkpoint(200, 2*time.Millisecond)
	b.ObserveDuration(HistPrefetch, time.Millisecond)

	m := Merge(a.Snapshot(), b.Snapshot())
	if h := m.Histograms[HistCheckpoint]; h.Count != 2 {
		t.Errorf("merged checkpoint histogram Count = %d, want 2", h.Count)
	}
	if h := m.Histograms[HistPrefetch]; h.Count != 1 {
		t.Errorf("merged prefetch histogram Count = %d, want 1", h.Count)
	}
	if err := CheckInvariants(m); err != nil {
		t.Errorf("invariants after merge: %v", err)
	}
}

// TestHistogramSingleSample: every quantile of a one-observation
// histogram — including q=0 and q=1 — resolves to that observation's
// bucket bound.
func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Observe(3 * time.Millisecond) // lands in the 5ms bucket
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if got := s.Quantile(q); got != 5*time.Millisecond {
			t.Errorf("single sample Quantile(%v) = %v, want 5ms", q, got)
		}
	}
	if got := s.P999(); got != 5*time.Millisecond {
		t.Errorf("single sample P999 = %v, want 5ms", got)
	}
}

// TestHistogramAllOverflow: with every observation beyond the ladder,
// the only honest estimate at any quantile is the mean.
func TestHistogramAllOverflow(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Hour)
	h.Observe(3 * time.Hour)
	s := h.Snapshot()
	want := 2 * time.Hour
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if got := s.Quantile(q); got != want {
			t.Errorf("all-overflow Quantile(%v) = %v, want mean %v", q, got, want)
		}
	}
}

// TestHistogramQuantileOne: q=1.0 (and above, clamped) resolves to the
// maximum occupied bucket, not the overflow path.
func TestHistogramQuantileOne(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 99; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(time.Second)
	s := h.Snapshot()
	if got := s.Quantile(1); got != time.Second {
		t.Errorf("Quantile(1) = %v, want 1s", got)
	}
	if got := s.Quantile(2); got != time.Second {
		t.Errorf("Quantile(2) clamps to 1.0: got %v, want 1s", got)
	}
	// A 1% slow tail over 1010 observations: P99's rank still lands in
	// the fast bucket, P999's reaches the outliers.
	h2 := NewHistogram()
	for i := 0; i < 1000; i++ {
		h2.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(time.Second)
	}
	s2 := h2.Snapshot()
	if got := s2.P99(); got != time.Microsecond {
		t.Errorf("P99 = %v, want 1µs", got)
	}
	if got := s2.P999(); got != time.Second {
		t.Errorf("P999 = %v, want 1s", got)
	}
}
