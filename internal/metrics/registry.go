// Registry: a process-wide collection point for run summaries and sampled
// series, exported as Prometheus text exposition or JSON. The JSON form is
// the interchange format internal/report parses back.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// ExportSchema identifies the JSON export format version.
const ExportSchema = "score-metrics/v1"

// Export is one labeled run's observability snapshot.
type Export struct {
	Label   string              `json:"label"`
	Summary Summary             `json:"summary"`
	Series  map[string][]Sample `json:"series,omitempty"`
}

// ExportFile is the on-disk JSON export: a schema marker plus every
// recorded run.
type ExportFile struct {
	Schema string   `json:"schema"`
	Runs   []Export `json:"runs"`
}

// Registry accumulates labeled run summaries and series. Safe for
// concurrent use.
type Registry struct {
	mu    sync.Mutex
	runs  []Export
	index map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{index: map[string]int{}} }

// Record merges s into the run registered under label (creating it on
// first use), so repeated shots of the same scenario accumulate.
func (r *Registry) Record(label string, s Summary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.runLocked(label)
	r.runs[i].Summary = Merge(r.runs[i].Summary, s)
}

// RecordSeries attaches sampled timelines to the labeled run. Series with
// the same name concatenate chronologically.
func (r *Registry) RecordSeries(label string, series map[string][]Sample) {
	if len(series) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.runLocked(label)
	if r.runs[i].Series == nil {
		r.runs[i].Series = map[string][]Sample{}
	}
	for name, pts := range series {
		r.runs[i].Series[name] = append(r.runs[i].Series[name], pts...)
	}
}

func (r *Registry) runLocked(label string) int {
	if i, ok := r.index[label]; ok {
		return i
	}
	r.runs = append(r.runs, Export{Label: label})
	r.index[label] = len(r.runs) - 1
	return len(r.runs) - 1
}

// Export snapshots the registry contents.
func (r *Registry) Export() ExportFile {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := ExportFile{Schema: ExportSchema, Runs: make([]Export, len(r.runs))}
	copy(out.Runs, r.runs)
	return out
}

// Len reports the number of labeled runs recorded.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.runs)
}

// WriteJSON writes the registry as indented JSON (see ExportFile).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Export())
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4). Each labeled run becomes a `run` label;
// histograms expose cumulative `le` buckets in seconds; sampled series
// surface as gauges holding their most recent value.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ex := r.Export()
	b := &strings.Builder{}

	counter := func(name, help string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	emitPerRun := func(name, help, kind string, value func(Export) (float64, bool)) {
		headed := false
		for _, run := range ex.Runs {
			v, ok := value(run)
			if !ok {
				continue
			}
			if !headed {
				if kind == "counter" {
					counter(name, help)
				} else {
					gauge(name, help)
				}
				headed = true
			}
			fmt.Fprintf(b, "%s{run=%q} %v\n", name, run.Label, v)
		}
	}

	type scalar struct {
		name, help, kind string
		get              func(Summary) float64
	}
	scalars := []scalar{
		{"score_checkpoint_bytes_total", "bytes checkpointed", "counter", func(s Summary) float64 { return float64(s.CheckpointBytes) }},
		{"score_checkpoint_blocked_seconds_total", "application time blocked in checkpoints", "counter", func(s Summary) float64 { return s.CheckpointBlocked.Seconds() }},
		{"score_checkpoint_ops_total", "checkpoint operations", "counter", func(s Summary) float64 { return float64(s.CheckpointOps) }},
		{"score_restore_bytes_total", "bytes restored", "counter", func(s Summary) float64 { return float64(s.RestoreBytes) }},
		{"score_restore_blocked_seconds_total", "application time blocked in restores", "counter", func(s Summary) float64 { return s.RestoreBlocked.Seconds() }},
		{"score_restore_ops_total", "restore operations", "counter", func(s Summary) float64 { return float64(s.RestoreOps) }},
		{"score_eviction_wait_seconds_total", "time blocked waiting for evictions", "counter", func(s Summary) float64 { return s.EvictionWait.Seconds() }},
		{"score_deviation_reads_total", "restores that deviated from the hint order", "counter", func(s Summary) float64 { return float64(s.DeviationReads) }},
		{"score_fallback_reads_total", "reads served from a deeper tier after a faster one failed", "counter", func(s Summary) float64 { return float64(s.FallbackReads) }},
		{"score_repopulations_total", "replicas re-staged after fallback reads", "counter", func(s Summary) float64 { return float64(s.Repopulations) }},
		{"score_flush_aborts_total", "flush chains abandoned", "counter", func(s Summary) float64 { return float64(s.FlushAborts) }},
		{"score_sync_flushes_total", "checkpoints flushed synchronously", "counter", func(s Summary) float64 { return float64(s.SyncFlushes) }},
		{"score_pipelined_streams_total", "chunked multi-hop transfer streams", "counter", func(s Summary) float64 { return float64(s.PipelinedStreams) }},
		{"score_pipelined_bytes_total", "bytes moved by pipelined streams", "counter", func(s Summary) float64 { return float64(s.PipelinedBytes) }},
		{"score_pipeline_overlap_seconds_total", "transfer time hidden by chunk overlap", "counter", func(s Summary) float64 { return s.PipelineOverlap().Seconds() }},
		{"score_accepted_bytes_total", "bytes accepted into the flush pipeline", "counter", func(s Summary) float64 { return float64(s.AcceptedBytes) }},
		{"score_durable_bytes_total", "accepted bytes that reached a durable tier", "counter", func(s Summary) float64 { return float64(s.DurableBytes) }},
		{"score_discarded_bytes_total", "accepted bytes discarded before flushing (consumed first)", "counter", func(s Summary) float64 { return float64(s.DiscardedBytes) }},
		{"score_lost_bytes_total", "accepted bytes whose flush chain was abandoned", "counter", func(s Summary) float64 { return float64(s.LostBytes) }},
		{"score_pending_flush_bytes", "accepted bytes with undecided fate", "gauge", func(s Summary) float64 { return float64(s.PendingFlushBytes()) }},
		{"score_retry_bouts_recovered_total", "retried I/O sequences that eventually succeeded", "counter", func(s Summary) float64 { return float64(s.RetryBoutsRecovered) }},
		{"score_retry_bouts_exhausted_total", "retried I/O sequences that exhausted their attempts", "counter", func(s Summary) float64 { return float64(s.RetryBoutsExhausted) }},
		{"score_partner_copies_total", "replicas staged on the partner node's SSD", "counter", func(s Summary) float64 { return float64(s.PartnerCopies) }},
		{"score_partner_copy_bytes_total", "bytes replicated to partner SSDs", "counter", func(s Summary) float64 { return float64(s.PartnerCopyBytes) }},
		{"score_partner_copy_failures_total", "partner replication attempts that failed", "counter", func(s Summary) float64 { return float64(s.PartnerCopyFailures) }},
		{"score_rank_deaths_total", "ranks killed by fault injection", "counter", func(s Summary) float64 { return float64(s.RankDeaths) }},
		{"score_slo_alerts_fired_total", "SLO burn-rate alerts fired", "counter", func(s Summary) float64 { return float64(s.SLOAlertsFired) }},
		{"score_slo_alerts_resolved_total", "SLO burn-rate alerts resolved", "counter", func(s Summary) float64 { return float64(s.SLOAlertsResolved) }},
		{"score_trace_events_dropped_total", "trace spans evicted by the bounded ring", "counter", func(s Summary) float64 { return float64(s.TraceEventsDropped) }},
		{"score_trace_counters_dropped_total", "trace counter samples evicted by the bounded ring", "counter", func(s Summary) float64 { return float64(s.TraceCountersDropped) }},
		{"score_ledger_events_dropped_total", "flight-recorder ledger events evicted by the per-rank rings", "counter", func(s Summary) float64 { return float64(s.LedgerEventsDropped) }},
	}
	for _, sc := range scalars {
		sc := sc
		emitPerRun(sc.name, sc.help, sc.kind, func(run Export) (float64, bool) {
			return sc.get(run.Summary), true
		})
	}

	// Per-tier counters.
	counter("score_retries_total", "retried I/O attempts by tier")
	for _, run := range ex.Runs {
		for _, tier := range sortedKeys(run.Summary.Retries) {
			fmt.Fprintf(b, "score_retries_total{run=%q,tier=%q} %d\n", run.Label, tier, run.Summary.Retries[tier])
		}
	}
	counter("score_degradations_total", "tiers marked degraded")
	for _, run := range ex.Runs {
		for _, tier := range sortedKeys(run.Summary.Degradations) {
			fmt.Fprintf(b, "score_degradations_total{run=%q,tier=%q} %d\n", run.Label, tier, run.Summary.Degradations[tier])
		}
	}
	counter("score_tier_recoveries_total", "degraded tiers healed by recovery probes")
	for _, run := range ex.Runs {
		for _, tier := range sortedKeys(run.Summary.TierRecoveries) {
			fmt.Fprintf(b, "score_tier_recoveries_total{run=%q,tier=%q} %d\n", run.Label, tier, run.Summary.TierRecoveries[tier])
		}
	}

	// Histograms.
	histNames := map[string]bool{}
	for _, run := range ex.Runs {
		for name := range run.Summary.Histograms {
			histNames[name] = true
		}
	}
	for _, name := range sortedBoolKeys(histNames) {
		metric := "score_" + name + "_seconds"
		fmt.Fprintf(b, "# HELP %s %s latency\n# TYPE %s histogram\n", metric, name, metric)
		for _, run := range ex.Runs {
			h, ok := run.Summary.Histograms[name]
			if !ok {
				continue
			}
			var cum int64
			for i, c := range h.Counts {
				cum += c
				le := "+Inf"
				if i < len(h.Bounds) {
					le = formatSeconds(h.Bounds[i])
				}
				fmt.Fprintf(b, "%s_bucket{run=%q,le=%q} %d\n", metric, run.Label, le, cum)
			}
			fmt.Fprintf(b, "%s_sum{run=%q} %v\n", metric, run.Label, h.Sum.Seconds())
			fmt.Fprintf(b, "%s_count{run=%q} %d\n", metric, run.Label, h.Count)
		}
	}

	// Sampled series: the latest value of each timeline.
	anySeries := false
	for _, run := range ex.Runs {
		if len(run.Series) > 0 {
			anySeries = true
		}
	}
	if anySeries {
		gauge("score_sample", "most recent value of a sampled series")
		for _, run := range ex.Runs {
			for _, name := range sortedSeriesKeys(run.Series) {
				pts := run.Series[name]
				if len(pts) == 0 {
					continue
				}
				fmt.Fprintf(b, "score_sample{run=%q,series=%q} %v\n", run.Label, name, pts[len(pts)-1].Value)
			}
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

func formatSeconds(d time.Duration) string {
	return fmt.Sprintf("%g", d.Seconds())
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedBoolKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedSeriesKeys(m map[string][]Sample) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
