package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestThroughputComputation(t *testing.T) {
	r := NewRecorder()
	r.Checkpoint(1<<30, time.Second)
	r.Checkpoint(1<<30, time.Second)
	s := r.Snapshot()
	if got := s.CheckpointThroughput(); got != 1<<30 {
		t.Errorf("checkpoint throughput = %v, want 1 GiB/s", got)
	}
	if s.CheckpointOps != 2 {
		t.Errorf("ops = %d, want 2", s.CheckpointOps)
	}
}

func TestRestoreSeriesAndPrefetchDistance(t *testing.T) {
	r := NewRecorder()
	r.Restore(0, 100, time.Millisecond, 3)
	r.Restore(1, 100, time.Millisecond, 5)
	s := r.Snapshot()
	if len(s.RestoreSeries) != 2 {
		t.Fatalf("series length = %d", len(s.RestoreSeries))
	}
	if s.RestoreSeries[1].PrefetchDistance != 5 {
		t.Errorf("series[1] distance = %d, want 5", s.RestoreSeries[1].PrefetchDistance)
	}
	if got := s.MeanPrefetchDistance(); got != 4 {
		t.Errorf("mean prefetch distance = %v, want 4", got)
	}
}

func TestZeroBlockedThroughput(t *testing.T) {
	var s Summary
	if s.CheckpointThroughput() != 0 {
		t.Error("empty summary should have zero throughput")
	}
	s.CheckpointBytes = 100
	if s.CheckpointThroughput() <= 0 {
		t.Error("instant ops should report a huge, positive throughput")
	}
}

func TestMergeAddsAndSorts(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	a.Checkpoint(10, time.Second)
	b.Checkpoint(20, time.Second)
	a.Restore(1, 5, time.Millisecond, 0)
	b.Restore(0, 5, time.Millisecond, 0)
	a.Deviation()
	m := Merge(a.Snapshot(), b.Snapshot())
	if m.CheckpointBytes != 30 || m.CheckpointBlocked != 2*time.Second {
		t.Errorf("merged totals wrong: %+v", m)
	}
	if m.DeviationReads != 1 {
		t.Errorf("deviations = %d", m.DeviationReads)
	}
	if m.RestoreSeries[0].Iteration != 0 || m.RestoreSeries[1].Iteration != 1 {
		t.Error("merged series not sorted by iteration")
	}
}

func TestEvictionWaitAccumulates(t *testing.T) {
	r := NewRecorder()
	r.EvictionWait(time.Second)
	r.EvictionWait(2 * time.Second)
	if got := r.Snapshot().EvictionWait; got != 3*time.Second {
		t.Errorf("eviction wait = %v, want 3s", got)
	}
}

func TestFormatBytesPerSec(t *testing.T) {
	cases := map[float64]string{
		512:             "512 B/s",
		2 * 1024:        "2.00 KB/s",
		3 << 20:         "3.00 MB/s",
		25 << 30:        "25.00 GB/s",
		1.5 * (1 << 40): "1.50 TB/s",
	}
	for in, want := range cases {
		if got := FormatBytesPerSec(in); got != want {
			t.Errorf("FormatBytesPerSec(%v) = %q, want %q", in, got, want)
		}
	}
	if !strings.Contains(FormatBytesPerSec(0), "B/s") {
		t.Error("zero should still carry a unit")
	}
}

func TestMergePreservesTotalsProperty(t *testing.T) {
	// Property: merging any split of operations equals recording them
	// all in one recorder.
	f := func(bytes []uint16) bool {
		whole := NewRecorder()
		a, b := NewRecorder(), NewRecorder()
		for i, v := range bytes {
			sz := int64(v) + 1
			whole.Checkpoint(sz, time.Duration(sz))
			if i%2 == 0 {
				a.Checkpoint(sz, time.Duration(sz))
			} else {
				b.Checkpoint(sz, time.Duration(sz))
			}
		}
		m := Merge(a.Snapshot(), b.Snapshot())
		w := whole.Snapshot()
		return m.CheckpointBytes == w.CheckpointBytes &&
			m.CheckpointBlocked == w.CheckpointBlocked &&
			m.CheckpointOps == w.CheckpointOps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRobustnessCounters(t *testing.T) {
	r := NewRecorder()
	r.Retry("ssd")
	r.Retry("ssd")
	r.Retry("pfs")
	r.Degradation("ssd")
	r.FallbackRead()
	r.FallbackRead()
	r.Repopulation()
	r.FlushAbort()
	r.SyncFlush()
	s := r.Snapshot()
	if s.Retries["ssd"] != 2 || s.Retries["pfs"] != 1 || s.TotalRetries() != 3 {
		t.Errorf("Retries = %v", s.Retries)
	}
	if s.Degradations["ssd"] != 1 || s.TotalDegradations() != 1 {
		t.Errorf("Degradations = %v", s.Degradations)
	}
	if s.FallbackReads != 2 || s.Repopulations != 1 || s.FlushAborts != 1 || s.SyncFlushes != 1 {
		t.Errorf("counters = %+v", s)
	}
	// Snapshot must be a deep copy: mutating the recorder afterwards
	// must not change an earlier summary.
	r.Retry("ssd")
	if s.Retries["ssd"] != 2 {
		t.Error("Snapshot shares the retries map with the recorder")
	}
}

func TestMergeRobustnessCounters(t *testing.T) {
	a := Summary{
		Retries:       map[string]int64{"ssd": 2},
		Degradations:  map[string]int64{"ssd": 1},
		FallbackReads: 1, Repopulations: 1, FlushAborts: 1, SyncFlushes: 2,
	}
	b := Summary{
		Retries:       map[string]int64{"ssd": 1, "pfs": 4},
		Degradations:  map[string]int64{"host": 1},
		FallbackReads: 2,
	}
	m := Merge(a, b)
	if m.Retries["ssd"] != 3 || m.Retries["pfs"] != 4 {
		t.Errorf("merged Retries = %v", m.Retries)
	}
	if m.Degradations["ssd"] != 1 || m.Degradations["host"] != 1 {
		t.Errorf("merged Degradations = %v", m.Degradations)
	}
	if m.FallbackReads != 3 || m.Repopulations != 1 || m.FlushAborts != 1 || m.SyncFlushes != 2 {
		t.Errorf("merged counters = %+v", m)
	}
}
