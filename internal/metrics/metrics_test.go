package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestThroughputComputation(t *testing.T) {
	r := NewRecorder()
	r.Checkpoint(1<<30, time.Second)
	r.Checkpoint(1<<30, time.Second)
	s := r.Snapshot()
	if got := s.CheckpointThroughput(); got != 1<<30 {
		t.Errorf("checkpoint throughput = %v, want 1 GiB/s", got)
	}
	if s.CheckpointOps != 2 {
		t.Errorf("ops = %d, want 2", s.CheckpointOps)
	}
}

func TestRestoreSeriesAndPrefetchDistance(t *testing.T) {
	r := NewRecorder()
	r.Restore(0, 100, time.Millisecond, 3)
	r.Restore(1, 100, time.Millisecond, 5)
	s := r.Snapshot()
	if len(s.RestoreSeries) != 2 {
		t.Fatalf("series length = %d", len(s.RestoreSeries))
	}
	if s.RestoreSeries[1].PrefetchDistance != 5 {
		t.Errorf("series[1] distance = %d, want 5", s.RestoreSeries[1].PrefetchDistance)
	}
	if got := s.MeanPrefetchDistance(); got != 4 {
		t.Errorf("mean prefetch distance = %v, want 4", got)
	}
}

func TestZeroBlockedThroughput(t *testing.T) {
	var s Summary
	if s.CheckpointThroughput() != 0 {
		t.Error("empty summary should have zero throughput")
	}
	s.CheckpointBytes = 100
	if s.CheckpointThroughput() <= 0 {
		t.Error("instant ops should report a huge, positive throughput")
	}
}

func TestMergeAddsAndSorts(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	a.Checkpoint(10, time.Second)
	b.Checkpoint(20, time.Second)
	a.Restore(1, 5, time.Millisecond, 0)
	b.Restore(0, 5, time.Millisecond, 0)
	a.Deviation()
	m := Merge(a.Snapshot(), b.Snapshot())
	if m.CheckpointBytes != 30 || m.CheckpointBlocked != 2*time.Second {
		t.Errorf("merged totals wrong: %+v", m)
	}
	if m.DeviationReads != 1 {
		t.Errorf("deviations = %d", m.DeviationReads)
	}
	if m.RestoreSeries[0].Iteration != 0 || m.RestoreSeries[1].Iteration != 1 {
		t.Error("merged series not sorted by iteration")
	}
}

func TestEvictionWaitAccumulates(t *testing.T) {
	r := NewRecorder()
	r.EvictionWait(time.Second)
	r.EvictionWait(2 * time.Second)
	if got := r.Snapshot().EvictionWait; got != 3*time.Second {
		t.Errorf("eviction wait = %v, want 3s", got)
	}
}

func TestFormatBytesPerSec(t *testing.T) {
	cases := map[float64]string{
		512:             "512 B/s",
		2 * 1024:        "2.00 KB/s",
		3 << 20:         "3.00 MB/s",
		25 << 30:        "25.00 GB/s",
		1.5 * (1 << 40): "1.50 TB/s",
	}
	for in, want := range cases {
		if got := FormatBytesPerSec(in); got != want {
			t.Errorf("FormatBytesPerSec(%v) = %q, want %q", in, got, want)
		}
	}
	if !strings.Contains(FormatBytesPerSec(0), "B/s") {
		t.Error("zero should still carry a unit")
	}
}

func TestMergePreservesTotalsProperty(t *testing.T) {
	// Property: merging any split of operations equals recording them
	// all in one recorder.
	f := func(bytes []uint16) bool {
		whole := NewRecorder()
		a, b := NewRecorder(), NewRecorder()
		for i, v := range bytes {
			sz := int64(v) + 1
			whole.Checkpoint(sz, time.Duration(sz))
			if i%2 == 0 {
				a.Checkpoint(sz, time.Duration(sz))
			} else {
				b.Checkpoint(sz, time.Duration(sz))
			}
		}
		m := Merge(a.Snapshot(), b.Snapshot())
		w := whole.Snapshot()
		return m.CheckpointBytes == w.CheckpointBytes &&
			m.CheckpointBlocked == w.CheckpointBlocked &&
			m.CheckpointOps == w.CheckpointOps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
