// Time-series sampling: a simclock-driven sampler polls registered gauge
// probes (link utilization, copy-engine occupancy, cache occupancy, …) at
// a fixed cadence into fixed-capacity ring buffers, so long soaks record
// bounded, recent-biased timelines instead of unbounded slices.
package metrics

import (
	"sort"
	"sync"
	"time"

	"score/internal/simclock"
)

// Sample is one (simulated time, value) point of a sampled series.
type Sample struct {
	At    time.Duration `json:"at"`
	Value float64       `json:"value"`
}

// Series is a fixed-capacity ring buffer of samples. The zero value is not
// usable; the Sampler allocates them.
type Series struct {
	ring []Sample
	head int // next write position
	n    int // number of valid samples
}

func newSeries(capacity int) *Series { return &Series{ring: make([]Sample, capacity)} }

func (s *Series) add(p Sample) {
	s.ring[s.head] = p
	s.head = (s.head + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
}

// Samples returns the retained points in chronological order.
func (s *Series) Samples() []Sample {
	out := make([]Sample, 0, s.n)
	start := s.head - s.n
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(start+i)%len(s.ring)])
	}
	return out
}

// DefaultSampleInterval is the sampler cadence used when none is given:
// fine enough to resolve individual flush/prefetch phases at the simulated
// bandwidths the experiments use, coarse enough to stay cheap.
const DefaultSampleInterval = 100 * time.Microsecond

// DefaultSeriesCapacity bounds each series' ring buffer.
const DefaultSeriesCapacity = 4096

// Sampler polls registered probes on a simulated-time cadence. It must be
// started from inside a running clock (Start launches a clock-managed
// task) and stopped before the root task finishes, otherwise the virtual
// clock would keep advancing on the sampler's timer alone.
type Sampler struct {
	clk      simclock.Clock
	interval time.Duration
	capacity int

	mu      sync.Mutex
	cond    simclock.Cond
	probes  []probe
	series  map[string]*Series
	sink    func(name string, at time.Duration, v float64)
	running bool
	stopped bool
}

type probe struct {
	name string
	fn   func() float64
}

// NewSampler returns a sampler on clk. Non-positive interval or capacity
// select the defaults.
func NewSampler(clk simclock.Clock, interval time.Duration, capacity int) *Sampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	s := &Sampler{clk: clk, interval: interval, capacity: capacity, series: map[string]*Series{}}
	s.cond = clk.NewCond(&s.mu)
	return s
}

// Register adds a named gauge probe. fn is called on the sampler task at
// every tick; it must not block on simulated time.
func (s *Sampler) Register(name string, fn func() float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probes = append(s.probes, probe{name: name, fn: fn})
	if s.series[name] == nil {
		s.series[name] = newSeries(s.capacity)
	}
}

// SetCounterSink forwards every sample to fn as well (used to mirror the
// series into Chrome-trace counter events without a trace dependency).
func (s *Sampler) SetCounterSink(fn func(name string, at time.Duration, v float64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink = fn
}

// Start launches the sampling task on the clock. It may be called at most
// once; Stop must be called before the simulation's root task returns.
func (s *Sampler) Start() {
	s.mu.Lock()
	if s.running || s.stopped {
		s.mu.Unlock()
		return
	}
	s.running = true
	s.mu.Unlock()
	s.clk.Go(s.loop)
}

func (s *Sampler) loop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.stopped {
		// WaitTimeout rather than Sleep: Stop can interrupt the wait, so a
		// stopped sampler never holds a pending timer that would keep the
		// virtual clock advancing after the workload finished.
		s.cond.WaitTimeout(s.interval)
		if s.stopped {
			return
		}
		s.sampleLocked()
	}
}

func (s *Sampler) sampleLocked() {
	at := s.clk.Now()
	probes := s.probes
	sink := s.sink
	// Probes may take component locks; release ours while polling so a
	// probe reading a structure that also records into this sampler's
	// recorder cannot deadlock.
	s.mu.Unlock()
	vals := make([]float64, len(probes))
	for i, p := range probes {
		vals[i] = p.fn()
	}
	s.mu.Lock()
	for i, p := range probes {
		if ser := s.series[p.name]; ser != nil {
			ser.add(Sample{At: at, Value: vals[i]})
		}
	}
	if sink != nil {
		s.mu.Unlock()
		for i, p := range probes {
			sink(p.name, at, vals[i])
		}
		s.mu.Lock()
	}
}

// Stop halts the sampling task after taking one final sample, so the
// series always reflect the end state. Safe to call multiple times.
func (s *Sampler) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	if s.running {
		s.sampleLocked()
	}
	s.stopped = true
	s.cond.Broadcast()
}

// Interval returns the sampling cadence.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Series returns the sampled timelines, name → chronological samples.
func (s *Sampler) Series() map[string][]Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]Sample, len(s.series))
	for name, ser := range s.series {
		pts := ser.Samples()
		// A final Stop-time sample can race a concurrent tick; keep the
		// exported series strictly chronological regardless.
		sort.SliceStable(pts, func(i, j int) bool { return pts[i].At < pts[j].At })
		out[name] = pts
	}
	return out
}

// SeriesNames returns the registered series names, sorted.
func (s *Sampler) SeriesNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.series))
	for name := range s.series {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
