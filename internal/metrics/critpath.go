package metrics

import (
	"sort"
	"time"
)

// Critical-path operations: what end-to-end latency a CritPathRecord
// decomposes.
const (
	// CritDurable decomposes one checkpoint version's time-to-durable —
	// from the application's write to the fate-accounting durable mark.
	CritDurable = "durable"
	// CritRestore decomposes one restore's application-observed
	// blocking time.
	CritRestore = "restore"
)

// Critical-path components. The durable chain and the restore path are
// sequences of waits and transfers; attribution marks the boundary
// after each segment, so the components of one record telescope to
// exactly its Total (asserted by CheckInvariants — a non-zero
// Unattributed gap is a bug in the instrumentation).
const (
	CompGPUAdmit     = "gpu-admit"     // waiting for GPU cache space (eviction wait)
	CompHostAdmit    = "host-admit"    // waiting for host cache space
	CompHostReady    = "host-ready"    // waiting for host buffers to open/heal
	CompAlloc        = "alloc"         // on-demand device/pinned-host allocation charge
	CompCopyD2D      = "d2d-copy"      // intra-GPU cache copy
	CompQueueD2H     = "queue-d2h"     // queued for a T_D2H flusher
	CompQueueH2F     = "queue-h2f"     // queued for a T_H2F flusher
	CompXferPCIe     = "xfer-pcie"     // GPU↔host transfer on the PCIe hop
	CompXferSSD      = "xfer-ssd"      // host↔SSD transfer (chunked streams fold the PCIe leg in)
	CompXferPFS      = "xfer-pfs"      // transfer to/from the parallel file system
	CompXferPartner  = "xfer-partner"  // transfer from the partner node's SSD
	CompRetryBackoff = "retry-backoff" // sleeping between retried I/O attempts
	CompDrainWait    = "drain-wait"    // parked in the frozen flush queue until the drain triage ran it
	CompStorePut     = "store-put"     // committing bytes into a checkpoint store
	CompGPUWait      = "gpu-wait"      // restore waiting on an in-GPU write/promotion to land
	CompPromoteWait  = "promote-wait"  // restore waiting on an in-flight promotion
	CompUnattributed = "unattributed"  // residual gap — must stay zero
)

// CritPathRecord attributes one operation's end-to-end latency to the
// components above. Op is CritDurable or CritRestore; Version is the
// checkpoint version; Start is the simulated time the interval opened.
// sum(Components) + Unattributed == Total by construction.
type CritPathRecord struct {
	Op           string
	Version      int64
	Start        time.Duration
	Total        time.Duration
	Components   map[string]time.Duration
	Unattributed time.Duration
}

// CritPath appends one attributed latency decomposition.
func (r *Recorder) CritPath(rec CritPathRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.critPaths = append(r.critPaths, rec)
}

// CritPathBreakdown aggregates the records for one operation kind:
// how many there were, their summed totals, and the summed per-component
// attribution (including any unattributed residue under
// CompUnattributed).
func (s Summary) CritPathBreakdown(op string) (count int64, total time.Duration, comps map[string]time.Duration) {
	comps = map[string]time.Duration{}
	for _, rec := range s.CritPaths {
		if rec.Op != op {
			continue
		}
		count++
		total += rec.Total
		for c, d := range rec.Components {
			comps[c] += d
		}
		if rec.Unattributed != 0 {
			comps[CompUnattributed] += rec.Unattributed
		}
	}
	return count, total, comps
}

// CritPathUnattributed sums the unattributed residue across all records
// — the latency the analyzer could not explain. Zero on a healthy run.
func (s Summary) CritPathUnattributed() time.Duration {
	var total time.Duration
	for _, rec := range s.CritPaths {
		total += rec.Unattributed
	}
	return total
}

// sortCritPaths orders records deterministically for merged summaries.
func sortCritPaths(recs []CritPathRecord) {
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Version != b.Version {
			return a.Version < b.Version
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Total < b.Total
	})
}

func copyCritPaths(recs []CritPathRecord) []CritPathRecord {
	if len(recs) == 0 {
		return nil
	}
	out := make([]CritPathRecord, len(recs))
	for i, rec := range recs {
		cp := rec
		if rec.Components != nil {
			cp.Components = make(map[string]time.Duration, len(rec.Components))
			for k, v := range rec.Components {
				cp.Components[k] = v
			}
		}
		out[i] = cp
	}
	return out
}
