// Package metrics collects the performance measurements the paper's
// evaluation reports: application-observed checkpoint and restore
// throughput (total bytes divided by blocking time, §5.4.1), per-iteration
// restore rate, prefetch distance (§5.4.4), and I/O wait time.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Recorder accumulates measurements for one process (one GPU).
// All methods are safe for concurrent use.
type Recorder struct {
	mu sync.Mutex

	ckptBytes   int64
	ckptBlocked time.Duration
	ckptOps     int64

	restBytes   int64
	restBlocked time.Duration
	restOps     int64

	// Per-operation series, in issue order.
	restoreSeries  []SeriesPoint
	prefetchDist   []int
	evictionWait   time.Duration
	deviationReads int64 // restores that deviated from the hint order
}

// SeriesPoint is one restore operation's measurement.
type SeriesPoint struct {
	// Iteration is the restore index within the shot.
	Iteration int
	// Bytes restored by this operation.
	Bytes int64
	// Blocked is the application-observed blocking time.
	Blocked time.Duration
	// PrefetchDistance is the number of successor checkpoints already
	// resident on the fastest tier when this restore was issued.
	PrefetchDistance int
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Checkpoint records one checkpoint operation that moved bytes and blocked
// the application for blocked.
func (r *Recorder) Checkpoint(bytes int64, blocked time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ckptBytes += bytes
	r.ckptBlocked += blocked
	r.ckptOps++
}

// Restore records one restore operation.
func (r *Recorder) Restore(iter int, bytes int64, blocked time.Duration, prefetchDistance int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.restBytes += bytes
	r.restBlocked += blocked
	r.restOps++
	r.restoreSeries = append(r.restoreSeries, SeriesPoint{
		Iteration:        iter,
		Bytes:            bytes,
		Blocked:          blocked,
		PrefetchDistance: prefetchDistance,
	})
	r.prefetchDist = append(r.prefetchDist, prefetchDistance)
}

// EvictionWait accumulates time spent blocked on evictions.
func (r *Recorder) EvictionWait(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictionWait += d
}

// Deviation records a restore that was not the next hinted checkpoint.
func (r *Recorder) Deviation() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deviationReads++
}

// Summary is an immutable snapshot of a Recorder.
type Summary struct {
	CheckpointBytes   int64
	CheckpointBlocked time.Duration
	CheckpointOps     int64
	RestoreBytes      int64
	RestoreBlocked    time.Duration
	RestoreOps        int64
	RestoreSeries     []SeriesPoint
	EvictionWait      time.Duration
	DeviationReads    int64
}

// Snapshot returns the current totals.
func (r *Recorder) Snapshot() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	series := make([]SeriesPoint, len(r.restoreSeries))
	copy(series, r.restoreSeries)
	return Summary{
		CheckpointBytes:   r.ckptBytes,
		CheckpointBlocked: r.ckptBlocked,
		CheckpointOps:     r.ckptOps,
		RestoreBytes:      r.restBytes,
		RestoreBlocked:    r.restBlocked,
		RestoreOps:        r.restOps,
		RestoreSeries:     series,
		EvictionWait:      r.evictionWait,
		DeviationReads:    r.deviationReads,
	}
}

// CheckpointThroughput returns application-observed write throughput in
// bytes/second (total size over blocking time, §5.4.1).
func (s Summary) CheckpointThroughput() float64 {
	return throughput(s.CheckpointBytes, s.CheckpointBlocked)
}

// RestoreThroughput returns application-observed read throughput.
func (s Summary) RestoreThroughput() float64 {
	return throughput(s.RestoreBytes, s.RestoreBlocked)
}

// MeanPrefetchDistance averages the prefetch distance over all restores.
func (s Summary) MeanPrefetchDistance() float64 {
	if len(s.RestoreSeries) == 0 {
		return 0
	}
	var sum int
	for _, p := range s.RestoreSeries {
		sum += p.PrefetchDistance
	}
	return float64(sum) / float64(len(s.RestoreSeries))
}

func throughput(bytes int64, blocked time.Duration) float64 {
	if blocked <= 0 {
		if bytes > 0 {
			return float64(bytes) * 1e9 // effectively instant
		}
		return 0
	}
	return float64(bytes) / blocked.Seconds()
}

// Merge combines summaries from multiple processes: byte and time totals
// add; series concatenate sorted by iteration.
func Merge(parts ...Summary) Summary {
	var out Summary
	for _, p := range parts {
		out.CheckpointBytes += p.CheckpointBytes
		out.CheckpointBlocked += p.CheckpointBlocked
		out.CheckpointOps += p.CheckpointOps
		out.RestoreBytes += p.RestoreBytes
		out.RestoreBlocked += p.RestoreBlocked
		out.RestoreOps += p.RestoreOps
		out.EvictionWait += p.EvictionWait
		out.DeviationReads += p.DeviationReads
		out.RestoreSeries = append(out.RestoreSeries, p.RestoreSeries...)
	}
	sort.SliceStable(out.RestoreSeries, func(i, j int) bool {
		return out.RestoreSeries[i].Iteration < out.RestoreSeries[j].Iteration
	})
	return out
}

// FormatBytesPerSec renders a throughput human-readably (e.g. "25.0 GB/s").
func FormatBytesPerSec(bps float64) string {
	const (
		kb = 1 << 10
		mb = 1 << 20
		gb = 1 << 30
		tb = 1 << 40
	)
	switch {
	case bps >= tb:
		return fmt.Sprintf("%.2f TB/s", bps/tb)
	case bps >= gb:
		return fmt.Sprintf("%.2f GB/s", bps/gb)
	case bps >= mb:
		return fmt.Sprintf("%.2f MB/s", bps/mb)
	case bps >= kb:
		return fmt.Sprintf("%.2f KB/s", bps/kb)
	default:
		return fmt.Sprintf("%.0f B/s", bps)
	}
}
