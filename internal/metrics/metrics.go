// Package metrics collects the performance measurements the paper's
// evaluation reports: application-observed checkpoint and restore
// throughput (total bytes divided by blocking time, §5.4.1), per-iteration
// restore rate, prefetch distance (§5.4.4), and I/O wait time.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder accumulates measurements for one process (one GPU).
// All methods are safe for concurrent use.
//
// The hot counters are plain atomics and the histograms have atomic
// buckets (sharded.go), so the many tasks of one rank — application,
// flush workers, prefetcher, stager — never serialize on a registry
// mutex. Every hot update is a commutative integer add, which keeps
// totals independent of same-instant task interleaving (the determinism
// contract). The mutex guards only the cold structured state: series
// appends, per-tier maps, and critical-path records.
type Recorder struct {
	ckptBytes   atomic.Int64
	ckptBlocked atomic.Int64 // ns
	ckptOps     atomic.Int64

	restBytes   atomic.Int64
	restBlocked atomic.Int64 // ns
	restOps     atomic.Int64

	evictionWait   atomic.Int64 // ns
	deviationReads atomic.Int64 // restores that deviated from the hint order

	// Robustness counters (fault injection / degradation).
	fallbackReads atomic.Int64 // reads served from a deeper tier after a faster one failed
	repopulations atomic.Int64 // lost/corrupt replicas re-staged into a faster tier
	flushAborts   atomic.Int64 // flush chains abandoned after exhausting every route
	syncFlushes   atomic.Int64 // checkpoints that fell back to synchronous flush (§2 cond. 4)

	// Cluster failure model: partner-copy replication and rank deaths.
	partnerCopies       atomic.Int64 // replicas staged on the partner node's SSD
	partnerCopyBytes    atomic.Int64
	partnerCopyFailures atomic.Int64 // replication attempts that failed
	rankDeaths          atomic.Int64 // injected kills of this rank (0 or 1)

	// Scheduling events: deadline-bounded drain and live migration.
	drains                 atomic.Int64 // preemption drains initiated (0 or 1 per client)
	drainDeadlineHits      atomic.Int64 // drains whose last triage flush landed inside the grace window
	drainedVersions        atomic.Int64 // versions a drain made durable
	drainedBytes           atomic.Int64
	drainAbandonedVersions atomic.Int64 // versions a drain failed open to ErrLost
	drainAbandonedBytes    atomic.Int64
	migrations             atomic.Int64 // live migrations attempted
	migratedVersions       atomic.Int64 // store versions copied to the successor node
	migratedBytes          atomic.Int64
	migrationFailures      atomic.Int64 // per-version migration copies that failed

	// Chunked transfer pipelining (§4.3): per-stream overlap accounting.
	pipelinedStreams atomic.Int64
	pipelinedBytes   atomic.Int64
	pipelinedElapsed atomic.Int64 // ns; end-to-end stream durations
	pipelinedHopBusy atomic.Int64 // ns; summed per-hop occupancy

	// Per-hop byte conservation for complete pipelined streams: every hop
	// of an error-free stream must carry exactly the payload size.
	pipelinedHopBytes     atomic.Int64 // observed per-hop bytes, summed
	pipelinedHopBytesWant atomic.Int64 // payload size × hop count

	// Conservation (fate) accounting: every byte accepted into the
	// checkpoint pipeline must end up exactly one of durable, discarded
	// (consumed before flush, §2 cond. 5) or lost (flush chain aborted).
	// CheckInvariants enforces the balance.
	acceptedBytes  atomic.Int64
	durableBytes   atomic.Int64
	discardedBytes atomic.Int64
	lostBytes      atomic.Int64

	// Retry bouts: one bout = one retried I/O sequence (>=1 retries). A
	// bout either recovers (the operation eventually succeeds) or exhausts
	// its attempts; CheckInvariants ties bouts to the per-retry counters.
	retryBoutsRecovered atomic.Int64
	retryBoutsExhausted atomic.Int64

	// Gray-failure tolerance: hedged restores and stalled-flush reroutes
	// (DESIGN.md §16). A hedge is a concurrent read of the next-deeper
	// replica launched when the preferred tier exceeds its adaptive
	// deadline; a stall is a background flush leg that exceeded its
	// deadline and was re-routed to an alternate durable tier.
	hedgesLaunched    atomic.Int64 // hedge legs launched after a deadline breach
	hedgeWins         atomic.Int64 // reads won by a hedge leg (not the preferred tier)
	hedgeWastedBytes  atomic.Int64 // bytes moved by legs that lost the race
	stallsDetected    atomic.Int64 // flush legs that exceeded their adaptive deadline
	stallsRerouted    atomic.Int64 // stalled flushes successfully re-routed to an alternate tier
	healthQuarantines atomic.Int64 // tiers quarantined by an EWMA health-score breach

	// SLO burn-rate alert transitions (internal/slo, DESIGN.md §17) and
	// telemetry-drop gauges mirrored from the bounded tracer and
	// flight-recorder rings so lost observability is itself observable.
	sloAlertsFired       atomic.Int64
	sloAlertsResolved    atomic.Int64
	traceEventsDropped   atomic.Int64
	traceCountersDropped atomic.Int64
	ledgerEventsDropped  atomic.Int64

	// durableOps counts ConserveDurable calls so CheckInvariants can tie
	// the critical-path record count to the fate accounting.
	durableOps atomic.Int64

	// Fixed-boundary latency histograms, keyed by the Hist* constants.
	// Lock-free observes, copy-on-write name registry (sharded.go).
	hists histRegistry

	// Cold structured state: series appends, per-tier maps, and
	// critical-path attribution records (see critpath.go).
	mu             sync.Mutex
	restoreSeries  []SeriesPoint // per-operation series, in issue order
	prefetchDist   []int
	retries        map[string]int64 // tier name -> retried I/O attempts
	degradations   map[string]int64 // tier name -> times marked degraded
	tierRecoveries map[string]int64 // tier name -> degradations healed by a probe
	critPaths      []CritPathRecord
}

// ObserveDuration records one duration sample into the named
// fixed-boundary histogram (see the Hist* constants). Lock-free after
// the name's first observation.
func (r *Recorder) ObserveDuration(name string, d time.Duration) {
	r.hists.get(name).Observe(d)
}

// SeriesPoint is one restore operation's measurement.
type SeriesPoint struct {
	// Iteration is the restore index within the shot.
	Iteration int
	// Bytes restored by this operation.
	Bytes int64
	// Blocked is the application-observed blocking time.
	Blocked time.Duration
	// PrefetchDistance is the number of successor checkpoints already
	// resident on the fastest tier when this restore was issued.
	PrefetchDistance int
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Checkpoint records one checkpoint operation that moved bytes and blocked
// the application for blocked.
func (r *Recorder) Checkpoint(bytes int64, blocked time.Duration) {
	r.ckptBytes.Add(bytes)
	r.ckptBlocked.Add(int64(blocked))
	r.ckptOps.Add(1)
	r.ObserveDuration(HistCheckpoint, blocked)
}

// CheckpointAccepted records bytes entering the flush pipeline. Paired
// with exactly one of ConserveDurable, ConserveDiscarded, ConserveLost or
// CheckpointRejected per checkpoint.
func (r *Recorder) CheckpointAccepted(bytes int64) {
	r.acceptedBytes.Add(bytes)
}

// CheckpointRejected un-accounts a previously accepted checkpoint whose
// admission ultimately failed (e.g. the synchronous-flush fallback could
// not land it anywhere).
func (r *Recorder) CheckpointRejected(bytes int64) {
	r.acceptedBytes.Add(-bytes)
}

// ConserveDurable records bytes whose flush chain reached a durable tier.
// Called exactly once per durable checkpoint version, which is what lets
// CheckInvariants demand one critical-path record per durable version.
func (r *Recorder) ConserveDurable(bytes int64) {
	r.durableBytes.Add(bytes)
	r.durableOps.Add(1)
}

// ConserveDiscarded records bytes whose flush was skipped because the
// checkpoint was consumed first (§2 cond. 5) or its cached replica was
// released before the chain ran.
func (r *Recorder) ConserveDiscarded(bytes int64) {
	r.discardedBytes.Add(bytes)
}

// ConserveLost records bytes whose flush chain was abandoned after
// exhausting every durable route.
func (r *Recorder) ConserveLost(bytes int64) {
	r.lostBytes.Add(bytes)
}

// RetryBout records the outcome of one retried I/O sequence.
func (r *Recorder) RetryBout(recovered bool) {
	if recovered {
		r.retryBoutsRecovered.Add(1)
	} else {
		r.retryBoutsExhausted.Add(1)
	}
}

// Restore records one restore operation.
func (r *Recorder) Restore(iter int, bytes int64, blocked time.Duration, prefetchDistance int) {
	r.restBytes.Add(bytes)
	r.restBlocked.Add(int64(blocked))
	r.restOps.Add(1)
	r.mu.Lock()
	r.restoreSeries = append(r.restoreSeries, SeriesPoint{
		Iteration:        iter,
		Bytes:            bytes,
		Blocked:          blocked,
		PrefetchDistance: prefetchDistance,
	})
	r.prefetchDist = append(r.prefetchDist, prefetchDistance)
	r.mu.Unlock()
	r.ObserveDuration(HistRestore, blocked)
}

// EvictionWait accumulates time spent blocked on evictions.
func (r *Recorder) EvictionWait(d time.Duration) {
	r.evictionWait.Add(int64(d))
	r.ObserveDuration(HistEvictionWait, d)
}

// Deviation records a restore that was not the next hinted checkpoint.
func (r *Recorder) Deviation() {
	r.deviationReads.Add(1)
}

// Retry records one retried I/O attempt against the named tier.
func (r *Recorder) Retry(tier string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.retries == nil {
		r.retries = map[string]int64{}
	}
	r.retries[tier]++
}

// Degradation records the named tier being marked degraded.
func (r *Recorder) Degradation(tier string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.degradations == nil {
		r.degradations = map[string]int64{}
	}
	r.degradations[tier]++
}

// TierRecovery records the named tier healing: a recovery probe
// succeeded after the tier had been marked degraded.
func (r *Recorder) TierRecovery(tier string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tierRecoveries == nil {
		r.tierRecoveries = map[string]int64{}
	}
	r.tierRecoveries[tier]++
}

// TierRecoveryCount returns the total healed degradations across tiers —
// a cheap accessor for sampler probes (Snapshot copies every series).
func (r *Recorder) TierRecoveryCount() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t int64
	for _, n := range r.tierRecoveries {
		t += n
	}
	return t
}

// PartnerCopy records one replica staged on the partner node's SSD.
func (r *Recorder) PartnerCopy(bytes int64) {
	r.partnerCopies.Add(1)
	r.partnerCopyBytes.Add(bytes)
}

// PartnerCopyFailure records a partner replication attempt that failed.
func (r *Recorder) PartnerCopyFailure() {
	r.partnerCopyFailures.Add(1)
}

// RankDeath records this rank being killed by fault injection.
func (r *Recorder) RankDeath() {
	r.rankDeaths.Add(1)
}

// DrainStart records a preemption notice initiating a deadline-bounded
// drain.
func (r *Recorder) DrainStart() {
	r.drains.Add(1)
}

// DrainDeadline records whether the drain's triage finished inside its
// grace window. Called exactly once per drain.
func (r *Recorder) DrainDeadline(met bool) {
	if met {
		r.drainDeadlineHits.Add(1)
	}
}

// DrainFlushed records one version the drain triage made durable.
func (r *Recorder) DrainFlushed(bytes int64) {
	r.drainedVersions.Add(1)
	r.drainedBytes.Add(bytes)
}

// DrainAbandoned records one version the drain failed open to ErrLost
// because it could not land inside the deadline budget.
func (r *Recorder) DrainAbandoned(bytes int64) {
	r.drainAbandonedVersions.Add(1)
	r.drainAbandonedBytes.Add(bytes)
}

// MigrationStart records a live migration attempt to a successor node.
func (r *Recorder) MigrationStart() {
	r.migrations.Add(1)
}

// MigrationCopy records one store version copied to the successor.
func (r *Recorder) MigrationCopy(bytes int64) {
	r.migratedVersions.Add(1)
	r.migratedBytes.Add(bytes)
}

// MigrationFailure records a per-version migration copy that failed.
func (r *Recorder) MigrationFailure() {
	r.migrationFailures.Add(1)
}

// HedgeLaunched records a hedge leg launched because the preferred
// tier's read exceeded its adaptive deadline.
func (r *Recorder) HedgeLaunched() {
	r.hedgesLaunched.Add(1)
}

// HedgeWin records a read won by a hedge leg: the data was served from
// the hedged (deeper) replica while the preferred tier was still busy.
func (r *Recorder) HedgeWin() {
	r.hedgeWins.Add(1)
}

// HedgeWasted records bytes moved by a race leg that lost: the transfer
// completed but its result was discarded.
func (r *Recorder) HedgeWasted(bytes int64) {
	r.hedgeWastedBytes.Add(bytes)
}

// SLOAlertFired records one SLO objective window pair crossing its
// burn-rate threshold.
func (r *Recorder) SLOAlertFired() {
	r.sloAlertsFired.Add(1)
}

// SLOAlertResolved records one firing SLO window pair dropping back
// below its burn-rate threshold.
func (r *Recorder) SLOAlertResolved() {
	r.sloAlertsResolved.Add(1)
}

// TelemetryDrops mirrors the bounded telemetry rings' drop counts
// (Tracer.Dropped and FlightRecorder.TotalDropped) into the metrics
// books. The values are totals, not deltas — the latest call wins.
func (r *Recorder) TelemetryDrops(traceEvents, traceCounters, ledgerEvents int64) {
	r.traceEventsDropped.Store(traceEvents)
	r.traceCountersDropped.Store(traceCounters)
	r.ledgerEventsDropped.Store(ledgerEvents)
}

// StallDetected records a background flush leg exceeding its adaptive
// deadline without failing — the gray-stall signal.
func (r *Recorder) StallDetected() {
	r.stallsDetected.Add(1)
}

// StallRerouted records a stalled flush successfully re-routed to an
// alternate durable tier.
func (r *Recorder) StallRerouted() {
	r.stallsRerouted.Add(1)
}

// HealthQuarantine records a tier quarantined because its EWMA latency
// health score breached the gray-failure threshold.
func (r *Recorder) HealthQuarantine() {
	r.healthQuarantines.Add(1)
}

// FallbackRead records a read served from a deeper tier after a faster
// tier's replica failed or was missing.
func (r *Recorder) FallbackRead() {
	r.fallbackReads.Add(1)
}

// Repopulation records a replica re-staged into a faster tier after a
// fallback read recovered the bytes.
func (r *Recorder) Repopulation() {
	r.repopulations.Add(1)
}

// FlushAbort records a flush chain abandoned after exhausting every
// durable route.
func (r *Recorder) FlushAbort() {
	r.flushAborts.Add(1)
}

// SyncFlush records a checkpoint that bypassed the GPU cache via the
// synchronous-flush fallback.
func (r *Recorder) SyncFlush() {
	r.syncFlushes.Add(1)
}

// Pipelined records one chunked multi-hop transfer stream: the bytes it
// moved, its end-to-end elapsed time, and the summed busy time of its
// hops (hopBusy > elapsed measures the overlap the pipelining won).
// hopBytes carries the payload observed per hop; for complete (error-free)
// streams every hop must have moved exactly bytes, which CheckInvariants
// verifies against the accumulated totals.
func (r *Recorder) Pipelined(bytes int64, elapsed, hopBusy time.Duration, hopBytes []int64, complete bool) {
	r.pipelinedStreams.Add(1)
	r.pipelinedBytes.Add(bytes)
	r.pipelinedElapsed.Add(int64(elapsed))
	r.pipelinedHopBusy.Add(int64(hopBusy))
	if complete {
		var sum int64
		for _, hb := range hopBytes {
			sum += hb
		}
		r.pipelinedHopBytes.Add(sum)
		r.pipelinedHopBytesWant.Add(bytes * int64(len(hopBytes)))
	}
}

// Summary is an immutable snapshot of a Recorder.
type Summary struct {
	CheckpointBytes   int64
	CheckpointBlocked time.Duration
	CheckpointOps     int64
	RestoreBytes      int64
	RestoreBlocked    time.Duration
	RestoreOps        int64
	RestoreSeries     []SeriesPoint
	EvictionWait      time.Duration
	DeviationReads    int64

	// Robustness counters.
	Retries        map[string]int64
	Degradations   map[string]int64
	TierRecoveries map[string]int64
	FallbackReads  int64
	Repopulations  int64
	FlushAborts    int64
	SyncFlushes    int64

	// Cluster failure model.
	PartnerCopies       int64
	PartnerCopyBytes    int64
	PartnerCopyFailures int64
	RankDeaths          int64

	// Scheduling events: deadline-bounded drain and live migration.
	Drains                 int64
	DrainDeadlineHits      int64
	DrainedVersions        int64
	DrainedBytes           int64
	DrainAbandonedVersions int64
	DrainAbandonedBytes    int64
	Migrations             int64
	MigratedVersions       int64
	MigratedBytes          int64
	MigrationFailures      int64

	// Chunked transfer pipelining (§4.3).
	PipelinedStreams int64
	PipelinedBytes   int64
	PipelinedElapsed time.Duration
	PipelinedHopBusy time.Duration

	// Per-hop byte conservation for complete pipelined streams.
	PipelinedHopBytes     int64
	PipelinedHopBytesWant int64

	// Conservation (fate) accounting; see CheckInvariants.
	AcceptedBytes  int64
	DurableBytes   int64
	DiscardedBytes int64
	LostBytes      int64

	// Retry bout outcomes.
	RetryBoutsRecovered int64
	RetryBoutsExhausted int64

	// Gray-failure tolerance (DESIGN.md §16).
	HedgesLaunched    int64
	HedgeWins         int64
	HedgeWastedBytes  int64
	StallsDetected    int64
	StallsRerouted    int64
	HealthQuarantines int64

	// SLO alert transitions and telemetry-drop gauges (DESIGN.md §17).
	SLOAlertsFired       int64
	SLOAlertsResolved    int64
	TraceEventsDropped   int64
	TraceCountersDropped int64
	LedgerEventsDropped  int64

	// Critical-path attribution records and the durable-fate op count
	// they are balanced against (see critpath.go, CheckInvariants).
	CritPaths  []CritPathRecord `json:",omitempty"`
	DurableOps int64

	// Fixed-boundary latency histograms keyed by the Hist* constants.
	Histograms map[string]HistogramSnapshot `json:",omitempty"`
}

// PendingFlushBytes returns accepted bytes whose fate has not been decided
// yet. It is zero at quiescence (after WaitFlush / Close).
func (s Summary) PendingFlushBytes() int64 {
	return s.AcceptedBytes - s.DurableBytes - s.DiscardedBytes - s.LostBytes
}

// ConservationTracked reports whether this summary came from a runtime
// that performs fate accounting (the Score runtime does; the baseline
// runtimes only keep throughput counters).
func (s Summary) ConservationTracked() bool {
	return s.AcceptedBytes != 0 || s.DurableBytes != 0 || s.DiscardedBytes != 0 || s.LostBytes != 0
}

// PipelineOverlap returns the total simulated transfer time hidden by
// chunked multi-hop streaming: summed per-hop busy time minus summed
// end-to-end elapsed time, clamped at zero.
func (s Summary) PipelineOverlap() time.Duration {
	if s.PipelinedHopBusy > s.PipelinedElapsed {
		return s.PipelinedHopBusy - s.PipelinedElapsed
	}
	return 0
}

// TotalRetries sums retried I/O attempts across tiers.
func (s Summary) TotalRetries() int64 {
	var t int64
	for _, n := range s.Retries {
		t += n
	}
	return t
}

// TotalDegradations sums degradation events across tiers.
func (s Summary) TotalDegradations() int64 {
	var t int64
	for _, n := range s.Degradations {
		t += n
	}
	return t
}

// TotalTierRecoveries sums healed degradations across tiers.
func (s Summary) TotalTierRecoveries() int64 {
	var t int64
	for _, n := range s.TierRecoveries {
		t += n
	}
	return t
}

// Snapshot returns the current totals. Atomic counters are read
// individually (merge-on-read); at quiescence the result is exact, and
// mid-run it is the same per-field-consistent view concurrent updates
// always produced.
func (r *Recorder) Snapshot() Summary {
	r.mu.Lock()
	series := make([]SeriesPoint, len(r.restoreSeries))
	copy(series, r.restoreSeries)
	retries := copyCounts(r.retries)
	degradations := copyCounts(r.degradations)
	tierRecoveries := copyCounts(r.tierRecoveries)
	critPaths := copyCritPaths(r.critPaths)
	r.mu.Unlock()
	return Summary{
		CheckpointBytes:   r.ckptBytes.Load(),
		CheckpointBlocked: time.Duration(r.ckptBlocked.Load()),
		CheckpointOps:     r.ckptOps.Load(),
		RestoreBytes:      r.restBytes.Load(),
		RestoreBlocked:    time.Duration(r.restBlocked.Load()),
		RestoreOps:        r.restOps.Load(),
		RestoreSeries:     series,
		EvictionWait:      time.Duration(r.evictionWait.Load()),
		DeviationReads:    r.deviationReads.Load(),
		Retries:           retries,
		Degradations:      degradations,
		TierRecoveries:    tierRecoveries,
		FallbackReads:     r.fallbackReads.Load(),
		Repopulations:     r.repopulations.Load(),
		FlushAborts:       r.flushAborts.Load(),
		SyncFlushes:       r.syncFlushes.Load(),

		PartnerCopies:       r.partnerCopies.Load(),
		PartnerCopyBytes:    r.partnerCopyBytes.Load(),
		PartnerCopyFailures: r.partnerCopyFailures.Load(),
		RankDeaths:          r.rankDeaths.Load(),

		Drains:                 r.drains.Load(),
		DrainDeadlineHits:      r.drainDeadlineHits.Load(),
		DrainedVersions:        r.drainedVersions.Load(),
		DrainedBytes:           r.drainedBytes.Load(),
		DrainAbandonedVersions: r.drainAbandonedVersions.Load(),
		DrainAbandonedBytes:    r.drainAbandonedBytes.Load(),
		Migrations:             r.migrations.Load(),
		MigratedVersions:       r.migratedVersions.Load(),
		MigratedBytes:          r.migratedBytes.Load(),
		MigrationFailures:      r.migrationFailures.Load(),

		PipelinedStreams: r.pipelinedStreams.Load(),
		PipelinedBytes:   r.pipelinedBytes.Load(),
		PipelinedElapsed: time.Duration(r.pipelinedElapsed.Load()),
		PipelinedHopBusy: time.Duration(r.pipelinedHopBusy.Load()),

		PipelinedHopBytes:     r.pipelinedHopBytes.Load(),
		PipelinedHopBytesWant: r.pipelinedHopBytesWant.Load(),

		AcceptedBytes:  r.acceptedBytes.Load(),
		DurableBytes:   r.durableBytes.Load(),
		DiscardedBytes: r.discardedBytes.Load(),
		LostBytes:      r.lostBytes.Load(),

		RetryBoutsRecovered: r.retryBoutsRecovered.Load(),
		RetryBoutsExhausted: r.retryBoutsExhausted.Load(),

		HedgesLaunched:    r.hedgesLaunched.Load(),
		HedgeWins:         r.hedgeWins.Load(),
		HedgeWastedBytes:  r.hedgeWastedBytes.Load(),
		StallsDetected:    r.stallsDetected.Load(),
		StallsRerouted:    r.stallsRerouted.Load(),
		HealthQuarantines: r.healthQuarantines.Load(),

		SLOAlertsFired:       r.sloAlertsFired.Load(),
		SLOAlertsResolved:    r.sloAlertsResolved.Load(),
		TraceEventsDropped:   r.traceEventsDropped.Load(),
		TraceCountersDropped: r.traceCountersDropped.Load(),
		LedgerEventsDropped:  r.ledgerEventsDropped.Load(),

		CritPaths:  critPaths,
		DurableOps: r.durableOps.Load(),

		Histograms: r.hists.snapshot(),
	}
}

func copyCounts(m map[string]int64) map[string]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// CheckpointThroughput returns application-observed write throughput in
// bytes/second (total size over blocking time, §5.4.1).
func (s Summary) CheckpointThroughput() float64 {
	return throughput(s.CheckpointBytes, s.CheckpointBlocked)
}

// RestoreThroughput returns application-observed read throughput.
func (s Summary) RestoreThroughput() float64 {
	return throughput(s.RestoreBytes, s.RestoreBlocked)
}

// MeanPrefetchDistance averages the prefetch distance over all restores.
func (s Summary) MeanPrefetchDistance() float64 {
	if len(s.RestoreSeries) == 0 {
		return 0
	}
	var sum int
	for _, p := range s.RestoreSeries {
		sum += p.PrefetchDistance
	}
	return float64(sum) / float64(len(s.RestoreSeries))
}

func throughput(bytes int64, blocked time.Duration) float64 {
	if blocked <= 0 {
		if bytes > 0 {
			return float64(bytes) * 1e9 // effectively instant
		}
		return 0
	}
	return float64(bytes) / blocked.Seconds()
}

// Merge combines summaries from multiple processes: byte and time totals
// add; series concatenate sorted by iteration.
func Merge(parts ...Summary) Summary {
	var out Summary
	for _, p := range parts {
		out.CheckpointBytes += p.CheckpointBytes
		out.CheckpointBlocked += p.CheckpointBlocked
		out.CheckpointOps += p.CheckpointOps
		out.RestoreBytes += p.RestoreBytes
		out.RestoreBlocked += p.RestoreBlocked
		out.RestoreOps += p.RestoreOps
		out.EvictionWait += p.EvictionWait
		out.DeviationReads += p.DeviationReads
		out.RestoreSeries = append(out.RestoreSeries, p.RestoreSeries...)
		out.FallbackReads += p.FallbackReads
		out.Repopulations += p.Repopulations
		out.FlushAborts += p.FlushAborts
		out.SyncFlushes += p.SyncFlushes
		out.PartnerCopies += p.PartnerCopies
		out.PartnerCopyBytes += p.PartnerCopyBytes
		out.PartnerCopyFailures += p.PartnerCopyFailures
		out.RankDeaths += p.RankDeaths
		out.Drains += p.Drains
		out.DrainDeadlineHits += p.DrainDeadlineHits
		out.DrainedVersions += p.DrainedVersions
		out.DrainedBytes += p.DrainedBytes
		out.DrainAbandonedVersions += p.DrainAbandonedVersions
		out.DrainAbandonedBytes += p.DrainAbandonedBytes
		out.Migrations += p.Migrations
		out.MigratedVersions += p.MigratedVersions
		out.MigratedBytes += p.MigratedBytes
		out.MigrationFailures += p.MigrationFailures
		out.PipelinedStreams += p.PipelinedStreams
		out.PipelinedBytes += p.PipelinedBytes
		out.PipelinedElapsed += p.PipelinedElapsed
		out.PipelinedHopBusy += p.PipelinedHopBusy
		out.PipelinedHopBytes += p.PipelinedHopBytes
		out.PipelinedHopBytesWant += p.PipelinedHopBytesWant
		out.AcceptedBytes += p.AcceptedBytes
		out.DurableBytes += p.DurableBytes
		out.DiscardedBytes += p.DiscardedBytes
		out.LostBytes += p.LostBytes
		out.RetryBoutsRecovered += p.RetryBoutsRecovered
		out.RetryBoutsExhausted += p.RetryBoutsExhausted
		out.HedgesLaunched += p.HedgesLaunched
		out.HedgeWins += p.HedgeWins
		out.HedgeWastedBytes += p.HedgeWastedBytes
		out.StallsDetected += p.StallsDetected
		out.StallsRerouted += p.StallsRerouted
		out.HealthQuarantines += p.HealthQuarantines
		out.SLOAlertsFired += p.SLOAlertsFired
		out.SLOAlertsResolved += p.SLOAlertsResolved
		out.TraceEventsDropped += p.TraceEventsDropped
		out.TraceCountersDropped += p.TraceCountersDropped
		out.LedgerEventsDropped += p.LedgerEventsDropped
		out.CritPaths = append(out.CritPaths, copyCritPaths(p.CritPaths)...)
		out.DurableOps += p.DurableOps
		for name, h := range p.Histograms {
			if out.Histograms == nil {
				out.Histograms = map[string]HistogramSnapshot{}
			}
			merged, err := out.Histograms[name].merge(h)
			if err == nil {
				out.Histograms[name] = merged
			}
		}
		for k, v := range p.Retries {
			if out.Retries == nil {
				out.Retries = map[string]int64{}
			}
			out.Retries[k] += v
		}
		for k, v := range p.Degradations {
			if out.Degradations == nil {
				out.Degradations = map[string]int64{}
			}
			out.Degradations[k] += v
		}
		for k, v := range p.TierRecoveries {
			if out.TierRecoveries == nil {
				out.TierRecoveries = map[string]int64{}
			}
			out.TierRecoveries[k] += v
		}
	}
	sort.SliceStable(out.RestoreSeries, func(i, j int) bool {
		return out.RestoreSeries[i].Iteration < out.RestoreSeries[j].Iteration
	})
	sortCritPaths(out.CritPaths)
	return out
}

// FormatBytesPerSec renders a throughput human-readably (e.g. "25.0 GB/s").
func FormatBytesPerSec(bps float64) string {
	const (
		kb = 1 << 10
		mb = 1 << 20
		gb = 1 << 30
		tb = 1 << 40
	)
	switch {
	case bps >= tb:
		return fmt.Sprintf("%.2f TB/s", bps/tb)
	case bps >= gb:
		return fmt.Sprintf("%.2f GB/s", bps/gb)
	case bps >= mb:
		return fmt.Sprintf("%.2f MB/s", bps/mb)
	case bps >= kb:
		return fmt.Sprintf("%.2f KB/s", bps/kb)
	default:
		return fmt.Sprintf("%.0f B/s", bps)
	}
}
