package metrics

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"
)

func registryWithRun(t *testing.T) *Registry {
	t.Helper()
	rec := NewRecorder()
	rec.Checkpoint(4096, 2*time.Millisecond)
	rec.CheckpointAccepted(4096)
	rec.ConserveDurable(4096)
	rec.Retry("ssd")
	rec.RetryBout(true)
	reg := NewRegistry()
	reg.Record("fig5a small", rec.Snapshot())
	reg.RecordSeries("fig5a small", map[string][]Sample{
		"link.pcie0.inflight": {{At: time.Millisecond, Value: 1}, {At: 2 * time.Millisecond, Value: 3}},
	})
	return reg
}

func TestRegistryRecordMerges(t *testing.T) {
	reg := registryWithRun(t)
	rec := NewRecorder()
	rec.Checkpoint(1000, time.Millisecond)
	reg.Record("fig5a small", rec.Snapshot())
	if reg.Len() != 1 {
		t.Fatalf("Len = %d, want repeated labels to merge into one run", reg.Len())
	}
	ex := reg.Export()
	if got := ex.Runs[0].Summary.CheckpointBytes; got != 5096 {
		t.Errorf("merged CheckpointBytes = %d, want 5096", got)
	}
	reg.RecordSeries("fig5a small", map[string][]Sample{
		"link.pcie0.inflight": {{At: 3 * time.Millisecond, Value: 0}},
	})
	if got := len(reg.Export().Runs[0].Series["link.pcie0.inflight"]); got != 3 {
		t.Errorf("series length after append = %d, want 3", got)
	}
}

func TestRegistryJSONExport(t *testing.T) {
	reg := registryWithRun(t)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f ExportFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if f.Schema != ExportSchema {
		t.Errorf("schema = %q, want %q", f.Schema, ExportSchema)
	}
	if len(f.Runs) != 1 || f.Runs[0].Label != "fig5a small" {
		t.Fatalf("runs = %+v, want one labeled run", f.Runs)
	}
	s := f.Runs[0].Summary
	if s.CheckpointBytes != 4096 || s.TotalRetries() != 1 {
		t.Errorf("summary did not round-trip: bytes %d retries %d", s.CheckpointBytes, s.TotalRetries())
	}
	h, ok := s.Histograms[HistCheckpoint]
	if !ok || h.Count != 1 {
		t.Errorf("checkpoint histogram did not round-trip: %+v", h)
	}
	if pts := f.Runs[0].Series["link.pcie0.inflight"]; len(pts) != 2 || pts[1].Value != 3 {
		t.Errorf("series did not round-trip: %+v", pts)
	}
}

func TestRegistryPrometheusOutput(t *testing.T) {
	reg := registryWithRun(t)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE score_checkpoint_bytes_total counter",
		`score_checkpoint_bytes_total{run="fig5a small"} 4096`,
		`score_retries_total{run="fig5a small",tier="ssd"} 1`,
		"# TYPE score_checkpoint_blocked_seconds histogram",
		`score_checkpoint_blocked_seconds_count{run="fig5a small"} 1`,
		`score_checkpoint_blocked_seconds_sum{run="fig5a small"} 0.002`,
		`le="+Inf"`,
		`score_sample{run="fig5a small",series="link.pcie0.inflight"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
	// Cumulative le buckets must be non-decreasing and end at the count.
	var lastCum int64 = -1
	seenBuckets := false
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "score_checkpoint_blocked_seconds_bucket{") {
			continue
		}
		seenBuckets = true
		fields := strings.Fields(line)
		cum, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if cum < lastCum {
			t.Errorf("cumulative bucket decreased: %q", line)
		}
		lastCum = cum
	}
	if !seenBuckets {
		t.Fatal("no histogram bucket lines emitted")
	}
	if lastCum != 1 {
		t.Errorf("final cumulative bucket = %d, want the histogram count 1", lastCum)
	}
}
