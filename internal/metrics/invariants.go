package metrics

import (
	"errors"
	"fmt"
	"time"
)

// CheckInvariants verifies the conservation laws the observability layer
// turns into correctness oracles. They must hold at any point in a run:
//
//   - fate accounting never over-credits: durable + discarded + lost
//     bytes never exceed the bytes accepted into the pipeline;
//   - retry bouts are conservative: every recorded bout carried at least
//     one retry, so bouts <= total retries, and tiers are only marked
//     degraded after a bout exhausted its attempts;
//   - every repopulation was preceded by a fallback read;
//   - per-hop pipelined bytes match the payload: each hop of a complete
//     chunked stream moved exactly the stream's payload size;
//   - histograms are internally consistent (bucket counts sum to the
//     total) and agree with the operation counters they shadow.
//
// A nil error means every invariant holds.
func CheckInvariants(s Summary) error {
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	// Fate accounting.
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"accepted", s.AcceptedBytes}, {"durable", s.DurableBytes},
		{"discarded", s.DiscardedBytes}, {"lost", s.LostBytes},
	} {
		if c.v < 0 {
			fail("conservation: %s bytes negative (%d)", c.name, c.v)
		}
	}
	if pending := s.PendingFlushBytes(); pending < 0 {
		fail("conservation: fates over-credited — durable(%d)+discarded(%d)+lost(%d) exceed accepted(%d) by %d",
			s.DurableBytes, s.DiscardedBytes, s.LostBytes, s.AcceptedBytes, -pending)
	}

	// Retry bouts. A recovered bout by definition retried at least once;
	// an exhausted bout may have had its attempts capped at one, so only
	// recovered bouts bound the per-retry counters.
	if s.RetryBoutsRecovered > s.TotalRetries() {
		fail("retries: %d recovered bouts but only %d retried attempts", s.RetryBoutsRecovered, s.TotalRetries())
	}
	// Every degradation transition is triggered either by an exhausted
	// retry bout (hard failure) or by a health-score breach (gray
	// failure).
	if d := s.TotalDegradations(); d > s.RetryBoutsExhausted+s.HealthQuarantines {
		fail("retries: %d degradations but only %d exhausted bouts + %d health quarantines",
			d, s.RetryBoutsExhausted, s.HealthQuarantines)
	}
	if s.Repopulations > s.FallbackReads {
		fail("retries: %d repopulations but only %d fallback reads", s.Repopulations, s.FallbackReads)
	}
	// A tier heals only after being marked degraded, and the transitions
	// alternate, so per-tier recoveries never exceed degradations.
	for tier, rec := range s.TierRecoveries {
		if rec > s.Degradations[tier] {
			fail("retries: tier %q healed %d times but degraded only %d times", tier, rec, s.Degradations[tier])
		}
	}
	if s.PartnerCopyBytes < 0 {
		fail("partner: negative replicated bytes (%d)", s.PartnerCopyBytes)
	}

	// Gray-failure tolerance: a hedge win needs a launched hedge leg, a
	// reroute needs a detected stall, and the waste/quarantine tallies
	// only ever accumulate. Health quarantines are a subset of the
	// degradation transitions they trigger.
	if s.HedgeWins > s.HedgesLaunched {
		fail("hedge: %d wins but only %d hedge legs launched", s.HedgeWins, s.HedgesLaunched)
	}
	if s.HedgeWastedBytes < 0 {
		fail("hedge: negative wasted bytes (%d)", s.HedgeWastedBytes)
	}
	if s.StallsRerouted > s.StallsDetected {
		fail("stall: %d reroutes but only %d stalls detected", s.StallsRerouted, s.StallsDetected)
	}
	if s.HealthQuarantines > s.TotalDegradations() {
		fail("health: %d quarantines but only %d degradations", s.HealthQuarantines, s.TotalDegradations())
	}
	if h, ok := s.Histograms[HistHedgeWait]; ok && s.HedgesLaunched == 0 && h.Count != 0 {
		fail("hedge: %d hedge_wait samples with no hedge launched", h.Count)
	}

	// SLO alerting: every resolve follows a fire, and the telemetry-drop
	// gauges are mirrored totals that can never go negative.
	if s.SLOAlertsResolved > s.SLOAlertsFired {
		fail("slo: %d alerts resolved but only %d fired", s.SLOAlertsResolved, s.SLOAlertsFired)
	}
	if s.TraceEventsDropped < 0 || s.TraceCountersDropped < 0 || s.LedgerEventsDropped < 0 {
		fail("slo: negative telemetry-drop gauge (events %d, counters %d, ledger %d)",
			s.TraceEventsDropped, s.TraceCountersDropped, s.LedgerEventsDropped)
	}

	// Drain accounting folds into the fate ledger: every version a drain
	// flushed was credited durable, every abandoned one was credited lost
	// through the flush-abort path, and each drain decides its deadline
	// outcome at most once.
	if s.DrainedBytes > s.DurableBytes {
		fail("drain: %d drained bytes exceed %d durable bytes", s.DrainedBytes, s.DurableBytes)
	}
	if s.DrainAbandonedBytes > s.LostBytes {
		fail("drain: %d abandoned bytes exceed %d lost bytes", s.DrainAbandonedBytes, s.LostBytes)
	}
	if s.DrainAbandonedVersions > s.FlushAborts {
		fail("drain: %d abandoned versions but only %d flush aborts", s.DrainAbandonedVersions, s.FlushAborts)
	}
	if s.DrainDeadlineHits > s.Drains {
		fail("drain: %d deadline hits for %d drains", s.DrainDeadlineHits, s.Drains)
	}
	if s.Drains == 0 && (s.DrainedVersions != 0 || s.DrainAbandonedVersions != 0) {
		fail("drain: triage outcomes recorded (%d drained, %d abandoned) with no drain started",
			s.DrainedVersions, s.DrainAbandonedVersions)
	}
	if s.MigratedBytes < 0 {
		fail("migrate: negative migrated bytes (%d)", s.MigratedBytes)
	}
	if s.Migrations == 0 && s.MigratedVersions != 0 {
		fail("migrate: %d versions copied with no migration started", s.MigratedVersions)
	}

	// Pipelined per-hop byte conservation.
	if s.PipelinedHopBytes != s.PipelinedHopBytesWant {
		fail("pipeline: per-hop bytes %d != expected payload×hops %d (diff %d)",
			s.PipelinedHopBytes, s.PipelinedHopBytesWant, s.PipelinedHopBytes-s.PipelinedHopBytesWant)
	}

	// Histogram internal consistency.
	for name, h := range s.Histograms {
		var sum int64
		for _, c := range h.Counts {
			if c < 0 {
				fail("histogram %s: negative bucket count %d", name, c)
			}
			sum += c
		}
		if sum != h.Count {
			fail("histogram %s: bucket counts sum to %d, total says %d", name, sum, h.Count)
		}
	}
	if h, ok := s.Histograms[HistCheckpoint]; ok && h.Count != s.CheckpointOps {
		fail("histogram %s: %d samples vs %d checkpoint ops", HistCheckpoint, h.Count, s.CheckpointOps)
	}
	if h, ok := s.Histograms[HistRestore]; ok && h.Count != s.RestoreOps {
		fail("histogram %s: %d samples vs %d restore ops", HistRestore, h.Count, s.RestoreOps)
	}

	// Series consistency.
	if int64(len(s.RestoreSeries)) != s.RestoreOps {
		fail("restore series has %d points for %d restore ops", len(s.RestoreSeries), s.RestoreOps)
	}

	// Critical-path attribution: each record's components must telescope
	// to exactly its measured end-to-end latency with no unattributed
	// residue, and records never outnumber the operations they decompose.
	var durableRecs, restoreRecs int64
	for _, rec := range s.CritPaths {
		switch rec.Op {
		case CritDurable:
			durableRecs++
		case CritRestore:
			restoreRecs++
		default:
			fail("critpath: unknown op %q (version %d)", rec.Op, rec.Version)
		}
		if rec.Total < 0 {
			fail("critpath: %s v%d has negative total %v", rec.Op, rec.Version, rec.Total)
		}
		var sum time.Duration
		for comp, d := range rec.Components {
			if d < 0 {
				fail("critpath: %s v%d component %s negative (%v)", rec.Op, rec.Version, comp, d)
			}
			sum += d
		}
		if sum+rec.Unattributed != rec.Total {
			fail("critpath: %s v%d components (%v) + unattributed (%v) != total (%v)",
				rec.Op, rec.Version, sum, rec.Unattributed, rec.Total)
		}
		if rec.Unattributed != 0 {
			fail("critpath: %s v%d has unattributed latency gap %v", rec.Op, rec.Version, rec.Unattributed)
		}
	}
	if durableRecs > s.DurableOps {
		fail("critpath: %d durable records but only %d durable checkpoints", durableRecs, s.DurableOps)
	}
	if restoreRecs > s.RestoreOps {
		fail("critpath: %d restore records but only %d restore ops", restoreRecs, s.RestoreOps)
	}

	return errors.Join(errs...)
}

// CheckInvariantsQuiescent verifies the running invariants plus the
// stronger balance that only holds once the flush pipeline has drained
// (after WaitFlush): every accepted byte has a decided fate, and accepted
// bytes equal the checkpoint bytes the application observed.
func CheckInvariantsQuiescent(s Summary) error {
	var errs []error
	if err := CheckInvariants(s); err != nil {
		errs = append(errs, err)
	}
	if s.ConservationTracked() {
		if pending := s.PendingFlushBytes(); pending != 0 {
			errs = append(errs, fmt.Errorf(
				"conservation: %d bytes still pending at quiescence — accepted(%d) != durable(%d)+discarded(%d)+lost(%d)",
				pending, s.AcceptedBytes, s.DurableBytes, s.DiscardedBytes, s.LostBytes))
		}
		if s.AcceptedBytes != s.CheckpointBytes {
			errs = append(errs, fmt.Errorf(
				"conservation: accepted bytes %d != checkpointed bytes %d",
				s.AcceptedBytes, s.CheckpointBytes))
		}
		// At quiescence the runtime has emitted every attribution record:
		// exactly one per durable version and one per restore, so every
		// durable checkpoint has a complete, fully attributed ledger.
		var durableRecs, restoreRecs int64
		for _, rec := range s.CritPaths {
			switch rec.Op {
			case CritDurable:
				durableRecs++
			case CritRestore:
				restoreRecs++
			}
		}
		if durableRecs != s.DurableOps {
			errs = append(errs, fmt.Errorf(
				"critpath: %d durable records at quiescence for %d durable checkpoints",
				durableRecs, s.DurableOps))
		}
		if restoreRecs != s.RestoreOps {
			errs = append(errs, fmt.Errorf(
				"critpath: %d restore records at quiescence for %d restore ops",
				restoreRecs, s.RestoreOps))
		}
	}
	return errors.Join(errs...)
}
