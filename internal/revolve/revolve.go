// Package revolve implements binomial checkpointing (Griewank & Walther's
// REVOLVE), the adjoint-scheduling technique the paper's introduction
// highlights for memory-bound automatic differentiation (quantum optimal
// control, §1): the forward pass stores only a subset of checkpoints and
// the backward pass recomputes missing states by re-running short forward
// segments from stored checkpoints.
//
// Schedule produces the offline action sequence for reversing n steps
// with at most s simultaneously live checkpoints, using the classic
// recursive bisection at the binomial midpoint. The resulting interleaved
// writes and reads ("write and read checkpoints in any predefined order",
// §1) are exactly the access pattern the Score runtime's hint queue is
// designed for — see examples/binomial.
package revolve

import (
	"fmt"
)

// Kind is the type of one schedule action.
type Kind int

const (
	// Advance: run the forward model from state Step to state Target.
	Advance Kind = iota
	// Store: checkpoint the current state (at Step) into Slot.
	Store
	// Restore: reload the checkpoint of state Step from Slot.
	Restore
	// Reverse: perform one adjoint (backward) step for state Step,
	// consuming the forward state at Step.
	Reverse
	// Discard: drop the checkpoint of state Step (its slot is free).
	Discard
)

// String names the action kind.
func (k Kind) String() string {
	switch k {
	case Advance:
		return "advance"
	case Store:
		return "store"
	case Restore:
		return "restore"
	case Reverse:
		return "reverse"
	case Discard:
		return "discard"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Action is one step of a reversal schedule.
type Action struct {
	Kind Kind
	// Step is the state index the action applies to.
	Step int
	// Target is the destination state for Advance.
	Target int
}

// Schedule returns the action sequence that reverses steps [0, n) using
// at most slots live checkpoints. It requires n >= 1 and slots >= 1.
//
// The sequence maintains these invariants (verified by tests):
//   - Reverse actions appear for steps n-1, n-2, ..., 0 in that order;
//   - at most `slots` checkpoints are live at any moment;
//   - every Advance starts from a state the executor currently holds.
func Schedule(n, slots int) ([]Action, error) {
	if n < 1 {
		return nil, fmt.Errorf("revolve: need at least one step, got %d", n)
	}
	if slots < 1 {
		return nil, fmt.Errorf("revolve: need at least one checkpoint slot, got %d", slots)
	}
	g := &generator{slots: slots, plan: newPlanner()}
	// State 0 is always stored first (the primal input).
	g.emit(Action{Kind: Store, Step: 0})
	g.live++
	g.reverseRange(0, n)
	g.emit(Action{Kind: Discard, Step: 0})
	g.live--
	return g.out, nil
}

type generator struct {
	out   []Action
	slots int
	live  int
	peak  int
	plan  *planner
}

func (g *generator) emit(a Action) { g.out = append(g.out, a) }

// reverseRange reverses steps [begin, end), assuming state `begin` is
// currently checkpointed (and counted in g.live).
func (g *generator) reverseRange(begin, end int) {
	length := end - begin
	if length == 1 {
		// Base case: advance to the state, reverse it.
		g.emit(Action{Kind: Restore, Step: begin})
		g.emit(Action{Kind: Reverse, Step: begin})
		return
	}
	free := g.slots - g.live
	var mid int
	if free >= 1 {
		mid = begin + g.plan.bestSplit(length, free)
		// Advance from begin to mid and store mid.
		g.emit(Action{Kind: Restore, Step: begin})
		g.emit(Action{Kind: Advance, Step: begin, Target: mid})
		g.emit(Action{Kind: Store, Step: mid})
		g.live++
		if g.live > g.peak {
			g.peak = g.live
		}
		g.reverseRange(mid, end)
		g.emit(Action{Kind: Discard, Step: mid})
		g.live--
		g.reverseRange(begin, mid)
		return
	}
	// No free slots: recompute each tail state from begin, one by one
	// (degenerate O(n²) reversal — the price of slots exhausted).
	for step := end - 1; step > begin; step-- {
		g.emit(Action{Kind: Restore, Step: begin})
		g.emit(Action{Kind: Advance, Step: begin, Target: step})
		g.emit(Action{Kind: Reverse, Step: step})
	}
	g.emit(Action{Kind: Restore, Step: begin})
	g.emit(Action{Kind: Reverse, Step: begin})
}

// planner computes optimal split points by dynamic programming over the
// schedule cost recurrence
//
//	t(l, f) = min_{1<=m<l} [ m + t(l-m, f-1) + t(m, f) ]
//	t(1, f) = 0,  t(l, 0) = l(l-1)/2
//
// where l is the range length, f the free checkpoint slots, and the cost
// counts primal forward steps. t is convex in the split point, so the
// minimization uses ternary search with a final local scan; states are
// memoized. For l = C(f+r, f) this reproduces the Griewank–Walther
// binomial bound t = r·l − C(f+r, f−1).
type planner struct {
	memo  map[dpKey]int64
	split map[dpKey]int
}

type dpKey struct{ l, f int }

func newPlanner() *planner {
	return &planner{memo: map[dpKey]int64{}, split: map[dpKey]int{}}
}

// cost returns t(l, f).
func (p *planner) cost(l, f int) int64 {
	if l <= 1 {
		return 0
	}
	if f <= 0 {
		return int64(l) * int64(l-1) / 2
	}
	k := dpKey{l, f}
	if v, ok := p.memo[k]; ok {
		return v
	}
	val := func(m int) int64 { return int64(m) + p.cost(l-m, f-1) + p.cost(m, f) }
	lo, hi := 1, l-1
	for hi-lo > 8 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if val(m1) <= val(m2) {
			hi = m2 - 1
		} else {
			lo = m1 + 1
		}
	}
	best, bestM := int64(1)<<62, lo
	for m := lo; m <= hi; m++ {
		if v := val(m); v < best {
			best, bestM = v, m
		}
	}
	p.memo[k] = best
	p.split[k] = bestM
	return best
}

// bestSplit returns the optimal first-checkpoint offset for a range of
// the given length with free spare slots.
func (p *planner) bestSplit(length, free int) int {
	p.cost(length, free)
	if m, ok := p.split[dpKey{length, free}]; ok {
		return m
	}
	return maxInt(1, length/2)
}

// PeakSlots reports the maximum simultaneously live checkpoints of a
// schedule (for validation).
func PeakSlots(actions []Action) int {
	live, peak := 0, 0
	for _, a := range actions {
		switch a.Kind {
		case Store:
			live++
			if live > peak {
				peak = live
			}
		case Discard:
			live--
		}
	}
	return peak
}

// ForwardSteps counts the total primal steps executed by a schedule (the
// recomputation cost).
func ForwardSteps(actions []Action) int {
	total := 0
	for _, a := range actions {
		if a.Kind == Advance {
			total += a.Target - a.Step
		}
	}
	return total
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
