package revolve

import (
	"testing"
	"testing/quick"
)

// simulate executes a schedule against a model of the executor and
// reports (reversedSteps in order, error string).
func simulate(t *testing.T, n, slots int, actions []Action) []int {
	t.Helper()
	stored := map[int]bool{}
	live := 0
	current := -1 // state currently materialized in the executor
	var reversed []int
	for i, a := range actions {
		switch a.Kind {
		case Store:
			if current != a.Step && !(i == 0 && a.Step == 0) {
				t.Fatalf("action %d: Store(%d) but current state is %d", i, a.Step, current)
			}
			if stored[a.Step] {
				t.Fatalf("action %d: Store(%d) already stored", i, a.Step)
			}
			stored[a.Step] = true
			live++
			if live > slots {
				t.Fatalf("action %d: %d live checkpoints exceeds %d slots", i, live, slots)
			}
			if i == 0 {
				current = a.Step
			}
		case Restore:
			if !stored[a.Step] {
				t.Fatalf("action %d: Restore(%d) not stored", i, a.Step)
			}
			current = a.Step
		case Advance:
			if current != a.Step {
				t.Fatalf("action %d: Advance from %d but current state is %d", i, a.Step, current)
			}
			if a.Target <= a.Step {
				t.Fatalf("action %d: Advance %d → %d not forward", i, a.Step, a.Target)
			}
			current = a.Target
		case Reverse:
			if current != a.Step {
				t.Fatalf("action %d: Reverse(%d) but current state is %d", i, a.Step, current)
			}
			reversed = append(reversed, a.Step)
		case Discard:
			if !stored[a.Step] {
				t.Fatalf("action %d: Discard(%d) not stored", i, a.Step)
			}
			delete(stored, a.Step)
			live--
		}
	}
	if live != 0 {
		t.Fatalf("%d checkpoints leaked", live)
	}
	_ = n
	return reversed
}

func checkReversal(t *testing.T, n, slots int) []Action {
	t.Helper()
	actions, err := Schedule(n, slots)
	if err != nil {
		t.Fatal(err)
	}
	reversed := simulate(t, n, slots, actions)
	if len(reversed) != n {
		t.Fatalf("n=%d slots=%d: reversed %d steps, want %d", n, slots, len(reversed), n)
	}
	for i, s := range reversed {
		if want := n - 1 - i; s != want {
			t.Fatalf("n=%d slots=%d: reversal %d = step %d, want %d", n, slots, i, s, want)
		}
	}
	return actions
}

func TestScheduleSmallCases(t *testing.T) {
	for n := 1; n <= 20; n++ {
		for slots := 1; slots <= 6; slots++ {
			checkReversal(t, n, slots)
		}
	}
}

func TestScheduleLargerCases(t *testing.T) {
	for _, tc := range []struct{ n, slots int }{
		{100, 3}, {100, 8}, {384, 8}, {384, 16}, {1000, 10}, {57, 2},
	} {
		actions := checkReversal(t, tc.n, tc.slots)
		if peak := PeakSlots(actions); peak > tc.slots {
			t.Errorf("n=%d slots=%d: peak live %d exceeds budget", tc.n, tc.slots, peak)
		}
	}
}

func TestRecomputationBoundedWithAmpleSlots(t *testing.T) {
	// With slots >= n, no recomputation beyond the initial forward pass
	// is necessary: every state is stored once.
	actions := checkReversal(t, 32, 32)
	if fw := ForwardSteps(actions); fw > 32 {
		t.Errorf("ample slots: %d forward steps, want <= 32 (no recomputation)", fw)
	}
}

func TestRecomputationGrowsWhenSlotsShrink(t *testing.T) {
	a8 := checkReversal(t, 200, 8)
	a2 := checkReversal(t, 200, 2)
	if ForwardSteps(a2) <= ForwardSteps(a8) {
		t.Errorf("fewer slots must cost more recomputation: 2 slots → %d, 8 slots → %d",
			ForwardSteps(a2), ForwardSteps(a8))
	}
	// Binomial schedules stay well below the quadratic worst case for
	// reasonable budgets.
	if fw := ForwardSteps(a8); fw > 200*6 {
		t.Errorf("8-slot schedule executes %d forward steps; binomial bound ~3n expected", fw)
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := Schedule(0, 4); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Schedule(4, 0); err == nil {
		t.Error("slots=0 accepted")
	}
}

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{Advance: "advance", Store: "store",
		Restore: "restore", Reverse: "reverse", Discard: "discard"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("out-of-range kind should format numerically")
	}
}

func TestScheduleValidityProperty(t *testing.T) {
	// Property: any (n, slots) yields a schedule that reverses exactly
	// n steps in descending order within the slot budget.
	f := func(n, s uint8) bool {
		steps := int(n%150) + 1
		slots := int(s%10) + 1
		actions, err := Schedule(steps, slots)
		if err != nil {
			return false
		}
		if PeakSlots(actions) > slots {
			return false
		}
		// Light-weight re-simulation (no t.Fatal): count reversals.
		stored := map[int]bool{}
		current := -1
		rev := 0
		expect := steps - 1
		for i, a := range actions {
			switch a.Kind {
			case Store:
				stored[a.Step] = true
				if i == 0 {
					current = a.Step
				}
			case Restore:
				if !stored[a.Step] {
					return false
				}
				current = a.Step
			case Advance:
				if current != a.Step || a.Target <= a.Step {
					return false
				}
				current = a.Target
			case Reverse:
				if current != a.Step || a.Step != expect {
					return false
				}
				expect--
				rev++
			case Discard:
				delete(stored, a.Step)
			}
		}
		return rev == steps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
