package fabric

import (
	"errors"
	"testing"
	"time"

	"score/internal/simclock"
)

// TestPipelinedDegeneratesToMonolithic: chunkSize <= 0 (and chunkSize >=
// size) must reproduce the store-and-forward Path.Transfer timing exactly.
func TestPipelinedDegeneratesToMonolithic(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		p := Path{
			NewLink(clk, "a", 1*GB, 5*time.Millisecond),
			NewLink(clk, "b", 2*GB, 3*time.Millisecond),
		}
		mono := p.Transfer(1 * GB)
		for _, cs := range []int64{0, -1, 1 * GB, 2 * GB} {
			d, err := p.TryPipelinedTransfer(1*GB, cs)
			if err != nil {
				t.Fatalf("chunkSize=%d: %v", cs, err)
			}
			if d != mono {
				t.Errorf("chunkSize=%d took %v, want monolithic %v", cs, d, mono)
			}
		}
	})
}

// TestPipelinedByteConservation: chunking must not create or lose bytes —
// every hop carries exactly the payload size, split into ceil(size/chunk)
// transfers, including a short tail chunk.
func TestPipelinedByteConservation(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		links := []*Link{
			NewLink(clk, "a", 1*GB, 0),
			NewLink(clk, "b", 1*GB, 0),
			NewLink(clk, "c", 1*GB, 0),
		}
		p := Path{links[0], links[1], links[2]}
		const size, chunk = 10*GB/10 + 7, GB / 10 // non-multiple: 10 full chunks + 7-byte tail
		st, err := p.TryPipelined(size, chunk)
		if err != nil {
			t.Fatal(err)
		}
		wantChunks := 11
		if st.Chunks != wantChunks {
			t.Errorf("Chunks = %d, want %d", st.Chunks, wantChunks)
		}
		if st.Bytes != size {
			t.Errorf("Bytes = %d, want %d", st.Bytes, size)
		}
		for _, l := range links {
			bytes, transfers, _ := l.Stats()
			if bytes != size {
				t.Errorf("link %s carried %d bytes, want %d", l.Name(), bytes, size)
			}
			if transfers != int64(wantChunks) {
				t.Errorf("link %s saw %d transfers, want %d", l.Name(), transfers, wantChunks)
			}
			if l.InFlight() != 0 {
				t.Errorf("link %s has %d transfers still in flight", l.Name(), l.InFlight())
			}
		}
		if st.Overlap() <= 0 {
			t.Errorf("pipelined stream reported no overlap (duration %v, hop busy %v)",
				st.Duration, st.HopBusy)
		}
	})
}

// TestPipelinedAcceptance reproduces the acceptance criterion: a 2 GiB
// flush over paper-bandwidth PCIe (25 GB/s) + NVMe (16 GB/s) in 128 MiB
// chunks must finish in at most 0.7x the monolithic store-and-forward
// time. (Analytically: mono ~ 2/25 + 2/16 ~ 0.205 s, pipelined ~ bound by
// the NVMe hop + one PCIe chunk ~ 0.133 s, ratio ~ 0.65.)
func TestPipelinedAcceptance(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		const size, chunk = 2 * GB, 128 << 20
		mono := Path{
			NewLink(clk, "pcie-m", 25*GB, 10*time.Microsecond),
			NewLink(clk, "nvme-m", 16*GB, 10*time.Microsecond),
		}.Transfer(size)
		pipe, err := Path{
			NewLink(clk, "pcie-p", 25*GB, 10*time.Microsecond),
			NewLink(clk, "nvme-p", 16*GB, 10*time.Microsecond),
		}.TryPipelinedTransfer(size, chunk)
		if err != nil {
			t.Fatal(err)
		}
		if limit := time.Duration(float64(mono) * 0.7); pipe > limit {
			t.Errorf("pipelined %v > 0.7x monolithic %v (limit %v)", pipe, mono, limit)
		}
	})
}

// TestPipelinedFairShareOnSharedLink: a pipelined stream must occupy a
// single fair-share slot per link, so two concurrent streams crossing a
// shared bottleneck each run at half speed — exactly like two monolithic
// transfers would.
func TestPipelinedFairShareOnSharedLink(t *testing.T) {
	const size, chunk = 1 * GB, GB / 8

	solo := func() time.Duration {
		clk := simclock.NewVirtual()
		var d time.Duration
		clk.Run(func() {
			p := Path{NewLink(clk, "shared", 1*GB, 0), NewLink(clk, "down", 4*GB, 0)}
			d, _ = p.TryPipelinedTransfer(size, chunk)
		})
		return d
	}()

	clk := simclock.NewVirtual()
	clk.Run(func() {
		shared := NewLink(clk, "shared", 1*GB, 0)
		durs := make([]time.Duration, 2)
		wg := simclock.NewWaitGroup(clk)
		for i := 0; i < 2; i++ {
			i := i
			down := NewLink(clk, "down", 4*GB, 0)
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				durs[i], _ = Path{shared, down}.TryPipelinedTransfer(size, chunk)
			})
		}
		wg.Wait()
		for i, d := range durs {
			if d < time.Duration(float64(solo)*1.9) || d > time.Duration(float64(solo)*2.1) {
				t.Errorf("stream %d took %v under contention, want ~2x solo %v", i, d, solo)
			}
		}
		if _, _, peak := shared.Stats(); peak != 2 {
			t.Errorf("shared link peak concurrency = %d, want 2 (one slot per stream)", peak)
		}
	})
}

// TestPipelinedFaultAborts: an injected failure mid-stream on a downstream
// hop must surface as the stream error, stop the upstream feeder early,
// charge no bytes for the failed chunk, and leave nothing in flight.
func TestPipelinedFaultAborts(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		const size, chunk = 1 * GB, GB / 8 // 8 chunks
		up := NewLink(clk, "up", 1*GB, 0)
		down := NewLink(clk, "down", 1*GB, 0)
		boom := errors.New("boom")
		calls := 0
		down.SetInterceptor(func(link string, sz int64) FaultDecision {
			calls++
			if calls == 3 {
				return FaultDecision{Err: boom}
			}
			return FaultDecision{}
		})
		st, err := Path{up, down}.TryPipelined(size, chunk)
		if !errors.Is(err, boom) {
			t.Fatalf("stream error = %v, want %v", err, boom)
		}
		if upB, _, _ := up.Stats(); upB >= size {
			t.Errorf("upstream carried the full %d bytes despite the abort", upB)
		}
		if downB, _, _ := down.Stats(); downB != 2*chunk {
			t.Errorf("downstream carried %d bytes, want %d (2 chunks before the fault)", downB, 2*chunk)
		}
		if up.InFlight() != 0 || down.InFlight() != 0 {
			t.Errorf("in-flight after abort: up=%d down=%d, want 0", up.InFlight(), down.InFlight())
		}
		if st.Duration <= 0 {
			t.Errorf("aborted stream reported non-positive duration %v", st.Duration)
		}
	})
}
