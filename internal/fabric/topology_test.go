package fabric

import (
	"testing"
	"time"

	"score/internal/simclock"
)

func TestDGXA100Defaults(t *testing.T) {
	cfg := DGXA100()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.GPUs != 8 {
		t.Errorf("GPUs = %d, want 8", cfg.GPUs)
	}
	if cfg.GPUsPerPCIe != 2 {
		t.Errorf("GPUsPerPCIe = %d, want 2", cfg.GPUsPerPCIe)
	}
}

func TestNewClusterTopologyShape(t *testing.T) {
	clk := simclock.NewVirtual()
	c, err := NewCluster(clk, 4, DGXA100())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(c.Nodes))
	}
	n := c.Nodes[0]
	if len(n.D2D) != 8 {
		t.Errorf("D2D links = %d, want 8", len(n.D2D))
	}
	if len(n.PCIe) != 4 {
		t.Errorf("PCIe links = %d, want 4 (pairs of GPUs)", len(n.PCIe))
	}
	// All nodes share one PFS link.
	for i, node := range c.Nodes {
		if node.PFS != c.PFS {
			t.Errorf("node %d has a different PFS link", i)
		}
	}
	// GPUs 0 and 1 share a PCIe link; 0 and 2 do not.
	_, p0 := n.GPULinks(0)
	_, p1 := n.GPULinks(1)
	_, p2 := n.GPULinks(2)
	if p0 != p1 {
		t.Error("GPUs 0 and 1 should share a PCIe link")
	}
	if p0 == p2 {
		t.Error("GPUs 0 and 2 should not share a PCIe link")
	}
	// D2D links are private.
	d0, _ := n.GPULinks(0)
	d1, _ := n.GPULinks(1)
	if d0 == d1 {
		t.Error("GPUs 0 and 1 should have private D2D links")
	}
}

func TestPCIeContentionBetweenPairedGPUs(t *testing.T) {
	// Two GPUs flushing simultaneously over a shared PCIe link get half
	// the bandwidth each; the paper calls this out for DGX-A100 (§5.1).
	clk := simclock.NewVirtual()
	cfg := DGXA100()
	cfg.LinkLatency = 0
	c, err := NewCluster(clk, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clk.Run(func() {
		n := c.Nodes[0]
		_, p0 := n.GPULinks(0)
		_, p1 := n.GPULinks(1)
		wg := simclock.NewWaitGroup(clk)
		durs := make([]time.Duration, 2)
		links := []*Link{p0, p1}
		for i := 0; i < 2; i++ {
			i := i
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				durs[i] = links[i].Transfer(25 * GB)
			})
		}
		wg.Wait()
		// 25GB at 25GB/s alone = 1s; shared = 2s.
		for i, d := range durs {
			if want := 2 * time.Second; absDur(d-want) > 20*time.Millisecond {
				t.Errorf("GPU %d flush took %v, want ~%v", i, d, want)
			}
		}
	})
}

func TestClusterValidation(t *testing.T) {
	clk := simclock.NewVirtual()
	if _, err := NewCluster(clk, 0, DGXA100()); err == nil {
		t.Error("NewCluster(0 nodes) should fail")
	}
	bad := DGXA100()
	bad.GPUs = 0
	if _, err := NewCluster(clk, 1, bad); err == nil {
		t.Error("NewCluster with 0 GPUs should fail")
	}
	bad = DGXA100()
	bad.PCIeBandwidth = -1
	if _, err := NewCluster(clk, 1, bad); err == nil {
		t.Error("NewCluster with negative bandwidth should fail")
	}
	bad = DGXA100()
	bad.GPUsPerPCIe = 0
	if _, err := NewCluster(clk, 1, bad); err == nil {
		t.Error("NewCluster with GPUsPerPCIe=0 should fail")
	}
	bad = DGXA100()
	bad.NVMeDrives = 0
	if _, err := NewCluster(clk, 1, bad); err == nil {
		t.Error("NewCluster with 0 NVMe drives should fail")
	}
}

func TestGPULinksOutOfRangePanics(t *testing.T) {
	clk := simclock.NewVirtual()
	c, err := NewCluster(clk, 1, DGXA100())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("GPULinks(99) did not panic")
		}
	}()
	c.Nodes[0].GPULinks(99)
}
