// Package fabric simulates the interconnects of a GPU compute node: the
// per-GPU device-to-device paths (HBM/NVSwitch), the PCIe links to host
// memory (shared by pairs of GPUs on a DGX-A100), the node-local NVMe
// drives, and the globally shared parallel file system.
//
// Each Link divides its bandwidth among all in-flight transfers using
// max-min fair sharing, re-evaluated whenever a transfer starts or
// finishes. This is the property that makes the paper's evaluation
// meaningful in simulation: asynchronous flushes and prefetches that
// overlap on a shared link slow each other down exactly as they would on
// real hardware.
//
// All timing flows through a simclock.Clock, so the same fabric runs
// deterministically under a virtual clock or proportionally under a scaled
// real clock.
package fabric

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"score/internal/simclock"
)

// GB is one gigabyte in bytes, the natural unit for link bandwidths.
const GB = 1 << 30

// FaultDecision is an interceptor's verdict for one transfer. The zero
// value lets the transfer proceed untouched.
type FaultDecision struct {
	// Err fails the transfer after latency and Delay are charged; no
	// bytes move.
	Err error
	// Delay is extra latency charged before the transfer (or failure).
	Delay time.Duration
	// BandwidthScale, when in (0,1), degrades this transfer's effective
	// bandwidth — the link behaves as if the payload were 1/scale times
	// larger, which also loads concurrent transfers realistically.
	BandwidthScale float64
}

// A TransferInterceptor is consulted once per transfer with the link name
// and payload size. It exists for fault injection; production paths leave
// it nil and pay no cost beyond a nil check.
type TransferInterceptor func(link string, size int64) FaultDecision

// A Link is a shared communication resource with a fixed total bandwidth
// (bytes per simulated second) and a fixed per-transfer latency. Bandwidth
// is divided evenly among concurrent transfers (max-min fair share).
//
// Progress accounting is incremental: shares change only when membership
// changes, so the link settles (credits elapsed time to every active
// transfer) exactly at joins, completions, and pacer timer fires — the
// same instants the original rescan-on-every-wake implementation
// effectively settled at, which keeps simulated timings bit-identical —
// but wakes only the single transfer whose completion is next (the
// "pacer") instead of broadcasting to every waiter on every change.
type Link struct {
	clk     simclock.Clock
	name    string
	bw      float64 // bytes per simulated second
	latency time.Duration

	mu sync.Mutex
	// active is a binary min-heap on (remaining, seq): the top is the next
	// completion. Settles subtract the same credit from every member, which
	// preserves pairwise order — except among transfers clamped to zero,
	// which are all due and reaped together, so their ties never matter.
	active     []*transfer
	pacer      *transfer // heap top at last election: holds the only timer
	lastSettle time.Duration
	seq        uint64    // join tie-break for pacer election
	free       *transfer // pooled transfer records with their conds

	interceptor atomic.Pointer[TransferInterceptor]

	// Statistics. Written under mu, read lock-free (StatsSnapshot): the
	// busy/lastSettle pair is torn-read-proof behind statsSeq (a seqlock),
	// the independent counters are plain atomics.
	statsSeq       atomic.Uint64
	totalBytes     atomic.Int64
	totalTransfers atomic.Int64
	peakConcurrent atomic.Int64
	inFlight       atomic.Int64
	busyNS         atomic.Int64 // simulated ns with >=1 active transfer
	lastSettleNS   atomic.Int64
}

// transfer is one in-flight payload. Records are pooled per link; cond is
// the transfer's private wakeup so membership changes signal exactly the
// transfers that must react (the pacer, the completed) instead of all.
type transfer struct {
	remaining float64 // bytes left to move
	seq       uint64
	cond      simclock.Cond
	done      bool
	next      *transfer // freelist
}

// NewLink creates a link named name with the given bandwidth in bytes per
// simulated second and fixed per-transfer latency.
func NewLink(clk simclock.Clock, name string, bandwidth float64, latency time.Duration) *Link {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("fabric: link %q: bandwidth must be positive, got %v", name, bandwidth))
	}
	return &Link{
		clk:     clk,
		name:    name,
		bw:      bandwidth,
		latency: latency,
	}
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Bandwidth returns the link's total bandwidth in bytes per simulated
// second.
func (l *Link) Bandwidth() float64 { return l.bw }

// SetInterceptor installs (or, with nil, removes) the fault-injection
// interceptor consulted by every subsequent transfer.
func (l *Link) SetInterceptor(f TransferInterceptor) {
	l.interceptor.Store(&f)
}

// Transfer moves size bytes across the link, blocking the calling task for
// the simulated duration, which depends on concurrent load. It returns the
// simulated time the transfer took (including latency). Transfers of
// non-positive size complete immediately.
//
// An installed interceptor can fail the transfer; Transfer discards that
// error for callers predating fault injection — fault-aware paths use
// TryTransfer.
//
// Deprecated: use TryTransfer so injected faults surface. Transfer is
// retained only for tests documenting the legacy behavior.
func (l *Link) Transfer(size int64) time.Duration {
	d, _ := l.TryTransfer(size)
	return d
}

// TryTransfer is Transfer with the interceptor's verdict surfaced: on an
// injected failure it returns the simulated time consumed (latency plus
// any injected delay) and a non-nil error, and no bytes move.
func (l *Link) TryTransfer(size int64) (time.Duration, error) {
	if size <= 0 {
		return 0, nil
	}
	start := l.clk.Now()

	var fd FaultDecision
	if p := l.interceptor.Load(); p != nil && *p != nil {
		fd = (*p)(l.name, size)
	}

	if l.latency > 0 {
		l.clk.Sleep(l.latency)
	}
	if fd.Delay > 0 {
		l.clk.Sleep(fd.Delay)
	}
	if fd.Err != nil {
		return l.clk.Now() - start, fmt.Errorf("fabric: link %q: %w", l.name, fd.Err)
	}
	effective := float64(size)
	if fd.BandwidthScale > 0 && fd.BandwidthScale < 1 {
		// Degraded bandwidth: moving the bytes takes 1/scale as long, and
		// the extra occupancy slows sharers exactly as real contention
		// would.
		effective /= fd.BandwidthScale
	}

	l.mu.Lock()
	l.settleLocked()
	t := l.getTransferLocked(effective)
	l.heapPush(t)
	l.inFlight.Store(int64(len(l.active)))
	if n := int64(len(l.active)); n > l.peakConcurrent.Load() {
		l.peakConcurrent.Store(n)
	}
	l.totalBytes.Add(size)
	l.totalTransfers.Add(1)
	// The settle above may have finished transfers due exactly now; they
	// leave (and the share they stop consuming is released) before the
	// new fair share is computed, as the broadcast chain used to arrange.
	l.reapLocked(t)
	l.electLocked(t)

	for !t.done {
		if l.pacer == t {
			// We complete next: hold the link's only timer. Anyone who
			// changes membership settles and re-elects, signalling us to
			// recompute; if the timer fires, our completion is the event.
			share := l.bw / float64(len(l.active))
			if t.cond.WaitTimeout(durationFor(t.remaining, share)) {
				l.settleLocked()
				l.reapLocked(t)
				l.electLocked(t)
			}
		} else {
			t.cond.Wait()
		}
	}
	l.putTransferLocked(t)
	l.mu.Unlock()

	return l.clk.Now() - start, nil
}

func (l *Link) getTransferLocked(effective float64) *transfer {
	t := l.free
	if t != nil {
		l.free = t.next
		t.next = nil
	} else {
		t = &transfer{cond: l.clk.NewCond(&l.mu)}
	}
	t.remaining = effective
	t.seq = l.seq
	l.seq++
	t.done = false
	return t
}

func (l *Link) putTransferLocked(t *transfer) {
	t.next = l.free
	l.free = t
}

// transferLess orders the completion heap: least remaining first, ties to
// the earliest joiner.
func transferLess(a, b *transfer) bool {
	return a.remaining < b.remaining || (a.remaining == b.remaining && a.seq < b.seq)
}

func (l *Link) heapPush(t *transfer) {
	l.active = append(l.active, t)
	i := len(l.active) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !transferLess(l.active[i], l.active[p]) {
			break
		}
		l.active[i], l.active[p] = l.active[p], l.active[i]
		i = p
	}
}

// heapPopTop removes the minimum element.
func (l *Link) heapPopTop() {
	n := len(l.active) - 1
	l.active[0] = l.active[n]
	l.active[n] = nil
	l.active = l.active[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && transferLess(l.active[c+1], l.active[c]) {
			c++
		}
		if !transferLess(l.active[c], l.active[i]) {
			break
		}
		l.active[i], l.active[c] = l.active[c], l.active[i]
		i = c
	}
}

// reapLocked removes every transfer whose payload is spent — necessarily a
// prefix of the completion heap — and signals each goroutine to return.
// self (the caller, if it is a member) needs no signal: it is already
// running and rechecks done on its next loop.
func (l *Link) reapLocked(self *transfer) {
	reaped := false
	for len(l.active) > 0 && l.active[0].remaining <= 0.5 { // sub-byte residue counts as done
		t := l.active[0]
		l.heapPopTop()
		t.done = true
		if t != self {
			t.cond.Signal()
		}
		reaped = true
	}
	if reaped {
		l.inFlight.Store(int64(len(l.active)))
	}
}

// electLocked re-reads the pacer — the completion-heap top — after a
// membership change. A demoted pacer must be signalled so its stale timer
// never fires a settle at a wrong instant; the elected pacer must be
// signalled so it re-arms at the new share. The caller itself
// re-evaluates on its own loop and is never signalled.
func (l *Link) electLocked(self *transfer) {
	var best *transfer
	if len(l.active) > 0 {
		best = l.active[0]
	}
	old := l.pacer
	l.pacer = best
	if old != nil && old != best && old != self && !old.done {
		old.cond.Signal()
	}
	if best != nil && best != self {
		best.cond.Signal()
	}
}

// Estimate predicts how long transferring size bytes would take if it
// started now, given the current load (assuming load stays constant). It
// is used by the eviction policy's predict_evictable estimator and never
// blocks or contends with in-flight settles.
func (l *Link) Estimate(size int64) time.Duration {
	if size <= 0 {
		return 0
	}
	n := l.inFlight.Load() + 1
	return l.latency + durationFor(float64(size), l.bw/float64(n))
}

// InFlight returns the number of transfers currently using the link.
func (l *Link) InFlight() int {
	return int(l.inFlight.Load())
}

// Stats reports cumulative transfer statistics.
func (l *Link) Stats() (bytes, transfers int64, peakConcurrent int) {
	s := l.StatsSnapshot()
	return s.Bytes, s.Transfers, s.PeakConcurrent
}

// BusyTime returns the cumulative simulated time during which the link had
// at least one transfer in flight. The observability sampler differences
// successive readings to compute per-interval utilization.
func (l *Link) BusyTime() time.Duration {
	return l.StatsSnapshot().Busy
}

// LinkStats is a coherent, lock-free view of a link's counters.
type LinkStats struct {
	Bytes          int64
	Transfers      int64
	PeakConcurrent int
	InFlight       int
	Busy           time.Duration // includes the in-progress busy interval
}

// StatsSnapshot reads the link's statistics without taking the transfer
// mutex, so probes (the metrics gauge sampler, utilization reports) never
// contend with in-flight settles. The busy figure extends through now when
// the link is active, exactly what the settle-on-read path used to return.
func (l *Link) StatsSnapshot() LinkStats {
	var busy, last, act int64
	for {
		s1 := l.statsSeq.Load()
		if s1&1 == 0 {
			busy = l.busyNS.Load()
			last = l.lastSettleNS.Load()
			act = l.inFlight.Load()
			if l.statsSeq.Load() == s1 {
				break
			}
		}
	}
	if act > 0 {
		if partial := int64(l.clk.Now()) - last; partial > 0 {
			busy += partial
		}
	}
	return LinkStats{
		Bytes:          l.totalBytes.Load(),
		Transfers:      l.totalTransfers.Load(),
		PeakConcurrent: int(l.peakConcurrent.Load()),
		InFlight:       int(act),
		Busy:           time.Duration(busy),
	}
}

// settleLocked credits progress to every active transfer for the simulated
// time elapsed since the last settlement, at the fair share that was in
// effect over that interval. Must be called with l.mu held, and before
// every membership change.
func (l *Link) settleLocked() {
	now := l.clk.Now()
	elapsed := now - l.lastSettle
	if elapsed <= 0 {
		// Same-instant settle: nothing moved and no snapshot field changes,
		// so skip the seqlock write entirely. Frequent — every membership
		// change after the first at a given instant lands here.
		return
	}
	l.lastSettle = now
	l.statsSeq.Add(1)
	l.lastSettleNS.Store(int64(now))
	if len(l.active) > 0 {
		l.busyNS.Add(int64(elapsed))
	}
	l.statsSeq.Add(1)
	if len(l.active) == 0 {
		return
	}
	share := l.bw / float64(len(l.active))
	credit := share * elapsed.Seconds()
	for _, t := range l.active {
		t.remaining -= credit
		if t.remaining < 0 {
			t.remaining = 0
		}
	}
}

// durationFor returns the simulated time to move bytes at rate bytes/sec,
// rounded up to the next nanosecond so that a full wait always completes
// the transfer.
func durationFor(bytes, rate float64) time.Duration {
	if rate <= 0 {
		panic("fabric: non-positive rate")
	}
	ns := math.Ceil(bytes / rate * 1e9)
	if ns < 1 {
		ns = 1
	}
	if ns > math.MaxInt64 {
		panic(fmt.Sprintf("fabric: transfer duration overflow (%v bytes at %v B/s)", bytes, rate))
	}
	return time.Duration(ns)
}

// A Path is a sequence of links crossed store-and-forward. Most routes in
// the DGX topology are single-link; multi-hop paths (e.g. host→SSD→PFS)
// are modeled conservatively as sequential hops.
type Path []*Link

// Transfer moves size bytes across every hop in order and returns the
// total simulated duration.
//
// Deprecated: use TryTransfer so injected faults surface.
func (p Path) Transfer(size int64) time.Duration {
	d, _ := p.TryTransfer(size)
	return d
}

// TryTransfer moves size bytes hop by hop, stopping at the first hop that
// fails. It returns the simulated time consumed either way.
func (p Path) TryTransfer(size int64) (time.Duration, error) {
	var total time.Duration
	for _, l := range p {
		d, err := l.TryTransfer(size)
		total += d
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Estimate sums the per-hop estimates for size bytes.
func (p Path) Estimate(size int64) time.Duration {
	var total time.Duration
	for _, l := range p {
		total += l.Estimate(size)
	}
	return total
}
