// Package fabric simulates the interconnects of a GPU compute node: the
// per-GPU device-to-device paths (HBM/NVSwitch), the PCIe links to host
// memory (shared by pairs of GPUs on a DGX-A100), the node-local NVMe
// drives, and the globally shared parallel file system.
//
// Each Link divides its bandwidth among all in-flight transfers using
// max-min fair sharing, re-evaluated whenever a transfer starts or
// finishes. This is the property that makes the paper's evaluation
// meaningful in simulation: asynchronous flushes and prefetches that
// overlap on a shared link slow each other down exactly as they would on
// real hardware.
//
// All timing flows through a simclock.Clock, so the same fabric runs
// deterministically under a virtual clock or proportionally under a scaled
// real clock.
package fabric

import (
	"fmt"
	"math"
	"sync"
	"time"

	"score/internal/simclock"
)

// GB is one gigabyte in bytes, the natural unit for link bandwidths.
const GB = 1 << 30

// FaultDecision is an interceptor's verdict for one transfer. The zero
// value lets the transfer proceed untouched.
type FaultDecision struct {
	// Err fails the transfer after latency and Delay are charged; no
	// bytes move.
	Err error
	// Delay is extra latency charged before the transfer (or failure).
	Delay time.Duration
	// BandwidthScale, when in (0,1), degrades this transfer's effective
	// bandwidth — the link behaves as if the payload were 1/scale times
	// larger, which also loads concurrent transfers realistically.
	BandwidthScale float64
}

// A TransferInterceptor is consulted once per transfer with the link name
// and payload size. It exists for fault injection; production paths leave
// it nil and pay no cost beyond a nil check.
type TransferInterceptor func(link string, size int64) FaultDecision

// A Link is a shared communication resource with a fixed total bandwidth
// (bytes per simulated second) and a fixed per-transfer latency. Bandwidth
// is divided evenly among concurrent transfers (max-min fair share).
type Link struct {
	clk     simclock.Clock
	name    string
	bw      float64 // bytes per simulated second
	latency time.Duration

	mu          sync.Mutex
	cond        simclock.Cond
	active      map[*transfer]struct{}
	lastSettle  time.Duration
	interceptor TransferInterceptor

	// Statistics, guarded by mu.
	totalBytes     int64
	totalTransfers int64
	peakConcurrent int
	busy           time.Duration // simulated time with >=1 active transfer
}

type transfer struct {
	remaining float64 // bytes left to move
}

// NewLink creates a link named name with the given bandwidth in bytes per
// simulated second and fixed per-transfer latency.
func NewLink(clk simclock.Clock, name string, bandwidth float64, latency time.Duration) *Link {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("fabric: link %q: bandwidth must be positive, got %v", name, bandwidth))
	}
	l := &Link{
		clk:     clk,
		name:    name,
		bw:      bandwidth,
		latency: latency,
		active:  make(map[*transfer]struct{}),
	}
	l.cond = clk.NewCond(&l.mu)
	return l
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Bandwidth returns the link's total bandwidth in bytes per simulated
// second.
func (l *Link) Bandwidth() float64 { return l.bw }

// SetInterceptor installs (or, with nil, removes) the fault-injection
// interceptor consulted by every subsequent transfer.
func (l *Link) SetInterceptor(f TransferInterceptor) {
	l.mu.Lock()
	l.interceptor = f
	l.mu.Unlock()
}

// Transfer moves size bytes across the link, blocking the calling task for
// the simulated duration, which depends on concurrent load. It returns the
// simulated time the transfer took (including latency). Transfers of
// non-positive size complete immediately.
//
// An installed interceptor can fail the transfer; Transfer discards that
// error for callers predating fault injection — fault-aware paths use
// TryTransfer.
//
// Deprecated: use TryTransfer so injected faults surface. Transfer is
// retained only for tests documenting the legacy behavior.
func (l *Link) Transfer(size int64) time.Duration {
	d, _ := l.TryTransfer(size)
	return d
}

// TryTransfer is Transfer with the interceptor's verdict surfaced: on an
// injected failure it returns the simulated time consumed (latency plus
// any injected delay) and a non-nil error, and no bytes move.
func (l *Link) TryTransfer(size int64) (time.Duration, error) {
	if size <= 0 {
		return 0, nil
	}
	start := l.clk.Now()

	l.mu.Lock()
	icpt := l.interceptor
	l.mu.Unlock()
	var fd FaultDecision
	if icpt != nil {
		fd = icpt(l.name, size)
	}

	if l.latency > 0 {
		l.clk.Sleep(l.latency)
	}
	if fd.Delay > 0 {
		l.clk.Sleep(fd.Delay)
	}
	if fd.Err != nil {
		return l.clk.Now() - start, fmt.Errorf("fabric: link %q: %w", l.name, fd.Err)
	}
	effective := float64(size)
	if fd.BandwidthScale > 0 && fd.BandwidthScale < 1 {
		// Degraded bandwidth: moving the bytes takes 1/scale as long, and
		// the extra occupancy slows sharers exactly as real contention
		// would.
		effective /= fd.BandwidthScale
	}
	t := &transfer{remaining: effective}

	l.mu.Lock()
	l.settleLocked()
	l.active[t] = struct{}{}
	if n := len(l.active); n > l.peakConcurrent {
		l.peakConcurrent = n
	}
	l.totalBytes += size
	l.totalTransfers++
	// Membership changed: everyone's share changed.
	l.cond.Broadcast()

	for t.remaining > 0.5 { // sub-byte residue counts as done
		share := l.bw / float64(len(l.active))
		dur := durationFor(t.remaining, share)
		// Either our own completion timer fires, or membership
		// changes and we re-evaluate with the new share.
		l.cond.WaitTimeout(dur)
		l.settleLocked()
	}
	delete(l.active, t)
	l.cond.Broadcast()
	l.mu.Unlock()

	return l.clk.Now() - start, nil
}

// Estimate predicts how long transferring size bytes would take if it
// started now, given the current load (assuming load stays constant). It
// is used by the eviction policy's predict_evictable estimator and never
// blocks.
func (l *Link) Estimate(size int64) time.Duration {
	if size <= 0 {
		return 0
	}
	l.mu.Lock()
	n := len(l.active) + 1
	l.mu.Unlock()
	return l.latency + durationFor(float64(size), l.bw/float64(n))
}

// InFlight returns the number of transfers currently using the link.
func (l *Link) InFlight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.active)
}

// Stats reports cumulative transfer statistics.
func (l *Link) Stats() (bytes, transfers int64, peakConcurrent int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalBytes, l.totalTransfers, l.peakConcurrent
}

// BusyTime returns the cumulative simulated time during which the link had
// at least one transfer in flight. The observability sampler differences
// successive readings to compute per-interval utilization.
func (l *Link) BusyTime() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.settleLocked()
	return l.busy
}

// settleLocked credits progress to every active transfer for the simulated
// time elapsed since the last settlement, at the fair share that was in
// effect over that interval. Must be called with l.mu held, and after
// every event that could change shares.
func (l *Link) settleLocked() {
	now := l.clk.Now()
	elapsed := now - l.lastSettle
	l.lastSettle = now
	if elapsed <= 0 || len(l.active) == 0 {
		return
	}
	l.busy += elapsed
	share := l.bw / float64(len(l.active))
	credit := share * elapsed.Seconds()
	for t := range l.active {
		t.remaining -= credit
		if t.remaining < 0 {
			t.remaining = 0
		}
	}
}

// durationFor returns the simulated time to move bytes at rate bytes/sec,
// rounded up to the next nanosecond so that a full wait always completes
// the transfer.
func durationFor(bytes, rate float64) time.Duration {
	if rate <= 0 {
		panic("fabric: non-positive rate")
	}
	ns := math.Ceil(bytes / rate * 1e9)
	if ns < 1 {
		ns = 1
	}
	if ns > math.MaxInt64 {
		panic(fmt.Sprintf("fabric: transfer duration overflow (%v bytes at %v B/s)", bytes, rate))
	}
	return time.Duration(ns)
}

// A Path is a sequence of links crossed store-and-forward. Most routes in
// the DGX topology are single-link; multi-hop paths (e.g. host→SSD→PFS)
// are modeled conservatively as sequential hops.
type Path []*Link

// Transfer moves size bytes across every hop in order and returns the
// total simulated duration.
//
// Deprecated: use TryTransfer so injected faults surface.
func (p Path) Transfer(size int64) time.Duration {
	d, _ := p.TryTransfer(size)
	return d
}

// TryTransfer moves size bytes hop by hop, stopping at the first hop that
// fails. It returns the simulated time consumed either way.
func (p Path) TryTransfer(size int64) (time.Duration, error) {
	var total time.Duration
	for _, l := range p {
		d, err := l.TryTransfer(size)
		total += d
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Estimate sums the per-hop estimates for size bytes.
func (p Path) Estimate(size int64) time.Duration {
	var total time.Duration
	for _, l := range p {
		total += l.Estimate(size)
	}
	return total
}
