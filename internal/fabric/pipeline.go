package fabric

import (
	"sync"
	"time"

	"score/internal/simclock"
)

// PipelineStats describes one (possibly pipelined) multi-hop transfer.
type PipelineStats struct {
	// Bytes is the payload size requested.
	Bytes int64
	// Chunks is the number of pieces the payload was split into (1 when
	// the transfer degenerated to a monolithic store-and-forward).
	Chunks int
	// Duration is the end-to-end simulated time from the first chunk
	// entering the first hop to the last chunk leaving the last hop.
	Duration time.Duration
	// HopBusy is the summed transfer time charged on each hop, indexed
	// like the Path. With no pipelining their sum equals Duration; with
	// overlap the sum exceeds it.
	HopBusy []time.Duration
	// HopBytes is the payload successfully carried by each hop, indexed
	// like the Path. On an error-free stream every entry equals Bytes —
	// the conservation invariant metrics.CheckInvariants enforces.
	HopBytes []int64
}

// HopBusySum returns the total per-hop occupancy across all hops.
func (s PipelineStats) HopBusySum() time.Duration {
	var sum time.Duration
	for _, d := range s.HopBusy {
		sum += d
	}
	return sum
}

// Overlap returns the simulated transfer time hidden by pipelining: the
// summed per-hop busy time minus the end-to-end duration, clamped at
// zero. A monolithic store-and-forward transfer has zero overlap.
func (s PipelineStats) Overlap() time.Duration {
	if sum := s.HopBusySum(); sum > s.Duration {
		return sum - s.Duration
	}
	return 0
}

// pipeline is the shared state of one chunked multi-hop transfer. One
// clock task per downstream hop drains its queue; the caller's task
// feeds hop 0. All handoff between hops goes through the cond-guarded
// queues — native channels would hide the blocking from the virtual
// clock and deadlock the simulation.
type pipeline struct {
	path Path

	mu   sync.Mutex
	cond simclock.Cond

	// queues[h] holds the chunk sizes forwarded to hop h but not yet
	// transferred; heads[h] is the consumption cursor (the backing
	// arrays are bounded by the chunk count and die with the pipeline,
	// so no compaction is needed).
	queues [][]int64
	heads  []int
	// closed[h] means no more chunks will ever be appended to
	// queues[h]: the upstream stage has finished or aborted.
	closed []bool
	// busy and bytes accumulate per-hop transfer time and payload
	// (aliasing the caller's PipelineStats.HopBusy / HopBytes).
	busy  []time.Duration
	bytes []int64
	// err is the first hop failure; once set, every stage aborts
	// without charging further transfers.
	err error
	// running counts live downstream hop tasks.
	running int

	// condClk remembers which clock cond was built for, so a pooled
	// pipeline reused under the same clock keeps its cond (the mutex it
	// wraps lives in this struct and is stable across reuses).
	condClk simclock.Clock
}

// pipelinePool recycles pipeline records between streams. A chunked
// multi-rank run creates one pipeline per flush/stage/restore stream;
// reuse keeps the queue backing arrays and the cond allocation out of
// the per-stream bill.
var pipelinePool = sync.Pool{New: func() any { return new(pipeline) }}

// getPipeline returns a reset pipeline for path whose busy/bytes
// accumulators alias the caller's stats arrays.
func getPipeline(clk simclock.Clock, path Path, busy []time.Duration, bytes []int64) *pipeline {
	ps := pipelinePool.Get().(*pipeline)
	nHops := len(path)
	ps.path = path
	if cap(ps.queues) < nHops {
		ps.queues = make([][]int64, nHops)
		ps.heads = make([]int, nHops)
		ps.closed = make([]bool, nHops)
	} else {
		ps.queues = ps.queues[:nHops]
		ps.heads = ps.heads[:nHops]
		ps.closed = ps.closed[:nHops]
		for h := 0; h < nHops; h++ {
			ps.queues[h] = ps.queues[h][:0]
			ps.heads[h] = 0
			ps.closed[h] = false
		}
	}
	ps.busy, ps.bytes = busy, bytes
	ps.err = nil
	ps.running = 0
	if ps.condClk != clk {
		ps.cond = clk.NewCond(&ps.mu)
		ps.condClk = clk
	}
	return ps
}

// putPipeline returns ps to the pool. Callers must only do this after
// every hop task has exited (running == 0): the hop tasks hold the only
// other references. The caller-owned stats arrays are dropped so the
// pool never retains them.
func putPipeline(ps *pipeline) {
	ps.path = nil
	ps.busy, ps.bytes = nil, nil
	ps.err = nil
	pipelinePool.Put(ps)
}

// PipelinedTransfer is TryPipelinedTransfer with the error discarded,
// mirroring Path.Transfer for callers that predate fault injection.
//
// Deprecated: use TryPipelinedTransfer so injected faults surface.
func (p Path) PipelinedTransfer(size, chunkSize int64) time.Duration {
	d, _ := p.TryPipelinedTransfer(size, chunkSize)
	return d
}

// TryPipelinedTransfer moves size bytes across the path in chunkSize
// pieces with consecutive hops overlapped, returning the end-to-end
// simulated duration and the first hop error, if any.
func (p Path) TryPipelinedTransfer(size, chunkSize int64) (time.Duration, error) {
	st, err := p.TryPipelined(size, chunkSize)
	return st.Duration, err
}

// TryPipelined streams size bytes through the path's hops as a pipeline
// of chunkSize pieces: chunk i moves on hop h+1 while chunk i+1 moves on
// hop h. Within the stream each hop carries at most one chunk at a time,
// so the stream occupies a single fair-share slot on every link — two
// concurrent streams crossing a shared link split its bandwidth exactly
// as two monolithic transfers would. Fault interceptors are consulted
// per chunk per hop; the first failure aborts the whole stream (no
// further chunks are charged anywhere) and is returned.
//
// A chunkSize <= 0, a chunkSize >= size, or a single-hop path
// degenerates to the monolithic store-and-forward TryTransfer, with
// identical timing.
//
// Staging between hops is unbounded: a fast first hop may run arbitrarily
// far ahead of a slow second hop within one stream. This models a
// transfer whose intermediate tier has room for the full payload, which
// is how every caller in this runtime uses it (the destination
// reservation is made before the stream starts).
func (p Path) TryPipelined(size, chunkSize int64) (PipelineStats, error) {
	st := PipelineStats{
		Bytes:    size,
		HopBusy:  make([]time.Duration, len(p)),
		HopBytes: make([]int64, len(p)),
	}
	if size <= 0 || len(p) == 0 {
		return st, nil
	}
	clk := p[0].clk
	start := clk.Now()
	if chunkSize <= 0 || chunkSize >= size || len(p) == 1 {
		st.Chunks = 1
		var err error
		for i, l := range p {
			var d time.Duration
			d, err = l.TryTransfer(size)
			st.HopBusy[i] += d
			if err != nil {
				break
			}
			st.HopBytes[i] += size
		}
		st.Duration = clk.Now() - start
		return st, err
	}

	nHops := len(p)
	ps := getPipeline(clk, p, st.HopBusy, st.HopBytes)

	for h := 1; h < nHops; h++ {
		h := h
		ps.running++
		clk.Go(func() { ps.runHop(h) })
	}

	// Hop 0 runs in the caller's task.
	chunks := 0
	for off := int64(0); off < size; off += chunkSize {
		n := chunkSize
		if size-off < n {
			n = size - off
		}
		ps.mu.Lock()
		aborted := ps.err != nil
		ps.mu.Unlock()
		if aborted {
			break
		}
		d, err := p[0].TryTransfer(n)
		chunks++
		ps.mu.Lock()
		ps.busy[0] += d
		if err != nil {
			if ps.err == nil {
				ps.err = err
			}
			ps.cond.Broadcast()
			ps.mu.Unlock()
			break
		}
		ps.bytes[0] += n
		ps.queues[1] = append(ps.queues[1], n)
		ps.cond.Broadcast()
		ps.mu.Unlock()
	}

	ps.mu.Lock()
	ps.closed[1] = true
	ps.cond.Broadcast()
	for ps.running > 0 {
		ps.cond.Wait()
	}
	err := ps.err
	ps.mu.Unlock()
	putPipeline(ps)

	st.Chunks = chunks
	st.Duration = clk.Now() - start
	return st, err
}

// runHop drains queues[h] until the upstream closes and the queue is
// empty, forwarding each completed chunk downstream. On any pipeline
// error it exits without charging further transfers; its own failure
// becomes the pipeline error. Either way it closes its downstream queue
// so the whole pipeline winds down.
func (ps *pipeline) runHop(h int) {
	defer func() {
		ps.mu.Lock()
		if h+1 < len(ps.path) {
			ps.closed[h+1] = true
		}
		ps.running--
		ps.cond.Broadcast()
		ps.mu.Unlock()
	}()
	for {
		ps.mu.Lock()
		for ps.heads[h] >= len(ps.queues[h]) && !ps.closed[h] && ps.err == nil {
			ps.cond.Wait()
		}
		if ps.err != nil || ps.heads[h] >= len(ps.queues[h]) {
			ps.mu.Unlock()
			return
		}
		n := ps.queues[h][ps.heads[h]]
		ps.heads[h]++
		ps.mu.Unlock()

		d, err := ps.path[h].TryTransfer(n)

		ps.mu.Lock()
		ps.busy[h] += d
		if err != nil {
			if ps.err == nil {
				ps.err = err
			}
			ps.cond.Broadcast()
			ps.mu.Unlock()
			return
		}
		ps.bytes[h] += n
		if h+1 < len(ps.path) {
			ps.queues[h+1] = append(ps.queues[h+1], n)
			ps.cond.Broadcast()
		}
		ps.mu.Unlock()
	}
}
