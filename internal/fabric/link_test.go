package fabric

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"score/internal/simclock"
)

func TestSingleTransferTakesSizeOverBandwidth(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		l := NewLink(clk, "test", 1*GB, 0)
		d := l.Transfer(1 * GB)
		if got, want := d, time.Second; absDur(got-want) > time.Millisecond {
			t.Errorf("1GB over 1GB/s took %v, want ~%v", got, want)
		}
	})
}

func TestTransferLatencyAdds(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		l := NewLink(clk, "lat", 1*GB, 100*time.Millisecond)
		d := l.Transfer(1 * GB)
		want := time.Second + 100*time.Millisecond
		if absDur(d-want) > time.Millisecond {
			t.Errorf("transfer took %v, want ~%v", d, want)
		}
	})
}

func TestZeroSizeTransferIsInstant(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		l := NewLink(clk, "z", 1*GB, time.Hour)
		if d := l.Transfer(0); d != 0 {
			t.Errorf("zero-size transfer took %v, want 0", d)
		}
		if d := l.Transfer(-5); d != 0 {
			t.Errorf("negative-size transfer took %v, want 0", d)
		}
	})
}

func TestTwoConcurrentTransfersShareBandwidth(t *testing.T) {
	// Two equal transfers starting together on a shared link must each
	// take twice as long as alone.
	clk := simclock.NewVirtual()
	clk.Run(func() {
		l := NewLink(clk, "shared", 1*GB, 0)
		wg := simclock.NewWaitGroup(clk)
		durs := make([]time.Duration, 2)
		for i := 0; i < 2; i++ {
			i := i
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				durs[i] = l.Transfer(1 * GB)
			})
		}
		wg.Wait()
		for i, d := range durs {
			if want := 2 * time.Second; absDur(d-want) > 10*time.Millisecond {
				t.Errorf("transfer %d took %v, want ~%v", i, d, want)
			}
		}
	})
}

func TestLateArrivalFairShare(t *testing.T) {
	// A 2GB transfer runs alone for 1s (1GB done), then a 1GB transfer
	// joins. They share: the second GB of A and the 1GB of B take 2s
	// each of wall time... concretely:
	//   t=0..1   : A alone at 1GB/s  -> A has 1GB left
	//   t=1..3   : A and B at 0.5GB/s-> both finish at t=3
	clk := simclock.NewVirtual()
	clk.Run(func() {
		l := NewLink(clk, "late", 1*GB, 0)
		wg := simclock.NewWaitGroup(clk)
		var endA, endB time.Duration
		wg.Add(2)
		clk.Go(func() {
			defer wg.Done()
			l.Transfer(2 * GB)
			endA = clk.Now()
		})
		clk.Go(func() {
			defer wg.Done()
			clk.Sleep(time.Second)
			l.Transfer(1 * GB)
			endB = clk.Now()
		})
		wg.Wait()
		if want := 3 * time.Second; absDur(endA-want) > 10*time.Millisecond {
			t.Errorf("A finished at %v, want ~%v", endA, want)
		}
		if want := 3 * time.Second; absDur(endB-want) > 10*time.Millisecond {
			t.Errorf("B finished at %v, want ~%v", endB, want)
		}
	})
}

func TestShortTransferFinishesFirstAndSpeedsUpLongOne(t *testing.T) {
	//   t=0..1   : 4GB and 1GB share 2GB/s -> each at 1GB/s
	//   t=1      : short one (1GB) completes
	//   t=1..2.5 : long one alone at 2GB/s, 3GB left -> finishes t=2.5
	clk := simclock.NewVirtual()
	clk.Run(func() {
		l := NewLink(clk, "mix", 2*GB, 0)
		wg := simclock.NewWaitGroup(clk)
		var endShort, endLong time.Duration
		wg.Add(2)
		clk.Go(func() {
			defer wg.Done()
			l.Transfer(4 * GB)
			endLong = clk.Now()
		})
		clk.Go(func() {
			defer wg.Done()
			l.Transfer(1 * GB)
			endShort = clk.Now()
		})
		wg.Wait()
		if want := time.Second; absDur(endShort-want) > 10*time.Millisecond {
			t.Errorf("short finished at %v, want ~%v", endShort, want)
		}
		if want := 2500 * time.Millisecond; absDur(endLong-want) > 10*time.Millisecond {
			t.Errorf("long finished at %v, want ~%v", endLong, want)
		}
	})
}

func TestLinkConservesBandwidthProperty(t *testing.T) {
	// Property: for any set of concurrent transfers, total bytes moved
	// divided by the makespan never exceeds the link bandwidth, and the
	// makespan is at least totalBytes/bandwidth.
	f := func(sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 16 {
			sizes = sizes[:16]
		}
		clk := simclock.NewVirtual()
		ok := true
		clk.Run(func() {
			const bw = 1 * GB
			l := NewLink(clk, "prop", bw, 0)
			wg := simclock.NewWaitGroup(clk)
			var total int64
			for _, s := range sizes {
				size := (int64(s) + 1) * (GB / 64)
				total += size
				wg.Add(1)
				clk.Go(func() {
					defer wg.Done()
					l.Transfer(size)
				})
			}
			wg.Wait()
			makespan := clk.Now().Seconds()
			ideal := float64(total) / bw
			// Makespan must be >= ideal (can't beat the link) and,
			// since all transfers start at t=0 and the link is
			// work-conserving, equal to ideal within rounding.
			if makespan < ideal*0.999 || makespan > ideal*1.01+0.001 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEstimateMatchesIdleTransfer(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		l := NewLink(clk, "est", 4*GB, time.Millisecond)
		est := l.Estimate(8 * GB)
		want := 2*time.Second + time.Millisecond
		if absDur(est-want) > time.Millisecond {
			t.Errorf("Estimate = %v, want ~%v", est, want)
		}
		if l.Estimate(0) != 0 {
			t.Error("Estimate(0) != 0")
		}
	})
}

func TestEstimateAccountsForLoad(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		l := NewLink(clk, "estload", 2*GB, 0)
		wg := simclock.NewWaitGroup(clk)
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			l.Transfer(20 * GB)
		})
		clk.Sleep(10 * time.Millisecond) // let it start
		// One transfer active: a new one would get half the bandwidth.
		est := l.Estimate(1 * GB)
		if want := time.Second; absDur(est-want) > 50*time.Millisecond {
			t.Errorf("loaded Estimate = %v, want ~%v", est, want)
		}
		wg.Wait()
	})
}

func TestLinkStats(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		l := NewLink(clk, "stats", 1*GB, 0)
		wg := simclock.NewWaitGroup(clk)
		for i := 0; i < 3; i++ {
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				l.Transfer(GB / 4)
			})
		}
		wg.Wait()
		bytes, n, peak := l.Stats()
		if bytes != 3*GB/4 {
			t.Errorf("bytes = %d, want %d", bytes, 3*GB/4)
		}
		if n != 3 {
			t.Errorf("transfers = %d, want 3", n)
		}
		if peak < 1 || peak > 3 {
			t.Errorf("peak = %d, want in [1,3]", peak)
		}
	})
}

func TestPathSequentialHops(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		a := NewLink(clk, "a", 1*GB, 0)
		b := NewLink(clk, "b", 2*GB, 0)
		p := Path{a, b}
		d := p.Transfer(2 * GB)
		want := 2*time.Second + time.Second
		if absDur(d-want) > 10*time.Millisecond {
			t.Errorf("path transfer took %v, want ~%v", d, want)
		}
		if est := p.Estimate(2 * GB); absDur(est-want) > 10*time.Millisecond {
			t.Errorf("path estimate = %v, want ~%v", est, want)
		}
	})
}

func TestNewLinkRejectsBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLink with zero bandwidth did not panic")
		}
	}()
	NewLink(simclock.NewVirtual(), "bad", 0, 0)
}

func TestDurationForRoundsUp(t *testing.T) {
	if d := durationFor(1, 1e9); d != time.Nanosecond {
		t.Errorf("durationFor(1B, 1GB/s) = %v, want 1ns", d)
	}
	if d := durationFor(1, 1e12); d < time.Nanosecond {
		t.Errorf("sub-ns durations must round up to 1ns, got %v", d)
	}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

var _ = math.MaxInt64 // keep math import when assertions change

func TestInterceptorFailsTransfer(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		l := NewLink(clk, "nvme", 1*GB, 10*time.Millisecond)
		boom := errors.New("link down")
		calls := 0
		l.SetInterceptor(func(link string, size int64) FaultDecision {
			calls++
			if link != "nvme" || size != 1*GB {
				t.Errorf("interceptor saw (%q, %d)", link, size)
			}
			return FaultDecision{Err: boom}
		})
		d, err := l.TryTransfer(1 * GB)
		if !errors.Is(err, boom) {
			t.Fatalf("TryTransfer = %v, want wrapped link-down", err)
		}
		// Latency is charged, bandwidth is not: a failed transfer must not
		// take transfer time or leave residue in the active set.
		if absDur(d-10*time.Millisecond) > time.Millisecond {
			t.Errorf("failed transfer consumed %v, want ~latency", d)
		}
		if l.InFlight() != 0 {
			t.Error("failed transfer left the link busy")
		}
		if calls != 1 {
			t.Errorf("interceptor called %d times", calls)
		}
		// Legacy Transfer swallows the error but still charges only latency.
		if d := l.Transfer(1 * GB); absDur(d-10*time.Millisecond) > time.Millisecond {
			t.Errorf("legacy Transfer under fault took %v", d)
		}
		l.SetInterceptor(nil)
		if _, err := l.TryTransfer(1 * GB); err != nil {
			t.Errorf("after removing interceptor: %v", err)
		}
	})
}

func TestInterceptorScaleSlowsTransfer(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		l := NewLink(clk, "pcie", 1*GB, 0)
		l.SetInterceptor(func(string, int64) FaultDecision {
			return FaultDecision{BandwidthScale: 0.1}
		})
		d, err := l.TryTransfer(1 * GB)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := d, 10*time.Second; absDur(got-want) > 10*time.Millisecond {
			t.Errorf("10%%-scaled 1GB took %v, want ~%v", got, want)
		}
	})
}

func TestInterceptorDelayAdds(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		l := NewLink(clk, "pcie", 1*GB, 0)
		l.SetInterceptor(func(string, int64) FaultDecision {
			return FaultDecision{Delay: 250 * time.Millisecond}
		})
		d, err := l.TryTransfer(1 * GB)
		if err != nil {
			t.Fatal(err)
		}
		want := time.Second + 250*time.Millisecond
		if absDur(d-want) > time.Millisecond {
			t.Errorf("delayed transfer took %v, want ~%v", d, want)
		}
	})
}
