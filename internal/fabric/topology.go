package fabric

import (
	"fmt"
	"time"

	"score/internal/simclock"
)

// NodeConfig describes the interconnect characteristics of one compute
// node. The defaults (DGXA100) follow the paper's ThetaGPU description
// (§5.1): eight A100 GPUs, 1 TB/s device-to-device, 25 GB/s PCIe Gen4
// shared by pairs of GPUs, four NVMe drives at 4 GB/s each, and a Lustre
// parallel file system shared by all nodes.
type NodeConfig struct {
	// GPUs is the number of GPUs (and processes) per node.
	GPUs int
	// D2DBandwidth is the per-GPU device-to-device copy bandwidth in
	// bytes per second (HBM/NVSwitch path).
	D2DBandwidth float64
	// PCIeBandwidth is the bandwidth of one PCIe link in bytes/second.
	PCIeBandwidth float64
	// GPUsPerPCIe is how many GPUs share one PCIe link (2 on DGX-A100).
	GPUsPerPCIe int
	// NVMeDrives and NVMePerDrive describe node-local SSD bandwidth.
	NVMeDrives   int
	NVMePerDrive float64
	// PFSBandwidth is the per-node share of parallel file system
	// bandwidth in bytes/second.
	PFSBandwidth float64
	// NICBandwidth is the per-node inter-node fabric bandwidth in
	// bytes/second (HDR InfiniBand class on the paper's platform), used
	// by partner-copy replication. 0 takes the DGX-A100 default so
	// pre-existing configurations that only set the four local
	// bandwidths keep working.
	NICBandwidth float64
	// LinkLatency is the fixed per-transfer latency applied to host and
	// storage links (device-to-device latency is negligible).
	LinkLatency time.Duration
}

// DGXA100 returns the paper's evaluation platform configuration.
func DGXA100() NodeConfig {
	return NodeConfig{
		GPUs:          8,
		D2DBandwidth:  1000 * GB, // ~1 TB/s HBM2e
		PCIeBandwidth: 25 * GB,   // pinned D2H/H2D, PCIe Gen4
		GPUsPerPCIe:   2,
		NVMeDrives:    4,
		NVMePerDrive:  4 * GB,
		PFSBandwidth:  10 * GB,
		NICBandwidth:  25 * GB, // HDR-class inter-node fabric
		LinkLatency:   10 * time.Microsecond,
	}
}

// Validate reports whether the configuration is usable.
func (c NodeConfig) Validate() error {
	switch {
	case c.GPUs < 1:
		return fmt.Errorf("fabric: node needs at least one GPU, got %d", c.GPUs)
	case c.D2DBandwidth <= 0 || c.PCIeBandwidth <= 0 || c.NVMePerDrive <= 0 || c.PFSBandwidth <= 0:
		return fmt.Errorf("fabric: all bandwidths must be positive")
	case c.NICBandwidth < 0:
		return fmt.Errorf("fabric: NICBandwidth must be >= 0 (0 means default)")
	case c.GPUsPerPCIe < 1:
		return fmt.Errorf("fabric: GPUsPerPCIe must be >= 1, got %d", c.GPUsPerPCIe)
	case c.NVMeDrives < 1:
		return fmt.Errorf("fabric: need at least one NVMe drive, got %d", c.NVMeDrives)
	}
	return nil
}

// Node is the set of links of one compute node. GPU i uses D2D[i] for
// device-local copies and PCIe[i/GPUsPerPCIe] to reach host memory. All
// GPUs on the node share the NVMe link; all nodes share the PFS link.
type Node struct {
	cfg  NodeConfig
	D2D  []*Link
	PCIe []*Link
	NVMe *Link
	NIC  *Link // inter-node fabric endpoint (partner-copy traffic)
	PFS  *Link // shared across nodes; owned by the Cluster
}

// Cluster wires up N identical nodes that share one parallel file system.
type Cluster struct {
	Nodes []*Node
	PFS   *Link
}

// NewCluster builds a cluster of n nodes with the given per-node
// configuration on clk.
func NewCluster(clk simclock.Clock, n int, cfg NodeConfig) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("fabric: cluster needs at least one node, got %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pfs := NewLink(clk, "pfs", cfg.PFSBandwidth*float64(n), cfg.LinkLatency)
	c := &Cluster{PFS: pfs}
	for i := 0; i < n; i++ {
		node := &Node{cfg: cfg, PFS: pfs}
		for g := 0; g < cfg.GPUs; g++ {
			node.D2D = append(node.D2D, NewLink(clk,
				fmt.Sprintf("node%d.gpu%d.d2d", i, g), cfg.D2DBandwidth, 0))
		}
		pcieLinks := (cfg.GPUs + cfg.GPUsPerPCIe - 1) / cfg.GPUsPerPCIe
		for p := 0; p < pcieLinks; p++ {
			node.PCIe = append(node.PCIe, NewLink(clk,
				fmt.Sprintf("node%d.pcie%d", i, p), cfg.PCIeBandwidth, cfg.LinkLatency))
		}
		node.NVMe = NewLink(clk, fmt.Sprintf("node%d.nvme", i),
			float64(cfg.NVMeDrives)*cfg.NVMePerDrive, cfg.LinkLatency)
		nic := cfg.NICBandwidth
		if nic <= 0 {
			nic = DGXA100().NICBandwidth
		}
		node.NIC = NewLink(clk, fmt.Sprintf("node%d.nic", i), nic, cfg.LinkLatency)
		c.Nodes = append(c.Nodes, node)
	}
	return c, nil
}

// Config returns the node's configuration.
func (n *Node) Config() NodeConfig { return n.cfg }

// GPULinks returns the links GPU g of this node uses: its private D2D
// link and its (possibly shared) PCIe link.
func (n *Node) GPULinks(g int) (d2d, pcie *Link) {
	if g < 0 || g >= len(n.D2D) {
		panic(fmt.Sprintf("fabric: GPU index %d out of range [0,%d)", g, len(n.D2D)))
	}
	return n.D2D[g], n.PCIe[g/n.cfg.GPUsPerPCIe]
}
