// Package wavefield implements a small 2-D acoustic wave propagator and a
// lossless snapshot compressor. The paper's benchmarks replace RTM's
// compute with sleeps; the examples in this repository instead run this
// real kernel so the adjoint pattern (forward pass checkpoints the
// wavefield, backward pass restores it in reverse) moves genuine,
// verifiable data with realistic compression-driven size variation.
//
// The propagator solves the constant-density acoustic wave equation
//
//	∂²p/∂t² = v² ∇²p + s(t)δ(x−xs)
//
// with a second-order leapfrog scheme and a Ricker-wavelet source; the
// domain boundary is clamped (free surface on all sides), which is fine
// for an I/O-focused example.
package wavefield

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Grid is the simulation state: two pressure time-levels on an nx×nz grid.
type Grid struct {
	NX, NZ   int
	DX       float64 // grid spacing (m)
	DT       float64 // time step (s)
	Velocity float64 // homogeneous medium velocity (m/s)

	curr, prev []float32
	step       int
}

// Config parameterizes a propagation.
type Config struct {
	NX, NZ   int
	DX       float64
	Velocity float64
	// PeakFrequency of the Ricker source wavelet (Hz).
	PeakFrequency float64
	// SourceX, SourceZ is the injection point (grid indices).
	SourceX, SourceZ int
}

// DefaultConfig returns a stable small model.
func DefaultConfig() Config {
	return Config{
		NX: 128, NZ: 128, DX: 10, Velocity: 1500,
		PeakFrequency: 15, SourceX: 64, SourceZ: 64,
	}
}

// Validate checks CFL stability and geometry.
func (c Config) Validate() error {
	switch {
	case c.NX < 8 || c.NZ < 8:
		return fmt.Errorf("wavefield: grid %dx%d too small", c.NX, c.NZ)
	case c.DX <= 0 || c.Velocity <= 0 || c.PeakFrequency <= 0:
		return fmt.Errorf("wavefield: DX, Velocity, PeakFrequency must be positive")
	case c.SourceX < 0 || c.SourceX >= c.NX || c.SourceZ < 0 || c.SourceZ >= c.NZ:
		return fmt.Errorf("wavefield: source (%d,%d) outside grid", c.SourceX, c.SourceZ)
	}
	return nil
}

// cflDT returns a stable time step for the 2-D 5-point Laplacian.
func (c Config) cflDT() float64 {
	return 0.6 * c.DX / (c.Velocity * math.Sqrt2)
}

// Propagator advances a wavefield and takes snapshots.
type Propagator struct {
	cfg  Config
	grid Grid
}

// NewPropagator builds a propagator or reports a configuration error.
func NewPropagator(cfg Config) (*Propagator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.NX * cfg.NZ
	return &Propagator{
		cfg: cfg,
		grid: Grid{
			NX: cfg.NX, NZ: cfg.NZ, DX: cfg.DX,
			DT: cfg.cflDT(), Velocity: cfg.Velocity,
			curr: make([]float32, n), prev: make([]float32, n),
		},
	}, nil
}

// Step advances the wavefield one time step.
func (p *Propagator) Step() {
	g := &p.grid
	nx, nz := g.NX, g.NZ
	c2 := float32(g.Velocity * g.Velocity * g.DT * g.DT / (g.DX * g.DX))
	next := make([]float32, len(g.curr))
	for z := 1; z < nz-1; z++ {
		base := z * nx
		for x := 1; x < nx-1; x++ {
			i := base + x
			lap := g.curr[i-1] + g.curr[i+1] + g.curr[i-nx] + g.curr[i+nx] - 4*g.curr[i]
			v := 2*g.curr[i] - g.prev[i] + c2*lap
			// Truncate numerically negligible amplitudes (standard
			// practice to avoid denormals): keeps the field sparse
			// ahead of the physical wavefront, which is what makes
			// early-shot snapshots highly compressible.
			if v < 1e-7 && v > -1e-7 {
				v = 0
			}
			next[i] = v
		}
	}
	// Ricker source injection.
	t := float64(g.step) * g.DT
	next[p.cfg.SourceZ*nx+p.cfg.SourceX] += float32(ricker(t, p.cfg.PeakFrequency))
	g.prev, g.curr = g.curr, next
	g.step++
}

// ricker is the Ricker wavelet with peak frequency f, delayed to start
// near zero amplitude.
func ricker(t, f float64) float64 {
	t0 := 1.0 / f
	arg := math.Pi * f * (t - t0)
	a := arg * arg
	return (1 - 2*a) * math.Exp(-a)
}

// StepIndex returns the number of steps taken.
func (p *Propagator) StepIndex() int { return p.grid.step }

// Snapshot serializes the current pressure field (header + float32 LE).
func (p *Propagator) Snapshot() []byte {
	g := &p.grid
	buf := make([]byte, 16+4*len(g.curr))
	binary.LittleEndian.PutUint32(buf[0:], uint32(g.NX))
	binary.LittleEndian.PutUint32(buf[4:], uint32(g.NZ))
	binary.LittleEndian.PutUint64(buf[8:], uint64(g.step))
	for i, v := range g.curr {
		binary.LittleEndian.PutUint32(buf[16+4*i:], math.Float32bits(v))
	}
	return buf
}

// Restore loads a snapshot previously produced by Snapshot, resetting the
// field (prev is zeroed: sufficient for cross-correlation-style backward
// passes that only read the pressure field).
func (p *Propagator) Restore(snap []byte) error {
	if len(snap) < 16 {
		return fmt.Errorf("wavefield: snapshot too short (%d bytes)", len(snap))
	}
	nx := int(binary.LittleEndian.Uint32(snap[0:]))
	nz := int(binary.LittleEndian.Uint32(snap[4:]))
	if nx != p.grid.NX || nz != p.grid.NZ {
		return fmt.Errorf("wavefield: snapshot grid %dx%d does not match %dx%d",
			nx, nz, p.grid.NX, p.grid.NZ)
	}
	want := 16 + 4*nx*nz
	if len(snap) != want {
		return fmt.Errorf("wavefield: snapshot is %d bytes, want %d", len(snap), want)
	}
	p.grid.step = int(binary.LittleEndian.Uint64(snap[8:]))
	for i := range p.grid.curr {
		p.grid.curr[i] = math.Float32frombits(binary.LittleEndian.Uint32(snap[16+4*i:]))
		p.grid.prev[i] = 0
	}
	return nil
}

// Field returns the live pressure field (not a copy); test use only.
func (p *Propagator) Field() []float32 { return p.grid.curr }

// Energy returns the L2 norm of the pressure field — a cheap scalar for
// verifying that restores reproduce the forward state.
func (p *Propagator) Energy() float64 {
	var e float64
	for _, v := range p.grid.curr {
		e += float64(v) * float64(v)
	}
	return math.Sqrt(e)
}
