package wavefield

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestPropagatorProducesEnergy(t *testing.T) {
	p, err := NewPropagator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Energy() != 0 {
		t.Error("fresh field should be silent")
	}
	for i := 0; i < 100; i++ {
		p.Step()
	}
	if p.Energy() == 0 {
		t.Error("source injection produced no energy after 100 steps")
	}
	if p.StepIndex() != 100 {
		t.Errorf("step index = %d, want 100", p.StepIndex())
	}
}

func TestFieldStaysFinite(t *testing.T) {
	// CFL-stable scheme: no NaN/Inf after many steps.
	p, err := NewPropagator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p.Step()
	}
	for i, v := range p.Field() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("non-finite value %v at index %d: unstable scheme", v, i)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p, err := NewPropagator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		p.Step()
	}
	snap := p.Snapshot()
	want := p.Energy()
	wantStep := p.StepIndex()

	for i := 0; i < 50; i++ { // diverge
		p.Step()
	}
	if err := p.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := p.Energy(); math.Abs(got-want) > 1e-9 {
		t.Errorf("energy after restore = %v, want %v", got, want)
	}
	if p.StepIndex() != wantStep {
		t.Errorf("step after restore = %d, want %d", p.StepIndex(), wantStep)
	}
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	p, _ := NewPropagator(DefaultConfig())
	if err := p.Restore([]byte{1, 2, 3}); err == nil {
		t.Error("short snapshot accepted")
	}
	other, _ := NewPropagator(Config{NX: 64, NZ: 64, DX: 10, Velocity: 1500,
		PeakFrequency: 15, SourceX: 32, SourceZ: 32})
	if err := p.Restore(other.Snapshot()); err == nil {
		t.Error("mismatched grid accepted")
	}
	snap := p.Snapshot()
	if err := p.Restore(snap[:len(snap)-4]); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NX: 4, NZ: 128, DX: 10, Velocity: 1500, PeakFrequency: 15},
		{NX: 128, NZ: 128, DX: 0, Velocity: 1500, PeakFrequency: 15},
		{NX: 128, NZ: 128, DX: 10, Velocity: -1, PeakFrequency: 15},
		{NX: 128, NZ: 128, DX: 10, Velocity: 1500, PeakFrequency: 0},
		{NX: 128, NZ: 128, DX: 10, Velocity: 1500, PeakFrequency: 15, SourceX: 500},
	}
	for i, cfg := range bad {
		if _, err := NewPropagator(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestCompressRoundTrip(t *testing.T) {
	p, err := NewPropagator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 300; step += 30 {
		snap := p.Snapshot()
		comp := Compress(snap)
		back, err := Decompress(comp)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if !bytes.Equal(back, snap) {
			t.Fatalf("step %d: round trip mismatch", step)
		}
		for i := 0; i < 30; i++ {
			p.Step()
		}
	}
}

func TestCompressionRatioShrinksOverShot(t *testing.T) {
	// Early snapshots (mostly silent field) must compress far better
	// than late ones — the mechanism behind the paper's variable
	// checkpoint sizes.
	p, err := NewPropagator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.Step()
	}
	early := len(Compress(p.Snapshot()))
	for i := 0; i < 600; i++ {
		p.Step()
	}
	late := len(Compress(p.Snapshot()))
	if early*4 > late {
		t.Errorf("early snapshot compressed to %d, late to %d: expected early << late", early, late)
	}
	raw := len(p.Snapshot())
	if early*10 > raw {
		t.Errorf("early snapshot only compressed %d → %d; expected >= 10x", raw, early)
	}
}

func TestDecompressRejectsCorruptInput(t *testing.T) {
	if _, err := Decompress([]byte{1, 2}); err == nil {
		t.Error("short block accepted")
	}
	good := Compress([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	bad := append([]byte{}, good...)
	bad[4] = 0xFF // unknown token
	if _, err := Decompress(bad); err == nil {
		t.Error("unknown token accepted")
	}
	if _, err := Decompress(good[:5]); err == nil {
		t.Error("truncated block accepted")
	}
}

func TestCompressArbitraryBytesProperty(t *testing.T) {
	// Property: Compress/Decompress is the identity for any byte
	// string, including lengths not divisible by four.
	f := func(data []byte) bool {
		back, err := Decompress(Compress(data))
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
