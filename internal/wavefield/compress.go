package wavefield

import (
	"encoding/binary"
	"fmt"
)

// Compress applies a lossless byte-oriented scheme tuned for wavefield
// snapshots: XOR-delta between consecutive 32-bit words (early snapshots
// are mostly zeros — the wavefront has touched little of the domain)
// followed by zero-run-length encoding. Early-shot snapshots compress by
// orders of magnitude and late ones barely at all, reproducing the
// variable checkpoint sizes that drive the paper's fragmentation study
// (§4.1.5) with real data.
//
// Format: u32 originalLen, then tokens:
//
//	0x00 n(varint)   — a run of n zero bytes
//	0x01 n(varint) b — n literal bytes
func Compress(data []byte) []byte {
	delta := xorDelta(data)
	out := make([]byte, 0, len(data)/4+16)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(data)))
	out = append(out, hdr[:]...)

	i := 0
	for i < len(delta) {
		if delta[i] == 0 {
			j := i
			for j < len(delta) && delta[j] == 0 {
				j++
			}
			out = append(out, 0x00)
			out = appendUvarint(out, uint64(j-i))
			i = j
			continue
		}
		j := i
		for j < len(delta) && delta[j] != 0 {
			j++
		}
		// Absorb short zero runs into literals: a lone zero byte is
		// cheaper as a literal than as a run token.
		for j < len(delta) {
			k := j
			for k < len(delta) && delta[k] == 0 {
				k++
			}
			if k-j > 3 || k == len(delta) {
				break
			}
			j = k
			for j < len(delta) && delta[j] != 0 {
				j++
			}
		}
		out = append(out, 0x01)
		out = appendUvarint(out, uint64(j-i))
		out = append(out, delta[i:j]...)
		i = j
	}
	return out
}

// Decompress inverts Compress.
func Decompress(comp []byte) ([]byte, error) {
	if len(comp) < 4 {
		return nil, fmt.Errorf("wavefield: compressed block too short")
	}
	total := int(binary.LittleEndian.Uint32(comp))
	delta := make([]byte, 0, total)
	i := 4
	for i < len(comp) {
		tok := comp[i]
		i++
		n, w := binary.Uvarint(comp[i:])
		if w <= 0 {
			return nil, fmt.Errorf("wavefield: corrupt varint at offset %d", i)
		}
		i += w
		switch tok {
		case 0x00:
			for k := uint64(0); k < n; k++ {
				delta = append(delta, 0)
			}
		case 0x01:
			if i+int(n) > len(comp) {
				return nil, fmt.Errorf("wavefield: literal run of %d exceeds block", n)
			}
			delta = append(delta, comp[i:i+int(n)]...)
			i += int(n)
		default:
			return nil, fmt.Errorf("wavefield: unknown token %#x at offset %d", tok, i-1)
		}
	}
	if len(delta) != total {
		return nil, fmt.Errorf("wavefield: decompressed %d bytes, want %d", len(delta), total)
	}
	return undoXorDelta(delta), nil
}

// xorDelta XORs each byte with the byte four positions earlier (one
// float32 word), turning the smooth regions of a wavefield into zero runs.
func xorDelta(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data[:min(4, len(data))])
	for i := 4; i < len(data); i++ {
		out[i] = data[i] ^ data[i-4]
	}
	return out
}

func undoXorDelta(delta []byte) []byte {
	out := make([]byte, len(delta))
	copy(out, delta[:min(4, len(delta))])
	for i := 4; i < len(delta); i++ {
		out[i] = delta[i] ^ out[i-4]
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}
