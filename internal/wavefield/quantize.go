package wavefield

import (
	"encoding/binary"
	"fmt"
	"math"
)

// CompressLossy compresses a snapshot by quantizing the float32 pressure
// field to 8-bit codes relative to the field's peak amplitude, then
// zero-run-length encoding the codes. Production RTM compresses its image
// checkpoints lossily (~30× on average, §5.3.3); quantization is what
// makes such ratios possible — the adjoint cross-correlation tolerates
// bounded relative error.
//
// tolerance is the maximum quantization error relative to the field's
// peak amplitude and must be in (0, 0.5); 1/256 (one code step) is the
// natural choice. The returned block decompresses with DecompressLossy.
//
// Format: u32 nx | u32 nz | u64 step | f32 scale | RLE(codes) where each
// code c represents the value (c-128)·scale with c in [0,255].
func CompressLossy(snap []byte, tolerance float64) ([]byte, error) {
	if len(snap) < 16 || (len(snap)-16)%4 != 0 {
		return nil, fmt.Errorf("wavefield: malformed snapshot (%d bytes)", len(snap))
	}
	if tolerance <= 0 || tolerance >= 0.5 {
		return nil, fmt.Errorf("wavefield: tolerance %v outside (0, 0.5)", tolerance)
	}
	n := (len(snap) - 16) / 4
	// Peak amplitude.
	var peak float64
	for i := 0; i < n; i++ {
		v := math.Abs(float64(math.Float32frombits(binary.LittleEndian.Uint32(snap[16+4*i:]))))
		if v > peak {
			peak = v
		}
	}
	// scale maps code step 1 to <= 2·tolerance·peak of amplitude, so the
	// rounding error is <= tolerance·peak.
	scale := float32(peak / 127)
	if peak == 0 {
		scale = 1
	}

	codes := make([]byte, n)
	for i := 0; i < n; i++ {
		v := math.Float32frombits(binary.LittleEndian.Uint32(snap[16+4*i:]))
		q := int(math.RoundToEven(float64(v/scale))) + 128
		if q < 0 {
			q = 0
		}
		if q > 255 {
			q = 255
		}
		codes[i] = byte(q)
	}

	out := make([]byte, 0, n/8+32)
	var hdr [20]byte
	copy(hdr[0:16], snap[0:16])
	binary.LittleEndian.PutUint32(hdr[16:], math.Float32bits(scale))
	out = append(out, hdr[:]...)

	// RLE over the dominant code 128 (silence), literals otherwise.
	i := 0
	for i < n {
		if codes[i] == 128 {
			j := i
			for j < n && codes[j] == 128 {
				j++
			}
			out = append(out, 0x00)
			out = appendUvarint(out, uint64(j-i))
			i = j
			continue
		}
		j := i
		for j < n && codes[j] != 128 {
			j++
		}
		out = append(out, 0x01)
		out = appendUvarint(out, uint64(j-i))
		out = append(out, codes[i:j]...)
		i = j
	}
	return out, nil
}

// DecompressLossy inverts CompressLossy, returning a snapshot whose field
// values differ from the original by at most tolerance·peak per sample.
func DecompressLossy(comp []byte) ([]byte, error) {
	if len(comp) < 20 {
		return nil, fmt.Errorf("wavefield: lossy block too short")
	}
	nx := int(binary.LittleEndian.Uint32(comp[0:]))
	nz := int(binary.LittleEndian.Uint32(comp[4:]))
	if nx <= 0 || nz <= 0 || nx*nz > 1<<28 {
		return nil, fmt.Errorf("wavefield: implausible grid %dx%d", nx, nz)
	}
	n := nx * nz
	scale := math.Float32frombits(binary.LittleEndian.Uint32(comp[16:]))

	codes := make([]byte, 0, n)
	i := 20
	for i < len(comp) {
		tok := comp[i]
		i++
		run, w := binary.Uvarint(comp[i:])
		if w <= 0 {
			return nil, fmt.Errorf("wavefield: corrupt varint at %d", i)
		}
		i += w
		switch tok {
		case 0x00:
			for k := uint64(0); k < run; k++ {
				codes = append(codes, 128)
			}
		case 0x01:
			if i+int(run) > len(comp) {
				return nil, fmt.Errorf("wavefield: literal overruns block")
			}
			codes = append(codes, comp[i:i+int(run)]...)
			i += int(run)
		default:
			return nil, fmt.Errorf("wavefield: unknown token %#x", tok)
		}
	}
	if len(codes) != n {
		return nil, fmt.Errorf("wavefield: decoded %d samples, want %d", len(codes), n)
	}

	snap := make([]byte, 16+4*n)
	copy(snap[0:16], comp[0:16])
	for k, c := range codes {
		v := float32(int(c)-128) * scale
		binary.LittleEndian.PutUint32(snap[16+4*k:], math.Float32bits(v))
	}
	return snap, nil
}
