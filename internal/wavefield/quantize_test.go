package wavefield

import (
	"encoding/binary"
	"math"
	"testing"
)

func liveSnapshot(t *testing.T, steps int) ([]byte, *Propagator) {
	t.Helper()
	p, err := NewPropagator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		p.Step()
	}
	return p.Snapshot(), p
}

func fieldOf(snap []byte) []float32 {
	n := (len(snap) - 16) / 4
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(snap[16+4*i:]))
	}
	return out
}

func TestLossyRoundTripWithinTolerance(t *testing.T) {
	snap, _ := liveSnapshot(t, 300)
	const tol = 1.0 / 128
	comp, err := CompressLossy(snap, tol)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressLossy(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(snap) {
		t.Fatalf("size mismatch: %d vs %d", len(back), len(snap))
	}
	orig, got := fieldOf(snap), fieldOf(back)
	var peak float64
	for _, v := range orig {
		if a := math.Abs(float64(v)); a > peak {
			peak = a
		}
	}
	bound := tol * peak * 1.01 // epsilon for float rounding
	for i := range orig {
		if err := math.Abs(float64(orig[i] - got[i])); err > bound {
			t.Fatalf("sample %d: error %v exceeds bound %v", i, err, bound)
		}
	}
	// Header fields (grid, step) must survive exactly.
	for i := 0; i < 16; i++ {
		if back[i] != snap[i] {
			t.Fatal("header not preserved")
		}
	}
}

func TestLossyBeatsLosslessByFar(t *testing.T) {
	snap, _ := liveSnapshot(t, 400)
	lossless := Compress(snap)
	lossy, err := CompressLossy(snap, 1.0/128)
	if err != nil {
		t.Fatal(err)
	}
	if len(lossy)*2 > len(lossless) {
		t.Errorf("lossy %d bytes vs lossless %d: expected >= 2x better", len(lossy), len(lossless))
	}
	ratio := float64(len(snap)) / float64(len(lossy))
	if ratio < 4 {
		t.Errorf("lossy ratio %.1fx; expected >= 4x on a live field", ratio)
	}
}

func TestLossySilentFieldCompressesToNothing(t *testing.T) {
	p, err := NewPropagator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := p.Snapshot() // all zeros
	comp, err := CompressLossy(snap, 1.0/128)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) > 64 {
		t.Errorf("silent field compressed to %d bytes; expected a handful", len(comp))
	}
	back, err := DecompressLossy(comp)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range fieldOf(back) {
		if v != 0 {
			t.Fatal("silent field reconstructed with non-zeros")
		}
	}
}

func TestLossyRestoredFieldPropagatesStably(t *testing.T) {
	// The adjoint use case: restore a quantized snapshot into the
	// propagator and keep stepping — the scheme must remain stable.
	snap, p := liveSnapshot(t, 200)
	comp, err := CompressLossy(snap, 1.0/256)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressLossy(comp)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Restore(back); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p.Step()
	}
	for _, v := range p.Field() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("propagation from a quantized restore went unstable")
		}
	}
}

func TestLossyValidation(t *testing.T) {
	snap, _ := liveSnapshot(t, 10)
	if _, err := CompressLossy(snap[:3], 0.01); err == nil {
		t.Error("malformed snapshot accepted")
	}
	if _, err := CompressLossy(snap, 0); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := CompressLossy(snap, 0.9); err == nil {
		t.Error("tolerance >= 0.5 accepted")
	}
	if _, err := DecompressLossy([]byte{1, 2}); err == nil {
		t.Error("short block accepted")
	}
	comp, _ := CompressLossy(snap, 0.01)
	bad := append([]byte{}, comp...)
	bad[20] = 0xFF
	if _, err := DecompressLossy(bad); err == nil {
		t.Error("unknown token accepted")
	}
	if _, err := DecompressLossy(comp[:len(comp)-2]); err == nil {
		t.Error("truncated block accepted")
	}
}
