// Package adiossim models the paper's ADIOS2 baseline (§5.2.1): the BP5
// transport engine with deferred (asynchronous) I/O to NVMe, buffering in
// host memory, and adios2::MemorySpace::CUDA for GPU-resident data.
//
// The structural property the paper leans on is that ADIOS2 has no
// dedicated device cache tier: every Put of GPU data performs an on-demand
// device-to-host copy that blocks the application for the PCIe transfer,
// and every Get of a non-buffered step reads NVMe → host → device
// synchronously. There is no prefetching; hints are accepted but ignored,
// matching the "No hints, ADIOS2" row of Table 1.
package adiossim

import (
	"errors"
	"sync"

	"score/internal/device"
	"score/internal/fabric"
	"score/internal/metrics"
	"score/internal/payload"
	"score/internal/simclock"
)

// Errors mirroring the core runtime's.
var (
	ErrUnknownCheckpoint = errors.New("adiossim: unknown checkpoint")
	ErrClosed            = errors.New("adiossim: client closed")
	ErrDuplicate         = errors.New("adiossim: checkpoint version already written")
)

// Config parameterizes the BP5-like engine.
type Config struct {
	// Clock drives timing; required.
	Clock simclock.Clock
	// GPU supplies the PCIe link for on-demand D2H/H2D copies; required.
	GPU *device.GPU
	// NVMe is the deferred-drain target; required.
	NVMe *fabric.Link
	// HostBufferSize bounds the BP5 host buffer; when full, Put blocks
	// on the drain (the paper grants every approach 32 GiB).
	HostBufferSize int64
	// PageableEfficiency scales PCIe bandwidth for BP5's transfers:
	// the engine marshals into pageable (unpinned) host buffers, which
	// reach only a fraction of the pinned-copy peak and additionally
	// pay serialization. Modeled as inflating the transferred volume.
	PageableEfficiency float64
}

func (c Config) withDefaults() Config {
	if c.HostBufferSize == 0 {
		c.HostBufferSize = 32 * fabric.GB
	}
	if c.PageableEfficiency == 0 {
		c.PageableEfficiency = 0.25
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Clock == nil:
		return errors.New("adiossim: Clock required")
	case c.GPU == nil:
		return errors.New("adiossim: GPU required")
	case c.NVMe == nil:
		return errors.New("adiossim: NVMe required")
	case c.HostBufferSize <= 0:
		return errors.New("adiossim: HostBufferSize must be positive")
	case c.PageableEfficiency <= 0 || c.PageableEfficiency > 1:
		return errors.New("adiossim: PageableEfficiency must be in (0,1]")
	}
	return nil
}

// pcieCopy charges a pageable PCIe transfer of size bytes (D2H or H2D):
// the link moves the efficiency-inflated volume. An injected PCIe fault
// surfaces as the returned error.
func (c *Client) pcieCopy(size int64) error {
	_, err := c.cfg.GPU.PCIeLink().TryTransfer(int64(float64(size) / c.cfg.PageableEfficiency))
	return err
}

type step struct {
	id       int64
	size     int64
	pay      payload.Payload
	buffered bool // still in the host buffer
	onNVMe   bool
}

// Client is one process's ADIOS2-style engine.
type Client struct {
	cfg Config
	clk simclock.Clock
	rec *metrics.Recorder

	mu   sync.Mutex
	cond simclock.Cond

	steps    map[int64]*step
	order    []int64
	hostUsed int64
	drainQ   []int64
	draining bool
	closed   bool
	err      error // first asynchronous drain failure

	restoreIter int
	daemons     *simclock.WaitGroup
}

// New creates and starts an ADIOS2-style client.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Client{cfg: cfg, clk: cfg.Clock, rec: metrics.NewRecorder(), steps: map[int64]*step{}}
	c.cond = c.clk.NewCond(&c.mu)
	c.daemons = simclock.NewWaitGroup(c.clk)
	c.daemons.Add(1)
	c.clk.Go(func() { defer c.daemons.Done(); c.drainer() })
	return c, nil
}

// Close stops the drain worker.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.daemons.Wait()
}

// Err reports the first asynchronous drain failure, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Metrics returns the client's recorder.
func (c *Client) Metrics() *metrics.Recorder { return c.rec }

// Checkpoint is BP5 Put+EndStep with deferred mode: the GPU data is copied
// on demand into the host buffer (blocking PCIe transfer — no device
// cache), then drained to NVMe in the background.
func (c *Client) Checkpoint(id int64, pay payload.Payload) error {
	start := c.clk.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if _, dup := c.steps[id]; dup {
		c.mu.Unlock()
		return ErrDuplicate
	}
	s := &step{id: id, size: pay.Size(), pay: pay}
	c.steps[id] = s
	c.order = append(c.order, id)
	// Wait for host buffer space (drain backpressure).
	for c.hostUsed+s.size > c.cfg.HostBufferSize {
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		c.cond.Wait()
	}
	c.hostUsed += s.size
	s.buffered = true
	c.mu.Unlock()

	// On-demand pageable D2H: blocks the application.
	if err := c.pcieCopy(s.size); err != nil {
		c.mu.Lock()
		s.buffered = false
		c.hostUsed -= s.size
		c.cond.Broadcast()
		c.mu.Unlock()
		return err
	}

	c.mu.Lock()
	c.drainQ = append(c.drainQ, id)
	c.cond.Broadcast()
	c.mu.Unlock()

	c.rec.Checkpoint(s.size, c.clk.Now()-start)
	return nil
}

// drainer writes buffered steps to NVMe and releases buffer space in FIFO
// order (BP5 deferred I/O).
func (c *Client) drainer() {
	for {
		c.mu.Lock()
		for len(c.drainQ) == 0 {
			if c.closed {
				c.mu.Unlock()
				return
			}
			if c.draining {
				// Transitioning to idle: wake WaitFlush exactly once
				// (broadcasting on every pass would livelock idle
				// waiters under the virtual clock).
				c.draining = false
				c.cond.Broadcast()
			}
			c.cond.Wait()
		}
		id := c.drainQ[0]
		c.drainQ = c.drainQ[1:]
		c.draining = true
		s := c.steps[id]
		c.mu.Unlock()

		_, err := c.cfg.NVMe.TryTransfer(s.size)

		c.mu.Lock()
		if err != nil {
			// The drain failed: the step stays in the host buffer and
			// the failure is reported through Err/WaitFlush.
			if c.err == nil {
				c.err = err
			}
		} else {
			s.onNVMe = true
			if s.buffered {
				s.buffered = false
				c.hostUsed -= s.size
			}
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// Restore is BP5 Get: from the host buffer if the step has not drained
// yet, otherwise a synchronous NVMe read, then an H2D copy. No caching,
// no prefetching.
func (c *Client) Restore(id int64) (payload.Payload, error) {
	start := c.clk.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	s, ok := c.steps[id]
	if !ok {
		c.mu.Unlock()
		return nil, ErrUnknownCheckpoint
	}
	iter := c.restoreIter
	c.restoreIter++
	buffered := s.buffered
	c.mu.Unlock()

	if !buffered {
		if _, err := c.cfg.NVMe.TryTransfer(s.size); err != nil { // NVMe → host staging
			return nil, err
		}
	}
	if err := c.pcieCopy(s.size); err != nil { // pageable host → device
		return nil, err
	}

	c.rec.Restore(iter, s.size, c.clk.Now()-start, 0)
	return s.pay, nil
}

// RestoreSize returns the step's size.
func (c *Client) RestoreSize(id int64) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.steps[id]
	if !ok {
		return 0, ErrUnknownCheckpoint
	}
	return s.size, nil
}

// PrefetchEnqueue is accepted and ignored: ADIOS2 exposes no prefetch
// hinting for this access pattern (Table 1: "No hints, ADIOS2").
func (c *Client) PrefetchEnqueue(int64) {}

// PrefetchStart is a no-op for ADIOS2.
func (c *Client) PrefetchStart() {}

// WaitFlush drains the deferred-I/O queue.
func (c *Client) WaitFlush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.drainQ) > 0 || c.draining {
		if c.closed {
			return ErrClosed
		}
		c.cond.Wait()
	}
	return c.err
}
