package adiossim

import (
	"errors"
	"testing"
	"time"

	"score/internal/device"
	"score/internal/fabric"
	"score/internal/payload"
	"score/internal/simclock"
)

const MB = 1 << 20

func newADIOS(t *testing.T, clk simclock.Clock, mutate func(*Config)) *Client {
	t.Helper()
	cfg := fabric.NodeConfig{
		GPUs: 2, D2DBandwidth: 1000 * MB, PCIeBandwidth: 100 * MB,
		GPUsPerPCIe: 2, NVMeDrives: 1, NVMePerDrive: 25 * MB,
		PFSBandwidth: 10 * MB,
	}
	cluster, err := fabric.NewCluster(clk, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2d, pcie := cluster.Nodes[0].GPULinks(0)
	gpu := device.NewGPU(clk, 0, 64*MB, d2d, pcie, device.DefaultAllocCosts())
	c := Config{Clock: clk, GPU: gpu, NVMe: cluster.Nodes[0].NVMe, HostBufferSize: 16 * MB}
	if mutate != nil {
		mutate(&c)
	}
	client, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	return client
}

func TestADIOSRoundTrip(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		c := newADIOS(t, clk, nil)
		defer c.Close()
		in := payload.NewReal([]byte("bp5 step"))
		if err := c.Checkpoint(0, in); err != nil {
			t.Fatal(err)
		}
		out, err := c.Restore(0)
		if err != nil {
			t.Fatal(err)
		}
		if out.Checksum() != in.Checksum() {
			t.Error("payload mismatch")
		}
		if size, err := c.RestoreSize(0); err != nil || size != in.Size() {
			t.Errorf("RestoreSize = %d, %v", size, err)
		}
	})
}

func TestADIOSCheckpointBlocksForPCIe(t *testing.T) {
	// No device cache: the Put blocks for the full D2H transfer
	// (1MB at 100MB/s = 10ms), unlike Score's ~1ms D2D.
	clk := simclock.NewVirtual()
	clk.Run(func() {
		c := newADIOS(t, clk, nil)
		defer c.Close()
		start := clk.Now()
		if err := c.Checkpoint(0, payload.NewVirtual(MB)); err != nil {
			t.Fatal(err)
		}
		blocked := clk.Now() - start
		if blocked < 9*time.Millisecond {
			t.Errorf("checkpoint blocked %v; ADIOS2 must pay the PCIe copy (~10ms)", blocked)
		}
	})
}

func TestADIOSBackpressureWhenBufferFull(t *testing.T) {
	// 16MB buffer, 1MB steps: writing 32MB must block on the NVMe
	// drain for the overflow.
	clk := simclock.NewVirtual()
	clk.Run(func() {
		c := newADIOS(t, clk, nil)
		defer c.Close()
		for i := int64(0); i < 32; i++ {
			if err := c.Checkpoint(i, payload.NewVirtual(MB)); err != nil {
				t.Fatalf("checkpoint %d: %v", i, err)
			}
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		// Drained: all steps on NVMe, buffer empty.
		c.mu.Lock()
		used := c.hostUsed
		c.mu.Unlock()
		if used != 0 {
			t.Errorf("host buffer holds %d bytes after WaitFlush, want 0", used)
		}
		for i := int64(0); i < 32; i++ {
			if _, err := c.Restore(i); err != nil {
				t.Fatalf("restore %d: %v", i, err)
			}
		}
	})
}

func TestADIOSRestoreFromNVMeIsSlow(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		c := newADIOS(t, clk, nil)
		defer c.Close()
		if err := c.Checkpoint(0, payload.NewVirtual(MB)); err != nil {
			t.Fatal(err)
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		start := clk.Now()
		if _, err := c.Restore(0); err != nil {
			t.Fatal(err)
		}
		blocked := clk.Now() - start
		// NVMe read (1MB @ 25MB/s = 40ms) + H2D (10ms) = ~50ms.
		if blocked < 45*time.Millisecond {
			t.Errorf("drained restore blocked %v, want ~50ms (NVMe + PCIe)", blocked)
		}
	})
}

func TestADIOSHintsIgnored(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		c := newADIOS(t, clk, nil)
		defer c.Close()
		c.PrefetchEnqueue(0) // must be a harmless no-op
		c.PrefetchStart()
		if err := c.Checkpoint(0, payload.NewVirtual(MB)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Restore(0); err != nil {
			t.Fatal(err)
		}
		sum := c.Metrics().Snapshot()
		if sum.RestoreSeries[0].PrefetchDistance != 0 {
			t.Error("ADIOS2 reported a nonzero prefetch distance")
		}
	})
}

func TestADIOSErrors(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		c := newADIOS(t, clk, nil)
		if err := c.Checkpoint(0, payload.NewVirtual(MB)); err != nil {
			t.Fatal(err)
		}
		if err := c.Checkpoint(0, payload.NewVirtual(MB)); !errors.Is(err, ErrDuplicate) {
			t.Errorf("duplicate: %v", err)
		}
		if _, err := c.Restore(7); !errors.Is(err, ErrUnknownCheckpoint) {
			t.Errorf("unknown: %v", err)
		}
		if _, err := c.RestoreSize(7); !errors.Is(err, ErrUnknownCheckpoint) {
			t.Errorf("unknown size: %v", err)
		}
		c.Close()
		if err := c.Checkpoint(1, payload.NewVirtual(MB)); !errors.Is(err, ErrClosed) {
			t.Errorf("after close: %v", err)
		}
	})
}

func TestADIOSConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}
