package experiments

import (
	"reflect"
	"testing"
	"time"

	"score"
)

// smallPreempt is a reduced-scale sweep: 6 × 4 MiB of backlog against a
// window too small to drain everything and one comfortably large. The
// bandwidth-to-backlog ratio preserves the full sweep's shape (partial
// triage at the short window, full drain at the long one) at test cost.
func smallPreempt() PreemptConfig {
	return PreemptConfig{
		Checkpoints: 6,
		Size:        4 << 20,
		Interval:    time.Millisecond,
		Windows:     []time.Duration{500 * time.Microsecond, 250 * time.Millisecond},
		Runs:        2,
	}
}

// TestPreemptionManifestContract is the acceptance check: every run ends
// with a complete manifest — each live version either durable, discarded,
// or explicitly abandoned, with abandonments carrying a reason.
func TestPreemptionManifestContract(t *testing.T) {
	res, err := Preemption(smallPreempt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(res.Cells))
	}
	if res.SampleManifest.Entries == nil {
		t.Fatal("no sample manifest retained")
	}
	if !res.SampleManifest.Complete() {
		t.Fatalf("sample manifest incomplete: %s", res.SampleManifest)
	}
	for _, cell := range res.Cells {
		if cell.Runs != 2 {
			t.Errorf("window %v ran %d times, want 2", cell.Window, cell.Runs)
		}
		total := cell.DurableBytes + cell.AbandonedBytes + cell.DiscardedBytes
		if total == 0 {
			t.Errorf("window %v: no bytes accounted in manifests", cell.Window)
		}
	}
}

// TestPreemptionWindowLadder: a tight window must abandon state that a
// generous one drains — the deadline budget is real, and fail-open means
// the abandoned bytes are explicit, not stuck.
func TestPreemptionWindowLadder(t *testing.T) {
	res, err := Preemption(smallPreempt())
	if err != nil {
		t.Fatal(err)
	}
	tight, wide := res.Cells[0], res.Cells[1]
	if tight.AbandonedBytes == 0 {
		t.Errorf("tight window %v abandoned nothing — the deadline budget never engaged", tight.Window)
	}
	if wide.DurableBytes <= tight.DurableBytes {
		t.Errorf("wide window durable %d <= tight window durable %d",
			wide.DurableBytes, tight.DurableBytes)
	}
	if wide.AbandonedBytes > 0 {
		t.Errorf("wide window %v abandoned %d bytes; want a full drain",
			wide.Window, wide.AbandonedBytes)
	}
	if wide.DeadlineHits != wide.Runs {
		t.Errorf("wide window hit the deadline %d/%d times", wide.DeadlineHits, wide.Runs)
	}
}

// TestPreemptionDeterministic: the same config replays the identical
// sweep, manifest entries included.
func TestPreemptionDeterministic(t *testing.T) {
	a, err := Preemption(smallPreempt())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Preemption(smallPreempt())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sweep not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestPreemptionThroughputReported: the headline metric (GB drained per
// grace second) is populated for a window that drained anything.
func TestPreemptionThroughputReported(t *testing.T) {
	res, err := Preemption(smallPreempt())
	if err != nil {
		t.Fatal(err)
	}
	var drained bool
	for _, cell := range res.Cells {
		if cell.DrainedBytes > 0 {
			drained = true
			if cell.DrainThroughput() <= 0 {
				t.Errorf("window %v drained %d bytes but reports %v GB/s",
					cell.Window, cell.DrainedBytes, cell.DrainThroughput())
			}
		}
	}
	if !drained {
		t.Error("no window drained any bytes; the sweep is miscalibrated")
	}
	var zero score.DrainManifest
	if reflect.DeepEqual(res.SampleManifest, zero) {
		t.Error("sample manifest empty")
	}
}
