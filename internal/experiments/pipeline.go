package experiments

import (
	"fmt"
	"io"
	"time"

	"score/internal/metrics"
	"score/internal/report"
	"score/internal/rtm"
)

// The pipeline experiment compares monolithic and chunked multi-hop
// transfers (§4.3) on the drained-restore shot and decomposes each
// configuration's time-to-durable and restore blocking time into
// critical-path components. The breakdown is the experiment's point:
// chunking should shift durable time out of the serialized xfer-pcie +
// xfer-ssd pair into the combined overlapped stream, and the attributed
// components of every record telescope exactly to its total (asserted
// per rank by the metrics invariants before the result is returned).

// PipelineCase is one compared transfer configuration.
type PipelineCase struct {
	// Name identifies the case ("pipeline/mono" or "pipeline/chunked").
	Name string
	// ChunkSize is the streaming granularity (0 = monolithic).
	ChunkSize int64
	// Result is the full shot outcome, per-rank summaries included.
	Result ShotResult
}

// Merged is the cross-rank summary (attribution records included).
func (c PipelineCase) Merged() metrics.Summary { return c.Result.MergedSummary() }

// CritPathRun packages the case's attribution records under its name
// for the score-critpath/v1 export.
func (c PipelineCase) CritPathRun() report.CritPathRun {
	return report.CritPathRun{Label: c.Name, Records: c.Merged().CritPaths}
}

// PipelineResult is the rendered experiment.
type PipelineResult struct {
	Cases []PipelineCase
}

// Pipeline runs the drained-restore Score shot (all hints, uniform
// snapshots) monolithic and chunked and returns both cases with their
// critical-path attributions. The chunk size is 1/16 of the snapshot
// size, matching the bench-smoke pipelining configuration.
func Pipeline(scale Scale) (PipelineResult, error) {
	base := ShotConfig{
		GPUsPerNode:  4,
		Uniform:      true,
		Order:        rtm.Reverse,
		WaitForFlush: true,
		Combo:        Combo{Score, AllHints},
	}
	scale.Apply(&base)

	cases := []PipelineCase{
		{Name: "pipeline/mono", ChunkSize: -1}, // negative: force monolithic
		{Name: "pipeline/chunked", ChunkSize: scale.UniformSize / 16},
	}
	for i := range cases {
		cfg := base
		cfg.ChunkSize = cases[i].ChunkSize
		cfg.Label = cases[i].Name
		res, err := RunShot(cfg)
		if err != nil {
			return PipelineResult{}, fmt.Errorf("%s: %w", cases[i].Name, err)
		}
		cases[i].Result = res
	}
	return PipelineResult{Cases: cases}, nil
}

// CritPathRuns lists every case's attribution records for export.
func (r PipelineResult) CritPathRuns() []report.CritPathRun {
	out := make([]report.CritPathRun, 0, len(r.Cases))
	for _, c := range r.Cases {
		out = append(out, c.CritPathRun())
	}
	return out
}

// Render prints the throughput comparison followed by the per-component
// critical-path breakdown of both cases.
func (r PipelineResult) Render(w io.Writer) error {
	tab := report.NewTable("Pipeline — monolithic vs chunked transfers (drained restore)",
		"configuration", "gpus", "ckpt", "restore", "io-wait", "mean time-to-durable")
	for _, c := range r.Cases {
		sum := c.Merged()
		count, total, _ := sum.CritPathBreakdown(metrics.CritDurable)
		mean := time.Duration(0)
		if count > 0 {
			mean = total / time.Duration(count)
		}
		tab.AddRow(c.Name, len(c.Result.PerRank),
			metrics.FormatBytesPerSec(c.Result.MeanCheckpointThroughput()),
			metrics.FormatBytesPerSec(c.Result.MeanRestoreThroughput()),
			c.Result.TotalIOWait().Round(time.Millisecond).String(),
			mean.Round(time.Microsecond).String())
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	return report.CritPathTable(r.CritPathRuns()).Render(w)
}
