package experiments

import (
	"fmt"
	"io"
	"time"

	"score/internal/fabric"
	"score/internal/metrics"
	"score/internal/report"
	"score/internal/rtm"
)

// Scale shrinks an experiment below paper scale so tests and benchmarks
// finish quickly while preserving every mechanism (evictions, flush
// waits, fragmentation). Full() is the paper's configuration.
type Scale struct {
	Snapshots   int
	UniformSize int64
	GPUCache    int64
	HostCache   int64
	Aggregate   int64   // per-rank variable-size target (scaled 48 GB)
	Bandwidth   float64 // link-bandwidth multiplier (1 = paper hardware)
}

// Full returns the paper-scale parameters (§5.3.3–5.3.4).
func Full() Scale {
	return Scale{
		Snapshots:   384,
		UniformSize: 128 << 20,
		GPUCache:    4 * fabric.GB,
		HostCache:   32 * fabric.GB,
		Aggregate:   48 * fabric.GB,
		Bandwidth:   1,
	}
}

// Small returns a 1/16-scale configuration with identical cache-pressure
// and bandwidth-to-working-set ratios (sizes, caches, and link bandwidths
// all shrink together, so eviction, fragmentation, and contention
// behavior are preserved).
func Small() Scale {
	return Scale{
		Snapshots:   96,
		UniformSize: 32 << 20,
		GPUCache:    fabric.GB / 4,
		HostCache:   2 * fabric.GB,
		Aggregate:   3 * fabric.GB,
		Bandwidth:   1.0 / 16,
	}
}

// Apply maps the scale onto a ShotConfig.
func (s Scale) Apply(cfg *ShotConfig) {
	cfg.Snapshots = s.Snapshots
	cfg.UniformSize = s.UniformSize
	cfg.GPUCache = s.GPUCache
	cfg.HostCache = s.HostCache
	cfg.BWScale = s.Bandwidth
	cfg.Trace = rtm.DefaultTraceConfig()
	cfg.Trace.Snapshots = s.Snapshots
	cfg.Trace.MeanSize = s.Aggregate / int64(s.Snapshots)
	cfg.Trace.MinAggregate = s.Aggregate * 38 / 48
	cfg.Trace.MaxAggregate = s.Aggregate * 50 / 48
}

// Row is one figure bar/point: a configuration and its two throughputs.
type Row struct {
	Combo   Combo
	Order   rtm.Order
	GPUs    int
	Param   string // swept parameter value, when applicable
	CkptBps float64
	RestBps float64
	IOWait  time.Duration
}

// FigureResult is a rendered experiment.
type FigureResult struct {
	ID    string
	Title string
	Rows  []Row
	// Series carries per-iteration data for Fig. 7.
	Series map[string][]metrics.SeriesPoint
}

// Render prints the figure as a table.
func (f FigureResult) Render(w io.Writer) error {
	tab := report.NewTable(fmt.Sprintf("%s — %s", f.ID, f.Title),
		"configuration", "order", "gpus", "param", "ckpt", "restore", "io-wait")
	for _, r := range f.Rows {
		tab.AddRow(r.Combo.Label(), r.Order.String(), r.GPUs, r.Param,
			metrics.FormatBytesPerSec(r.CkptBps),
			metrics.FormatBytesPerSec(r.RestBps),
			r.IOWait.Round(time.Millisecond).String())
	}
	return tab.Render(w)
}

// runCombos sweeps Table 1 combos × orders for one base config.
func runCombos(base ShotConfig, combos []Combo, orders []rtm.Order) ([]Row, error) {
	var rows []Row
	for _, order := range orders {
		for _, combo := range combos {
			cfg := base
			cfg.Order = order
			cfg.Combo = combo
			res, err := RunShot(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", combo.Label(), order, err)
			}
			rows = append(rows, Row{
				Combo: combo, Order: order,
				GPUs:    len(res.PerRank),
				CkptBps: res.MeanCheckpointThroughput(),
				RestBps: res.MeanRestoreThroughput(),
				IOWait:  res.TotalIOWait(),
			})
		}
	}
	return rows, nil
}

// Fig4 regenerates the snapshot-size distribution of Figure 4: min, avg,
// and max sizes per snapshot across shots ranks.
func Fig4(scale Scale, shots int) ([]rtm.SnapshotStats, error) {
	cfg := rtm.DefaultTraceConfig()
	cfg.Snapshots = scale.Snapshots
	cfg.MeanSize = scale.Aggregate / int64(scale.Snapshots)
	cfg.MinAggregate = scale.Aggregate * 38 / 48
	cfg.MaxAggregate = scale.Aggregate * 50 / 48
	var all []rtm.Shot
	for rank := 0; rank < shots; rank++ {
		s, err := rtm.GenerateShot(cfg, rank)
		if err != nil {
			return nil, err
		}
		all = append(all, s)
	}
	return rtm.Stats(all)
}

// Fig5 regenerates Figure 5 (a: uniform, b: variable): average
// checkpoint+restore throughput across 8 GPUs when the restore phase
// WAITS for all flushes.
func Fig5(scale Scale, uniform bool) (FigureResult, error) {
	base := ShotConfig{Uniform: uniform, WaitForFlush: true}
	scale.Apply(&base)
	rows, err := runCombos(base, Table1(), []rtm.Order{rtm.Sequential, rtm.Reverse, rtm.Irregular})
	variant := map[bool]string{true: "5a (uniform)", false: "5b (variable)"}[uniform]
	return FigureResult{
		ID:    "Fig. " + variant,
		Title: "ckpt+restore throughput, 8 GPUs, WAIT for flushes",
		Rows:  rows,
	}, err
}

// Fig6 regenerates Figure 6: the restore phase starts immediately after
// the checkpoint phase (no flush drain; consumed checkpoints discardable).
func Fig6(scale Scale, uniform bool) (FigureResult, error) {
	base := ShotConfig{Uniform: uniform, WaitForFlush: false}
	scale.Apply(&base)
	rows, err := runCombos(base, Table1(), []rtm.Order{rtm.Sequential, rtm.Reverse, rtm.Irregular})
	variant := map[bool]string{true: "6a (uniform)", false: "6b (variable)"}[uniform]
	return FigureResult{
		ID:    "Fig. " + variant,
		Title: "ckpt+restore throughput, 8 GPUs, NO WAIT",
		Rows:  rows,
	}, err
}

// Fig7 regenerates Figure 7: per-iteration restore rate and prefetch
// distance for the Score approach with sequential order and uniform
// sizes, for each hint budget.
func Fig7(scale Scale) (FigureResult, error) {
	out := FigureResult{
		ID:     "Fig. 7",
		Title:  "restore rate and prefetch distance per timestep (Score, sequential, uniform)",
		Series: map[string][]metrics.SeriesPoint{},
	}
	for _, hints := range []HintMode{NoHints, SingleHint, AllHints} {
		cfg := ShotConfig{Uniform: true, WaitForFlush: true,
			Order: rtm.Sequential, Combo: Combo{Score, hints}}
		scale.Apply(&cfg)
		res, err := RunShot(cfg)
		if err != nil {
			return out, fmt.Errorf("%s: %w", hints, err)
		}
		merged := mergeRanks(res)
		out.Series[hints.String()] = merged.RestoreSeries
		out.Rows = append(out.Rows, Row{
			Combo: Combo{Score, hints}, Order: rtm.Sequential,
			GPUs:    len(res.PerRank),
			CkptBps: res.MeanCheckpointThroughput(),
			RestBps: res.MeanRestoreThroughput(),
			IOWait:  res.TotalIOWait(),
		})
	}
	return out, nil
}

// Fig8a regenerates Figure 8a: I/O throughput versus compute interval
// (irregular order, variable sizes).
func Fig8a(scale Scale, intervals []time.Duration) (FigureResult, error) {
	if len(intervals) == 0 {
		intervals = []time.Duration{10 * time.Millisecond, 15 * time.Millisecond,
			20 * time.Millisecond, 25 * time.Millisecond, 30 * time.Millisecond}
	}
	out := FigureResult{ID: "Fig. 8a", Title: "throughput vs compute interval (irregular, variable)"}
	combos := []Combo{{ADIOS2, NoHints}, {UVM, NoHints}, {Score, NoHints}, {UVM, AllHints}, {Score, AllHints}}
	for _, iv := range intervals {
		base := ShotConfig{Uniform: false, WaitForFlush: false, Interval: iv, Order: rtm.Irregular}
		scale.Apply(&base)
		rows, err := runCombos(base, combos, []rtm.Order{rtm.Irregular})
		if err != nil {
			return out, err
		}
		for i := range rows {
			rows[i].Param = iv.String()
		}
		out.Rows = append(out.Rows, rows...)
	}
	return out, nil
}

// Fig8b regenerates Figure 8b: I/O throughput versus GPU cache size.
func Fig8b(scale Scale, caches []int64) (FigureResult, error) {
	if len(caches) == 0 {
		caches = []int64{scale.GPUCache / 2, scale.GPUCache, scale.GPUCache * 2, scale.GPUCache * 4}
	}
	out := FigureResult{ID: "Fig. 8b", Title: "throughput vs GPU cache size (irregular, variable)"}
	combos := []Combo{{ADIOS2, NoHints}, {UVM, NoHints}, {Score, NoHints}, {UVM, AllHints}, {Score, AllHints}}
	for _, cache := range caches {
		base := ShotConfig{Uniform: false, WaitForFlush: false, Order: rtm.Irregular}
		scale.Apply(&base)
		base.GPUCache = cache
		rows, err := runCombos(base, combos, []rtm.Order{rtm.Irregular})
		if err != nil {
			return out, err
		}
		for i := range rows {
			rows[i].Param = fmt.Sprintf("%dMiB", cache>>20)
		}
		out.Rows = append(out.Rows, rows...)
	}
	return out, nil
}

// Fig9 regenerates Figure 9: scalability over GPU counts, tightly coupled
// (barrier every iteration) or embarrassingly parallel.
func Fig9(scale Scale, coupled bool, gpuCounts []int) (FigureResult, error) {
	if len(gpuCounts) == 0 {
		gpuCounts = []int{8, 16, 24, 32}
	}
	mode := map[bool]string{true: "9a (tightly coupled)", false: "9b (embarrassingly parallel)"}[coupled]
	out := FigureResult{ID: "Fig. " + mode, Title: "scalability over GPU count (variable sizes)"}
	combos := []Combo{{ADIOS2, NoHints}, {UVM, NoHints}, {Score, NoHints},
		{UVM, SingleHint}, {Score, SingleHint}, {UVM, AllHints}, {Score, AllHints}}
	for _, gpus := range gpuCounts {
		nodes := (gpus + 7) / 8
		perNode := gpus / nodes
		base := ShotConfig{
			Uniform: false, WaitForFlush: false, Order: rtm.Reverse,
			Nodes: nodes, GPUsPerNode: perNode, TightlyCoupled: coupled,
		}
		scale.Apply(&base)
		rows, err := runCombos(base, combos, []rtm.Order{rtm.Reverse})
		if err != nil {
			return out, err
		}
		for i := range rows {
			rows[i].Param = fmt.Sprintf("%d GPUs", gpus)
			rows[i].GPUs = gpus
		}
		out.Rows = append(out.Rows, rows...)
	}
	return out, nil
}

// mergeRanks merges all per-rank summaries of a result.
func mergeRanks(res ShotResult) metrics.Summary {
	return res.MergedSummary()
}
