package experiments

import (
	"reflect"
	"testing"
	"time"
)

// smallStraggler is a reduced-scale sweep: 12 × 32 MiB with the healthy
// control and the severe straggler. Small enough for test cost, large
// enough that the deep reads dominate restore blocking and the hedge
// contrast is unambiguous.
func smallStraggler() StragglerConfig {
	return StragglerConfig{
		Checkpoints: 12,
		Size:        32 << 20,
		Interval:    2 * time.Millisecond,
		Severities:  []float64{1, 20},
	}
}

// TestStragglerCellsShape: the sweep runs every (severity, hedging)
// pair, in order, with every restore accounted.
func TestStragglerCellsShape(t *testing.T) {
	cfg := smallStraggler()
	res, err := Straggler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2*len(cfg.Severities) {
		t.Fatalf("cells = %d, want %d", len(res.Cells), 2*len(cfg.Severities))
	}
	for _, c := range res.Cells {
		if c.Restores != cfg.Checkpoints {
			t.Errorf("%s: restored %d/%d", c.Label(), c.Restores, cfg.Checkpoints)
		}
		if c.P99 < c.P50 || c.Max < c.P99 {
			t.Errorf("%s: quantiles disordered: p50=%v p99=%v max=%v", c.Label(), c.P50, c.P99, c.Max)
		}
		if c.P99 <= 0 {
			t.Errorf("%s: p99 = %v, want positive", c.Label(), c.P99)
		}
		if !c.Hedged && (c.HedgesLaunched != 0 || c.StallsDetected != 0 || c.HealthQuarantines != 0) {
			t.Errorf("%s: unhedged cell reports hedge machinery activity: %+v", c.Label(), c)
		}
	}
}

// TestStragglerHealthyControl: with no fault injected, hedging changes
// nothing — the first leg always wins before any deadline could engage,
// so both modes measure identical restore tails.
func TestStragglerHealthyControl(t *testing.T) {
	res, err := Straggler(smallStraggler())
	if err != nil {
		t.Fatal(err)
	}
	un, ok1 := res.Cell(1, false)
	he, ok2 := res.Cell(1, true)
	if !ok1 || !ok2 {
		t.Fatal("healthy control cells missing")
	}
	if un.P50 != he.P50 || un.P99 != he.P99 || un.Max != he.Max {
		t.Errorf("healthy hedged tail differs from unhedged: %+v vs %+v", he, un)
	}
	if he.HedgeWins != 0 {
		t.Errorf("healthy run won %d hedges; nothing should have been slow enough", he.HedgeWins)
	}
}

// TestStragglerHedgeBoundsTail is the acceptance gate at unit scale: at
// 20× slowdown on the SSD path, the hedged P99 restore blocking is at
// most half the unhedged P99, and the improvement came from hedge wins
// (or an outright quarantine routing around the straggler).
func TestStragglerHedgeBoundsTail(t *testing.T) {
	res, err := Straggler(smallStraggler())
	if err != nil {
		t.Fatal(err)
	}
	un, ok1 := res.Cell(20, false)
	he, ok2 := res.Cell(20, true)
	if !ok1 || !ok2 {
		t.Fatal("severity-20 cells missing")
	}
	if he.P99 > un.P99/2 {
		t.Errorf("hedged p99 %v > 0.5 × unhedged p99 %v", he.P99, un.P99)
	}
	if he.HedgeWins == 0 && he.HealthQuarantines == 0 {
		t.Errorf("hedged tail improved without a hedge win or quarantine: %+v", he)
	}
}

// TestStragglerDeterministic: the same config replays the identical
// sweep, counters and quantiles included.
func TestStragglerDeterministic(t *testing.T) {
	a, err := Straggler(smallStraggler())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Straggler(smallStraggler())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sweep not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}
