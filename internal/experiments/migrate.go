// Live-migration scenario: move a running rank's durable SSD tier to a
// successor node over the NIC fabric, concurrently with foreground
// traffic, and prove the cutover. Phase one runs the migration twice —
// once live (racing the writer's second half and a stream of foreground
// restores, exercising the catch-up rounds) and once as the incremental
// final sync after the writer quiesces (the same call: a catch-up round
// copies only what the live pass missed). Phase two opens the successor
// store on the destination node and restores every version bit-exactly
// against the regenerated reference — the migrated rank either comes
// back byte-identical or the scenario reports a definitive error.
package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"score"
)

// MigrateConfig parameterizes one live-migration scenario.
type MigrateConfig struct {
	// Checkpoints is the number of versions the rank writes before the
	// migration starts (default 6); Extra the versions it keeps writing
	// while the live migration runs (default 2).
	Checkpoints, Extra int
	// Size is the per-version payload size in bytes (default 1 MiB).
	Size int64
	// Interval is the compute time between checkpoints (default 10 ms).
	Interval time.Duration
	// InjectFault fails an early per-version migration copy through the
	// migrate fault site, exercising the retry path.
	InjectFault bool
	// StoreRoot backs the source and successor stores:
	// <root>/node0/local/rank0 and <root>/node1/migrated/rank0.
	StoreRoot string
	// Seed drives the deterministic payload generator.
	Seed int64
}

func (c MigrateConfig) withDefaults() MigrateConfig {
	if c.Checkpoints == 0 {
		c.Checkpoints = 6
	}
	if c.Extra == 0 {
		c.Extra = 2
	}
	if c.Size == 0 {
		c.Size = 1 << 20
	}
	if c.Interval == 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 2023
	}
	return c
}

// MigrateResult reports one scenario run.
type MigrateResult struct {
	// Versions is the total the rank wrote (Checkpoints + Extra).
	Versions int
	// Live is the report of the migration racing foreground traffic;
	// Final the incremental sync after the writer quiesced. Final must be
	// validated; Live may or may not be, depending on how the race fell.
	Live, Final score.MigrationReport
	// MigratedBytes totals what the two passes copied; InjectedFaults
	// counts copies the fault site failed (0 without InjectFault).
	MigratedBytes  int64
	InjectedFaults int64
	// RestoredVersions counts versions the successor restored bit-exactly
	// in phase two; Recoverable reports all of them making it.
	RestoredVersions int
	Recoverable      bool
}

func (c MigrateConfig) srcDir() string {
	return filepath.Join(c.StoreRoot, "node0", "local", "rank0")
}

func (c MigrateConfig) dstDir() string {
	return filepath.Join(c.StoreRoot, "node1", "migrated", "rank0")
}

// Migration runs the scenario. Deterministic: the same config (and
// StoreRoot contents) produces the identical result.
func Migration(cfg MigrateConfig) (MigrateResult, error) {
	cfg = cfg.withDefaults()
	if cfg.StoreRoot == "" {
		return MigrateResult{}, errors.New("experiments: MigrateConfig.StoreRoot required")
	}
	total := cfg.Checkpoints + cfg.Extra
	res := MigrateResult{Versions: total}

	// Phase one: write the base set, then race the live migration against
	// the writer's tail and a foreground restore stream.
	sim, err := score.NewSim(score.WithNodes(2), score.WithGPUsPerNode(1))
	if err != nil {
		return res, err
	}
	var rules []score.FaultRule
	if cfg.InjectFault {
		rules = append(rules, score.FailNth(score.FaultMigrate, 2))
	}
	inj := sim.NewFaultInjector(cfg.Seed, rules...)

	var runErr error
	sim.Run(func() {
		cl, err := sim.NewClient(0, 0,
			score.WithGPUCache(16*cfg.Size),
			score.WithHostCache(16*cfg.Size),
			score.WithAsyncHostInit(),
			score.WithStore(cfg.srcDir()),
			score.WithFaultInjector(inj))
		if err != nil {
			runErr = err
			return
		}
		defer cl.Close()
		write := func(v int64) error {
			if err := cl.Checkpoint(v, rankPayload(cfg.Seed, 0, v, cfg.Size)); err != nil {
				return fmt.Errorf("experiments: checkpoint %d: %w", v, err)
			}
			cl.Compute(cfg.Interval)
			return nil
		}
		for v := int64(0); v < int64(cfg.Checkpoints); v++ {
			if runErr = write(v); runErr != nil {
				return
			}
		}
		// Live pass: the migration, the writer's tail, and a restore
		// stream all contend on the same fabric.
		wg := sim.NewWaitGroup()
		var liveErr error
		wg.Add(1)
		sim.Clock().Go(func() {
			defer wg.Done()
			res.Live, liveErr = sim.MigrateRank(cl, 1, cfg.dstDir())
		})
		wg.Add(1)
		sim.Clock().Go(func() {
			defer wg.Done()
			for v := int64(0); v < int64(cfg.Checkpoints); v++ {
				if _, err := cl.Restart(v); err != nil {
					runErr = fmt.Errorf("experiments: foreground restart %d: %w", v, err)
					return
				}
				cl.Compute(cfg.Interval / 2)
			}
		})
		for v := int64(cfg.Checkpoints); v < int64(total); v++ {
			if runErr = write(v); runErr != nil {
				return
			}
		}
		if err := cl.WaitFlush(); err != nil {
			runErr = err
			return
		}
		wg.Wait()
		if liveErr != nil {
			// A live pass losing its convergence race to the writer is a
			// definitive, reported outcome — not silent divergence. The
			// final sync below must then finish the job.
			if !errors.Is(liveErr, score.ErrMigrationIncomplete) {
				runErr = liveErr
				return
			}
		}
		// Final sync on the quiesced store: incremental (only versions the
		// live pass missed move) and must validate.
		res.Final, err = sim.MigrateRank(cl, 1, cfg.dstDir())
		if err != nil {
			runErr = err
			return
		}
		res.MigratedBytes = res.Live.Bytes + res.Final.Bytes
		st := cl.Stats()
		res.InjectedFaults = inj.InjectedAt(score.FaultMigrate)
		if st.Migrations != 2 {
			runErr = fmt.Errorf("experiments: expected 2 migration passes in stats, got %d", st.Migrations)
		}
	})
	if runErr != nil {
		return res, runErr
	}
	if !res.Final.Validated {
		return res, fmt.Errorf("%w: final sync not validated", score.ErrMigrationIncomplete)
	}

	// Phase two: the successor node opens the migrated store and restores
	// every version against the regenerated reference.
	sim2, err := score.NewSim(score.WithNodes(2), score.WithGPUsPerNode(1))
	if err != nil {
		return res, err
	}
	sim2.Run(func() {
		cl, err := sim2.NewClient(1, 0,
			score.WithGPUCache(16*cfg.Size),
			score.WithHostCache(16*cfg.Size),
			score.WithStore(cfg.dstDir()))
		if err != nil {
			runErr = err
			return
		}
		defer cl.Close()
		if got := len(cl.RecoveredVersions()); got != total {
			runErr = fmt.Errorf("experiments: successor recovered %d versions, want %d", got, total)
			return
		}
		for v := int64(0); v < int64(total); v++ {
			got, err := cl.Restart(v)
			if err != nil {
				runErr = fmt.Errorf("experiments: successor restart %d: %w", v, err)
				return
			}
			if !bytes.Equal(got, rankPayload(cfg.Seed, 0, v, cfg.Size)) {
				runErr = fmt.Errorf("experiments: successor restored v%d with wrong bytes", v)
				return
			}
			res.RestoredVersions++
		}
		res.Recoverable = res.RestoredVersions == total
	})
	return res, runErr
}
