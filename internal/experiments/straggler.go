// Straggler scenario: the gray-failure robustness layer's headline
// question — when one deep link silently degrades (the drive that still
// answers, just 20× slower), how much restore tail latency does the
// hedging machinery shave off? The sweep writes a backlog through a
// healthy flush phase (calibrating the per-link-class health estimator
// at nominal speed), then degrades the node's NVMe link and restores
// everything, measuring per-restore blocking with hedging off and on.
// Hedged runs race the next-deeper replica (PFS) once a read blows past
// its adaptive deadline, and quarantine the slow tier outright when its
// EWMA slowdown breaches — so the tail is bounded by the PFS read time,
// not the straggler's.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"score"
	"score/internal/slo"
)

// StragglerConfig parameterizes one straggler sweep.
type StragglerConfig struct {
	// Checkpoints is the number of versions written and restored
	// (default 16).
	Checkpoints int
	// Size is the per-version payload size in bytes (default 64 MiB).
	Size int64
	// Interval is the compute time between writes and between restores
	// (default 5 ms).
	Interval time.Duration
	// Severities are the NVMe slowdown factors to sweep: a severity s
	// degrades the link to 1/s of nominal bandwidth for the whole
	// restore phase. Severity 1 is the healthy control (default
	// {1, 5, 20}).
	Severities []float64
	// GPUCache and HostCache size the cache tiers. Defaults hold only a
	// few versions so most restores must read from the durable ladder —
	// the path the straggler sits on.
	GPUCache, HostCache int64
	// FlushStreams sizes the flusher pool (default 2).
	FlushStreams int
	// Seed drives the injector schedule.
	Seed int64
	// Objectives, when non-empty, attaches an SLO engine per cell. Left
	// nil, the SetSLO default (the straggler restore-tail objective set)
	// applies.
	Objectives []slo.Objective
}

func (c StragglerConfig) withDefaults() StragglerConfig {
	if c.Checkpoints == 0 {
		c.Checkpoints = 16
	}
	if c.Size == 0 {
		c.Size = 64 << 20
	}
	if c.Interval == 0 {
		c.Interval = 5 * time.Millisecond
	}
	if len(c.Severities) == 0 {
		c.Severities = []float64{1, 5, 20}
	}
	if c.GPUCache == 0 {
		c.GPUCache = 4 * c.Size
	}
	if c.HostCache == 0 {
		c.HostCache = 4 * c.Size
	}
	if c.FlushStreams == 0 {
		c.FlushStreams = 2
	}
	if c.Seed == 0 {
		c.Seed = 2023
	}
	if c.Objectives == nil && sloEnabled() {
		c.Objectives = slo.StragglerObjectives()
	}
	return c
}

// StragglerCell is one (severity, hedging) run's restore-tail
// measurements.
type StragglerCell struct {
	// Severity is the NVMe slowdown factor this cell ran under.
	Severity float64
	// Hedged reports whether WithHedgedRestores was enabled.
	Hedged bool
	// Restores counts the measured restore calls; RestoredBytes their
	// payload total.
	Restores      int
	RestoredBytes int64
	// P50, P99 and Max summarize per-restore blocking time (the full
	// Restart call on the virtual clock).
	P50, P99, Max time.Duration
	// Hedge/stall/quarantine counters from the client's Stats at run
	// end. All zero when Hedged is false.
	HedgesLaunched, HedgeWins, HedgeWastedBytes int64
	StallsDetected, StallsRerouted              int64
	HealthQuarantines                           int64
	// SLO holds the cell's compliance report when the sweep ran with
	// objectives (nil otherwise). The degraded cells are where the
	// restore-tail objective fires; the healthy control must stay clean.
	SLO *slo.Report
}

// Label names the cell as in the table.
func (c StragglerCell) Label() string {
	mode := "unhedged"
	if c.Hedged {
		mode = "hedged"
	}
	return fmt.Sprintf("sev-%g-%s", c.Severity, mode)
}

// StragglerResult reports one sweep: cells in severity order, unhedged
// before hedged within each severity.
type StragglerResult struct {
	Config StragglerConfig
	Cells  []StragglerCell
}

// Cell returns the cell for (severity, hedged), or false when the sweep
// did not run it.
func (r StragglerResult) Cell(severity float64, hedged bool) (StragglerCell, bool) {
	for _, c := range r.Cells {
		if c.Severity == severity && c.Hedged == hedged {
			return c, true
		}
	}
	return StragglerCell{}, false
}

// Straggler runs the sweep. Deterministic: the same config reproduces
// identical cells.
func Straggler(cfg StragglerConfig) (StragglerResult, error) {
	cfg = cfg.withDefaults()
	res := StragglerResult{Config: cfg}
	for _, sev := range cfg.Severities {
		for _, hedged := range []bool{false, true} {
			cell, err := stragglerRun(cfg, sev, hedged)
			if err != nil {
				return res, fmt.Errorf("experiments: straggler %s: %w", cell.Label(), err)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// stragglerRun executes one cell: healthy write phase (calibrates the
// health estimator), degrade the NVMe link, restore newest-first, and
// report the blocking-time quantiles.
func stragglerRun(cfg StragglerConfig, severity float64, hedged bool) (StragglerCell, error) {
	cell := StragglerCell{Severity: severity, Hedged: hedged}
	sim, err := score.NewSim(score.WithNodes(1), score.WithGPUsPerNode(1))
	if err != nil {
		return cell, err
	}
	inj := sim.NewFaultInjector(cfg.Seed)

	// The SLO engine rides the cell's own virtual clock, watching the
	// restore critical paths the client feeds it. Each cell gets a fresh
	// engine: compliance is per (severity, hedging) run.
	var eng *slo.Engine
	if len(cfg.Objectives) > 0 {
		if eng, err = sim.NewSLOEngine(cfg.Objectives...); err != nil {
			return cell, err
		}
	}

	var runErr error
	sim.Run(func() {
		opts := []score.ClientOption{
			score.WithGPUCache(cfg.GPUCache),
			score.WithHostCache(cfg.HostCache),
			score.WithAsyncHostInit(),
			score.WithFlushStreams(cfg.FlushStreams),
			// PFS persistence gives every version the deeper replica the
			// hedge races against (and the quarantine reroutes to).
			score.WithPersistToPFS(),
			score.WithFaultInjector(inj),
		}
		if hedged {
			opts = append(opts, score.WithHedgedRestores())
		}
		if eng != nil {
			opts = append(opts, score.WithSLO(eng))
		}
		cl, err := sim.NewClient(0, 0, opts...)
		if err != nil {
			runErr = err
			return
		}
		defer cl.Close()

		// Healthy write phase: every version lands on SSD and PFS at
		// nominal speed, seeding the per-class latency floors the
		// adaptive hedge deadlines derive from.
		for v := int64(0); v < int64(cfg.Checkpoints); v++ {
			if err := cl.CheckpointVirtual(v, cfg.Size); err != nil {
				runErr = fmt.Errorf("checkpoint %d: %w", v, err)
				return
			}
			cl.Compute(cfg.Interval)
		}
		if err := cl.WaitFlush(); err != nil {
			runErr = fmt.Errorf("wait flush: %w", err)
			return
		}

		// The straggler appears: the NVMe link silently drops to 1/s of
		// nominal bandwidth for the whole restore phase. It never errors
		// — a pure gray fault.
		if severity > 1 {
			now := sim.Clock().Now()
			inj.Add(score.SlowLink(score.FaultNVMe, 1/severity, now, now+24*time.Hour))
		}

		// Backward pass: restore newest-first, timing each Restart call
		// on the virtual clock. The small caches force most reads onto
		// the degraded ladder.
		durs := make([]time.Duration, 0, cfg.Checkpoints)
		for v := int64(cfg.Checkpoints) - 1; v >= 0; v-- {
			t0 := sim.Clock().Now()
			if _, err := cl.Restart(v); err != nil {
				runErr = fmt.Errorf("restart %d: %w", v, err)
				return
			}
			durs = append(durs, sim.Clock().Now()-t0)
			cell.Restores++
			cell.RestoredBytes += cfg.Size
			cl.Compute(cfg.Interval)
		}

		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		cell.P50 = durs[len(durs)/2]
		cell.P99 = durs[(len(durs)*99)/100]
		cell.Max = durs[len(durs)-1]

		st := cl.Stats()
		cell.HedgesLaunched = st.HedgesLaunched
		cell.HedgeWins = st.HedgeWins
		cell.HedgeWastedBytes = st.HedgeWastedBytes
		cell.StallsDetected = st.StallsDetected
		cell.StallsRerouted = st.StallsRerouted
		cell.HealthQuarantines = st.HealthQuarantines

		if eng != nil {
			eng.Finalize()
			rep := eng.Report()
			if err := reconcileSLO(&rep, cl.MetricsSummary(), nil); err != nil {
				runErr = fmt.Errorf("slo conservation: %w", err)
				return
			}
			cell.SLO = &rep
			emitSLO("straggler/"+cell.Label(), rep)
		}

		if err := cl.CheckMetricsInvariants(false); err != nil {
			runErr = fmt.Errorf("metrics invariants: %w", err)
		}
	})
	return cell, runErr
}
