package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"score/internal/metrics"
	"score/internal/report"
)

// pipelineScale shrinks the pipeline experiment further than Small()
// so the unit test stays fast while both cases still flush through
// every tier.
func pipelineScale() Scale {
	s := Small()
	s.Snapshots = 24
	return s
}

func TestPipelineAttributesEveryDurableAndRestore(t *testing.T) {
	res, err := Pipeline(pipelineScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 2 {
		t.Fatalf("Pipeline returned %d cases, want 2", len(res.Cases))
	}
	for _, c := range res.Cases {
		sum := c.Merged()
		// Every durable version and every restore carries a complete
		// decomposition (the per-rank invariants already asserted the
		// counts and the zero unattributed gap; re-check the merged view).
		durCount, durTotal, _ := sum.CritPathBreakdown(metrics.CritDurable)
		if durCount != sum.DurableOps {
			t.Errorf("%s: %d durable attributions for %d durable versions", c.Name, durCount, sum.DurableOps)
		}
		restCount, _, _ := sum.CritPathBreakdown(metrics.CritRestore)
		if restCount != sum.RestoreOps {
			t.Errorf("%s: %d restore attributions for %d restores", c.Name, restCount, sum.RestoreOps)
		}
		if durCount == 0 || durTotal == 0 {
			t.Errorf("%s: no durable attribution recorded", c.Name)
		}
		if gap := sum.CritPathUnattributed(); gap != 0 {
			t.Errorf("%s: unattributed latency gap %v", c.Name, gap)
		}
		for _, rec := range sum.CritPaths {
			var compSum time.Duration
			for _, d := range rec.Components {
				compSum += d
			}
			if compSum+rec.Unattributed != rec.Total {
				t.Fatalf("%s: %s v%d components %v != total %v",
					c.Name, rec.Op, rec.Version, compSum, rec.Total)
			}
		}
	}

	// The chunked case folds the PCIe and SSD legs into one overlapped
	// stream; the monolithic case must show them as separate serialized
	// components.
	_, _, monoComps := res.Cases[0].Merged().CritPathBreakdown(metrics.CritDurable)
	if monoComps[metrics.CompXferPCIe] == 0 || monoComps[metrics.CompXferSSD] == 0 {
		t.Errorf("mono case missing serialized transfer components: %v", monoComps)
	}

	// The result renders and its attribution records round-trip through
	// the score-critpath/v1 envelope.
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pipeline/mono", "pipeline/chunked", metrics.CompXferSSD} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered pipeline result missing %q:\n%s", want, out)
		}
	}
	var file bytes.Buffer
	if err := report.WriteCritPaths(&file, res.CritPathRuns()); err != nil {
		t.Fatal(err)
	}
	runs, err := report.LoadCritPaths(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("round-trip kept %d runs, want 2", len(runs))
	}
	for i, run := range runs {
		if len(run.Records) == 0 {
			t.Errorf("run %d (%s) lost its records", i, run.Label)
		}
	}
}
