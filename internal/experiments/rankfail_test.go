package experiments

import (
	"reflect"
	"testing"
	"time"
)

// TestRankFailureWithPartnerCopyRecovers is the acceptance scenario: a
// full-node kill mid-flush, node SSD contents destroyed, yet the restart
// restores the newest globally committed version bit-exactly on every
// rank because the dead ranks' checkpoints survive on the partner node.
func TestRankFailureWithPartnerCopyRecovers(t *testing.T) {
	res, err := RankFailure(RankFailConfig{StoreRoot: t.TempDir(), PartnerCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recoverable {
		t.Fatalf("node kill with partner copy not recoverable: %+v", res)
	}
	if res.RestoredRanks != res.Ranks {
		t.Errorf("restored %d/%d ranks", res.RestoredRanks, res.Ranks)
	}
	if res.LatestConsistent < 0 {
		t.Errorf("no consistent version despite recovery: %+v", res)
	}
	if res.RankDeaths != int64(len(res.Killed)) {
		t.Errorf("rank deaths = %d, want %d", res.RankDeaths, len(res.Killed))
	}
	if res.PartnerCopies == 0 || res.PartnerCopyBytes == 0 {
		t.Errorf("no partner replication recorded: %+v", res)
	}
	// The kill landed mid-run: the committed frontier must trail the
	// survivors' newest version.
	if res.LatestConsistent >= 5 {
		t.Errorf("latest consistent %d — kill did not interrupt the job", res.LatestConsistent)
	}
}

// TestRankFailureWithoutPartnerCopyIsUnrecoverable: the same kill without
// replication must be reported unrecoverable — never wrong bytes, never a
// fabricated restart point.
func TestRankFailureWithoutPartnerCopyIsUnrecoverable(t *testing.T) {
	res, err := RankFailure(RankFailConfig{StoreRoot: t.TempDir(), PartnerCopy: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoverable || res.RestoredRanks != 0 {
		t.Fatalf("node kill without partner copy reported recoverable: %+v", res)
	}
	if res.LatestConsistent != -1 {
		t.Errorf("latest consistent = %d, want -1", res.LatestConsistent)
	}
	if res.RankDeaths != int64(len(res.Killed)) {
		t.Errorf("rank deaths = %d, want %d", res.RankDeaths, len(res.Killed))
	}
}

// TestRankFailureDeterministic: the same seed and config reproduce the
// identical result, including under a kill racing in-flight flushes.
func TestRankFailureDeterministic(t *testing.T) {
	cfg := RankFailConfig{
		PartnerCopy: true,
		Seed:        7,
		KillAt:      23 * time.Millisecond,
	}
	var prev RankFailResult
	for i := 0; i < 2; i++ {
		cfg.StoreRoot = t.TempDir()
		res, err := RankFailure(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && !reflect.DeepEqual(prev, res) {
			t.Fatalf("non-deterministic scenario:\nrun1: %+v\nrun2: %+v", prev, res)
		}
		prev = res
	}
}

// TestRankFailureSingleRankKill kills one GPU, not a node: the rank's
// local store survives the crash (process death, not disk death), so the
// job recovers even without partner copies.
func TestRankFailureSingleRankKill(t *testing.T) {
	res, err := RankFailure(RankFailConfig{
		StoreRoot:    t.TempDir(),
		KillRankOnly: true,
		PartnerCopy:  false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RankDeaths != 1 || len(res.Killed) != 1 {
		t.Fatalf("rank deaths = %d killed = %v, want one", res.RankDeaths, res.Killed)
	}
	if !res.Recoverable {
		t.Fatalf("single-rank kill with surviving SSD not recoverable: %+v", res)
	}
}
