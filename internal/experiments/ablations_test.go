package experiments

import (
	"strings"
	"testing"

	"score/internal/cachebuf"
)

func TestAblationsSmokeAndShapes(t *testing.T) {
	// tiny() with a roomier GPU cache: the split-cache variant halves
	// it, and each half must still hold the largest variable checkpoint.
	scale := tiny()
	scale.GPUCache *= 4
	abl, err := Ablations(scale)
	if err != nil {
		t.Fatal(err)
	}
	// One row per registered eviction policy plus the nine fixed
	// variants of the other principles.
	wantRows := len(cachebuf.Policies()) + 9
	if len(abl.Rows) != wantRows {
		t.Fatalf("ablation rows = %d, want %d", len(abl.Rows), wantRows)
	}
	byKey := map[string]AblationRow{}
	for _, r := range abl.Rows {
		byKey[r.Principle+"/"+r.Variant] = r
	}
	// Pre-allocation must beat on-demand on checkpoint throughput.
	pre := byKey["pre-allocation (§4.1.4)/preallocated"]
	ond := byKey["pre-allocation (§4.1.4)/on-demand"]
	if pre.CkptBps <= ond.CkptBps {
		t.Errorf("prealloc ckpt %.0f <= on-demand %.0f", pre.CkptBps, ond.CkptBps)
	}
	// At this reduced scale the io-wait difference can be small; allow
	// 10% tolerance (the full-scale run shows a clear 1.5x gap).
	if pre.IOWait > ond.IOWait*11/10 {
		t.Errorf("prealloc io-wait %v far above on-demand %v", pre.IOWait, ond.IOWait)
	}
	// The staged prefetcher must not be slower than serialized on the
	// SSD-tail shot.
	staged := byKey["multi-tier T_PF (§4.3.1)/staged"]
	serial := byKey["multi-tier T_PF (§4.3.1)/serialized"]
	if staged.RestBps < serial.RestBps*95/100 {
		t.Errorf("staged restore %.0f well below serialized %.0f", staged.RestBps, serial.RestBps)
	}
	// Chunked pipelining must not regress below monolithic on the
	// two-hop GPUDirect shot it is measured on.
	chunked := byKey["transfer pipelining (§4.3)/chunked"]
	mono := byKey["transfer pipelining (§4.3)/monolithic"]
	if chunked.CkptBps < mono.CkptBps {
		t.Errorf("chunked ckpt %.0f below monolithic %.0f", chunked.CkptBps, mono.CkptBps)
	}
	var b strings.Builder
	if err := abl.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "eviction policy") {
		t.Error("rendered table missing rows")
	}
}
