package experiments

import (
	"fmt"
	"io"
	"time"

	"score/internal/cachebuf"
	"score/internal/metrics"
	"score/internal/report"
	"score/internal/rtm"
)

// AblationRow is one measured ablation variant.
type AblationRow struct {
	Principle string
	Variant   string
	CkptBps   float64
	RestBps   float64
	IOWait    time.Duration
}

// AblationResult is the measured ablation study of the §4.1 design
// principles.
type AblationResult struct {
	Rows []AblationRow
}

// Render prints the ablation table.
func (a AblationResult) Render(w io.Writer) error {
	tab := report.NewTable("Ablations — §4.1 design principles (Score, all hints)",
		"principle", "variant", "ckpt", "restore", "io-wait")
	for _, r := range a.Rows {
		tab.AddRow(r.Principle, r.Variant,
			metrics.FormatBytesPerSec(r.CkptBps),
			metrics.FormatBytesPerSec(r.RestBps),
			r.IOWait.Round(time.Millisecond).String())
	}
	return tab.Render(w)
}

// Ablations measures each §4.1 design principle by disabling it and
// rerunning the workload where it matters most:
//
//   - eviction policy, shared cache, pinning, pre-allocation: the
//     irregular variable-size no-wait shot (the paper's hardest case);
//   - the multi-tier concurrent prefetcher: the uniform WAIT+reverse
//     shot, whose backward pass ends on an SSD-resident tail.
func Ablations(scale Scale) (AblationResult, error) {
	var out AblationResult

	irregular := func(mutate func(*ShotConfig)) (ShotResult, error) {
		cfg := ShotConfig{
			Uniform: false, WaitForFlush: false, Order: rtm.Irregular,
			Combo: Combo{Score, AllHints},
		}
		scale.Apply(&cfg)
		if mutate != nil {
			mutate(&cfg)
		}
		return RunShot(cfg)
	}
	add := func(principle, variant string, res ShotResult, err error) error {
		if err != nil {
			return fmt.Errorf("%s/%s: %w", principle, variant, err)
		}
		out.Rows = append(out.Rows, AblationRow{
			Principle: principle, Variant: variant,
			CkptBps: res.MeanCheckpointThroughput(),
			RestBps: res.MeanRestoreThroughput(),
			IOWait:  res.TotalIOWait(),
		})
		return nil
	}

	// §4.2 eviction policy — every registered policy, on the full client.
	for _, pol := range cachebuf.Policies() {
		pol := pol
		res, err := irregular(func(c *ShotConfig) { c.EvictionPolicy = pol })
		if err := add("eviction policy (§4.2)", pol.String(), res, err); err != nil {
			return out, err
		}
	}
	// §4.1.2 shared vs split cache.
	res, err := irregular(nil)
	if err := add("shared cache (§4.1.2)", "shared", res, err); err != nil {
		return out, err
	}
	res, err = irregular(func(c *ShotConfig) { c.SplitCache = true })
	if err := add("shared cache (§4.1.2)", "split", res, err); err != nil {
		return out, err
	}
	// §4.1.3 pinning.
	res, err = irregular(func(c *ShotConfig) { c.NoPinning = true })
	if err := add("pinning (§4.1.3)", "unpinned", res, err); err != nil {
		return out, err
	}
	// §4.1.4 pre-allocation.
	res, err = irregular(func(c *ShotConfig) { c.UpfrontHostInit = true })
	if err := add("pre-allocation (§4.1.4)", "preallocated", res, err); err != nil {
		return out, err
	}
	res, err = irregular(func(c *ShotConfig) { c.OnDemandAlloc = true })
	if err := add("pre-allocation (§4.1.4)", "on-demand", res, err); err != nil {
		return out, err
	}
	// §4.3.1 multi-tier T_PF (SSD-tail shot).
	tail := func(noStager bool) (ShotResult, error) {
		cfg := ShotConfig{
			Uniform: true, WaitForFlush: true, Order: rtm.Reverse,
			Combo: Combo{Score, AllHints},
		}
		scale.Apply(&cfg)
		cfg.NoHostStager = noStager
		return RunShot(cfg)
	}
	res, err = tail(false)
	if err := add("multi-tier T_PF (§4.3.1)", "staged", res, err); err != nil {
		return out, err
	}
	res, err = tail(true)
	if err := add("multi-tier T_PF (§4.3.1)", "serialized", res, err); err != nil {
		return out, err
	}
	// §4.3 chunked transfer pipelining, measured on the GPUDirect shot:
	// there every flush (GPU→SSD) and every promotion (SSD→GPU) crosses
	// two hops (PCIe + NVMe), so the chunk-level overlap is visible in
	// both directions end to end.
	pipelined := func(chunk int64) (ShotResult, error) {
		cfg := ShotConfig{
			Uniform: true, WaitForFlush: true, Order: rtm.Reverse,
			Combo: Combo{Score, AllHints},
		}
		scale.Apply(&cfg)
		cfg.GPUDirect = true
		cfg.ChunkSize = chunk
		return RunShot(cfg)
	}
	res, err = pipelined(0)
	if err := add("transfer pipelining (§4.3)", "monolithic", res, err); err != nil {
		return out, err
	}
	res, err = pipelined(scale.UniformSize / 8)
	if err := add("transfer pipelining (§4.3)", "chunked", res, err); err != nil {
		return out, err
	}
	return out, nil
}
