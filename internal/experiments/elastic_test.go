package experiments

import (
	"reflect"
	"testing"
)

// TestElasticShrink is the acceptance scenario in the shrink direction:
// 4 ranks' state re-sharded onto 2, every shard restored bit-exactly at
// the recomputed frontier, tracker seeded consistently at the new epoch.
func TestElasticShrink(t *testing.T) {
	res, err := Elastic(ElasticConfig{StoreRoot: t.TempDir(), FromRanks: 4, ToRanks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recoverable || res.RestoredShards != res.FromRanks {
		t.Fatalf("restored %d/%d shards: %+v", res.RestoredShards, res.FromRanks, res)
	}
	if res.Frontier != int64(3) {
		t.Errorf("frontier = %d, want 3 (clean shutdown commits every version)", res.Frontier)
	}
	if res.Committed != 4 {
		t.Errorf("committed = %d, want 4", res.Committed)
	}
	if !res.TrackerConsistent {
		t.Error("seeded tracker disagrees with the reshard frontier")
	}
}

// TestElasticGrow: the M > N direction — new ranks without a shard stay
// frontier-consistent, and every old shard still restores.
func TestElasticGrow(t *testing.T) {
	res, err := Elastic(ElasticConfig{StoreRoot: t.TempDir(), FromRanks: 2, ToRanks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recoverable || res.RestoredShards != 2 {
		t.Fatalf("restored %d/2 shards: %+v", res.RestoredShards, res)
	}
	if !res.TrackerConsistent {
		t.Error("grown membership's tracker disagrees with the reshard frontier")
	}
}

// TestElasticDeterministic: same config, fresh roots, identical result.
func TestElasticDeterministic(t *testing.T) {
	a, err := Elastic(ElasticConfig{StoreRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Elastic(ElasticConfig{StoreRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("elastic restart not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestElasticRequiresStoreRoot: the config contract is explicit.
func TestElasticRequiresStoreRoot(t *testing.T) {
	if _, err := Elastic(ElasticConfig{}); err == nil {
		t.Fatal("want error without StoreRoot")
	}
}
