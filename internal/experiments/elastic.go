// Elastic-restart scenario: re-shard checkpoint state written by N ranks
// onto a new membership of M ranks. Phase one runs an N-rank job to a
// group-committed frontier and shuts it down cleanly. Phase two is the
// restart recipe: scan each old shard's surviving store (ground truth),
// feed the reshard ledger, recompute the frontier for the new
// membership, seed an M-rank group-commit tracker at the new epoch, and
// have each new rank restore every shard it adopted bit-exactly at the
// frontier. Works in both directions — shrink (M < N) maps several
// shards onto one rank, grow (M > N) leaves some ranks shard-less but
// still frontier-consistent.
package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"score"
)

// ElasticConfig parameterizes one elastic-restart scenario.
type ElasticConfig struct {
	// FromRanks is the old membership size (default 4); ToRanks the new
	// one (default 2 — a shrink; set larger than FromRanks to grow).
	FromRanks, ToRanks int
	// Checkpoints is the number of versions each old rank writes
	// (default 4).
	Checkpoints int
	// Size is the per-version payload size in bytes (default 1 MiB).
	Size int64
	// Interval is the compute time between checkpoints (default 10 ms).
	Interval time.Duration
	// StoreRoot backs every shard's durable store (the rankfail layout:
	// <root>/node<i>/local/rank<r>).
	StoreRoot string
	// Seed drives the deterministic payload generator.
	Seed int64
}

func (c ElasticConfig) withDefaults() ElasticConfig {
	if c.FromRanks == 0 {
		c.FromRanks = 4
	}
	if c.ToRanks == 0 {
		c.ToRanks = 2
	}
	if c.Checkpoints == 0 {
		c.Checkpoints = 4
	}
	if c.Size == 0 {
		c.Size = 1 << 20
	}
	if c.Interval == 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 2023
	}
	return c
}

// ElasticResult reports one scenario run.
type ElasticResult struct {
	// FromRanks → ToRanks at Epoch is the membership transition.
	FromRanks, ToRanks, Epoch int
	// Committed counts versions every old shard holds; Frontier is the
	// newest (-1 when none) — the version the new membership restores.
	Committed int
	Frontier  int64
	// TrackerConsistent reports the seeded new-membership tracker
	// agreeing with the reshard ledger (LatestConsistent == Frontier at
	// the new epoch).
	TrackerConsistent bool
	// RestoredShards counts old shards restored bit-exactly at the
	// frontier by their adopting new rank; Recoverable means all of them.
	RestoredShards int
	Recoverable    bool
}

// Elastic runs the scenario. Deterministic: the same config (and
// StoreRoot contents) produces the identical result.
func Elastic(cfg ElasticConfig) (ElasticResult, error) {
	cfg = cfg.withDefaults()
	if cfg.StoreRoot == "" {
		return ElasticResult{}, errors.New("experiments: ElasticConfig.StoreRoot required")
	}
	res := ElasticResult{FromRanks: cfg.FromRanks, ToRanks: cfg.ToRanks, Epoch: 1, Frontier: -1}
	shardDir := func(shard int) string {
		rf := RankFailConfig{StoreRoot: cfg.StoreRoot, Nodes: 1, GPUsPerNode: cfg.FromRanks}
		return rf.localDir(0, shard)
	}

	// Phase one: the old membership writes to a group-committed frontier
	// and shuts down cleanly.
	sim, err := score.NewSim(score.WithNodes(1), score.WithGPUsPerNode(cfg.FromRanks))
	if err != nil {
		return res, err
	}
	tracker, err := sim.NewCommitTracker(cfg.FromRanks)
	if err != nil {
		return res, err
	}
	var runErr error
	sim.Run(func() {
		clients := make([]*score.Client, cfg.FromRanks)
		for rank := range clients {
			cl, err := sim.NewClient(0, rank,
				score.WithGPUCache(16*cfg.Size),
				score.WithHostCache(16*cfg.Size),
				score.WithAsyncHostInit(),
				score.WithStore(shardDir(rank)),
				score.WithCommitTracker(tracker, rank))
			if err != nil {
				runErr = err
				return
			}
			clients[rank] = cl
		}
		wg := sim.NewWaitGroup()
		for rank, cl := range clients {
			rank, cl := rank, cl
			wg.Add(1)
			sim.Clock().Go(func() {
				defer wg.Done()
				for v := int64(0); v < int64(cfg.Checkpoints); v++ {
					if err := cl.Checkpoint(v, rankPayload(cfg.Seed, rank, v, cfg.Size)); err != nil {
						runErr = fmt.Errorf("experiments: rank %d checkpoint %d: %w", rank, v, err)
						return
					}
					cl.Compute(cfg.Interval)
				}
				if err := cl.WaitFlush(); err != nil {
					runErr = err
				}
			})
		}
		wg.Wait()
		for _, cl := range clients {
			cl.Close()
		}
	})
	if runErr != nil {
		return res, runErr
	}

	// Phase two: the restart recipe. Scan each shard's store — ground
	// truth, not the old tracker's view — into the reshard ledger.
	reshard, err := score.NewReshard(cfg.FromRanks, cfg.ToRanks, res.Epoch)
	if err != nil {
		return res, err
	}
	for shard := 0; shard < cfg.FromRanks; shard++ {
		versions, err := score.StoreVersions(shardDir(shard))
		if err != nil {
			return res, fmt.Errorf("experiments: scanning shard %d: %w", shard, err)
		}
		for _, v := range versions {
			reshard.MarkShardDurable(shard, v)
		}
	}
	res.Committed = len(reshard.Committed())
	frontier, ok := reshard.Frontier()
	if !ok {
		return res, nil // nothing completely held: unrecoverable, reported as such
	}
	res.Frontier = frontier

	// The new membership: seed its tracker from the reshard and restore
	// every adopted shard at the frontier.
	sim2, err := score.NewSim(score.WithNodes(1), score.WithGPUsPerNode(cfg.ToRanks))
	if err != nil {
		return res, err
	}
	tracker2, err := sim2.NewCommitTrackerFrom(reshard)
	if err != nil {
		return res, err
	}
	if latest, ok := tracker2.LatestConsistent(); ok && latest == frontier && tracker2.Epoch() == res.Epoch {
		res.TrackerConsistent = true
	}
	sim2.Run(func() {
		for rank := 0; rank < cfg.ToRanks; rank++ {
			for _, shard := range reshard.ShardsOf(rank) {
				cl, err := sim2.NewClient(0, rank,
					score.WithGPUCache(16*cfg.Size),
					score.WithHostCache(16*cfg.Size),
					score.WithStore(shardDir(shard)))
				if err != nil {
					runErr = err
					return
				}
				got, err := cl.Restart(frontier)
				if err != nil {
					runErr = fmt.Errorf("experiments: rank %d restoring shard %d at v%d: %w", rank, shard, frontier, err)
					cl.Close()
					return
				}
				if !bytes.Equal(got, rankPayload(cfg.Seed, shard, frontier, cfg.Size)) {
					runErr = fmt.Errorf("experiments: shard %d restored v%d with wrong bytes", shard, frontier)
					cl.Close()
					return
				}
				res.RestoredShards++
				cl.Close()
			}
		}
	})
	res.Recoverable = runErr == nil && res.RestoredShards == cfg.FromRanks
	return res, runErr
}
