package experiments

// Eviction-policy ablation matrix: every registered cachebuf policy
// replayed against two access patterns with very different reuse
// structure, on the virtual clock, measuring cache hit rate and the
// restore-blocking latency a miss costs.
//
//   - "rtm": the paper's adjoint workload — forward checkpoint writes
//     fill the cache, then a reverse-order restore scan reads them
//     back. Reuse distance equals the full shot length; only the warm
//     tail can hit.
//   - "kv": an LLM-inference KV-cache reuse pattern ("Saving GPU Hours
//     in LLM Inference", PAPERS.md): many small sessions with
//     Zipf-skewed popularity, each turn re-reading the session's prefix
//     blocks before appending a new one, interleaved with one-shot scan
//     bursts (batch/RAG traffic) that pollute recency-only policies.
//
// The replay drives cachebuf.Buffer directly rather than the full
// client: every block is durable (always evictable, never pinned), so
// the policies differ only in what they keep. The oracle feeds the
// score policy next-use distances (the restore-order-queue analog), so
// it plays a Bélády-like hand; the DBMS policies see only the
// insert/touch event stream.

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"score/internal/cachebuf"
	"score/internal/metrics"
	"score/internal/report"
	"score/internal/simclock"
	"score/internal/slo"
)

// EvictCell is one (workload, policy) cell of the ablation matrix.
type EvictCell struct {
	Workload  string
	Policy    string
	Accesses  int
	Hits      int
	Evictions int64
	// MissBytes is the payload re-fetched from the lower tier.
	MissBytes int64
	// Blocking is total simulated restore-blocking time (miss stalls).
	Blocking time.Duration
	// SLO holds the cell's hit-rate compliance report when the matrix
	// ran with objectives (nil otherwise).
	SLO *slo.Report
}

// HitRate is the fraction of accesses served from the cache.
func (c EvictCell) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}

// MeanBlocking is the average restore-blocking stall per access.
func (c EvictCell) MeanBlocking() time.Duration {
	if c.Accesses == 0 {
		return 0
	}
	return c.Blocking / time.Duration(c.Accesses)
}

// EvictResult is the full policy × workload matrix.
type EvictResult struct {
	Cells []EvictCell
}

// Cell returns the (workload, policy) cell, if present.
func (r EvictResult) Cell(workload, policy string) (EvictCell, bool) {
	for _, c := range r.Cells {
		if c.Workload == workload && c.Policy == policy {
			return c, true
		}
	}
	return EvictCell{}, false
}

// BenchRecords converts the matrix into score-bench/v1 records
// (BENCH_evict.json): simulated blocking per access, miss payload, and
// the hit rate.
func (r EvictResult) BenchRecords() []report.BenchRecord {
	var recs []report.BenchRecord
	for _, c := range r.Cells {
		recs = append(recs, report.BenchRecord{
			Name:       fmt.Sprintf("evict/%s/%s", c.Workload, c.Policy),
			NsPerOp:    float64(c.MeanBlocking().Nanoseconds()),
			BytesMoved: c.MissBytes,
			HitRate:    c.HitRate(),
		})
	}
	return recs
}

// Render prints the matrix.
func (r EvictResult) Render(w io.Writer) error {
	tab := report.NewTable("Eviction ablation — policy × workload (hit rate, restore blocking)",
		"workload", "policy", "accesses", "hits", "hit rate", "evictions", "mean blocking")
	for _, c := range r.Cells {
		tab.AddRow(c.Workload, c.Policy, c.Accesses, c.Hits,
			fmt.Sprintf("%.1f%%", 100*c.HitRate()),
			c.Evictions,
			c.MeanBlocking().Round(time.Microsecond).String())
	}
	return tab.Render(w)
}

// evictAccess is one block access of a trace; insert marks first-writes
// (the checkpoint/prefill itself) that are not counted as lookups.
type evictAccess struct {
	id     cachebuf.ID
	insert bool
}

// evictTrace is a fully materialized access trace over uniform blocks.
type evictTrace struct {
	name     string
	accesses []evictAccess
	// capacityBlocks sizes the cache relative to the working set.
	capacityBlocks int
}

// rtmTrace is the adjoint pattern: n forward writes, then a reverse
// restore scan.
func rtmTrace(n int) evictTrace {
	tr := evictTrace{name: "rtm", capacityBlocks: n / 4}
	for i := 0; i < n; i++ {
		tr.accesses = append(tr.accesses, evictAccess{id: cachebuf.ID(i), insert: true})
	}
	for i := n - 1; i >= 0; i-- {
		tr.accesses = append(tr.accesses, evictAccess{id: cachebuf.ID(i)})
	}
	return tr
}

// kvTrace generates the KV-cache session workload: sessions are chosen
// Zipf-skewed, each turn replays the session's prefix blocks and
// appends one, and every scanEvery-th turn is a burst of one-shot
// blocks instead (prefill of a throwaway batch request).
func kvTrace(turns int, seed int64) evictTrace {
	const (
		sessions  = 48
		zipfS     = 1.3
		maxPrefix = 12
		scanEvery = 7
		scanLen   = 16
	)
	tr := evictTrace{name: "kv"}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, zipfS, 1, sessions-1)

	var nextID cachebuf.ID
	newBlock := func() cachebuf.ID {
		id := nextID
		nextID++
		return id
	}
	prefix := make([][]cachebuf.ID, sessions)
	for s := range prefix {
		// Every session starts with two context blocks (system prompt +
		// few-shot examples), written once up front.
		for k := 0; k < 2; k++ {
			b := newBlock()
			prefix[s] = append(prefix[s], b)
			tr.accesses = append(tr.accesses, evictAccess{id: b, insert: true})
		}
	}
	for turn := 0; turn < turns; turn++ {
		if turn%scanEvery == scanEvery-1 {
			// One-shot scan burst: fresh blocks, never touched again.
			for k := 0; k < scanLen; k++ {
				tr.accesses = append(tr.accesses, evictAccess{id: newBlock(), insert: true})
			}
			continue
		}
		s := int(zipf.Uint64())
		for _, b := range prefix[s] {
			tr.accesses = append(tr.accesses, evictAccess{id: b})
		}
		if len(prefix[s]) < maxPrefix {
			b := newBlock()
			prefix[s] = append(prefix[s], b)
			tr.accesses = append(tr.accesses, evictAccess{id: b, insert: true})
		}
	}
	// Cache ~an eighth of the distinct blocks: enough for the hot
	// sessions, far too small for the scan junk plus the long tail.
	tr.capacityBlocks = int(nextID) / 8
	return tr
}

// evictOracle: every block is durable (evictable immediately), nothing
// is pinned, and PrefetchDistance is the next-use distance of the block
// in the trace — the restore-order-queue hint stream the score policy
// consumes in the real client.
type evictOracle struct {
	pos     int
	nextUse map[cachebuf.ID][]int // ascending future access positions
}

func (o *evictOracle) Evictable(cachebuf.ID) bool { return true }
func (o *evictOracle) TimeToEvictable(cachebuf.ID) (time.Duration, bool) {
	return 0, true
}
func (o *evictOracle) PrefetchDistance(id cachebuf.ID) int {
	uses := o.nextUse[id]
	for len(uses) > 0 && uses[0] <= o.pos {
		uses = uses[1:]
	}
	o.nextUse[id] = uses
	if len(uses) == 0 {
		return cachebuf.GapDistance - 1
	}
	d := uses[0] - o.pos
	if d >= cachebuf.GapDistance {
		d = cachebuf.GapDistance - 1
	}
	return d
}
func (o *evictOracle) Evicted(cachebuf.ID) {}

// replayTrace runs one (trace, policy) cell on a fresh buffer and
// virtual clock. Uniform 1 MiB blocks; a miss stalls for the block's
// transfer time at the (scaled) host-link bandwidth before it lands.
func replayTrace(tr evictTrace, pol cachebuf.Policy, bw float64, objs []slo.Objective) (EvictCell, error) {
	const blockSize = 1 << 20
	cell := EvictCell{Workload: tr.name, Policy: pol.String()}

	o := &evictOracle{nextUse: map[cachebuf.ID][]int{}}
	for i, a := range tr.accesses {
		o.nextUse[a.id] = append(o.nextUse[a.id], i)
	}

	var replayErr error
	clk := simclock.NewVirtual()
	clk.Run(func() {
		capacity := int64(tr.capacityBlocks) * blockSize
		buf := cachebuf.New(clk, "evict-"+tr.name, capacity, o)
		if err := buf.SetPolicy(pol); err != nil {
			replayErr = err
			return
		}
		// The hit-rate objective rides the replay clock: hits are free
		// (same-instant batch), each miss advances time by its stall and
		// charges the lower-tier transfer as the bad event's component.
		var eng *slo.Engine
		if len(objs) > 0 {
			if eng, replayErr = slo.NewEngine(clk.Now, objs...); replayErr != nil {
				return
			}
		}
		missCost := time.Duration(float64(blockSize) / bw * float64(time.Second))
		for i, a := range tr.accesses {
			o.pos = i
			if _, _, ok := buf.Contains(a.id); ok {
				if !a.insert {
					cell.Accesses++
					cell.Hits++
					eng.Observe(slo.KindHitRate, true, nil)
				}
				buf.Touch(a.id)
				continue
			}
			if !a.insert {
				// Restore miss: blocking re-fetch from the lower tier.
				cell.Accesses++
				cell.MissBytes += blockSize
				start := clk.Now()
				clk.Sleep(missCost)
				cell.Blocking += clk.Now() - start
				eng.Observe(slo.KindHitRate, false,
					map[string]time.Duration{metrics.CompXferSSD: missCost})
			}
			if _, err := buf.TryReserve(a.id, blockSize); err != nil {
				replayErr = fmt.Errorf("access %d (id %d): %w", i, a.id, err)
				return
			}
		}
		cell.Evictions = buf.Snapshot().Evictions
		if eng != nil {
			eng.Finalize()
			rep := eng.Report()
			var fired, resolved int64
			for _, obj := range rep.Objectives {
				fired += obj.Fired
				resolved += obj.Resolved
			}
			warns, err := slo.CheckConservation(rep,
				map[slo.Kind]int64{slo.KindHitRate: int64(cell.Accesses)}, fired, resolved, 0)
			if err != nil {
				replayErr = fmt.Errorf("slo conservation: %w", err)
				return
			}
			rep.Warnings = append(rep.Warnings, warns...)
			cell.SLO = &rep
			emitSLO(fmt.Sprintf("evict/%s/%s", cell.Workload, cell.Policy), rep)
		}
	})
	return cell, replayErr
}

// EvictionMatrix runs every registered policy against both workloads.
func EvictionMatrix(scale Scale) (EvictResult, error) {
	// Trace sizes follow the scale's snapshot count; bandwidth follows
	// its link scaling (2 GB/s host link at full scale).
	rtmN := scale.Snapshots * 2
	kvTurns := scale.Snapshots * 6
	bw := 2e9 * scale.Bandwidth

	traces := []evictTrace{rtmTrace(rtmN), kvTrace(kvTurns, 1)}
	var objs []slo.Objective
	if sloEnabled() {
		objs = slo.EvictObjectives()
	}
	var out EvictResult
	for _, tr := range traces {
		for _, pol := range cachebuf.Policies() {
			cell, err := replayTrace(tr, pol, bw, objs)
			if err != nil {
				return out, fmt.Errorf("%s/%s: %w", tr.name, pol, err)
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}
