// Preemption-drain scenario: the scheduling-events robustness layer's
// headline question — when the scheduler says "this rank is reclaimed in
// G seconds", how much of the resident checkpoint backlog can the tier
// ladder make durable inside the window? The sweep runs one rank with a
// multi-version backlog against a ladder of grace windows; each run ends
// with a complete drain manifest (durable vs. explicitly abandoned —
// never a flush left in flight past the deadline), and the cells report
// the deadline-hit rate and drain throughput per window. The paper-scale
// default asks the ISSUE's calibration question: 12 × 4 GiB = 48 GiB of
// backlog against windows from 2 s to 30 s on DGX-A100 bandwidths.
package experiments

import (
	"errors"
	"fmt"
	"time"

	"score"
	"score/internal/fabric"
	"score/internal/slo"
)

// PreemptConfig parameterizes one preemption-drain sweep.
type PreemptConfig struct {
	// Checkpoints is the backlog depth (versions written before or while
	// the notice lands; default 12).
	Checkpoints int
	// Size is the per-version payload size in bytes (default 4 GiB).
	Size int64
	// Interval is the compute time between writes (default 10 ms) — the
	// backlog builds because writes outpace the flush chain.
	Interval time.Duration
	// Windows are the grace windows to sweep (default 2 s, 5 s, 15 s,
	// 30 s).
	Windows []time.Duration
	// Runs is the number of seeded runs per window; each run varies when
	// in the write phase the notice lands (default 3).
	Runs int
	// FlushStreams sizes the flusher pool — also the drain triage's
	// parallelism (default 4).
	FlushStreams int
	// GPUCache and HostCache size the two cache tiers. Defaults hold the
	// whole backlog plus slack, except the GPU tier is capped at 36 GiB —
	// inside the A100's 40 GiB HBM — so the paper-scale 48 GiB backlog
	// spreads across the ladder the way a real job's would.
	GPUCache, HostCache int64
	// Seed drives the per-run schedules.
	Seed int64
	// Objectives, when non-empty, attaches a sweep-level SLO engine: each
	// run contributes one DeadlineMet observation on a synthetic
	// one-second-per-run timeline (the runs live on separate virtual
	// clocks, so the sweep index is the only shared time axis). Left nil,
	// the SetSLO default (the drain-hit-ratio objective) applies.
	Objectives []slo.Objective
}

func (c PreemptConfig) withDefaults() PreemptConfig {
	if c.Checkpoints == 0 {
		c.Checkpoints = 12
	}
	if c.Size == 0 {
		c.Size = 4 << 30
	}
	if c.Interval == 0 {
		c.Interval = 10 * time.Millisecond
	}
	if len(c.Windows) == 0 {
		c.Windows = []time.Duration{2 * time.Second, 5 * time.Second, 15 * time.Second, 30 * time.Second}
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.FlushStreams == 0 {
		c.FlushStreams = 4
	}
	if c.GPUCache == 0 {
		c.GPUCache = int64(c.Checkpoints+2) * c.Size
		if cap := int64(36) << 30; c.GPUCache > cap {
			c.GPUCache = cap
		}
	}
	if c.HostCache == 0 {
		c.HostCache = int64(c.Checkpoints+2) * c.Size
	}
	if c.Seed == 0 {
		c.Seed = 2023
	}
	if c.Objectives == nil && sloEnabled() {
		c.Objectives = slo.PreemptObjectives()
	}
	return c
}

// PreemptCell aggregates the runs of one grace window.
type PreemptCell struct {
	// Window is the grace the notice granted.
	Window time.Duration
	// Runs and DeadlineHits count the window's runs and how many drains
	// finished inside the grace.
	Runs, DeadlineHits int
	// Byte tallies summed over the window's manifests: DurableBytes is
	// everything durable at drain end, DrainedBytes the subset the triage
	// itself flushed, AbandonedBytes what was failed open to explicit
	// loss, DiscardedBytes dropped discardable flushes.
	DurableBytes, DrainedBytes, AbandonedBytes, DiscardedBytes int64
	// DrainTime sums the actual notice-to-finish drain durations.
	DrainTime time.Duration
}

// HitRate is the fraction of runs whose drain met the deadline.
func (c PreemptCell) HitRate() float64 {
	if c.Runs == 0 {
		return 0
	}
	return float64(c.DeadlineHits) / float64(c.Runs)
}

// DrainThroughput is the sweep's headline rate: GB the triage made
// durable per second of granted grace window.
func (c PreemptCell) DrainThroughput() float64 {
	grace := c.Window.Seconds() * float64(c.Runs)
	if grace <= 0 {
		return 0
	}
	return float64(c.DrainedBytes) / 1e9 / grace
}

// PreemptResult reports one sweep.
type PreemptResult struct {
	Config PreemptConfig
	// Cells holds one row per grace window, in sweep order.
	Cells []PreemptCell
	// SampleManifest is the first run's full manifest — the artifact the
	// scheduler (and EXPERIMENTS.md) shows per version.
	SampleManifest score.DrainManifest
	// SLO holds the sweep-level compliance report when Objectives was set
	// (nil otherwise).
	SLO *slo.Report
}

// Preemption runs the sweep. Deterministic: the same config reproduces
// identical cells and manifests.
func Preemption(cfg PreemptConfig) (PreemptResult, error) {
	cfg = cfg.withDefaults()
	res := PreemptResult{Config: cfg}
	// The sweep-level drain objective watches the DeadlineMet stream
	// across every (window, run) pair on a synthetic timeline advancing
	// one second per run — tight grace windows early in the sweep burn
	// budget, generous ones later pay it back.
	var eng *slo.Engine
	var step int64
	if len(cfg.Objectives) > 0 {
		e, err := slo.NewEngine(func() time.Duration {
			return time.Duration(step) * time.Second
		}, cfg.Objectives...)
		if err != nil {
			return res, err
		}
		eng = e
	}
	for _, w := range cfg.Windows {
		cell := PreemptCell{Window: w}
		for r := 0; r < cfg.Runs; r++ {
			m, err := preemptRun(cfg, w, r)
			if err != nil {
				return res, err
			}
			if !m.Complete() {
				return res, fmt.Errorf("experiments: window %v run %d: incomplete drain manifest: %s", w, r, m)
			}
			cell.Runs++
			if m.DeadlineMet {
				cell.DeadlineHits++
			}
			cell.DurableBytes += m.DurableBytes
			cell.AbandonedBytes += m.AbandonedBytes
			cell.DiscardedBytes += m.DiscardedBytes
			for _, e := range m.Entries {
				if e.Outcome == score.DrainFlushed {
					cell.DrainedBytes += e.Size
				}
			}
			cell.DrainTime += m.Finished - m.Started
			if res.SampleManifest.Entries == nil {
				res.SampleManifest = m
			}
			if eng != nil {
				step++
				eng.ObserveDrain(m.DeadlineMet)
			}
		}
		res.Cells = append(res.Cells, cell)
	}
	if eng != nil {
		eng.Finalize()
		rep := eng.Report()
		var fired, resolved int64
		for _, o := range rep.Objectives {
			fired += o.Fired
			resolved += o.Resolved
		}
		// No ledger rides the synthetic timeline: feed the report's own
		// tallies so that leg of the check is vacuously true, and hold
		// the event counts strictly to the number of runs.
		warns, err := slo.CheckConservation(rep,
			map[slo.Kind]int64{slo.KindDrainDeadline: step}, fired, resolved, 0)
		if err != nil {
			return res, fmt.Errorf("experiments: preempt slo conservation: %w", err)
		}
		rep.Warnings = append(rep.Warnings, warns...)
		res.SLO = &rep
		emitSLO("preempt", rep)
	}
	return res, nil
}

// preemptRun executes one seeded run: build the backlog, let the
// injector-scheduled notice land mid-phase, and return the manifest the
// drain timer retained.
func preemptRun(cfg PreemptConfig, grace time.Duration, run int) (score.DrainManifest, error) {
	sim, err := score.NewSim(score.WithNodes(1), score.WithGPUsPerNode(1))
	if err != nil {
		return score.DrainManifest{}, err
	}
	inj := sim.NewFaultInjector(cfg.Seed + int64(run))
	// Slide the notice across the write phase: early notices drain a
	// shallow backlog, the last run's the full one. Each write costs the
	// compute interval plus the D2D snapshot copy, so the phase estimate
	// must include both or late notices land mid-backlog.
	d2d := time.Duration(float64(cfg.Size) / fabric.DGXA100().D2DBandwidth * float64(time.Second))
	writePhase := time.Duration(cfg.Checkpoints) * (cfg.Interval + d2d)
	noticeAt := time.Duration(float64(writePhase) * float64(run+1) / float64(cfg.Runs))
	if noticeAt <= 0 {
		noticeAt = cfg.Interval / 2
	}
	inj.AddPreempts(score.PreemptRank(0, 0, noticeAt, grace))

	var m score.DrainManifest
	var ok bool
	var runErr error
	sim.Run(func() {
		cl, err := sim.NewClient(0, 0,
			score.WithGPUCache(cfg.GPUCache),
			score.WithHostCache(cfg.HostCache),
			score.WithAsyncHostInit(),
			score.WithFlushStreams(cfg.FlushStreams),
			score.WithFaultInjector(inj))
		if err != nil {
			runErr = err
			return
		}
		for v := int64(0); v < int64(cfg.Checkpoints); v++ {
			if err := cl.CheckpointVirtual(v, cfg.Size); err != nil {
				break // the notice (or the reclaim) landed: stop writing
			}
			cl.Compute(cfg.Interval)
		}
		// Sleep past the reclaim so the drain timer has certainly finished;
		// the slack also covers a deadline-missing drain's tail.
		horizon := noticeAt + grace + 2*time.Second
		if d := horizon - sim.Clock().Now(); d > 0 {
			sim.Clock().Sleep(d)
		}
		m, ok = cl.DrainManifest()
		cl.Close()
	})
	if runErr != nil {
		return m, runErr
	}
	if !ok {
		return m, errors.New("experiments: preemption notice produced no drain manifest")
	}
	return m, nil
}
