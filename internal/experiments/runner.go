// Package experiments reproduces the paper's evaluation (§5): it wires
// clusters, devices, and the three compared runtimes (ADIOS2, optimized
// UVM, Score) into the RTM shot benchmark, and provides one driver per
// table and figure. All experiments run on the deterministic virtual
// clock, so a full paper-scale shot (48 GB per GPU, 8–32 GPUs) completes
// in wall-clock milliseconds while reproducing the contention behavior of
// the real testbed.
package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"score/internal/adiossim"
	"score/internal/cachebuf"
	"score/internal/core"
	"score/internal/device"
	"score/internal/fabric"
	"score/internal/metrics"
	"score/internal/payload"
	"score/internal/rtm"
	"score/internal/simclock"
	"score/internal/slo"
	"score/internal/trace"
	"score/internal/uvmsim"
)

// Approach identifies a compared runtime (§5.2).
type Approach int

const (
	// ADIOS2 is the BP5 deferred-I/O baseline.
	ADIOS2 Approach = iota
	// UVM is the optimized unified-virtual-memory baseline.
	UVM
	// Score is the paper's proposal.
	Score
)

// String names the approach as in the figures.
func (a Approach) String() string {
	switch a {
	case ADIOS2:
		return "ADIOS2"
	case UVM:
		return "UVM"
	case Score:
		return "Score"
	}
	return fmt.Sprintf("Approach(%d)", int(a))
}

// HintMode is the degree of foreknowledge (Table 1).
type HintMode int

const (
	// NoHints: direct reads, no foreknowledge.
	NoHints HintMode = iota
	// SingleHint: one hint at a time, issued an iteration ahead.
	SingleHint
	// AllHints: the full restore order is known in advance.
	AllHints
)

// String names the hint mode as in Table 1.
func (h HintMode) String() string {
	switch h {
	case NoHints:
		return "No hints"
	case SingleHint:
		return "Single hint"
	case AllHints:
		return "All hints"
	}
	return fmt.Sprintf("HintMode(%d)", int(h))
}

// Combo is one Table 1 row: an approach with a hint budget.
type Combo struct {
	Approach Approach
	Hints    HintMode
}

// Label renders the Table 1 row name.
func (c Combo) Label() string { return fmt.Sprintf("%s, %s", c.Hints, c.Approach) }

// Table1 returns the seven compared configurations of Table 1.
func Table1() []Combo {
	return []Combo{
		{ADIOS2, NoHints},
		{UVM, NoHints},
		{Score, NoHints},
		{UVM, SingleHint},
		{Score, SingleHint},
		{UVM, AllHints},
		{Score, AllHints},
	}
}

// Runtime is the contract the shot driver needs; all three approaches
// satisfy it.
type Runtime interface {
	Checkpoint(id int64, pay payload.Payload) error
	Restore(id int64) (payload.Payload, error)
	PrefetchEnqueue(id int64)
	PrefetchStart()
	WaitFlush() error
	Metrics() *metrics.Recorder
	Err() error
	Close()
}

// scoreRuntime adapts core.Client's typed IDs to the Runtime contract.
type scoreRuntime struct{ *core.Client }

func (s scoreRuntime) Checkpoint(id int64, pay payload.Payload) error {
	return s.Client.Checkpoint(core.ID(id), pay)
}
func (s scoreRuntime) Restore(id int64) (payload.Payload, error) {
	return s.Client.Restore(core.ID(id))
}
func (s scoreRuntime) PrefetchEnqueue(id int64) { s.Client.PrefetchEnqueue(core.ID(id)) }

// ShotConfig describes one benchmark run (§5.3).
type ShotConfig struct {
	// Nodes and GPUsPerNode give the process count (§5.1: up to 4 nodes
	// × 8 GPUs).
	Nodes, GPUsPerNode int
	// Node is the interconnect model (defaults to DGXA100).
	Node fabric.NodeConfig
	// HBMPerGPU is the device memory size (A100: 40 GiB).
	HBMPerGPU int64

	// Snapshots per shot and their sizes: Uniform uses UniformSize for
	// every snapshot; otherwise Trace generates variable sizes.
	Snapshots   int
	Uniform     bool
	UniformSize int64
	Trace       rtm.TraceConfig

	// Order is the backward-pass restore order.
	Order rtm.Order
	// Interval is the compute time between consecutive checkpoints and
	// between consecutive restores (paper default: 10 ms).
	Interval time.Duration
	// WaitForFlush inserts a full flush drain between the forward and
	// backward passes (Fig. 5) instead of restoring immediately
	// (Fig. 6).
	WaitForFlush bool
	// TightlyCoupled adds a barrier across all processes at every
	// iteration (Fig. 9a).
	TightlyCoupled bool

	// GPUCache and HostCache are the per-process cache reservations
	// (§5.3.4 defaults: 4 GiB and 32 GiB).
	GPUCache, HostCache int64

	// Combo selects the runtime and hint budget.
	Combo Combo
	// Label, when set, overrides the auto-generated result label
	// (combo + phase-coupling mode) in metric and attribution exports —
	// used by drivers that run the same combo in several variants (the
	// pipeline experiment's mono vs chunked cases).
	Label string
	// Seed controls trace generation and irregular orders.
	Seed int64
	// BWScale scales every link bandwidth (for reduced-scale runs whose
	// data sizes shrink by the same factor, preserving the paper's
	// bandwidth-to-working-set ratios). 0 or 1 means paper bandwidths.
	BWScale float64

	// Extension knobs (Score only): the paper's future-work items.
	// SharedHostPerNode pools the host caches of a node's clients;
	// GPUDirect bypasses the host tier entirely.
	SharedHostPerNode bool
	GPUDirect         bool
	// ChunkSize enables chunked multi-hop transfer pipelining (§4.3);
	// 0 keeps monolithic transfers (or the SetDefaultChunkSize default
	// when one is installed; pass a negative value to force monolithic
	// transfers regardless). FlushStreams sizes the flusher worker
	// pools (0 = automatic). Score only.
	ChunkSize    int64
	FlushStreams int

	// Ablation knobs (Score only).
	SplitCache, NoPinning, OnDemandAlloc, NoHostStager bool
	// UpfrontHostInit charges the pinned host cache registration during
	// client construction (before the measured shot) instead of
	// overlapping it with the run — the §4.1.4 pre-allocation design in
	// its pure form, used by the allocation ablation.
	UpfrontHostInit bool
	EvictionPolicy  cachebuf.Policy

	// SampleInterval, when positive, runs a virtual-clock sampler over
	// the shot that records cache occupancy, score means, flush queue
	// depths and copy-engine occupancy per Score rank, plus in-flight
	// count and cumulative busy time per fabric link, every interval.
	// The series land in ShotResult.Series.
	SampleInterval time.Duration
	// SeriesCapacity bounds each sampled series ring buffer (0 takes
	// metrics.DefaultSeriesCapacity).
	SeriesCapacity int
	// Tracer, when set, receives span events from Score ranks and — with
	// sampling enabled — every sample as a Chrome-trace counter event.
	Tracer *trace.Tracer

	// Objectives, when non-empty, attaches an SLO engine evaluating them
	// over the shot on its virtual clock (Score combos only — the
	// baselines have no critical-path cursor to attribute from). Left
	// nil, the SetSLO default set applies.
	Objectives []slo.Objective
	// slo is the engine runShot builds from Objectives, carried in the
	// config so buildRuntime can hand it to each rank's runtime.
	slo *slo.Engine

	// ParallelSim runs independent ranks' same-instant wakeups (compute
	// phases ending on the same virtual instant) concurrently on the real
	// scheduler instead of one at a time. Off by default: the serial
	// one-at-a-time ordering is the byte-determinism contract the goldens
	// pin. Engine-level observables are provably order-independent
	// (commutative atomic accounting, deterministically re-sorted
	// ledgers — see TestSimDeterminismSerialVsParallel), but the full
	// runtime makes order-dependent decisions at same-instant races
	// (eviction picks, admission order), so shot results may differ
	// slightly from the serial run. Use it for wall-clock speed on big
	// sweeps, never for golden comparisons. See simclock.WithParallelWake
	// for the mechanism.
	ParallelSim bool
}

// defaultSampleInterval is applied to every ShotConfig that does not
// set its own SampleInterval — the knob ckptbench's -sample flag turns
// without threading a value through each figure driver.
var defaultSampleInterval time.Duration

// SetDefaultSampleInterval makes every subsequent shot whose config
// leaves SampleInterval zero sample its gauges at d (0 disables). Not
// safe to change while shots are running.
func SetDefaultSampleInterval(d time.Duration) { defaultSampleInterval = d }

// defaultChunkSize mirrors defaultSampleInterval for the chunked-transfer
// knob: ckptbench's -chunk flag sets it once instead of threading a value
// through each figure driver.
var defaultChunkSize int64

// SetDefaultChunkSize makes every subsequent shot whose config leaves
// ChunkSize zero stream transfers in chunks of n bytes (0 keeps the
// monolithic transfers). Not safe to change while shots are running.
func SetDefaultChunkSize(n int64) { defaultChunkSize = n }

// defaultTraceSink mirrors defaultSampleInterval for the tracing knob.
// A tracer timestamps from one clock, and every shot runs on a fresh
// virtual clock, so a single process-wide tracer cannot span shots;
// instead the runner builds one tracer per shot on that shot's clock
// and hands it to the sink when the shot completes.
var defaultTraceSink func(label string, t *trace.Tracer)

// SetDefaultTraceSink enables per-shot tracing: every subsequent shot
// whose config leaves Tracer nil records spans, lifecycle-ledger
// events, and sampled counters into a fresh bounded tracer, delivered
// to fn (with the shot's label) after the shot completes — the hook
// ckptbench's -trace-out flag uses to export Chrome traces without
// threading a tracer through each figure driver. nil disables. Not
// safe to change while shots are running.
func SetDefaultTraceSink(fn func(label string, t *trace.Tracer)) { defaultTraceSink = fn }

// defaultParallelSim mirrors defaultSampleInterval for the parallel
// simulation knob: ckptbench's -parallel-sim flag sets it once instead
// of threading it through each figure driver.
var defaultParallelSim bool

// SetDefaultParallelSim makes every subsequent shot whose config leaves
// ParallelSim false wake same-instant cohorts in parallel (see
// ShotConfig.ParallelSim). Not safe to change while shots are running.
func SetDefaultParallelSim(on bool) { defaultParallelSim = on }

// defaultSLO mirrors defaultSampleInterval for the SLO knob: ckptbench's
// -slo flag sets it once, and every scenario that leaves Objectives nil
// evaluates its checked-in default objective set (internal/slo
// defaults.go).
var defaultSLO bool

// SetSLO makes every subsequent scenario that does not carry explicit
// objectives evaluate its checked-in default set (false disables). Not
// safe to change while scenarios are running.
func SetSLO(on bool) { defaultSLO = on }

// sloEnabled reports the SetSLO knob to the non-shot scenario drivers.
func sloEnabled() bool { return defaultSLO }

// sloObserver, when set, receives every scenario's end-of-run SLO
// report — the hook ckptbench's -slo flag uses to collect the
// compliance table without threading a collector through each driver.
var sloObserver func(label string, rep slo.Report)

// SetSLOObserver installs fn as the SLO report hook (nil removes it).
// Not safe to change while scenarios are running.
func SetSLOObserver(fn func(label string, rep slo.Report)) { sloObserver = fn }

// emitSLO hands a labeled report to the observer, if any.
func emitSLO(label string, rep slo.Report) {
	if sloObserver != nil {
		sloObserver(label, rep)
	}
}

// SLOLedgerRank is the flight-recorder rank SLO alert transitions are
// recorded under: they are run-scoped, not per-rank, so they live on a
// synthetic rank outside the real range.
const SLOLedgerRank = -1

// withDefaults fills the paper's defaults.
func (c ShotConfig) withDefaults() ShotConfig {
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.GPUsPerNode == 0 {
		c.GPUsPerNode = 8
	}
	if c.Node.GPUs == 0 {
		c.Node = fabric.DGXA100()
		c.Node.GPUs = c.GPUsPerNode
	}
	if c.HBMPerGPU == 0 {
		c.HBMPerGPU = 40 * fabric.GB
	}
	if c.Snapshots == 0 {
		c.Snapshots = 384
	}
	if c.UniformSize == 0 {
		c.UniformSize = 128 << 20
	}
	if c.Trace.Snapshots == 0 {
		c.Trace = rtm.DefaultTraceConfig()
	}
	c.Trace.Snapshots = c.Snapshots
	if c.Interval == 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.GPUCache == 0 {
		c.GPUCache = 4 * fabric.GB
	}
	if c.HostCache == 0 {
		c.HostCache = 32 * fabric.GB
	}
	if c.Seed == 0 {
		c.Seed = 2023
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = defaultSampleInterval
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = defaultChunkSize
	}
	if !c.ParallelSim {
		c.ParallelSim = defaultParallelSim
	}
	if c.Objectives == nil && defaultSLO {
		c.Objectives = slo.ShotObjectives()
	}
	if c.ChunkSize < 0 {
		c.ChunkSize = 0 // explicit "force monolithic" marker
	}
	if c.BWScale > 0 && c.BWScale != 1 {
		c.Node.D2DBandwidth *= c.BWScale
		c.Node.PCIeBandwidth *= c.BWScale
		c.Node.NVMePerDrive *= c.BWScale
		c.Node.PFSBandwidth *= c.BWScale
		if c.Node.NICBandwidth > 0 {
			c.Node.NICBandwidth *= c.BWScale
		}
	}
	return c
}

// RankResult is one process's measurements.
type RankResult struct {
	Rank    int
	Summary metrics.Summary
}

// ShotResult aggregates a run.
type ShotResult struct {
	Config   ShotConfig
	PerRank  []RankResult
	Duration time.Duration // simulated makespan
	// Series holds the sampled time series when Config.SampleInterval
	// was set (nil otherwise).
	Series map[string][]metrics.Sample
	// SLO holds the engine's end-of-run report when Config.Objectives
	// was set on a Score combo (nil otherwise).
	SLO *slo.Report
}

// Label names the run for metric exports: the Table 1 combo plus the
// phase-coupling mode.
func (r ShotResult) Label() string {
	if r.Config.Label != "" {
		return r.Config.Label
	}
	mode := "immediate-restore"
	if r.Config.WaitForFlush {
		mode = "drained-restore"
	}
	return fmt.Sprintf("%s (%s)", r.Config.Combo.Label(), mode)
}

// MergedSummary folds every rank's summary into one (histograms merge
// bucket-by-bucket; counters add).
func (r ShotResult) MergedSummary() metrics.Summary {
	parts := make([]metrics.Summary, 0, len(r.PerRank))
	for _, rr := range r.PerRank {
		parts = append(parts, rr.Summary)
	}
	return metrics.Merge(parts...)
}

// shotObserver, when set, receives every completed shot — the hook the
// ckptbench exporter uses to aggregate metrics across the experiment
// drivers without threading a registry through each of them.
var shotObserver func(ShotResult)

// SetShotObserver installs fn as the completed-shot hook (nil removes
// it). Not safe to change while shots are running.
func SetShotObserver(fn func(ShotResult)) { shotObserver = fn }

// MeanCheckpointThroughput is the per-GPU application-observed write
// throughput, computed as the aggregate ratio (total bytes over total
// blocking time across ranks — the harmonic mean of per-rank rates).
// The arithmetic mean of per-rank ratios is unstable: one rank whose
// restores all hit the cache divides by near-zero blocking and dominates
// the average, so the figures report the aggregate ratio.
func (r ShotResult) MeanCheckpointThroughput() float64 {
	var bytes int64
	var blocked time.Duration
	for _, rr := range r.PerRank {
		bytes += rr.Summary.CheckpointBytes
		blocked += rr.Summary.CheckpointBlocked
	}
	return ratio(bytes, blocked)
}

// MeanRestoreThroughput is the per-GPU read throughput (aggregate ratio;
// see MeanCheckpointThroughput).
func (r ShotResult) MeanRestoreThroughput() float64 {
	var bytes int64
	var blocked time.Duration
	for _, rr := range r.PerRank {
		bytes += rr.Summary.RestoreBytes
		blocked += rr.Summary.RestoreBlocked
	}
	return ratio(bytes, blocked)
}

func ratio(bytes int64, blocked time.Duration) float64 {
	if blocked <= 0 {
		if bytes > 0 {
			return float64(bytes) * 1e9
		}
		return 0
	}
	return float64(bytes) / blocked.Seconds()
}

// TotalIOWait sums blocked time across ranks and phases.
func (r ShotResult) TotalIOWait() time.Duration {
	var t time.Duration
	for _, rr := range r.PerRank {
		t += rr.Summary.CheckpointBlocked + rr.Summary.RestoreBlocked
	}
	return t
}

// RunShot executes one full shot benchmark on a fresh virtual clock.
func RunShot(cfg ShotConfig) (ShotResult, error) {
	cfg = cfg.withDefaults()
	var opts []simclock.VirtualOption
	if cfg.ParallelSim {
		opts = append(opts, simclock.WithParallelWake())
	}
	clk := simclock.NewVirtual(opts...)
	var res ShotResult
	var err error
	clk.Run(func() { res, err = runShot(clk, cfg) })
	return res, err
}

func runShot(clk *simclock.Virtual, cfg ShotConfig) (ShotResult, error) {
	var sinkTracer *trace.Tracer
	if cfg.Tracer == nil && defaultTraceSink != nil {
		sinkTracer = trace.New(clk.Now)
		cfg.Tracer = sinkTracer
	}
	// The SLO engine rides the shot clock and only Score runtimes feed it
	// (the baselines have no critical-path cursor): a baseline combo with
	// objectives would report zero events, so skip it there rather than
	// emit vacuous compliance rows.
	var sloEng *slo.Engine
	if len(cfg.Objectives) > 0 && cfg.Combo.Approach == Score {
		eng, err := slo.NewEngine(clk.Now, cfg.Objectives...)
		if err != nil {
			return ShotResult{}, err
		}
		sloEng = eng
		cfg.slo = eng
	}
	cluster, err := fabric.NewCluster(clk, cfg.Nodes, cfg.Node)
	if err != nil {
		return ShotResult{}, err
	}
	ranks := cfg.Nodes * cfg.GPUsPerNode

	var sharedPools []*core.SharedHostCache
	if cfg.SharedHostPerNode && cfg.Combo.Approach == Score {
		sharedPools = make([]*core.SharedHostCache, cfg.Nodes)
		for n := range sharedPools {
			sharedPools[n] = core.NewSharedHostCachePinnedBy(clk,
				fmt.Sprintf("node%d-sharedhost", n),
				cfg.HostCache*int64(cfg.GPUsPerNode), cfg.GPUsPerNode)
		}
		defer func() {
			for _, p := range sharedPools {
				p.Close()
			}
		}()
	}

	// Build one runtime per rank. Every constructed runtime is closed on
	// every exit path: a leaked runtime leaves parked daemon tasks that
	// the virtual clock correctly reports as a deadlock.
	rts := make([]Runtime, ranks)
	defer func() {
		for _, rt := range rts {
			if rt != nil {
				rt.Close()
			}
		}
	}()
	shots := make([]rtm.Shot, ranks)
	orders := make([][]int, ranks)
	costs := device.DefaultAllocCosts()
	if cfg.BWScale > 0 && cfg.BWScale != 1 {
		// Allocation rates scale with the rest of the hardware so
		// reduced-scale runs keep the paper's cost ratios (e.g. pinned
		// allocation slower than the transfers it enables, §4.1.4).
		costs.DeviceBytesPerSec *= cfg.BWScale
		costs.PinnedHostBytesPerSec *= cfg.BWScale
	}
	for rank := 0; rank < ranks; rank++ {
		node := cluster.Nodes[rank/cfg.GPUsPerNode]
		local := rank % cfg.GPUsPerNode
		d2d, pcie := node.GPULinks(local)
		gpu := device.NewGPU(clk, local, cfg.HBMPerGPU, d2d, pcie, costs)

		var pool *core.SharedHostCache
		if sharedPools != nil {
			pool = sharedPools[rank/cfg.GPUsPerNode]
		}
		rt, err := buildRuntime(clk, cfg, gpu, node, pool)
		if err != nil {
			return ShotResult{}, err
		}
		rts[rank] = rt

		if cfg.Uniform {
			shots[rank] = rtm.UniformShot(rank, cfg.Snapshots, cfg.UniformSize)
		} else {
			shots[rank], err = rtm.GenerateShot(cfg.Trace, rank)
			if err != nil {
				return ShotResult{}, err
			}
		}
		orders[rank] = cfg.Order.Sequence(cfg.Snapshots, cfg.Seed+int64(rank))
	}

	if sloEng != nil {
		// Alert transitions are run-scoped: counters land on rank 0's
		// recorder, ledger events on the synthetic SLOLedgerRank. The
		// sink runs outside the engine mutex, and calls are serialized
		// by the virtual clock (flushes happen when simulated time
		// advances, which parks the whole cohort), so the transition
		// counter needs no lock — but keep it atomic so the race
		// detector never has to reason about clock-edge ordering.
		rec := rts[0].Metrics()
		var fl *trace.FlightRecorder
		if cfg.Tracer != nil {
			fl = cfg.Tracer.Flight()
		}
		var transitions atomic.Int64
		sloEng.SetAlertSink(func(a slo.Alert) {
			kind := trace.LSLOFired
			if a.Fired() {
				rec.SLOAlertFired()
			} else {
				kind = trace.LSLOResolved
				rec.SLOAlertResolved()
			}
			fl.RecordAt(SLOLedgerRank, transitions.Add(1), kind, a.Class, a.Detail(), a.At)
		})
	}

	var sampler *metrics.Sampler
	if cfg.SampleInterval > 0 {
		sampler = metrics.NewSampler(clk, cfg.SampleInterval, cfg.SeriesCapacity)
		for rank, rt := range rts {
			if sc, ok := rt.(scoreRuntime); ok {
				sc.Client.RegisterProbes(sampler, fmt.Sprintf("rank%d", rank))
			}
		}
		registerLinkProbes(sampler, cluster)
		if cfg.Tracer != nil {
			tracer := cfg.Tracer
			sampler.SetCounterSink(func(name string, at time.Duration, v float64) {
				tracer.Counter(0, name, at, v)
			})
			// Surface the tracer's bounded-buffer drop counters in the
			// sampled series: a non-zero value means the rings wrapped
			// and the exported timeline (or flight-recorder ledger) is
			// incomplete — raise the capacity rather than trust it.
			sampler.Register("trace.events_dropped", func() float64 {
				ev, _ := tracer.Dropped()
				return float64(ev)
			})
			sampler.Register("trace.counters_dropped", func() float64 {
				_, cnt := tracer.Dropped()
				return float64(cnt)
			})
			if fl := tracer.Flight(); fl != nil {
				sampler.Register("trace.ledger_dropped", func() float64 {
					return float64(fl.TotalDropped())
				})
			}
		}
		sampler.Start()
		defer sampler.Stop()
	}

	var barrier *simclock.Barrier
	if cfg.TightlyCoupled {
		barrier = simclock.NewBarrier(clk, ranks)
	}

	errs := make([]error, ranks)
	wg := simclock.NewWaitGroup(clk)
	for rank := 0; rank < ranks; rank++ {
		rank := rank
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			errs[rank] = runRank(clk, cfg, rts[rank], shots[rank], orders[rank], barrier)
		})
	}
	wg.Wait()

	// Close out observability state before snapshots so the counters the
	// per-rank summaries carry already include end-of-run transitions:
	// Finalize flushes the engine's last staged instant (possibly firing
	// or resolving alerts through the sink above), and the telemetry-drop
	// gauges record whether the bounded trace rings wrapped.
	if sloEng != nil {
		sloEng.Finalize()
	}
	if cfg.Tracer != nil && cfg.Combo.Approach == Score {
		ev, cnt := cfg.Tracer.Dropped()
		rts[0].Metrics().TelemetryDrops(ev, cnt, cfg.Tracer.Flight().TotalDropped())
	}

	res := ShotResult{Config: cfg, Duration: clk.Now()}
	for rank := 0; rank < ranks; rank++ {
		if errs[rank] != nil {
			return res, fmt.Errorf("rank %d: %w", rank, errs[rank])
		}
		if err := rts[rank].Err(); err != nil {
			return res, fmt.Errorf("rank %d async: %w", rank, err)
		}
		// Assert the metrics invariants for every scenario. Drained-
		// restore runs can additionally be checked at quiescence (the
		// mid-run WaitFlush emptied the queues; the makespan was
		// captured above). Immediate-restore runs cannot be drained
		// here: prefetched-but-unconsumed replicas stay pinned after
		// the backward pass, so a trailing flush may legitimately hold
		// its reservation until Close.
		check := metrics.CheckInvariants
		if cfg.WaitForFlush {
			if err := rts[rank].WaitFlush(); err != nil {
				return res, fmt.Errorf("rank %d final drain: %w", rank, err)
			}
			check = metrics.CheckInvariantsQuiescent
		}
		sum := rts[rank].Metrics().Snapshot()
		if err := check(sum); err != nil {
			return res, fmt.Errorf("rank %d metrics invariants: %w", rank, err)
		}
		res.PerRank = append(res.PerRank, RankResult{Rank: rank, Summary: sum})
	}
	if sampler != nil {
		sampler.Stop()
		res.Series = sampler.Series()
	}
	if sloEng != nil {
		rep := sloEng.Report()
		if err := reconcileSLO(&rep, res.MergedSummary(), cfg.Tracer); err != nil {
			return res, fmt.Errorf("%s: %w", res.Label(), err)
		}
		res.SLO = &rep
		emitSLO(res.Label(), rep)
	}
	if shotObserver != nil {
		shotObserver(res)
	}
	if sinkTracer != nil {
		defaultTraceSink(res.Label(), sinkTracer)
	}
	return res, nil
}

// reconcileSLO runs the SLO conservation check against the run's merged
// metrics and alert ledger, folding degraded-mode warnings into the
// report. The engine's per-kind event counts must equal the counts
// derivable from the critical-path records and drain tallies (which the
// metrics invariants in turn tie to the operation histograms); its alert
// transitions must equal the ledger's retained fire/resolve events —
// strictly when the ledger dropped nothing, as warnings otherwise.
func reconcileSLO(rep *slo.Report, merged metrics.Summary, tracer *trace.Tracer) error {
	counts := map[slo.Kind]int64{slo.KindDrainDeadline: merged.Drains}
	for _, cp := range merged.CritPaths {
		switch cp.Op {
		case metrics.CritRestore:
			counts[slo.KindRestoreLatency]++
			counts[slo.KindHitRate]++
		case metrics.CritDurable:
			counts[slo.KindDurableLatency]++
		}
	}
	// Without a tracer there is no ledger to reconcile against: feed the
	// report's own tallies so that leg of the check is vacuously true.
	var ledgerFired, ledgerResolved, ledgerDropped int64
	for _, o := range rep.Objectives {
		ledgerFired += o.Fired
		ledgerResolved += o.Resolved
	}
	if tracer != nil {
		fl := tracer.Flight()
		ledgerFired, ledgerResolved = 0, 0
		for _, ev := range fl.Ledger(SLOLedgerRank) {
			switch ev.Kind {
			case trace.LSLOFired:
				ledgerFired++
			case trace.LSLOResolved:
				ledgerResolved++
			}
		}
		ledgerDropped = fl.TotalDropped()
	}
	warns, err := slo.CheckConservation(*rep, counts, ledgerFired, ledgerResolved, ledgerDropped)
	if err != nil {
		return err
	}
	rep.Warnings = append(rep.Warnings, warns...)
	return nil
}

// registerLinkProbes adds one in-flight-transfers gauge and one
// cumulative-busy-seconds counter per distinct fabric link of the
// cluster (per-GPU PCIe links, per-node NVMe, the shared PFS).
func registerLinkProbes(s *metrics.Sampler, cluster *fabric.Cluster) {
	seen := map[*fabric.Link]bool{}
	add := func(l *fabric.Link) {
		if l == nil || seen[l] {
			return
		}
		seen[l] = true
		s.Register("link."+l.Name()+".inflight", func() float64 {
			return float64(l.InFlight())
		})
		s.Register("link."+l.Name()+".busy_seconds", func() float64 {
			return l.BusyTime().Seconds()
		})
	}
	for _, node := range cluster.Nodes {
		add(node.NVMe)
		add(node.PFS)
		add(node.NIC)
		for g := 0; g < node.Config().GPUs; g++ {
			d2d, pcie := node.GPULinks(g)
			add(d2d)
			add(pcie)
		}
	}
}

func buildRuntime(clk simclock.Clock, cfg ShotConfig, gpu *device.GPU, node *fabric.Node, pool *core.SharedHostCache) (Runtime, error) {
	switch cfg.Combo.Approach {
	case ADIOS2:
		return adiossim.New(adiossim.Config{
			Clock: clk, GPU: gpu, NVMe: node.NVMe, HostBufferSize: cfg.HostCache,
		})
	case UVM:
		return uvmsim.New(uvmsim.Config{
			Clock: clk, GPU: gpu, NVMe: node.NVMe,
			DeviceCacheSize: cfg.GPUCache, HostCacheSize: cfg.HostCache,
			DiscardAfterRestore: !cfg.WaitForFlush,
			AsyncHostInit:       true,
		})
	case Score:
		params := core.Params{
			Clock: clk, GPU: gpu, NVMe: node.NVMe, PFS: node.PFS,
			GPUCacheSize: cfg.GPUCache, HostCacheSize: cfg.HostCache,
			DiscardAfterRestore: !cfg.WaitForFlush,
			AsyncHostInit:       !cfg.UpfrontHostInit,
			SplitCache:          cfg.SplitCache,
			NoPinning:           cfg.NoPinning,
			OnDemandAlloc:       cfg.OnDemandAlloc,
			NoHostStager:        cfg.NoHostStager,
			GPUEvictionPolicy:   cfg.EvictionPolicy,
			SharedHost:          pool,
			GPUDirectStorage:    cfg.GPUDirect,
			ChunkSize:           cfg.ChunkSize,
			FlushStreams:        cfg.FlushStreams,
			Tracer:              cfg.Tracer,
		}
		if cfg.slo != nil {
			// Assigned only when non-nil so the interface stays nil (not
			// a typed-nil) and core's zero-overhead gate holds.
			params.SLO = cfg.slo
		}
		client, err := core.New(params)
		if err != nil {
			return nil, err
		}
		return scoreRuntime{client}, nil
	}
	return nil, fmt.Errorf("experiments: unknown approach %v", cfg.Combo.Approach)
}

// runRank executes the Listing 1 pattern for one process: enqueue hints
// (per the hint budget), forward pass, optional flush drain, prefetch
// start, backward pass.
func runRank(clk simclock.Clock, cfg ShotConfig, rt Runtime, shot rtm.Shot, order []int, barrier *simclock.Barrier) error {
	n := cfg.Snapshots

	if cfg.Combo.Hints == AllHints {
		for _, idx := range order {
			rt.PrefetchEnqueue(int64(idx))
		}
	}

	// Forward pass: compute (sleep), checkpoint.
	for i := 0; i < n; i++ {
		clk.Sleep(cfg.Interval)
		if err := rt.Checkpoint(int64(i), payload.NewVirtual(shot.Sizes[i])); err != nil {
			return fmt.Errorf("checkpoint %d: %w", i, err)
		}
		if barrier != nil {
			barrier.Await()
		}
	}

	if cfg.WaitForFlush {
		if err := rt.WaitFlush(); err != nil {
			return fmt.Errorf("wait flush: %w", err)
		}
		if barrier != nil {
			barrier.Await()
		}
	}

	rt.PrefetchStart()

	// Backward pass: restore per the order, compute between restores.
	for k, idx := range order {
		if cfg.Combo.Hints == SingleHint && k+1 < len(order) {
			// One hint at a time: announce the next iteration's
			// restore at the beginning of the current one (§5.2.4).
			rt.PrefetchEnqueue(int64(order[k+1]))
		}
		if _, err := rt.Restore(int64(idx)); err != nil {
			return fmt.Errorf("restore %d: %w", idx, err)
		}
		clk.Sleep(cfg.Interval)
		if barrier != nil {
			barrier.Await()
		}
	}
	return nil
}
