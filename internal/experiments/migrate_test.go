package experiments

import (
	"errors"
	"reflect"
	"testing"

	"score"
)

// TestMigrationBitExactCutover is the acceptance scenario: a live
// migration racing foreground writes and restores, finished by an
// incremental sync, after which the successor restores every version
// byte-identically.
func TestMigrationBitExactCutover(t *testing.T) {
	res, err := Migration(MigrateConfig{StoreRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recoverable || res.RestoredVersions != res.Versions {
		t.Fatalf("successor restored %d/%d versions: %+v", res.RestoredVersions, res.Versions, res)
	}
	if !res.Final.Validated {
		t.Errorf("final sync not validated: %+v", res.Final)
	}
	if res.MigratedBytes == 0 {
		t.Error("no bytes migrated")
	}
	if res.Live.Versions+res.Final.Versions != res.Versions {
		t.Errorf("live %d + final %d versions != %d written — a version was copied twice or missed",
			res.Live.Versions, res.Final.Versions, res.Versions)
	}
}

// TestMigrationSurvivesInjectedFault: a copy failed through the migrate
// fault site retries under the client's policy and the cutover still
// validates bit-exactly.
func TestMigrationSurvivesInjectedFault(t *testing.T) {
	res, err := Migration(MigrateConfig{StoreRoot: t.TempDir(), InjectFault: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.InjectedFaults == 0 {
		t.Fatal("fault schedule never fired; the migrate site is not wired")
	}
	if !res.Recoverable {
		t.Fatalf("injected copy fault made the migration unrecoverable: %+v", res)
	}
}

// TestMigrationDeterministic: same config and fresh store roots replay
// the identical reports.
func TestMigrationDeterministic(t *testing.T) {
	a, err := Migration(MigrateConfig{StoreRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Migration(MigrateConfig{StoreRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("migration not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestMigrationRequiresStoreRoot: the config contract is explicit.
func TestMigrationRequiresStoreRoot(t *testing.T) {
	if _, err := Migration(MigrateConfig{}); err == nil {
		t.Fatal("want error without StoreRoot")
	}
}

// TestMigrationIncompleteIsDefinitive: a persistent outage on the
// migrate site must surface ErrMigrationIncomplete (or the underlying
// injected failure) — never a silently divergent successor.
func TestMigrationIncompleteIsDefinitive(t *testing.T) {
	root := t.TempDir()
	cfg := MigrateConfig{StoreRoot: root}
	cfg = cfg.withDefaults()
	sim, err := score.NewSim(score.WithNodes(2), score.WithGPUsPerNode(1))
	if err != nil {
		t.Fatal(err)
	}
	// Every migrate-site copy fails, forever: retries exhaust.
	inj := sim.NewFaultInjector(7, score.FailWindow(score.FaultMigrate, 0, 1<<62))
	var migErr error
	sim.Run(func() {
		cl, err := sim.NewClient(0, 0,
			score.WithGPUCache(16*cfg.Size),
			score.WithHostCache(16*cfg.Size),
			score.WithAsyncHostInit(),
			score.WithStore(cfg.srcDir()),
			score.WithFaultInjector(inj))
		if err != nil {
			t.Error(err)
			return
		}
		defer cl.Close()
		for v := int64(0); v < 3; v++ {
			if err := cl.Checkpoint(v, rankPayload(cfg.Seed, 0, v, cfg.Size)); err != nil {
				t.Error(err)
				return
			}
		}
		if err := cl.WaitFlush(); err != nil {
			t.Error(err)
			return
		}
		_, migErr = sim.MigrateRank(cl, 1, cfg.dstDir())
	})
	if migErr == nil {
		t.Fatal("migration under a persistent outage reported success")
	}
	if !errors.Is(migErr, score.ErrFaultInjected) && !errors.Is(migErr, score.ErrMigrationIncomplete) {
		t.Errorf("error is neither the injected fault nor ErrMigrationIncomplete: %v", migErr)
	}
}
