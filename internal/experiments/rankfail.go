// Rank-failure scenario: the cluster failure model end to end. Phase one
// runs a multi-rank job under a seeded kill schedule that takes out a
// whole node mid-flush; phase two deletes the dead node's SSD contents
// (a node loss takes its local stores with it), restarts every rank, and
// restores the newest globally committed version — which must come back
// bit-exact on every rank. With partner-copy replication the node kill
// is survivable (the dead ranks' checkpoints live on the next node's
// SSD); without it the scenario reports the job unrecoverable rather
// than ever returning wrong bytes.
package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"score"
)

// RankFailConfig parameterizes one rank-failure scenario.
type RankFailConfig struct {
	// Nodes and GPUsPerNode shape the cluster (defaults: 2 nodes × 2
	// GPUs). Ranks are numbered node*GPUsPerNode+gpu.
	Nodes, GPUsPerNode int
	// Checkpoints is the number of versions each rank writes (default 6).
	Checkpoints int
	// Size is the per-checkpoint payload size in bytes (default 1 MiB).
	Size int64
	// Interval is the compute time between checkpoints (default 10 ms).
	Interval time.Duration
	// KillNode is the node whose ranks die; KillAt the virtual time of
	// death (default: node 0 at 2.5 intervals — mid-flush of an early
	// version).
	KillNode int
	KillAt   time.Duration
	// KillRankOnly kills a single rank (GPU 0 of KillNode) instead of
	// the whole node: a process crash, not a node loss, so the node's
	// SSD contents survive the failure.
	KillRankOnly bool
	// PartnerCopy enables partner-copy replication; without it a node
	// kill must be reported unrecoverable.
	PartnerCopy bool
	// StoreRoot is the directory backing every rank's durable stores:
	// <root>/node<i>/local/rank<r> and <root>/node<i>/partner/rank<r>.
	// Node death is modeled by deleting <root>/node<KillNode>.
	StoreRoot string
	// Seed drives the deterministic payload generator.
	Seed int64
}

func (c RankFailConfig) withDefaults() RankFailConfig {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.GPUsPerNode == 0 {
		c.GPUsPerNode = 2
	}
	if c.Checkpoints == 0 {
		c.Checkpoints = 6
	}
	if c.Size == 0 {
		c.Size = 1 << 20
	}
	if c.Interval == 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.KillAt == 0 {
		c.KillAt = c.Interval*2 + c.Interval/2
	}
	if c.Seed == 0 {
		c.Seed = 2023
	}
	return c
}

// RankFailResult reports one scenario run.
type RankFailResult struct {
	// Ranks is the job size; Killed lists the ranks that died, ascending.
	Ranks  int
	Killed []int
	// RankDeaths and CommitLag are the running tracker's view at the end
	// of phase one (before restart).
	RankDeaths int64
	CommitLag  int64
	// PartnerCopies/PartnerCopyBytes sum the replicas the job staged on
	// partner SSDs (0 without PartnerCopy).
	PartnerCopies, PartnerCopyBytes int64
	// Recoverable reports whether a globally committed version survived;
	// LatestConsistent is that version (-1 when none).
	Recoverable      bool
	LatestConsistent int64
	// RestoredRanks counts ranks that restored LatestConsistent
	// bit-exactly after the restart (equals Ranks when Recoverable).
	RestoredRanks int
}

// rankPayload deterministically generates rank/version-unique bytes, so
// phase two can verify restored data against a regenerated reference.
func rankPayload(seed int64, rank int, version, size int64) []byte {
	buf := make([]byte, size)
	x := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(rank+1)*0xBF58476D1CE4E5B9 ^
		uint64(version+1)*0x94D049BB133111EB
	if x == 0 {
		x = 1
	}
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
	return buf
}

func (c RankFailConfig) localDir(node, rank int) string {
	return filepath.Join(c.StoreRoot, fmt.Sprintf("node%d", node), "local", fmt.Sprintf("rank%d", rank))
}

// partnerDir is where rank r (on node) replicates to: the partner node's
// SSD. It lives under the partner's node directory so a kill of that
// node destroys the replicas it hosts.
func (c RankFailConfig) partnerDir(node, rank int) string {
	p := (node + 1) % c.Nodes
	return filepath.Join(c.StoreRoot, fmt.Sprintf("node%d", p), "partner", fmt.Sprintf("rank%d", rank))
}

// RankFailure runs the scenario. Deterministic: the same config (and
// StoreRoot contents) produces the identical result.
func RankFailure(cfg RankFailConfig) (RankFailResult, error) {
	cfg = cfg.withDefaults()
	if cfg.StoreRoot == "" {
		return RankFailResult{}, errors.New("experiments: RankFailConfig.StoreRoot required")
	}
	if cfg.KillNode < 0 || cfg.KillNode >= cfg.Nodes {
		return RankFailResult{}, fmt.Errorf("experiments: kill node %d out of range [0,%d)", cfg.KillNode, cfg.Nodes)
	}
	ranks := cfg.Nodes * cfg.GPUsPerNode
	res := RankFailResult{Ranks: ranks, LatestConsistent: -1}
	if cfg.KillRankOnly {
		res.Killed = []int{cfg.KillNode * cfg.GPUsPerNode}
	} else {
		for g := 0; g < cfg.GPUsPerNode; g++ {
			res.Killed = append(res.Killed, cfg.KillNode*cfg.GPUsPerNode+g)
		}
	}

	// Phase one: run the job under the kill schedule.
	sim, err := score.NewSim(score.WithNodes(cfg.Nodes), score.WithGPUsPerNode(cfg.GPUsPerNode))
	if err != nil {
		return res, err
	}
	tracker, err := sim.NewCommitTracker(ranks)
	if err != nil {
		return res, err
	}
	inj := sim.NewFaultInjector(cfg.Seed)
	if cfg.KillRankOnly {
		inj.AddKills(score.KillRank(cfg.KillNode, 0, cfg.KillAt))
	} else {
		inj.AddKills(score.KillNode(cfg.KillNode, cfg.KillAt))
	}

	var runErr error
	sim.Run(func() {
		clients := make([]*score.Client, ranks)
		for node := 0; node < cfg.Nodes; node++ {
			for g := 0; g < cfg.GPUsPerNode; g++ {
				rank := node*cfg.GPUsPerNode + g
				opts := []score.ClientOption{
					// Small caches + async host registration keep setup
					// near zero virtual time, so KillAt lands mid-job
					// rather than during construction (a 32 GiB pinned
					// registration alone costs seconds of virtual time).
					score.WithGPUCache(16 * cfg.Size),
					score.WithHostCache(16 * cfg.Size),
					score.WithAsyncHostInit(),
					score.WithStore(cfg.localDir(node, rank)),
					score.WithCommitTracker(tracker, rank),
					score.WithFaultInjector(inj),
				}
				if cfg.PartnerCopy {
					opts = append(opts, score.WithPartnerCopy(cfg.partnerDir(node, rank)))
				}
				cl, err := sim.NewClient(node, g, opts...)
				if err != nil {
					runErr = err
					return
				}
				clients[rank] = cl
			}
		}
		wg := sim.NewWaitGroup()
		for rank, cl := range clients {
			rank, cl := rank, cl
			wg.Add(1)
			sim.Clock().Go(func() {
				defer wg.Done()
				for v := int64(0); v < int64(cfg.Checkpoints); v++ {
					data := rankPayload(cfg.Seed, rank, v, cfg.Size)
					if err := cl.Checkpoint(v, data); err != nil {
						return // killed mid-run: the sweep owns the rest
					}
					cl.Compute(cfg.Interval)
				}
				_ = cl.WaitFlush() // ErrKilled when death raced the drain
			})
		}
		wg.Wait()
		for _, cl := range clients {
			st := cl.Stats()
			res.PartnerCopies += st.PartnerCopies
			res.PartnerCopyBytes += st.PartnerCopyBytes
			cl.Close()
		}
	})
	if runErr != nil {
		return res, runErr
	}
	res.RankDeaths = tracker.RankDeaths()
	res.CommitLag = tracker.CommitLag()

	// A whole-node death takes its SSD contents with it — local stores
	// and any partner replicas it hosted. A single-rank (process) crash
	// leaves the disk intact.
	if !cfg.KillRankOnly {
		if err := os.RemoveAll(filepath.Join(cfg.StoreRoot, fmt.Sprintf("node%d", cfg.KillNode))); err != nil {
			return res, err
		}
	}

	// Phase two: restart every rank and recompute the consistent frontier
	// from what each recovered store actually holds — ground truth, not
	// the running tracker's view.
	sim2, err := score.NewSim(score.WithNodes(cfg.Nodes), score.WithGPUsPerNode(cfg.GPUsPerNode))
	if err != nil {
		return res, err
	}
	restartTracker, err := sim2.NewCommitTracker(ranks)
	if err != nil {
		return res, err
	}
	sim2.Run(func() {
		clients := make([]*score.Client, ranks)
		for node := 0; node < cfg.Nodes; node++ {
			for g := 0; g < cfg.GPUsPerNode; g++ {
				rank := node*cfg.GPUsPerNode + g
				opts := []score.ClientOption{
					score.WithGPUCache(16 * cfg.Size),
					score.WithHostCache(16 * cfg.Size),
					score.WithStore(cfg.localDir(node, rank)),
				}
				if cfg.PartnerCopy {
					opts = append(opts, score.WithPartnerCopy(cfg.partnerDir(node, rank)))
				}
				cl, err := sim2.NewClient(node, g, opts...)
				if err != nil {
					runErr = err
					return
				}
				clients[rank] = cl
				for _, v := range cl.RecoveredVersions() {
					restartTracker.MarkDurable(rank, v)
				}
			}
		}
		defer func() {
			for _, cl := range clients {
				cl.Close()
			}
		}()
		latest, ok := restartTracker.LatestConsistent()
		if !ok {
			return // unrecoverable: no version is durable on every rank
		}
		res.LatestConsistent = latest
		want := make([][]byte, ranks)
		for rank := range clients {
			want[rank] = rankPayload(cfg.Seed, rank, latest, cfg.Size)
		}
		for rank, cl := range clients {
			got, err := cl.Restart(latest)
			if err != nil {
				runErr = fmt.Errorf("experiments: rank %d restart of v%d: %w", rank, latest, err)
				return
			}
			if !bytes.Equal(got, want[rank]) {
				runErr = fmt.Errorf("experiments: rank %d restored v%d with wrong bytes", rank, latest)
				return
			}
			res.RestoredRanks++
		}
		res.Recoverable = res.RestoredRanks == ranks
	})
	return res, runErr
}
