package experiments

import (
	"strings"
	"testing"
	"time"

	"score/internal/rtm"
)

// tiny returns a fast test scale that still triggers evictions: the GPU
// cache holds ~4 checkpoints and the host cache ~16 of 48.
func tiny() Scale {
	return Scale{
		Snapshots:   48,
		UniformSize: 8 << 20,
		GPUCache:    32 << 20,
		HostCache:   128 << 20,
		Aggregate:   384 << 20,
		Bandwidth:   1.0 / 128, // keep bandwidth-to-data ratios paper-like
	}
}

func tinyShot(combo Combo, order rtm.Order, wait bool, uniform bool) ShotConfig {
	cfg := ShotConfig{
		GPUsPerNode: 2, Uniform: uniform, WaitForFlush: wait,
		Order: order, Combo: combo, Interval: 2 * time.Millisecond,
	}
	tiny().Apply(&cfg)
	return cfg
}

func TestRunShotAllCombosComplete(t *testing.T) {
	for _, combo := range Table1() {
		combo := combo
		t.Run(combo.Label(), func(t *testing.T) {
			res, err := RunShot(tinyShot(combo, rtm.Reverse, true, true))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.PerRank) != 2 {
				t.Fatalf("ranks = %d, want 2", len(res.PerRank))
			}
			for _, rr := range res.PerRank {
				if rr.Summary.CheckpointOps != 48 || rr.Summary.RestoreOps != 48 {
					t.Errorf("rank %d: ops = %d/%d, want 48/48",
						rr.Rank, rr.Summary.CheckpointOps, rr.Summary.RestoreOps)
				}
			}
			if res.Duration <= 0 {
				t.Error("no simulated time elapsed")
			}
		})
	}
}

func TestRunShotVariableSizesAndOrders(t *testing.T) {
	for _, order := range []rtm.Order{rtm.Sequential, rtm.Reverse, rtm.Irregular} {
		res, err := RunShot(tinyShot(Combo{Score, AllHints}, order, false, false))
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		m := mergeRanks(res)
		if m.RestoreOps != 96 {
			t.Errorf("%v: restore ops = %d, want 96", order, m.RestoreOps)
		}
	}
}

func TestScoreBeatsBaselinesOnHintedRestore(t *testing.T) {
	// The paper's headline shape: with full hints and reverse order,
	// Score's restore throughput exceeds UVM's, which exceeds ADIOS2's.
	rest := map[Approach]float64{}
	for _, ap := range []Approach{ADIOS2, UVM, Score} {
		hints := AllHints
		if ap == ADIOS2 {
			hints = NoHints
		}
		res, err := RunShot(tinyShot(Combo{ap, hints}, rtm.Reverse, true, true))
		if err != nil {
			t.Fatal(err)
		}
		rest[ap] = res.MeanRestoreThroughput()
	}
	if !(rest[Score] > rest[UVM]) {
		t.Errorf("Score restore (%.0f) not faster than UVM (%.0f)", rest[Score], rest[UVM])
	}
	if !(rest[UVM] > rest[ADIOS2]) {
		t.Errorf("UVM restore (%.0f) not faster than ADIOS2 (%.0f)", rest[UVM], rest[ADIOS2])
	}
	if rest[Score] < 2*rest[UVM] {
		t.Logf("note: Score/UVM ratio %.1fx (paper reports >= 2x at full scale)", rest[Score]/rest[UVM])
	}
}

func TestHintsImproveScoreRestore(t *testing.T) {
	tp := map[HintMode]float64{}
	for _, h := range []HintMode{NoHints, SingleHint, AllHints} {
		res, err := RunShot(tinyShot(Combo{Score, h}, rtm.Reverse, true, true))
		if err != nil {
			t.Fatal(err)
		}
		tp[h] = res.MeanRestoreThroughput()
	}
	if !(tp[AllHints] > tp[NoHints]) {
		t.Errorf("all hints (%.0f) should beat no hints (%.0f)", tp[AllHints], tp[NoHints])
	}
}

func TestTightlyCoupledRuns(t *testing.T) {
	cfg := tinyShot(Combo{Score, AllHints}, rtm.Reverse, false, true)
	cfg.TightlyCoupled = true
	res, err := RunShot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m := mergeRanks(res); m.RestoreOps != 96 {
		t.Errorf("restore ops = %d, want 96", m.RestoreOps)
	}
}

func TestMultiNodeRuns(t *testing.T) {
	cfg := tinyShot(Combo{Score, AllHints}, rtm.Reverse, false, false)
	cfg.Nodes = 2
	res, err := RunShot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRank) != 4 {
		t.Errorf("ranks = %d, want 4 (2 nodes x 2 GPUs)", len(res.PerRank))
	}
}

func TestComboAndModeLabels(t *testing.T) {
	if got := (Combo{Score, AllHints}).Label(); got != "All hints, Score" {
		t.Errorf("label = %q", got)
	}
	if len(Table1()) != 7 {
		t.Errorf("Table 1 has %d combos, want 7", len(Table1()))
	}
	if Approach(9).String() == "" || HintMode(9).String() == "" {
		t.Error("out-of-range enums should format")
	}
}

func TestFigureRendering(t *testing.T) {
	f := FigureResult{ID: "Fig. X", Title: "test", Rows: []Row{{
		Combo: Combo{Score, AllHints}, Order: rtm.Reverse, GPUs: 8,
		CkptBps: 1 << 30, RestBps: 2 << 30, IOWait: time.Second,
	}}}
	var b strings.Builder
	if err := f.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig. X", "All hints, Score", "1.00 GB/s", "2.00 GB/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figure missing %q:\n%s", want, out)
		}
	}
}
