package lifecycle

import (
	"testing"
	"testing/quick"
	"time"

	"score/internal/simclock"
)

func TestCheckpointingPath(t *testing.T) {
	clk := simclock.NewVirtual()
	m := NewMachine(clk)
	for _, s := range []State{WriteInProgress, WriteComplete, Flushed} {
		if err := m.To(s); err != nil {
			t.Fatalf("transition to %v: %v", s, err)
		}
	}
	if !m.Evictable() {
		t.Error("Flushed replica must be evictable")
	}
}

func TestPrefetchingPath(t *testing.T) {
	clk := simclock.NewVirtual()
	m := NewMachine(clk)
	for _, s := range []State{ReadInProgress, ReadComplete, Consumed} {
		if err := m.To(s); err != nil {
			t.Fatalf("transition to %v: %v", s, err)
		}
	}
	if !m.Evictable() {
		t.Error("Consumed replica must be evictable")
	}
}

func TestWriteCompleteShortcutsToReadComplete(t *testing.T) {
	// A restore arriving while the replica is still cached skips the
	// prefetch path entirely (Fig. 1).
	clk := simclock.NewVirtual()
	m := NewMachine(clk)
	m.MustTo(WriteInProgress)
	m.MustTo(WriteComplete)
	if err := m.To(ReadComplete); err != nil {
		t.Fatalf("WriteComplete → ReadComplete: %v", err)
	}
	if m.State().Evictable() {
		t.Error("ReadComplete replica must be pinned (not evictable)")
	}
	m.MustTo(Consumed)
}

func TestFlushedToReadComplete(t *testing.T) {
	// "...or was already flushed but not evicted yet. In this case, the
	// checkpoint transitions directly into the Read Complete state."
	clk := simclock.NewVirtual()
	m := NewMachine(clk)
	m.MustTo(WriteInProgress)
	m.MustTo(WriteComplete)
	m.MustTo(Flushed)
	if err := m.To(ReadComplete); err != nil {
		t.Fatalf("Flushed → ReadComplete: %v", err)
	}
}

func TestIllegalTransitionsRejected(t *testing.T) {
	clk := simclock.NewVirtual()
	illegal := []struct{ from, to State }{
		{Init, WriteComplete},
		{Init, Flushed},
		{Init, ReadComplete},
		{Init, Consumed},
		{WriteInProgress, Flushed},
		{WriteInProgress, ReadInProgress},
		{WriteComplete, WriteInProgress},
		{Flushed, WriteInProgress},
		{Flushed, Consumed},
		{ReadInProgress, Consumed},
		{ReadComplete, WriteInProgress},
		{ReadComplete, Flushed},
		{Consumed, WriteInProgress},
		{Consumed, Flushed},
	}
	for _, tc := range illegal {
		m := NewMachine(clk)
		// Drive the machine to tc.from via a legal route.
		route := routeTo(tc.from)
		for _, s := range route {
			m.MustTo(s)
		}
		if err := m.To(tc.to); err == nil {
			t.Errorf("transition %v → %v should be illegal", tc.from, tc.to)
		}
		if got := m.State(); got != tc.from {
			t.Errorf("failed transition changed state to %v", got)
		}
	}
}

// routeTo returns a legal transition sequence from Init to s.
func routeTo(s State) []State {
	switch s {
	case Init:
		return nil
	case WriteInProgress:
		return []State{WriteInProgress}
	case WriteComplete:
		return []State{WriteInProgress, WriteComplete}
	case Flushed:
		return []State{WriteInProgress, WriteComplete, Flushed}
	case ReadInProgress:
		return []State{ReadInProgress}
	case ReadComplete:
		return []State{ReadInProgress, ReadComplete}
	case Consumed:
		return []State{ReadInProgress, ReadComplete, Consumed}
	}
	panic("unknown state")
}

func TestConsumedCanBeReRead(t *testing.T) {
	clk := simclock.NewVirtual()
	m := NewMachine(clk)
	m.MustTo(ReadInProgress)
	m.MustTo(ReadComplete)
	m.MustTo(Consumed)
	if err := m.To(ReadComplete); err != nil {
		t.Errorf("Consumed → ReadComplete (re-read while cached): %v", err)
	}
	m.MustTo(Consumed)
	if err := m.To(ReadInProgress); err != nil {
		t.Errorf("Consumed → ReadInProgress (re-promotion): %v", err)
	}
}

func TestWaitForBlocksUntilState(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		m := NewMachine(clk)
		m.MustTo(WriteInProgress)
		var reachedAt time.Duration
		wg := simclock.NewWaitGroup(clk)
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			m.WaitFor(Flushed, Consumed)
			reachedAt = clk.Now()
		})
		clk.Sleep(3 * time.Second)
		m.MustTo(WriteComplete)
		clk.Sleep(2 * time.Second)
		m.MustTo(Flushed)
		wg.Wait()
		if reachedAt != 5*time.Second {
			t.Errorf("WaitFor returned at %v, want 5s", reachedAt)
		}
	})
}

func TestObserverCalledOnEveryTransition(t *testing.T) {
	clk := simclock.NewVirtual()
	m := NewMachine(clk)
	var seen []State
	m.Observe(func(s State) { seen = append(seen, s) })
	m.MustTo(WriteInProgress)
	m.MustTo(WriteComplete)
	m.MustTo(Flushed)
	want := []State{WriteInProgress, WriteComplete, Flushed}
	if len(seen) != len(want) {
		t.Fatalf("observer saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("observer event %d = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestStateStringAndEvictable(t *testing.T) {
	if Init.String() != "INIT" || Flushed.String() != "FLUSHED" {
		t.Error("unexpected state names")
	}
	if State(99).String() != "State(99)" {
		t.Error("out-of-range state should format numerically")
	}
	evictable := map[State]bool{Flushed: true, Consumed: true}
	for s := Init; s <= Consumed; s++ {
		if got := s.Evictable(); got != evictable[s] {
			t.Errorf("%v.Evictable() = %v, want %v", s, got, evictable[s])
		}
	}
}

func TestTransitionClosureProperty(t *testing.T) {
	// Property: from any reachable state, applying any sequence of
	// attempted transitions never reaches an undefined state and Legal
	// exactly matches the success of To.
	f := func(steps []uint8) bool {
		clk := simclock.NewVirtual()
		m := NewMachine(clk)
		for _, b := range steps {
			to := State(int(b) % 7)
			from := m.State()
			err := m.To(to)
			if Legal(from, to) != (err == nil) {
				return false
			}
			if err != nil && m.State() != from {
				return false
			}
			if err == nil && m.State() != to {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
