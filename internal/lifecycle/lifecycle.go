// Package lifecycle implements the checkpoint life-cycle finite-state
// machine of the paper's Figure 1. Every replica of a checkpoint on every
// cache tier carries one Machine; the runtime drives transitions and the
// eviction policy consults evictability.
//
// The life cycle unifies flushing and prefetching: a replica is born INIT,
// follows the checkpointing path (WRITE_IN_PROGRESS → WRITE_COMPLETE →
// FLUSHED) when it serves a checkpoint request, or the prefetching path
// (READ_IN_PROGRESS → READ_COMPLETE → CONSUMED) when it serves a restore.
// A replica that is still cached when a restore arrives shortcuts from
// WRITE_COMPLETE (or FLUSHED) directly to READ_COMPLETE. Only FLUSHED and
// CONSUMED replicas are evictable; a prefetched replica is pinned until
// consumed (paper §2, condition 4).
package lifecycle

import (
	"fmt"
	"sync"
	"sync/atomic"

	"score/internal/simclock"
)

// State enumerates the life-cycle states of Figure 1.
type State int

const (
	// Init is the birth state of every replica.
	Init State = iota
	// WriteInProgress: data is being copied into this tier from the
	// application buffer or a faster tier.
	WriteInProgress
	// WriteComplete: the copy into this tier finished; flushes to
	// slower tiers may still be pending.
	WriteComplete
	// Flushed: all pending flushes from this tier completed and no
	// restore or prefetch is pending. Evictable.
	Flushed
	// ReadInProgress: data is being promoted into this tier from a
	// slower tier to serve a (pre)fetch.
	ReadInProgress
	// ReadComplete: the promoted copy is ready to serve the restore.
	// Pinned until consumed.
	ReadComplete
	// Consumed: the application has copied the data out. Evictable.
	Consumed
)

var stateNames = [...]string{
	Init:            "INIT",
	WriteInProgress: "WRITE_IN_PROGRESS",
	WriteComplete:   "WRITE_COMPLETE",
	Flushed:         "FLUSHED",
	ReadInProgress:  "READ_IN_PROGRESS",
	ReadComplete:    "READ_COMPLETE",
	Consumed:        "CONSUMED",
}

// String returns the paper's name for the state.
func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("State(%d)", int(s))
	}
	return stateNames[s]
}

// Evictable reports whether a replica in this state may be evicted from
// its cache tier.
func (s State) Evictable() bool { return s == Flushed || s == Consumed }

// transitions is the edge set of Figure 1.
var transitions = map[State][]State{
	Init:            {WriteInProgress, ReadInProgress},
	WriteInProgress: {WriteComplete},
	WriteComplete:   {Flushed, ReadComplete},
	Flushed:         {ReadComplete},
	ReadInProgress:  {ReadComplete},
	ReadComplete:    {Consumed},
	Consumed:        {ReadComplete, ReadInProgress}, // re-read of a retained checkpoint
}

// Legal reports whether the transition from → to is an edge of the FSM.
func Legal(from, to State) bool {
	for _, s := range transitions[from] {
		if s == to {
			return true
		}
	}
	return false
}

// Machine is one replica's life-cycle state with clock-aware waiting.
// The zero value is not usable; create with NewMachine.
//
// State reads are lock-free (atomic): the eviction oracle queries replica
// states at very high rates during window scans.
type Machine struct {
	mu    sync.Mutex
	cond  simclock.Cond
	state atomic.Int32

	// observers are notified (outside the machine's lock ordering
	// concerns; called after the transition commits) on every change.
	observers []func(State)
}

// NewMachine returns a Machine in the Init state.
func NewMachine(clk simclock.Clock) *Machine {
	m := &Machine{}
	m.cond = clk.NewCond(&m.mu)
	return m
}

// State returns the current state (lock-free).
func (m *Machine) State() State { return State(m.state.Load()) }

// To performs the transition to state to, returning an error if the
// transition is not an edge of Figure 1. Waiters and observers are
// notified on success.
func (m *Machine) To(to State) error {
	m.mu.Lock()
	from := State(m.state.Load())
	if !Legal(from, to) {
		m.mu.Unlock()
		return fmt.Errorf("lifecycle: illegal transition %v → %v", from, to)
	}
	m.state.Store(int32(to))
	obs := make([]func(State), len(m.observers))
	copy(obs, m.observers)
	m.cond.Broadcast()
	m.mu.Unlock()
	for _, f := range obs {
		f(to)
	}
	return nil
}

// MustTo is To but panics on an illegal transition; used where the runtime
// guarantees legality by construction.
func (m *Machine) MustTo(to State) {
	if err := m.To(to); err != nil {
		panic(err)
	}
}

// WaitFor blocks until the machine is in one of the given states and
// returns that state.
func (m *Machine) WaitFor(states ...State) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		cur := State(m.state.Load())
		for _, s := range states {
			if cur == s {
				return s
			}
		}
		m.cond.Wait()
	}
}

// Observe registers f to be called after every successful transition.
func (m *Machine) Observe(f func(State)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.observers = append(m.observers, f)
}

// Evictable reports whether the replica is currently evictable.
func (m *Machine) Evictable() bool { return m.State().Evictable() }
