// Package cachebuf implements the contiguous cache buffer of the paper's
// §4.1.4–4.1.6 and the gap-aware, score-based, sliding-window eviction
// policy of §4.2 (Algorithm 1).
//
// A Buffer manages one pre-allocated contiguous region on one cache tier
// (GPU HBM or pinned host memory). Resident checkpoints and the gaps
// between them form an ordered fragment list. When a new checkpoint (or a
// prefetch) needs space and no single gap is large enough, the policy
// slides a variable-size window over the fragment list to find the set of
// consecutive fragments whose eviction blocks future restores the least:
//
//   - p_score: the estimated total time until every fragment in the window
//     becomes evictable (0 for gaps and already-evictable checkpoints, +Inf
//     for pinned fragments — replicas being written/read or prefetched but
//     not yet consumed, which are never evicted, §2 condition 4);
//   - s_score: the total prefetch distance of the window's checkpoints
//     (how far from the head of the restore-order queue they are; gaps
//     count as infinitely far).
//
// The window with minimal p_score wins; ties break toward maximal s_score
// (evict what will be restored last). Scores update incrementally as the
// window slides, keeping the scan O(N).
//
// Geometry invariants maintained at every step:
//  1. fragments are sorted by offset and tile [0, capacity) exactly;
//  2. no two gaps are adjacent (gaps coalesce eagerly);
//  3. every checkpoint id appears at most once.
package cachebuf

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"score/internal/simclock"
)

// ID identifies a checkpoint (unique per buffer). Negative values are
// reserved for gaps internally.
type ID int64

const gapID ID = -1

// GapDistance is the prefetch distance attributed to gaps: farther than
// any real hint, so windows containing gaps win s_score ties (gaps have
// "the highest eviction priority", §4.1.6).
const GapDistance = int(1) << 40

// Oracle supplies the dynamic checkpoint state the eviction policy needs.
// It is implemented by the runtime from the life-cycle FSM, the restore
// order queue, and the fabric's bandwidth estimators.
type Oracle interface {
	// Evictable reports whether id may be evicted right now (replica is
	// FLUSHED or CONSUMED).
	Evictable(id ID) bool
	// TimeToEvictable estimates how long until id becomes evictable.
	// ok=false means the replica is pinned indefinitely (prefetched but
	// not yet consumed, or mid-read) and must never be evicted.
	TimeToEvictable(id ID) (d time.Duration, ok bool)
	// PrefetchDistance returns the number of queue positions between
	// the head of the restore-order queue and id's hint; ids without a
	// hint return a value >= GapDistance-1.
	PrefetchDistance(id ID) int
	// Evicted notifies the runtime that id's replica left this buffer.
	Evicted(id ID)
}

// Errors returned by Reserve and TryReserve.
var (
	// ErrTooLarge: the request exceeds the buffer capacity outright.
	ErrTooLarge = errors.New("cachebuf: request larger than buffer capacity")
	// ErrClosed: the buffer was closed while waiting.
	ErrClosed = errors.New("cachebuf: buffer closed")
	// ErrWouldBlock: TryReserve found no immediately usable window.
	ErrWouldBlock = errors.New("cachebuf: reservation would block")
	// ErrDuplicate: the id is already resident.
	ErrDuplicate = errors.New("cachebuf: checkpoint already resident")
)

// frag is one fragment: a resident checkpoint or a gap.
type frag struct {
	id   ID // gapID for gaps
	off  int64
	size int64

	// claimed marks the fragment as part of an eviction window another
	// reservation has selected and is waiting on: no other reservation
	// may place into, select, or coalesce across it.
	claimed bool
}

func (f frag) isGap() bool { return f.id == gapID }

// Stats aggregates buffer activity for the evaluation harness.
type Stats struct {
	// Evictions counts evicted checkpoints (not gaps).
	Evictions int64
	// BytesEvicted counts evicted checkpoint bytes.
	BytesEvicted int64
	// EvictionWait is total simulated time Reserve spent waiting for
	// windows to become evictable.
	EvictionWait time.Duration
	// Reservations counts successful reservations.
	Reservations int64
	// WindowScans counts sliding-window scans performed.
	WindowScans int64
}

// Buffer is one tier's pre-allocated contiguous cache region.
type Buffer struct {
	clk      simclock.Clock
	name     string
	capacity int64
	oracle   Oracle

	mu        sync.Mutex
	cond      simclock.Cond
	frags     []frag
	resident  map[ID]struct{}
	reserving bool // serializes window selection + eviction
	closed    bool
	policy    Policy
	ep        EvictionPolicy
	stats     Stats
	waitObs   func(time.Duration) // per-wait eviction-stall observer
}

// New creates a buffer of the given capacity. The oracle must be non-nil.
func New(clk simclock.Clock, name string, capacity int64, oracle Oracle) *Buffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("cachebuf: %s: capacity must be positive, got %d", name, capacity))
	}
	if oracle == nil {
		panic("cachebuf: nil oracle")
	}
	b := &Buffer{
		clk:      clk,
		name:     name,
		capacity: capacity,
		oracle:   oracle,
		frags:    []frag{{id: gapID, off: 0, size: capacity}},
		resident: make(map[ID]struct{}),
	}
	b.cond = clk.NewCond(&b.mu)
	ep, err := PolicyScore.NewPolicy()
	if err != nil {
		panic(err) // unreachable: PolicyScore is registered
	}
	b.ep = ep
	return b
}

// SetPolicy selects a built-in eviction policy (default PolicyScore).
// Unknown values are an error — there is no silent fallback. Intended
// for configuration at construction time, before concurrent use; if
// called mid-life, the new policy is re-seeded by replaying an insert
// event for every resident checkpoint in offset order.
func (b *Buffer) SetPolicy(p Policy) error {
	ep, err := p.NewPolicy()
	if err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.policy = p
	b.installPolicyLocked(ep)
	return nil
}

// SetEvictionPolicy installs a custom EvictionPolicy implementation
// (nil panics). The Policy enum reported by PolicyName becomes
// whatever ep.Name() says. Same re-seeding semantics as SetPolicy.
func (b *Buffer) SetEvictionPolicy(ep EvictionPolicy) {
	if ep == nil {
		panic("cachebuf: nil eviction policy")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.installPolicyLocked(ep)
}

// installPolicyLocked swaps the policy and replays the current resident
// set into it so recency-class state starts from a defined point.
func (b *Buffer) installPolicyLocked(ep EvictionPolicy) {
	b.ep = ep
	for _, f := range b.frags {
		if !f.isGap() {
			ep.OnInsert(f.id, f.size)
		}
	}
}

// PolicyName reports the active eviction policy's name.
func (b *Buffer) PolicyName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ep.Name()
}

// SetWaitObserver installs fn to be called with the duration of every
// individual eviction wait (the Stats.EvictionWait aggregate, per stall).
// fn runs under the buffer lock and must not call back into the buffer;
// intended for the metrics layer's eviction-wait histogram. Configure
// before concurrent use.
func (b *Buffer) SetWaitObserver(fn func(time.Duration)) { b.waitObs = fn }

// observeWaitLocked accumulates one eviction stall.
func (b *Buffer) observeWaitLocked(d time.Duration) {
	b.stats.EvictionWait += d
	if b.waitObs != nil {
		b.waitObs(d)
	}
}

// Touch records an access to id for recency/frequency policies; the
// runtime calls it when a resident checkpoint serves a read.
func (b *Buffer) Touch(id ID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.resident[id]; ok {
		b.ep.OnTouch(id)
	}
}

// Name returns the buffer's name (for diagnostics).
func (b *Buffer) Name() string { return b.name }

// Capacity returns the buffer capacity in bytes.
func (b *Buffer) Capacity() int64 { return b.capacity }

// Reserve finds (evicting if needed) a contiguous region of size bytes and
// registers id there, blocking in simulated time until space is available.
// It returns the assigned offset.
func (b *Buffer) Reserve(id ID, size int64) (int64, error) {
	return b.reserve(id, size, true)
}

// TryReserve is Reserve but fails with ErrWouldBlock instead of waiting
// (used by the prefetcher to avoid stalling behind pinned windows).
func (b *Buffer) TryReserve(id ID, size int64) (int64, error) {
	return b.reserve(id, size, false)
}

func (b *Buffer) reserve(id ID, size int64, wait bool) (int64, error) {
	if id < 0 {
		return 0, fmt.Errorf("cachebuf: %s: invalid id %d", b.name, id)
	}
	if size <= 0 {
		return 0, fmt.Errorf("cachebuf: %s: invalid size %d", b.name, size)
	}
	if size > b.capacity {
		return 0, ErrTooLarge
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.resident[id]; dup {
		return 0, ErrDuplicate
	}
	if b.closed {
		return 0, ErrClosed
	}

	// Fast path before any serialization: if a single gap already fits,
	// place there immediately. This keeps concurrent reservations (e.g.
	// the co-located clients of a shared host pool) from convoying
	// behind one client's eviction wait.
	if off, ok := b.placeInGapLocked(id, size); ok {
		b.stats.Reservations++
		return off, nil
	}

	for {
		if b.closed {
			return 0, ErrClosed
		}
		// Fast path: a single unclaimed gap fits (best-fit to limit
		// fragmentation of large gaps).
		if off, ok := b.placeInGapLocked(id, size); ok {
			b.stats.Reservations++
			return off, nil
		}

		// Window selection is serialized: two overlapping scans could
		// otherwise pick each other's fragments. The serialization covers
		// only the scan and the claim — NOT the wait for evictability —
		// so concurrent reservations (e.g. the co-located clients of a
		// shared host pool) do not convoy behind one client's flush.
		if b.reserving {
			if !wait {
				return 0, ErrWouldBlock
			}
			b.cond.Wait()
			continue
		}
		b.reserving = true

		// Slow path: Algorithm 1 — find the best eviction window among
		// unclaimed, unpinned fragments.
		start, end, feasible := b.bestWindowLocked(size)
		if !feasible {
			b.reserving = false
			b.cond.Broadcast()
			// Every candidate window crosses a pinned or claimed
			// fragment.
			if !wait {
				return 0, ErrWouldBlock
			}
			if b.closed {
				return 0, ErrClosed
			}
			// Wait for a state change (consume/flush) and rescan.
			waitStart := b.clk.Now()
			b.cond.Wait()
			b.observeWaitLocked(b.clk.Now() - waitStart)
			continue
		}
		if !wait && !b.windowEvictableLocked(start, end) {
			b.reserving = false
			b.cond.Broadcast()
			return 0, ErrWouldBlock
		}

		// Claim the window, then release the scan serialization before
		// waiting for the claimed fragments to become evictable.
		startOff := b.frags[start].off
		endOff := b.frags[end-1].off + b.frags[end-1].size
		for i := start; i < end; i++ {
			b.frags[i].claimed = true
		}
		b.reserving = false
		b.cond.Broadcast()

		off, ok := b.evictClaimedLocked(id, size, startOff, endOff)
		if ok {
			b.stats.Reservations++
			return off, nil
		}
		// Closed while waiting: the claim was released.
		return 0, ErrClosed
	}
}

// placeInGapLocked looks for the tightest single gap that fits size and
// splits it. Returns the allocated offset.
func (b *Buffer) placeInGapLocked(id ID, size int64) (int64, bool) {
	best := -1
	var bestSize int64 = math.MaxInt64
	for i, f := range b.frags {
		if f.isGap() && !f.claimed && f.size >= size && f.size < bestSize {
			best, bestSize = i, f.size
		}
	}
	if best < 0 {
		return 0, false
	}
	g := b.frags[best]
	nf := frag{id: id, off: g.off, size: size}
	if g.size == size {
		b.frags[best] = nf
	} else {
		rest := frag{id: gapID, off: g.off + size, size: g.size - size}
		b.frags[best] = nf
		b.frags = append(b.frags, frag{})
		copy(b.frags[best+2:], b.frags[best+1:])
		b.frags[best+1] = rest
	}
	b.resident[id] = struct{}{}
	b.ep.OnInsert(id, size)
	return nf.off, true
}

// windowEvictableLocked reports whether every checkpoint in frags[start:end]
// is evictable right now.
func (b *Buffer) windowEvictableLocked(start, end int) bool {
	for i := start; i < end; i++ {
		f := b.frags[i]
		if !f.isGap() && !b.oracle.Evictable(f.id) {
			return false
		}
	}
	return true
}

// evictClaimedLocked waits (releasing the lock) for every checkpoint in
// the claimed window [startOff, endOff) to become evictable, then erases
// the window and installs the new fragment. The claim keeps the window's
// boundaries stable while waiting: no other reservation can place into,
// select, or coalesce across it (Release inside it only turns checkpoints
// into claimed gaps). Returns ok=false — with the claim released — if the
// buffer closes while waiting.
func (b *Buffer) evictClaimedLocked(id ID, size int64, startOff, endOff int64) (int64, bool) {
	// Wait for evictability (Algorithm 1 line 24: "wait until A[i]
	// evictable"). Release(id) and Notify() broadcast the cond.
	for {
		i, ok := b.fragAtLocked(startOff)
		if !ok {
			panic(fmt.Sprintf("cachebuf: %s: claimed window at %d vanished", b.name, startOff))
		}
		allEvictable := true
		for ; i < len(b.frags) && b.frags[i].off < endOff; i++ {
			f := b.frags[i]
			if f.isGap() {
				continue
			}
			if !b.oracle.Evictable(f.id) {
				allEvictable = false
				break
			}
		}
		if allEvictable {
			break
		}
		if b.closed {
			b.unclaimLocked(startOff, endOff)
			return 0, false
		}
		waitStart := b.clk.Now()
		b.cond.Wait()
		b.observeWaitLocked(b.clk.Now() - waitStart)
	}

	// Erase every fragment overlapping [startOff, endOff).
	first, _ := b.fragAtLocked(startOff)
	last := first
	for last < len(b.frags) && b.frags[last].off < endOff {
		f := b.frags[last]
		if !f.isGap() {
			delete(b.resident, f.id)
			b.stats.Evictions++
			b.stats.BytesEvicted += f.size
			b.ep.OnEvict(f.id)
			b.oracle.Evicted(f.id)
		}
		last++
	}
	windowBytes := b.frags[last-1].off + b.frags[last-1].size - startOff
	if windowBytes < size {
		// Should not happen: the scan guaranteed the window fits.
		panic(fmt.Sprintf("cachebuf: %s: selected window of %d bytes < request %d",
			b.name, windowBytes, size))
	}

	newFrags := []frag{{id: id, off: startOff, size: size}}
	if rest := windowBytes - size; rest > 0 {
		newFrags = append(newFrags, frag{id: gapID, off: startOff + size, size: rest})
	}
	tail := append([]frag{}, b.frags[last:]...)
	b.frags = append(b.frags[:first], append(newFrags, tail...)...)
	b.coalesceLocked()
	b.resident[id] = struct{}{}
	b.ep.OnInsert(id, size)
	b.cond.Broadcast()
	return startOff, true
}

// unclaimLocked clears the claim on every fragment in [startOff, endOff)
// and re-merges any gap seams the claim boundaries held apart.
func (b *Buffer) unclaimLocked(startOff, endOff int64) {
	for i := range b.frags {
		if b.frags[i].off >= startOff && b.frags[i].off < endOff {
			b.frags[i].claimed = false
		}
	}
	b.coalesceLocked()
	b.cond.Broadcast()
}

// fragAtLocked returns the index of the fragment starting at off.
func (b *Buffer) fragAtLocked(off int64) (int, bool) {
	for i, f := range b.frags {
		if f.off == off {
			return i, true
		}
		if f.off > off {
			break
		}
	}
	return 0, false
}

// bufferView adapts the locked fragment list to the read-only WindowView
// the policy layer scans. Valid only while the buffer lock is held.
type bufferView struct{ b *Buffer }

func (v bufferView) Len() int { return len(v.b.frags) }

func (v bufferView) Frag(i int) (ID, bool) {
	f := v.b.frags[i]
	if f.isGap() {
		return 0, false
	}
	return f.id, true
}

func (v bufferView) Size(i int) int64 { return v.b.frags[i].size }

func (v bufferView) PScore(i int) (float64, bool) {
	return v.b.fragPScoreLocked(v.b.frags[i])
}

func (v bufferView) SScore(i int) float64 {
	return v.b.fragSScoreLocked(v.b.frags[i])
}

// bestWindowLocked delegates window selection to the active eviction
// policy and enforces the pinning contract on whatever comes back: a
// window that is out of range, too small, or crosses a pinned/claimed
// fragment is rejected (treated as infeasible) rather than trusted —
// a buggy policy may stall a reservation but can never evict pinned
// data.
func (b *Buffer) bestWindowLocked(sizeNew int64) (start, end int, feasible bool) {
	b.stats.WindowScans++
	start, end, feasible = b.ep.SelectWindow(bufferView{b}, sizeNew)
	if !feasible {
		return 0, 0, false
	}
	if start < 0 || end > len(b.frags) || start >= end {
		return 0, 0, false
	}
	var window int64
	for i := start; i < end; i++ {
		if _, pinned := b.fragPScoreLocked(b.frags[i]); pinned {
			return 0, 0, false
		}
		window += b.frags[i].size
	}
	if window < sizeNew {
		return 0, 0, false
	}
	return start, end, true
}

// fragPScoreLocked returns the estimated seconds until the fragment
// becomes evictable plus whether it is pinned (never evictable); gaps
// score 0, unpinned.
func (b *Buffer) fragPScoreLocked(f frag) (score float64, pinned bool) {
	if f.claimed {
		return 0, true // another reservation owns this window
	}
	if f.isGap() {
		return 0, false
	}
	d, ok := b.oracle.TimeToEvictable(f.id)
	if !ok {
		return 0, true
	}
	return d.Seconds(), false
}

// fragSScoreLocked is the fragment's prefetch distance (gaps farthest).
func (b *Buffer) fragSScoreLocked(f frag) float64 {
	if f.isGap() {
		return float64(GapDistance)
	}
	return float64(b.oracle.PrefetchDistance(f.id))
}

// Release removes id from the buffer (after consumption and discard, or
// when invalidating), turning its fragment into a gap. It reports whether
// the id was resident. Unlike eviction, Release does not consult the
// oracle.
func (b *Buffer) Release(id ID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.resident[id]; !ok {
		return false
	}
	for i := range b.frags {
		if b.frags[i].id == id {
			b.frags[i].id = gapID
			break
		}
	}
	delete(b.resident, id)
	b.ep.OnRelease(id)
	b.coalesceLocked()
	b.cond.Broadcast()
	return true
}

// Contains reports id's fragment placement if resident.
func (b *Buffer) Contains(id ID) (off, size int64, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, res := b.resident[id]; !res {
		return 0, 0, false
	}
	for _, f := range b.frags {
		if f.id == id {
			return f.off, f.size, true
		}
	}
	panic(fmt.Sprintf("cachebuf: %s: resident id %d missing from fragment list", b.name, id))
}

// IfResident runs fn under the buffer's lock if id is resident and reports
// whether it ran. Eviction holds the same lock from its final
// evictability check through fragment erasure, so a state change made
// inside fn (e.g. pinning the replica by moving its FSM to READ_COMPLETE)
// cannot race an in-flight eviction of the same fragment: either fn runs
// first and the eviction re-check sees the pin, or the eviction wins and
// fn never runs. fn must not call back into the buffer.
func (b *Buffer) IfResident(id ID, fn func()) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.resident[id]; !ok {
		return false
	}
	fn()
	return true
}

// Resident returns the number of cached checkpoints.
func (b *Buffer) Resident() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.resident)
}

// FreeBytes returns the total gap bytes.
func (b *Buffer) FreeBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var free int64
	for _, f := range b.frags {
		if f.isGap() {
			free += f.size
		}
	}
	return free
}

// UsedBytes returns the bytes occupied by resident checkpoints
// (capacity minus gaps) — the sampler's occupancy probe.
func (b *Buffer) UsedBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	used := b.capacity
	for _, f := range b.frags {
		if f.isGap() {
			used -= f.size
		}
	}
	return used
}

// ScoreSummary condenses the resident checkpoints' eviction-score
// distribution for the time-series sampler: mean P-score (seconds until
// evictable; pinned fragments excluded) and mean S-score (prefetch
// distance) across resident, unpinned checkpoints.
func (b *Buffer) ScoreSummary() (meanP, meanS float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var n int
	for _, f := range b.frags {
		if f.isGap() {
			continue
		}
		p, pinned := b.fragPScoreLocked(f)
		if pinned {
			continue
		}
		meanP += p
		meanS += b.fragSScoreLocked(f)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return meanP / float64(n), meanS / float64(n)
}

// LargestGap returns the size of the largest single gap.
func (b *Buffer) LargestGap() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var max int64
	for _, f := range b.frags {
		if f.isGap() && f.size > max {
			max = f.size
		}
	}
	return max
}

// FragmentCount returns the number of fragments (checkpoints + gaps).
func (b *Buffer) FragmentCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.frags)
}

// Notify wakes any reservation waiting for evictability; the runtime calls
// it whenever a checkpoint's life-cycle state changes.
func (b *Buffer) Notify() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Close unblocks all waiters with ErrClosed; subsequent reservations fail.
func (b *Buffer) Close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Snapshot returns a copy of the buffer statistics.
func (b *Buffer) Snapshot() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// coalesceLocked merges adjacent gaps with the same claim state,
// restoring invariant 2 while keeping claimed windows' boundaries intact.
func (b *Buffer) coalesceLocked() {
	out := b.frags[:0]
	for _, f := range b.frags {
		if n := len(out); n > 0 && out[n-1].isGap() && f.isGap() &&
			out[n-1].claimed == f.claimed {
			out[n-1].size += f.size
			continue
		}
		out = append(out, f)
	}
	b.frags = out
}

// CheckInvariants validates the geometry invariants; tests call it after
// random operation sequences.
func (b *Buffer) CheckInvariants() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var off int64
	seen := make(map[ID]struct{})
	for i, f := range b.frags {
		if f.off != off {
			return fmt.Errorf("fragment %d starts at %d, want %d (hole or overlap)", i, f.off, off)
		}
		if f.size <= 0 {
			return fmt.Errorf("fragment %d has non-positive size %d", i, f.size)
		}
		if f.isGap() && i > 0 && b.frags[i-1].isGap() &&
			f.claimed == b.frags[i-1].claimed {
			return fmt.Errorf("adjacent gaps at fragments %d-%d", i-1, i)
		}
		if !f.isGap() {
			if _, dup := seen[f.id]; dup {
				return fmt.Errorf("duplicate checkpoint id %d", f.id)
			}
			seen[f.id] = struct{}{}
			if _, ok := b.resident[f.id]; !ok {
				return fmt.Errorf("fragment id %d not in resident set", f.id)
			}
		}
		off += f.size
	}
	if off != b.capacity {
		return fmt.Errorf("fragments cover %d bytes, want %d", off, b.capacity)
	}
	if len(seen) != len(b.resident) {
		return fmt.Errorf("resident set has %d ids, fragments have %d", len(b.resident), len(seen))
	}
	return nil
}
