package cachebuf

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"score/internal/simclock"
)

// fakeOracle is a scriptable Oracle for unit tests.
type fakeOracle struct {
	evictable map[ID]bool
	timeTo    map[ID]time.Duration
	pinned    map[ID]bool
	distance  map[ID]int
	evictedCh []ID
}

func newFakeOracle() *fakeOracle {
	return &fakeOracle{
		evictable: map[ID]bool{},
		timeTo:    map[ID]time.Duration{},
		pinned:    map[ID]bool{},
		distance:  map[ID]int{},
	}
}

func (o *fakeOracle) Evictable(id ID) bool { return o.evictable[id] }
func (o *fakeOracle) TimeToEvictable(id ID) (time.Duration, bool) {
	if o.pinned[id] {
		return 0, false
	}
	return o.timeTo[id], true
}
func (o *fakeOracle) PrefetchDistance(id ID) int {
	if d, ok := o.distance[id]; ok {
		return d
	}
	return GapDistance - 1
}
func (o *fakeOracle) Evicted(id ID) { o.evictedCh = append(o.evictedCh, id) }

// mark makes id immediately evictable.
func (o *fakeOracle) mark(ids ...ID) {
	for _, id := range ids {
		o.evictable[id] = true
		o.timeTo[id] = 0
	}
}

func runSim(t *testing.T, fn func(clk *simclock.Virtual)) {
	t.Helper()
	clk := simclock.NewVirtual()
	clk.Run(func() { fn(clk) })
}

func TestReserveIntoEmptyBuffer(t *testing.T) {
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 1000, o)
		off, err := b.Reserve(1, 400)
		if err != nil {
			t.Fatal(err)
		}
		if off != 0 {
			t.Errorf("offset = %d, want 0", off)
		}
		if err := b.CheckInvariants(); err != nil {
			t.Error(err)
		}
		if got := b.FreeBytes(); got != 600 {
			t.Errorf("free = %d, want 600", got)
		}
	})
}

func TestReserveRejectsBadInputs(t *testing.T) {
	runSim(t, func(clk *simclock.Virtual) {
		b := New(clk, "gpu", 1000, newFakeOracle())
		if _, err := b.Reserve(1, 2000); !errors.Is(err, ErrTooLarge) {
			t.Errorf("oversized reserve: err = %v, want ErrTooLarge", err)
		}
		if _, err := b.Reserve(1, 0); err == nil {
			t.Error("zero-size reserve should fail")
		}
		if _, err := b.Reserve(-3, 10); err == nil {
			t.Error("negative id should fail")
		}
		if _, err := b.Reserve(1, 100); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Reserve(1, 100); !errors.Is(err, ErrDuplicate) {
			t.Errorf("duplicate reserve: err = %v, want ErrDuplicate", err)
		}
	})
}

func TestUniformSizesNeverFragment(t *testing.T) {
	// §4.1.5: "When the checkpoint sizes are identical, the management
	// of the cache buffer is straightforward: each eviction creates a
	// gap that is large enough to accommodate a new checkpoint."
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 4*128, o)
		for i := ID(0); i < 64; i++ {
			o.mark(i) // everything already flushed: free to evict
			if _, err := b.Reserve(i, 128); err != nil {
				t.Fatalf("reserve %d: %v", i, err)
			}
			if err := b.CheckInvariants(); err != nil {
				t.Fatalf("after reserve %d: %v", i, err)
			}
		}
		if got := b.Resident(); got != 4 {
			t.Errorf("resident = %d, want 4", got)
		}
		// Fragment list stays small: 4 checkpoints, no gaps.
		if got := b.FragmentCount(); got != 4 {
			t.Errorf("fragments = %d, want 4", got)
		}
	})
}

func TestReleaseCreatesAndCoalescesGaps(t *testing.T) {
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 300, o)
		for i := ID(0); i < 3; i++ {
			if _, err := b.Reserve(i, 100); err != nil {
				t.Fatal(err)
			}
		}
		if !b.Release(1) {
			t.Fatal("Release(1) = false")
		}
		if b.Release(1) {
			t.Error("double Release(1) should return false")
		}
		if got := b.LargestGap(); got != 100 {
			t.Errorf("largest gap = %d, want 100", got)
		}
		b.Release(0)
		// Gaps at [0,100) and [100,200) must coalesce.
		if got := b.LargestGap(); got != 200 {
			t.Errorf("after coalescing, largest gap = %d, want 200", got)
		}
		b.Release(2)
		if got := b.LargestGap(); got != 300 {
			t.Errorf("fully released, largest gap = %d, want 300", got)
		}
		if err := b.CheckInvariants(); err != nil {
			t.Error(err)
		}
	})
}

func TestEvictionPrefersSmallestPScore(t *testing.T) {
	// Three resident checkpoints; the new one needs one slot. The
	// checkpoint with the smallest time-to-evictable must be chosen.
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 300, o)
		for i := ID(0); i < 3; i++ {
			if _, err := b.Reserve(i, 100); err != nil {
				t.Fatal(err)
			}
		}
		o.evictable[0], o.timeTo[0] = false, 5*time.Second
		o.evictable[1], o.timeTo[1] = false, 1*time.Second
		o.evictable[2], o.timeTo[2] = false, 3*time.Second

		// Simulate the flush of ckpt 1 finishing after 1s.
		clk.Go(func() {
			clk.Sleep(time.Second)
			o.mark(1)
			b.Notify()
		})
		start := clk.Now()
		off, err := b.Reserve(10, 100)
		if err != nil {
			t.Fatal(err)
		}
		if waited := clk.Now() - start; waited != time.Second {
			t.Errorf("waited %v for eviction, want 1s (the min p_score window)", waited)
		}
		if off != 100 {
			t.Errorf("new checkpoint at offset %d, want 100 (ckpt 1's slot)", off)
		}
		if _, _, ok := b.Contains(1); ok {
			t.Error("ckpt 1 should have been evicted")
		}
		for _, id := range []ID{0, 2} {
			if _, _, ok := b.Contains(id); !ok {
				t.Errorf("ckpt %d should still be resident", id)
			}
		}
	})
}

func TestEvictionTieBreaksOnPrefetchDistance(t *testing.T) {
	// All three candidates evictable now (p_score 0 each): the one
	// whose prefetch hint is farthest from the queue head must go.
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 300, o)
		for i := ID(0); i < 3; i++ {
			if _, err := b.Reserve(i, 100); err != nil {
				t.Fatal(err)
			}
		}
		o.mark(0, 1, 2)
		o.distance[0] = 2 // restored soon
		o.distance[1] = 50
		o.distance[2] = 7
		off, err := b.Reserve(10, 100)
		if err != nil {
			t.Fatal(err)
		}
		if off != 100 {
			t.Errorf("offset = %d, want 100 (ckpt 1, farthest hint)", off)
		}
		if _, _, ok := b.Contains(1); ok {
			t.Error("ckpt 1 (farthest prefetch hint) should have been evicted")
		}
	})
}

func TestPinnedFragmentsNeverEvicted(t *testing.T) {
	// §2 condition 4: a prefetched-but-unconsumed checkpoint cannot be
	// evicted, even if everything else looks worse.
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 300, o)
		for i := ID(0); i < 3; i++ {
			if _, err := b.Reserve(i, 100); err != nil {
				t.Fatal(err)
			}
		}
		o.pinned[1] = true
		o.evictable[0], o.timeTo[0] = false, 2*time.Second
		o.evictable[2], o.timeTo[2] = false, 2*time.Second
		clk.Go(func() {
			clk.Sleep(2 * time.Second)
			o.mark(0, 2)
			b.Notify()
		})
		if _, err := b.Reserve(10, 100); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := b.Contains(1); !ok {
			t.Error("pinned ckpt 1 must never be evicted")
		}
	})
}

func TestGapAwareWindowCombinesGapAndCheckpoint(t *testing.T) {
	// §4.1.5: "a small checkpoint may not be a good candidate for
	// eviction by itself but becomes so if it is surrounded by large
	// gaps". Layout: [ck0 40][gap 30][ck1 10][gap 30][ck2 190]. A
	// 60-byte request fits no single gap; the cheapest window is
	// gap+ck1+gap (70 bytes, p_score = ck1 only) rather than evicting
	// ck0 or ck2.
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 300, o)
		layout := []struct {
			id   ID
			size int64
		}{{0, 40}, {3, 30}, {1, 10}, {4, 30}, {2, 190}}
		for _, f := range layout {
			if _, err := b.Reserve(f.id, f.size); err != nil {
				t.Fatal(err)
			}
		}
		b.Release(3) // becomes gap [40,70)
		b.Release(4) // becomes gap [80,110)

		o.evictable[0], o.timeTo[0] = false, 10*time.Second
		o.mark(1) // small checkpoint between the gaps: free
		o.evictable[2], o.timeTo[2] = false, 10*time.Second

		done := make(chan struct{})
		var off int64
		var err error
		clk.Go(func() {
			defer close(done)
			off, err = b.Reserve(10, 60)
		})
		// The reservation must complete without waiting 10s: the
		// gap+ck1+gap window is immediately evictable.
		clk.Sleep(time.Second)
		select {
		case <-done:
		default:
			t.Fatal("reservation still blocked; gap-aware window not used")
		}
		if err != nil {
			t.Fatal(err)
		}
		if off != 40 {
			t.Errorf("offset = %d, want 40 (start of the coalesced window)", off)
		}
		if _, _, ok := b.Contains(1); ok {
			t.Error("ckpt 1 should have been sacrificed with its surrounding gaps")
		}
		for _, id := range []ID{0, 2} {
			if _, _, ok := b.Contains(id); !ok {
				t.Errorf("ckpt %d should still be resident", id)
			}
		}
		if err := b.CheckInvariants(); err != nil {
			t.Error(err)
		}
	})
}

func TestResidualGapInsertedAfterEviction(t *testing.T) {
	// Algorithm 1 line 27-28: when the evicted window is larger than
	// the request, the residue becomes a gap.
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 300, o)
		if _, err := b.Reserve(0, 300); err != nil {
			t.Fatal(err)
		}
		o.mark(0)
		off, err := b.Reserve(1, 100)
		if err != nil {
			t.Fatal(err)
		}
		if off != 0 {
			t.Errorf("offset = %d, want 0", off)
		}
		if got := b.FreeBytes(); got != 200 {
			t.Errorf("free = %d, want 200 (residual gap)", got)
		}
		if got := b.LargestGap(); got != 200 {
			t.Errorf("largest gap = %d, want 200", got)
		}
	})
}

func TestTryReserveDoesNotBlock(t *testing.T) {
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 200, o)
		if _, err := b.Reserve(0, 200); err != nil {
			t.Fatal(err)
		}
		o.evictable[0], o.timeTo[0] = false, time.Hour
		start := clk.Now()
		if _, err := b.TryReserve(1, 100); !errors.Is(err, ErrWouldBlock) {
			t.Errorf("TryReserve = %v, want ErrWouldBlock", err)
		}
		if clk.Now() != start {
			t.Error("TryReserve advanced simulated time")
		}
		o.mark(0)
		if _, err := b.TryReserve(1, 100); err != nil {
			t.Errorf("TryReserve after flush: %v", err)
		}
	})
}

func TestCloseUnblocksWaiters(t *testing.T) {
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 100, o)
		if _, err := b.Reserve(0, 100); err != nil {
			t.Fatal(err)
		}
		o.pinned[0] = true
		errCh := make(chan error, 1)
		wg := simclock.NewWaitGroup(clk)
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			_, err := b.Reserve(1, 100)
			errCh <- err
		})
		clk.Sleep(time.Second)
		b.Close()
		wg.Wait()
		if err := <-errCh; !errors.Is(err, ErrClosed) {
			t.Errorf("blocked Reserve after Close: err = %v, want ErrClosed", err)
		}
		if _, err := b.Reserve(2, 10); !errors.Is(err, ErrClosed) {
			t.Errorf("Reserve on closed buffer: err = %v, want ErrClosed", err)
		}
	})
}

func TestCloseDuringEvictionWaitReturnsPromptly(t *testing.T) {
	// Regression: a Reserve blocked waiting for a feasible-but-not-yet-
	// evictable window (finite TimeToEvictable) must return ErrClosed on
	// Close instead of spinning through rescan retries forever.
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 100, o)
		if _, err := b.Reserve(0, 100); err != nil {
			t.Fatal(err)
		}
		// Feasible window (not pinned) that never becomes evictable.
		o.evictable[0], o.timeTo[0] = false, time.Hour
		errCh := make(chan error, 1)
		wg := simclock.NewWaitGroup(clk)
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			_, err := b.Reserve(1, 100)
			errCh <- err
		})
		clk.Sleep(time.Second)
		b.Close()
		wg.Wait()
		if err := <-errCh; !errors.Is(err, ErrClosed) {
			t.Errorf("Reserve after Close = %v, want ErrClosed", err)
		}
	})
}

func TestOracleEvictedCallback(t *testing.T) {
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 100, o)
		if _, err := b.Reserve(7, 100); err != nil {
			t.Fatal(err)
		}
		o.mark(7)
		if _, err := b.Reserve(8, 100); err != nil {
			t.Fatal(err)
		}
		if len(o.evictedCh) != 1 || o.evictedCh[0] != 7 {
			t.Errorf("evicted callbacks = %v, want [7]", o.evictedCh)
		}
	})
}

func TestBestFitGapSelection(t *testing.T) {
	// The fast path should choose the tightest fitting gap, preserving
	// large gaps for large checkpoints.
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 1000, o)
		// Layout: ck0 [0,100) ck1 [100,400) ck2 [400,450) ck3 [450,1000)
		for _, f := range []struct {
			id   ID
			size int64
		}{{0, 100}, {1, 300}, {2, 50}, {3, 550}} {
			if _, err := b.Reserve(f.id, f.size); err != nil {
				t.Fatal(err)
			}
		}
		b.Release(1) // gap of 300 at 100
		b.Release(2) // gap of 50 at 400  (not adjacent: ck at 0? no—)

		// Wait: releasing 1 and 2 leaves [100,400) and [400,450)
		// adjacent → they coalesce to one 350 gap. Rebuild scenario:
		// release only 1 and 3 instead for two separate gaps.
		if err := b.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 1000, o)
		for _, f := range []struct {
			id   ID
			size int64
		}{{0, 100}, {1, 300}, {2, 50}, {3, 550}} {
			if _, err := b.Reserve(f.id, f.size); err != nil {
				t.Fatal(err)
			}
		}
		b.Release(1) // gap [100,400), size 300
		b.Release(3) // gap [450,1000), size 550
		off, err := b.Reserve(9, 250)
		if err != nil {
			t.Fatal(err)
		}
		if off != 100 {
			t.Errorf("offset = %d, want 100 (best-fit into the 300 gap)", off)
		}
	})
}

func TestReserveWaitsWhenAllPinnedThenProceeds(t *testing.T) {
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 100, o)
		if _, err := b.Reserve(0, 100); err != nil {
			t.Fatal(err)
		}
		o.pinned[0] = true
		clk.Go(func() {
			clk.Sleep(4 * time.Second) // consumption happens later
			o.pinned[0] = false
			o.mark(0)
			b.Notify()
		})
		start := clk.Now()
		if _, err := b.Reserve(1, 100); err != nil {
			t.Fatal(err)
		}
		if waited := clk.Now() - start; waited != 4*time.Second {
			t.Errorf("waited %v, want 4s (until unpin)", waited)
		}
	})
}

func TestRandomOpsPreserveInvariantsProperty(t *testing.T) {
	// Property: any interleaving of reserves (random sizes) and
	// releases keeps the fragment geometry valid.
	f := func(seed int64) bool {
		ok := true
		clk := simclock.NewVirtual()
		clk.Run(func() {
			rng := rand.New(rand.NewSource(seed))
			o := newFakeOracle()
			b := New(clk, "gpu", 1<<20, o)
			live := []ID{}
			next := ID(0)
			for op := 0; op < 300; op++ {
				if rng.Intn(3) > 0 || len(live) == 0 {
					id := next
					next++
					size := int64(rng.Intn(1<<16) + 1)
					o.mark(id) // evictable immediately: no blocking
					_, err := b.Reserve(id, size)
					if err != nil {
						ok = false
						return
					}
					if _, _, res := b.Contains(id); res {
						live = append(live, id)
					}
				} else {
					i := rng.Intn(len(live))
					id := live[i]
					// The id may have been evicted by a reserve.
					b.Release(id)
					live = append(live[:i], live[i+1:]...)
				}
				// Prune live ids that got evicted.
				kept := live[:0]
				for _, id := range live {
					if _, _, res := b.Contains(id); res {
						kept = append(kept, id)
					}
				}
				live = kept
				if err := b.CheckInvariants(); err != nil {
					t.Logf("seed %d op %d: %v", seed, op, err)
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 100, o)
		if _, err := b.Reserve(0, 100); err != nil {
			t.Fatal(err)
		}
		o.mark(0)
		if _, err := b.Reserve(1, 50); err != nil {
			t.Fatal(err)
		}
		s := b.Snapshot()
		if s.Reservations != 2 {
			t.Errorf("reservations = %d, want 2", s.Reservations)
		}
		if s.Evictions != 1 {
			t.Errorf("evictions = %d, want 1", s.Evictions)
		}
		if s.BytesEvicted != 100 {
			t.Errorf("bytes evicted = %d, want 100", s.BytesEvicted)
		}
	})
}
