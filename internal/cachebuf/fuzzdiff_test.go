package cachebuf

// FuzzEvictionPolicy: the differential lockstep driven by an arbitrary
// byte-encoded event stream instead of a seeded generator, replayed
// against every registered policy and its reference model. One byte is
// one event: the high nibble selects the operation, the low nibble the
// checkpoint id.

import (
	"testing"
	"time"

	"score/internal/simclock"
)

func FuzzEvictionPolicy(f *testing.F) {
	f.Add([]byte{0x00, 0xa1, 0x02})
	f.Add([]byte{
		0x00, 0x01, 0x02, 0x03, // reserve 4 ids
		0xa0, 0xa1, // mark two evictable
		0x04, 0x05, // reserve more, forcing eviction
		0x80, 0xc1, 0xe2, 0x06,
	})
	f.Add(func() []byte {
		var seed []byte
		for i := 0; i < 150; i++ {
			seed = append(seed, byte(i*53))
		}
		return seed
	}())

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, pol := range Policies() {
			pol := pol
			clk := simclock.NewVirtual()
			clk.Run(func() {
				ls := newLockstep(t, clk, pol, 1024, 16)
				for i, op := range data {
					if t.Failed() {
						return
					}
					id := ID(op & 0x0F)
					switch op >> 4 {
					case 0, 1, 2, 3, 4, 5: // reserve, size from stream position
						ls.reserve(id, int64(1+(i*131)%300))
					case 6, 7: // release
						ls.release(id)
					case 8, 9: // touch
						ls.touch(id)
					case 0xa: // mark evictable now
						ls.o.pinned[id] = false
						ls.o.evictable[id] = true
						ls.o.timeTo[id] = 0
					case 0xb: // evictable in a whole number of seconds
						ls.o.pinned[id] = false
						ls.o.evictable[id] = false
						ls.o.timeTo[id] = time.Duration(1+int(id)%4) * time.Second
					case 0xc: // pin
						ls.o.pinned[id] = true
					case 0xd: // prefetch-order hint
						ls.o.distance[id] = int(op)
					default: // lookup (hit/miss compare)
						ls.lookup(id)
					}
				}
			})
		}
	})
}
