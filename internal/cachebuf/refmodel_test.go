package cachebuf

// Naive reference models for the differential harness. The modelBuffer
// re-implements the buffer's single-threaded reservation semantics in
// the most obvious way possible — explicit fragment slices, offsets by
// prefix sum, O(N³) exhaustive window enumeration, direct float
// summation for scores — and each model policy keeps its state as
// plainly ordered ID slices (coldest first) instead of the production
// sequence-counter maps. The production buffer and the model agree on
// every observable (victims, offsets, errors, residency) iff the
// production's incremental scans and event bookkeeping are correct.
//
// Scope: the model is single-threaded and models TryReserve only (no
// claims, no waiting), with id spaces far below the production ghost
// bound so unbounded model histories match bounded production ones.

import (
	"math"
	"time"
)

// refOracle is the oracle subset the model consults.
type refOracle interface {
	Evictable(id ID) bool
	TimeToEvictable(id ID) (time.Duration, bool)
	PrefetchDistance(id ID) int
}

type mFrag struct {
	id   ID // gapID for gaps
	size int64
}

type modelBuffer struct {
	capacity int64
	frags    []mFrag
	oracle   refOracle
	policy   modelPolicy
	victims  []ID // victims of the last successful tryReserve
}

func newModelBuffer(capacity int64, o refOracle, p modelPolicy) *modelBuffer {
	return &modelBuffer{
		capacity: capacity,
		frags:    []mFrag{{id: gapID, size: capacity}},
		oracle:   o,
		policy:   p,
	}
}

func (m *modelBuffer) offsetOf(i int) int64 {
	var off int64
	for k := 0; k < i; k++ {
		off += m.frags[k].size
	}
	return off
}

func (m *modelBuffer) indexOf(id ID) int {
	for i, f := range m.frags {
		if f.id == id {
			return i
		}
	}
	return -1
}

func (m *modelBuffer) resident(id ID) bool { return m.indexOf(id) >= 0 }

func (m *modelBuffer) usedBytes() int64 {
	var used int64
	for _, f := range m.frags {
		if f.id != gapID {
			used += f.size
		}
	}
	return used
}

func (m *modelBuffer) coalesce() {
	out := m.frags[:0]
	for _, f := range m.frags {
		if n := len(out); n > 0 && out[n-1].id == gapID && f.id == gapID {
			out[n-1].size += f.size
			continue
		}
		out = append(out, f)
	}
	m.frags = out
}

func (m *modelBuffer) pinned(f mFrag) bool {
	if f.id == gapID {
		return false
	}
	_, ok := m.oracle.TimeToEvictable(f.id)
	return !ok
}

func (m *modelBuffer) release(id ID) bool {
	i := m.indexOf(id)
	if i < 0 {
		return false
	}
	m.frags[i].id = gapID
	m.policy.release(id)
	m.coalesce()
	return true
}

func (m *modelBuffer) touch(id ID) {
	if m.resident(id) {
		m.policy.touch(id)
	}
}

// tryReserve mirrors Buffer.TryReserve: duplicate check, best-fit
// single-gap fast path (tightest gap, first on ties), then exhaustive
// window enumeration; a chosen window whose members are not all
// evictable right now is ErrWouldBlock with no side effects.
func (m *modelBuffer) tryReserve(id ID, size int64) (int64, error) {
	m.victims = nil
	if size > m.capacity {
		return 0, ErrTooLarge
	}
	if m.resident(id) {
		return 0, ErrDuplicate
	}

	best := -1
	var bestSize int64 = math.MaxInt64
	for i, f := range m.frags {
		if f.id == gapID && f.size >= size && f.size < bestSize {
			best, bestSize = i, f.size
		}
	}
	if best >= 0 {
		off := m.offsetOf(best)
		repl := []mFrag{{id: id, size: size}}
		if rest := m.frags[best].size - size; rest > 0 {
			repl = append(repl, mFrag{id: gapID, size: rest})
		}
		m.frags = append(m.frags[:best:best], append(repl, m.frags[best+1:]...)...)
		m.policy.insert(id)
		return off, nil
	}

	start, end, feasible := m.selectWindow(size)
	if !feasible {
		return 0, ErrWouldBlock
	}
	for i := start; i < end; i++ {
		if f := m.frags[i]; f.id != gapID && !m.oracle.Evictable(f.id) {
			return 0, ErrWouldBlock
		}
	}
	off := m.offsetOf(start)
	var windowBytes int64
	for i := start; i < end; i++ {
		f := m.frags[i]
		windowBytes += f.size
		if f.id != gapID {
			m.victims = append(m.victims, f.id)
			m.policy.evict(f.id)
		}
	}
	repl := []mFrag{{id: id, size: size}}
	if rest := windowBytes - size; rest > 0 {
		repl = append(repl, mFrag{id: gapID, size: rest})
	}
	m.frags = append(m.frags[:start:start], append(repl, m.frags[end:]...)...)
	m.coalesce()
	m.policy.insert(id)
	return off, nil
}

// selectWindow enumerates, for every start index, the minimal window
// reaching size, drops windows containing pinned fragments, and keeps
// the one the policy ranks best (first in start order on ties).
func (m *modelBuffer) selectWindow(size int64) (int, int, bool) {
	n := len(m.frags)
	bestStart, bestEnd := -1, -1
	for i := 0; i < n; i++ {
		var w int64
		for j := i; j < n; j++ {
			w += m.frags[j].size
			if w < size {
				continue
			}
			ok := true
			for k := i; k <= j; k++ {
				if m.pinned(m.frags[k]) {
					ok = false
					break
				}
			}
			if ok {
				if bestStart < 0 || m.policy.better(m, i, j+1, bestStart, bestEnd) {
					bestStart, bestEnd = i, j+1
				}
			}
			break // only the minimal window per start is a candidate
		}
	}
	if bestStart < 0 {
		return 0, 0, false
	}
	return bestStart, bestEnd, true
}

// modelPolicy is the reference-model counterpart of EvictionPolicy:
// same event stream, but window ranking is a pairwise comparison so the
// model never needs the production's incremental state.
type modelPolicy interface {
	name() string
	insert(id ID)
	touch(id ID)
	evict(id ID)
	release(id ID)
	// better reports whether window a strictly beats window b.
	better(m *modelBuffer, aStart, aEnd, bStart, bEnd int) bool
}

func newModelPolicy(p Policy) modelPolicy {
	switch p {
	case PolicyScore:
		return &modelScore{}
	case PolicyLRU:
		return &modelLRU{}
	case PolicyFIFO:
		return &modelFIFO{}
	case PolicyLRUK:
		return &modelLRUK{k: 2, hist: map[ID][]int64{}}
	case Policy2Q:
		return &model2Q{}
	case PolicyARC:
		return &modelARC{}
	case PolicyClockPro:
		return &modelClockPro{}
	}
	return nil
}

// idList helpers: plain ordered slices, coldest first.

func listRemove(l []ID, id ID) []ID {
	for i, v := range l {
		if v == id {
			return append(l[:i:i], l[i+1:]...)
		}
	}
	return l
}

func listIndex(l []ID, id ID) int {
	for i, v := range l {
		if v == id {
			return i
		}
	}
	return -1
}

func listHas(l []ID, id ID) bool { return listIndex(l, id) >= 0 }

// heatBetter ranks two windows by the coldest-max-heat rule shared by
// every recency/frequency model (gap-only windows are coldest).
func heatBetter(m *modelBuffer, aStart, aEnd, bStart, bEnd int, heat func(ID) int64) bool {
	maxHeat := func(start, end int) int64 {
		h := int64(math.MinInt64)
		for i := start; i < end; i++ {
			if f := m.frags[i]; f.id != gapID {
				if v := heat(f.id); v > h {
					h = v
				}
			}
		}
		return h
	}
	return maxHeat(aStart, aEnd) < maxHeat(bStart, bEnd)
}

// ---------------------------------------------------------------------------
// Score: direct float summation of the oracle's p/s values.

type modelScore struct{}

func (*modelScore) name() string   { return "score" }
func (*modelScore) insert(ID)      {}
func (*modelScore) touch(ID)       {}
func (*modelScore) evict(ID)       {}
func (*modelScore) release(ID)     {}

func (*modelScore) better(m *modelBuffer, aStart, aEnd, bStart, bEnd int) bool {
	score := func(start, end int) (p, s float64) {
		for i := start; i < end; i++ {
			f := m.frags[i]
			if f.id == gapID {
				s += float64(GapDistance)
				continue
			}
			d, _ := m.oracle.TimeToEvictable(f.id)
			p += d.Seconds()
			s += float64(m.oracle.PrefetchDistance(f.id))
		}
		return p, s
	}
	pa, sa := score(aStart, aEnd)
	pb, sb := score(bStart, bEnd)
	return pa < pb || (pa == pb && sa > sb)
}

// ---------------------------------------------------------------------------
// LRU: one list, least recently accessed first.

type modelLRU struct{ order []ID }

func (*modelLRU) name() string { return "lru" }
func (p *modelLRU) insert(id ID) { p.order = append(listRemove(p.order, id), id) }
func (p *modelLRU) touch(id ID)  { p.order = append(listRemove(p.order, id), id) }
func (p *modelLRU) evict(id ID)  { p.order = listRemove(p.order, id) }
func (p *modelLRU) release(id ID) { p.order = listRemove(p.order, id) }
func (p *modelLRU) better(m *modelBuffer, a, b, c, d int) bool {
	return heatBetter(m, a, b, c, d, func(id ID) int64 { return int64(listIndex(p.order, id)) })
}

// ---------------------------------------------------------------------------
// FIFO: one list, oldest insertion first; touches ignored.

type modelFIFO struct{ order []ID }

func (*modelFIFO) name() string { return "fifo" }
func (p *modelFIFO) insert(id ID) { p.order = append(listRemove(p.order, id), id) }
func (p *modelFIFO) touch(ID)     {}
func (p *modelFIFO) evict(id ID)  { p.order = listRemove(p.order, id) }
func (p *modelFIFO) release(id ID) { p.order = listRemove(p.order, id) }
func (p *modelFIFO) better(m *modelBuffer, a, b, c, d int) bool {
	return heatBetter(m, a, b, c, d, func(id ID) int64 { return int64(listIndex(p.order, id)) })
}

// ---------------------------------------------------------------------------
// LRU-K: full (untrimmed) access history; backward K-distance ranking
// with the <K-accesses class colder and LRU-ordered among itself.

type modelLRUK struct {
	k    int
	seq  int64
	hist map[ID][]int64
}

func (*modelLRUK) name() string { return "lru-k" }
func (p *modelLRUK) access(id ID) {
	p.seq++
	p.hist[id] = append(p.hist[id], p.seq)
}
func (p *modelLRUK) insert(id ID) { p.access(id) }
func (p *modelLRUK) touch(id ID)  { p.access(id) }
func (p *modelLRUK) evict(ID)     {} // history survives eviction
func (p *modelLRUK) release(id ID) { delete(p.hist, id) }
func (p *modelLRUK) heat(id ID) int64 {
	h := p.hist[id]
	if len(h) == 0 {
		return coldestUnknown
	}
	if len(h) < p.k {
		return h[len(h)-1] - classBias
	}
	return h[len(h)-p.k]
}
func (p *modelLRUK) better(m *modelBuffer, a, b, c, d int) bool {
	return heatBetter(m, a, b, c, d, p.heat)
}

// ---------------------------------------------------------------------------
// 2Q: probation FIFO (a1in) + main LRU (am) + ghost (a1out), as lists.

type model2Q struct {
	a1in  []ID
	am    []ID
	a1out []ID
}

func (*model2Q) name() string { return "2q" }
func (p *model2Q) insert(id ID) {
	if listHas(p.a1out, id) {
		p.a1out = listRemove(p.a1out, id)
		p.am = append(p.am, id)
		return
	}
	p.a1in = append(p.a1in, id)
}
func (p *model2Q) touch(id ID) {
	if listHas(p.am, id) {
		p.am = append(listRemove(p.am, id), id)
	}
	// touches inside a1in deliberately do nothing
}
func (p *model2Q) evict(id ID) {
	if listHas(p.a1in, id) {
		p.a1in = listRemove(p.a1in, id)
		if !listHas(p.a1out, id) {
			p.a1out = append(p.a1out, id)
		}
		return
	}
	p.am = listRemove(p.am, id)
}
func (p *model2Q) release(id ID) {
	p.a1in = listRemove(p.a1in, id)
	p.am = listRemove(p.am, id)
}
func (p *model2Q) heat(id ID) int64 {
	if i := listIndex(p.am, id); i >= 0 {
		return int64(i)
	}
	if i := listIndex(p.a1in, id); i >= 0 {
		return int64(i) - classBias
	}
	return coldestUnknown
}
func (p *model2Q) better(m *modelBuffer, a, b, c, d int) bool {
	return heatBetter(m, a, b, c, d, p.heat)
}

// ---------------------------------------------------------------------------
// ARC: T1/T2 LRU lists, B1/B2 ghost lists, adaptive target p.

type modelARC struct {
	t1, t2 []ID
	b1, b2 []ID
	p      int
}

func (*modelARC) name() string { return "arc" }
func (p *modelARC) insert(id ID) {
	switch {
	case listHas(p.b1, id):
		d := len(p.b2) / max(len(p.b1), 1)
		if d < 1 {
			d = 1
		}
		p.p = min(p.p+d, len(p.t1)+len(p.t2)+1)
		p.b1 = listRemove(p.b1, id)
		p.t2 = append(p.t2, id)
	case listHas(p.b2, id):
		d := len(p.b1) / max(len(p.b2), 1)
		if d < 1 {
			d = 1
		}
		p.p = max(p.p-d, 0)
		p.b2 = listRemove(p.b2, id)
		p.t2 = append(p.t2, id)
	default:
		p.t1 = append(p.t1, id)
	}
}
func (p *modelARC) touch(id ID) {
	if listHas(p.t1, id) {
		p.t1 = listRemove(p.t1, id)
		p.t2 = append(p.t2, id)
		return
	}
	if listHas(p.t2, id) {
		p.t2 = append(listRemove(p.t2, id), id)
	}
}
func (p *modelARC) evict(id ID) {
	if listHas(p.t1, id) {
		p.t1 = listRemove(p.t1, id)
		if !listHas(p.b1, id) {
			p.b1 = append(p.b1, id)
		}
		return
	}
	if listHas(p.t2, id) {
		p.t2 = listRemove(p.t2, id)
		if !listHas(p.b2, id) {
			p.b2 = append(p.b2, id)
		}
	}
}
func (p *modelARC) release(id ID) {
	p.t1 = listRemove(p.t1, id)
	p.t2 = listRemove(p.t2, id)
}
func (p *modelARC) better(m *modelBuffer, a, b, c, d int) bool {
	preferT1 := len(p.t1) > 0 && (len(p.t1) > p.p || len(p.t2) == 0)
	heat := func(id ID) int64 {
		if i := listIndex(p.t1, id); i >= 0 {
			if preferT1 {
				return int64(i)
			}
			return int64(i) + classBias
		}
		if i := listIndex(p.t2, id); i >= 0 {
			if preferT1 {
				return int64(i) + classBias
			}
			return int64(i)
		}
		return coldestUnknown
	}
	return heatBetter(m, a, b, c, d, heat)
}

// ---------------------------------------------------------------------------
// CLOCK-Pro: explicit ring of entries (a different representation from
// the production policy's parallel maps), same transition rules.

type mcpEntry struct {
	id       ID
	hot, ref bool
}

type modelClockPro struct {
	ring  []mcpEntry
	hand  int
	ghost []ID
}

func (*modelClockPro) name() string { return "clock-pro" }

func (p *modelClockPro) entryIndex(id ID) int {
	for i, e := range p.ring {
		if e.id == id {
			return i
		}
	}
	return -1
}

func (p *modelClockPro) insert(id ID) {
	hot := false
	if listHas(p.ghost, id) {
		p.ghost = listRemove(p.ghost, id)
		hot = true
	}
	e := mcpEntry{id: id, hot: hot}
	if p.hand == 0 || len(p.ring) == 0 {
		p.ring = append(p.ring, e)
	} else {
		p.ring = append(p.ring[:p.hand:p.hand], append([]mcpEntry{e}, p.ring[p.hand:]...)...)
		p.hand++
	}
}

func (p *modelClockPro) touch(id ID) {
	if i := p.entryIndex(id); i >= 0 {
		p.ring[i].ref = true
	}
}

func (p *modelClockPro) removeEntry(i int) {
	p.ring = append(p.ring[:i:i], p.ring[i+1:]...)
	if p.hand > i {
		p.hand--
	}
	if len(p.ring) == 0 {
		p.hand = 0
	} else {
		p.hand %= len(p.ring)
	}
}

func (p *modelClockPro) evict(id ID) {
	for n := 0; len(p.ring) > 0 && n < 2*len(p.ring)+2; n++ {
		cur := &p.ring[p.hand]
		if cur.id == id {
			break
		}
		if cur.ref {
			cur.ref = false
			if !cur.hot {
				cur.hot = true
			}
		} else if cur.hot {
			cur.hot = false
		}
		p.hand = (p.hand + 1) % len(p.ring)
	}
	if i := p.entryIndex(id); i >= 0 {
		if !p.ring[i].hot && !listHas(p.ghost, id) {
			p.ghost = append(p.ghost, id)
		}
		p.removeEntry(i)
	}
}

func (p *modelClockPro) release(id ID) {
	if i := p.entryIndex(id); i >= 0 {
		p.removeEntry(i)
	}
}

func (p *modelClockPro) sweepRanks() map[ID]int {
	ranks := make(map[ID]int, len(p.ring))
	ring := append([]mcpEntry(nil), p.ring...)
	pos := p.hand
	rank := 0
	for len(ring) > 0 {
		pos %= len(ring)
		e := &ring[pos]
		switch {
		case !e.hot && !e.ref:
			ranks[e.id] = rank
			rank++
			ring = append(ring[:pos], ring[pos+1:]...)
		case !e.hot && e.ref:
			e.ref = false
			e.hot = true
			pos++
		case e.hot && e.ref:
			e.ref = false
			pos++
		default:
			e.hot = false
			pos++
		}
	}
	return ranks
}

func (p *modelClockPro) better(m *modelBuffer, a, b, c, d int) bool {
	ranks := p.sweepRanks()
	n := len(ranks)
	heat := func(id ID) int64 {
		if r, ok := ranks[id]; ok {
			return int64(n - r)
		}
		return coldestUnknown
	}
	return heatBetter(m, a, b, c, d, heat)
}
