package cachebuf

// Metamorphic properties of the eviction policies:
//
//  1. Score policy: the chosen eviction window is a function of the
//     oracle's scores over the buffer geometry, never of insertion
//     order. Permuting the same-instant insertion order of fragments
//     with identical scores ("unrelated" fragments) must not change the
//     chosen window's offset, nor which score class it sacrifices.
//  2. LRU and LRU-K are stack algorithms under uniform fragment sizes:
//     doubling the capacity can never lower the hit count on the same
//     access trace (the inclusion property).

import (
	"fmt"
	"math/rand"
	"testing"

	"score/internal/simclock"
)

func permutations(ids []ID) [][]ID {
	if len(ids) <= 1 {
		return [][]ID{append([]ID(nil), ids...)}
	}
	var out [][]ID
	for i := range ids {
		rest := make([]ID, 0, len(ids)-1)
		rest = append(rest, ids[:i]...)
		rest = append(rest, ids[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]ID{ids[i]}, p...))
		}
	}
	return out
}

// TestMetamorphicScoreInsertOrderInvariance fills the buffer with two
// groups of same-scored checkpoints (near group: low prefetch distance,
// soon to be restored; far group: high distance) at the same virtual
// instant, then forces an eviction. Whatever order the group members
// were inserted in, the score policy must evict the same window: the
// far group's region, at the same offset.
func TestMetamorphicScoreInsertOrderInvariance(t *testing.T) {
	near := []ID{0, 1, 2}  // distance 3: restore imminent, keep
	far := []ID{3, 4, 5}   // distance 50: restore far away, sacrifice
	const fragSize = 100
	wantVictims := map[ID]bool{3: true, 4: true, 5: true}

	type outcome struct {
		off     int64
		victims map[ID]bool
	}
	var first *outcome
	for _, np := range permutations(near) {
		for _, fp := range permutations(far) {
			np, fp := np, fp
			runSim(t, func(clk *simclock.Virtual) {
				o := newDiffOracle(t)
				b := New(clk, "meta", 600, o)
				for _, id := range append(append([]ID(nil), np...), fp...) {
					o.evictable[id] = true
					if listHas(np, id) {
						o.distance[id] = 3
					} else {
						o.distance[id] = 50
					}
					if _, err := b.Reserve(id, fragSize); err != nil {
						t.Fatalf("insert %d: %v", id, err)
					}
				}
				o.victims = nil
				off, err := b.Reserve(10, 3*fragSize)
				if err != nil {
					t.Fatalf("eviction reserve: %v", err)
				}
				got := outcome{off: off, victims: map[ID]bool{}}
				for _, v := range o.victims {
					got.victims[v] = true
				}
				if first == nil {
					first = &got
					for id := range got.victims {
						if !wantVictims[id] {
							t.Fatalf("order %v/%v: evicted near-group id %d", np, fp, id)
						}
					}
					return
				}
				if got.off != first.off {
					t.Errorf("order %v/%v: window offset %d, first order chose %d", np, fp, got.off, first.off)
				}
				if fmt.Sprint(got.victims) != fmt.Sprint(first.victims) {
					t.Errorf("order %v/%v: victim set %v, first order chose %v", np, fp, got.victims, first.victims)
				}
			})
		}
	}
}

// hitCount replays a fixed access trace (uniform fragment sizes, all
// checkpoints always evictable, no pins) against a buffer of the given
// capacity and returns the number of hits.
func hitCount(t *testing.T, pol Policy, capacity int64, seed int64) int {
	t.Helper()
	const (
		fragSize = 10
		idSpace  = 20
		accesses = 600
	)
	hits := 0
	runSim(t, func(clk *simclock.Virtual) {
		o := newDiffOracle(t)
		b := New(clk, "hits", capacity, o)
		if err := b.SetPolicy(pol); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < accesses; i++ {
			// Mild skew: half the accesses go to a quarter of the ids.
			var id ID
			if rng.Intn(2) == 0 {
				id = ID(rng.Intn(idSpace / 4))
			} else {
				id = ID(rng.Intn(idSpace))
			}
			if _, _, ok := b.Contains(id); ok {
				hits++
				b.Touch(id)
				continue
			}
			o.evictable[id] = true
			if _, err := b.TryReserve(id, fragSize); err != nil {
				t.Fatalf("access %d: reserve %d: %v", i, id, err)
			}
		}
	})
	return hits
}

// TestMetamorphicCapacityMonotonicity: for the stack policies, a larger
// cache can never hit less on the same trace.
func TestMetamorphicCapacityMonotonicity(t *testing.T) {
	for _, pol := range []Policy{PolicyLRU, PolicyLRUK} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				small := hitCount(t, pol, 50, seed)
				big := hitCount(t, pol, 100, seed)
				if big < small {
					t.Errorf("seed %d: doubling capacity lowered hits: %d -> %d", seed, small, big)
				}
				if small == 0 {
					t.Errorf("seed %d: trace produced no hits at the small capacity", seed)
				}
			}
		})
	}
}
