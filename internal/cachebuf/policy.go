package cachebuf

// This file defines the pluggable eviction-policy layer. The Buffer owns
// the fragment geometry (placement, claims, coalescing, the pinning
// contract) and delegates exactly one decision to an EvictionPolicy:
// given the current fragment list and a request size, which contiguous
// window of fragments should be sacrificed?
//
// Policies see the world through two channels:
//
//   - a WindowView handed to SelectWindow: a read-only, index-addressed
//     snapshot of the fragment list, including each fragment's pinned
//     state (per the Oracle and claim bookkeeping) and the paper's
//     p/s-scores;
//   - event callbacks (OnInsert/OnTouch/OnEvict/OnRelease) fired under
//     the buffer lock, in the buffer's serialization order, so recency-
//     and frequency-based policies can maintain their own per-id state.
//
// The pinning/Oracle contract is non-negotiable and enforced by the
// Buffer, not trusted to the policy: a returned window containing a
// pinned fragment is rejected (the buffer re-checks evictability before
// erasing anything), so a buggy policy can stall a reservation but can
// never lose data.

import (
	"fmt"
	"math"
)

// EvictionPolicy chooses eviction windows for a Buffer. Implementations
// are not safe for concurrent use on their own: every method is invoked
// with the owning buffer's lock held, and must not call back into the
// Buffer or retain the WindowView beyond the SelectWindow call.
type EvictionPolicy interface {
	// Name identifies the policy in diagnostics and benchmark labels.
	Name() string

	// SelectWindow picks the fragment index range [start, end) to evict
	// for a reservation of sizeNew bytes. The window must be contiguous,
	// cover at least sizeNew bytes, and avoid pinned fragments (the
	// buffer rejects windows that do not). feasible=false means no such
	// window exists right now and the reservation must wait.
	SelectWindow(v WindowView, sizeNew int64) (start, end int, feasible bool)

	// OnInsert observes a checkpoint landing in the buffer (fresh
	// reservation or post-eviction install).
	OnInsert(id ID, size int64)
	// OnTouch observes an access to a resident checkpoint (Buffer.Touch).
	OnTouch(id ID)
	// OnEvict observes the policy-driven eviction of a resident
	// checkpoint (capacity pressure). Victims of one window are reported
	// in ascending offset order.
	OnEvict(id ID)
	// OnRelease observes an explicit removal (consumption/discard or
	// invalidation via Buffer.Release) — a voluntary exit, not a
	// capacity eviction, so ghost/history bookkeeping may differ.
	OnRelease(id ID)
}

// WindowView is the read-only fragment snapshot SelectWindow scans. The
// indices are fragment positions (checkpoints and gaps interleaved,
// sorted by offset, tiling the capacity). Views are only valid for the
// duration of the SelectWindow call.
type WindowView interface {
	// Len returns the fragment count.
	Len() int
	// Frag returns fragment i's checkpoint id; ok=false for gaps.
	Frag(i int) (id ID, ok bool)
	// Size returns fragment i's size in bytes.
	Size(i int) int64
	// PScore returns the estimated seconds until fragment i becomes
	// evictable and whether it is pinned (never evictable right now:
	// an Oracle pin, or a claim by a concurrent reservation). Gaps are
	// (0, unpinned).
	PScore(i int) (score float64, pinned bool)
	// SScore returns fragment i's prefetch distance (gaps score
	// GapDistance, farther than any real hint).
	SScore(i int) float64
}

// Policy selects a built-in eviction policy by name. PolicyScore is the
// paper's Algorithm 1; the rest are baselines and DBMS-inspired
// replacement policies used by the ablation benchmarks (they all honor
// pinning — eviction of a pinned replica would lose data — but ignore
// flush estimates and, except PolicyScore, prefetch distances).
type Policy int

const (
	// PolicyScore is the gap-aware sliding-window scored policy (§4.2).
	PolicyScore Policy = iota
	// PolicyLRU evicts the window whose most recently touched fragment
	// is least recent.
	PolicyLRU
	// PolicyFIFO evicts the window whose most recently inserted
	// fragment is oldest.
	PolicyFIFO
	// PolicyLRUK evicts by backward K-distance (K=2): the window whose
	// hottest member's K-th most recent access is oldest. Checkpoints
	// with fewer than K recorded accesses are colder than any with K,
	// LRU-ordered among themselves; access history survives eviction.
	PolicyLRUK
	// Policy2Q is the simplified 2Q policy: first-time insertions enter
	// a FIFO probation queue (A1in) and are evicted from it into a
	// ghost list (A1out); re-insertion of a ghost promotes to the
	// LRU-managed main queue (Am). Probation members are always colder
	// than main-queue members.
	Policy2Q
	// PolicyARC is the adaptive replacement cache: recency (T1) and
	// frequency (T2) lists with ghost lists (B1/B2) steering an
	// adaptation parameter that decides which list eviction prefers.
	PolicyARC
	// PolicyClockPro is a simplified CLOCK-Pro: resident checkpoints sit
	// on a clock ring with a reference bit and a hot/cold class; the
	// hand sweep evicts cold unreferenced pages first, promotes
	// referenced cold pages, demotes unreferenced hot pages, and a
	// ghost test list turns quickly-reinserted cold evictees hot.
	PolicyClockPro
)

// policyNames orders the registered built-in policies; Policies and the
// parser derive from it so a new policy registers in exactly one place.
var policyNames = map[Policy]string{
	PolicyScore:    "score",
	PolicyLRU:      "lru",
	PolicyFIFO:     "fifo",
	PolicyLRUK:     "lru-k",
	Policy2Q:       "2q",
	PolicyARC:      "arc",
	PolicyClockPro: "clock-pro",
}

// String names the policy.
func (p Policy) String() string {
	if n, ok := policyNames[p]; ok {
		return n
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Known reports whether p is a registered built-in policy.
func (p Policy) Known() bool {
	_, ok := policyNames[p]
	return ok
}

// Policies enumerates the registered built-in policies in declaration
// order (the ablation matrix iterates this).
func Policies() []Policy {
	return []Policy{PolicyScore, PolicyLRU, PolicyFIFO, PolicyLRUK, Policy2Q, PolicyARC, PolicyClockPro}
}

// ParsePolicy resolves a policy by its String name.
func ParsePolicy(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("cachebuf: unknown eviction policy %q (registered: %s)", name, policyList())
}

func policyList() string {
	s := ""
	for i, p := range Policies() {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	return s
}

// NewPolicy constructs the EvictionPolicy implementation for p. Unknown
// values are a hard error — the regression contract that replaced the
// old silent fall-through to the score policy.
func (p Policy) NewPolicy() (EvictionPolicy, error) {
	switch p {
	case PolicyScore:
		return &scorePolicy{}, nil
	case PolicyLRU:
		return newLRUPolicy(), nil
	case PolicyFIFO:
		return newFIFOPolicy(), nil
	case PolicyLRUK:
		return newLRUKPolicy(2), nil
	case Policy2Q:
		return new2QPolicy(), nil
	case PolicyARC:
		return newARCPolicy(), nil
	case PolicyClockPro:
		return newClockProPolicy(), nil
	}
	return nil, fmt.Errorf("cachebuf: unknown eviction policy %d (registered: %s)", int(p), policyList())
}

// ---------------------------------------------------------------------------
// Score: the paper's Algorithm 1 (gap-aware sliding window, incremental
// p/s-score maintenance, O(N) per scan). Stateless: every input comes
// from the Oracle through the view.

type scorePolicy struct{}

func (*scorePolicy) Name() string            { return "score" }
func (*scorePolicy) OnInsert(ID, int64)      {}
func (*scorePolicy) OnTouch(ID)              {}
func (*scorePolicy) OnEvict(ID)              {}
func (*scorePolicy) OnRelease(ID)            {}

func (*scorePolicy) SelectWindow(v WindowView, sizeNew int64) (start, end int, feasible bool) {
	n := v.Len()
	j := 0
	var window int64
	var pScore, sScore float64
	var pinned int // pinned fragments in the current window
	minP := math.Inf(1)
	maxS := -1.0
	rStart, rEnd := -1, -1

	for i := 0; i < n; i++ {
		if i > 0 {
			p, pin := v.PScore(i - 1)
			pScore -= p
			if pin {
				pinned--
			}
			sScore -= v.SScore(i - 1)
			window -= v.Size(i - 1)
		}
		for window < sizeNew && j < n {
			p, pin := v.PScore(j)
			pScore += p
			if pin {
				pinned++
			}
			sScore += v.SScore(j)
			window += v.Size(j)
			j++
		}
		if window < sizeNew {
			break // suffix too small; no further window can fit
		}
		if pinned > 0 {
			continue // window crosses a pinned fragment: infeasible
		}
		if pScore < minP || (pScore == minP && sScore > maxS) {
			minP, maxS = pScore, sScore
			rStart, rEnd = i, j
		}
	}
	if rStart < 0 {
		return 0, 0, false
	}
	return rStart, rEnd, true
}

// ---------------------------------------------------------------------------
// The coldest-window scan shared by every recency/frequency policy: the
// candidate window minimizing the maximum heat of its members wins
// (heat: higher = keep; gaps contribute nothing, so gap-only windows are
// coldest of all). Pinned (or claimed) fragments exclude a window.
// O(N²) over the fragment list, which is small. First minimal window in
// ascending start order wins ties — the determinism contract the
// reference models mirror.
//
// Heat values only matter through their ordering: each policy maps its
// internal state to a total order over resident ids (unknown ids rank
// coldest, defensively — the buffer replays residents on installation,
// so they should not occur).

const coldestUnknown = math.MinInt64 + 1

func coldestWindow(v WindowView, sizeNew int64, heat func(ID) int64) (start, end int, feasible bool) {
	n := v.Len()
	bestScore := int64(math.MaxInt64)
	rStart, rEnd := -1, -1
	for i := 0; i < n; i++ {
		var window int64
		maxHeat := int64(math.MinInt64)
		for j := i; j < n; j++ {
			if _, pin := v.PScore(j); pin {
				break
			}
			if id, ok := v.Frag(j); ok {
				if h := heat(id); h > maxHeat {
					maxHeat = h
				}
			}
			window += v.Size(j)
			if window >= sizeNew {
				if maxHeat < bestScore {
					bestScore = maxHeat
					rStart, rEnd = i, j+1
				}
				break
			}
		}
	}
	if rStart < 0 {
		return 0, 0, false
	}
	return rStart, rEnd, true
}

// ---------------------------------------------------------------------------
// LRU and FIFO baselines, now peers of the score policy. Each keeps its
// own monotone event counter; inserts and touches funnel through the
// buffer lock, so counters order identically to the buffer's event
// serialization.

type lruPolicy struct {
	seq  int64
	last map[ID]int64
}

func newLRUPolicy() *lruPolicy { return &lruPolicy{last: map[ID]int64{}} }

func (*lruPolicy) Name() string { return "lru" }
func (p *lruPolicy) OnInsert(id ID, _ int64) {
	p.seq++
	p.last[id] = p.seq
}
func (p *lruPolicy) OnTouch(id ID) {
	p.seq++
	p.last[id] = p.seq
}
func (p *lruPolicy) OnEvict(id ID)   { delete(p.last, id) }
func (p *lruPolicy) OnRelease(id ID) { delete(p.last, id) }
func (p *lruPolicy) SelectWindow(v WindowView, sizeNew int64) (int, int, bool) {
	return coldestWindow(v, sizeNew, func(id ID) int64 {
		if s, ok := p.last[id]; ok {
			return s
		}
		return coldestUnknown
	})
}

type fifoPolicy struct {
	seq      int64
	inserted map[ID]int64
}

func newFIFOPolicy() *fifoPolicy { return &fifoPolicy{inserted: map[ID]int64{}} }

func (*fifoPolicy) Name() string { return "fifo" }
func (p *fifoPolicy) OnInsert(id ID, _ int64) {
	p.seq++
	p.inserted[id] = p.seq
}
func (p *fifoPolicy) OnTouch(ID)      {}
func (p *fifoPolicy) OnEvict(id ID)   { delete(p.inserted, id) }
func (p *fifoPolicy) OnRelease(id ID) { delete(p.inserted, id) }
func (p *fifoPolicy) SelectWindow(v WindowView, sizeNew int64) (int, int, bool) {
	return coldestWindow(v, sizeNew, func(id ID) int64 {
		if s, ok := p.inserted[id]; ok {
			return s
		}
		return coldestUnknown
	})
}
