package cachebuf

import (
	"testing"
	"time"

	"score/internal/simclock"
)

func TestPolicyStrings(t *testing.T) {
	if PolicyScore.String() != "score" || PolicyLRU.String() != "lru" || PolicyFIFO.String() != "fifo" {
		t.Error("unexpected policy names")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("out-of-range policy should format numerically")
	}
}

func TestLRUPolicyEvictsLeastRecentlyTouched(t *testing.T) {
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 300, o)
		b.SetPolicy(PolicyLRU)
		for i := ID(0); i < 3; i++ {
			o.mark(i)
			if _, err := b.Reserve(i, 100); err != nil {
				t.Fatal(err)
			}
		}
		// Touch 0 and 1: checkpoint 2 becomes the coldest despite being
		// the most recently inserted.
		b.Touch(0)
		b.Touch(1)
		if _, err := b.Reserve(10, 100); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := b.Contains(2); ok {
			t.Error("LRU should have evicted untouched checkpoint 2")
		}
		for _, id := range []ID{0, 1} {
			if _, _, ok := b.Contains(id); !ok {
				t.Errorf("touched checkpoint %d evicted", id)
			}
		}
	})
}

func TestFIFOPolicyEvictsOldestInsertion(t *testing.T) {
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 300, o)
		b.SetPolicy(PolicyFIFO)
		for i := ID(0); i < 3; i++ {
			o.mark(i)
			if _, err := b.Reserve(i, 100); err != nil {
				t.Fatal(err)
			}
		}
		// Touching must NOT matter for FIFO.
		b.Touch(0)
		b.Touch(0)
		if _, err := b.Reserve(10, 100); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := b.Contains(0); ok {
			t.Error("FIFO should have evicted the first-inserted checkpoint 0")
		}
	})
}

func TestRecencyPoliciesHonorPinning(t *testing.T) {
	for _, pol := range []Policy{PolicyLRU, PolicyFIFO} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			runSim(t, func(clk *simclock.Virtual) {
				o := newFakeOracle()
				b := New(clk, "gpu", 200, o)
				b.SetPolicy(pol)
				o.mark(0, 1)
				if _, err := b.Reserve(0, 100); err != nil {
					t.Fatal(err)
				}
				if _, err := b.Reserve(1, 100); err != nil {
					t.Fatal(err)
				}
				// Pin the would-be victim (oldest/coldest = 0).
				o.pinned[0] = true
				if _, err := b.Reserve(10, 100); err != nil {
					t.Fatal(err)
				}
				if _, _, ok := b.Contains(0); !ok {
					t.Error("pinned checkpoint evicted by recency policy")
				}
				if _, _, ok := b.Contains(1); ok {
					t.Error("unpinned checkpoint survived instead")
				}
			})
		})
	}
}

func TestRecencyPolicyWaitsForEvictability(t *testing.T) {
	// Recency policies pick windows by recency but still wait for the
	// life cycle to allow the eviction.
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 100, o)
		b.SetPolicy(PolicyLRU)
		if _, err := b.Reserve(0, 100); err != nil {
			t.Fatal(err)
		}
		o.evictable[0], o.timeTo[0] = false, time.Second
		clk.Go(func() {
			clk.Sleep(time.Second)
			o.mark(0)
			b.Notify()
		})
		start := clk.Now()
		if _, err := b.Reserve(1, 100); err != nil {
			t.Fatal(err)
		}
		if waited := clk.Now() - start; waited != time.Second {
			t.Errorf("waited %v, want 1s", waited)
		}
	})
}
