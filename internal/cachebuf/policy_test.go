package cachebuf

import (
	"testing"
	"time"

	"score/internal/simclock"
)

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{
		PolicyScore: "score", PolicyLRU: "lru", PolicyFIFO: "fifo",
		PolicyLRUK: "lru-k", Policy2Q: "2q", PolicyARC: "arc", PolicyClockPro: "clock-pro",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), name)
		}
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("out-of-range policy should format numerically")
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
		ep, err := p.NewPolicy()
		if err != nil {
			t.Fatalf("NewPolicy(%v): %v", p, err)
		}
		if ep.Name() != p.String() {
			t.Errorf("policy %v names itself %q", p, ep.Name())
		}
	}
	if _, err := ParsePolicy("mru"); err == nil {
		t.Error("ParsePolicy of unregistered name should fail")
	}
}

// Regression: unknown Policy values used to fall through silently to the
// score policy; they must now be a constructor error everywhere.
func TestUnknownPolicyIsError(t *testing.T) {
	bogus := Policy(99)
	if bogus.Known() {
		t.Fatal("Policy(99) should not be known")
	}
	if _, err := bogus.NewPolicy(); err == nil {
		t.Error("NewPolicy on unknown policy should fail")
	}
	runSim(t, func(clk *simclock.Virtual) {
		b := New(clk, "gpu", 100, newFakeOracle())
		if err := b.SetPolicy(bogus); err == nil {
			t.Error("SetPolicy(Policy(99)) should fail")
		}
		if b.PolicyName() != "score" {
			t.Errorf("failed SetPolicy changed the active policy to %q", b.PolicyName())
		}
	})
}

func TestLRUPolicyEvictsLeastRecentlyTouched(t *testing.T) {
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 300, o)
		b.SetPolicy(PolicyLRU)
		for i := ID(0); i < 3; i++ {
			o.mark(i)
			if _, err := b.Reserve(i, 100); err != nil {
				t.Fatal(err)
			}
		}
		// Touch 0 and 1: checkpoint 2 becomes the coldest despite being
		// the most recently inserted.
		b.Touch(0)
		b.Touch(1)
		if _, err := b.Reserve(10, 100); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := b.Contains(2); ok {
			t.Error("LRU should have evicted untouched checkpoint 2")
		}
		for _, id := range []ID{0, 1} {
			if _, _, ok := b.Contains(id); !ok {
				t.Errorf("touched checkpoint %d evicted", id)
			}
		}
	})
}

func TestFIFOPolicyEvictsOldestInsertion(t *testing.T) {
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 300, o)
		b.SetPolicy(PolicyFIFO)
		for i := ID(0); i < 3; i++ {
			o.mark(i)
			if _, err := b.Reserve(i, 100); err != nil {
				t.Fatal(err)
			}
		}
		// Touching must NOT matter for FIFO.
		b.Touch(0)
		b.Touch(0)
		if _, err := b.Reserve(10, 100); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := b.Contains(0); ok {
			t.Error("FIFO should have evicted the first-inserted checkpoint 0")
		}
	})
}

func TestRecencyPoliciesHonorPinning(t *testing.T) {
	for _, pol := range []Policy{PolicyLRU, PolicyFIFO} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			runSim(t, func(clk *simclock.Virtual) {
				o := newFakeOracle()
				b := New(clk, "gpu", 200, o)
				b.SetPolicy(pol)
				o.mark(0, 1)
				if _, err := b.Reserve(0, 100); err != nil {
					t.Fatal(err)
				}
				if _, err := b.Reserve(1, 100); err != nil {
					t.Fatal(err)
				}
				// Pin the would-be victim (oldest/coldest = 0).
				o.pinned[0] = true
				if _, err := b.Reserve(10, 100); err != nil {
					t.Fatal(err)
				}
				if _, _, ok := b.Contains(0); !ok {
					t.Error("pinned checkpoint evicted by recency policy")
				}
				if _, _, ok := b.Contains(1); ok {
					t.Error("unpinned checkpoint survived instead")
				}
			})
		})
	}
}

func TestRecencyPolicyWaitsForEvictability(t *testing.T) {
	// Recency policies pick windows by recency but still wait for the
	// life cycle to allow the eviction.
	runSim(t, func(clk *simclock.Virtual) {
		o := newFakeOracle()
		b := New(clk, "gpu", 100, o)
		b.SetPolicy(PolicyLRU)
		if _, err := b.Reserve(0, 100); err != nil {
			t.Fatal(err)
		}
		o.evictable[0], o.timeTo[0] = false, time.Second
		clk.Go(func() {
			clk.Sleep(time.Second)
			o.mark(0)
			b.Notify()
		})
		start := clk.Now()
		if _, err := b.Reserve(1, 100); err != nil {
			t.Fatal(err)
		}
		if waited := clk.Now() - start; waited != time.Second {
			t.Errorf("waited %v, want 1s", waited)
		}
	})
}
