package cachebuf

// Differential harness: seeded random event streams driven through the
// production Buffer and the naive reference model in lockstep. After
// every event the two must agree on the returned error, the assigned
// offset, the exact eviction victim sequence, the hit/miss outcome of
// lookups, per-id placement, and used bytes; the shared oracle asserts
// pin-safety on every eviction callback. The streams use whole-second
// evictability estimates and small integer distances so the production
// policy's incremental float sums are exact and must match the model's
// direct summation bit-for-bit.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"score/internal/simclock"
)

// diffOracle is shared by the production buffer and the model: one
// source of truth for evictability, pinning and prefetch distances.
type diffOracle struct {
	t         testing.TB
	pinned    map[ID]bool
	evictable map[ID]bool
	timeTo    map[ID]time.Duration
	distance  map[ID]int
	victims   []ID // production evictions since last reset
}

func newDiffOracle(t testing.TB) *diffOracle {
	return &diffOracle{
		t:         t,
		pinned:    map[ID]bool{},
		evictable: map[ID]bool{},
		timeTo:    map[ID]time.Duration{},
		distance:  map[ID]int{},
	}
}

func (o *diffOracle) Evictable(id ID) bool { return !o.pinned[id] && o.evictable[id] }

func (o *diffOracle) TimeToEvictable(id ID) (time.Duration, bool) {
	if o.pinned[id] {
		return 0, false
	}
	return o.timeTo[id], true
}

func (o *diffOracle) PrefetchDistance(id ID) int {
	if d, ok := o.distance[id]; ok {
		return d
	}
	return GapDistance - 1
}

func (o *diffOracle) Evicted(id ID) {
	if !o.Evictable(id) {
		o.t.Errorf("pin-safety violation: evicted id %d while pinned or not evictable", id)
	}
	o.victims = append(o.victims, id)
}

// lockstep drives one production buffer and one model through the same
// event stream, checking full-state agreement after every event.
type lockstep struct {
	t        *testing.T
	pol      Policy
	capacity int64
	idSpace  int
	o        *diffOracle
	b        *Buffer
	m        *modelBuffer
	step     int
	hits     int
	misses   int
}

func newLockstep(t *testing.T, clk *simclock.Virtual, pol Policy, capacity int64, idSpace int) *lockstep {
	o := newDiffOracle(t)
	b := New(clk, "diff-"+pol.String(), capacity, o)
	if err := b.SetPolicy(pol); err != nil {
		t.Fatalf("SetPolicy(%v): %v", pol, err)
	}
	mp := newModelPolicy(pol)
	if mp == nil {
		t.Fatalf("no reference model for policy %v", pol)
	}
	return &lockstep{
		t: t, pol: pol, capacity: capacity, idSpace: idSpace,
		o: o, b: b, m: newModelBuffer(capacity, o, mp),
	}
}

func (ls *lockstep) fatalf(format string, args ...any) {
	ls.t.Helper()
	ls.t.Fatalf("policy %s, step %d: %s", ls.pol, ls.step, fmt.Sprintf(format, args...))
}

func (ls *lockstep) reserve(id ID, size int64) {
	ls.o.victims = nil
	off, err := ls.b.TryReserve(id, size)
	moff, merr := ls.m.tryReserve(id, size)
	if err != merr {
		ls.fatalf("TryReserve(%d, %d): buffer err %v, model err %v", id, size, err, merr)
	}
	if err == nil && off != moff {
		ls.fatalf("TryReserve(%d, %d): buffer offset %d, model offset %d", id, size, off, moff)
	}
	if len(ls.o.victims) != len(ls.m.victims) {
		ls.fatalf("TryReserve(%d, %d): buffer evicted %v, model evicted %v",
			id, size, ls.o.victims, ls.m.victims)
	}
	for i := range ls.o.victims {
		if ls.o.victims[i] != ls.m.victims[i] {
			ls.fatalf("TryReserve(%d, %d): victim sequence %v, model %v",
				id, size, ls.o.victims, ls.m.victims)
		}
	}
	ls.check()
}

func (ls *lockstep) release(id ID) {
	got := ls.b.Release(id)
	want := ls.m.release(id)
	if got != want {
		ls.fatalf("Release(%d) = %v, model %v", id, got, want)
	}
	ls.check()
}

func (ls *lockstep) touch(id ID) {
	ls.b.Touch(id)
	ls.m.touch(id)
	ls.check()
}

func (ls *lockstep) lookup(id ID) {
	_, _, got := ls.b.Contains(id)
	want := ls.m.resident(id)
	if got != want {
		ls.fatalf("Contains(%d) = %v, model resident %v", id, got, want)
	}
	if got {
		ls.hits++
	} else {
		ls.misses++
	}
	ls.check()
}

// check compares the complete observable state.
func (ls *lockstep) check() {
	ls.t.Helper()
	if err := ls.b.CheckInvariants(); err != nil {
		ls.fatalf("invariants: %v", err)
	}
	for id := ID(0); id < ID(ls.idSpace); id++ {
		off, size, ok := ls.b.Contains(id)
		mi := ls.m.indexOf(id)
		if ok != (mi >= 0) {
			ls.fatalf("residency of id %d: buffer %v, model %v", id, ok, mi >= 0)
		}
		if ok {
			if moff := ls.m.offsetOf(mi); off != moff || size != ls.m.frags[mi].size {
				ls.fatalf("placement of id %d: buffer [%d,+%d), model [%d,+%d)",
					id, off, size, moff, ls.m.frags[mi].size)
			}
		}
	}
	if got, want := ls.b.UsedBytes(), ls.m.usedBytes(); got != want {
		ls.fatalf("UsedBytes() = %d, model %d", got, want)
	}
	ls.step++
}

// TestDifferentialAllPolicies is the lockstep harness over seeded
// streams: every registered policy, several seeds, hundreds of events
// each. It runs in the ordinary test suite and therefore also under
// -race via `make verify` / `make race` in CI.
func TestDifferentialAllPolicies(t *testing.T) {
	const (
		capacity = 1024
		idSpace  = 12
		steps    = 500
	)
	for _, pol := range Policies() {
		pol := pol
		for seed := int64(1); seed <= 5; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed%d", pol, seed), func(t *testing.T) {
				t.Parallel()
				runSim(t, func(clk *simclock.Virtual) {
					ls := newLockstep(t, clk, pol, capacity, idSpace)
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < steps; i++ {
						id := ID(rng.Intn(idSpace))
						switch r := rng.Intn(100); {
						case r < 35:
							ls.reserve(id, int64(1+rng.Intn(300)))
						case r < 50:
							ls.release(id)
						case r < 62:
							ls.touch(id)
						case r < 74: // becomes evictable now
							ls.o.pinned[id] = false
							ls.o.evictable[id] = true
							ls.o.timeTo[id] = 0
						case r < 82: // evictable in a whole number of seconds
							ls.o.pinned[id] = false
							ls.o.evictable[id] = false
							ls.o.timeTo[id] = time.Duration(1+rng.Intn(4)) * time.Second
						case r < 88: // pin
							ls.o.pinned[id] = true
						case r < 94: // prefetch-order hint
							ls.o.distance[id] = rng.Intn(64)
						default:
							ls.lookup(id)
						}
					}
					if ls.b.Snapshot().Evictions == 0 {
						t.Error("stream produced no evictions; harness not exercising the policy")
					}
				})
			})
		}
	}
}
