package cachebuf

// DBMS-inspired replacement policies adapted to the window-eviction
// model. Classic formulations evict one page at a time; here a policy
// instead induces a total "heat" order over resident checkpoints, and
// the shared coldestWindow scan picks the contiguous window whose
// hottest member is coldest. Ghost/history structures are bounded by
// ghostLimit entries and evict their own oldest entry FIFO-fashion.

const (
	// classBias separates heat classes: any member of a hotter class
	// outranks every member of a colder one regardless of sequence
	// numbers. Sequence counters are per-policy event counts, far below
	// this bias in any realistic run.
	classBias = int64(1) << 40
	// ghostLimit bounds ghost/history list length.
	ghostLimit = 4096
)

// ghostList is a bounded FIFO set of recently evicted ids.
type ghostList struct {
	order []ID
	seen  map[ID]bool
}

func newGhostList() *ghostList { return &ghostList{seen: map[ID]bool{}} }

func (g *ghostList) add(id ID) {
	if g.seen[id] {
		return
	}
	g.seen[id] = true
	g.order = append(g.order, id)
	if len(g.order) > ghostLimit {
		delete(g.seen, g.order[0])
		g.order = g.order[1:]
	}
}

func (g *ghostList) remove(id ID) {
	if !g.seen[id] {
		return
	}
	delete(g.seen, id)
	for i, v := range g.order {
		if v == id {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
}

func (g *ghostList) has(id ID) bool { return g.seen[id] }
func (g *ghostList) len() int       { return len(g.order) }

// ---------------------------------------------------------------------------
// LRU-K (K=2): rank by backward K-distance. A checkpoint's heat is the
// sequence number of its K-th most recent access; checkpoints with
// fewer than K recorded accesses are one class colder and LRU-ordered
// among themselves. Access history is retained across eviction (the
// defining trait of LRU-K), bounded like a ghost list.

type lrukPolicy struct {
	k       int
	seq     int64
	hist    map[ID][]int64 // most recent K access seqs, newest last
	order   []ID           // FIFO of ids with history, for bounding
	resident map[ID]bool
}

func newLRUKPolicy(k int) *lrukPolicy {
	return &lrukPolicy{k: k, hist: map[ID][]int64{}, resident: map[ID]bool{}}
}

func (*lrukPolicy) Name() string { return "lru-k" }

func (p *lrukPolicy) access(id ID) {
	p.seq++
	h, had := p.hist[id]
	h = append(h, p.seq)
	if len(h) > p.k {
		h = h[len(h)-p.k:]
	}
	p.hist[id] = h
	if !had {
		p.order = append(p.order, id)
		if len(p.order) > ghostLimit {
			old := p.order[0]
			p.order = p.order[1:]
			if !p.resident[old] {
				delete(p.hist, old)
			}
		}
	}
}

func (p *lrukPolicy) OnInsert(id ID, _ int64) {
	p.resident[id] = true
	p.access(id)
}
func (p *lrukPolicy) OnTouch(id ID) { p.access(id) }
func (p *lrukPolicy) OnEvict(id ID) { delete(p.resident, id) } // history survives
func (p *lrukPolicy) OnRelease(id ID) {
	delete(p.resident, id)
	delete(p.hist, id) // voluntary exit: forget it
	for i, v := range p.order {
		if v == id {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
}

func (p *lrukPolicy) heat(id ID) int64 {
	h, ok := p.hist[id]
	if !ok || len(h) == 0 {
		return coldestUnknown
	}
	if len(h) < p.k {
		// Infinite backward K-distance: colder than any full-history
		// checkpoint, LRU among themselves.
		return h[len(h)-1] - classBias
	}
	return h[0] // K-th most recent access
}

func (p *lrukPolicy) SelectWindow(v WindowView, sizeNew int64) (int, int, bool) {
	return coldestWindow(v, sizeNew, p.heat)
}

// ---------------------------------------------------------------------------
// 2Q (simplified): new checkpoints enter the probation FIFO A1in;
// touches inside A1in do not promote (filtering one-shot scans).
// Eviction from A1in records the id in the A1out ghost; a re-insert
// that hits the ghost goes straight to the LRU-managed main queue Am,
// as does any touch of an Am member. A1in members are one class colder
// than Am members.

type twoQPolicy struct {
	seq   int64
	a1in  map[ID]int64 // probation: insert seq
	am    map[ID]int64 // main: last access seq
	a1out *ghostList
}

func new2QPolicy() *twoQPolicy {
	return &twoQPolicy{a1in: map[ID]int64{}, am: map[ID]int64{}, a1out: newGhostList()}
}

func (*twoQPolicy) Name() string { return "2q" }

func (p *twoQPolicy) OnInsert(id ID, _ int64) {
	p.seq++
	if p.a1out.has(id) {
		p.a1out.remove(id)
		p.am[id] = p.seq
		return
	}
	p.a1in[id] = p.seq
}

func (p *twoQPolicy) OnTouch(id ID) {
	p.seq++
	if _, ok := p.am[id]; ok {
		p.am[id] = p.seq
	}
	// Touch inside A1in: deliberately no promotion, no recency bump.
}

func (p *twoQPolicy) OnEvict(id ID) {
	if _, ok := p.a1in[id]; ok {
		delete(p.a1in, id)
		p.a1out.add(id)
		return
	}
	delete(p.am, id)
}

func (p *twoQPolicy) OnRelease(id ID) {
	delete(p.a1in, id)
	delete(p.am, id)
}

func (p *twoQPolicy) heat(id ID) int64 {
	if s, ok := p.am[id]; ok {
		return s
	}
	if s, ok := p.a1in[id]; ok {
		return s - classBias
	}
	return coldestUnknown
}

func (p *twoQPolicy) SelectWindow(v WindowView, sizeNew int64) (int, int, bool) {
	return coldestWindow(v, sizeNew, p.heat)
}

// ---------------------------------------------------------------------------
// ARC: resident checkpoints live in T1 (seen once recently) or T2 (seen
// at least twice); ghosts of T1/T2 evictions live in B1/B2. A ghost hit
// on insert adapts the target size p of T1 (B1 hit: grow p, favor
// recency; B2 hit: shrink p, favor frequency) and installs the entry in
// T2. SelectWindow computes once which list eviction should prefer
// (T1 if |T1| > p, else T2) and biases the other list one class hotter;
// within a list, LRU order.

type arcPolicy struct {
	seq    int64
	t1, t2 map[ID]int64 // last access seq
	b1, b2 *ghostList
	p      int // target T1 size, in entries
}

func newARCPolicy() *arcPolicy {
	return &arcPolicy{t1: map[ID]int64{}, t2: map[ID]int64{}, b1: newGhostList(), b2: newGhostList()}
}

func (*arcPolicy) Name() string { return "arc" }

func (p *arcPolicy) OnInsert(id ID, _ int64) {
	p.seq++
	switch {
	case p.b1.has(id):
		// Recency ghost hit: recency list was too small.
		d := p.b2.len() / max(p.b1.len(), 1)
		if d < 1 {
			d = 1
		}
		p.p = min(p.p+d, len(p.t1)+len(p.t2)+1)
		p.b1.remove(id)
		p.t2[id] = p.seq
	case p.b2.has(id):
		d := p.b1.len() / max(p.b2.len(), 1)
		if d < 1 {
			d = 1
		}
		p.p = max(p.p-d, 0)
		p.b2.remove(id)
		p.t2[id] = p.seq
	default:
		p.t1[id] = p.seq
	}
}

func (p *arcPolicy) OnTouch(id ID) {
	p.seq++
	if _, ok := p.t1[id]; ok {
		delete(p.t1, id)
		p.t2[id] = p.seq
		return
	}
	if _, ok := p.t2[id]; ok {
		p.t2[id] = p.seq
	}
}

func (p *arcPolicy) OnEvict(id ID) {
	if _, ok := p.t1[id]; ok {
		delete(p.t1, id)
		p.b1.add(id)
		return
	}
	if _, ok := p.t2[id]; ok {
		delete(p.t2, id)
		p.b2.add(id)
	}
}

func (p *arcPolicy) OnRelease(id ID) {
	delete(p.t1, id)
	delete(p.t2, id)
}

func (p *arcPolicy) SelectWindow(v WindowView, sizeNew int64) (int, int, bool) {
	// Decide the preferred victim list once per scan so the ranking is
	// a consistent total order for the whole window search.
	preferT1 := len(p.t1) > 0 && (len(p.t1) > p.p || len(p.t2) == 0)
	heat := func(id ID) int64 {
		if s, ok := p.t1[id]; ok {
			if preferT1 {
				return s
			}
			return s + classBias
		}
		if s, ok := p.t2[id]; ok {
			if preferT1 {
				return s + classBias
			}
			return s
		}
		return coldestUnknown
	}
	return coldestWindow(v, sizeNew, heat)
}

// ---------------------------------------------------------------------------
// CLOCK-Pro (simplified, two classes): resident checkpoints sit on a
// clock ring in insertion order with a reference bit and a hot/cold
// class. Touches set the reference bit. SelectWindow ranks residents by
// a virtual hand sweep — from the hand, lap after lap, applying the
// CLOCK-Pro transitions without mutating real state — and the order in
// which the virtual sweep would evict them is the coldness order.
// OnEvict commits one real partial sweep from the hand to the chosen
// victim (the window's members are evicted in offset order, which may
// differ from sweep order; the sweep stops at each reported victim in
// turn). Cold evictees enter a ghost test list; re-inserting a ghost
// makes the newcomer hot.

type clockProPolicy struct {
	ring  []ID
	hand  int
	hot   map[ID]bool
	ref   map[ID]bool
	ghost *ghostList
}

func newClockProPolicy() *clockProPolicy {
	return &clockProPolicy{hot: map[ID]bool{}, ref: map[ID]bool{}, ghost: newGhostList()}
}

func (*clockProPolicy) Name() string { return "clock-pro" }

func (p *clockProPolicy) OnInsert(id ID, _ int64) {
	if p.ghost.has(id) {
		p.ghost.remove(id)
		p.hot[id] = true
	}
	// Insert just behind the hand (the classic "tail of the clock").
	if p.hand == 0 || len(p.ring) == 0 {
		p.ring = append(p.ring, id)
	} else {
		p.ring = append(p.ring[:p.hand:p.hand], append([]ID{id}, p.ring[p.hand:]...)...)
		p.hand++
	}
	p.ref[id] = false
}

func (p *clockProPolicy) OnTouch(id ID) {
	if _, ok := p.ref[id]; ok {
		p.ref[id] = true
	}
}

func (p *clockProPolicy) removeFromRing(id ID) {
	for i, v := range p.ring {
		if v == id {
			p.ring = append(p.ring[:i], p.ring[i+1:]...)
			if p.hand > i {
				p.hand--
			}
			if len(p.ring) == 0 {
				p.hand = 0
			} else {
				p.hand %= len(p.ring)
			}
			return
		}
	}
}

// OnEvict commits the hand movement and state transitions the virtual
// sweep predicted for this victim, then removes it from the ring.
func (p *clockProPolicy) OnEvict(id ID) {
	for n := 0; len(p.ring) > 0 && n < 2*len(p.ring)+2; n++ {
		cur := p.ring[p.hand]
		if cur == id {
			break
		}
		if p.ref[cur] {
			p.ref[cur] = false
			if !p.hot[cur] {
				p.hot[cur] = true // referenced cold page: promote
			}
		} else if p.hot[cur] {
			p.hot[cur] = false // unreferenced hot page: demote
		}
		p.hand = (p.hand + 1) % len(p.ring)
	}
	if !p.hot[id] {
		p.ghost.add(id)
	}
	delete(p.hot, id)
	delete(p.ref, id)
	p.removeFromRing(id)
}

func (p *clockProPolicy) OnRelease(id ID) {
	delete(p.hot, id)
	delete(p.ref, id)
	p.removeFromRing(id)
}

// sweepRanks runs the virtual sweep: returns eviction rank per id
// (0 = first to go = coldest).
func (p *clockProPolicy) sweepRanks() map[ID]int {
	n := len(p.ring)
	ranks := make(map[ID]int, n)
	if n == 0 {
		return ranks
	}
	hot := make(map[ID]bool, len(p.hot))
	ref := make(map[ID]bool, len(p.ref))
	for id, v := range p.hot {
		hot[id] = v
	}
	for id, v := range p.ref {
		ref[id] = v
	}
	ring := append([]ID(nil), p.ring...)
	pos := p.hand
	rank := 0
	for len(ring) > 0 {
		pos %= len(ring)
		id := ring[pos]
		switch {
		case !hot[id] && !ref[id]:
			ranks[id] = rank
			rank++
			ring = append(ring[:pos], ring[pos+1:]...)
		case !hot[id] && ref[id]:
			ref[id] = false
			hot[id] = true
			pos++
		case hot[id] && ref[id]:
			ref[id] = false
			pos++
		default: // hot, unreferenced
			hot[id] = false
			pos++
		}
	}
	return ranks
}

func (p *clockProPolicy) SelectWindow(v WindowView, sizeNew int64) (int, int, bool) {
	ranks := p.sweepRanks()
	n := len(ranks)
	heat := func(id ID) int64 {
		if r, ok := ranks[id]; ok {
			return int64(n - r) // coldest (rank 0) = lowest heat
		}
		return coldestUnknown
	}
	return coldestWindow(v, sizeNew, heat)
}
