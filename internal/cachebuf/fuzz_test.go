package cachebuf

import (
	"testing"
	"time"

	"score/internal/simclock"
)

// fuzzOracle is the eviction oracle the fuzzer scripts: evictability is
// toggled by fuzz ops, and every eviction callback is checked against it
// — evicting a non-evictable (pinned) replica would lose data.
type fuzzOracle struct {
	t         *testing.T
	evictable map[ID]bool
	distance  map[ID]int
	evicted   []ID
}

func (o *fuzzOracle) Evictable(id ID) bool { return o.evictable[id] }
func (o *fuzzOracle) TimeToEvictable(id ID) (time.Duration, bool) {
	if o.evictable[id] {
		return 0, true
	}
	return 0, false // pinned until the fuzzer marks it
}
func (o *fuzzOracle) PrefetchDistance(id ID) int {
	if d, ok := o.distance[id]; ok {
		return d
	}
	return GapDistance - 1
}
func (o *fuzzOracle) Evicted(id ID) {
	if !o.evictable[id] {
		o.t.Errorf("evicted id %d while not evictable (pinned)", id)
	}
	o.evicted = append(o.evicted, id)
}

// FuzzCacheEviction replays an arbitrary op sequence (reserve, release,
// touch, mark-evictable, policy change) against the buffer and a naive
// reference model that tracks the resident set. After every op the buffer
// must pass its geometry invariants and agree with the model on
// residency, sizes and used bytes; evictions must only ever claim
// replicas the oracle declared evictable.
func FuzzCacheEviction(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x82})
	f.Add([]byte{
		0x01, 0x02, 0x03, 0x04, // reserve 4 ids
		0x41, 0x42, // mark two evictable
		0x05, 0x06, 0x07, // reserve more, forcing eviction
		0x81, 0x23, 0x08,
	})
	f.Add(func() []byte {
		var seed []byte
		for i := 0; i < 120; i++ {
			seed = append(seed, byte(i*37))
		}
		return seed
	}())

	f.Fuzz(func(t *testing.T, data []byte) {
		clk := simclock.NewVirtual()
		clk.Run(func() {
			const capacity = 1024
			o := &fuzzOracle{t: t, evictable: map[ID]bool{}, distance: map[ID]int{}}
			b := New(clk, "fuzz", capacity, o)
			model := map[ID]int64{} // resident id -> size

			for i, op := range data {
				id := ID(op & 0x0F)
				switch (op >> 4) & 0x07 {
				case 0, 1: // TryReserve with a size derived from the op index
					size := int64(1 + (i*131)%300)
					_, resident := model[id]
					off, err := b.TryReserve(id, size)
					switch {
					case err == nil:
						if resident {
							t.Fatalf("op %d: reserve of resident id %d succeeded, want ErrDuplicate", i, id)
						}
						if off < 0 || off+size > capacity {
							t.Fatalf("op %d: reserved [%d,%d) outside capacity %d", i, off, off+size, capacity)
						}
						model[id] = size
					case err == ErrDuplicate:
						if !resident {
							t.Fatalf("op %d: ErrDuplicate for non-resident id %d", i, id)
						}
					case err == ErrWouldBlock:
						// Legal whenever no immediately evictable window
						// exists; the model is unchanged.
					default:
						t.Fatalf("op %d: unexpected reserve error: %v", i, err)
					}
				case 2: // Release
					got := b.Release(id)
					_, want := model[id]
					if got != want {
						t.Fatalf("op %d: Release(%d) = %v, model says %v", i, id, got, want)
					}
					delete(model, id)
				case 3: // Touch (LRU bookkeeping only)
					b.Touch(id)
				case 4: // mark evictable
					o.evictable[id] = true
				case 5: // give the id a prefetch distance (s_score input)
					o.distance[id] = int(op)
				case 6: // switch eviction policy (all registered policies)
					pols := Policies()
					if err := b.SetPolicy(pols[int(op)%len(pols)]); err != nil {
						t.Fatalf("op %d: SetPolicy: %v", i, err)
					}
				case 7: // pin again: freshly reserved replicas start pinned
					delete(o.evictable, id)
				}

				// Evictions recorded since the last op leave the model.
				for _, ev := range o.evicted {
					if _, ok := model[ev]; !ok {
						t.Fatalf("op %d: evicted id %d was not resident in the model", i, ev)
					}
					delete(model, ev)
				}
				o.evicted = o.evicted[:0]

				if err := b.CheckInvariants(); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
				if got, want := b.Resident(), len(model); got != want {
					t.Fatalf("op %d: Resident() = %d, model has %d", i, got, want)
				}
				var used int64
				for mid, msize := range model {
					off, size, ok := b.Contains(mid)
					if !ok {
						t.Fatalf("op %d: model id %d not resident in buffer", i, mid)
					}
					if size != msize {
						t.Fatalf("op %d: id %d size %d, model says %d", i, mid, size, msize)
					}
					if off < 0 || off+size > capacity {
						t.Fatalf("op %d: id %d at [%d,%d) outside capacity", i, mid, off, off+size)
					}
					used += msize
				}
				if got := b.UsedBytes(); got != used {
					t.Fatalf("op %d: UsedBytes() = %d, model says %d", i, got, used)
				}
			}
		})
	})
}
