package predict

import (
	"testing"
	"testing/quick"
)

type recorder struct{ hints []int64 }

func (r *recorder) PrefetchEnqueue(v int64) { r.hints = append(r.hints, v) }

func newT(t *testing.T, cfg Config) (*Predictor, *recorder) {
	t.Helper()
	r := &recorder{}
	p, err := New(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

func TestNoHintsBeforeConfidence(t *testing.T) {
	p, r := newT(t, Config{Confidence: 3, Lookahead: 4})
	p.Observe(10)
	p.Observe(11) // streak 1
	if len(r.hints) != 0 {
		t.Fatalf("hints before confidence: %v", r.hints)
	}
	if p.Stride() != 0 {
		t.Errorf("stride reported before confidence: %d", p.Stride())
	}
}

func TestSequentialPattern(t *testing.T) {
	p, r := newT(t, Config{Confidence: 3, Lookahead: 4})
	p.Observe(0)
	p.Observe(1)
	p.Observe(2) // confident now: hints 3..6
	want := []int64{3, 4, 5, 6}
	if len(r.hints) != len(want) {
		t.Fatalf("hints = %v, want %v", r.hints, want)
	}
	for i := range want {
		if r.hints[i] != want[i] {
			t.Fatalf("hints = %v, want %v", r.hints, want)
		}
	}
	// The next observation slides the horizon by one.
	p.Observe(3)
	if got := r.hints[len(r.hints)-1]; got != 7 {
		t.Errorf("horizon hint = %d, want 7", got)
	}
	if p.Stride() != 1 {
		t.Errorf("stride = %d, want 1", p.Stride())
	}
}

func TestReversePattern(t *testing.T) {
	p, r := newT(t, Config{Confidence: 3, Lookahead: 3, MinVersion: 0})
	p.Observe(9)
	p.Observe(8)
	p.Observe(7)
	want := []int64{6, 5, 4}
	for i := range want {
		if r.hints[i] != want[i] {
			t.Fatalf("hints = %v, want %v", r.hints, want)
		}
	}
	if p.Stride() != -1 {
		t.Errorf("stride = %d", p.Stride())
	}
}

func TestStridedPattern(t *testing.T) {
	p, r := newT(t, Config{Confidence: 2, Lookahead: 2})
	p.Observe(0)
	p.Observe(4)
	if len(r.hints) != 2 || r.hints[0] != 8 || r.hints[1] != 12 {
		t.Fatalf("strided hints = %v, want [8 12]", r.hints)
	}
}

func TestPatternBreakResetsConfidence(t *testing.T) {
	// Confidence 3 = three consecutive observations must fit one stride.
	p, r := newT(t, Config{Confidence: 3, Lookahead: 2})
	p.Observe(0)
	p.Observe(1)
	p.Observe(2)
	n := len(r.hints)
	if n == 0 {
		t.Fatal("no hints after a confident run")
	}
	p.Observe(10) // break: two-observation run (2, 10) is not confident
	if len(r.hints) != n {
		t.Error("hints emitted on a pattern break")
	}
	p.Observe(11) // still only (10, 11): not confident for 3
	if len(r.hints) != n {
		t.Error("hints emitted before the new pattern reached confidence")
	}
	p.Observe(12) // (10, 11, 12): confident again
	if len(r.hints) == n {
		t.Error("no hints after re-establishing a pattern")
	}
	if p.Stride() != 1 {
		t.Errorf("stride = %d", p.Stride())
	}
}

func TestRangeClamping(t *testing.T) {
	p, r := newT(t, Config{Confidence: 2, Lookahead: 10, MinVersion: 0, MaxVersion: 5})
	p.Observe(2)
	p.Observe(3)
	for _, h := range r.hints {
		if h < 0 || h > 5 {
			t.Errorf("hint %d outside [0,5]", h)
		}
	}
	if len(r.hints) != 2 { // 4, 5 only
		t.Errorf("hints = %v, want [4 5]", r.hints)
	}
	// Reverse at the low boundary.
	p2, r2 := newT(t, Config{Confidence: 2, Lookahead: 10, MinVersion: 0, MaxVersion: 5})
	p2.Observe(2)
	p2.Observe(1)
	if len(r2.hints) != 1 || r2.hints[0] != 0 {
		t.Errorf("reverse clamped hints = %v, want [0]", r2.hints)
	}
}

func TestRereadsIgnored(t *testing.T) {
	p, r := newT(t, Config{Confidence: 2, Lookahead: 2})
	p.Observe(1)
	p.Observe(1) // stride 0: ignore
	p.Observe(2)
	p.Observe(3)
	if len(r.hints) == 0 {
		t.Error("re-read broke pattern detection permanently")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil hinter accepted")
	}
	if _, err := New(&recorder{}, Config{Confidence: -1}); err == nil {
		t.Error("negative confidence accepted")
	}
}

func TestHinterFunc(t *testing.T) {
	var got []int64
	p, _ := New(HinterFunc(func(v int64) { got = append(got, v) }), Config{Confidence: 2, Lookahead: 1})
	p.Observe(5)
	p.Observe(6)
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("HinterFunc hints = %v", got)
	}
}

func TestNoDuplicateHintsProperty(t *testing.T) {
	// Property: for any monotone run observed, the predictor never
	// emits the same version twice and never emits an observed version.
	f := func(start int64, up bool, steps uint8) bool {
		r := &recorder{}
		p, _ := New(r, Config{Confidence: 2, Lookahead: 4})
		stride := int64(1)
		if !up {
			stride = -1
		}
		v := start % 1000
		observed := map[int64]bool{}
		for i := 0; i < int(steps%50)+2; i++ {
			p.Observe(v)
			observed[v] = true
			v += stride
		}
		seen := map[int64]bool{}
		for _, h := range r.hints {
			if seen[h] {
				return false
			}
			seen[h] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
