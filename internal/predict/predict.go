// Package predict implements access-pattern predictors that synthesize
// prefetch hints when the application provides none. The paper notes that
// hints "can also be provided by higher-level I/O middleware, e.g., by
// using predictors [6]" (§4.1.1, citing HFetch); this package is that
// middleware layer: it observes the restore stream and, once a pattern is
// recognized, extrapolates it into hints for the runtime's queue.
//
// Recognized patterns:
//
//   - constant stride (covers sequential v, v+1, ... and reverse
//     v, v-1, ... as strides +1/−1, plus arbitrary strides from
//     strided post-processing sweeps);
//   - first-order repetition: if the full history of a previous pass is
//     known (the ids written), a detected direction replays the history.
//
// Predictions are advisory, exactly like application hints: a wrong
// extrapolation costs performance, never correctness.
package predict

import "fmt"

// Hinter is the sink for predictions — satisfied by the Score runtime's
// PrefetchEnqueue.
type Hinter interface {
	PrefetchEnqueue(version int64)
}

// HinterFunc adapts a function to the Hinter interface.
type HinterFunc func(int64)

// PrefetchEnqueue implements Hinter.
func (f HinterFunc) PrefetchEnqueue(v int64) { f(v) }

// Config tunes the predictor.
type Config struct {
	// Confidence is how many consecutive observations must fit the
	// candidate stride before predictions are emitted (default 3).
	Confidence int
	// Lookahead is how many hints are emitted ahead of the newest
	// observation once confident (default 8).
	Lookahead int
	// MinVersion and MaxVersion clamp predictions to the known version
	// range; predictions outside are suppressed. MaxVersion <= 0 means
	// unbounded above.
	MinVersion, MaxVersion int64
}

func (c Config) withDefaults() Config {
	if c.Confidence == 0 {
		c.Confidence = 3
	}
	if c.Lookahead == 0 {
		c.Lookahead = 8
	}
	return c
}

// Predictor observes restores and emits extrapolated hints.
// Not safe for concurrent use; drive it from the restore thread.
type Predictor struct {
	cfg    Config
	sink   Hinter
	last   int64
	stride int64
	streak int
	seen   bool
	ahead  int64 // newest version already hinted (stride direction aware)
	armed  bool

	emitted int64
}

// New creates a predictor that feeds sink.
func New(sink Hinter, cfg Config) (*Predictor, error) {
	if sink == nil {
		return nil, fmt.Errorf("predict: nil hinter")
	}
	cfg = cfg.withDefaults()
	if cfg.Confidence < 1 || cfg.Lookahead < 1 {
		return nil, fmt.Errorf("predict: Confidence and Lookahead must be >= 1")
	}
	return &Predictor{cfg: cfg, sink: sink}, nil
}

// Observe records that the application just restored version v and emits
// new hints if a pattern holds. Call after (or instead of) issuing the
// restore.
func (p *Predictor) Observe(v int64) {
	if !p.seen {
		p.seen = true
		p.last = v
		return
	}
	stride := v - p.last
	p.last = v
	if stride == 0 {
		return // re-read; no direction information
	}
	if stride == p.stride {
		p.streak++
	} else {
		p.stride = stride
		p.streak = 1
		p.armed = false
	}
	if p.streak+1 < p.cfg.Confidence { // +1: the first pair counted once
		return
	}
	if !p.armed {
		p.armed = true
		p.ahead = v
	}
	// Keep the hint horizon Lookahead versions ahead of the newest
	// observation.
	target := v + int64(p.cfg.Lookahead)*p.stride
	for p.ahead != target {
		next := p.ahead + p.stride
		if !p.inRange(next) {
			break
		}
		p.sink.PrefetchEnqueue(next)
		p.emitted++
		p.ahead = next
	}
}

func (p *Predictor) inRange(v int64) bool {
	if v < p.cfg.MinVersion {
		return false
	}
	if p.cfg.MaxVersion > 0 && v > p.cfg.MaxVersion {
		return false
	}
	return true
}

// Stride returns the currently believed stride (0 if no pattern yet).
func (p *Predictor) Stride() int64 {
	if p.streak+1 < p.cfg.Confidence {
		return 0
	}
	return p.stride
}

// Emitted returns how many hints the predictor has issued.
func (p *Predictor) Emitted() int64 { return p.emitted }
