// Package simclock provides the time substrate for the Score runtime and
// its hardware simulators.
//
// Every component that sleeps, waits, or measures time does so through the
// Clock interface. Two implementations are provided:
//
//   - Virtual: a deterministic discrete-event clock. Simulated time advances
//     instantly to the next pending timer whenever every registered task is
//     blocked. A full paper-scale experiment (hundreds of gigabytes of
//     simulated transfers) completes in milliseconds of wall time.
//   - Real: a wall-clock implementation with an optional time-scale factor,
//     useful for interactive demos where transfers should take visible,
//     proportional time.
//
// The discipline required of clients is the one that makes discrete-event
// simulation sound: any goroutine that participates in simulated time must
// be started with Clock.Go (or registered via Add/Done), and any blocking
// wait that can only be resolved by the progress of simulated time must go
// through a Cond obtained from Clock.NewCond. Plain mutexes may still be
// used for short critical sections that never block across simulated time.
package simclock

import (
	"sync"
	"time"
)

// Clock abstracts the flow of time for the simulation.
//
// Now reports the current simulated time as an offset from the start of the
// simulation. Sleep blocks the calling task for the given simulated
// duration. Go starts fn as a task whose blocking is accounted for by the
// clock; the returned function must not be retained after fn returns.
type Clock interface {
	// Now returns the current simulated time.
	Now() time.Duration
	// Sleep blocks the calling task for d of simulated time.
	// Non-positive durations yield without advancing time.
	Sleep(d time.Duration)
	// Go starts fn as a clock-managed task.
	Go(fn func())
	// NewCond returns a condition variable bound to locker l whose Wait
	// correctly suspends the calling task in simulated time.
	NewCond(l sync.Locker) Cond
}

// Cond is a clock-aware condition variable. It mirrors sync.Cond with an
// additional timed wait.
type Cond interface {
	// Wait atomically unlocks the underlying locker and suspends the task
	// until Signal or Broadcast wakes it. The locker is re-acquired before
	// Wait returns. As with sync.Cond, callers must re-check their
	// condition in a loop.
	Wait()
	// WaitTimeout behaves like Wait but gives up after d of simulated
	// time. It reports true if the wait timed out (as opposed to being
	// woken by Signal/Broadcast).
	WaitTimeout(d time.Duration) bool
	// Signal wakes one waiter, if any.
	Signal()
	// Broadcast wakes all waiters.
	Broadcast()
}

// A WaitGroup is a clock-aware analogue of sync.WaitGroup: Wait suspends
// the calling task in simulated time.
type WaitGroup struct {
	mu    sync.Mutex
	cond  Cond
	count int
}

// NewWaitGroup returns a WaitGroup bound to clk.
func NewWaitGroup(clk Clock) *WaitGroup {
	wg := &WaitGroup{}
	wg.cond = clk.NewCond(&wg.mu)
	return wg
}

// Add adds delta (which may be negative) to the counter. The counter must
// never go negative.
func (wg *WaitGroup) Add(delta int) {
	wg.mu.Lock()
	defer wg.mu.Unlock()
	wg.count += delta
	if wg.count < 0 {
		panic("simclock: negative WaitGroup counter")
	}
	if wg.count == 0 {
		wg.cond.Broadcast()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks until the counter reaches zero.
func (wg *WaitGroup) Wait() {
	wg.mu.Lock()
	defer wg.mu.Unlock()
	for wg.count != 0 {
		wg.cond.Wait()
	}
}

// A Barrier is a reusable synchronization point for a fixed number of
// parties, used by the tightly-coupled execution mode of the benchmarks.
type Barrier struct {
	mu      sync.Mutex
	cond    Cond
	parties int
	arrived int
	phase   uint64
}

// NewBarrier returns a barrier for the given number of parties (>= 1).
func NewBarrier(clk Clock, parties int) *Barrier {
	if parties < 1 {
		panic("simclock: barrier needs at least one party")
	}
	b := &Barrier{parties: parties}
	b.cond = clk.NewCond(&b.mu)
	return b
}

// Await blocks until all parties have called Await for the current phase,
// then releases them all and resets for the next phase.
func (b *Barrier) Await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for b.phase == phase {
		b.cond.Wait()
	}
}

// Parties returns the number of parties the barrier was created with.
func (b *Barrier) Parties() int { return b.parties }
