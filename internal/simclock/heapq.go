package simclock

import (
	"container/heap"
	"time"
)

// timerHeapQ is the original binary-heap timer store, retained as the
// reference timerQueue: differential tests (TestWheelMatchesHeap, the
// cascade fuzz target) and WithHeapTimers run the identical clock on both
// backends and require bit-identical behavior. It shares timerEntry (and
// its liveness rule) with the wheel, and a freelist keeps it
// allocation-free in steady state so benchmark comparisons isolate the
// data structure, not the allocator.
type timerHeapQ struct {
	h    entryHeap
	live int
	free *timerEntry
}

func newTimerHeapQ() *timerHeapQ { return &timerHeapQ{} }

type entryHeap []*timerEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(*timerEntry)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func (q *timerHeapQ) hasLive() bool { return q.live > 0 }
func (q *timerHeapQ) markStale()    { q.live-- }

func (q *timerHeapQ) push(w *waiter, deadline time.Duration, seq uint64) {
	e := q.free
	if e != nil {
		q.free = e.next
		e.next = nil
	} else {
		e = &timerEntry{}
	}
	e.w, e.deadline, e.seq = w, deadline, seq
	q.live++
	heap.Push(&q.h, e)
}

// dropStaleTop pops fired/recycled entries off the top so the heap head,
// if any, is live.
func (q *timerHeapQ) dropStaleTop() {
	for len(q.h) > 0 && !q.h[0].live() {
		e := heap.Pop(&q.h).(*timerEntry)
		e.w = nil
		e.next = q.free
		q.free = e
	}
}

func (q *timerHeapQ) pop() (*waiter, time.Duration, bool) {
	q.dropStaleTop()
	if len(q.h) == 0 {
		return nil, 0, false
	}
	e := heap.Pop(&q.h).(*timerEntry)
	w, deadline := e.w, e.deadline
	e.w = nil
	e.next = q.free
	q.free = e
	q.live--
	return w, deadline, true
}

// peekReady on the heap is a plain peek: the head is always resolved.
func (q *timerHeapQ) peekReady() (*waiter, time.Duration, bool) {
	q.dropStaleTop()
	if len(q.h) == 0 {
		return nil, 0, false
	}
	return q.h[0].w, q.h[0].deadline, true
}
