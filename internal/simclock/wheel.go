package simclock

import (
	"fmt"
	"math/bits"
	"time"
)

// This file implements the hierarchical timer wheel that backs Virtual by
// default. See DESIGN.md §14 for the layout and invariants in prose.
//
// Deadlines are bucketed into wheelLevels levels of wheelSlots slots each.
// An entry for deadline d is filed at the level of the highest bit in
// which d differs from the wheel's base (the XOR rule): level
// (Len64(d^base)-1)/wheelBits, slot (d>>(level*wheelBits))&wheelMask. Two
// consequences make earliest-deadline resolution cheap and exact:
//
//   - Within a level, every live slot is strictly after the base's own
//     position at that level (same high fields, larger level field), so a
//     forward bitmap scan needs no wrap-around or revolution bookkeeping.
//   - Every live entry at level k has a smaller deadline than every live
//     entry at any level > k (its level-(k+1..) fields equal the base's,
//     while a higher-level entry exceeds the base in one of them), so the
//     earliest occupied level owns the next deadline.
//
// Resolution therefore scans levels bottom-up for the first occupied slot
// past the base position. A level-0 hit is an exact deadline: the slot
// drains into the ready queue (sorted by seq, the determinism tie-break).
// A higher-level hit only bounds the deadline: the wheel advances base to
// the slot's boundary and cascades the slot's entries down (strictly lower
// levels, by the XOR rule), then rescans. Each entry cascades at most once
// per level, so pushes and pops are O(levels) amortized.
//
// Entries are filed with a copy of the waiter's (deadline, seq) key. A
// pooled waiter may be recycled while stale entries for its previous
// incarnations are still filed (a signaled WaitTimeout leaves its timer
// behind, exactly as the old heap left fired entries); liveness is
// therefore "e.w.seq == e.seq && !e.w.fired", checked under the clock
// mutex. Stale entries are dropped whenever a drain or scan touches them;
// stale-only slots skipped by base (their bit lingers below the base
// position) are reaped when a later revolution rescans them, which is
// harmless: a cascade triggered by a stale-only slot advances base by at
// most the slot boundary, which the level ordering proves is still no
// later than any live deadline.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 11 // 66 bits of deadline delta: centuries of simulated ns
)

// timerEntry is one filed timer. It carries copies of the waiter's key
// fields so waiter reuse cannot corrupt filing order, and doubles as a
// freelist node.
type timerEntry struct {
	w        *waiter
	deadline time.Duration
	seq      uint64
	next     *timerEntry
}

func (e *timerEntry) live() bool { return e.w.seq == e.seq && !e.w.fired }

// timerQueue is the pending-timer store behind a Virtual clock. All
// methods are called with the clock mutex held. The wheel is the default;
// the heap in heapq.go is retained as the reference implementation for
// differential tests (WithHeapTimers).
type timerQueue interface {
	// push files w under the given deadline and seq (already assigned).
	push(w *waiter, deadline time.Duration, seq uint64)
	// pop removes and returns the earliest live timer, if any.
	pop() (w *waiter, deadline time.Duration, ok bool)
	// peekReady returns, without removing it, the next live timer only if
	// it is already resolved to an exact deadline (same-instant follower
	// of the last pop). It never advances the wheel base, so it is safe
	// to call between wakeups; a false return says nothing about whether
	// later timers exist.
	peekReady() (w *waiter, deadline time.Duration, ok bool)
	// markStale records that a live filed timer was invalidated out of
	// band (its waiter was signaled before the timeout).
	markStale()
	// hasLive reports whether any live timer is filed.
	hasLive() bool
}

type wheelSlot struct{ head, tail *timerEntry }

func (s *wheelSlot) append(e *timerEntry) {
	e.next = nil
	if s.tail == nil {
		s.head = e
	} else {
		s.tail.next = e
	}
	s.tail = e
}

type timerWheel struct {
	slots [wheelLevels][wheelSlots]wheelSlot
	occ   [wheelLevels]uint64 // per-level slot occupancy bitmap
	base  uint64              // ns; never exceeds the earliest live deadline
	live  int

	// ready holds the resolved frontier: live entries at exactly the base
	// deadline, sorted by seq, consumed front to back. Same-deadline
	// pushes land here directly (their seq is necessarily the largest).
	ready    []*timerEntry
	readyPos int

	free *timerEntry
}

func newTimerWheel() *timerWheel { return &timerWheel{} }

func (tw *timerWheel) alloc() *timerEntry {
	if e := tw.free; e != nil {
		tw.free = e.next
		e.next = nil
		return e
	}
	return &timerEntry{}
}

func (tw *timerWheel) release(e *timerEntry) {
	e.w = nil
	e.next = tw.free
	tw.free = e
}

func (tw *timerWheel) hasLive() bool { return tw.live > 0 }
func (tw *timerWheel) markStale()    { tw.live-- }

func (tw *timerWheel) push(w *waiter, deadline time.Duration, seq uint64) {
	e := tw.alloc()
	e.w, e.deadline, e.seq = w, deadline, seq
	tw.live++
	tw.file(e)
}

// file places e by its deadline relative to the current base. Entries at
// the base deadline join the ready queue; later ones are bucketed.
func (tw *timerWheel) file(e *timerEntry) {
	d := uint64(e.deadline)
	if d < tw.base {
		panic(fmt.Sprintf("simclock: timer wheel filed past deadline %d < base %d", d, tw.base))
	}
	if d == tw.base {
		tw.readyInsert(e)
		return
	}
	level := (bits.Len64(d^tw.base) - 1) / wheelBits
	slot := (d >> (level * wheelBits)) & wheelMask
	tw.slots[level][slot].append(e)
	tw.occ[level] |= 1 << slot
}

// readyInsert adds e to the ready queue keeping it sorted by seq. Direct
// pushes append in O(1) (monotone seq); cascaded batches may need a short
// insertion walk.
func (tw *timerWheel) readyInsert(e *timerEntry) {
	tw.ready = append(tw.ready, e)
	for i := len(tw.ready) - 1; i > tw.readyPos && tw.ready[i-1].seq > tw.ready[i].seq; i-- {
		tw.ready[i-1], tw.ready[i] = tw.ready[i], tw.ready[i-1]
	}
}

// skipStaleReady drops consumed-or-stale entries from the ready front and
// reports whether a live resolved entry remains.
func (tw *timerWheel) skipStaleReady() bool {
	for tw.readyPos < len(tw.ready) {
		e := tw.ready[tw.readyPos]
		if e.live() {
			return true
		}
		tw.ready[tw.readyPos] = nil
		tw.readyPos++
		tw.release(e)
	}
	tw.ready = tw.ready[:0]
	tw.readyPos = 0
	return false
}

func (tw *timerWheel) peekReady() (*waiter, time.Duration, bool) {
	if !tw.skipStaleReady() {
		return nil, 0, false
	}
	e := tw.ready[tw.readyPos]
	return e.w, e.deadline, true
}

func (tw *timerWheel) pop() (*waiter, time.Duration, bool) {
	if !tw.resolve() {
		return nil, 0, false
	}
	e := tw.ready[tw.readyPos]
	tw.ready[tw.readyPos] = nil
	tw.readyPos++
	w, deadline := e.w, e.deadline
	tw.release(e)
	tw.live--
	return w, deadline, true
}

// resolve advances the wheel until the ready front holds the earliest live
// timer, cascading buckets downward as base moves. Returns false when no
// live timer is filed.
func (tw *timerWheel) resolve() bool {
	for {
		if tw.skipStaleReady() {
			return true
		}
		if tw.live == 0 {
			return false
		}
		advanced := false
		for level := 0; level < wheelLevels; level++ {
			pos := (tw.base >> (level * wheelBits)) & wheelMask
			// Bits at or below the base position are stale leftovers from
			// slots the base has already passed (live entries can't hide
			// there: base never passes a live deadline). Reap them now so
			// the bit doesn't alias a future revolution.
			if behind := tw.occ[level] & (1<<pos<<1 - 1); behind != 0 {
				for b := behind; b != 0; b &= b - 1 {
					tw.reapStaleSlot(level, uint64(bits.TrailingZeros64(b)))
				}
				tw.occ[level] &^= behind
			}
			ahead := tw.occ[level] &^ (1<<pos<<1 - 1)
			if ahead == 0 {
				continue
			}
			slot := uint64(bits.TrailingZeros64(ahead))
			if level == 0 {
				tw.base = tw.base&^wheelMask | slot
				tw.drainToReady(0, slot)
			} else {
				shift := uint(level * wheelBits)
				tw.base = tw.base&^(1<<(shift+wheelBits)-1) | slot<<shift
				tw.cascade(level, slot)
			}
			advanced = true
			break
		}
		if !advanced {
			panic(fmt.Sprintf("simclock: timer wheel lost %d live timer(s)", tw.live))
		}
	}
}

func (tw *timerWheel) detach(level int, slot uint64) *timerEntry {
	s := &tw.slots[level][slot]
	head := s.head
	s.head, s.tail = nil, nil
	tw.occ[level] &^= 1 << slot
	return head
}

// reapStaleSlot frees a slot the base has already passed; every entry in
// it is necessarily stale.
func (tw *timerWheel) reapStaleSlot(level int, slot uint64) {
	for e := tw.detach(level, slot); e != nil; {
		next := e.next
		if e.live() {
			panic("simclock: timer wheel passed a live deadline")
		}
		tw.release(e)
		e = next
	}
}

// drainToReady moves a level-0 slot — entries sharing one exact deadline —
// into the ready queue, dropping stale ones.
func (tw *timerWheel) drainToReady(level int, slot uint64) {
	for e := tw.detach(level, slot); e != nil; {
		next := e.next
		if e.live() {
			tw.readyInsert(e)
		} else {
			tw.release(e)
		}
		e = next
	}
}

// cascade refiles a higher-level slot's entries now that base has advanced
// to the slot's boundary; the XOR rule sends each strictly downward (or to
// ready when the deadline equals the new base).
func (tw *timerWheel) cascade(level int, slot uint64) {
	for e := tw.detach(level, slot); e != nil; {
		next := e.next
		if e.live() {
			tw.file(e)
		} else {
			tw.release(e)
		}
		e = next
	}
}
