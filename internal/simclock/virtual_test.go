package simclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualSleepAdvancesTime(t *testing.T) {
	clk := NewVirtual()
	clk.Run(func() {
		if got := clk.Now(); got != 0 {
			t.Errorf("initial Now = %v, want 0", got)
		}
		clk.Sleep(5 * time.Second)
		if got := clk.Now(); got != 5*time.Second {
			t.Errorf("after Sleep(5s) Now = %v, want 5s", got)
		}
		clk.Sleep(250 * time.Millisecond)
		if got := clk.Now(); got != 5250*time.Millisecond {
			t.Errorf("Now = %v, want 5.25s", got)
		}
	})
}

func TestVirtualSleepZeroOrNegative(t *testing.T) {
	clk := NewVirtual()
	clk.Run(func() {
		clk.Sleep(0)
		clk.Sleep(-time.Second)
		if got := clk.Now(); got != 0 {
			t.Errorf("Now = %v, want 0 after non-positive sleeps", got)
		}
	})
}

func TestVirtualConcurrentSleepsOverlap(t *testing.T) {
	// Two tasks sleeping concurrently should finish at max, not sum.
	clk := NewVirtual()
	clk.Run(func() {
		wg := NewWaitGroup(clk)
		wg.Add(2)
		var end1, end2 time.Duration
		clk.Go(func() {
			defer wg.Done()
			clk.Sleep(3 * time.Second)
			end1 = clk.Now()
		})
		clk.Go(func() {
			defer wg.Done()
			clk.Sleep(7 * time.Second)
			end2 = clk.Now()
		})
		wg.Wait()
		if end1 != 3*time.Second {
			t.Errorf("task1 finished at %v, want 3s", end1)
		}
		if end2 != 7*time.Second {
			t.Errorf("task2 finished at %v, want 7s", end2)
		}
		if got := clk.Now(); got != 7*time.Second {
			t.Errorf("final Now = %v, want 7s", got)
		}
	})
}

func TestVirtualManyTasksDeterministic(t *testing.T) {
	// N tasks each sleep i milliseconds; final time must equal the max
	// on every run.
	for trial := 0; trial < 3; trial++ {
		clk := NewVirtual()
		var final time.Duration
		clk.Run(func() {
			wg := NewWaitGroup(clk)
			for i := 1; i <= 50; i++ {
				i := i
				wg.Add(1)
				clk.Go(func() {
					defer wg.Done()
					for j := 0; j < 5; j++ {
						clk.Sleep(time.Duration(i) * time.Millisecond)
					}
				})
			}
			wg.Wait()
			final = clk.Now()
		})
		if want := 250 * time.Millisecond; final != want {
			t.Fatalf("trial %d: final time %v, want %v", trial, final, want)
		}
	}
}

func TestVirtualCondSignalWakesOne(t *testing.T) {
	clk := NewVirtual()
	clk.Run(func() {
		var mu sync.Mutex
		cond := clk.NewCond(&mu)
		ready := int32(0)
		woken := int32(0)
		wg := NewWaitGroup(clk)
		for i := 0; i < 3; i++ {
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				mu.Lock()
				atomic.AddInt32(&ready, 1)
				cond.Wait()
				atomic.AddInt32(&woken, 1)
				mu.Unlock()
			})
		}
		// Let the waiters park: sleeping advances virtual time, which
		// only happens once all three are blocked in Wait.
		clk.Sleep(time.Millisecond)
		if got := atomic.LoadInt32(&ready); got != 3 {
			t.Fatalf("ready = %d, want 3", got)
		}
		mu.Lock()
		cond.Signal()
		mu.Unlock()
		clk.Sleep(time.Millisecond)
		if got := atomic.LoadInt32(&woken); got != 1 {
			t.Errorf("after Signal, woken = %d, want 1", got)
		}
		mu.Lock()
		cond.Broadcast()
		mu.Unlock()
		wg.Wait()
		if got := atomic.LoadInt32(&woken); got != 3 {
			t.Errorf("after Broadcast, woken = %d, want 3", got)
		}
	})
}

func TestVirtualCondWaitTimeout(t *testing.T) {
	clk := NewVirtual()
	clk.Run(func() {
		var mu sync.Mutex
		cond := clk.NewCond(&mu)

		mu.Lock()
		start := clk.Now()
		timedOut := cond.WaitTimeout(2 * time.Second)
		elapsed := clk.Now() - start
		mu.Unlock()
		if !timedOut {
			t.Error("WaitTimeout with no signal: timedOut = false, want true")
		}
		if elapsed != 2*time.Second {
			t.Errorf("WaitTimeout advanced %v, want 2s", elapsed)
		}

		// Now a signal arriving before the deadline.
		wg := NewWaitGroup(clk)
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			clk.Sleep(time.Second)
			mu.Lock()
			cond.Signal()
			mu.Unlock()
		})
		mu.Lock()
		start = clk.Now()
		timedOut = cond.WaitTimeout(10 * time.Second)
		elapsed = clk.Now() - start
		mu.Unlock()
		if timedOut {
			t.Error("WaitTimeout with early signal: timedOut = true, want false")
		}
		if elapsed != time.Second {
			t.Errorf("signaled wait took %v of simulated time, want 1s", elapsed)
		}
		wg.Wait()
	})
}

func TestVirtualCondSignalSkipsTimedOutWaiter(t *testing.T) {
	clk := NewVirtual()
	clk.Run(func() {
		var mu sync.Mutex
		cond := clk.NewCond(&mu)
		got := make([]string, 0, 2)
		wg := NewWaitGroup(clk)

		wg.Add(1)
		clk.Go(func() { // waiter A times out quickly
			defer wg.Done()
			mu.Lock()
			if cond.WaitTimeout(time.Second) {
				got = append(got, "A:timeout")
			} else {
				got = append(got, "A:signal")
			}
			mu.Unlock()
		})
		wg.Add(1)
		clk.Go(func() { // waiter B waits indefinitely
			defer wg.Done()
			clk.Sleep(100 * time.Millisecond) // ensure A registered first
			mu.Lock()
			cond.Wait()
			got = append(got, "B:signal")
			mu.Unlock()
		})

		clk.Sleep(5 * time.Second) // A has timed out by now
		mu.Lock()
		cond.Signal() // must reach B, not the stale A entry
		mu.Unlock()
		wg.Wait()

		found := map[string]bool{}
		for _, s := range got {
			found[s] = true
		}
		if !found["A:timeout"] || !found["B:signal"] {
			t.Errorf("events = %v, want A:timeout and B:signal", got)
		}
	})
}

func TestVirtualDeadlockPanics(t *testing.T) {
	// A task waiting on a Cond that nothing will ever signal, with no
	// pending timers, is a true deadlock: the clock must panic (on the
	// goroutine that completed the deadlock) rather than hang.
	clk := NewVirtual()
	var caught interface{}
	clk.Run(func() {
		defer func() { caught = recover() }()
		var mu sync.Mutex
		cond := clk.NewCond(&mu)
		mu.Lock()
		cond.Wait() // nothing will ever signal: deadlock
		mu.Unlock()
	})
	if caught == nil {
		t.Fatal("expected a deadlock panic, got none")
	}
	if s, ok := caught.(string); !ok || !containsStr(s, "deadlock") {
		t.Errorf("panic value = %v, want a message mentioning deadlock", caught)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestWaitGroupZeroCount(t *testing.T) {
	clk := NewVirtual()
	clk.Run(func() {
		wg := NewWaitGroup(clk)
		wg.Wait() // must not block when counter is zero
	})
}

func TestBarrierReleasesAllParties(t *testing.T) {
	clk := NewVirtual()
	clk.Run(func() {
		const parties = 8
		b := NewBarrier(clk, parties)
		var phase1 int32
		wg := NewWaitGroup(clk)
		for i := 0; i < parties; i++ {
			i := i
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				clk.Sleep(time.Duration(i+1) * time.Second)
				b.Await()
				atomic.AddInt32(&phase1, 1)
				// All parties must arrive before any passes: at the
				// moment we pass, the slowest sleeper (8s) has slept.
				if now := clk.Now(); now < 8*time.Second {
					t.Errorf("passed barrier at %v, before slowest arrival", now)
				}
			})
		}
		wg.Wait()
		if phase1 != parties {
			t.Errorf("parties past barrier = %d, want %d", phase1, parties)
		}
	})
}

func TestBarrierReusableAcrossPhases(t *testing.T) {
	clk := NewVirtual()
	clk.Run(func() {
		const parties, rounds = 4, 10
		b := NewBarrier(clk, parties)
		var counter int64
		wg := NewWaitGroup(clk)
		for p := 0; p < parties; p++ {
			p := p
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					clk.Sleep(time.Duration(p+1) * time.Millisecond)
					atomic.AddInt64(&counter, 1)
					b.Await()
					// After each barrier, exactly parties*(r+1)
					// increments must have happened.
					if got := atomic.LoadInt64(&counter); got != int64(parties*(r+1)) {
						t.Errorf("round %d: counter = %d, want %d", r, got, parties*(r+1))
					}
					b.Await() // second barrier so the check above is race-free
				}
			})
		}
		wg.Wait()
	})
}

func TestVirtualNowMonotonicProperty(t *testing.T) {
	// Property: for any sequence of sleep durations, Now() is
	// non-decreasing and equals the cumulative sum for a single task.
	f := func(durs []uint16) bool {
		clk := NewVirtual()
		ok := true
		clk.Run(func() {
			var sum time.Duration
			prev := clk.Now()
			for _, d := range durs {
				dd := time.Duration(d) * time.Microsecond
				clk.Sleep(dd)
				sum += dd
				now := clk.Now()
				if now < prev || now != sum {
					ok = false
					return
				}
				prev = now
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRealClockBasics(t *testing.T) {
	clk := NewReal(1000) // 1 simulated second per wall millisecond
	start := clk.Now()
	clk.Sleep(100 * time.Millisecond) // 100µs wall
	if elapsed := clk.Now() - start; elapsed < 100*time.Millisecond {
		t.Errorf("Real.Sleep(100ms sim) advanced only %v", elapsed)
	}
}

func TestRealCondSignalAndTimeout(t *testing.T) {
	clk := NewReal(1000)
	var mu sync.Mutex
	cond := clk.NewCond(&mu)

	mu.Lock()
	if !cond.WaitTimeout(10 * time.Millisecond) {
		t.Error("expected timeout with no signal")
	}
	mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		mu.Lock()
		if cond.WaitTimeout(time.Hour) {
			t.Error("expected signal before timeout")
		}
		mu.Unlock()
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park
	mu.Lock()
	cond.Signal()
	mu.Unlock()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("signaled waiter never woke")
	}
}

func TestNewRealRejectsNonPositiveSpeedup(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewReal(0) did not panic")
		}
	}()
	NewReal(0)
}

func TestNewBarrierRejectsZeroParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBarrier(clk, 0) did not panic")
		}
	}()
	NewBarrier(NewVirtual(), 0)
}
