package simclock

import (
	"sync"
	"time"
)

// Real is a wall-clock implementation of Clock with an optional speedup
// factor: a speedup of 1000 makes one simulated second pass in one wall
// millisecond. It is intended for interactive demos; benchmarks and tests
// use Virtual.
type Real struct {
	start   time.Time
	speedup float64
}

// NewReal returns a wall-backed clock. speedup is the ratio of simulated
// time to wall time and must be > 0; NewReal(1) runs in real time.
func NewReal(speedup float64) *Real {
	if speedup <= 0 {
		panic("simclock: speedup must be positive")
	}
	return &Real{start: time.Now(), speedup: speedup}
}

// Now returns the simulated time elapsed since the clock was created.
func (c *Real) Now() time.Duration {
	return time.Duration(float64(time.Since(c.start)) * c.speedup)
}

// Sleep blocks for d of simulated time (d/speedup of wall time).
func (c *Real) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) / c.speedup))
}

// Go starts fn as an ordinary goroutine; the real clock needs no task
// accounting.
func (c *Real) Go(fn func()) { go fn() }

// Run executes fn inline and returns when it completes, mirroring
// Virtual.Run so the two clocks are interchangeable in drivers.
func (c *Real) Run(fn func()) { fn() }

// NewCond returns a wall-backed condition variable bound to l.
func (c *Real) NewCond(l sync.Locker) Cond { return &rcond{clk: c, l: l} }

// rcond implements Cond over channels so that WaitTimeout is possible
// (sync.Cond has no timed wait).
type rcond struct {
	clk *Real
	l   sync.Locker

	mu      sync.Mutex // guards waiters; never held while blocking
	waiters []*rwaiter
}

type rwaiter struct {
	ch    chan struct{}
	fired bool
}

func (cd *rcond) Wait() { cd.wait(-1) }

func (cd *rcond) WaitTimeout(d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	return cd.wait(d)
}

func (cd *rcond) wait(d time.Duration) bool {
	w := &rwaiter{ch: make(chan struct{})}
	cd.mu.Lock()
	cd.waiters = append(cd.waiters, w)
	cd.mu.Unlock()
	cd.l.Unlock()

	timedOut := false
	if d < 0 {
		<-w.ch
	} else {
		wall := time.Duration(float64(d) / cd.clk.speedup)
		timer := time.NewTimer(wall)
		select {
		case <-w.ch:
			timer.Stop()
		case <-timer.C:
			// Mark fired so a future Signal does not burn a wakeup
			// on us. Re-check the channel: a signal may have raced
			// the timer.
			cd.mu.Lock()
			select {
			case <-w.ch:
				// Signal won the race.
			default:
				w.fired = true
				timedOut = true
			}
			cd.mu.Unlock()
		}
	}
	cd.l.Lock()
	return timedOut
}

func (cd *rcond) Signal() {
	cd.mu.Lock()
	for len(cd.waiters) > 0 {
		w := cd.waiters[0]
		cd.waiters = cd.waiters[1:]
		if w.fired {
			continue
		}
		w.fired = true
		close(w.ch)
		break
	}
	cd.mu.Unlock()
}

func (cd *rcond) Broadcast() {
	cd.mu.Lock()
	for _, w := range cd.waiters {
		if w.fired {
			continue
		}
		w.fired = true
		close(w.ch)
	}
	cd.waiters = cd.waiters[:0]
	cd.mu.Unlock()
}
