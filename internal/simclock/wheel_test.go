package simclock

import (
	"testing"
	"time"
)

// These tests check the timer wheel differentially against a naive
// reference: a flat list whose earliest timer is found by scanning the
// full (deadline, seq) sort key. The wheel must pop the exact same
// sequence — deadline resolution, seq tie-breaks, and stale-entry
// reaping included — for any operation interleaving.

// naiveEntry mirrors one live filed timer in the reference model.
type naiveEntry struct {
	w        *waiter
	deadline time.Duration
	seq      uint64
}

// naiveMin returns the index of the earliest (deadline, seq) entry, or
// -1 when the model is empty.
func naiveMin(model []naiveEntry) int {
	best := -1
	for i, e := range model {
		if best < 0 || e.deadline < model[best].deadline ||
			(e.deadline == model[best].deadline && e.seq < model[best].seq) {
			best = i
		}
	}
	return best
}

// popBoth pops the earliest timer from the wheel and the model and
// fails the test on any divergence. Returns false when both are empty.
func popBoth(t *testing.T, tw timerQueue, model *[]naiveEntry, floor *time.Duration) bool {
	t.Helper()
	k := naiveMin(*model)
	w, d, ok := tw.pop()
	if k < 0 {
		if ok {
			t.Fatalf("wheel popped (deadline %v, seq %d); model is empty", d, w.seq)
		}
		return false
	}
	want := (*model)[k]
	if !ok {
		t.Fatalf("wheel empty; model expects (deadline %v, seq %d)", want.deadline, want.seq)
	}
	if w != want.w || d != want.deadline {
		t.Fatalf("wheel popped (deadline %v, seq %d); model expects (deadline %v, seq %d)",
			d, w.seq, want.deadline, want.seq)
	}
	// Mirror wakeTimerLocked: a popped waiter is consumed, so lingering
	// duplicate filings (none here, but the liveness rule allows them)
	// would read as stale.
	w.fired = true
	*model = append((*model)[:k], (*model)[k+1:]...)
	if d > *floor {
		*floor = d
	}
	return true
}

// driveTimerQueue interprets data as an operation stream against both
// the wheel and the naive model, then drains and compares the tails.
func driveTimerQueue(t *testing.T, data []byte) {
	tw := newTimerWheel()
	var model []naiveEntry
	var seq uint64
	var floor time.Duration // wheel base never exceeds this

	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return b
	}
	for i < len(data) {
		switch op := next(); op % 4 {
		case 0, 1: // push (weighted: half the stream)
			// Two bytes of magnitude shifted by up to 40 bits crosses
			// many wheel levels, exercising cascades; delta 0 lands on
			// the ready queue (same-deadline push).
			lo, hi, sh := next(), next(), next()
			delta := (time.Duration(hi)<<8 | time.Duration(lo)) << (sh % 40)
			d := floor + delta
			w := &waiter{seq: seq, timed: true}
			tw.push(w, d, seq)
			model = append(model, naiveEntry{w: w, deadline: d, seq: seq})
			seq++
		case 2: // pop
			popBoth(t, tw, &model, &floor)
		case 3: // invalidate a live timer out of band (signal before expiry)
			if len(model) > 0 {
				k := int(next()) % len(model)
				model[k].w.fired = true
				tw.markStale()
				model = append(model[:k], model[k+1:]...)
			}
		}
	}
	for popBoth(t, tw, &model, &floor) {
	}
	if tw.hasLive() {
		t.Fatal("wheel reports live timers after full drain")
	}
}

// FuzzTimerWheelVsNaiveModel fuzzes arbitrary push/pop/invalidate
// interleavings through driveTimerQueue.
func FuzzTimerWheelVsNaiveModel(f *testing.F) {
	f.Add([]byte{0, 1, 0, 3, 0, 255, 255, 30, 2, 2, 2})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 2, 2})                     // same-deadline pile-up
	f.Add([]byte{0, 10, 0, 39, 0, 10, 0, 0, 3, 0, 2, 2})            // far deadline then invalidate
	f.Add([]byte{1, 1, 0, 20, 1, 1, 0, 10, 1, 1, 0, 0, 2, 2, 2, 2}) // descending level pushes
	f.Fuzz(func(t *testing.T, data []byte) {
		driveTimerQueue(t, data)
	})
}

// TestTimerWheelVsNaiveModelSeeded runs the fuzz corpus shapes plus a
// long deterministic pseudo-random stream, so `go test` exercises the
// differential even when the fuzz engine never runs.
func TestTimerWheelVsNaiveModelSeeded(t *testing.T) {
	long := make([]byte, 4096)
	x := uint32(2023)
	for i := range long {
		x = x*1664525 + 1013904223
		long[i] = byte(x >> 24)
	}
	driveTimerQueue(t, long)
}

// TestTimerWheelCascadeExact pins the cascade path: timers far enough
// apart to occupy different levels must still pop in deadline order
// with same-deadline ties broken by seq.
func TestTimerWheelCascadeExact(t *testing.T) {
	tw := newTimerWheel()
	deadlines := []time.Duration{
		1 << 40, 1 << 20, 1 << 7, 1 << 7, 1, 1 << 20, 0,
	}
	ws := make([]*waiter, len(deadlines))
	for i, d := range deadlines {
		ws[i] = &waiter{seq: uint64(i), timed: true}
		tw.push(ws[i], d, uint64(i))
	}
	want := []int{6, 4, 2, 3, 1, 5, 0} // indices by (deadline, seq)
	for _, wi := range want {
		w, d, ok := tw.pop()
		if !ok {
			t.Fatalf("wheel empty; expected waiter %d", wi)
		}
		if w != ws[wi] {
			t.Fatalf("popped seq %d (deadline %v); expected seq %d (deadline %v)",
				w.seq, d, wi, deadlines[wi])
		}
		w.fired = true
	}
	if _, _, ok := tw.pop(); ok {
		t.Fatal("wheel not empty after draining every timer")
	}
}
