package simclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Virtual is a deterministic discrete-event clock. Simulated time stands
// still while any registered task is runnable and jumps to the next pending
// timer when every task is blocked (in Sleep or in a Cond wait).
//
// A Virtual clock detects true deadlock: if every task is blocked in a
// Cond wait with no pending timer, no event can ever wake the simulation,
// and the clock panics with a diagnostic rather than hanging.
type Virtual struct {
	mu          sync.Mutex
	now         time.Duration
	runnable    int // tasks currently executing (or woken and about to run)
	condWaiters int // tasks suspended in a Cond wait
	timers      timerHeap
	seq         uint64 // tie-break for deterministic heap order
	dead        bool   // deadlock detected; clock no longer advances
}

// NewVirtual returns a virtual clock positioned at time zero with no
// registered tasks.
func NewVirtual() *Virtual { return &Virtual{} }

// waiter is a suspended task. It may be woken by a timer (timeout/sleep)
// or by a Cond signal, whichever comes first; fired guards double wake.
type waiter struct {
	ch       chan bool // receives true when woken by timer expiry
	deadline time.Duration
	seq      uint64
	fired    bool
	inCond   bool // counted in condWaiters
}

type timerHeap []*waiter

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Now returns the current simulated time.
func (c *Virtual) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep suspends the calling task for d of simulated time. The calling
// task must have been started via Go (or be inside Run).
func (c *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	w := &waiter{ch: make(chan bool, 1)}
	c.mu.Lock()
	w.deadline = c.now + d
	w.seq = c.seq
	c.seq++
	heap.Push(&c.timers, w)
	c.runnable--
	c.advanceAndMaybePanicLocked()
	<-w.ch
}

// Go starts fn as a clock-managed task.
func (c *Virtual) Go(fn func()) {
	c.mu.Lock()
	c.runnable++
	c.mu.Unlock()
	go func() {
		defer func() {
			c.mu.Lock()
			c.runnable--
			c.advanceAndMaybePanicLocked()
		}()
		fn()
	}()
}

// Run registers fn as the root task, executes it, and returns when it
// completes. It is the usual entry point for a simulation:
//
//	clk := simclock.NewVirtual()
//	clk.Run(func() { ... all simulated work ... })
func (c *Virtual) Run(fn func()) {
	done := make(chan struct{})
	c.Go(func() {
		defer close(done)
		fn()
	})
	<-done
}

// NewCond returns a virtual-time condition variable bound to l.
func (c *Virtual) NewCond(l sync.Locker) Cond { return &vcond{clk: c, l: l} }

// advanceAndMaybePanicLocked advances time if possible and UNLOCKS c.mu.
// If advancing is impossible because every task is parked in a Cond wait
// with no pending timer — a true deadlock — it panics after releasing the
// lock, so a recover() in the caller leaves the clock unlocked (though
// permanently dead).
func (c *Virtual) advanceAndMaybePanicLocked() {
	deadlocked := c.maybeAdvanceLocked()
	waiters, now := c.condWaiters, c.now
	c.mu.Unlock()
	if deadlocked {
		panic(fmt.Sprintf(
			"simclock: deadlock: %d task(s) blocked in Cond waits with no pending timers at t=%v",
			waiters, now))
	}
}

// maybeAdvanceLocked advances simulated time to the next timer deadline if
// no task is runnable. It reports whether a deadlock was detected (first
// detection only). Must be called with c.mu held.
func (c *Virtual) maybeAdvanceLocked() (deadlocked bool) {
	if c.runnable > 0 || c.dead {
		return false
	}
	for {
		// Discard stale timer entries (cond waiters already signaled).
		for c.timers.Len() > 0 && c.timers[0].fired {
			heap.Pop(&c.timers)
		}
		if c.timers.Len() == 0 {
			if c.condWaiters > 0 {
				c.dead = true
				return true
			}
			return false // clean quiescence: every task has exited
		}
		next := c.timers[0].deadline
		if next > c.now {
			c.now = next
		}
		// Wake exactly one timer per advance: same-deadline waiters resume
		// one at a time in registration order, each running to its next
		// blocking point before the next wakes. Waking them all at once
		// would hand several runnable goroutines to the real scheduler,
		// whose interleaving is not reproducible.
		for c.timers.Len() > 0 && c.timers[0].deadline <= c.now {
			w := heap.Pop(&c.timers).(*waiter)
			if w.fired {
				continue
			}
			w.fired = true
			if w.inCond {
				c.condWaiters--
			}
			c.runnable++
			w.ch <- true
			return false
		}
		// All entries at this deadline were stale; try the next one.
	}
}

// vcond is the Virtual implementation of Cond.
type vcond struct {
	clk     *Virtual
	l       sync.Locker
	waiters []*waiter // FIFO; entries may be stale (fired by timeout)
}

func (cd *vcond) Wait() { cd.wait(-1) }

func (cd *vcond) WaitTimeout(d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	return cd.wait(d)
}

// wait suspends the task; d < 0 means no timeout. Returns true on timeout.
// Precondition: caller holds cd.l.
func (cd *vcond) wait(d time.Duration) bool {
	c := cd.clk
	w := &waiter{ch: make(chan bool, 1), inCond: true}
	c.mu.Lock()
	cd.waiters = append(cd.waiters, w)
	if d >= 0 {
		w.deadline = c.now + d
		w.seq = c.seq
		c.seq++
		heap.Push(&c.timers, w)
	}
	c.condWaiters++
	c.runnable--
	cd.l.Unlock()
	c.advanceAndMaybePanicLocked()
	timedOut := <-w.ch
	cd.l.Lock()
	return timedOut
}

func (cd *vcond) Signal() {
	c := cd.clk
	c.mu.Lock()
	for len(cd.waiters) > 0 {
		w := cd.waiters[0]
		cd.waiters = cd.waiters[1:]
		if w.fired {
			continue // already timed out
		}
		w.fired = true
		c.condWaiters--
		c.runnable++
		w.ch <- false
		break
	}
	c.mu.Unlock()
}

func (cd *vcond) Broadcast() {
	c := cd.clk
	c.mu.Lock()
	for _, w := range cd.waiters {
		if w.fired {
			continue
		}
		w.fired = true
		c.condWaiters--
		c.runnable++
		w.ch <- false
	}
	cd.waiters = cd.waiters[:0]
	c.mu.Unlock()
}
