package simclock

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// eventCount tallies task wakeups (timer fires, signals, broadcast wakes)
// across every Virtual clock in the process. The simulator-speed
// benchmarks difference it to report events/sec; one uncontended atomic
// add per wakeup is noise next to the channel handoff that follows it.
var eventCount atomic.Uint64

// EventCount returns the process-wide number of discrete-event wakeups
// performed by all Virtual clocks so far.
func EventCount() uint64 { return eventCount.Load() }

// Virtual is a deterministic discrete-event clock. Simulated time stands
// still while any registered task is runnable and jumps to the next pending
// timer when every task is blocked (in Sleep or in a Cond wait).
//
// A Virtual clock detects true deadlock: if every task is blocked in a
// Cond wait with no pending timer, no event can ever wake the simulation,
// and the clock panics with a diagnostic rather than hanging.
type Virtual struct {
	mu  sync.Mutex
	now time.Duration
	// nowAtomic mirrors now for lock-free reads. Time only advances while
	// every task is blocked, so no task can observe it mid-change: Now()
	// from a running task is exact without the mutex.
	nowAtomic   atomic.Int64
	runnable    int // tasks currently executing (or woken and about to run)
	condWaiters int // tasks suspended in a Cond wait
	timers      timerQueue
	seq         uint64 // tie-break for deterministic wake order; doubles as waiter generation
	dead        bool   // deadlock detected; clock no longer advances
	parallel    bool   // batch-wake same-deadline sleepers (WithParallelWake)

	// wake1/pendingWakes stage timer wakeups chosen under the mutex for
	// delivery after it is released (see advanceAndMaybePanicLocked).
	// Serial advances wake exactly one task, so the common case is a single
	// pointer field; parallel cohorts overflow into a pooled slice.
	wake1         *waiter
	pendingWakes  []*waiter
	pendingHolder *[]*waiter // heap home for pendingWakes while pooled
	overflowPool  sync.Pool  // of *[]*waiter, for pendingWakes buffers

	// wpool recycles waiter records (and their wake channels) so Sleep and
	// Cond waits are allocation-free in steady state. It is per-clock on
	// purpose: a recycled waiter may still be referenced by stale timer or
	// cond entries from a previous incarnation, whose liveness checks read
	// its seq/fired fields under THIS clock's mutex — all waiter field
	// mutation happens under the same mutex, so those stale readers never
	// race (DESIGN.md §14 has the ownership rules). A process-wide pool
	// would let a waiter migrate to a clock with a different mutex.
	wpool sync.Pool
}

func (c *Virtual) getWaiter() *waiter {
	if w, _ := c.wpool.Get().(*waiter); w != nil {
		return w
	}
	return &waiter{ch: make(chan bool, 1)}
}

// A VirtualOption configures a Virtual clock at construction.
type VirtualOption func(*Virtual)

// WithHeapTimers selects the original binary-heap timer store instead of
// the timer wheel. It exists for differential determinism tests and A/B
// benchmarks; behavior is identical, only the data structure differs.
func WithHeapTimers() VirtualOption {
	return func(c *Virtual) { c.timers = newTimerHeapQ() }
}

// WithParallelWake lets the clock wake every plain sleeper that shares the
// next deadline in one batch, so their wake-side work (the real CPU cost
// between clock interactions) runs concurrently instead of strictly one
// at a time. Timed or untimed Cond waiters are never batched, and the
// default remains strictly serial wakeups.
//
// Determinism is preserved exactly when the batched tasks' same-instant
// effects commute — the discipline the runtime already requires of
// Broadcast, which has always handed all woken waiters to the scheduler
// at once. DESIGN.md §14 states the argument; the serial-vs-parallel
// differential tests enforce it for the shipped scenarios.
func WithParallelWake() VirtualOption {
	return func(c *Virtual) { c.parallel = true }
}

// NewVirtual returns a virtual clock positioned at time zero with no
// registered tasks.
func NewVirtual(opts ...VirtualOption) *Virtual {
	c := &Virtual{}
	for _, o := range opts {
		o(c)
	}
	if c.timers == nil {
		c.timers = newTimerWheel()
	}
	return c
}

// waiter is a suspended task. It may be woken by a timer (timeout/sleep)
// or by a Cond signal, whichever comes first; fired guards double wake,
// and seq (reassigned on every acquisition) identifies the incarnation
// that stale queue entries were filed against.
type waiter struct {
	ch     chan bool // receives true when woken by timer expiry
	seq    uint64
	fired  bool
	inCond bool // counted in condWaiters
	timed  bool // has a filed timer (markStale bookkeeping on signal)
}

// acquireWaiterLocked readies w for a new suspension. Must be called with
// c.mu held: stale queue entries for w's previous incarnation may be
// examined concurrently under the same mutex.
func (c *Virtual) acquireWaiterLocked(w *waiter, inCond, timed bool) {
	w.seq = c.seq
	c.seq++
	w.fired = false
	w.inCond = inCond
	w.timed = timed
}

// Now returns the current simulated time.
func (c *Virtual) Now() time.Duration {
	return time.Duration(c.nowAtomic.Load())
}

// Sleep suspends the calling task for d of simulated time. The calling
// task must have been started via Go (or be inside Run).
func (c *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	w := c.getWaiter()
	c.mu.Lock()
	c.acquireWaiterLocked(w, false, true)
	c.timers.push(w, c.now+d, w.seq)
	c.runnable--
	c.advanceAndMaybePanicLocked()
	<-w.ch
	c.wpool.Put(w)
}

// Go starts fn as a clock-managed task.
func (c *Virtual) Go(fn func()) {
	c.mu.Lock()
	c.runnable++
	c.mu.Unlock()
	go func() {
		defer func() {
			c.mu.Lock()
			c.runnable--
			c.advanceAndMaybePanicLocked()
		}()
		fn()
	}()
}

// Run registers fn as the root task, executes it, and returns when it
// completes. It is the usual entry point for a simulation:
//
//	clk := simclock.NewVirtual()
//	clk.Run(func() { ... all simulated work ... })
func (c *Virtual) Run(fn func()) {
	done := make(chan struct{})
	c.Go(func() {
		defer close(done)
		fn()
	})
	<-done
}

// NewCond returns a virtual-time condition variable bound to l.
func (c *Virtual) NewCond(l sync.Locker) Cond { return &vcond{clk: c, l: l} }

// advanceAndMaybePanicLocked advances time if possible and UNLOCKS c.mu.
// If advancing is impossible because every task is parked in a Cond wait
// with no pending timer — a true deadlock — it panics after releasing the
// lock, so a recover() in the caller leaves the clock unlocked (though
// permanently dead).
func (c *Virtual) advanceAndMaybePanicLocked() {
	deadlocked := c.maybeAdvanceLocked()
	waiters, now := c.condWaiters, c.now
	w1 := c.wake1
	c.wake1 = nil
	var restp *[]*waiter
	if len(c.pendingWakes) > 0 {
		restp = c.pendingHolder
		*restp = c.pendingWakes
		c.pendingWakes, c.pendingHolder = nil, nil
	}
	c.mu.Unlock()
	// Deliver the wakes outside the mutex: the woken task's first clock
	// call would otherwise contend with the lock we still hold. The fired
	// flag was set under the mutex, so no competing waker exists, and
	// delivery order (= staging order) is preserved. The overflow buffer
	// travels through the pool inside its original heap holder: taking the
	// address of a local here would heap-allocate a fresh slice header per
	// advance, the one thing this path exists to avoid.
	if w1 != nil {
		w1.ch <- true
	}
	if restp != nil {
		rest := *restp
		for i, w := range rest {
			rest[i] = nil
			w.ch <- true
		}
		*restp = rest[:0]
		c.overflowPool.Put(restp)
	}
	if deadlocked {
		panic(fmt.Sprintf(
			"simclock: deadlock: %d task(s) blocked in Cond waits with no pending timers at t=%v",
			waiters, now))
	}
}

// maybeAdvanceLocked advances simulated time to the next timer deadline if
// no task is runnable. It reports whether a deadlock was detected (first
// detection only). Must be called with c.mu held.
func (c *Virtual) maybeAdvanceLocked() (deadlocked bool) {
	if c.runnable > 0 || c.dead {
		return false
	}
	w, deadline, ok := c.timers.pop()
	if !ok {
		if c.condWaiters > 0 {
			c.dead = true
			return true
		}
		return false // clean quiescence: every task has exited
	}
	if deadline > c.now {
		c.now = deadline
		c.nowAtomic.Store(int64(deadline))
	}
	// Wake exactly one timer per advance: same-deadline waiters resume
	// one at a time in registration order, each running to its next
	// blocking point before the next wakes. Waking them all at once
	// would hand several runnable goroutines to the real scheduler,
	// whose interleaving is not reproducible.
	c.wakeTimerLocked(w)
	if !c.parallel || w.inCond {
		return false
	}
	// Parallel mode: plain sleepers sharing this deadline wake as one
	// cohort (see WithParallelWake for the determinism contract). The
	// batch stops at the first Cond waiter — timed waits carry
	// share-recomputation semantics (fabric pacers) that stay serial.
	for {
		w2, d2, ok2 := c.timers.peekReady()
		if !ok2 || d2 != deadline || w2.inCond {
			return false
		}
		c.timers.pop()
		c.wakeTimerLocked(w2)
	}
}

func (c *Virtual) wakeTimerLocked(w *waiter) {
	w.fired = true
	if w.inCond {
		c.condWaiters--
	}
	c.runnable++
	eventCount.Add(1)
	if c.wake1 == nil {
		c.wake1 = w
		return
	}
	if c.pendingHolder == nil {
		if p, _ := c.overflowPool.Get().(*[]*waiter); p != nil {
			c.pendingWakes, c.pendingHolder = *p, p
		} else {
			c.pendingHolder = new([]*waiter)
		}
	}
	c.pendingWakes = append(c.pendingWakes, w)
}

// vcond is the Virtual implementation of Cond.
type vcond struct {
	clk     *Virtual
	l       sync.Locker
	waiters []condEntry // FIFO from head; entries may be stale
	head    int
}

// condEntry pins the incarnation of a queued waiter, exactly as
// timerEntry does for timers: a pooled waiter recycled after a timeout
// leaves its cond entry behind, detectable by the seq mismatch.
type condEntry struct {
	w   *waiter
	seq uint64
}

func (e condEntry) live() bool { return e.w.seq == e.seq && !e.w.fired }

func (cd *vcond) Wait() { cd.wait(-1) }

func (cd *vcond) WaitTimeout(d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	return cd.wait(d)
}

// wait suspends the task; d < 0 means no timeout. Returns true on timeout.
// Precondition: caller holds cd.l.
func (cd *vcond) wait(d time.Duration) bool {
	c := cd.clk
	w := c.getWaiter()
	c.mu.Lock()
	c.acquireWaiterLocked(w, true, d >= 0)
	cd.enqueue(condEntry{w, w.seq})
	if d >= 0 {
		c.timers.push(w, c.now+d, w.seq)
	}
	c.condWaiters++
	c.runnable--
	cd.l.Unlock()
	c.advanceAndMaybePanicLocked()
	timedOut := <-w.ch
	c.wpool.Put(w)
	cd.l.Lock()
	return timedOut
}

func (cd *vcond) enqueue(e condEntry) {
	if cd.head > 0 && cd.head == len(cd.waiters) {
		cd.waiters = cd.waiters[:0]
		cd.head = 0
	}
	cd.waiters = append(cd.waiters, e)
}

// wakeCondLocked fires a queued waiter: its pending timer (if any) is now
// stale, which the timer store tracks as a live-count decrement. The
// channel send happens after the clock mutex is released (fired, set here,
// already excludes competing wakers).
func (c *Virtual) wakeCondLocked(w *waiter) {
	w.fired = true
	if w.timed {
		c.timers.markStale()
	}
	c.condWaiters--
	c.runnable++
	eventCount.Add(1)
}

func (cd *vcond) Signal() {
	c := cd.clk
	var woken *waiter
	c.mu.Lock()
	for cd.head < len(cd.waiters) {
		e := cd.waiters[cd.head]
		cd.waiters[cd.head] = condEntry{}
		cd.head++
		if !e.live() {
			continue // already timed out or recycled
		}
		c.wakeCondLocked(e.w)
		woken = e.w
		break
	}
	c.mu.Unlock()
	if woken != nil {
		woken.ch <- false
	}
}

func (cd *vcond) Broadcast() {
	c := cd.clk
	var single *waiter
	var woken []*waiter
	c.mu.Lock()
	for cd.head < len(cd.waiters) {
		e := cd.waiters[cd.head]
		cd.waiters[cd.head] = condEntry{}
		cd.head++
		if !e.live() {
			continue
		}
		c.wakeCondLocked(e.w)
		if single == nil && woken == nil {
			single = e.w
		} else {
			if woken == nil {
				woken = append(woken, single)
				single = nil
			}
			woken = append(woken, e.w)
		}
	}
	cd.waiters = cd.waiters[:0]
	cd.head = 0
	c.mu.Unlock()
	if single != nil {
		single.ch <- false
	}
	for _, w := range woken {
		w.ch <- false
	}
}
