package slo

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"score/internal/metrics"
)

// Engine evaluates a fixed set of objectives against an observation
// stream on the virtual clock. Observations landing at the same
// simulated instant are buffered and folded in one commutative batch
// when a later-timestamped observation (or Finalize) arrives, so the
// evaluated state — and therefore every alert transition — is
// independent of goroutine wake order within an instant. That is the
// byte-determinism contract pinned by slo_determinism_test.go.
//
// All methods are nil-safe no-ops on a nil engine, which is what makes
// the disabled path free: callers hold a nil sink and pay one branch.
type Engine struct {
	now func() time.Duration

	mu      sync.Mutex
	objs    []*objState
	pendAt  time.Duration
	pendAny bool
	alerts  []Alert
	done    bool
	sink    func(Alert)
}

// bucket is one error-budget resolution slot: good/bad counts plus the
// summed critical-path components of the bad events (for attribution).
type bucket struct {
	good, bad int64
	comps     map[string]time.Duration
}

type objState struct {
	obj Objective
	res time.Duration
	// slots is a ring over absolute bucket indices (at / res); slotIdx
	// records which absolute index currently occupies each slot so stale
	// buckets are skipped without eager zeroing.
	slots   []bucket
	slotIdx []int64

	// Cumulative run totals.
	good, bad int64
	comps     map[string]time.Duration

	// Same-instant staging, folded at flush.
	pendGood, pendBad int64
	pendComps         map[string]time.Duration

	firing   []bool // per window pair
	fired    int64
	resolved int64
	peakBurn float64
}

// NewEngine builds an engine reading virtual time from now. Objectives
// are validated and evaluated in the given order.
func NewEngine(now func() time.Duration, objs ...Objective) (*Engine, error) {
	if now == nil {
		return nil, fmt.Errorf("slo: nil clock function")
	}
	e := &Engine{now: now}
	seen := map[string]bool{}
	for _, o := range objs {
		if err := o.validate(); err != nil {
			return nil, err
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("slo: duplicate objective name %q", o.Name)
		}
		seen[o.Name] = true

		res := o.Resolution
		if res == 0 {
			shortest := time.Duration(0)
			for _, w := range o.Windows {
				if shortest == 0 || w.Short < shortest {
					shortest = w.Short
				}
			}
			res = shortest / 4
		}
		if res <= 0 {
			res = 1
		}
		longest := time.Duration(0)
		for _, w := range o.Windows {
			if w.Long > longest {
				longest = w.Long
			}
		}
		n := int(longest/res) + 2
		st := &objState{
			obj:     o,
			res:     res,
			slots:   make([]bucket, n),
			slotIdx: make([]int64, n),
			comps:   map[string]time.Duration{},
			firing:  make([]bool, len(o.Windows)),
		}
		for i := range st.slotIdx {
			st.slotIdx[i] = -1
		}
		e.objs = append(e.objs, st)
	}
	return e, nil
}

// SetAlertSink registers fn to receive every fire/resolve transition,
// in evaluation order, outside the engine lock. Nil-safe.
func (e *Engine) SetAlertSink(fn func(Alert)) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.sink = fn
	e.mu.Unlock()
}

// deepComps are the restore components that mean the GPU/host caches
// missed and a deep tier served the bytes.
var deepComps = []string{metrics.CompXferSSD, metrics.CompXferPFS, metrics.CompXferPartner}

// ObserveCritPath routes one critical-path record: restore records feed
// restore-latency and hit-rate objectives, durable records feed
// durable-latency objectives. The observation instant is the record's
// completion time (Start + Total) — no clock read, so records replayed
// from other clocks stay on their own timeline. Nil-safe.
func (e *Engine) ObserveCritPath(rec metrics.CritPathRecord) {
	if e == nil || len(e.objs) == 0 {
		return
	}
	at := rec.Start + rec.Total
	e.mu.Lock()
	fired := e.advanceLocked(at)
	for _, st := range e.objs {
		switch st.obj.Kind {
		case KindRestoreLatency:
			if rec.Op == metrics.CritRestore {
				st.stage(rec.Total <= st.obj.Threshold, rec.Components)
			}
		case KindDurableLatency:
			if rec.Op == metrics.CritDurable {
				st.stage(rec.Total <= st.obj.Threshold, rec.Components)
			}
		case KindHitRate:
			if rec.Op == metrics.CritRestore {
				deep := map[string]time.Duration{}
				for _, c := range deepComps {
					if d := rec.Components[c]; d > 0 {
						deep[c] = d
					}
				}
				st.stage(len(deep) == 0, deep)
			}
		}
	}
	e.mu.Unlock()
	e.emit(fired)
}

// ObserveDrain feeds one preemption-drain outcome to drain-deadline
// objectives, stamped at the engine clock's current instant. Nil-safe.
func (e *Engine) ObserveDrain(met bool) {
	e.Observe(KindDrainDeadline, met, nil)
}

// Observe feeds one good/bad event to every objective of the given
// kind, stamped at the engine clock's current instant; comps attributes
// a bad event's cost to critical-path components. Nil-safe.
func (e *Engine) Observe(kind Kind, good bool, comps map[string]time.Duration) {
	if e == nil || len(e.objs) == 0 {
		return
	}
	at := e.now()
	e.mu.Lock()
	fired := e.advanceLocked(at)
	for _, st := range e.objs {
		if st.obj.Kind == kind {
			st.stage(good, comps)
		}
	}
	e.mu.Unlock()
	e.emit(fired)
}

// Finalize folds any staged observations and runs a last evaluation at
// their instant. Idempotent; nil-safe.
func (e *Engine) Finalize() {
	if e == nil {
		return
	}
	e.mu.Lock()
	var fired []Alert
	if !e.done {
		fired = e.flushLocked()
		e.done = true
	}
	e.mu.Unlock()
	e.emit(fired)
}

// Report snapshots per-objective compliance and the alert history.
// Call after Finalize for end-of-run numbers. Nil-safe.
func (e *Engine) Report() Report {
	if e == nil {
		return Report{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	rep := Report{Alerts: append([]Alert(nil), e.alerts...)}
	for _, st := range e.objs {
		r := ObjectiveResult{
			Objective:       st.obj,
			Events:          st.good + st.bad,
			Good:            st.good,
			Compliance:      1,
			BudgetRemaining: 1,
			PeakBurn:        st.peakBurn,
			Fired:           st.fired,
			Resolved:        st.resolved,
			Attribution:     dominantComps(st.comps),
		}
		if r.Events > 0 {
			r.Compliance = float64(st.good) / float64(r.Events)
			r.BudgetRemaining = 1 - (1-r.Compliance)/(1-st.obj.Goal)
		}
		for _, f := range st.firing {
			r.Firing = r.Firing || f
		}
		rep.Objectives = append(rep.Objectives, r)
	}
	return rep
}

// stage buffers one observation at the engine's pending instant.
func (st *objState) stage(good bool, comps map[string]time.Duration) {
	if good {
		st.pendGood++
		return
	}
	st.pendBad++
	if len(comps) > 0 {
		if st.pendComps == nil {
			st.pendComps = map[string]time.Duration{}
		}
		for c, d := range comps {
			st.pendComps[c] += d
		}
	}
}

// advanceLocked flushes the pending instant when at moves past it.
// Timestamps are clamped to the pending instant so a same-or-earlier
// arrival (records finalized out of order) can never rewind a window.
func (e *Engine) advanceLocked(at time.Duration) []Alert {
	if !e.pendAny {
		e.pendAt, e.pendAny = at, true
		return nil
	}
	if at <= e.pendAt {
		return nil
	}
	fired := e.flushLocked()
	e.pendAt = at
	return fired
}

// flushLocked folds every objective's staged batch into its bucket ring
// at the pending instant and evaluates all window pairs there.
func (e *Engine) flushLocked() []Alert {
	if !e.pendAny {
		return nil
	}
	at := e.pendAt
	var fired []Alert
	for i, st := range e.objs {
		if st.pendGood+st.pendBad > 0 {
			abs := int64(at / st.res)
			slot := int(abs % int64(len(st.slots)))
			if st.slotIdx[slot] != abs {
				st.slots[slot] = bucket{}
				st.slotIdx[slot] = abs
			}
			b := &st.slots[slot]
			b.good += st.pendGood
			b.bad += st.pendBad
			if len(st.pendComps) > 0 {
				if b.comps == nil {
					b.comps = map[string]time.Duration{}
				}
				for c, d := range st.pendComps {
					b.comps[c] += d
					st.comps[c] += d
				}
			}
			st.good += st.pendGood
			st.bad += st.pendBad
			st.pendGood, st.pendBad, st.pendComps = 0, 0, nil
		}
		fired = append(fired, e.evaluateLocked(i, at)...)
	}
	return fired
}

// evaluateLocked runs objective i's window pairs at instant at and
// returns any fire/resolve transitions.
func (e *Engine) evaluateLocked(i int, at time.Duration) []Alert {
	st := e.objs[i]
	var out []Alert
	for wi, w := range st.obj.Windows {
		goodL, badL, _ := st.window(at, w.Long, false)
		goodS, badS, _ := st.window(at, w.Short, false)
		burnL := burn(goodL, badL, st.obj.Goal)
		burnS := burn(goodS, badS, st.obj.Goal)
		if burnL > st.peakBurn {
			st.peakBurn = burnL
		}
		cond := burnL >= w.Rate && burnS >= w.Rate
		if cond == st.firing[wi] {
			continue
		}
		st.firing[wi] = cond
		a := Alert{
			Objective:       st.obj.Name,
			Class:           st.obj.Class,
			Kind:            st.obj.Kind,
			At:              at,
			Window:          w,
			Burn:            burnL,
			BudgetRemaining: budgetRemaining(st),
		}
		if cond {
			a.Event = EventFire
			st.fired++
			_, _, comps := st.window(at, w.Long, true)
			a.Attribution = dominantComps(comps)
		} else {
			a.Event = EventResolve
			st.resolved++
		}
		e.alerts = append(e.alerts, a)
		out = append(out, a)
	}
	return out
}

// window sums the buckets covering (at − span, at]; withComps also
// merges the bad-event component attribution.
func (st *objState) window(at, span time.Duration, withComps bool) (good, bad int64, comps map[string]time.Duration) {
	cur := int64(at / st.res)
	min := int64(0)
	if at > span {
		min = int64((at-span)/st.res) + 1
	}
	if withComps {
		comps = map[string]time.Duration{}
	}
	for abs := min; abs <= cur; abs++ {
		slot := int(abs % int64(len(st.slots)))
		if st.slotIdx[slot] != abs {
			continue
		}
		b := st.slots[slot]
		good += b.good
		bad += b.bad
		if withComps {
			for c, d := range b.comps {
				comps[c] += d
			}
		}
	}
	return good, bad, comps
}

// burn is the error-budget burn rate: the bad fraction relative to the
// budget (1 − goal). Zero with no events.
func burn(good, bad int64, goal float64) float64 {
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - goal)
}

// budgetRemaining is the cumulative budget left: 1 with no events,
// negative once the run has overspent.
func budgetRemaining(st *objState) float64 {
	total := st.good + st.bad
	if total == 0 {
		return 1
	}
	badFrac := float64(st.bad) / float64(total)
	return 1 - badFrac/(1-st.obj.Goal)
}

// emit delivers transitions to the sink outside the engine lock.
func (e *Engine) emit(alerts []Alert) {
	if len(alerts) == 0 {
		return
	}
	e.mu.Lock()
	sink := e.sink
	e.mu.Unlock()
	if sink == nil {
		return
	}
	for _, a := range alerts {
		sink(a)
	}
}

// dominantComps names the components carrying the bulk of the bad-event
// cost: largest first (name tie-break), taking components until they
// cover two thirds of the total, capped at two — "xfer-pfs +
// retry-backoff"-shaped.
func dominantComps(comps map[string]time.Duration) string {
	if len(comps) == 0 {
		return ""
	}
	type cd struct {
		name string
		d    time.Duration
	}
	var all []cd
	var total time.Duration
	for c, d := range comps {
		if d > 0 {
			all = append(all, cd{c, d})
			total += d
		}
	}
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d > all[j].d
		}
		return all[i].name < all[j].name
	})
	out := all[0].name
	if all[0].d*3 < total*2 && len(all) > 1 {
		out += " + " + all[1].name
	}
	return out
}
