package slo

import (
	"errors"
	"fmt"
)

// CheckConservation reconciles the engine's view of the run against the
// runtime's own books: every objective must have seen exactly the
// events the histograms/counters recorded for its kind, and the alert
// transitions written to the flight-recorder ledger must match the
// report. With zero dropped ledger events the reconciliation is strict
// (any mismatch is an error — a lost observation is an instrumentation
// bug); once the bounded rings have dropped entries the same mismatches
// degrade to warnings, because the ledger is no longer a complete
// record to reconcile against.
//
// events maps each kind to the runtime's authoritative event count
// (e.g. the restore-blocked histogram count); kinds absent from the map
// are not checked.
func CheckConservation(rep Report, events map[Kind]int64, ledgerFired, ledgerResolved, ledgerDropped int64) (warnings []string, err error) {
	var mismatches []string
	var repFired, repResolved int64
	for _, o := range rep.Objectives {
		repFired += o.Fired
		repResolved += o.Resolved
		if expect, ok := events[o.Kind]; ok && o.Events != expect {
			mismatches = append(mismatches,
				fmt.Sprintf("objective %s (%s) saw %d events, runtime recorded %d", o.Name, o.Kind, o.Events, expect))
		}
	}
	if ledgerFired != repFired {
		mismatches = append(mismatches,
			fmt.Sprintf("ledger holds %d slo-fired events, report fired %d", ledgerFired, repFired))
	}
	if ledgerResolved != repResolved {
		mismatches = append(mismatches,
			fmt.Sprintf("ledger holds %d slo-resolved events, report resolved %d", ledgerResolved, repResolved))
	}
	if len(mismatches) == 0 {
		return nil, nil
	}
	if ledgerDropped == 0 {
		errs := make([]error, 0, len(mismatches))
		for _, m := range mismatches {
			errs = append(errs, errors.New("slo conservation: "+m))
		}
		return nil, errors.Join(errs...)
	}
	for _, m := range mismatches {
		warnings = append(warnings,
			fmt.Sprintf("slo conservation (degraded, %d ledger events dropped): %s", ledgerDropped, m))
	}
	return warnings, nil
}
