package slo

import "time"

// Checked-in objective sets for the experiment scenarios. These are the
// objectives `make slo-smoke` holds the pipeline and straggler runs to;
// thresholds are calibrated against the committed results_full.txt
// numbers with headroom, so a healthy run passes and a regression (or
// an injected fault) burns budget fast enough to alert.

// ShotObjectives covers the RunShot-driven scenarios (pipeline and the
// figure sweeps): restore blocking and time-to-durable tails for the
// batch-training class. Both pipeline variants hold every restore well
// under the thresholds at small and paper scale, so these gate CI
// without flapping while still catching an order-of-magnitude tail
// regression.
func ShotObjectives() []Objective {
	return []Objective{
		{
			Name:      "restore-p99",
			Class:     "batch-training",
			Kind:      KindRestoreLatency,
			Goal:      0.99,
			Threshold: 1500 * time.Millisecond,
			Windows:   []Window{{Long: 5 * time.Second, Short: time.Second, Rate: 4}},
		},
		{
			Name:      "durable-p99",
			Class:     "batch-training",
			Kind:      KindDurableLatency,
			Goal:      0.99,
			Threshold: 20 * time.Second,
			Windows:   []Window{{Long: 20 * time.Second, Short: 4 * time.Second, Rate: 4}},
		},
	}
}

// StragglerObjectives covers the gray-failure sweep: a tight restore
// tail for the restore-critical class. Healthy P99 sits near 6.5 ms
// (results_full.txt), a 20× SSD straggler pushes the unhedged tail past
// 80 ms — the 15 ms bound cleanly separates them, so the degraded cells
// fire and the healthy control never does.
func StragglerObjectives() []Objective {
	return []Objective{
		{
			Name:      "restore-p99",
			Class:     "restore-critical",
			Kind:      KindRestoreLatency,
			Goal:      0.99,
			Threshold: 15 * time.Millisecond,
			Windows:   []Window{{Long: 50 * time.Millisecond, Short: 10 * time.Millisecond, Rate: 4}},
		},
	}
}

// PreemptObjectives covers the preemption-drain sweep. The engine runs
// on a synthetic one-second-per-run timeline (each drain is a fresh
// sim), so the windows are run-counts in disguise: fire when recent
// drains blow their deadline, resolve as roomier grace windows wash the
// budget clean.
func PreemptObjectives() []Objective {
	return []Objective{
		{
			Name:       "drain-hit-ratio",
			Class:      "preemptible",
			Kind:       KindDrainDeadline,
			Goal:       0.6,
			Windows:    []Window{{Long: 6 * time.Second, Short: 2 * time.Second, Rate: 1.2}},
			Resolution: time.Second,
		},
	}
}

// EvictObjectives covers the eviction-policy replay: cache hit rate for
// the serving class, on the replay's own virtual clock (time advances
// only on miss stalls).
func EvictObjectives() []Objective {
	return []Objective{
		{
			Name:    "cache-hit-rate",
			Class:   "cache-serving",
			Kind:    KindHitRate,
			Goal:    0.5,
			Windows: []Window{{Long: 50 * time.Millisecond, Short: 10 * time.Millisecond, Rate: 1.5}},
		},
	}
}
