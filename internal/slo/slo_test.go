package slo

import (
	"encoding/json"
	"testing"
	"time"

	"score/internal/metrics"
)

func restoreObjective() Objective {
	return Objective{
		Name:      "restore-p99",
		Class:     "test",
		Kind:      KindRestoreLatency,
		Goal:      0.99,
		Threshold: 10 * time.Millisecond,
		Windows:   []Window{{Long: 100 * time.Millisecond, Short: 20 * time.Millisecond, Rate: 4}},
	}
}

// restoreRec builds a restore critpath record completing at start+total.
func restoreRec(start, total time.Duration, comps map[string]time.Duration) metrics.CritPathRecord {
	return metrics.CritPathRecord{Op: metrics.CritRestore, Start: start, Total: total, Components: comps}
}

func TestKindJSONRoundTrip(t *testing.T) {
	for k := range kindNames {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Errorf("kind %v round-tripped to %v", k, back)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted an unknown kind")
	}
}

func TestObjectiveValidation(t *testing.T) {
	now := func() time.Duration { return 0 }
	bad := []Objective{
		{},                     // empty name
		{Name: "x", Goal: 1.5}, // goal out of range
		{Name: "x", Goal: 0.9, Kind: KindRestoreLatency, Windows: []Window{{Long: time.Second, Short: time.Millisecond, Rate: 2}}}, // latency without threshold
		{Name: "x", Goal: 0.9, Kind: KindHitRate}, // no windows
		{Name: "x", Goal: 0.9, Kind: KindHitRate, Windows: []Window{{Long: time.Millisecond, Short: time.Second, Rate: 2}}}, // short > long
		{Name: "x", Goal: 0.9, Kind: KindHitRate, Windows: []Window{{Long: time.Second, Short: time.Millisecond}}},          // zero rate
	}
	for i, o := range bad {
		if _, err := NewEngine(now, o); err == nil {
			t.Errorf("objective %d accepted: %+v", i, o)
		}
	}
	if _, err := NewEngine(now, restoreObjective(), restoreObjective()); err == nil {
		t.Error("duplicate objective names accepted")
	}
	if _, err := NewEngine(nil, restoreObjective()); err == nil {
		t.Error("nil clock accepted")
	}
}

// TestBurnRateFireAndResolve walks the canonical alert lifecycle: a
// healthy stream, a straggler burst that fires with attribution, and a
// recovery that resolves.
func TestBurnRateFireAndResolve(t *testing.T) {
	var now time.Duration
	eng, err := NewEngine(func() time.Duration { return now }, restoreObjective())
	if err != nil {
		t.Fatal(err)
	}
	var seen []Alert
	eng.SetAlertSink(func(a Alert) { seen = append(seen, a) })

	// Healthy phase: 20 fast restores, 5 ms apart.
	for i := 0; i < 20; i++ {
		eng.ObserveCritPath(restoreRec(time.Duration(i)*5*time.Millisecond, time.Millisecond, nil))
	}
	// Straggler burst: slow restores dominated by the PFS leg.
	comps := map[string]time.Duration{
		metrics.CompXferPFS:      40 * time.Millisecond,
		metrics.CompRetryBackoff: 9 * time.Millisecond,
	}
	for i := 0; i < 4; i++ {
		eng.ObserveCritPath(restoreRec(150*time.Millisecond+time.Duration(i)*5*time.Millisecond, 50*time.Millisecond, comps))
	}
	if len(seen) == 0 {
		t.Fatal("no alert fired during the straggler burst")
	}
	fire := seen[0]
	if !fire.Fired() || fire.Objective != "restore-p99" {
		t.Fatalf("first transition not a restore-p99 fire: %+v", fire)
	}
	if fire.Attribution != "xfer-pfs" {
		t.Errorf("fire attribution = %q, want xfer-pfs", fire.Attribution)
	}
	if fire.Burn < 4 {
		t.Errorf("fire burn %v below the window rate", fire.Burn)
	}

	// Recovery: fast restores long after the burst slid out of both
	// windows.
	for i := 0; i < 4; i++ {
		eng.ObserveCritPath(restoreRec(500*time.Millisecond+time.Duration(i)*5*time.Millisecond, time.Millisecond, nil))
	}
	eng.Finalize()

	rep := eng.Report()
	if len(rep.Objectives) != 1 {
		t.Fatalf("report has %d objectives", len(rep.Objectives))
	}
	o := rep.Objectives[0]
	if o.Events != 28 || o.Good != 24 {
		t.Errorf("events/good = %d/%d, want 28/24", o.Events, o.Good)
	}
	if o.Fired != 1 || o.Resolved != 1 || o.Firing {
		t.Errorf("fired/resolved/firing = %d/%d/%v, want 1/1/false", o.Fired, o.Resolved, o.Firing)
	}
	if o.Met() {
		t.Error("objective reported met despite 4/28 bad events against a 0.99 goal")
	}
	if o.BudgetRemaining >= 0 {
		t.Errorf("budget remaining %v not negative after overspend", o.BudgetRemaining)
	}
	if o.Attribution != "xfer-pfs" {
		t.Errorf("run attribution = %q, want xfer-pfs", o.Attribution)
	}
	if !rep.Breached() {
		t.Error("report not breached despite a fired alert")
	}
	if len(rep.Alerts) != len(seen) {
		t.Errorf("report holds %d alerts, sink saw %d", len(rep.Alerts), len(seen))
	}
}

// TestSameInstantCommutes: observations landing at one virtual instant
// must evaluate identically regardless of arrival order — the
// determinism contract under parallel wake.
func TestSameInstantCommutes(t *testing.T) {
	run := func(reverse bool) string {
		var now time.Duration
		eng, err := NewEngine(func() time.Duration { return now }, restoreObjective())
		if err != nil {
			t.Fatal(err)
		}
		// Mixed batch at t = 50 ms: some good, some bad.
		batch := []metrics.CritPathRecord{
			restoreRec(49*time.Millisecond, time.Millisecond, nil),
			restoreRec(30*time.Millisecond, 20*time.Millisecond, map[string]time.Duration{metrics.CompXferSSD: 19 * time.Millisecond}),
			restoreRec(48*time.Millisecond, 2*time.Millisecond, nil),
			restoreRec(25*time.Millisecond, 25*time.Millisecond, map[string]time.Duration{metrics.CompXferSSD: 24 * time.Millisecond}),
		}
		if reverse {
			for i, j := 0, len(batch)-1; i < j; i, j = i+1, j-1 {
				batch[i], batch[j] = batch[j], batch[i]
			}
		}
		for _, rec := range batch {
			eng.ObserveCritPath(rec)
		}
		eng.ObserveCritPath(restoreRec(60*time.Millisecond, time.Millisecond, nil))
		eng.Finalize()
		j, err := json.Marshal(eng.Report())
		if err != nil {
			t.Fatal(err)
		}
		return string(j)
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("same-instant batches diverged by arrival order:\n%s\nvs\n%s", a, b)
	}
}

// TestHitRateRouting: restore records touching a deep tier count as
// misses; GPU/host-served restores count as hits.
func TestHitRateRouting(t *testing.T) {
	var now time.Duration
	obj := Objective{
		Name: "hit", Class: "test", Kind: KindHitRate, Goal: 0.5,
		Windows: []Window{{Long: 100 * time.Millisecond, Short: 20 * time.Millisecond, Rate: 1.5}},
	}
	eng, err := NewEngine(func() time.Duration { return now }, obj)
	if err != nil {
		t.Fatal(err)
	}
	eng.ObserveCritPath(restoreRec(0, time.Millisecond, map[string]time.Duration{metrics.CompXferPCIe: time.Millisecond}))
	eng.ObserveCritPath(restoreRec(10*time.Millisecond, 5*time.Millisecond, map[string]time.Duration{metrics.CompXferSSD: 4 * time.Millisecond}))
	eng.Finalize()
	o := eng.Report().Objectives[0]
	if o.Events != 2 || o.Good != 1 {
		t.Fatalf("hit-rate events/good = %d/%d, want 2/1", o.Events, o.Good)
	}
	if o.Attribution != "xfer-ssd" {
		t.Errorf("miss attribution = %q, want xfer-ssd", o.Attribution)
	}
}

// TestDrainObjective: the ratio kind fed by ObserveDrain on a manual
// clock.
func TestDrainObjective(t *testing.T) {
	var now time.Duration
	objs := PreemptObjectives()
	eng, err := NewEngine(func() time.Duration { return now }, objs...)
	if err != nil {
		t.Fatal(err)
	}
	met := []bool{false, false, false, true, true, true, true, true, true}
	for i, m := range met {
		now = time.Duration(i) * time.Second
		eng.ObserveDrain(m)
	}
	eng.Finalize()
	o := eng.Report().Objectives[0]
	if o.Events != int64(len(met)) || o.Good != 6 {
		t.Fatalf("drain events/good = %d/%d, want %d/6", o.Events, o.Good, len(met))
	}
	if o.Fired == 0 {
		t.Error("three consecutive missed deadlines did not fire the drain objective")
	}
	if o.Resolved == 0 {
		t.Error("six consecutive met deadlines did not resolve the drain objective")
	}
}

// TestNilEngineIsFree: every method on a nil engine is a no-op.
func TestNilEngine(t *testing.T) {
	var eng *Engine
	eng.ObserveCritPath(restoreRec(0, time.Millisecond, nil))
	eng.ObserveDrain(true)
	eng.Observe(KindHitRate, true, nil)
	eng.SetAlertSink(func(Alert) {})
	eng.Finalize()
	if rep := eng.Report(); len(rep.Objectives) != 0 || rep.Breached() {
		t.Errorf("nil engine report not empty: %+v", rep)
	}
}

func TestDominantComps(t *testing.T) {
	cases := []struct {
		comps map[string]time.Duration
		want  string
	}{
		{nil, ""},
		{map[string]time.Duration{"xfer-ssd": time.Second}, "xfer-ssd"},
		// One component ≥ 2/3 of the total stands alone.
		{map[string]time.Duration{"xfer-pfs": 8 * time.Second, "retry-backoff": time.Second}, "xfer-pfs"},
		// Split cost names the top two.
		{map[string]time.Duration{"xfer-pfs": 3 * time.Second, "retry-backoff": 2 * time.Second, "alloc": time.Second}, "xfer-pfs + retry-backoff"},
		// Ties break alphabetically.
		{map[string]time.Duration{"b": time.Second, "a": time.Second}, "a + b"},
	}
	for i, c := range cases {
		if got := dominantComps(c.comps); got != c.want {
			t.Errorf("case %d: dominantComps = %q, want %q", i, got, c.want)
		}
	}
}

func TestCheckConservation(t *testing.T) {
	rep := Report{Objectives: []ObjectiveResult{{
		Objective: restoreObjective(), Events: 10, Good: 9, Fired: 1, Resolved: 1,
	}}}
	// Clean books: no warnings, no error.
	warns, err := CheckConservation(rep, map[Kind]int64{KindRestoreLatency: 10}, 1, 1, 0)
	if err != nil || len(warns) != 0 {
		t.Fatalf("clean reconciliation failed: warns=%v err=%v", warns, err)
	}
	// Mismatch with zero drops is an error.
	if _, err := CheckConservation(rep, map[Kind]int64{KindRestoreLatency: 12}, 1, 1, 0); err == nil {
		t.Error("event undercount with zero drops did not error")
	}
	if _, err := CheckConservation(rep, map[Kind]int64{KindRestoreLatency: 10}, 0, 1, 0); err == nil {
		t.Error("ledger fire mismatch with zero drops did not error")
	}
	// Same mismatches degrade to warnings once the ledger dropped events.
	warns, err = CheckConservation(rep, map[Kind]int64{KindRestoreLatency: 12}, 0, 1, 5)
	if err != nil {
		t.Errorf("degraded reconciliation errored: %v", err)
	}
	if len(warns) != 2 {
		t.Errorf("degraded reconciliation produced %d warnings, want 2: %v", len(warns), warns)
	}
}
