// Package slo evaluates declarative service-level objectives over the
// simulated checkpoint pipeline: restore-blocking P99, time-to-durable
// P99, drain deadline-hit ratio, and cache hit rate, each with
// Google-SRE-style multi-window multi-burn-rate alerting (DESIGN.md
// §17).
//
// Everything is driven by the virtual clock: sliding error-budget
// windows advance with simulated time, so evaluation is byte-
// deterministic across timer backends and wake modes, and costs nothing
// in wall-clock when no objectives are registered. A latency objective
// "P99 ≤ X" is evaluated as a good/bad ratio — "at least Goal of events
// complete within Threshold" — which is the standard reduction that
// makes percentile targets burn-rate-alertable.
package slo

import (
	"encoding/json"
	"fmt"
	"time"
)

// Kind names what an objective measures.
type Kind int

const (
	// KindRestoreLatency: restore-blocking latency ≤ Threshold for at
	// least Goal of restores.
	KindRestoreLatency Kind = iota
	// KindDurableLatency: time-to-durable ≤ Threshold for at least Goal
	// of checkpoint versions.
	KindDurableLatency
	// KindDrainDeadline: preemption drains meet their deadline at a
	// ratio of at least Goal.
	KindDrainDeadline
	// KindHitRate: restores are served without touching a deep tier
	// (SSD/PFS/partner) at a ratio of at least Goal.
	KindHitRate
)

var kindNames = map[Kind]string{
	KindRestoreLatency: "restore-latency",
	KindDurableLatency: "durable-latency",
	KindDrainDeadline:  "drain-deadline",
	KindHitRate:        "hit-rate",
}

// String names the kind as rendered in tables and score-slo/v1 JSON.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind inverts String.
func ParseKind(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("slo: unknown objective kind %q", s)
}

// MarshalJSON renders the kind by name so score-slo/v1 files stay
// stable if the enum is ever reordered.
func (k Kind) MarshalJSON() ([]byte, error) {
	n, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("slo: cannot marshal %v", k)
	}
	return json.Marshal(n)
}

// UnmarshalJSON inverts MarshalJSON.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// Window is one (long, short) burn-rate alerting pair: the alert fires
// when the error budget burns at ≥ Rate× the sustainable pace over both
// the long window (significance) and the short window (recency), and
// resolves when either drops back below Rate.
type Window struct {
	Long  time.Duration
	Short time.Duration
	// Rate is the burn-rate threshold: 1.0 burns exactly the full
	// budget if sustained for the objective's compliance period.
	Rate float64
}

// Objective is one declarative SLO.
type Objective struct {
	// Name identifies the objective in alerts, tables, and JSON.
	Name string
	// Class is the workload class the objective covers — scenario-level
	// today, shaped as the seed of per-tenant attribution for the
	// multi-tenant service (ROADMAP).
	Class string
	Kind  Kind
	// Goal is the target good-event fraction in (0, 1); the error
	// budget is 1 − Goal.
	Goal float64
	// Threshold is the latency bound for latency kinds ("P99 ≤ X" ⇔
	// Goal = 0.99, Threshold = X); ignored for ratio kinds.
	Threshold time.Duration `json:",omitempty"`
	Windows   []Window
	// Resolution is the error-budget bucket width; 0 derives it from
	// the shortest Short window.
	Resolution time.Duration `json:",omitempty"`
}

// validate rejects malformed objectives at engine construction.
func (o Objective) validate() error {
	if o.Name == "" {
		return fmt.Errorf("slo: objective with empty name")
	}
	if _, ok := kindNames[o.Kind]; !ok {
		return fmt.Errorf("slo: objective %s: unknown kind %d", o.Name, int(o.Kind))
	}
	if o.Goal <= 0 || o.Goal >= 1 {
		return fmt.Errorf("slo: objective %s: goal %v outside (0, 1)", o.Name, o.Goal)
	}
	switch o.Kind {
	case KindRestoreLatency, KindDurableLatency:
		if o.Threshold <= 0 {
			return fmt.Errorf("slo: objective %s: latency kind needs a positive threshold", o.Name)
		}
	}
	if len(o.Windows) == 0 {
		return fmt.Errorf("slo: objective %s: no alerting windows", o.Name)
	}
	for i, w := range o.Windows {
		if w.Long <= 0 || w.Short <= 0 || w.Short > w.Long {
			return fmt.Errorf("slo: objective %s: window %d: need 0 < short ≤ long", o.Name, i)
		}
		if w.Rate <= 0 {
			return fmt.Errorf("slo: objective %s: window %d: burn rate must be positive", o.Name, i)
		}
	}
	if o.Resolution < 0 {
		return fmt.Errorf("slo: objective %s: negative resolution", o.Name)
	}
	return nil
}

// Alert transition events.
const (
	EventFire    = "fire"
	EventResolve = "resolve"
)

// Alert is one fire or resolve transition of an objective's window
// pair, stamped with the virtual-time instant it was evaluated at.
type Alert struct {
	Objective string
	Class     string
	Kind      Kind
	Event     string // EventFire or EventResolve
	At        time.Duration
	Window    Window
	// Burn is the long-window burn rate at the transition.
	Burn float64
	// BudgetRemaining is the cumulative error budget left (1 = untouched,
	// negative = overspent).
	BudgetRemaining float64
	// Attribution names the dominant critical-path components behind the
	// bad events in the long window (fire only), e.g. "xfer-ssd".
	Attribution string `json:",omitempty"`
}

// Fired reports whether this is a fire transition.
func (a Alert) Fired() bool { return a.Event == EventFire }

// Detail renders the alert's payload as it appears in ledger entries.
func (a Alert) Detail() string {
	s := fmt.Sprintf("%s %s/%s burn %.2f budget %.2f", a.Objective, a.Window.Long, a.Window.Short, a.Burn, a.BudgetRemaining)
	if a.Attribution != "" {
		s += " driven by " + a.Attribution
	}
	return s
}

// ObjectiveResult is one objective's end-of-run compliance summary.
type ObjectiveResult struct {
	Objective
	// Events and Good count the observations routed to this objective.
	Events int64
	Good   int64
	// Compliance is the good fraction (1.0 when no events arrived).
	Compliance float64
	// BudgetRemaining is 1 − (bad fraction)/(1 − Goal).
	BudgetRemaining float64
	// PeakBurn is the highest long-window burn rate seen at any
	// evaluation instant.
	PeakBurn float64
	// Fired and Resolved count alert transitions; Firing reports
	// whether any window pair was still firing at finalize.
	Fired    int64
	Resolved int64
	Firing   bool
	// Attribution names the dominant components across all bad events.
	Attribution string `json:",omitempty"`
}

// Met reports whether the objective's final compliance met its goal
// (vacuously true with no events).
func (r ObjectiveResult) Met() bool {
	return r.Events == 0 || r.Compliance >= r.Goal
}

// Report is the engine's end-of-run output: per-objective compliance
// plus every alert transition in evaluation order.
type Report struct {
	Objectives []ObjectiveResult
	Alerts     []Alert  `json:",omitempty"`
	Warnings   []string `json:",omitempty"`
}

// Breached reports whether any objective fired an alert or ended out
// of compliance — the `ckptbench -fail-on-slo` condition.
func (r Report) Breached() bool {
	for _, o := range r.Objectives {
		if o.Fired > 0 || !o.Met() {
			return true
		}
	}
	return false
}
