package payload

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestVirtualPayload(t *testing.T) {
	v := NewVirtual(1 << 20)
	if v.Size() != 1<<20 {
		t.Errorf("size = %d, want 1MiB", v.Size())
	}
	if v.Bytes() != nil {
		t.Error("virtual payload must carry no bytes")
	}
	if NewVirtual(1<<20).Checksum() != v.Checksum() {
		t.Error("equal-size virtual payloads must have equal checksums")
	}
	if NewVirtual(1<<21).Checksum() == v.Checksum() {
		t.Error("different-size virtual payloads should differ in checksum")
	}
}

func TestNewVirtualRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewVirtual(-1) did not panic")
		}
	}()
	NewVirtual(-1)
}

func TestRealPayloadRoundTrip(t *testing.T) {
	data := []byte("seismic wavefield snapshot 042")
	r := NewReal(data)
	if r.Size() != int64(len(data)) {
		t.Errorf("size = %d, want %d", r.Size(), len(data))
	}
	if !bytes.Equal(r.Bytes(), data) {
		t.Error("bytes mismatch")
	}
	if err := Verify(r, data); err != nil {
		t.Errorf("Verify of identical data failed: %v", err)
	}
	corrupted := append([]byte{}, data...)
	corrupted[0] ^= 0xFF
	if err := Verify(r, corrupted); err == nil {
		t.Error("Verify of corrupted data should fail")
	}
}

func TestChecksumDetectsAnySingleBitFlipProperty(t *testing.T) {
	f := func(data []byte, pos uint16, bit uint8) bool {
		if len(data) == 0 {
			return true
		}
		r := NewReal(data)
		flipped := append([]byte{}, data...)
		flipped[int(pos)%len(flipped)] ^= 1 << (bit % 8)
		return Verify(r, flipped) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
