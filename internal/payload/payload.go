// Package payload models checkpoint contents. Benchmarks use virtual
// payloads (size only — the simulated fabric accounts for the time that
// moving the bytes would take), while examples and integration tests use
// real byte payloads whose integrity is verified on restore with an
// FNV-1a checksum.
package payload

import (
	"fmt"
	"hash/fnv"
)

// Payload is the content of one checkpoint. Payloads are immutable once
// written (paper §1, "Limitations of the Proposed Approach").
type Payload interface {
	// Size returns the payload size in bytes.
	Size() int64
	// Checksum returns a content checksum; virtual payloads return a
	// deterministic function of their size.
	Checksum() uint64
	// Bytes returns the underlying data, or nil for virtual payloads.
	Bytes() []byte
}

// Virtual is a size-only payload used in large-scale benchmarks where
// materializing tens of gigabytes is neither possible nor useful.
type Virtual struct{ N int64 }

// NewVirtual returns a virtual payload of n bytes (n must be >= 0).
func NewVirtual(n int64) Virtual {
	if n < 0 {
		panic(fmt.Sprintf("payload: negative size %d", n))
	}
	return Virtual{N: n}
}

// Size implements Payload.
func (v Virtual) Size() int64 { return v.N }

// Checksum implements Payload with a deterministic size-derived value.
func (v Virtual) Checksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	n := uint64(v.N)
	for i := 0; i < 8; i++ {
		buf[i] = byte(n >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// Bytes implements Payload; virtual payloads carry no data.
func (v Virtual) Bytes() []byte { return nil }

// Real is a byte-backed payload.
type Real struct {
	data []byte
	sum  uint64
}

// NewReal wraps data (not copied) and precomputes its checksum.
func NewReal(data []byte) *Real {
	h := fnv.New64a()
	h.Write(data)
	return &Real{data: data, sum: h.Sum64()}
}

// Size implements Payload.
func (r *Real) Size() int64 { return int64(len(r.data)) }

// Checksum implements Payload.
func (r *Real) Checksum() uint64 { return r.sum }

// Bytes implements Payload. Callers must not mutate the returned slice.
func (r *Real) Bytes() []byte { return r.data }

// Verify recomputes the checksum of got and compares it with want's,
// returning a descriptive error on mismatch. It is used by restores of
// real payloads.
func Verify(want Payload, got []byte) error {
	h := fnv.New64a()
	h.Write(got)
	if sum := h.Sum64(); sum != want.Checksum() {
		return fmt.Errorf("payload: checksum mismatch: got %#x, want %#x", sum, want.Checksum())
	}
	return nil
}
