// Package ckptstore is the durable checkpoint store backing the SSD/PFS
// tiers for real-payload runs: an append-oriented, CRC-protected,
// file-per-checkpoint format with a rebuildable index, in the spirit of
// VELOC's node-local checkpoint files.
//
// The simulated fabric accounts for the *time* of SSD writes; this
// package provides the *bytes*, so examples and recovery tests can kill a
// client and restart from what actually reached storage. Each checkpoint
// is one file:
//
//	header:  magic "SCOR" | version u16 | flags u16
//	         id i64 | payloadLen u32 | headerCRC u32
//	body:    payload bytes
//	trailer: payloadCRC u32
//
// Writes go through a temp file + atomic rename, so a crash mid-write
// never leaves a torn checkpoint visible; Open scans the directory and
// indexes every valid checkpoint, skipping (and reporting) corrupt ones.
package ckptstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	magic         = "SCOR"
	formatVersion = 1
	headerSize    = 4 + 2 + 2 + 8 + 4 + 4
	trailerSize   = 4
	fileSuffix    = ".ckpt"
	tempSuffix    = ".tmp"
	corruptSuffix = ".corrupt"
)

// Errors returned by Store operations.
var (
	// ErrNotFound: no durable copy of the requested id.
	ErrNotFound = errors.New("ckptstore: checkpoint not found")
	// ErrCorrupt: the stored data failed validation.
	ErrCorrupt = errors.New("ckptstore: checkpoint corrupt")
	// ErrExists: the id is already stored (checkpoints are immutable).
	ErrExists = errors.New("ckptstore: checkpoint already stored")
)

// A FaultHook lets a fault injector interpose on the durable paths.
// Either method may be nil-receiver-free no-ops; hooks must be safe for
// concurrent use.
type FaultHook interface {
	// BeforeWrite runs before Put writes id's bytes; a non-nil error
	// aborts the write (the disk is untouched).
	BeforeWrite(id int64, size int) error
	// OnRead runs on the raw file bytes Get read, before validation. It
	// may return an error (I/O fault) or a mutated copy of raw (silent
	// corruption, which the CRC layer then detects).
	OnRead(id int64, raw []byte) ([]byte, error)
}

// Store is a directory of checkpoint files with an in-memory index.
// Methods are safe for concurrent use, including Scrub under active
// writers: commit renames take scrubMu shared, a scrub pass takes it
// exclusive, so a scrub never observes (or quarantines) a half-committed
// file and never races a commit's rename with its quarantine rename.
type Store struct {
	dir string

	mu     sync.Mutex
	index  map[int64]int64 // id -> payload length
	hook   FaultHook
	tmpSeq int64 // unique temp-file names; two writers never share one

	scrubMu sync.RWMutex
}

// SetFaultHook installs (or, with nil, removes) the fault-injection hook
// on Put and Get. Scrub and Open bypass it: they report the disk's ground
// truth.
func (s *Store) SetFaultHook(h FaultHook) {
	s.mu.Lock()
	s.hook = h
	s.mu.Unlock()
}

func (s *Store) faultHook() FaultHook {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hook
}

// Open creates (if needed) and indexes a store rooted at dir. Corrupt or
// torn files are skipped and reported in the returned slice (they are
// left on disk for forensics; Delete removes them explicitly).
func Open(dir string) (*Store, []error, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("ckptstore: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir, index: map[int64]int64{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("ckptstore: reading %s: %w", dir, err)
	}
	var corrupt []error
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tempSuffix) {
			// Torn write from a crash: unreachable by design.
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		id, size, err := s.validateFile(filepath.Join(dir, name))
		if err != nil {
			corrupt = append(corrupt, fmt.Errorf("%s: %w", name, err))
			continue
		}
		s.index[id] = size
	}
	return s, corrupt, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(id int64) string {
	return filepath.Join(s.dir, strconv.FormatInt(id, 10)+fileSuffix)
}

// encode serializes id+payload into the on-disk format.
func encode(id int64, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload)+trailerSize)
	copy(buf[0:4], magic)
	binary.LittleEndian.PutUint16(buf[4:], formatVersion)
	binary.LittleEndian.PutUint16(buf[6:], 0) // flags
	binary.LittleEndian.PutUint64(buf[8:], uint64(id))
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[20:], crc32.ChecksumIEEE(buf[:20]))
	copy(buf[headerSize:], payload)
	binary.LittleEndian.PutUint32(buf[headerSize+len(payload):], crc32.ChecksumIEEE(payload))
	return buf
}

// writeTemp writes buf to a fresh uniquely-named temp file for id. Each
// writer gets its own temp name, so two concurrent writes of the same id
// can never interleave into one torn temp file.
func (s *Store) writeTemp(id int64, buf []byte) (string, error) {
	s.mu.Lock()
	s.tmpSeq++
	seq := s.tmpSeq
	s.mu.Unlock()
	tmp := fmt.Sprintf("%s.%d%s", s.path(id), seq, tempSuffix)
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return "", fmt.Errorf("ckptstore: writing %s: %w", tmp, err)
	}
	return tmp, nil
}

// writeAtomic commits buf as id's checkpoint file via temp file + rename.
// The rename holds scrubMu shared so it cannot interleave with a scrub
// pass's quarantine renames.
func (s *Store) writeAtomic(id int64, buf []byte) error {
	tmp, err := s.writeTemp(id, buf)
	if err != nil {
		return err
	}
	s.scrubMu.RLock()
	defer s.scrubMu.RUnlock()
	if err := os.Rename(tmp, s.path(id)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("ckptstore: committing %d: %w", id, err)
	}
	return nil
}

// Put durably stores payload under id. The write is atomic: a crash
// leaves either the complete checkpoint or nothing. The commit re-checks
// for a duplicate under the lock, so of two racing Puts of the same id
// exactly one wins and the file always matches the indexed entry.
func (s *Store) Put(id int64, payload []byte) error {
	s.mu.Lock()
	if _, dup := s.index[id]; dup {
		s.mu.Unlock()
		return ErrExists
	}
	s.mu.Unlock()

	if h := s.faultHook(); h != nil {
		if err := h.BeforeWrite(id, len(payload)); err != nil {
			return fmt.Errorf("ckptstore: writing %d: %w", id, err)
		}
	}
	tmp, err := s.writeTemp(id, encode(id, payload))
	if err != nil {
		return err
	}
	s.scrubMu.RLock()
	defer s.scrubMu.RUnlock()
	s.mu.Lock()
	if _, dup := s.index[id]; dup {
		s.mu.Unlock()
		_ = os.Remove(tmp)
		return ErrExists
	}
	if err := os.Rename(tmp, s.path(id)); err != nil {
		s.mu.Unlock()
		_ = os.Remove(tmp)
		return fmt.Errorf("ckptstore: committing %d: %w", id, err)
	}
	s.index[id] = int64(len(payload))
	s.mu.Unlock()
	return nil
}

// Get reads and validates checkpoint id.
func (s *Store) Get(id int64) ([]byte, error) {
	s.mu.Lock()
	_, ok := s.index[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	buf, err := os.ReadFile(s.path(id))
	if err != nil {
		return nil, fmt.Errorf("ckptstore: reading %d: %w", id, err)
	}
	if h := s.faultHook(); h != nil {
		buf, err = h.OnRead(id, buf)
		if err != nil {
			return nil, fmt.Errorf("ckptstore: reading %d: %w", id, err)
		}
	}
	payload, gotID, err := decode(buf)
	if err != nil {
		return nil, err
	}
	if gotID != id {
		return nil, fmt.Errorf("%w: file for %d contains id %d", ErrCorrupt, id, gotID)
	}
	return payload, nil
}

// Has reports whether a valid checkpoint id is indexed.
func (s *Store) Has(id int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[id]
	return ok
}

// Size returns the stored payload length for id.
func (s *Store) Size(id int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.index[id]
	if !ok {
		return 0, ErrNotFound
	}
	return n, nil
}

// IDs returns the indexed checkpoint ids in ascending order.
func (s *Store) IDs() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, 0, len(s.index))
	for id := range s.index {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Delete removes checkpoint id (used when discarding consumed history).
// Deleting an absent id is not an error.
func (s *Store) Delete(id int64) error {
	s.mu.Lock()
	delete(s.index, id)
	s.mu.Unlock()
	if err := os.Remove(s.path(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("ckptstore: deleting %d: %w", id, err)
	}
	return nil
}

// TotalBytes returns the sum of indexed payload sizes.
func (s *Store) TotalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, n := range s.index {
		t += n
	}
	return t
}

// Scrub re-verifies every checkpoint file in the store directory —
// re-reading each and checking header and payload CRCs — and quarantines
// failures: the file is renamed to <name>.ckpt.corrupt (kept for
// forensics) and its id is dropped from the index. It covers both indexed
// checkpoints and files Open skipped as corrupt, so a scrub after reopen
// leaves the directory clean. It returns the quarantined ids, ascending.
// Scrub reads the disk directly, bypassing any fault hook, so it reports
// ground truth even mid-chaos. The pass holds the scrub lock exclusively:
// concurrent writers block at their commit rename until the pass ends, so
// a healthy just-committed checkpoint is never mistaken for corruption.
func (s *Store) Scrub() ([]int64, error) {
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ckptstore: scrubbing %s: %w", s.dir, err)
	}
	var quarantined []int64
	var firstErr error
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		// The file name is "<id>.ckpt"; an unparseable name is itself a
		// corruption symptom and gets quarantined under id -1.
		id, parseErr := strconv.ParseInt(strings.TrimSuffix(name, fileSuffix), 10, 64)
		if parseErr != nil {
			id = -1
		}
		path := filepath.Join(s.dir, name)
		gotID, _, err := s.validateFile(path)
		if err == nil && parseErr == nil && gotID == id {
			continue
		}
		if err == nil {
			err = fmt.Errorf("%w: file %s contains id %d", ErrCorrupt, name, gotID)
		}
		if renameErr := os.Rename(path, path+corruptSuffix); renameErr != nil && !os.IsNotExist(renameErr) {
			if firstErr == nil {
				firstErr = fmt.Errorf("ckptstore: quarantining %s: %v (scrub error: %w)", name, renameErr, err)
			}
			continue
		}
		if id >= 0 {
			s.mu.Lock()
			delete(s.index, id)
			s.mu.Unlock()
			quarantined = append(quarantined, id)
		}
	}
	sort.Slice(quarantined, func(i, j int) bool { return quarantined[i] < quarantined[j] })
	return quarantined, firstErr
}

// Restage overwrites checkpoint id with a fresh payload, re-creating a
// replica that was lost or quarantined (the immutability rule applies to
// *new* versions via Put; Restage exists for repair, where the caller has
// re-verified the bytes against the checkpoint's checksum). The write is
// atomic and bypasses the fault hook — repair must not be re-faulted by
// the schedule that caused it.
func (s *Store) Restage(id int64, payload []byte) error {
	if err := s.writeAtomic(id, encode(id, payload)); err != nil {
		return err
	}
	s.mu.Lock()
	s.index[id] = int64(len(payload))
	s.mu.Unlock()
	return nil
}

// validateFile decodes and checks a checkpoint file, returning its id and
// payload size.
func (s *Store) validateFile(path string) (int64, int64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	payload, id, err := decode(buf)
	if err != nil {
		return 0, 0, err
	}
	return id, int64(len(payload)), nil
}

// decode validates a serialized checkpoint and returns its payload and id.
func decode(buf []byte) ([]byte, int64, error) {
	if len(buf) < headerSize+trailerSize {
		return nil, 0, fmt.Errorf("%w: truncated (%d bytes)", ErrCorrupt, len(buf))
	}
	if string(buf[0:4]) != magic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != formatVersion {
		return nil, 0, fmt.Errorf("%w: unsupported format version %d", ErrCorrupt, v)
	}
	if crc := binary.LittleEndian.Uint32(buf[20:]); crc != crc32.ChecksumIEEE(buf[:20]) {
		return nil, 0, fmt.Errorf("%w: header CRC mismatch", ErrCorrupt)
	}
	id := int64(binary.LittleEndian.Uint64(buf[8:]))
	n := int(binary.LittleEndian.Uint32(buf[16:]))
	if len(buf) != headerSize+n+trailerSize {
		return nil, 0, fmt.Errorf("%w: length %d does not match header (%d)", ErrCorrupt, len(buf), headerSize+n+trailerSize)
	}
	payload := buf[headerSize : headerSize+n]
	if crc := binary.LittleEndian.Uint32(buf[headerSize+n:]); crc != crc32.ChecksumIEEE(payload) {
		return nil, 0, fmt.Errorf("%w: payload CRC mismatch", ErrCorrupt)
	}
	return payload, id, nil
}
