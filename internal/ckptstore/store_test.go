package ckptstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openT(t *testing.T, dir string) (*Store, []error) {
	t.Helper()
	s, corrupt, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s, corrupt
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := openT(t, t.TempDir())
	data := []byte("wavefield snapshot #7")
	if err := s.Put(7, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("payload mismatch")
	}
	if !s.Has(7) || s.Has(8) {
		t.Error("Has is wrong")
	}
	if n, err := s.Size(7); err != nil || n != int64(len(data)) {
		t.Errorf("Size = %d, %v", n, err)
	}
	if s.TotalBytes() != int64(len(data)) {
		t.Errorf("TotalBytes = %d", s.TotalBytes())
	}
}

func TestPutRejectsDuplicates(t *testing.T) {
	s, _ := openT(t, t.TempDir())
	if err := s.Put(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, []byte("b")); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate Put: %v, want ErrExists", err)
	}
}

func TestGetMissing(t *testing.T) {
	s, _ := openT(t, t.TempDir())
	if _, err := s.Get(42); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing) = %v, want ErrNotFound", err)
	}
	if _, err := s.Size(42); !errors.Is(err, ErrNotFound) {
		t.Errorf("Size(missing) = %v", err)
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	for i := int64(0); i < 10; i++ {
		if err := s.Put(i, bytes.Repeat([]byte{byte(i)}, int(i+1)*100)); err != nil {
			t.Fatal(err)
		}
	}
	// Re-open: the index must be rebuilt from disk alone.
	s2, corrupt := openT(t, dir)
	if len(corrupt) != 0 {
		t.Fatalf("unexpected corrupt files: %v", corrupt)
	}
	ids := s2.IDs()
	if len(ids) != 10 {
		t.Fatalf("recovered %d ids, want 10", len(ids))
	}
	for i, id := range ids {
		if id != int64(i) {
			t.Errorf("ids[%d] = %d", i, id)
		}
	}
	got, err := s2.Get(3)
	if err != nil || len(got) != 400 {
		t.Errorf("Get(3) after reopen: %d bytes, %v", len(got), err)
	}
}

func TestCorruptFilesDetectedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	if err := s.Put(1, []byte("good checkpoint payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(2, []byte("to be corrupted payload")); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of checkpoint 2.
	path := filepath.Join(dir, "2.ckpt")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[headerSize+3] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	// Also drop a truncated file and a stale temp file.
	if err := os.WriteFile(filepath.Join(dir, "9.ckpt"), buf[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "5.ckpt.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, corrupt := openT(t, dir)
	if len(corrupt) != 2 {
		t.Fatalf("corrupt reports = %d (%v), want 2", len(corrupt), corrupt)
	}
	if !s2.Has(1) {
		t.Error("valid checkpoint 1 lost")
	}
	if s2.Has(2) || s2.Has(9) {
		t.Error("corrupt checkpoints indexed")
	}
	if _, err := os.Stat(filepath.Join(dir, "5.ckpt.tmp")); !os.IsNotExist(err) {
		t.Error("stale temp file not cleaned up")
	}
}

func TestCorruptHeaderDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	if err := s.Put(3, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "3.ckpt")
	buf, _ := os.ReadFile(path)
	buf[9] ^= 0xFF // id byte: header CRC must catch it
	os.WriteFile(path, buf, 0o644)
	_, corrupt := openT(t, dir)
	if len(corrupt) != 1 {
		t.Errorf("header corruption not detected: %v", corrupt)
	}
}

func TestDelete(t *testing.T) {
	s, _ := openT(t, t.TempDir())
	if err := s.Put(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if s.Has(1) {
		t.Error("deleted checkpoint still indexed")
	}
	if err := s.Delete(1); err != nil {
		t.Errorf("deleting absent id: %v", err)
	}
	// After deletion the id may be written again.
	if err := s.Put(1, []byte("y")); err != nil {
		t.Errorf("re-put after delete: %v", err)
	}
}

func TestEmptyPayload(t *testing.T) {
	s, _ := openT(t, t.TempDir())
	if err := s.Put(0, nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(0)
	if err != nil || len(got) != 0 {
		t.Errorf("empty payload round trip: %d bytes, %v", len(got), err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	next := int64(0)
	f := func(data []byte) bool {
		id := next
		next++
		if err := s.Put(id, data); err != nil {
			return false
		}
		got, err := s.Get(id)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	// Everything written must survive a reopen.
	s2, corrupt := openT(t, dir)
	if len(corrupt) != 0 {
		t.Fatalf("corrupt after property run: %v", corrupt)
	}
	if int64(len(s2.IDs())) != next {
		t.Errorf("recovered %d ids, want %d", len(s2.IDs()), next)
	}
}

func TestScrubQuarantinesCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	for i := int64(0); i < 4; i++ {
		if err := s.Put(i, bytes.Repeat([]byte{byte(i + 1)}, 512)); err != nil {
			t.Fatal(err)
		}
	}
	// Bit-rot checkpoint 2's payload on disk after indexing.
	path := filepath.Join(dir, "2.ckpt")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[headerSize+7] ^= 0x01
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	quarantined, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 1 || quarantined[0] != 2 {
		t.Fatalf("quarantined = %v, want [2]", quarantined)
	}
	if s.Has(2) {
		t.Error("quarantined checkpoint still indexed")
	}
	if _, err := s.Get(2); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(quarantined) = %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(path + corruptSuffix); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt original still present under .ckpt name")
	}
	// Healthy files untouched; a second scrub is clean.
	for _, id := range []int64{0, 1, 3} {
		if _, err := s.Get(id); err != nil {
			t.Errorf("Get(%d) after scrub: %v", id, err)
		}
	}
	if q, err := s.Scrub(); err != nil || len(q) != 0 {
		t.Errorf("second scrub: %v, %v", q, err)
	}
	// Quarantined files are invisible to a reopen.
	s2, corrupt := openT(t, dir)
	if len(corrupt) != 0 {
		t.Errorf("reopen reported corrupt: %v", corrupt)
	}
	if s2.Has(2) {
		t.Error("reopen indexed a quarantined checkpoint")
	}
}

func TestRestageRepairsQuarantinedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	data := bytes.Repeat([]byte{0xC4}, 256)
	if err := s.Put(5, data); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "5.ckpt")
	buf, _ := os.ReadFile(path)
	buf[headerSize] ^= 0xFF
	os.WriteFile(path, buf, 0o644)
	if q, _ := s.Scrub(); len(q) != 1 {
		t.Fatalf("scrub quarantined %v", q)
	}
	if err := s.Restage(5, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(5)
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("Get after restage: %d bytes, %v", len(got), err)
	}
}

// hookFuncs adapts closures to FaultHook for tests.
type hookFuncs struct {
	beforeWrite func(id int64, size int) error
	onRead      func(id int64, raw []byte) ([]byte, error)
}

func (h hookFuncs) BeforeWrite(id int64, size int) error {
	if h.beforeWrite == nil {
		return nil
	}
	return h.beforeWrite(id, size)
}

func (h hookFuncs) OnRead(id int64, raw []byte) ([]byte, error) {
	if h.onRead == nil {
		return raw, nil
	}
	return h.onRead(id, raw)
}

func TestFaultHookWrite(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	injected := errors.New("ssd gone")
	s.SetFaultHook(hookFuncs{beforeWrite: func(id int64, size int) error {
		if id == 1 {
			return injected
		}
		return nil
	}})
	if err := s.Put(1, []byte("doomed")); !errors.Is(err, injected) {
		t.Errorf("Put under write fault: %v", err)
	}
	if s.Has(1) {
		t.Error("failed Put left an index entry")
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*")); len(files) != 0 {
		t.Errorf("failed Put touched the disk: %v", files)
	}
	if err := s.Put(2, []byte("fine")); err != nil {
		t.Errorf("unfaulted Put: %v", err)
	}
}

func TestFaultHookReadCorruptionTripsCRC(t *testing.T) {
	s, _ := openT(t, t.TempDir())
	if err := s.Put(1, bytes.Repeat([]byte{7}, 128)); err != nil {
		t.Fatal(err)
	}
	s.SetFaultHook(hookFuncs{onRead: func(id int64, raw []byte) ([]byte, error) {
		mut := append([]byte(nil), raw...)
		mut[headerSize+1] ^= 0x80
		return mut, nil
	}})
	if _, err := s.Get(1); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Get of hook-corrupted read = %v, want ErrCorrupt", err)
	}
	// The disk itself is clean: Scrub (hook-free) finds nothing, and
	// removing the hook restores reads.
	if q, err := s.Scrub(); err != nil || len(q) != 0 {
		t.Errorf("scrub of clean disk under read fault: %v, %v", q, err)
	}
	s.SetFaultHook(nil)
	if _, err := s.Get(1); err != nil {
		t.Errorf("Get after hook removal: %v", err)
	}
}

func TestRestageBypassesFaultHook(t *testing.T) {
	s, _ := openT(t, t.TempDir())
	s.SetFaultHook(hookFuncs{beforeWrite: func(id int64, size int) error {
		return errors.New("every write fails")
	}})
	if err := s.Restage(9, []byte("repair")); err != nil {
		t.Fatalf("Restage under write fault: %v", err)
	}
	s.SetFaultHook(nil)
	if got, err := s.Get(9); err != nil || string(got) != "repair" {
		t.Errorf("Get after restage: %q, %v", got, err)
	}
}

// TestScrubUnderActiveWriters runs scrub passes concurrently with Put and
// Restage traffic. A scrub must never quarantine a checkpoint that was
// committed healthy — the historical race renamed a just-committed file
// to .corrupt when its validation interleaved with the commit rename.
func TestScrubUnderActiveWriters(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)

	const writers = 4
	const perWriter = 25
	payload := func(id int64) []byte {
		return bytes.Repeat([]byte{byte(id)}, 64+int(id%7))
	}

	done := make(chan struct{})
	errc := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		w := w
		go func() {
			for i := 0; i < perWriter; i++ {
				id := int64(w*perWriter + i)
				if err := s.Put(id, payload(id)); err != nil {
					errc <- err
					return
				}
				if i%5 == 0 {
					if err := s.Restage(id, payload(id)); err != nil {
						errc <- err
						return
					}
				}
			}
			errc <- nil
		}()
	}
	go func() {
		for {
			select {
			case <-done:
				errc <- nil
				return
			default:
			}
			if q, err := s.Scrub(); err != nil {
				errc <- err
				return
			} else if len(q) != 0 {
				errc <- errors.New("scrub quarantined healthy checkpoints under active writers")
				return
			}
		}
	}()
	for i := 0; i < writers; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	// Every write survived on disk and validates, even across a reopen.
	s2, corrupt := openT(t, dir)
	if len(corrupt) != 0 {
		t.Fatalf("reopen found %d corrupt file(s): %v", len(corrupt), corrupt)
	}
	for id := int64(0); id < writers*perWriter; id++ {
		got, err := s2.Get(id)
		if err != nil || !bytes.Equal(got, payload(id)) {
			t.Fatalf("checkpoint %d after concurrent scrub: %v", id, err)
		}
	}
}

// TestConcurrentPutSameID races writers of one id: exactly one wins, and
// the surviving file matches the indexed winner's bytes.
func TestConcurrentPutSameID(t *testing.T) {
	s, _ := openT(t, t.TempDir())
	const racers = 8
	wins := make(chan []byte, racers)
	errc := make(chan error, racers)
	for r := 0; r < racers; r++ {
		data := bytes.Repeat([]byte{byte(r + 1)}, 32)
		go func() {
			err := s.Put(42, data)
			if err == nil {
				wins <- data
			}
			errc <- err
		}()
	}
	var winners int
	for r := 0; r < racers; r++ {
		err := <-errc
		switch {
		case err == nil:
			winners++
		case errors.Is(err, ErrExists):
		default:
			t.Fatalf("racing Put: %v", err)
		}
	}
	if winners != 1 {
		t.Fatalf("racing Puts of one id: %d winners, want 1", winners)
	}
	want := <-wins
	if got, err := s.Get(42); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("file does not match the winning Put: err=%v", err)
	}
}

// TestOpenRemovesOrphanedTempFiles: a crash mid-write leaves *.tmp files
// behind; Open must unlink them (including the unique-suffix form) and
// index only committed checkpoints.
func TestOpenRemovesOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	if err := s.Put(1, []byte("kept")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"2.ckpt.tmp", "3.ckpt.17.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, corrupt := openT(t, dir)
	if len(corrupt) != 0 {
		t.Fatalf("orphaned temp files reported corrupt: %v", corrupt)
	}
	if got := s2.IDs(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("IDs after reopen = %v, want [1]", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Errorf("orphaned temp file survived reopen: %s", e.Name())
		}
	}
}
